// Package refine post-processes MULTIPROC schedules with local search —
// one concrete step in the paper's future-work direction ("design new
// algorithms", Sec. VI). Starting from any heuristic's semi-matching it
// repeatedly moves a single task to a different configuration whenever the
// move lexicographically decreases the descending load vector (the same
// order the vector-greedy heuristics optimize), until a local optimum.
//
// Properties (tested):
//   - never increases the makespan;
//   - terminates (the load vector strictly decreases in a well-founded
//     order and takes finitely many values);
//   - for SINGLEPROC-UNIT inputs expressed as hypergraphs, the fixpoint of
//     single moves is exactly a semi-matching with no length-2
//     cost-reducing path, i.e. the first rung of Harvey et al.'s ladder.
package refine

import (
	"context"

	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
	"semimatch/internal/loadvec"
)

// Options bounds the search.
type Options struct {
	// MaxRounds caps full passes over the tasks; 0 means no cap (run to a
	// local optimum — termination is guaranteed).
	MaxRounds int
}

// Result reports what the refinement did.
type Result struct {
	Assignment core.HyperAssignment
	Moves      int   // accepted single-task moves
	Rounds     int   // full passes over the task list
	Before     int64 // makespan before
	After      int64 // makespan after
	// Interrupted reports that the context was cancelled before a local
	// optimum was reached; the assignment is still valid and no worse than
	// the input.
	Interrupted bool
}

// ctxCheckInterval is how many task positions are examined between
// context polls.
const ctxCheckInterval = 64

// Refine improves the assignment a on h by single-task moves. The input
// assignment is not modified.
func Refine(h *hypergraph.Hypergraph, a core.HyperAssignment, opts Options) Result {
	return RefineCtx(context.Background(), h, a, opts)
}

// RefineCtx is Refine with cooperative cancellation: the local search
// polls ctx as it scans the task list and stops early when ctx is
// cancelled, returning the best assignment found so far with Interrupted
// set. Every intermediate state is a valid schedule no worse than the
// input, so an interrupted result is safe to use.
func RefineCtx(ctx context.Context, h *hypergraph.Hypergraph, a core.HyperAssignment, opts Options) Result {
	cur := append(core.HyperAssignment(nil), a...)
	res := Result{Before: core.HyperMakespan(h, a)}
	done := ctx.Done()
	sinceCheck := 0

	tr := loadvec.New[int64](h.NProcs)
	procsAll := make([]int32, h.NProcs)
	for i := range procsAll {
		procsAll[i] = int32(i)
	}
	tr.SetAll(procsAll, core.HyperLoads(h, cur))

scan:
	for {
		if opts.MaxRounds > 0 && res.Rounds >= opts.MaxRounds {
			break
		}
		res.Rounds++
		improved := false
		for t := 0; t < h.NTasks; t++ {
			if done != nil {
				sinceCheck++
				if sinceCheck >= ctxCheckInterval {
					sinceCheck = 0
					select {
					case <-done:
						res.Interrupted = true
						break scan
					default:
					}
				}
			}
			curEdge := cur[t]
			// The "stay" candidate: identity move (no change).
			edges := h.TaskEdges(t)
			if len(edges) == 1 {
				continue
			}
			// Build the union of processors across the current edge and
			// each alternative, expressing every move as a SetAll batch.
			curProcs := h.EdgeProcs(curEdge)
			curW := h.Weight[curEdge]
			bestEdge := curEdge
			var bestCand loadvec.Candidate[int64]
			haveBest := false
			for _, e := range edges {
				if e == curEdge {
					continue
				}
				cand := moveCandidate(h, tr, curProcs, curW, e)
				if !haveBest {
					// Compare against "no move": the move must strictly
					// improve the vector, i.e. the candidate's resulting
					// vector must be smaller than the current vector.
					if candImproves(tr, cand) {
						bestEdge, bestCand, haveBest = e, cand, true
					}
					continue
				}
				if tr.Compare(cand, bestCand) < 0 {
					bestEdge, bestCand = e, cand
				}
			}
			if haveBest {
				tr.Commit(bestCand)
				cur[t] = bestEdge
				res.Moves++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	res.Assignment = cur
	res.After = core.HyperMakespan(h, cur)
	return res
}

// moveCandidate builds the batch update for moving a task from its current
// edge (procs curProcs, weight curW) to edge e.
func moveCandidate(h *hypergraph.Hypergraph, tr *loadvec.Tracker[int64], curProcs []int32, curW int64, e int32) loadvec.Candidate[int64] {
	newProcs := h.EdgeProcs(e)
	w := h.Weight[e]
	// Union of affected processors with net deltas.
	procs := make([]int32, 0, len(curProcs)+len(newProcs))
	vals := make([]int64, 0, len(curProcs)+len(newProcs))
	seen := make(map[int32]int, len(curProcs)+len(newProcs))
	for _, u := range curProcs {
		seen[u] = len(procs)
		procs = append(procs, u)
		vals = append(vals, tr.Load(u)-curW)
	}
	for _, u := range newProcs {
		if i, ok := seen[u]; ok {
			vals[i] += w
			continue
		}
		seen[u] = len(procs)
		procs = append(procs, u)
		vals = append(vals, tr.Load(u)+w)
	}
	return tr.NewCandidate(procs, vals)
}

// candImproves reports whether applying cand yields a strictly smaller
// descending load vector than the current one.
func candImproves(tr *loadvec.Tracker[int64], cand loadvec.Candidate[int64]) bool {
	cur := tr.Sorted()
	vec := tr.ResultVec(cand)
	return loadvec.CompareVec(vec, cur) < 0
}
