package refine

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"semimatch/internal/core"
	"semimatch/internal/exact"
	"semimatch/internal/hypergraph"
)

func randomHyper(rng *rand.Rand, nTasks, nProcs, maxDeg, maxSize int, maxW int64) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(nTasks, nProcs)
	for t := 0; t < nTasks; t++ {
		d := 1 + rng.Intn(maxDeg)
		for j := 0; j < d; j++ {
			size := 1 + rng.Intn(maxSize)
			if size > nProcs {
				size = nProcs
			}
			w := int64(1)
			if maxW > 1 {
				w = 1 + rng.Int63n(maxW)
			}
			b.AddEdge(t, rng.Perm(nProcs)[:size], w)
		}
	}
	return b.MustBuild()
}

func TestRefineNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHyper(rng, 1+rng.Intn(30), 1+rng.Intn(8), 4, 4, 9)
		a := core.SortedGreedyHyp(h, core.HyperOptions{})
		res := Refine(h, a, Options{})
		if core.ValidateHyperAssignment(h, res.Assignment) != nil {
			return false
		}
		if res.After > res.Before {
			return false
		}
		if res.Before != core.HyperMakespan(h, a) {
			return false
		}
		return res.After == core.HyperMakespan(h, res.Assignment)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := randomHyper(rng, 20, 5, 3, 3, 5)
	a := core.SortedGreedyHyp(h, core.HyperOptions{})
	snapshot := append(core.HyperAssignment(nil), a...)
	Refine(h, a, Options{})
	for i := range a {
		if a[i] != snapshot[i] {
			t.Fatal("input assignment mutated")
		}
	}
}

func TestRefineReachesLocalOptimum(t *testing.T) {
	// Refining a refined assignment must find no further moves.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		h := randomHyper(rng, 1+rng.Intn(25), 2+rng.Intn(6), 4, 3, 7)
		a := core.SortedGreedyHyp(h, core.HyperOptions{})
		r1 := Refine(h, a, Options{})
		r2 := Refine(h, r1.Assignment, Options{})
		if r2.Moves != 0 {
			t.Fatalf("trial %d: second refinement made %d moves", trial, r2.Moves)
		}
	}
}

func TestRefineFindsObviousMove(t *testing.T) {
	// One task, two configurations; greedy rule (pre-add loads on empty
	// processors) picks the heavy one, refinement must move it.
	b := hypergraph.NewBuilder(1, 2)
	b.AddEdge(0, []int{0}, 10)
	b.AddEdge(0, []int{1}, 1)
	h := b.MustBuild()
	a := core.SortedGreedyHyp(h, core.HyperOptions{})
	if core.HyperMakespan(h, a) != 10 {
		t.Fatalf("setup: greedy should fall into the trap, got %d", core.HyperMakespan(h, a))
	}
	res := Refine(h, a, Options{})
	if res.After != 1 || res.Moves != 1 {
		t.Fatalf("after=%d moves=%d, want 1 and 1", res.After, res.Moves)
	}
}

func TestRefineRespectsMaxRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := randomHyper(rng, 40, 4, 4, 3, 9)
	a := core.SortedGreedyHyp(h, core.HyperOptions{})
	res := Refine(h, a, Options{MaxRounds: 1})
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestRefineSingleConfigTasksUntouched(t *testing.T) {
	b := hypergraph.NewBuilder(2, 2)
	b.AddEdge(0, []int{0}, 5)
	b.AddEdge(1, []int{0}, 5)
	h := b.MustBuild()
	a := core.SortedGreedyHyp(h, core.HyperOptions{})
	res := Refine(h, a, Options{})
	if res.Moves != 0 || res.After != 10 {
		t.Fatalf("forced tasks must stay: moves=%d after=%d", res.Moves, res.After)
	}
}

func TestRefineClosesGapTowardOptimal(t *testing.T) {
	// Statistically, refinement should bring greedy closer to optimal on
	// small instances and never below it.
	rng := rand.New(rand.NewSource(5))
	improvedTotal := 0
	for trial := 0; trial < 40; trial++ {
		h := randomHyper(rng, 1+rng.Intn(9), 2+rng.Intn(4), 3, 3, 9)
		a := core.SortedGreedyHyp(h, core.HyperOptions{})
		res := Refine(h, a, Options{})
		_, opt, err := exact.SolveMultiProc(h, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.After < opt {
			t.Fatalf("trial %d: refined %d below optimal %d", trial, res.After, opt)
		}
		improvedTotal += int(res.Before - res.After)
	}
	if improvedTotal == 0 {
		t.Log("refinement never improved in 40 trials (possible but suspicious)")
	}
}

func BenchmarkRefineAfterSGH(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := randomHyper(rng, 5120, 256, 5, 10, 20)
	a := core.SortedGreedyHyp(h, core.HyperOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Refine(h, a, Options{})
	}
}

func TestRefineCtxCancelledStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := randomHyper(rng, 500, 16, 5, 4, 50)
	a := core.SortedGreedyHyp(h, core.HyperOptions{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RefineCtx(ctx, h, a, Options{})
	if !res.Interrupted {
		t.Fatal("pre-cancelled context should interrupt the scan")
	}
	if err := core.ValidateHyperAssignment(h, res.Assignment); err != nil {
		t.Fatal(err)
	}
	if res.After > res.Before {
		t.Fatalf("interrupted refine worsened: %d -> %d", res.Before, res.After)
	}
}

func TestRefineCtxBackgroundMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	h := randomHyper(rng, 80, 8, 4, 3, 9)
	a := core.SortedGreedyHyp(h, core.HyperOptions{})
	plain := Refine(h, a, Options{})
	withCtx := RefineCtx(context.Background(), h, a, Options{})
	if plain.After != withCtx.After || plain.Moves != withCtx.Moves || withCtx.Interrupted {
		t.Fatalf("plain %+v vs ctx %+v", plain, withCtx)
	}
}
