package bench

import (
	"strings"
	"testing"
)

func TestRunAdversarial(t *testing.T) {
	rows := RunAdversarial(6)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Tasks != (1<<r.K)-1 || r.Procs != 1<<r.K {
			t.Fatalf("k=%d: sizes %d/%d", r.K, r.Tasks, r.Procs)
		}
		if r.Basic != int64(r.K) || r.Sorted != int64(r.K) {
			t.Fatalf("k=%d: basic=%d sorted=%d, want %d (the Fig. 3 claim)", r.K, r.Basic, r.Sorted, r.K)
		}
		if r.Optimal != 1 {
			t.Fatalf("k=%d: optimal=%d, want 1", r.K, r.Optimal)
		}
		if r.Double != 1 || r.Expected != 1 {
			t.Fatalf("k=%d: double=%d expected=%d (both escape the bare chain)", r.K, r.Double, r.Expected)
		}
		if r.OnlineComp != float64(r.K) {
			t.Fatalf("k=%d: online ratio %v, want %d", r.K, r.OnlineComp, r.K)
		}
	}
}

func TestFormatAdversarial(t *testing.T) {
	out := FormatAdversarial(RunAdversarial(3))
	if !strings.Contains(out, "optimal") || !strings.Contains(out, "online") {
		t.Fatalf("output:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Fatalf("want header + 2 rows:\n%s", out)
	}
}
