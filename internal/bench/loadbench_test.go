package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"semimatch/internal/encode"
)

func TestParsePromCounters(t *testing.T) {
	text := `# HELP semimatch_requests_total total requests
# TYPE semimatch_requests_total counter
semimatch_requests_total 42
semimatch_cache_hits_total 7.0
semimatch_in_flight 3
semimatch_request_seconds_bucket{le="0.1"} 5
other_requests_total 99
semimatch_bad_total not-a-number
`
	got := parsePromCounters(text)
	want := map[string]float64{
		"semimatch_requests_total":   42,
		"semimatch_cache_hits_total": 7,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("parsed[%q] = %v, want %v", k, got[k], v)
		}
	}
}

func TestPercentileSorted(t *testing.T) {
	if v := percentileSorted(nil, 0.5); v != 0 {
		t.Fatalf("empty percentile = %v", v)
	}
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, c := range []struct {
		p    float64
		want float64
	}{{0.50, 5}, {0.95, 10}, {0.99, 10}, {0.10, 1}, {1.0, 10}} {
		if v := percentileSorted(s, c.p); v != c.want {
			t.Fatalf("p%v = %v, want %v", c.p, v, c.want)
		}
	}
}

// TestIsoShufflePreservesFingerprint: the iso workload's whole premise
// is that a shuffled restatement still hashes to the same canonical
// fingerprint — otherwise "iso" traffic would be miss traffic.
func TestIsoShufflePreservesFingerprint(t *testing.T) {
	text, fp, err := loadInstanceText(loadHotFamily, 42)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	differed := false
	for i := 0; i < 8; i++ {
		iso := isoShuffle(text, rng)
		hi, err := encode.ReadHypergraph(strings.NewReader(iso))
		if err != nil {
			t.Fatalf("shuffle %d produced unreadable text: %v\n%s", i, err, iso)
		}
		fpi, err := encode.FingerprintHypergraph(hi)
		if err != nil {
			t.Fatal(err)
		}
		if fpi != fp {
			t.Fatalf("shuffle %d changed the fingerprint", i)
		}
		if iso != text {
			differed = true
		}
	}
	if !differed {
		t.Fatal("8 shuffles never changed the byte order")
	}
}

// TestRunLoadFakeServer exercises the full measurement loop against a
// stub /solve + /metrics server: request accounting, tier counts,
// percentile ordering, and the /metrics before/after counter deltas.
func TestRunLoadFakeServer(t *testing.T) {
	var requests atomic.Uint64
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"cache_tier":"memory","truncated":false}`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "# TYPE semimatch_requests_total counter\nsemimatch_requests_total %d\nsemimatch_in_flight 1\n", requests.Load())
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadOptions{
		Targets:      []string{ts.URL + "/"}, // trailing slash must normalize away
		Duration:     300 * time.Millisecond,
		Concurrency:  4,
		Seed:         3,
		HotInstances: 2,
		Mix:          LoadMix{RepeatPct: 50, IsoPct: 30, MissPct: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != LoadSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Requests == 0 || rep.QPS <= 0 {
		t.Fatalf("no load measured: %+v", rep)
	}
	if rep.Errors != 0 || rep.Shed != 0 {
		t.Fatalf("errors=%d shed=%d against an always-200 server", rep.Errors, rep.Shed)
	}
	if rep.Warmup != 2 {
		t.Fatalf("warmup = %d, want 2", rep.Warmup)
	}
	if rep.Tiers["memory"] != rep.Requests {
		t.Fatalf("tiers %v vs %d requests", rep.Tiers, rep.Requests)
	}
	if rep.CacheHitRate != 1 {
		t.Fatalf("cache hit rate = %v, want 1", rep.CacheHitRate)
	}
	if rep.P50Ms <= 0 || rep.P50Ms > rep.P95Ms || rep.P95Ms > rep.P99Ms {
		t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v", rep.P50Ms, rep.P95Ms, rep.P99Ms)
	}
	var total uint64
	for _, n := range rep.Workloads {
		total += n
	}
	if total != rep.Requests {
		t.Fatalf("workload counts %v don't sum to %d", rep.Workloads, rep.Requests)
	}
	if rep.Workloads["long"] != 0 {
		t.Fatalf("long workload ran with weight 0: %v", rep.Workloads)
	}
	if len(rep.TargetMetrics) != 1 {
		t.Fatalf("target metrics: %+v", rep.TargetMetrics)
	}
	tm := rep.TargetMetrics[0]
	if tm.ScrapeError != "" {
		t.Fatalf("scrape error: %s", tm.ScrapeError)
	}
	// Warmup happens before the "before" scrape, so the delta counts
	// exactly the measured-window requests.
	if d := tm.Deltas["semimatch_requests_total"]; d != float64(rep.Requests) {
		t.Fatalf("requests delta = %v, want %d", d, rep.Requests)
	}
}

func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadOptions{}); err == nil {
		t.Fatal("no targets accepted")
	}
	if _, err := RunLoad(context.Background(), LoadOptions{Targets: []string{"http://x", " "}}); err == nil {
		t.Fatal("blank target accepted")
	}
}

// TestRunLoadCanceledContext: a canceled context stops the workers
// promptly instead of running out the full duration.
func TestRunLoadCanceledContext(t *testing.T) {
	var requests atomic.Uint64
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		fmt.Fprint(w, `{"cache_tier":"none"}`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "semimatch_requests_total 0\n")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rep, err := RunLoad(ctx, LoadOptions{
		Targets:      []string{ts.URL},
		Duration:     time.Hour,
		Concurrency:  2,
		HotInstances: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("canceled run did not stop promptly")
	}
	if rep.Requests != 0 {
		t.Fatalf("canceled run issued %d measured requests", rep.Requests)
	}
}
