// Perf micro-grid: the repo's recorded performance trajectory.
//
// RunPerf runs a seeded grid of hard 25-task instances through the
// sequential and parallel branch-and-bound solvers and reports wall
// time, nodes expanded, nodes/sec and the parallel-over-sequential
// speedup, per case and aggregated per family. cmd/semibench's -bench
// mode writes the result as BENCH.json — the machine-readable format
// every future perf PR regresses against (see EXPERIMENTS.md for the
// recorded runs).
//
// The grid has two instance shapes per problem class:
//
//   - partition: identical-machines instances (every task eligible on
//     every processor at the same weight) — maximum processor symmetry
//     and bin-packing-hard, the engine's symmetry breaking shines;
//   - random: restricted random eligibility with weighted edges — the
//     repo's native instance shape at exact-solver scale.
package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/exact"
	"semimatch/internal/hypergraph"
	"semimatch/internal/registry"
	"semimatch/internal/solve"
	"semimatch/internal/telemetry"
)

// PerfFamily is one instance family of the perf grid.
type PerfFamily struct {
	Name  string
	Class registry.Class
	// Shape is "partition" (identical machines) or "random" (restricted
	// eligibility).
	Shape          string
	NTasks, NProcs int
	WMin, WMax     int64
	// Degree bounds configurations per task; MaxEdgeSize bounds pins per
	// hyperedge (random MULTIPROC only).
	Degree, MaxEdgeSize int
}

// DefaultPerfFamilies is the recorded grid: per class one
// partition-shaped and one random-shaped hard family, plus larger -xl
// families that mark the engine's current frontier.
var DefaultPerfFamilies = []PerfFamily{
	{Name: "mp-partition-hard", Class: registry.MultiProc, Shape: "partition", NTasks: 25, NProcs: 4, WMin: 20, WMax: 80},
	{Name: "mp-random-hard", Class: registry.MultiProc, Shape: "random", NTasks: 25, NProcs: 8, WMin: 1, WMax: 60, Degree: 5, MaxEdgeSize: 2},
	{Name: "sp-partition-hard", Class: registry.SingleProc, Shape: "partition", NTasks: 25, NProcs: 4, WMin: 20, WMax: 80},
	{Name: "sp-restricted-hard", Class: registry.SingleProc, Shape: "restricted", NTasks: 26, NProcs: 5, WMin: 20, WMax: 80, Degree: 4},
	// The -xl families are out of reach for the pre-flat-core sequential
	// engine (BENCH_3 and earlier): on mp-partition-xl it exhausts a
	// 100M-node budget on every seed, and on sp-restricted-xl/seed=2 it
	// exhausts the budget holding a suboptimal incumbent (389 vs the true
	// 386). The flat-core parallel engine closes every -xl case.
	{Name: "mp-partition-xl", Class: registry.MultiProc, Shape: "partition", NTasks: 32, NProcs: 5, WMin: 20, WMax: 80},
	{Name: "sp-restricted-xl", Class: registry.SingleProc, Shape: "restricted", NTasks: 48, NProcs: 6, WMin: 20, WMax: 80, Degree: 4},
}

// PerfOptions configures RunPerf.
type PerfOptions struct {
	// Workers is the parallel solvers' pool size; 0 means
	// max(4, GOMAXPROCS) — the speedup column is only meaningful with a
	// real pool.
	Workers int
	// Seeds is the number of instances per family; 0 means 5.
	Seeds int
	// MaxNodes is the per-solve node budget; 0 means 300 million (a few
	// seconds per sequential solve at worst).
	MaxNodes int64
	// Families overrides the grid; nil means DefaultPerfFamilies.
	Families []PerfFamily
	// Ledger, when non-nil, receives one solve-ledger record per measured
	// solve (source "bench") — the training data for instance-aware
	// algorithm selection.
	Ledger *telemetry.Ledger
	// Trace attaches a telemetry span to every measured solve. Node
	// counts are unchanged by construction (the engines hook progress and
	// spans at existing checkpoints only); recording a BENCH with Trace
	// on doubles as the overhead proof — see EXPERIMENTS.md.
	Trace bool
}

func (o PerfOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	if g := runtime.GOMAXPROCS(0); g > 4 {
		return g
	}
	return 4
}

func (o PerfOptions) seeds() int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	return 5
}

func (o PerfOptions) maxNodes() int64 {
	if o.MaxNodes > 0 {
		return o.MaxNodes
	}
	return 300_000_000
}

func (o PerfOptions) families() []PerfFamily {
	if len(o.Families) > 0 {
		return o.Families
	}
	return DefaultPerfFamilies
}

// PerfCase is one (family, seed, solver) measurement.
type PerfCase struct {
	Family       string  `json:"family"`
	Case         string  `json:"case"`
	Class        string  `json:"class"`
	Solver       string  `json:"solver"`
	Workers      int     `json:"workers"`
	WallSeconds  float64 `json:"wall_seconds"`
	Nodes        int64   `json:"nodes"`
	NodesPerSec  float64 `json:"nodes_per_sec"`
	Subproblems  int64   `json:"subproblems,omitempty"`
	Steals       int64   `json:"steals,omitempty"`
	Makespan     int64   `json:"makespan"`
	Optimal      bool    `json:"optimal"`
	Limit        bool    `json:"limit,omitempty"` // node budget exhausted
	SpeedupVsSeq float64 `json:"speedup_vs_seq,omitempty"`
}

// PerfFamilySummary aggregates one family.
type PerfFamilySummary struct {
	Family    string `json:"family"`
	SeqSolver string `json:"seq_solver"`
	ParSolver string `json:"par_solver"`
	Cases     int    `json:"cases"`
	// SeqSolved/ParSolved count instances proven optimal within budget.
	SeqSolved  int     `json:"seq_solved"`
	ParSolved  int     `json:"par_solved"`
	SeqSeconds float64 `json:"seq_seconds"`
	ParSeconds float64 `json:"par_seconds"`
	// WallSpeedup is total sequential wall over total parallel wall;
	// GeomeanSpeedup is the geometric mean of per-seed ratios. When the
	// sequential solver hit its node budget and the parallel one solved,
	// the ratio understates the true speedup.
	WallSpeedup    float64 `json:"wall_speedup"`
	GeomeanSpeedup float64 `json:"geomean_speedup"`
}

// PerfReport is the BENCH.json payload.
type PerfReport struct {
	Schema     string              `json:"schema"`
	Created    string              `json:"created"`
	GoVersion  string              `json:"go"`
	GOOS       string              `json:"goos"`
	GOARCH     string              `json:"goarch"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Workers    int                 `json:"workers"`
	Seeds      int                 `json:"seeds"`
	MaxNodes   int64               `json:"max_nodes"`
	Cases      []PerfCase          `json:"cases"`
	Summary    []PerfFamilySummary `json:"summary"`
	// Loadbench, when present, is a service-level load-generation run
	// (cmd/semiload) folded into this snapshot — its own schema,
	// "semimatch-loadbench/v1", versioned independently of the solver
	// grid above.
	Loadbench *LoadReport `json:"loadbench,omitempty"`
	// Sessionload, when present, is a dynamic-session load run
	// (cmd/semiload -session) folded into this snapshot — its own
	// schema, "semimatch-sessionload/v1": per-event latency percentiles,
	// migration counts and the warm/cold node ratio of a scripted
	// session against a live server.
	Sessionload *SessionLoadReport `json:"sessionload,omitempty"`
}

// perfHyper generates one MULTIPROC perf instance.
func perfHyper(f PerfFamily, seed int64) (*hypergraph.Hypergraph, error) {
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder(f.NTasks, f.NProcs)
	switch f.Shape {
	case "partition":
		for t := 0; t < f.NTasks; t++ {
			w := f.WMin + rng.Int63n(f.WMax-f.WMin+1)
			for v := 0; v < f.NProcs; v++ {
				b.AddEdge(t, []int{v}, w)
			}
		}
	case "random":
		for t := 0; t < f.NTasks; t++ {
			d := 1 + rng.Intn(f.Degree)
			for j := 0; j < d; j++ {
				size := 1 + rng.Intn(f.MaxEdgeSize)
				if size > f.NProcs {
					size = f.NProcs
				}
				w := f.WMin + rng.Int63n(f.WMax-f.WMin+1)
				b.AddEdge(t, rng.Perm(f.NProcs)[:size], w)
			}
		}
	default:
		return nil, fmt.Errorf("bench: unknown perf shape %q", f.Shape)
	}
	return b.Build()
}

// perfGraph generates one SINGLEPROC perf instance.
func perfGraph(f PerfFamily, seed int64) (*bipartite.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	b := bipartite.NewBuilder(f.NTasks, f.NProcs)
	switch f.Shape {
	case "partition":
		for t := 0; t < f.NTasks; t++ {
			w := f.WMin + rng.Int63n(f.WMax-f.WMin+1)
			for v := 0; v < f.NProcs; v++ {
				b.AddWeightedEdge(t, v, w)
			}
		}
	case "random":
		for t := 0; t < f.NTasks; t++ {
			d := 1 + rng.Intn(f.Degree)
			if d > f.NProcs {
				d = f.NProcs
			}
			for _, v := range rng.Perm(f.NProcs)[:d] {
				b.AddWeightedEdge(t, v, f.WMin+rng.Int63n(f.WMax-f.WMin+1))
			}
		}
	case "restricted":
		// Restricted identical machines: one weight per task, a random
		// eligible subset of processors — the classic hard shape of
		// makespan scheduling under eligibility constraints.
		for t := 0; t < f.NTasks; t++ {
			w := f.WMin + rng.Int63n(f.WMax-f.WMin+1)
			d := 2 + rng.Intn(f.Degree-1)
			if d > f.NProcs {
				d = f.NProcs
			}
			for _, v := range rng.Perm(f.NProcs)[:d] {
				b.AddWeightedEdge(t, v, w)
			}
		}
	default:
		return nil, fmt.Errorf("bench: unknown perf shape %q", f.Shape)
	}
	return b.Build()
}

// perfSolvers resolves the sequential/parallel solver pair for a class.
func perfSolvers(c registry.Class) (seq, par *registry.Solver, err error) {
	name := "BnB-SP"
	if c == registry.MultiProc {
		name = "BnB-MP"
	}
	if seq, err = registry.LookupClass(c, name); err != nil {
		return nil, nil, err
	}
	par = registry.Preferred(seq)
	if par == seq {
		return nil, nil, fmt.Errorf("bench: %s has no parallel counterpart registered", name)
	}
	return seq, par, nil
}

// RunPerf runs the perf micro-grid. Every solve observes ctx; a
// cancelled context aborts the run (truncated timings would poison the
// trajectory). When both solvers prove optimality on an instance their
// makespans must agree — RunPerf fails otherwise, so every recorded
// BENCH.json doubles as an equivalence witness.
func RunPerf(ctx context.Context, o PerfOptions) (*PerfReport, error) {
	rep := &PerfReport{
		Schema:     "semimatch-bench/v1",
		Created:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    o.workers(),
		Seeds:      o.seeds(),
		MaxNodes:   o.maxNodes(),
	}
	for _, fam := range o.families() {
		seqSol, parSol, err := perfSolvers(fam.Class)
		if err != nil {
			return nil, err
		}
		sum := PerfFamilySummary{
			Family:    fam.Name,
			SeqSolver: seqSol.Name,
			ParSolver: parSol.Name,
		}
		var logSum float64
		for seed := 1; seed <= o.seeds(); seed++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("bench: perf run aborted: %w", err)
			}
			caseName := fmt.Sprintf("%s/seed=%d", fam.Name, seed)
			var g *bipartite.Graph
			var h *hypergraph.Hypergraph
			if fam.Class == registry.SingleProc {
				g, err = perfGraph(fam, int64(seed))
			} else {
				h, err = perfHyper(fam, int64(seed))
			}
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", caseName, err)
			}
			measure := func(sol *registry.Solver, workers int) (PerfCase, error) {
				var st exact.SearchStats
				opts := registry.Options{
					BnB:     exact.Options{MaxNodes: o.maxNodes(), Stats: &st},
					Workers: workers,
				}
				var tr *telemetry.Span
				if o.Trace {
					tr = telemetry.StartSpan("bench-solve")
					tr.SetAttr("case", caseName)
					tr.SetAttr("solver", sol.Name)
					opts.BnB.Trace = tr
				}
				start := time.Now()
				var m int64
				var solveErr error
				if fam.Class == registry.SingleProc {
					var a core.Assignment
					a, solveErr = sol.SolveSingle(ctx, g, opts)
					if a != nil {
						m = core.Makespan(g, a)
					}
				} else {
					var a core.HyperAssignment
					a, solveErr = sol.SolveHyper(ctx, h, opts)
					if a != nil {
						m = core.HyperMakespan(h, a)
					}
				}
				wall := time.Since(start).Seconds()
				tr.End()
				if solveErr != nil && !registry.IncumbentError(solveErr) {
					return PerfCase{}, fmt.Errorf("bench: %s: %s: %w", caseName, sol.Name, solveErr)
				}
				// A deadline that expired mid-solve yields an incumbent
				// error too, but its timing is garbage — abort rather
				// than record it (the ctx.Err guard above only catches
				// cancellation between seeds).
				if ctx.Err() != nil {
					return PerfCase{}, fmt.Errorf("bench: perf run aborted: %w", ctx.Err())
				}
				pc := PerfCase{
					Family:      fam.Name,
					Case:        caseName,
					Class:       fam.Class.String(),
					Solver:      sol.Name,
					Workers:     workers,
					WallSeconds: wall,
					Nodes:       st.Nodes,
					Subproblems: st.Subproblems,
					Steals:      st.Steals,
					Makespan:    m,
					Optimal:     solveErr == nil,
					Limit:       errors.Is(solveErr, exact.ErrLimit),
				}
				if wall > 0 {
					pc.NodesPerSec = float64(st.Nodes) / wall
				}
				if o.Ledger != nil {
					var feats telemetry.InstanceFeatures
					if fam.Class == registry.SingleProc {
						feats = solve.Features(solve.Bipartite(g))
					} else {
						feats = solve.Features(solve.Hyper(h))
					}
					status := "optimal"
					if solveErr != nil {
						status = "truncated"
					}
					if err := o.Ledger.Append(telemetry.SolveRecord{
						Source:           "bench",
						InstanceFeatures: feats,
						Algorithm:        sol.Name,
						WallS:            wall,
						Nodes:            st.Nodes,
						Makespan:         m,
						Bound:            st.Bound,
						Status:           status,
					}); err != nil {
						return PerfCase{}, fmt.Errorf("bench: ledger: %w", err)
					}
				}
				return pc, nil
			}
			seqCase, err := measure(seqSol, 1)
			if err != nil {
				return nil, err
			}
			parCase, err := measure(parSol, o.workers())
			if err != nil {
				return nil, err
			}
			if seqCase.Optimal && parCase.Optimal && seqCase.Makespan != parCase.Makespan {
				return nil, fmt.Errorf("bench: %s: optimal makespans disagree: %s=%d, %s=%d",
					caseName, seqSol.Name, seqCase.Makespan, parSol.Name, parCase.Makespan)
			}
			ratio := seqCase.WallSeconds / parCase.WallSeconds
			parCase.SpeedupVsSeq = ratio
			rep.Cases = append(rep.Cases, seqCase, parCase)
			sum.Cases++
			if seqCase.Optimal {
				sum.SeqSolved++
			}
			if parCase.Optimal {
				sum.ParSolved++
			}
			sum.SeqSeconds += seqCase.WallSeconds
			sum.ParSeconds += parCase.WallSeconds
			logSum += math.Log(ratio)
		}
		if sum.ParSeconds > 0 {
			sum.WallSpeedup = sum.SeqSeconds / sum.ParSeconds
		}
		sum.GeomeanSpeedup = math.Exp(logSum / float64(sum.Cases))
		rep.Summary = append(rep.Summary, sum)
	}
	return rep, nil
}

// WritePerfJSON writes the report as indented JSON — the BENCH.json
// trajectory file format.
func WritePerfJSON(w io.Writer, rep *PerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FormatPerfSummary renders the per-family aggregate as a text table —
// the human-readable view of BENCH.json.
func FormatPerfSummary(rep *PerfReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "perf grid: %d seeds/family, workers=%d, budget=%d nodes (%s %s/%s, GOMAXPROCS=%d)\n",
		rep.Seeds, rep.Workers, rep.MaxNodes, rep.GoVersion, rep.GOOS, rep.GOARCH, rep.GOMAXPROCS)
	fmt.Fprintf(&sb, "%-20s %-10s %-12s %9s %9s %9s %9s %10s %9s\n",
		"family", "seq", "par", "seq-opt", "par-opt", "seq-s", "par-s", "wall-spd", "geo-spd")
	for _, s := range rep.Summary {
		fmt.Fprintf(&sb, "%-20s %-10s %-12s %6d/%-2d %6d/%-2d %9.3f %9.3f %9.2fx %8.2fx\n",
			s.Family, s.SeqSolver, s.ParSolver,
			s.SeqSolved, s.Cases, s.ParSolved, s.Cases,
			s.SeqSeconds, s.ParSeconds, s.WallSpeedup, s.GeomeanSpeedup)
	}
	return sb.String()
}
