package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"semimatch/internal/registry"
	"semimatch/internal/telemetry"
)

// tinyPerfOptions keeps the grid small enough for CI: the instances are
// trivial, only the plumbing is under test.
func tinyPerfOptions() PerfOptions {
	return PerfOptions{
		Workers:  2,
		Seeds:    2,
		MaxNodes: 2_000_000,
		Families: []PerfFamily{
			{Name: "mp-tiny", Class: registry.MultiProc, Shape: "partition", NTasks: 8, NProcs: 3, WMin: 2, WMax: 9},
			{Name: "sp-tiny", Class: registry.SingleProc, Shape: "restricted", NTasks: 8, NProcs: 3, WMin: 2, WMax: 9, Degree: 3},
		},
	}
}

func TestRunPerfSmoke(t *testing.T) {
	rep, err := RunPerf(context.Background(), tinyPerfOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "semimatch-bench/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Cases) != 2*2*2 { // families × seeds × (seq, par)
		t.Fatalf("want 8 cases, got %d", len(rep.Cases))
	}
	for _, c := range rep.Cases {
		// Nodes may legitimately be zero: the strong root bounds can prove
		// the greedy incumbent optimal before any node is expanded.
		if c.WallSeconds < 0 || c.Nodes < 0 || c.Makespan <= 0 {
			t.Fatalf("degenerate case: %+v", c)
		}
		if !c.Optimal {
			t.Fatalf("tiny instance not solved to optimality: %+v", c)
		}
	}
	if len(rep.Summary) != 2 {
		t.Fatalf("want 2 family summaries, got %d", len(rep.Summary))
	}
	for _, s := range rep.Summary {
		if s.SeqSolved != 2 || s.ParSolved != 2 || s.Cases != 2 {
			t.Fatalf("summary counts wrong: %+v", s)
		}
		if s.GeomeanSpeedup <= 0 || s.WallSpeedup <= 0 {
			t.Fatalf("speedups missing: %+v", s)
		}
	}
	// Per seed, sequential and parallel must report the same optimum.
	bySeed := map[string]int64{}
	for _, c := range rep.Cases {
		if prev, ok := bySeed[c.Case]; ok && prev != c.Makespan {
			t.Fatalf("case %s: makespans disagree (%d vs %d)", c.Case, prev, c.Makespan)
		}
		bySeed[c.Case] = c.Makespan
	}
}

func TestWritePerfJSONRoundTrips(t *testing.T) {
	rep, err := RunPerf(context.Background(), tinyPerfOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePerfJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back PerfReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH.json does not round-trip: %v", err)
	}
	if back.Schema != rep.Schema || len(back.Cases) != len(rep.Cases) || len(back.Summary) != len(rep.Summary) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if !strings.Contains(buf.String(), "\"speedup_vs_seq\"") {
		t.Fatal("parallel rows should carry speedup_vs_seq")
	}
}

// TestRunPerfLedgerAndTraceInvariance runs the tiny grid twice — once
// plain, once with tracing and a ledger — and checks (a) the ledger got
// one well-formed record per measured solve and (b) sequential node
// counts are bit-identical with tracing on, the invariant BENCH_5.json
// is recorded under.
func TestRunPerfLedgerAndTraceInvariance(t *testing.T) {
	plain, err := RunPerf(context.Background(), tinyPerfOptions())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	opts := tinyPerfOptions()
	opts.Trace = true
	opts.Ledger = telemetry.NewLedger(&buf)
	traced, err := RunPerf(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := opts.Ledger.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := telemetry.ReadLedger(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(traced.Cases) {
		t.Fatalf("ledger has %d records for %d cases", len(recs), len(traced.Cases))
	}
	for _, rec := range recs {
		if rec.Source != "bench" {
			t.Fatalf("record source = %q, want bench", rec.Source)
		}
		if rec.Algorithm == "" || rec.Status != "optimal" || rec.Makespan <= 0 {
			t.Fatalf("degenerate ledger record: %+v", rec)
		}
		if rec.Tasks != 8 || rec.Procs != 3 {
			t.Fatalf("record features wrong: %+v", rec.InstanceFeatures)
		}
	}

	seq := map[string]int64{}
	for _, c := range plain.Cases {
		if !strings.Contains(c.Solver, "Par") {
			seq[c.Case] = c.Nodes
		}
	}
	for _, c := range traced.Cases {
		if strings.Contains(c.Solver, "Par") {
			continue
		}
		if want, ok := seq[c.Case]; !ok || c.Nodes != want {
			t.Fatalf("case %s: traced run expanded %d nodes, plain run %d — tracing perturbed the search", c.Case, c.Nodes, want)
		}
	}
}

func TestRunPerfCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunPerf(ctx, tinyPerfOptions()); err == nil {
		t.Fatal("cancelled context must abort the perf run")
	}
}

func TestFormatPerfSummary(t *testing.T) {
	rep, err := RunPerf(context.Background(), tinyPerfOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatPerfSummary(rep)
	for _, want := range []string{"mp-tiny", "sp-tiny", "BnB-MP-Par", "BnB-SP-Par"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
