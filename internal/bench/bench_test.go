package bench

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"semimatch/internal/gen"
)

// quickOpts keeps harness tests CI-sized.
var quickOpts = Options{Quick: true, Seeds: 2}

// tinySizes is a reduced grid for assertions that don't need the paper's
// scale (format, naming, option plumbing). P stays at 128 because the
// two-stage generator needs a processor per group for the G=128 families;
// the "5-1" label is kept so instance names match the real grid's.
var tinySizes = []SizeRow{
	{"5-1", 640, 128},
}

// tableOpts returns CI-sized options normally and tiny ones under -short,
// for tests whose assertions hold at any instance scale.
func tableOpts() Options {
	if testing.Short() {
		return Options{Seeds: 2, SizesOverride: tinySizes}
	}
	return quickOpts
}

func TestRunHyperTableUnitQuick(t *testing.T) {
	opts := tableOpts()
	res, err := RunHyperTable(context.Background(), gen.Unit, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Families)*len(opts.sizes()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.LB < 1 {
			t.Fatalf("%s: LB %v", r.Name, r.LB)
		}
		for _, a := range HyperAlgorithms {
			q := r.Quality[a]
			if q < 1.0 {
				t.Fatalf("%s %s: quality %v < 1 (heuristic below the lower bound)", r.Name, a, q)
			}
			if q > 50 {
				t.Fatalf("%s %s: quality %v absurd", r.Name, a, q)
			}
		}
	}
	// Naming convention.
	if !strings.HasPrefix(res.Rows[0].Name, "FG-") || !strings.HasSuffix(res.Rows[0].Name, "-MP") {
		t.Fatalf("unit name = %q", res.Rows[0].Name)
	}
}

func TestRunHyperTableWeightedNames(t *testing.T) {
	// Only the naming convention is under test — tiny instances suffice.
	tiny := Options{Seeds: 1, SizesOverride: tinySizes[:1]}
	res, err := RunHyperTable(context.Background(), gen.Related, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(res.Rows[0].Name, "-MP-W") {
		t.Fatalf("weighted name = %q", res.Rows[0].Name)
	}
	res2, err := RunHyperTable(context.Background(), gen.Random, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(res2.Rows[0].Name, "-MP-R") {
		t.Fatalf("random name = %q", res2.Rows[0].Name)
	}
}

func TestNaiveMatchesFastQuality(t *testing.T) {
	// The ablation switch must not change results, only speed — an
	// identity that holds at any scale, so tiny instances suffice.
	tiny := Options{Seeds: 1, SizesOverride: tinySizes}
	fast, err := RunHyperTable(context.Background(), gen.Related, tiny)
	if err != nil {
		t.Fatal(err)
	}
	tiny.Naive = true
	naive, err := RunHyperTable(context.Background(), gen.Related, tiny)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast.Rows {
		for _, a := range HyperAlgorithms {
			if fast.Rows[i].Quality[a] != naive.Rows[i].Quality[a] {
				t.Fatalf("%s %s: fast %v != naive %v", fast.Rows[i].Name, a,
					fast.Rows[i].Quality[a], naive.Rows[i].Quality[a])
			}
		}
	}
}

func TestFormatHyperOutputs(t *testing.T) {
	res, err := RunHyperTable(context.Background(), gen.Unit, Options{Seeds: 1, SizesOverride: tinySizes})
	if err != nil {
		t.Fatal(err)
	}
	statsOut := FormatHyperStats(res)
	if !strings.Contains(statsOut, "|N|") || !strings.Contains(statsOut, "FG-5-1-MP") {
		t.Fatalf("stats output:\n%s", statsOut)
	}
	tableOut := FormatHyperTable(res)
	for _, a := range HyperAlgorithms {
		if !strings.Contains(tableOut, a) {
			t.Fatalf("table output missing %s:\n%s", a, tableOut)
		}
	}
	if !strings.Contains(tableOut, "Average quality") || !strings.Contains(tableOut, "Average time") {
		t.Fatalf("table output missing summary:\n%s", tableOut)
	}
}

func TestRunHyperTableCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunHyperTable(ctx, gen.Unit, Options{Seeds: 1, SizesOverride: tinySizes})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunSingleProcQuick(t *testing.T) {
	opts := tableOpts()
	for _, generator := range []gen.Generator{gen.FewgManyg, gen.HiLo} {
		res, err := RunSingleProc(context.Background(), generator, 5, 32, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(opts.sizes()) {
			t.Fatalf("rows = %d", len(res.Rows))
		}
		for _, r := range res.Rows {
			if r.Opt < 1 {
				t.Fatalf("%s: OPT %v", r.Name, r.Opt)
			}
			for _, a := range SPAlgorithms {
				if r.Quality[a] < 1.0 {
					t.Fatalf("%s %s: quality %v < 1 (heuristic beat the exact optimum)", r.Name, a, r.Quality[a])
				}
			}
		}
		out := FormatSPTable(res)
		if !strings.Contains(out, "OPT") || !strings.Contains(out, "expected") {
			t.Fatalf("SP table output:\n%s", out)
		}
	}
}

func TestRunSingleProcDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err := RunSingleProc(ctx, gen.FewgManyg, 5, 32, Options{Seeds: 1, SizesOverride: tinySizes})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSortedNotWorseThanBasicOnAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("replication test needs paper-scale instances")
	}
	// The paper's central SINGLEPROC claim: sorting improves basic-greedy.
	res, err := RunSingleProc(context.Background(), gen.FewgManyg, 5, 32, Options{Quick: true, Seeds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgQual["sorted"] > res.AvgQual["basic"]+1e-9 {
		t.Fatalf("sorted (%v) worse than basic (%v)", res.AvgQual["sorted"], res.AvgQual["basic"])
	}
}

func TestRankByQuality(t *testing.T) {
	avg := map[string]float64{"a": 1.5, "b": 1.2, "c": 1.9}
	got := RankByQuality(avg, []string{"a", "b", "c"})
	if got[0] != "b" || got[2] != "c" {
		t.Fatalf("rank = %v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	if (Options{}).seeds() != 10 {
		t.Fatal("default seeds must be 10")
	}
	if (Options{Quick: true}).seeds() != 3 {
		t.Fatal("quick seeds must be 3")
	}
	if (Options{Seeds: 4}).seeds() != 4 {
		t.Fatal("explicit seeds")
	}
	if (Options{}).workers() < 1 {
		t.Fatal("workers must be >= 1")
	}
	if len((Options{Quick: true}).sizes()) >= len((Options{}).sizes()) {
		t.Fatal("quick grid must be smaller")
	}
}

// The harness used to panic on unknown algorithm names; now they resolve
// through the registry and come back as suggested-names errors before any
// job runs.
func TestUnknownAlgorithmIsError(t *testing.T) {
	opts := Options{Seeds: 1, SizesOverride: tinySizes, Algorithms: []string{"SGH", "nope"}}
	if _, err := RunHyperTable(context.Background(), gen.Unit, opts); err == nil || !strings.Contains(err.Error(), `"nope"`) {
		t.Fatalf("RunHyperTable should name the unknown algorithm, got %v", err)
	}
	if _, err := RunSingleProc(context.Background(), gen.FewgManyg, 10, 32, opts); err == nil || !strings.Contains(err.Error(), `"SGH"`) {
		t.Fatalf("RunSingleProc should reject the MULTIPROC-only name, got %v", err)
	}
}

// Aliases and auxiliary solvers are addressable as table columns, and the
// result records the canonical column order it ran with.
func TestAlgorithmsOverrideResolvesAliases(t *testing.T) {
	opts := Options{Seeds: 1, SizesOverride: tinySizes, Algorithms: []string{"sgh", "evg-exact"}}
	res, err := RunHyperTable(context.Background(), gen.Unit, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SGH", "EVG-X"}
	if len(res.Algorithms) != 2 || res.Algorithms[0] != want[0] || res.Algorithms[1] != want[1] {
		t.Fatalf("Algorithms = %v, want %v", res.Algorithms, want)
	}
	for _, r := range res.Rows {
		for _, name := range want {
			if r.Quality[name] < 1 {
				t.Fatalf("%s: %s quality %v < 1", r.Name, name, r.Quality[name])
			}
		}
	}
	if out := FormatHyperTable(res); !strings.Contains(out, "EVG-X") {
		t.Fatalf("format should use the run's column order:\n%s", out)
	}
}

// An exact column that exhausts its node budget reports its incumbent's
// quality instead of aborting the table.
func TestExactColumnKeepsIncumbent(t *testing.T) {
	opts := Options{Seeds: 1, SizesOverride: tinySizes, Algorithms: []string{"SGH", "bnb"}}
	res, err := RunHyperTable(context.Background(), gen.Unit, opts)
	if err != nil {
		t.Fatalf("BnB column must degrade to its incumbent, not abort: %v", err)
	}
	for _, r := range res.Rows {
		// The B&B seeds its incumbent from sorted greedy, so it can only
		// match or beat the SGH column.
		if r.Quality["BnB-MP"] < 1 || r.Quality["BnB-MP"] > r.Quality["SGH"] {
			t.Fatalf("%s: BnB-MP incumbent quality %v vs SGH %v", r.Name, r.Quality["BnB-MP"], r.Quality["SGH"])
		}
	}
}
