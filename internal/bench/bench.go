// Package bench is the experiment harness that regenerates every table of
// the paper's evaluation (Sec. V): Table I (instance statistics), Tables
// II/III (MULTIPROC quality vs. the lower bound, unweighted/weighted), the
// technical report's random-weights table, and the SINGLEPROC quality
// tables summarized in Sec. V-B.
//
// Methodology, matching the paper: for every parameter set, 10 random
// instances are generated (seeds 1..10); quality columns report the median
// over instances of makespan/LB (or makespan/OPT for SINGLEPROC); time
// rows report the mean wall-clock seconds over all instances in the table.
// Instance jobs are sharded over the batch worker pool (one instance per
// work item, batch.ForEach), so a table run uses every core and observes
// the caller's context — a cancelled or expired context aborts the
// remaining jobs promptly. Algorithm timings are taken inside each job, so
// parallelism does not change the reported work (only scheduling noise —
// pass Workers=1 for timing-grade runs).
package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"semimatch/internal/batch"
	"semimatch/internal/core"
	"semimatch/internal/gen"
	"semimatch/internal/registry"
	"semimatch/internal/stats"
)

// Options configures a harness run.
type Options struct {
	// Seeds is the number of random instances per parameter set
	// (paper: 10). 0 means 10.
	Seeds int
	// Quick restricts the run to the two smallest size rows per family
	// with 3 seeds — CI-sized.
	Quick bool
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Naive switches the vector heuristics to their naive
	// implementations (ablation).
	Naive bool
	// SizesOverride replaces the size grid entirely (tests, custom runs).
	SizesOverride []SizeRow
	// Algorithms replaces the default table columns. Names resolve
	// through the solver registry for the table's problem class; an
	// unknown name fails the run with a suggested-names error instead of
	// panicking.
	Algorithms []string
}

func (o Options) seeds() int {
	if o.Quick {
		return 3
	}
	if o.Seeds <= 0 {
		return 10
	}
	return o.Seeds
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SizeRow is one (n, p) size point of the paper's experiment grid. The
// paper encodes them as n/256 and p/256: 5-1, 20-1, 20-4, 80-1, 80-4,
// 80-16 (with n ≥ 5p).
type SizeRow struct {
	Label string
	N, P  int
}

// Sizes is the full grid of Table I.
var Sizes = []SizeRow{
	{"5-1", 1280, 256},
	{"20-1", 5120, 256},
	{"20-4", 5120, 1024},
	{"80-1", 20480, 256},
	{"80-4", 20480, 1024},
	{"80-16", 20480, 4096},
}

// QuickSizes is the reduced grid used with Options.Quick.
var QuickSizes = []SizeRow{
	{"5-1", 1280, 256},
	{"20-4", 5120, 1024},
}

func (o Options) sizes() []SizeRow {
	if len(o.SizesOverride) > 0 {
		return o.SizesOverride
	}
	if o.Quick {
		return QuickSizes
	}
	return Sizes
}

// Family is one generator family column block: the instance-name prefix
// and the generator/group parameters behind it.
type Family struct {
	Prefix string
	Gen    gen.Generator
	G      int
}

// Families lists the four hypergraph families of Tables I–III: FewgManyg
// with few (g=32, "FG") and many (g=128, "MG") groups, and HiLo likewise
// ("HLF", "HLM").
var Families = []Family{
	{"FG", gen.FewgManyg, 32},
	{"MG", gen.FewgManyg, 128},
	{"HLF", gen.HiLo, 32},
	{"HLM", gen.HiLo, 128},
}

// HyperAlgorithms is the fixed algorithm order of Tables II/III — the
// registry's MULTIPROC heuristic lineup.
var HyperAlgorithms = registry.Names(registry.Heuristics(registry.MultiProc))

// resolveAlgorithms maps table column names to registry solvers and their
// canonical names; unknown names yield the registry's suggested-names
// error rather than a panic deep inside a worker.
func resolveAlgorithms(class registry.Class, names, def []string) ([]string, []*registry.Solver, error) {
	algs, sols, err := registry.ResolveClass(class, names, def)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: %w", err)
	}
	return algs, sols, nil
}

// HyperRow is one instance row of Tables I/II/III (a family × size point,
// aggregated over seeds).
type HyperRow struct {
	Name     string
	V1, V2   int
	NumEdges int                      // median |N|
	NumPins  int                      // median Σ|h∩V2|
	LB       float64                  // median lower bound
	Quality  map[string]float64       // algorithm → median makespan/LB
	Times    map[string]time.Duration // algorithm → mean runtime
}

// HyperResult is a full table: rows plus the per-algorithm averages the
// paper prints at the bottom.
type HyperResult struct {
	Weights gen.WeightScheme
	// Algorithms is the column order of the run (canonical registry
	// names) — HyperAlgorithms unless Options.Algorithms overrode it.
	Algorithms []string
	Rows       []HyperRow
	AvgQual    map[string]float64
	AvgTime    map[string]time.Duration
}

// RunHyperTable regenerates Table II (Unit), Table III (Related) or the TR
// random-weights table (Random), per the weight scheme. Jobs — one
// generated instance each — run on the batch worker pool under ctx; a
// cancelled context aborts the run and returns its error.
func RunHyperTable(ctx context.Context, weights gen.WeightScheme, o Options) (*HyperResult, error) {
	const dv, dh = 5, 10 // the parameter choice detailed in the paper
	algs, sols, err := resolveAlgorithms(registry.MultiProc, o.Algorithms, HyperAlgorithms)
	if err != nil {
		return nil, err
	}
	type job struct {
		famIdx, sizeIdx, seed int
	}
	type obs struct {
		numEdges, numPins int
		lb                int64
		ratio             map[string]float64
		times             map[string]time.Duration
	}
	sizes := o.sizes()
	var jobs []job
	for fi := range Families {
		for si := range sizes {
			for seed := 1; seed <= o.seeds(); seed++ {
				jobs = append(jobs, job{fi, si, seed})
			}
		}
	}
	results := make(map[[2]int][]obs)
	var mu sync.Mutex

	err = batch.ForEach(ctx, o.workers(), len(jobs), func(ctx context.Context, i int) error {
		j := jobs[i]
		fam, size := Families[j.famIdx], sizes[j.sizeIdx]
		h, err := gen.Hypergraph(gen.HyperParams{
			Gen: fam.Gen, N: size.N, P: size.P,
			Dv: dv, Dh: dh, G: fam.G, Weights: weights,
		}, int64(j.seed))
		if err != nil {
			return err
		}
		ob := obs{
			numEdges: h.NumEdges(),
			numPins:  h.NumPins(),
			lb:       core.LowerBound(h),
			ratio:    map[string]float64{},
			times:    map[string]time.Duration{},
		}
		for ai, name := range algs {
			start := time.Now()
			a, err := sols[ai].SolveHyper(ctx, h, registry.Options{Hyper: core.HyperOptions{Naive: o.Naive}})
			// A budget-truncated exact column still reports its incumbent's
			// quality; anything else fails the run.
			if err != nil && (a == nil || !registry.IncumbentError(err)) {
				return fmt.Errorf("bench: %s on seed %d: %w", name, j.seed, err)
			}
			ob.times[name] = time.Since(start)
			m := core.HyperMakespan(h, a)
			ob.ratio[name] = float64(m) / float64(ob.lb)
		}
		mu.Lock()
		key := [2]int{j.famIdx, j.sizeIdx}
		results[key] = append(results[key], ob)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &HyperResult{
		Weights:    weights,
		Algorithms: algs,
		AvgQual:    map[string]float64{},
		AvgTime:    map[string]time.Duration{},
	}
	var allRatios = map[string][]float64{}
	var allTimes = map[string][]float64{}
	for fi, fam := range Families {
		for si, size := range sizes {
			obsList := results[[2]int{fi, si}]
			if len(obsList) == 0 {
				return nil, fmt.Errorf("bench: no results for %s-%s", fam.Prefix, size.Label)
			}
			row := HyperRow{
				Name:    instanceName(fam.Prefix, size.Label, weights),
				V1:      size.N,
				V2:      size.P,
				Quality: map[string]float64{},
				Times:   map[string]time.Duration{},
			}
			var edges, pins []int
			var lbs []int64
			for _, ob := range obsList {
				edges = append(edges, ob.numEdges)
				pins = append(pins, ob.numPins)
				lbs = append(lbs, ob.lb)
			}
			row.NumEdges = stats.MedianInt(edges)
			row.NumPins = stats.MedianInt(pins)
			row.LB = stats.Median(lbs)
			for _, name := range algs {
				var rs, ts []float64
				for _, ob := range obsList {
					rs = append(rs, ob.ratio[name])
					ts = append(ts, ob.times[name].Seconds())
				}
				row.Quality[name] = stats.Median(rs)
				row.Times[name] = time.Duration(stats.Mean(ts) * float64(time.Second))
				allRatios[name] = append(allRatios[name], rs...)
				allTimes[name] = append(allTimes[name], ts...)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	for _, name := range algs {
		res.AvgQual[name] = stats.Mean(allRatios[name])
		res.AvgTime[name] = time.Duration(stats.Mean(allTimes[name]) * float64(time.Second))
	}
	return res, nil
}

func instanceName(prefix, size string, weights gen.WeightScheme) string {
	name := fmt.Sprintf("%s-%s-MP", prefix, size)
	switch weights {
	case gen.Related:
		name += "-W"
	case gen.Random:
		name += "-R"
	}
	return name
}

// FormatHyperStats renders the Table I view (instance statistics) of a
// result.
func FormatHyperStats(res *HyperResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %8s %6s %8s %12s\n", "Instance", "|V1|", "|V2|", "|N|", "sum|h∩V2|")
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-16s %8d %6d %8d %12d\n", r.Name, r.V1, r.V2, r.NumEdges, r.NumPins)
	}
	return sb.String()
}

// FormatHyperTable renders the Table II/III view (quality vs LB and
// times).
func FormatHyperTable(res *HyperResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %8s", "Instance", "LB")
	for _, a := range res.Algorithms {
		fmt.Fprintf(&sb, " %6s", a)
	}
	sb.WriteByte('\n')
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-16s %8.0f", r.Name, r.LB)
		for _, a := range res.Algorithms {
			fmt.Fprintf(&sb, " %6.2f", r.Quality[a])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-16s %8s", "Average quality", "")
	for _, a := range res.Algorithms {
		fmt.Fprintf(&sb, " %6.2f", res.AvgQual[a])
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-16s %8s", "Average time (s)", "")
	for _, a := range res.Algorithms {
		fmt.Fprintf(&sb, " %6.3f", res.AvgTime[a].Seconds())
	}
	sb.WriteByte('\n')
	return sb.String()
}

// --- SINGLEPROC experiments (Sec. V-B) ---

// SPAlgorithms is the fixed algorithm order of the SINGLEPROC tables —
// the registry's SINGLEPROC heuristic lineup.
var SPAlgorithms = registry.Names(registry.Heuristics(registry.SingleProc))

// SPRow is one row of a SINGLEPROC quality table.
type SPRow struct {
	Name      string
	V1, V2    int
	NumEdges  int                      // median |E|
	Opt       float64                  // median optimal makespan (exact algorithm)
	Quality   map[string]float64       // algorithm → median makespan/OPT
	Times     map[string]time.Duration // algorithm → mean runtime
	ExactTime time.Duration            // mean exact-algorithm runtime
}

// SPResult is a full SINGLEPROC table for one (generator, d, g) setting.
type SPResult struct {
	Gen  gen.Generator
	D, G int
	// Algorithms is the column order of the run (canonical registry
	// names) — SPAlgorithms unless Options.Algorithms overrode it.
	Algorithms []string
	Rows       []SPRow
	// Averages over all instances of the table.
	AvgQual map[string]float64
	AvgTime map[string]time.Duration
}

// RunSingleProc regenerates a SINGLEPROC-UNIT experiment: instances from
// the given generator with degree parameter d and g groups over the size
// grid, solved by the four greedy heuristics and the exact algorithm. Jobs
// run on the batch worker pool under ctx.
func RunSingleProc(ctx context.Context, generator gen.Generator, d, g int, o Options) (*SPResult, error) {
	algs, sols, err := resolveAlgorithms(registry.SingleProc, o.Algorithms, SPAlgorithms)
	if err != nil {
		return nil, err
	}
	type job struct {
		sizeIdx, seed int
	}
	type obs struct {
		numEdges  int
		opt       int64
		ratio     map[string]float64
		times     map[string]time.Duration
		exactTime time.Duration
	}
	sizes := o.sizes()
	var jobs []job
	for si := range sizes {
		for seed := 1; seed <= o.seeds(); seed++ {
			jobs = append(jobs, job{si, seed})
		}
	}
	results := make(map[int][]obs)
	var mu sync.Mutex

	err = batch.ForEach(ctx, o.workers(), len(jobs), func(ctx context.Context, i int) error {
		j := jobs[i]
		size := sizes[j.sizeIdx]
		gr, err := gen.Bipartite(generator, size.N, size.P, g, d, int64(j.seed))
		if err != nil {
			return err
		}
		start := time.Now()
		_, opt, err := core.ExactUnit(gr, core.ExactOptions{
			Strategy: core.SearchBisection, Tester: core.TestCapacitated,
		})
		exactTime := time.Since(start)
		if err != nil {
			return err
		}
		ob := obs{
			numEdges:  gr.NumEdges(),
			opt:       opt,
			ratio:     map[string]float64{},
			times:     map[string]time.Duration{},
			exactTime: exactTime,
		}
		for ai, name := range algs {
			t0 := time.Now()
			a, err := sols[ai].SolveSingle(ctx, gr, registry.Options{})
			if err != nil && (a == nil || !registry.IncumbentError(err)) {
				return fmt.Errorf("bench: %s on seed %d: %w", name, j.seed, err)
			}
			ob.times[name] = time.Since(t0)
			ob.ratio[name] = float64(core.Makespan(gr, a)) / float64(opt)
		}
		mu.Lock()
		results[j.sizeIdx] = append(results[j.sizeIdx], ob)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	prefix := "FG"
	if generator == gen.HiLo {
		prefix = "HL"
	}
	res := &SPResult{
		Gen: generator, D: d, G: g,
		Algorithms: algs,
		AvgQual:    map[string]float64{},
		AvgTime:    map[string]time.Duration{},
	}
	allRatios := map[string][]float64{}
	allTimes := map[string][]float64{}
	for si, size := range sizes {
		obsList := results[si]
		if len(obsList) == 0 {
			return nil, fmt.Errorf("bench: no results for size %s", size.Label)
		}
		row := SPRow{
			Name:    fmt.Sprintf("%s-%s-d%d-g%d", prefix, size.Label, d, g),
			V1:      size.N,
			V2:      size.P,
			Quality: map[string]float64{},
			Times:   map[string]time.Duration{},
		}
		var edges []int
		var opts []int64
		var exTimes []float64
		for _, ob := range obsList {
			edges = append(edges, ob.numEdges)
			opts = append(opts, ob.opt)
			exTimes = append(exTimes, ob.exactTime.Seconds())
		}
		row.NumEdges = stats.MedianInt(edges)
		row.Opt = stats.Median(opts)
		row.ExactTime = time.Duration(stats.Mean(exTimes) * float64(time.Second))
		for _, name := range algs {
			var rs, ts []float64
			for _, ob := range obsList {
				rs = append(rs, ob.ratio[name])
				ts = append(ts, ob.times[name].Seconds())
			}
			row.Quality[name] = stats.Median(rs)
			row.Times[name] = time.Duration(stats.Mean(ts) * float64(time.Second))
			allRatios[name] = append(allRatios[name], rs...)
			allTimes[name] = append(allTimes[name], ts...)
		}
		res.Rows = append(res.Rows, row)
	}
	for _, name := range algs {
		res.AvgQual[name] = stats.Mean(allRatios[name])
		res.AvgTime[name] = time.Duration(stats.Mean(allTimes[name]) * float64(time.Second))
	}
	return res, nil
}

// FormatSPTable renders a SINGLEPROC result table.
func FormatSPTable(res *SPResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SINGLEPROC-UNIT, %s, d=%d, g=%d\n", res.Gen, res.D, res.G)
	fmt.Fprintf(&sb, "%-18s %8s %9s %6s", "Instance", "|E|", "OPT", "t_ex")
	for _, a := range res.Algorithms {
		fmt.Fprintf(&sb, " %8s", a)
	}
	sb.WriteByte('\n')
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-18s %8d %9.0f %6.2f", r.Name, r.NumEdges, r.Opt, r.ExactTime.Seconds())
		for _, a := range res.Algorithms {
			fmt.Fprintf(&sb, " %8.2f", r.Quality[a])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-18s %8s %9s %6s", "Average quality", "", "", "")
	for _, a := range res.Algorithms {
		fmt.Fprintf(&sb, " %8.3f", res.AvgQual[a])
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-18s %8s %9s %6s", "Average time (s)", "", "", "")
	for _, a := range res.Algorithms {
		fmt.Fprintf(&sb, " %8.4f", res.AvgTime[a].Seconds())
	}
	sb.WriteByte('\n')
	return sb.String()
}

// RankByQuality returns algorithm names sorted by average quality
// (best first) — used to assert the paper's heuristic ranking claims.
func RankByQuality(avg map[string]float64, names []string) []string {
	out := append([]string(nil), names...)
	sort.SliceStable(out, func(i, j int) bool { return avg[out[i]] < avg[out[j]] })
	return out
}
