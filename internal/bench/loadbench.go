// Service-level load generation: the semiload engine.
//
// RunLoad drives a seeded mixed workload against one or more running
// semiserve processes and records the service-perf trajectory the
// node-count grid cannot see: sustained QPS, latency percentiles, cache
// and peer hit rates, and load shedding under concurrency. The report
// rides inside BENCH_<n>.json as the "loadbench" section (its own
// schema, "semimatch-loadbench/v1") so the serving numbers are versioned
// next to the solver numbers they depend on.
package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semimatch/internal/cluster"
	"semimatch/internal/encode"
	"semimatch/internal/registry"
)

// LoadSchema versions the loadbench section of BENCH.json.
const LoadSchema = "semimatch-loadbench/v1"

// LoadMix weighs the four workloads of a run. The weights are relative
// (they need not sum to 100); a zero-valued mix means DefaultLoadMix.
type LoadMix struct {
	// RepeatPct posts a byte-identical repeat of a warm instance —
	// memory hits on the replica that solved it, peer hits elsewhere.
	RepeatPct int `json:"repeat_pct"`
	// IsoPct posts a freshly shuffled isomorphic restatement of a warm
	// instance — same fingerprint, different bytes; exercises
	// canonicalization on every request.
	IsoPct int `json:"iso_pct"`
	// MissPct posts a never-seen instance. All workers in one "wave"
	// post the same new instance concurrently, so misses arrive as
	// coalescable bursts, the way a cache stampede does.
	MissPct int `json:"miss_pct"`
	// LongPct posts a hard exact-solver instance under a tight
	// ?deadline, producing deadline-truncated (never cached) solves.
	LongPct int `json:"long_pct"`
}

// DefaultLoadMix is a cache-friendly service profile: mostly repeats
// and isomorphs, a steady trickle of misses, a few truncated long jobs.
var DefaultLoadMix = LoadMix{RepeatPct: 55, IsoPct: 20, MissPct: 20, LongPct: 5}

func (m LoadMix) sum() int { return m.RepeatPct + m.IsoPct + m.MissPct + m.LongPct }

// LoadOptions configures RunLoad.
type LoadOptions struct {
	// Targets are the base URLs of the processes under load (at least
	// one). Requests pick a target uniformly at random, so a multi-
	// process fleet sees every workload from every side.
	Targets []string
	// Duration is the measured window; 0 means 5s.
	Duration time.Duration
	// Concurrency is the number of closed-loop workers; 0 means 8.
	Concurrency int
	// Seed makes the workload reproducible; 0 means 1.
	Seed int64
	// Mix weighs the workloads; zero-valued means DefaultLoadMix.
	Mix LoadMix
	// HotInstances is the size of the warm working set the repeat/iso
	// workloads draw from; 0 means 8.
	HotInstances int
	// LongDeadline is the ?deadline the long workload requests; 0 means
	// 200ms.
	LongDeadline time.Duration
}

func (o LoadOptions) duration() time.Duration {
	if o.Duration > 0 {
		return o.Duration
	}
	return 5 * time.Second
}

func (o LoadOptions) concurrency() int {
	if o.Concurrency > 0 {
		return o.Concurrency
	}
	return 8
}

func (o LoadOptions) seed() int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

func (o LoadOptions) mix() LoadMix {
	if o.Mix.sum() > 0 {
		return o.Mix
	}
	return DefaultLoadMix
}

func (o LoadOptions) hotInstances() int {
	if o.HotInstances > 0 {
		return o.HotInstances
	}
	return 8
}

func (o LoadOptions) longDeadline() time.Duration {
	if o.LongDeadline > 0 {
		return o.LongDeadline
	}
	return 200 * time.Millisecond
}

// LoadTargetMetrics is one target's /metrics counter movement over the
// measured window: after minus before, counters (semimatch_*_total)
// only. This is where cross-replica traffic shows up — a fleet run is
// healthy when some replica's semimatch_peer_hits_total delta is
// nonzero.
type LoadTargetMetrics struct {
	URL string `json:"url"`
	// Deltas maps metric family name to its increase over the run.
	// Zero-delta families are omitted.
	Deltas map[string]float64 `json:"deltas,omitempty"`
	// ScrapeError records a failed /metrics scrape; Deltas is then nil.
	ScrapeError string `json:"scrape_error,omitempty"`
}

// LoadReport is the result of one RunLoad — the "loadbench" section of
// BENCH.json.
type LoadReport struct {
	Schema      string   `json:"schema"`
	Created     string   `json:"created"`
	Targets     []string `json:"targets"`
	Concurrency int      `json:"concurrency"`
	Seed        int64    `json:"seed"`
	Mix         LoadMix  `json:"mix"`
	// Warmup is the number of priming solves issued before the clock
	// started (one per hot instance); excluded from every number below.
	Warmup    int     `json:"warmup"`
	DurationS float64 `json:"duration_s"`
	Requests  uint64  `json:"requests"`
	// Errors are transport failures and non-2xx non-429 responses.
	Errors uint64 `json:"errors"`
	// Shed counts 429 responses (admission queue full / inflight cap).
	Shed uint64 `json:"shed"`
	// Truncated counts responses with "truncated": true.
	Truncated uint64  `json:"truncated"`
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"latency_p50_ms"`
	P95Ms     float64 `json:"latency_p95_ms"`
	P99Ms     float64 `json:"latency_p99_ms"`
	// Tiers counts 200 responses by cache_tier ("none" = fresh solve;
	// "memory", "disk", "peer" = the tier that answered).
	Tiers map[string]uint64 `json:"tiers"`
	// Workloads counts issued requests by workload name.
	Workloads map[string]uint64 `json:"workloads"`
	// CacheHitRate is (memory+disk+peer)/OK; PeerHitRate is peer/OK.
	CacheHitRate float64 `json:"cache_hit_rate"`
	PeerHitRate  float64 `json:"peer_hit_rate"`
	// TargetMetrics is the per-process /metrics counter movement.
	TargetMetrics []LoadTargetMetrics `json:"target_metrics"`
}

// loadHotFamily generates the warm working set: small restricted-random
// hypergraphs the auto policy solves exactly in well under a
// millisecond, so cache behavior — not solver wall time — dominates.
var loadHotFamily = PerfFamily{
	Name: "load-hot", Class: registry.MultiProc, Shape: "random",
	NTasks: 12, NProcs: 4, WMin: 1, WMax: 40, Degree: 3, MaxEdgeSize: 2,
}

// loadLongFamily generates the long workload: the perf grid's hard
// partition shape, which the exact solver cannot finish inside the
// tight deadline the workload requests — a guaranteed truncation.
var loadLongFamily = PerfFamily{
	Name: "load-long", Class: registry.MultiProc, Shape: "partition",
	NTasks: 25, NProcs: 4, WMin: 20, WMax: 80,
}

// loadInstanceText renders one generated instance in the text format
// POST /solve accepts, along with its canonical fingerprint — the key
// the fleet routes by.
func loadInstanceText(f PerfFamily, seed int64) (text, fp string, err error) {
	h, err := perfHyper(f, seed)
	if err != nil {
		return "", "", err
	}
	var sb strings.Builder
	if err := encode.WriteHypergraph(&sb, h); err != nil {
		return "", "", err
	}
	fp, err = encode.FingerprintHypergraph(h)
	if err != nil {
		return "", "", err
	}
	return sb.String(), fp, nil
}

// isoShuffle returns an isomorphic restatement of a text-format
// hypergraph: the same instance with each task's configuration lines in
// a fresh order. The canonical fingerprint is unchanged by
// construction, so the server must answer it from cache.
func isoShuffle(text string, rng *rand.Rand) string {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) < 2 {
		return text
	}
	var sb strings.Builder
	sb.WriteString(lines[0])
	sb.WriteByte('\n')
	// Shuffle within each task's block, preserving the task-grouped
	// order the format requires.
	block := func(start, end int) {
		perm := rng.Perm(end - start)
		for _, j := range perm {
			sb.WriteString(lines[start+j])
			sb.WriteByte('\n')
		}
	}
	start := 1
	for i := 2; i <= len(lines); i++ {
		if i == len(lines) || taskOf(lines[i]) != taskOf(lines[start]) {
			block(start, i)
			start = i
		}
	}
	return sb.String()
}

func taskOf(edgeLine string) string {
	if i := strings.IndexByte(edgeLine, ' '); i > 0 {
		return edgeLine[:i]
	}
	return edgeLine
}

// loadWorkloads is the fixed workload order; weights come from LoadMix.
var loadWorkloads = []string{"repeat", "iso", "miss", "long"}

// loadWorker is one closed-loop client's tally, merged after the run.
type loadWorker struct {
	latenciesMs []float64
	tiers       map[string]uint64
	workloads   map[string]uint64
	requests    uint64
	errors      uint64
	shed        uint64
	truncated   uint64
}

// RunLoad drives the configured workload mix against o.Targets until
// the duration elapses (or ctx is canceled, whichever is first) and
// returns the measured report. The same options and seed replay the
// same request sequence.
func RunLoad(ctx context.Context, o LoadOptions) (*LoadReport, error) {
	if len(o.Targets) == 0 {
		return nil, errors.New("bench: loadgen needs at least one target URL")
	}
	targets := make([]string, len(o.Targets))
	for i, t := range o.Targets {
		targets[i] = strings.TrimRight(strings.TrimSpace(t), "/")
		if targets[i] == "" {
			return nil, fmt.Errorf("bench: empty target URL at position %d", i)
		}
	}
	mix := o.mix()
	weights := []int{mix.RepeatPct, mix.IsoPct, mix.MissPct, mix.LongPct}
	seed := o.seed()
	conc := o.concurrency()

	// The warm working set: generated once, solved once up front so the
	// repeat/iso workloads measure cache behavior, not first-solve cost.
	hot := make([]string, o.hotInstances())
	hotFP := make([]string, len(hot))
	for i := range hot {
		text, fp, err := loadInstanceText(loadHotFamily, seed*1009+int64(i))
		if err != nil {
			return nil, err
		}
		hot[i], hotFP[i] = text, fp
	}
	long := make([]string, 4)
	for i := range long {
		text, _, err := loadInstanceText(loadLongFamily, seed*1013+int64(i))
		if err != nil {
			return nil, err
		}
		long[i] = text
	}

	client := &http.Client{Timeout: 60 * time.Second}
	longQuery := "?alg=BnB-MP&deadline=" + o.longDeadline().String()

	// Against a fleet, each warmup solve is posted to the replica that
	// owns the instance's fingerprint — the replica peers will ask — by
	// building the same rendezvous ring the fleet routes by. Targets
	// that don't form a valid ring (or a single target) just warm
	// round-robin; peering degrades to a first-request fresh solve, not
	// an error.
	warmTarget := func(i int) string { return targets[i%len(targets)] }
	if len(targets) > 1 {
		if ring, err := cluster.NewRing(targets[0], targets); err == nil {
			asGiven := make(map[string]string, len(targets))
			for _, tgt := range targets {
				if n, err := cluster.NormalizePeer(tgt); err == nil {
					asGiven[n] = tgt
				}
			}
			warmTarget = func(i int) string {
				if tgt, ok := asGiven[ring.Owner(hotFP[i])]; ok {
					return tgt
				}
				return targets[i%len(targets)]
			}
		}
	}
	for i, body := range hot {
		code, _, _, err := loadPost(client, warmTarget(i)+"/solve", body)
		if err != nil {
			return nil, fmt.Errorf("bench: warmup against %s: %w", warmTarget(i), err)
		}
		if code != http.StatusOK {
			return nil, fmt.Errorf("bench: warmup solve returned HTTP %d", code)
		}
	}

	before := make([]map[string]float64, len(targets))
	beforeErr := make([]error, len(targets))
	for i, t := range targets {
		before[i], beforeErr[i] = scrapeCounters(client, t)
	}

	// missWaveSize workers share each fresh instance, so misses arrive
	// as concurrent identical bursts the single-flight layer can
	// coalesce.
	missWaveSize := uint64(conc)
	var missSeq atomic.Uint64

	start := time.Now()
	stop := start.Add(o.duration())
	var wg sync.WaitGroup
	workers := make([]*loadWorker, conc)
	for w := 0; w < conc; w++ {
		lw := &loadWorker{
			tiers:     make(map[string]uint64),
			workloads: make(map[string]uint64),
		}
		workers[w] = lw
		rng := rand.New(rand.NewSource(seed + int64(w)*7919))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) && ctx.Err() == nil {
				name := pickWeighted(rng, weights)
				var body, query string
				switch name {
				case "repeat":
					body = hot[rng.Intn(len(hot))]
				case "iso":
					body = isoShuffle(hot[rng.Intn(len(hot))], rng)
				case "miss":
					wave := missSeq.Add(1) / missWaveSize
					text, _, err := loadInstanceText(loadHotFamily, seed*1021+int64(wave)+1_000_000)
					if err != nil {
						lw.errors++
						continue
					}
					body = text
				case "long":
					body = long[rng.Intn(len(long))]
					query = longQuery
				}
				url := targets[rng.Intn(len(targets))] + "/solve" + query
				t0 := time.Now()
				code, tier, truncated, err := loadPost(client, url, body)
				lw.latenciesMs = append(lw.latenciesMs, float64(time.Since(t0).Microseconds())/1000)
				lw.requests++
				lw.workloads[name]++
				switch {
				case err != nil:
					lw.errors++
				case code == http.StatusOK:
					lw.tiers[tier]++
					if truncated {
						lw.truncated++
					}
				case code == http.StatusTooManyRequests:
					lw.shed++
				default:
					lw.errors++
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		Schema:      LoadSchema,
		Created:     time.Now().UTC().Format(time.RFC3339),
		Targets:     targets,
		Concurrency: conc,
		Seed:        seed,
		Mix:         mix,
		Warmup:      len(hot),
		DurationS:   elapsed.Seconds(),
		Tiers:       make(map[string]uint64),
		Workloads:   make(map[string]uint64),
	}
	var latencies []float64
	for _, lw := range workers {
		rep.Requests += lw.requests
		rep.Errors += lw.errors
		rep.Shed += lw.shed
		rep.Truncated += lw.truncated
		for k, v := range lw.tiers {
			rep.Tiers[k] += v
		}
		for k, v := range lw.workloads {
			rep.Workloads[k] += v
		}
		latencies = append(latencies, lw.latenciesMs...)
	}
	sort.Float64s(latencies)
	rep.P50Ms = round3(percentileSorted(latencies, 0.50))
	rep.P95Ms = round3(percentileSorted(latencies, 0.95))
	rep.P99Ms = round3(percentileSorted(latencies, 0.99))
	if elapsed > 0 {
		rep.QPS = round3(float64(rep.Requests) / elapsed.Seconds())
	}
	ok := rep.Tiers["none"] + rep.Tiers["memory"] + rep.Tiers["disk"] + rep.Tiers["peer"]
	if ok > 0 {
		rep.CacheHitRate = round3(float64(rep.Tiers["memory"]+rep.Tiers["disk"]+rep.Tiers["peer"]) / float64(ok))
		rep.PeerHitRate = round3(float64(rep.Tiers["peer"]) / float64(ok))
	}

	for i, t := range targets {
		tm := LoadTargetMetrics{URL: t}
		after, err := scrapeCounters(client, t)
		switch {
		case beforeErr[i] != nil:
			tm.ScrapeError = beforeErr[i].Error()
		case err != nil:
			tm.ScrapeError = err.Error()
		default:
			tm.Deltas = make(map[string]float64)
			for name, v := range after {
				if d := v - before[i][name]; d != 0 {
					tm.Deltas[name] = d
				}
			}
		}
		rep.TargetMetrics = append(rep.TargetMetrics, tm)
	}
	return rep, nil
}

// pickWeighted draws a workload name by relative weight.
func pickWeighted(rng *rand.Rand, weights []int) string {
	total := 0
	for _, w := range weights {
		total += w
	}
	r := rng.Intn(total)
	for i, w := range weights {
		if r < w {
			return loadWorkloads[i]
		}
		r -= w
	}
	return loadWorkloads[len(loadWorkloads)-1]
}

// loadPost issues one solve request and reads just enough of the
// response to classify it.
func loadPost(client *http.Client, url, body string) (code int, tier string, truncated bool, err error) {
	resp, err := client.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		return 0, "", false, err
	}
	defer resp.Body.Close()
	var payload struct {
		CacheTier string `json:"cache_tier"`
		Truncated bool   `json:"truncated"`
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return resp.StatusCode, "", false, err
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &payload); err != nil {
			return resp.StatusCode, "", false, err
		}
	}
	return resp.StatusCode, payload.CacheTier, payload.Truncated, nil
}

// scrapeCounters fetches a target's /metrics and returns its plain
// (unlabeled) semimatch_*_total counter samples.
func scrapeCounters(client *http.Client, target string) (map[string]float64, error) {
	resp, err := client.Get(target + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	return parsePromCounters(string(raw)), nil
}

// parsePromCounters extracts the plain counter samples from Prometheus
// text exposition format 0.0.4: "name value" lines whose name carries
// the semimatch_ prefix and _total suffix; labeled series (histogram
// buckets) and gauges are skipped.
func parsePromCounters(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.IndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		name := line[:i]
		if strings.ContainsRune(name, '{') ||
			!strings.HasPrefix(name, "semimatch_") || !strings.HasSuffix(name, "_total") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out
}

// percentileSorted returns the p-quantile (0 < p <= 1) of an ascending
// sample by the nearest-rank method.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// FormatLoadSummary renders a LoadReport as a text table — the
// human-readable view of the loadbench section.
func FormatLoadSummary(rep *LoadReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "loadbench: %d targets, concurrency=%d, %.1fs, seed=%d\n",
		len(rep.Targets), rep.Concurrency, rep.DurationS, rep.Seed)
	fmt.Fprintf(&sb, "  requests %d (%.1f qps), errors %d, shed %d, truncated %d\n",
		rep.Requests, rep.QPS, rep.Errors, rep.Shed, rep.Truncated)
	fmt.Fprintf(&sb, "  latency ms: p50 %.3f  p95 %.3f  p99 %.3f\n", rep.P50Ms, rep.P95Ms, rep.P99Ms)
	fmt.Fprintf(&sb, "  tiers: none %d  memory %d  disk %d  peer %d  (cache hit rate %.1f%%, peer %.1f%%)\n",
		rep.Tiers["none"], rep.Tiers["memory"], rep.Tiers["disk"], rep.Tiers["peer"],
		100*rep.CacheHitRate, 100*rep.PeerHitRate)
	for _, tm := range rep.TargetMetrics {
		if tm.ScrapeError != "" {
			fmt.Fprintf(&sb, "  %s: metrics scrape failed: %s\n", tm.URL, tm.ScrapeError)
			continue
		}
		fmt.Fprintf(&sb, "  %s: solves %+.0f, cache hits %+.0f, peer hits %+.0f, peer served %+.0f, forwards %+.0f\n",
			tm.URL, tm.Deltas["semimatch_solves_total"], tm.Deltas["semimatch_cache_hits_total"],
			tm.Deltas["semimatch_peer_hits_total"], tm.Deltas["semimatch_peer_served_total"],
			tm.Deltas["semimatch_peer_forwards_total"])
	}
	return sb.String()
}
