package bench

import (
	"encoding/json"
	"io"
	"time"
)

// Machine-readable views of the benchmark results, the format behind
// `semibench -json`. One JSON object per table, newline-delimited; the
// schema is documented in cmd/semibench/doc.go and is the input format of
// the BENCH_*.json quality/time trajectories.

// HyperTableJSON is the external form of a MULTIPROC table.
type HyperTableJSON struct {
	Table      string             `json:"table"`
	Kind       string             `json:"kind"` // "multiproc"
	Weights    string             `json:"weights"`
	Algorithms []string           `json:"algorithms"`
	Rows       []HyperRowJSON     `json:"rows"`
	AvgQuality map[string]float64 `json:"avg_quality"`
	AvgTimeS   map[string]float64 `json:"avg_time_s"`
}

// HyperRowJSON is one instance row (a family × size point, aggregated
// over seeds).
type HyperRowJSON struct {
	Instance string             `json:"instance"`
	V1       int                `json:"v1"`
	V2       int                `json:"v2"`
	Edges    int                `json:"edges"`
	Pins     int                `json:"pins"`
	LB       float64            `json:"lb"`
	Quality  map[string]float64 `json:"quality"`
	TimeS    map[string]float64 `json:"time_s"`
}

// JSON converts the result to its machine-readable form; table labels the
// run ("1", "2", "3", "8").
func (res *HyperResult) JSON(table string) *HyperTableJSON {
	out := &HyperTableJSON{
		Table:      table,
		Kind:       "multiproc",
		Weights:    res.Weights.String(),
		Algorithms: res.Algorithms,
		AvgQuality: res.AvgQual,
		AvgTimeS:   secondsMap(res.AvgTime),
	}
	for _, r := range res.Rows {
		out.Rows = append(out.Rows, HyperRowJSON{
			Instance: r.Name, V1: r.V1, V2: r.V2,
			Edges: r.NumEdges, Pins: r.NumPins, LB: r.LB,
			Quality: r.Quality, TimeS: secondsMap(r.Times),
		})
	}
	return out
}

// SPTableJSON is the external form of a SINGLEPROC table.
type SPTableJSON struct {
	Table      string             `json:"table"` // "sp"
	Kind       string             `json:"kind"`  // "singleproc"
	Generator  string             `json:"generator"`
	D          int                `json:"d"`
	G          int                `json:"g"`
	Algorithms []string           `json:"algorithms"`
	Rows       []SPRowJSON        `json:"rows"`
	AvgQuality map[string]float64 `json:"avg_quality"`
	AvgTimeS   map[string]float64 `json:"avg_time_s"`
}

// SPRowJSON is one instance row of a SINGLEPROC table.
type SPRowJSON struct {
	Instance   string             `json:"instance"`
	V1         int                `json:"v1"`
	V2         int                `json:"v2"`
	Edges      int                `json:"edges"`
	Opt        float64            `json:"opt"`
	ExactTimeS float64            `json:"exact_time_s"`
	Quality    map[string]float64 `json:"quality"`
	TimeS      map[string]float64 `json:"time_s"`
}

// JSON converts the result to its machine-readable form.
func (res *SPResult) JSON() *SPTableJSON {
	out := &SPTableJSON{
		Table:      "sp",
		Kind:       "singleproc",
		Generator:  res.Gen.String(),
		D:          res.D,
		G:          res.G,
		Algorithms: res.Algorithms,
		AvgQuality: res.AvgQual,
		AvgTimeS:   secondsMap(res.AvgTime),
	}
	for _, r := range res.Rows {
		out.Rows = append(out.Rows, SPRowJSON{
			Instance: r.Name, V1: r.V1, V2: r.V2, Edges: r.NumEdges,
			Opt: r.Opt, ExactTimeS: r.ExactTime.Seconds(),
			Quality: r.Quality, TimeS: secondsMap(r.Times),
		})
	}
	return out
}

// AdvTableJSON is the external form of the Fig. 3 worst-case scaling
// experiment.
type AdvTableJSON struct {
	Table string       `json:"table"` // "fig3"
	Kind  string       `json:"kind"`  // "adversarial"
	Rows  []AdvRowJSON `json:"rows"`
}

// AdvRowJSON is one Chain(k) row.
type AdvRowJSON struct {
	K           int     `json:"k"`
	Tasks       int     `json:"tasks"`
	Procs       int     `json:"procs"`
	Basic       int64   `json:"basic"`
	Sorted      int64   `json:"sorted"`
	Double      int64   `json:"double"`
	Expected    int64   `json:"expected"`
	Optimal     int64   `json:"optimal"`
	OnlineRatio float64 `json:"online_ratio"`
	ExactTimeS  float64 `json:"exact_time_s"`
}

// AdversarialJSON converts Fig. 3 rows to their machine-readable form.
func AdversarialJSON(rows []AdvRow) *AdvTableJSON {
	out := &AdvTableJSON{Table: "fig3", Kind: "adversarial"}
	for _, r := range rows {
		out.Rows = append(out.Rows, AdvRowJSON{
			K: r.K, Tasks: r.Tasks, Procs: r.Procs,
			Basic: r.Basic, Sorted: r.Sorted, Double: r.Double, Expected: r.Expected,
			Optimal: r.Optimal, OnlineRatio: r.OnlineComp, ExactTimeS: r.ExactTime.Seconds(),
		})
	}
	return out
}

// WriteJSON emits one newline-terminated JSON object.
func WriteJSON(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}

func secondsMap(m map[string]time.Duration) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, d := range m {
		out[k] = d.Seconds()
	}
	return out
}
