package bench

import (
	"fmt"
	"strings"
	"time"

	"semimatch/internal/adversarial"
	"semimatch/internal/core"
	"semimatch/internal/online"
)

// AdvRow is one row of the worst-case (Fig. 3) scaling experiment.
type AdvRow struct {
	K          int
	Tasks      int
	Procs      int
	Basic      int64
	Sorted     int64
	Double     int64
	Expected   int64
	Optimal    int64
	OnlineComp float64 // online greedy competitive ratio
	ExactTime  time.Duration
}

// RunAdversarial regenerates the Fig. 3 story as a table: for each k, the
// chain instance's makespans under every heuristic, the optimum, and the
// online competitive ratio (which equals k — the Θ(log p) lower bound).
func RunAdversarial(maxK int) []AdvRow {
	var rows []AdvRow
	for k := 2; k <= maxK; k++ {
		g := adversarial.Chain(k)
		row := AdvRow{K: k, Tasks: g.NLeft, Procs: g.NRight}
		row.Basic = core.Makespan(g, core.BasicGreedy(g, core.GreedyOptions{}))
		row.Sorted = core.Makespan(g, core.SortedGreedy(g, core.GreedyOptions{}))
		row.Double = core.Makespan(g, core.DoubleSorted(g, core.GreedyOptions{}))
		row.Expected = core.Makespan(g, core.ExpectedGreedy(g, core.GreedyOptions{}))
		start := time.Now()
		_, opt, err := core.ExactUnit(g, core.ExactOptions{})
		row.ExactTime = time.Since(start)
		if err != nil {
			// Chain instances never fail; make the corruption visible.
			panic(fmt.Sprintf("bench: Chain(%d): %v", k, err))
		}
		row.Optimal = opt
		if ratio, err := online.CompetitiveRatio(g); err == nil {
			row.OnlineComp = ratio
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatAdversarial renders the Fig. 3 scaling table.
func FormatAdversarial(rows []AdvRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%4s %8s %8s %7s %7s %7s %9s %8s %7s %8s\n",
		"k", "tasks", "procs", "basic", "sorted", "double", "expected", "optimal", "online", "t_ex(s)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%4d %8d %8d %7d %7d %7d %9d %8d %7.0f %8.3f\n",
			r.K, r.Tasks, r.Procs, r.Basic, r.Sorted, r.Double, r.Expected, r.Optimal, r.OnlineComp, r.ExactTime.Seconds())
	}
	return sb.String()
}
