package bench

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReadPerfJSON parses a BENCH.json report previously written by
// WritePerfJSON, rejecting payloads from a different schema generation.
func ReadPerfJSON(r io.Reader) (*PerfReport, error) {
	var rep PerfReport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: parsing perf report: %w", err)
	}
	if rep.Schema != "semimatch-bench/v1" {
		return nil, fmt.Errorf("bench: unsupported perf report schema %q", rep.Schema)
	}
	return &rep, nil
}

// NodeRegressions compares the sequential (workers=1) node counts of cur
// against a previously recorded report: any case present in both — matched
// by case name — that now explores more nodes is a search regression. The
// node count of a sequential solve is deterministic for a fixed engine, so
// this is a stable guard in a way wall-clock never is. Cases only present
// on one side are ignored (families come and go across PRs), as are
// parallel rows (steal timing makes their node counts nondeterministic).
// Returns one human-readable line per regression; empty means pass.
func NodeRegressions(prev, cur *PerfReport) []string {
	base := make(map[string]PerfCase, len(prev.Cases))
	for _, c := range prev.Cases {
		if c.Workers == 1 {
			base[c.Case] = c
		}
	}
	var regressions []string
	for _, c := range cur.Cases {
		if c.Workers != 1 {
			continue
		}
		old, ok := base[c.Case]
		if !ok {
			continue
		}
		if c.Nodes > old.Nodes {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d nodes (was %d, +%.1f%%)",
					c.Case, c.Nodes, old.Nodes,
					100*float64(c.Nodes-old.Nodes)/float64(max(old.Nodes, 1))))
		}
	}
	return regressions
}
