package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func perfCase(name string, workers int, nodes int64) PerfCase {
	return PerfCase{Case: name, Workers: workers, Nodes: nodes}
}

func TestNodeRegressions(t *testing.T) {
	prev := &PerfReport{Cases: []PerfCase{
		perfCase("fam/seed=1", 1, 1000),
		perfCase("fam/seed=1", 4, 400), // parallel row: never compared
		perfCase("fam/seed=2", 1, 2000),
		perfCase("gone/seed=1", 1, 50), // family removed since: ignored
	}}

	t.Run("equal and lower pass", func(t *testing.T) {
		cur := &PerfReport{Cases: []PerfCase{
			perfCase("fam/seed=1", 1, 1000), // equal is not a regression
			perfCase("fam/seed=2", 1, 1999),
			perfCase("new/seed=1", 1, 1<<40), // no baseline: ignored
		}}
		if regs := NodeRegressions(prev, cur); len(regs) != 0 {
			t.Fatalf("unexpected regressions: %v", regs)
		}
	})

	t.Run("higher sequential count fails", func(t *testing.T) {
		cur := &PerfReport{Cases: []PerfCase{
			perfCase("fam/seed=1", 1, 1001),
			perfCase("fam/seed=2", 1, 2000),
		}}
		regs := NodeRegressions(prev, cur)
		if len(regs) != 1 {
			t.Fatalf("want exactly one regression, got %v", regs)
		}
		if !strings.Contains(regs[0], "fam/seed=1") || !strings.Contains(regs[0], "1001") {
			t.Fatalf("regression line should name case and count: %q", regs[0])
		}
	})

	t.Run("parallel rows never flagged", func(t *testing.T) {
		cur := &PerfReport{Cases: []PerfCase{
			perfCase("fam/seed=1", 1, 900),
			perfCase("fam/seed=1", 4, 1<<40), // par node counts are nondeterministic
		}}
		if regs := NodeRegressions(prev, cur); len(regs) != 0 {
			t.Fatalf("parallel row flagged: %v", regs)
		}
	})
}

func TestReadPerfJSONRoundTrip(t *testing.T) {
	rep, err := RunPerf(context.Background(), tinyPerfOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePerfJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPerfJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cases) != len(rep.Cases) {
		t.Fatalf("round-trip lost cases: %d vs %d", len(back.Cases), len(rep.Cases))
	}
	// A re-run of the same grid must never regress against itself:
	// sequential node counts are deterministic.
	if regs := NodeRegressions(back, rep); len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %v", regs)
	}
	if _, err := ReadPerfJSON(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := ReadPerfJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed payload accepted")
	}
}
