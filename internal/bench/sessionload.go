// Dynamic-session load generation: the semiload -session engine.
//
// RunSessionLoad opens one dynamic session against a running semiserve,
// replays a seeded arrival/departure/reweigh script one event per
// request, and records the session-serving numbers the request-mix
// loadbench cannot see: per-event latency percentiles, how often the
// warm-started re-solve beat the online patch, migration counts under
// the λ objective, and the warm/cold node ratio. The report rides inside
// BENCH_<n>.json as the "sessionload" section (schema
// "semimatch-sessionload/v1").
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"semimatch/internal/session"
)

// SessionLoadSchema versions the sessionload section of BENCH.json.
const SessionLoadSchema = "semimatch-sessionload/v1"

// SessionLoadOptions configures RunSessionLoad.
type SessionLoadOptions struct {
	// Target is the base URL of the semiserve process under load.
	Target string
	// Events is the script length; 0 means 200.
	Events int
	// Procs is the session's processor count; 0 means 4.
	Procs int
	// Multi runs a MULTIPROC session.
	Multi bool
	// Lambda is the migration-cost weight λ.
	Lambda float64
	// Seed makes the script reproducible; 0 means 1.
	Seed int64
	// MaxWeight bounds task weights; 0 means 30.
	MaxWeight int64
}

func (o SessionLoadOptions) events() int {
	if o.Events > 0 {
		return o.Events
	}
	return 200
}

func (o SessionLoadOptions) procs() int {
	if o.Procs > 0 {
		return o.Procs
	}
	return 4
}

func (o SessionLoadOptions) seed() int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

func (o SessionLoadOptions) maxWeight() int64 {
	if o.MaxWeight > 0 {
		return o.MaxWeight
	}
	return 30
}

// SessionLoadReport is the result of one RunSessionLoad — the
// "sessionload" section of BENCH.json.
type SessionLoadReport struct {
	Schema  string  `json:"schema"`
	Created string  `json:"created"`
	Target  string  `json:"target"`
	Events  int     `json:"events"`
	Procs   int     `json:"procs"`
	Multi   bool    `json:"multi"`
	Lambda  float64 `json:"lambda"`
	Seed    int64   `json:"seed"`
	// DurationS is the wall time of the whole replay.
	DurationS float64 `json:"duration_s"`
	// EventP50Ms/P95Ms/P99Ms are per-event request latencies: patch plus
	// warm re-solve plus (always, for this benchmark) the cold
	// comparison re-solve.
	EventP50Ms float64 `json:"event_p50_ms"`
	EventP95Ms float64 `json:"event_p95_ms"`
	EventP99Ms float64 `json:"event_p99_ms"`
	// Adopted counts events whose re-solved schedule beat the patch;
	// Overloaded counts re-solves skipped by admission control.
	Adopted    int `json:"adopted"`
	Overloaded int `json:"overloaded"`
	// Migrations and MigrationCost total the λ objective's moved tasks.
	Migrations    int   `json:"migrations"`
	MigrationCost int64 `json:"migration_cost"`
	// WarmNodes and ColdNodes total the warm-started and cold re-solves'
	// branch-and-bound nodes over the script; WarmColdRatio is their
	// quotient (< 1 means warm starts saved search).
	WarmNodes     int64   `json:"warm_nodes"`
	ColdNodes     int64   `json:"cold_nodes"`
	WarmColdRatio float64 `json:"warm_cold_ratio"`
	// FinalMakespan and FinalTasks describe the schedule after the last
	// event.
	FinalMakespan int64 `json:"final_makespan"`
	FinalTasks    int   `json:"final_tasks"`
}

// RunSessionLoad replays one seeded session script against o.Target and
// returns the measured report. The same options replay the same script.
func RunSessionLoad(ctx context.Context, o SessionLoadOptions) (*SessionLoadReport, error) {
	target := strings.TrimRight(strings.TrimSpace(o.Target), "/")
	if target == "" {
		return nil, errors.New("bench: session load needs a target URL")
	}
	client := &http.Client{Timeout: 60 * time.Second}

	hdr := session.ScriptHeader{
		Procs:       o.procs(),
		Multi:       o.Multi,
		Lambda:      o.Lambda,
		CompareCold: true, // the warm/cold ratio is the point
	}
	id, err := sessionCreate(ctx, client, target, hdr)
	if err != nil {
		return nil, err
	}
	defer sessionDelete(client, target, id)

	events := session.GenerateScript(session.ScriptOptions{
		Seed:      o.seed(),
		Events:    o.events(),
		Procs:     o.procs(),
		Multi:     o.Multi,
		MaxWeight: o.maxWeight(),
	})

	rep := &SessionLoadReport{
		Schema:  SessionLoadSchema,
		Created: time.Now().UTC().Format(time.RFC3339),
		Target:  target,
		Events:  len(events),
		Procs:   o.procs(),
		Multi:   o.Multi,
		Lambda:  o.Lambda,
		Seed:    o.seed(),
	}
	latencies := make([]float64, 0, len(events))
	start := time.Now()
	for i, ev := range events {
		if ctx.Err() != nil {
			break
		}
		t0 := time.Now()
		r, err := sessionPostEvent(ctx, client, target, id, ev)
		latencies = append(latencies, float64(time.Since(t0).Microseconds())/1000)
		if err != nil {
			return nil, fmt.Errorf("bench: event %d (%s): %w", i+1, ev.Op, err)
		}
		if r.Adopted {
			rep.Adopted++
		}
		if r.SolveStatus == "overloaded" {
			rep.Overloaded++
		}
		rep.Migrations += r.Migrations
		rep.MigrationCost += r.MigrationCost
		rep.WarmNodes += r.Nodes
		rep.ColdNodes += r.ColdNodes
		rep.FinalMakespan = r.Makespan
		rep.FinalTasks = r.Tasks
	}
	rep.DurationS = time.Since(start).Seconds()
	sort.Float64s(latencies)
	rep.EventP50Ms = round3(percentileSorted(latencies, 0.50))
	rep.EventP95Ms = round3(percentileSorted(latencies, 0.95))
	rep.EventP99Ms = round3(percentileSorted(latencies, 0.99))
	if rep.ColdNodes > 0 {
		rep.WarmColdRatio = round3(float64(rep.WarmNodes) / float64(rep.ColdNodes))
	}
	return rep, nil
}

// sessionCreate opens the session and returns its id.
func sessionCreate(ctx context.Context, client *http.Client, target string, hdr session.ScriptHeader) (string, error) {
	body, err := json.Marshal(hdr)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/session", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "", fmt.Errorf("bench: opening session: %w", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("bench: POST /session returned HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &created); err != nil || created.ID == "" {
		return "", fmt.Errorf("bench: bad session-create response %q", raw)
	}
	return created.ID, nil
}

// sessionPostEvent applies one event and returns its report.
func sessionPostEvent(ctx context.Context, client *http.Client, target, id string, ev session.Event) (*session.SessionReport, error) {
	body, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/session/"+id+"/events", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	var er struct {
		Reports []*session.SessionReport `json:"reports"`
		Error   string                   `json:"error,omitempty"`
	}
	if err := json.Unmarshal(raw, &er); err != nil {
		return nil, fmt.Errorf("bad events response %q: %v", raw, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, er.Error)
	}
	if len(er.Reports) != 1 {
		return nil, fmt.Errorf("%d reports for one event", len(er.Reports))
	}
	return er.Reports[0], nil
}

// sessionDelete closes the session; best-effort.
func sessionDelete(client *http.Client, target, id string) {
	req, err := http.NewRequest(http.MethodDelete, target+"/session/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// FormatSessionLoadSummary renders the human-readable run summary
// semiload -session prints.
func FormatSessionLoadSummary(rep *SessionLoadReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "session %s: %d events in %.2fs (%d procs, %s, λ=%g, seed %d)\n",
		rep.Target, rep.Events, rep.DurationS, rep.Procs, sessionClass(rep.Multi), rep.Lambda, rep.Seed)
	fmt.Fprintf(&sb, "  per-event latency: p50 %.3fms, p95 %.3fms, p99 %.3fms\n",
		rep.EventP50Ms, rep.EventP95Ms, rep.EventP99Ms)
	fmt.Fprintf(&sb, "  re-solves adopted %d, overloaded %d; migrations %d (cost %d)\n",
		rep.Adopted, rep.Overloaded, rep.Migrations, rep.MigrationCost)
	if rep.ColdNodes > 0 {
		fmt.Fprintf(&sb, "  warm starts: %d nodes vs %d cold (ratio %.3f)\n",
			rep.WarmNodes, rep.ColdNodes, rep.WarmColdRatio)
	}
	fmt.Fprintf(&sb, "  final schedule: %d tasks, makespan %d\n", rep.FinalTasks, rep.FinalMakespan)
	return sb.String()
}

func sessionClass(multi bool) string {
	if multi {
		return "MULTIPROC"
	}
	return "SINGLEPROC"
}
