package gen

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"semimatch/internal/core"
)

func TestBinomialMeanAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, trials = 20, 20000
	sum := 0
	for i := 0; i < trials; i++ {
		k := Binomial(rng, n)
		if k < 0 || k > n {
			t.Fatalf("Binomial out of range: %d", k)
		}
		sum += k
	}
	mean := float64(sum) / trials
	if math.Abs(mean-10) > 0.2 {
		t.Fatalf("Binomial(20) mean = %v, want ≈10", mean)
	}
}

func TestBinomialLargeN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 200 // exercises the 63-bit chunking
	for i := 0; i < 100; i++ {
		k := Binomial(rng, n)
		if k < 0 || k > n {
			t.Fatalf("Binomial(%d) = %d", n, k)
		}
	}
	if Binomial(rng, 0) != 0 {
		t.Fatal("Binomial(0) must be 0")
	}
}

func TestGroupsEven(t *testing.T) {
	off := groups(12, 4)
	if !reflect.DeepEqual(off, []int{0, 3, 6, 9, 12}) {
		t.Fatalf("groups = %v", off)
	}
}

func TestGroupsUneven(t *testing.T) {
	off := groups(10, 4)
	if off[4] != 10 {
		t.Fatalf("last offset = %d", off[4])
	}
	for j := 0; j < 4; j++ {
		sz := off[j+1] - off[j]
		if sz != 2 && sz != 3 {
			t.Fatalf("group %d size %d", j, sz)
		}
	}
}

func TestHiLoDeterministicAndValid(t *testing.T) {
	g1, err := Bipartite(HiLo, 64, 16, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Bipartite(HiLo, 64, 16, 4, 3, 999)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1.Adj, g2.Adj) {
		t.Fatal("HiLo must ignore the seed")
	}
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g1.NLeft; u++ {
		if g1.Degree(u) == 0 {
			t.Fatalf("HiLo produced isolated task %d", u)
		}
		if g1.Degree(u) > 2*(3+1) {
			t.Fatalf("HiLo degree %d too large for d=3", g1.Degree(u))
		}
	}
}

func TestHiLoBandStructure(t *testing.T) {
	// One group, d=1: task i connects to y_k for k = max(1,min(i,p)-1) ..
	// min(i,p). Task 1 (0-based 0) → {y1}; task 2 → {y1,y2}.
	g, err := Bipartite(HiLo, 4, 4, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int32{0}) {
		t.Fatalf("task0 = %v", got)
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("task1 = %v", got)
	}
	if got := g.Neighbors(3); !reflect.DeepEqual(got, []int32{2, 3}) {
		t.Fatalf("task3 = %v", got)
	}
}

func TestHiLoUniquePerfectMatchingSquare(t *testing.T) {
	// The defining property of HiLo with |V1| = |V2|: a unique maximum
	// matching of full cardinality exists, hence optimal makespan 1.
	g, err := Bipartite(HiLo, 32, 32, 4, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, d, err := core.ExactUnit(g, core.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("square HiLo optimal makespan = %d, want 1", d)
	}
}

func TestFewgManygSeedDeterminism(t *testing.T) {
	a, err := Bipartite(FewgManyg, 100, 20, 4, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bipartite(FewgManyg, 100, 20, 4, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Adj, b.Adj) {
		t.Fatal("same seed must reproduce the instance")
	}
	c, err := Bipartite(FewgManyg, 100, 20, 4, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Adj, c.Adj) {
		t.Fatal("different seeds should differ (overwhelmingly)")
	}
}

func TestFewgManygDegreesAndLocality(t *testing.T) {
	const n, p, g, d = 400, 40, 4, 5
	gr, err := Bipartite(FewgManyg, n, p, g, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := gr.Validate(); err != nil {
		t.Fatal(err)
	}
	offL := groups(n, g)
	offR := groups(p, g)
	total := 0
	for u := 0; u < n; u++ {
		deg := gr.Degree(u)
		if deg < 1 {
			t.Fatalf("task %d isolated", u)
		}
		total += deg
		// Locality: neighbors only in adjacent right groups.
		ug := 0
		for offL[ug+1] <= u {
			ug++
		}
		allowed := map[int]bool{(ug - 1 + g) % g: true, ug: true, (ug + 1) % g: true}
		for _, v := range gr.Neighbors(u) {
			vg := 0
			for offR[vg+1] <= int(v) {
				vg++
			}
			if !allowed[vg] {
				t.Fatalf("task %d (group %d) linked to processor group %d", u, ug, vg)
			}
		}
	}
	mean := float64(total) / n
	if mean < float64(d)-1 || mean > float64(d)+1 {
		t.Fatalf("mean degree %v, want ≈%d", mean, d)
	}
}

func TestBipartiteParamErrors(t *testing.T) {
	if _, err := Bipartite(HiLo, 10, 2, 4, 3, 0); err == nil {
		t.Fatal("p < g accepted for HiLo")
	}
	if _, err := Bipartite(Generator(99), 10, 10, 2, 2, 0); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if _, err := Bipartite(FewgManyg, -1, 10, 2, 2, 0); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestHypergraphUnit(t *testing.T) {
	p := HyperParams{Gen: FewgManyg, N: 320, P: 64, Dv: 5, Dh: 10, G: 8, Weights: Unit}
	h, err := Hypergraph(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if !h.Unit() {
		t.Fatal("unit scheme must produce a unit hypergraph")
	}
	if h.NTasks != 320 || h.NProcs != 64 {
		t.Fatalf("sizes: %d %d", h.NTasks, h.NProcs)
	}
	// |N| ≈ N·Dv.
	if h.NumEdges() < 320*3 || h.NumEdges() > 320*7 {
		t.Fatalf("|N| = %d, want ≈%d", h.NumEdges(), 320*5)
	}
}

func TestHypergraphRelatedWeights(t *testing.T) {
	p := HyperParams{Gen: HiLo, N: 128, P: 32, Dv: 3, Dh: 4, G: 4, Weights: Related}
	h, err := Hypergraph(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	minS, maxS := h.MinMaxEdgeSize()
	for e := int32(0); int(e) < h.NumEdges(); e++ {
		s := int64(h.EdgeSize(e))
		want := (int64(minS)*int64(maxS) + s - 1) / s
		if h.Weight[e] != want {
			t.Fatalf("edge %d (size %d): weight %d, want %d", e, s, h.Weight[e], want)
		}
	}
	// Bigger hyperedges get smaller weights.
	if minS != maxS {
		var wSmall, wLarge int64
		for e := int32(0); int(e) < h.NumEdges(); e++ {
			if h.EdgeSize(e) == minS {
				wSmall = h.Weight[e]
			}
			if h.EdgeSize(e) == maxS {
				wLarge = h.Weight[e]
			}
		}
		if wSmall <= wLarge {
			t.Fatalf("related weights not inversely related: small-edge %d, large-edge %d", wSmall, wLarge)
		}
	}
}

func TestHypergraphRandomWeights(t *testing.T) {
	p := HyperParams{Gen: FewgManyg, N: 200, P: 32, Dv: 4, Dh: 5, G: 4, Weights: Random, MaxW: 7}
	h, err := Hypergraph(p, 13)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int64]bool{}
	for _, w := range h.Weight {
		if w < 1 || w > 7 {
			t.Fatalf("weight %d out of [1,7]", w)
		}
		distinct[w] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("suspiciously few distinct weights: %v", distinct)
	}
}

func TestHypergraphDefaultMaxW(t *testing.T) {
	p := HyperParams{Gen: FewgManyg, N: 400, P: 32, Dv: 4, Dh: 5, G: 4, Weights: Random}
	h, err := Hypergraph(p, 17)
	if err != nil {
		t.Fatal(err)
	}
	over := false
	for _, w := range h.Weight {
		if w > 100 {
			t.Fatalf("weight %d exceeds default MaxW 100", w)
		}
		if w > 7 {
			over = true
		}
	}
	if !over {
		t.Fatal("default MaxW seems not applied")
	}
}

func TestHypergraphSeedDeterminism(t *testing.T) {
	p := HyperParams{Gen: FewgManyg, N: 100, P: 16, Dv: 3, Dh: 4, G: 4, Weights: Related}
	a, err := Hypergraph(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Hypergraph(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Pins, b.Pins) || !reflect.DeepEqual(a.Weight, b.Weight) {
		t.Fatal("same seed must reproduce the hypergraph")
	}
}

func TestHypergraphParamErrors(t *testing.T) {
	bad := []HyperParams{
		{Gen: HiLo, N: 0, P: 1, Dv: 1, Dh: 1, G: 1},
		{Gen: HiLo, N: 1, P: 0, Dv: 1, Dh: 1, G: 1},
		{Gen: HiLo, N: 1, P: 1, Dv: 0, Dh: 1, G: 1},
		{Gen: Generator(9), N: 1, P: 1, Dv: 1, Dh: 1, G: 1},
		{Gen: HiLo, N: 1, P: 1, Dv: 1, Dh: 1, G: 1, Weights: WeightScheme(9)},
	}
	for i, p := range bad {
		if _, err := Hypergraph(p, 0); err == nil {
			t.Fatalf("case %d accepted: %+v", i, p)
		}
	}
}

func TestTable1ShapeFG51(t *testing.T) {
	// FG-5-1-MP: n=1280, p=256, dv=5, dh=10, g=32. Table I reports
	// |N| ≈ 6368 and Σ|h∩V2| ≈ 61643 (per-edge mean ≈ 9.7). Allow slack
	// for generator-choice differences but pin the magnitude.
	h, err := Hypergraph(HyperParams{Gen: FewgManyg, N: 1280, P: 256, Dv: 5, Dh: 10, G: 32, Weights: Unit}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() < 5800 || h.NumEdges() > 7000 {
		t.Fatalf("|N| = %d, want ≈6400", h.NumEdges())
	}
	avg := float64(h.NumPins()) / float64(h.NumEdges())
	if avg < 8.5 || avg > 10.5 {
		t.Fatalf("mean |h∩V2| = %v, want ≈9.7", avg)
	}
}

func TestTable1ShapeHLM51(t *testing.T) {
	// HLM-5-1-MP: HiLo, g=128, p=256 → group size 2, per-edge ≈ 3.9.
	h, err := Hypergraph(HyperParams{Gen: HiLo, N: 1280, P: 256, Dv: 5, Dh: 10, G: 128, Weights: Unit}, 1)
	if err != nil {
		t.Fatal(err)
	}
	avg := float64(h.NumPins()) / float64(h.NumEdges())
	if avg < 3.0 || avg > 4.5 {
		t.Fatalf("mean |h∩V2| = %v, want ≈3.9", avg)
	}
}

func TestPropertyHypergraphAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := HyperParams{
			Gen:     Generator(rng.Intn(2)),
			N:       1 + rng.Intn(100),
			P:       4 + rng.Intn(60),
			Dv:      1 + rng.Intn(5),
			Dh:      1 + rng.Intn(8),
			G:       1 + rng.Intn(4),
			Weights: WeightScheme(rng.Intn(3)),
			MaxW:    1 + rng.Int63n(50),
		}
		h, err := Hypergraph(p, seed)
		if err != nil {
			return false
		}
		return h.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHypergraphFG201(b *testing.B) {
	p := HyperParams{Gen: FewgManyg, N: 5120, P: 256, Dv: 5, Dh: 10, G: 32, Weights: Related}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hypergraph(p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBipartiteHiLo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Bipartite(HiLo, 20480, 1024, 32, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
}
