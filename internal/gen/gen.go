// Package gen implements the random instance generators of Sec. V-A of the
// paper: the HiLo and FewgManyg bipartite graph generators of Cherkassky,
// Goldberg, Martin, Setubal & Stolfi [7] (as adapted by the paper for
// |V1| ≠ |V2|), the two-stage hypergraph generator built on top of them,
// and the three hyperedge weight schemes (unit, related, random).
//
// All generation is deterministic given a seed. HiLo is itself
// deterministic (its structure depends only on the parameters); the
// paper's "10 random instances" vary through the random stages
// (FewgManyg's degrees and neighbor choices, and the task-degree sampling
// of the hypergraph generator).
//
// Where the original generator description leaves choices open, this
// package documents its own:
//
//   - "sampling from a binomial distribution with mean d" is realized as
//     Binomial(2d, 1/2), clamped to ≥ 1 so that every vertex keeps at
//     least one option (an instance with an impossible task is
//     uninteresting for makespan minimization);
//   - groups divide vertices as evenly as possible when the count is not a
//     multiple of g (sizes differ by at most one);
//   - FewgManyg draws with replacement when the requested degree exceeds
//     the 3-group candidate pool, then deduplicates (simple graphs).
package gen

import (
	"fmt"
	"math/rand"

	"semimatch/internal/bipartite"
	"semimatch/internal/hypergraph"
)

// Generator selects the structure generator.
type Generator int

const (
	// HiLo: vertex x^j_i connects to y^j_k (and y^{j+1}_k when j < g) for
	// k = max(1, min(i, sz)-d) .. min(i, sz) — a banded, deterministic
	// family with strong structure.
	HiLo Generator = iota
	// FewgManyg: each left vertex draws a binomial number of random
	// neighbors from the three adjacent right groups (wrap-around).
	FewgManyg
)

// String returns the generator's conventional name.
func (g Generator) String() string {
	switch g {
	case HiLo:
		return "HiLo"
	case FewgManyg:
		return "FewgManyg"
	default:
		return fmt.Sprintf("Generator(%d)", int(g))
	}
}

// WeightScheme selects hyperedge weights (Sec. V-A2).
type WeightScheme int

const (
	// Unit: w_h = 1 (MULTIPROC-UNIT).
	Unit WeightScheme = iota
	// Related: w_h = ⌈min_s · max_s / s_h⌉ where s_h = |h∩V2| — more
	// processors means proportionally less time per processor.
	Related
	// Random: w_h uniform in [1, MaxW].
	Random
)

// String returns the scheme's conventional name.
func (w WeightScheme) String() string {
	switch w {
	case Unit:
		return "unit"
	case Related:
		return "related"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("WeightScheme(%d)", int(w))
	}
}

// Binomial samples Binomial(n, 1/2) using n fair coin flips; its mean is
// n/2 (so Binomial(2d) has mean d, the paper's "binomial distribution with
// mean d").
func Binomial(rng *rand.Rand, n int) int {
	k := 0
	// Flip 63 coins at a time.
	for n >= 63 {
		bits := rng.Int63()
		for b := 0; b < 63; b++ {
			k += int(bits & 1)
			bits >>= 1
		}
		n -= 63
	}
	if n > 0 {
		bits := rng.Int63()
		for b := 0; b < n; b++ {
			k += int(bits & 1)
			bits >>= 1
		}
	}
	return k
}

// groups splits n vertices into g groups as evenly as possible and returns
// the start offset of each group (len g+1). Groups differ in size by at
// most one; the first n%g groups take the extra vertex.
func groups(n, g int) []int {
	off := make([]int, g+1)
	base, extra := n/g, n%g
	for j := 0; j < g; j++ {
		sz := base
		if j < extra {
			sz++
		}
		off[j+1] = off[j] + sz
	}
	return off
}

// hiLoRows builds the HiLo adjacency: row for each of the m left vertices
// over p right vertices in g groups with band parameter d. Deterministic.
func hiLoRows(m, p, g, d int) ([][]int32, error) {
	if g < 1 {
		return nil, fmt.Errorf("gen: g must be >= 1, got %d", g)
	}
	if p < g {
		return nil, fmt.Errorf("gen: HiLo needs p >= g (got p=%d, g=%d)", p, g)
	}
	offL := groups(m, g)
	offR := groups(p, g)
	rows := make([][]int32, m)
	for j := 0; j < g; j++ {
		szR := offR[j+1] - offR[j]
		var szR2, baseR2 int
		if j+1 < g {
			szR2 = offR[j+2] - offR[j+1]
			baseR2 = offR[j+1]
		}
		for x := offL[j]; x < offL[j+1]; x++ {
			i := x - offL[j] + 1 // 1-based index within the group
			kmax := i
			if kmax > szR {
				kmax = szR
			}
			kmin := kmax - d
			if kmin < 1 {
				kmin = 1
			}
			for k := kmin; k <= kmax; k++ {
				rows[x] = append(rows[x], int32(offR[j]+k-1))
			}
			if j+1 < g {
				kmax2 := i
				if kmax2 > szR2 {
					kmax2 = szR2
				}
				kmin2 := kmax2 - d
				if kmin2 < 1 {
					kmin2 = 1
				}
				for k := kmin2; k <= kmax2; k++ {
					rows[x] = append(rows[x], int32(baseR2+k-1))
				}
			}
		}
	}
	return rows, nil
}

// fewgManygRows builds the FewgManyg adjacency: left vertex in group j
// draws Binomial(2d)∨1 neighbors from right groups j-1, j, j+1 (wrapping).
func fewgManygRows(rng *rand.Rand, m, p, g, d int) ([][]int32, error) {
	if g < 1 {
		return nil, fmt.Errorf("gen: g must be >= 1, got %d", g)
	}
	if p < 1 {
		return nil, fmt.Errorf("gen: p must be >= 1, got %d", p)
	}
	offL := groups(m, g)
	offR := groups(p, g)
	rows := make([][]int32, m)
	var pool []int32
	seen := make(map[int32]bool)
	for j := 0; j < g; j++ {
		// Candidate pool: groups j-1, j, j+1 with wrap-around; distinct
		// groups only (g < 3 collapses them).
		pool = pool[:0]
		used := map[int]bool{}
		for _, dj := range []int{-1, 0, 1} {
			gj := ((j+dj)%g + g) % g
			if used[gj] {
				continue
			}
			used[gj] = true
			for v := offR[gj]; v < offR[gj+1]; v++ {
				pool = append(pool, int32(v))
			}
		}
		for x := offL[j]; x < offL[j+1]; x++ {
			di := Binomial(rng, 2*d)
			if di < 1 {
				di = 1
			}
			clear(seen)
			if di <= len(pool) {
				// Without replacement: partial Fisher–Yates over a copy.
				tmp := append([]int32(nil), pool...)
				for i := 0; i < di; i++ {
					r := i + rng.Intn(len(tmp)-i)
					tmp[i], tmp[r] = tmp[r], tmp[i]
					rows[x] = append(rows[x], tmp[i])
				}
			} else {
				// With replacement, deduplicated.
				for i := 0; i < di; i++ {
					v := pool[rng.Intn(len(pool))]
					if !seen[v] {
						seen[v] = true
						rows[x] = append(rows[x], v)
					}
				}
			}
		}
	}
	return rows, nil
}

// Bipartite generates a SINGLEPROC(-UNIT) instance with n tasks, p
// processors, g groups and degree parameter d. The seed is ignored by HiLo
// (deterministic family).
func Bipartite(generator Generator, n, p, g, d int, seed int64) (*bipartite.Graph, error) {
	if n < 0 || p < 1 || d < 1 {
		return nil, fmt.Errorf("gen: invalid parameters n=%d p=%d d=%d", n, p, d)
	}
	var rows [][]int32
	var err error
	switch generator {
	case HiLo:
		rows, err = hiLoRows(n, p, g, d)
	case FewgManyg:
		rows, err = fewgManygRows(rand.New(rand.NewSource(seed)), n, p, g, d)
	default:
		return nil, fmt.Errorf("gen: unknown generator %d", generator)
	}
	if err != nil {
		return nil, err
	}
	b := bipartite.NewBuilder(n, p)
	for u, row := range rows {
		for _, v := range row {
			b.AddEdge(u, int(v))
		}
	}
	return b.Build()
}

// HyperParams parameterizes the two-stage hypergraph generator of
// Sec. V-A2.
type HyperParams struct {
	Gen     Generator    // structure generator for the hyperedge→processor stage
	N       int          // number of tasks |V1|
	P       int          // number of processors |V2|
	Dv      int          // mean number of configurations per task
	Dh      int          // degree parameter for processors per hyperedge
	G       int          // number of groups
	Weights WeightScheme // hyperedge weight scheme
	MaxW    int64        // maximum weight for the Random scheme (default 100)
}

// Hypergraph generates a MULTIPROC instance: first the number of
// configurations of each task is sampled (Binomial(2·Dv)∨1), then the
// resulting |N| hyperedges receive their processor sets from the selected
// bipartite generator with parameters (|N|, P, G, Dh), and finally weights
// are assigned per the scheme.
func Hypergraph(p HyperParams, seed int64) (*hypergraph.Hypergraph, error) {
	if p.N < 1 || p.P < 1 || p.Dv < 1 || p.Dh < 1 || p.G < 1 {
		return nil, fmt.Errorf("gen: invalid hypergraph parameters %+v", p)
	}
	rng := rand.New(rand.NewSource(seed))
	// Stage 1: task degrees.
	deg := make([]int, p.N)
	m := 0
	for t := range deg {
		d := Binomial(rng, 2*p.Dv)
		if d < 1 {
			d = 1
		}
		deg[t] = d
		m += d
	}
	// Stage 2: processor sets for the m hyperedges.
	var rows [][]int32
	var err error
	switch p.Gen {
	case HiLo:
		rows, err = hiLoRows(m, p.P, p.G, p.Dh)
	case FewgManyg:
		rows, err = fewgManygRows(rng, m, p.P, p.G, p.Dh)
	default:
		return nil, fmt.Errorf("gen: unknown generator %d", p.Gen)
	}
	if err != nil {
		return nil, err
	}
	// Weights.
	weights := make([]int64, m)
	switch p.Weights {
	case Unit:
		for e := range weights {
			weights[e] = 1
		}
	case Related:
		minS, maxS := len(rows[0]), len(rows[0])
		for _, r := range rows {
			if len(r) < minS {
				minS = len(r)
			}
			if len(r) > maxS {
				maxS = len(r)
			}
		}
		for e, r := range rows {
			s := int64(len(r))
			weights[e] = (int64(minS)*int64(maxS) + s - 1) / s // ceil
		}
	case Random:
		maxW := p.MaxW
		if maxW <= 0 {
			maxW = 100
		}
		for e := range weights {
			weights[e] = 1 + rng.Int63n(maxW)
		}
	default:
		return nil, fmt.Errorf("gen: unknown weight scheme %d", p.Weights)
	}
	// Assemble: hyperedge e belongs to the task whose degree range covers e.
	b := hypergraph.NewBuilder(p.N, p.P)
	e := 0
	for t := 0; t < p.N; t++ {
		for j := 0; j < deg[t]; j++ {
			b.AddEdge32(int32(t), rows[e], weights[e])
			e++
		}
	}
	return b.Build()
}
