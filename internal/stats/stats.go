// Package stats provides the small statistical toolbox used by the
// experiment harness: medians over the 10 random instances per parameter
// set (the paper's aggregation), means, quantiles and ratio formatting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Number is the constraint for the summary helpers.
type Number interface {
	~int | ~int32 | ~int64 | ~float64
}

// Median returns the median of xs (average of the two middle elements for
// even length, matching common practice and Matlab's median). It panics on
// empty input. The input is not modified.
func Median[T Number](xs []T) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	s := append([]T(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return float64(s[n/2])
	}
	return (float64(s[n/2-1]) + float64(s[n/2])) / 2
}

// MedianInt returns the lower median as the same integer-ish type, for
// columns that must stay integral (e.g. |N| in Table I).
func MedianInt[T Number](xs []T) T {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	s := append([]T(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean[T Number](xs []T) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// Min returns the minimum of xs; panics on empty input.
func Min[T Number](xs []T) T {
	if len(xs) == 0 {
		panic("stats: min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; panics on empty input.
func Max[T Number](xs []T) T {
	if len(xs) == 0 {
		panic("stats: max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics; panics on empty input.
func Quantile[T Number](xs []T, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	s := append([]T(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if len(s) == 1 {
		return float64(s[0])
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return float64(s[lo])
	}
	frac := pos - float64(lo)
	return float64(s[lo])*(1-frac) + float64(s[hi])*frac
}

// Stddev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two samples.
func Stddev[T Number](xs []T) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := float64(x) - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Ratio formats a/b with two decimals, the format of the quality columns in
// Tables II and III. b must be non-zero.
func Ratio(a, b float64) string {
	return fmt.Sprintf("%.2f", a/b)
}
