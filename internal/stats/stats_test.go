package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedianOdd(t *testing.T) {
	if got := Median([]int64{5, 1, 3}); got != 3 {
		t.Fatalf("Median = %v", got)
	}
}

func TestMedianEven(t *testing.T) {
	if got := Median([]int{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median = %v", got)
	}
}

func TestMedianSingle(t *testing.T) {
	if got := Median([]float64{7.5}); got != 7.5 {
		t.Fatalf("Median = %v", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []int{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestMedianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Median([]int{})
}

func TestMedianInt(t *testing.T) {
	if got := MedianInt([]int{4, 1, 3, 2}); got != 2 {
		t.Fatalf("MedianInt = %v (lower median)", got)
	}
	if got := MedianInt([]int{9}); got != 9 {
		t.Fatalf("MedianInt = %v", got)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []int64{2, 8, 5}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Min(xs) != 2 || Max(xs) != 8 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Mean([]int{}) != 0 {
		t.Fatal("Mean of empty must be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("q.5 = %v", got)
	}
	if got := Quantile([]int{9}, 0.3); got != 9 {
		t.Fatalf("single = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for q=%v", q)
				}
			}()
			Quantile([]int{1}, q)
		}()
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{2, 4}); math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("Stddev = %v", got)
	}
	if Stddev([]int{5}) != 0 {
		t.Fatal("single sample stddev must be 0")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 2); got != "1.50" {
		t.Fatalf("Ratio = %q", got)
	}
	if got := Ratio(10.54, 1); got != "10.54" {
		t.Fatalf("Ratio = %q", got)
	}
}

func TestPropertyMedianBetweenMinMax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]int64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.Int63n(1000)
		}
		m := Median(xs)
		return float64(Min(xs)) <= m && m <= float64(Max(xs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 2+rng.Intn(30))
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		qs := []float64{0, 0.25, 0.5, 0.75, 1}
		vals := make([]float64, len(qs))
		for i, q := range qs {
			vals[i] = Quantile(xs, q)
		}
		return sort.Float64sAreSorted(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
