package lb

import (
	"math/rand"
	"testing"

	"semimatch/internal/bipartite"
	"semimatch/internal/flow"
	"semimatch/internal/hypergraph"
)

// bruteSP returns the optimal SINGLEPROC makespan by enumeration.
func bruteSP(t *testing.T, g *bipartite.Graph) int64 {
	t.Helper()
	loads := make([]int64, g.NRight)
	best := int64(1) << 62
	var rec func(task int, cur int64)
	rec = func(task int, cur int64) {
		if cur >= best {
			return
		}
		if task == g.NLeft {
			best = cur
			return
		}
		row := g.Neighbors(task)
		w := g.Weights(task)
		for k, proc := range row {
			wt := int64(1)
			if w != nil {
				wt = w[k]
			}
			loads[proc] += wt
			nc := cur
			if loads[proc] > nc {
				nc = loads[proc]
			}
			rec(task+1, nc)
			loads[proc] -= wt
		}
	}
	rec(0, 0)
	return best
}

// bruteMP returns the optimal MULTIPROC makespan by enumeration.
func bruteMP(t *testing.T, h *hypergraph.Hypergraph) int64 {
	t.Helper()
	loads := make([]int64, h.NProcs)
	best := int64(1) << 62
	var rec func(task int, cur int64)
	rec = func(task int, cur int64) {
		if cur >= best {
			return
		}
		if task == h.NTasks {
			best = cur
			return
		}
		for _, e := range h.TaskEdges(task) {
			w := h.Weight[e]
			pins := h.EdgeProcs(e)
			nc := cur
			for _, u := range pins {
				loads[u] += w
				if loads[u] > nc {
					nc = loads[u]
				}
			}
			rec(task+1, nc)
			for _, u := range pins {
				loads[u] -= w
			}
		}
	}
	rec(0, 0)
	return best
}

func randGraph(rng *rand.Rand, n, p, deg int, wmax int64) *bipartite.Graph {
	b := bipartite.NewBuilder(n, p)
	for t := 0; t < n; t++ {
		perm := rng.Perm(p)
		d := 1 + rng.Intn(deg)
		if d > p {
			d = p
		}
		for _, proc := range perm[:d] {
			b.AddWeightedEdge(t, proc, 1+rng.Int63n(wmax))
		}
	}
	return b.MustBuild()
}

func randHyperLB(rng *rand.Rand, n, p, deg, maxSize int, wmax int64) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n, p)
	for t := 0; t < n; t++ {
		d := 1 + rng.Intn(deg)
		for e := 0; e < d; e++ {
			sz := 1 + rng.Intn(maxSize)
			if sz > p {
				sz = p
			}
			perm := rng.Perm(p)
			b.AddEdge(t, perm[:sz], 1+rng.Int63n(wmax))
		}
	}
	return b.MustBuild()
}

// trivialBound is max(⌈Σm/p⌉, max m) over the min-placement items — the
// floor every stronger bound must meet.
func trivialBound(items []int64, p int) int64 {
	var sum, mx int64
	for _, x := range items {
		sum += x
		if x > mx {
			mx = x
		}
	}
	lb := (sum + int64(p) - 1) / int64(p)
	if mx > lb {
		lb = mx
	}
	return lb
}

// TestPackingSandwich: on random item sets, Packing is at least the
// trivial bound and at most the true identical-machines optimum
// (computed by brute force over machine assignments).
func TestPackingSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(9)
		p := 2 + rng.Intn(3)
		items := make([]int64, n)
		for i := range items {
			items[i] = 1 + rng.Int63n(40)
		}
		got := Packing(items, p)
		// Brute-force P||Cmax: every item may go anywhere.
		b := bipartite.NewBuilder(n, p)
		for i, w := range items {
			for proc := 0; proc < p; proc++ {
				b.AddWeightedEdge(i, proc, w)
			}
		}
		opt := bruteSP(t, b.MustBuild())
		triv := trivialBound(items, p)
		if got < triv {
			t.Fatalf("trial %d: packing %d below trivial bound %d (items %v, p=%d)", trial, got, triv, items, p)
		}
		if got > opt {
			t.Fatalf("trial %d: packing %d exceeds optimum %d (items %v, p=%d)", trial, got, opt, items, p)
		}
	}
}

// TestPackingKnown: hand-built cases where L2 must beat L1.
func TestPackingKnown(t *testing.T) {
	cases := []struct {
		items []int64
		p     int
		want  int64
	}{
		{[]int64{6, 6, 6}, 2, 12},         // 3 items, 2 machines: two share
		{[]int64{5, 5, 5, 5, 5}, 2, 15},   // 5 items on 2: three share
		{[]int64{7, 7, 7, 1, 1, 1}, 3, 8}, // each 7 pairs with a 1
		{[]int64{10}, 3, 10},
		{nil, 4, 0},
		{[]int64{3, 3, 3}, 1, 9},
	}
	for i, c := range cases {
		if got := Packing(c.items, c.p); got != c.want {
			t.Fatalf("case %d: Packing(%v, %d) = %d, want %d", i, c.items, c.p, got, c.want)
		}
	}
}

// TestMatchingGraphSandwich: the flow bound sits between the trivial
// bound and the brute-force optimum on random weighted instances.
func TestMatchingGraphSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 120; trial++ {
		g := randGraph(rng, 3+rng.Intn(7), 2+rng.Intn(3), 3, 30)
		got := MatchingGraph(g)
		opt := bruteSP(t, g)
		triv := trivialBound(MinPlacementsGraph(g), g.NRight)
		if got < triv {
			t.Fatalf("trial %d: matching %d below trivial %d", trial, got, triv)
		}
		if got > opt {
			t.Fatalf("trial %d: matching %d exceeds optimum %d", trial, got, opt)
		}
	}
}

// TestMatchingGraphUnitExact: for unit SINGLEPROC the relaxation is the
// replicated-matching feasibility oracle, so the bound equals the
// optimum computed by the existing exact flow solver.
func TestMatchingGraphUnitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(10)
		p := 2 + rng.Intn(4)
		b := bipartite.NewBuilder(n, p)
		for task := 0; task < n; task++ {
			perm := rng.Perm(p)
			d := 1 + rng.Intn(3)
			if d > p {
				d = p
			}
			for _, proc := range perm[:d] {
				b.AddEdge(task, proc)
			}
		}
		g := b.MustBuild()
		_, opt, err := flow.ExactUnitViaFlow(g)
		if err != nil {
			t.Fatal(err)
		}
		if got := MatchingGraph(g); got != opt {
			t.Fatalf("trial %d: unit matching bound %d ≠ optimum %d", trial, got, opt)
		}
	}
}

// TestMatchingHyperSandwich: same sandwich for the hypergraph variant.
func TestMatchingHyperSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 120; trial++ {
		h := randHyperLB(rng, 3+rng.Intn(6), 2+rng.Intn(3), 3, 2, 25)
		got := MatchingHyper(h)
		opt := bruteMP(t, h)
		triv := trivialBound(MinPlacementsHyper(h), h.NProcs)
		if got < triv {
			t.Fatalf("trial %d: matching %d below trivial %d", trial, got, triv)
		}
		if got > opt {
			t.Fatalf("trial %d: matching %d exceeds optimum %d", trial, got, opt)
		}
	}
}

// TestPackingSandwichHyper: Packing over MinPlacementsHyper stays a
// valid lower bound for true MULTIPROC optima (the relaxation argument).
func TestPackingSandwichHyper(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 120; trial++ {
		h := randHyperLB(rng, 3+rng.Intn(6), 2+rng.Intn(3), 3, 2, 25)
		got := Packing(MinPlacementsHyper(h), h.NProcs)
		opt := bruteMP(t, h)
		if got > opt {
			t.Fatalf("trial %d: packing %d exceeds MULTIPROC optimum %d", trial, got, opt)
		}
	}
}

// TestMatchingDominatesTrivial: on partition-shaped instances (every
// task everywhere) the matching bound reduces to at least the packing
// L1; on restricted instances it can strictly exceed it. Check a case
// where eligibility structure forces a higher bound than any
// load-average argument.
func TestMatchingSeesStructure(t *testing.T) {
	// Two tasks, two procs, but both tasks only reach proc 0.
	b := bipartite.NewBuilder(2, 2)
	b.AddWeightedEdge(0, 0, 5)
	b.AddWeightedEdge(1, 0, 5)
	g := b.MustBuild()
	// avg = ⌈10/2⌉ = 5, maxElem = 5, but both 5s must share proc 0.
	if got := MatchingGraph(g); got != 10 {
		t.Fatalf("matching bound %d, want 10 (both tasks confined to one proc)", got)
	}
}
