// Package lb provides the stronger instance-level lower bounds behind the
// flat-core branch-and-bound engine (and behind cert's re-derivable
// optimality witnesses): a bin-packing bound for identical-machines
// relaxations and a matching/max-flow feasibility bound for eligibility
// structure.
//
// Both bounds dominate the two classic cheap bounds (average load and
// max element) on their home turf and are polynomial to re-derive, so a
// search that closes its gap with one of them yields a certificate that
// cert.Verify can re-prove locally (TierVerified) instead of merely
// attesting exhaustion.
//
// # The identical-machines relaxation
//
// Every SINGLEPROC or MULTIPROC instance relaxes to P||Cmax: give task t
// an indivisible item of size m_t — its cheapest placement weight (min
// edge weight over its row, or min hyperedge weight over its
// configurations) — and let all p processors accept every item. Any
// feasible schedule places, for each task, at least m_t on some single
// processor, so the relaxed optimum lower-bounds the true one. Packing
// computes a lower bound for the relaxation:
//
//   - L1: max(⌈Σm/p⌉, max m) — the two classic bounds;
//   - k-tuple: among the (k-1)·p+1 largest items, k must share a
//     processor, so the k smallest of them bound the makespan;
//   - the Martello–Toth dual: capacity C is infeasible if the L2
//     bin-packing bound at capacity C needs more than p bins; the
//     smallest not-provably-infeasible C is a valid makespan bound.
//
// # The matching/flow relaxation
//
// The bipartite-matching view of SINGLEPROC (the paper's Theorem 1
// machinery): makespan ≤ T is only possible if each task can route m_t
// units of flow to some processor whose edge weight is ≤ T, with every
// processor absorbing at most T in total. Infeasibility of that flow for
// a given T proves OPT > T; MatchingGraph/MatchingHyper bisect for the
// smallest feasible T. For unit SINGLEPROC instances the relaxation is
// exact (it is the replicated-matching feasibility oracle), and in
// general it dominates both the average-load and max-element bounds
// while seeing eligibility structure neither can.
package lb

import (
	"sort"

	"semimatch/internal/bipartite"
	"semimatch/internal/flow"
	"semimatch/internal/hypergraph"
)

// packScanCap bounds the upward capacity scan of the Martello–Toth dual
// in Packing. Stopping the scan early only weakens the bound (each
// rejected capacity is a proof), never invalidates it.
const packScanCap = 4096

// MinPlacementsGraph returns m_t per task: the cheapest edge weight of
// each row (1 for unit graphs) — the item sizes of the identical-machines
// relaxation.
func MinPlacementsGraph(g *bipartite.Graph) []int64 {
	m := make([]int64, g.NLeft)
	for t := 0; t < g.NLeft; t++ {
		best := int64(1)
		if w := g.Weights(t); len(w) > 0 {
			best = w[0]
			for _, x := range w[1:] {
				if x < best {
					best = x
				}
			}
		}
		m[t] = best
	}
	return m
}

// MinPlacementsHyper returns m_t per task: the cheapest hyperedge weight
// among each task's configurations. Whatever configuration a task picks,
// every processor in it absorbs the full edge weight, so m_t lands whole
// on at least one processor.
func MinPlacementsHyper(h *hypergraph.Hypergraph) []int64 {
	m := make([]int64, h.NTasks)
	for t := 0; t < h.NTasks; t++ {
		best := int64(-1)
		for _, e := range h.TaskEdges(t) {
			if w := h.Weight[e]; best < 0 || w < best {
				best = w
			}
		}
		if best < 0 {
			best = 0
		}
		m[t] = best
	}
	return m
}

// Packing returns a lower bound on the optimal makespan of scheduling
// one indivisible item per task on p identical machines. It is a valid
// lower bound for any SINGLEPROC/MULTIPROC instance when items are the
// cheapest-placement weights (see the package comment). items is not
// modified.
func Packing(items []int64, p int) int64 {
	n := len(items)
	if n == 0 || p <= 0 {
		return 0
	}
	s := append([]int64(nil), items...)
	sort.Slice(s, func(i, j int) bool { return s[i] > s[j] }) // descending
	var sum int64
	for _, x := range s {
		sum += x
	}
	if p == 1 {
		return sum
	}
	bound := (sum + int64(p) - 1) / int64(p)
	if s[0] > bound {
		bound = s[0]
	}
	// k-tuple bounds: among the (k-1)p+1 largest items, k share a machine;
	// the cheapest way to share is the k smallest of them.
	for k := 2; (k-1)*p+1 <= n; k++ {
		top := (k - 1) * p // items s[0..top] are the (k-1)p+1 largest
		var t int64
		for i := top - k + 1; i <= top; i++ {
			t += s[i]
		}
		if t > bound {
			bound = t
		}
	}
	// Martello–Toth dual: walk capacities upward from the bound so far,
	// rejecting each capacity the L2 bin-packing bound proves needs more
	// than p bins. pre[i] = Σ s[0:i] (descending prefix sums).
	pre := make([]int64, n+1)
	for i, x := range s {
		pre[i+1] = pre[i] + x
	}
	needsMoreBins := func(C, alpha int64) bool {
		// J1 = items > C-α (own bin, no J3 item fits beside them),
		// J2 = items in (C/2, C-α] (own bin, residual C-x free),
		// J3 = items in [α, C/2] (fill J2 residuals, then new bins).
		i1 := sort.Search(n, func(i int) bool { return s[i] <= C-alpha })
		i2 := sort.Search(n, func(i int) bool { return 2*s[i] <= C })
		if i2 < i1 {
			i2 = i1
		}
		i3 := sort.Search(n, func(i int) bool { return s[i] < alpha })
		if i3 < i2 {
			i3 = i2
		}
		n2 := int64(i2 - i1)
		s2 := pre[i2] - pre[i1]
		s3 := pre[i3] - pre[i2]
		need := int64(i1) + n2
		if free := n2*C - s2; s3 > free {
			need += (s3 - free + C - 1) / C
		}
		return need > int64(p)
	}
	infeasible := func(C int64) bool {
		if needsMoreBins(C, 0) {
			return true
		}
		// Candidate thresholds: the distinct item sizes ≤ C/2, walked
		// ascending so the break on 2x > C ends the scan.
		for i := n - 1; i >= 0; i-- {
			x := s[i]
			if 2*x > C {
				break
			}
			if i < n-1 && s[i+1] == x {
				continue
			}
			if needsMoreBins(C, x) {
				return true
			}
		}
		return false
	}
	for iter := 0; iter < packScanCap && infeasible(bound); iter++ {
		bound++
	}
	return bound
}

// MatchingGraph returns the matching/flow lower bound of a SINGLEPROC
// instance: the smallest T for which the min-placement flow relaxation is
// feasible (see the package comment). Tasks with empty rows are skipped
// (the exact solvers reject them before bounding). For unit graphs the
// bound is exact — it equals the optimal makespan.
func MatchingGraph(g *bipartite.Graph) int64 {
	n, p := g.NLeft, g.NRight
	if n == 0 || p == 0 {
		return 0
	}
	m := MinPlacementsGraph(g)
	var sum, maxElem int64
	for t, x := range m {
		if g.Degree(t) == 0 {
			m[t] = 0
			continue
		}
		sum += x
		if x > maxElem {
			maxElem = x
		}
	}
	feasible := func(T int64) bool {
		net := flow.NewNetwork(n + p + 2)
		s, t := n+p, n+p+1
		var want int64
		for task := 0; task < n; task++ {
			if m[task] == 0 {
				continue
			}
			net.AddArc(s, task, m[task])
			want += m[task]
			row := g.Neighbors(task)
			w := g.Weights(task)
			for k, proc := range row {
				wt := int64(1)
				if w != nil {
					wt = w[k]
				}
				if wt <= T {
					net.AddArc(task, n+int(proc), m[task])
				}
			}
		}
		for proc := 0; proc < p; proc++ {
			net.AddArc(n+proc, t, T)
		}
		return net.MaxFlow(s, t) == want
	}
	lo := (sum + int64(p) - 1) / int64(p)
	if maxElem > lo {
		lo = maxElem
	}
	hi := sum // feasible: route every demand through its cheapest edge
	if hi < lo {
		hi = lo
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// MatchingHyper returns the matching/flow lower bound of a MULTIPROC
// instance: task t must route m_t (its cheapest configuration weight) to
// some processor appearing in a configuration of weight ≤ T, and every
// processor absorbs at most T. Valid because the chosen configuration
// loads its full weight onto each of its processors.
func MatchingHyper(h *hypergraph.Hypergraph) int64 {
	n, p := h.NTasks, h.NProcs
	if n == 0 || p == 0 {
		return 0
	}
	m := MinPlacementsHyper(h)
	var sum, maxElem int64
	for _, x := range m {
		sum += x
		if x > maxElem {
			maxElem = x
		}
	}
	feasible := func(T int64) bool {
		net := flow.NewNetwork(n + p + 2)
		s, t := n+p, n+p+1
		var want int64
		for task := 0; task < n; task++ {
			if m[task] == 0 {
				continue
			}
			net.AddArc(s, task, m[task])
			want += m[task]
			for _, e := range h.TaskEdges(task) {
				if h.Weight[e] > T {
					continue
				}
				for _, u := range h.EdgeProcs(e) {
					// Duplicate arcs are harmless: the source arc caps the
					// task's total outflow at m[task].
					net.AddArc(task, n+int(u), m[task])
				}
			}
		}
		for proc := 0; proc < p; proc++ {
			net.AddArc(n+proc, t, T)
		}
		return net.MaxFlow(s, t) == want
	}
	lo := (sum + int64(p) - 1) / int64(p)
	if maxElem > lo {
		lo = maxElem
	}
	hi := sum
	if hi < lo {
		hi = lo
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
