package encode

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// The parsers consume untrusted files (cmd/semisolve reads arbitrary
// paths); fuzzing asserts that they never panic and that anything they
// accept survives a write/read round trip unchanged.

func FuzzReadBipartite(f *testing.F) {
	f.Add("bipartite 2 2 unit\n0 0\n1 1\n")
	f.Add("bipartite 2 2 weighted\n0 0 5\n")
	f.Add("bipartite 0 0 unit\n")
	f.Add("# comment\nbipartite 1 1 unit\n\n0 0\n")
	f.Add("bipartite 1 1 float\n")
	f.Add("hypergraph 1 1 1\n0 1 1 0\n")
	f.Add("bipartite 99999999999 2 unit\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadBipartite(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteBipartite(&buf, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, err := ReadBipartite(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if !reflect.DeepEqual(g.Ptr, g2.Ptr) || !reflect.DeepEqual(g.Adj, g2.Adj) || !reflect.DeepEqual(g.W, g2.W) {
			t.Fatal("round trip changed the graph")
		}
	})
}

func FuzzReadHypergraph(f *testing.F) {
	f.Add("hypergraph 1 1 1\n0 1 1 0\n")
	f.Add("hypergraph 2 3 3\n0 2 1 0\n0 1 2 1 2\n1 1 1 2\n")
	f.Add("hypergraph 1 1 0\n")
	f.Add("hypergraph 1 1 1\n0 1 2 0\n")
	f.Add("hypergraph -1 1 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		h, err := ReadHypergraph(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("accepted invalid hypergraph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteHypergraph(&buf, h); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		h2, err := ReadHypergraph(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if !reflect.DeepEqual(h.Pins, h2.Pins) || !reflect.DeepEqual(h.Weight, h2.Weight) {
			t.Fatal("round trip changed the hypergraph")
		}
	})
}
