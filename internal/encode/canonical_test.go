package encode

import (
	"bytes"
	"math/rand"
	"testing"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
)

// buildHyper assembles a hypergraph from (task, weight, procs) triples in
// the given order.
type hedge struct {
	t     int
	w     int64
	procs []int
}

func buildHyper(t *testing.T, nTasks, nProcs int, edges []hedge) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(nTasks, nProcs)
	for _, e := range edges {
		b.AddEdge(e.t, e.procs, e.w)
	}
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return h
}

// TestWriteHypergraphDeterministic: writing the same instance twice yields
// byte-identical text — the property the fingerprint hashes rely on.
func TestWriteHypergraphDeterministic(t *testing.T) {
	h := buildHyper(t, 3, 4, []hedge{
		{0, 5, []int{2, 0}},
		{0, 3, []int{1}},
		{1, 2, []int{0, 1, 3}},
		{2, 7, []int{3}},
	})
	var a, b bytes.Buffer
	if err := WriteHypergraph(&a, h); err != nil {
		t.Fatal(err)
	}
	if err := WriteHypergraph(&b, h); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two writes differ:\n%q\n%q", a.String(), b.String())
	}
}

// TestCanonicalHypergraphIsomorph: an instance with configurations
// inserted in a different order (and processors listed in a different
// order within each configuration) canonicalizes to byte-identical text
// and an equal fingerprint.
func TestCanonicalHypergraphIsomorph(t *testing.T) {
	h1 := buildHyper(t, 3, 4, []hedge{
		{0, 3, []int{1}},
		{0, 5, []int{0, 2}},
		{1, 2, []int{0, 1, 3}},
		{1, 2, []int{0, 1}},
		{2, 7, []int{3}},
	})
	h2 := buildHyper(t, 3, 4, []hedge{
		{0, 5, []int{2, 0}}, // reordered configs, reordered procs
		{0, 3, []int{1}},
		{1, 2, []int{1, 0}},
		{1, 2, []int{3, 1, 0}},
		{2, 7, []int{3}},
	})
	c1, _, err := CanonicalHypergraph(h1)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := CanonicalHypergraph(h2)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := WriteHypergraph(&b1, c1); err != nil {
		t.Fatal(err)
	}
	if err := WriteHypergraph(&b2, c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("canonical isomorphs differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	f1, err := FingerprintHypergraph(h1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FingerprintHypergraph(h2)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatalf("isomorph fingerprints differ: %s vs %s", f1, f2)
	}

	// A genuinely different instance must not share the fingerprint.
	h3 := buildHyper(t, 3, 4, []hedge{
		{0, 3, []int{1}},
		{0, 5, []int{0, 2}},
		{1, 2, []int{0, 1, 3}},
		{1, 2, []int{0, 1}},
		{2, 8, []int{3}}, // weight 7 -> 8
	})
	f3, err := FingerprintHypergraph(h3)
	if err != nil {
		t.Fatal(err)
	}
	if f3 == f1 {
		t.Fatal("different instance shares the fingerprint")
	}

	// The hash-of-canonical fast path agrees with the general entry point.
	fc, err := FingerprintCanonicalHypergraph(c1)
	if err != nil {
		t.Fatal(err)
	}
	if fc != f1 {
		t.Fatalf("FingerprintCanonicalHypergraph = %s, want %s", fc, f1)
	}
}

// TestCanonicalHypergraphPerm: the returned permutation maps original
// hyperedge ids to canonical ids, preserving owner, weight and processor
// set — the contract the serving layer's assignment translation relies on.
func TestCanonicalHypergraphPerm(t *testing.T) {
	h := buildHyper(t, 2, 3, []hedge{
		{0, 9, []int{0, 2}},
		{0, 1, []int{1}},
		{1, 4, []int{2}},
		{1, 4, []int{0}},
	})
	canon, perm, err := CanonicalHypergraph(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != h.NumEdges() {
		t.Fatalf("len(perm)=%d, want %d", len(perm), h.NumEdges())
	}
	seen := make([]bool, len(perm))
	for e := int32(0); int(e) < h.NumEdges(); e++ {
		c := perm[e]
		if c < 0 || int(c) >= canon.NumEdges() || seen[c] {
			t.Fatalf("perm[%d]=%d is not a permutation", e, c)
		}
		seen[c] = true
		if canon.Owner[c] != h.Owner[e] || canon.Weight[c] != h.Weight[e] {
			t.Fatalf("edge %d -> %d changed owner/weight", e, c)
		}
		op, cp := h.EdgeProcs(e), canon.EdgeProcs(c)
		if len(op) != len(cp) {
			t.Fatalf("edge %d -> %d changed processor count", e, c)
		}
		for i := range op {
			if op[i] != cp[i] {
				t.Fatalf("edge %d -> %d changed processors", e, c)
			}
		}
	}
	// Canonicalization is idempotent.
	canon2, perm2, err := CanonicalHypergraph(canon)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := WriteHypergraph(&b1, canon); err != nil {
		t.Fatal(err)
	}
	if err := WriteHypergraph(&b2, canon2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("canonicalization is not idempotent")
	}
	for i, p := range perm2 {
		if p != int32(i) {
			t.Fatalf("perm of canonical form is not the identity at %d", i)
		}
	}
}

// TestCanonicalRoundTripFingerprint: Read(Write(h)) preserves the
// fingerprint, for hypergraphs and bipartite graphs alike.
func TestCanonicalRoundTripFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := hypergraph.NewBuilder(20, 8)
	for tk := 0; tk < 20; tk++ {
		for c := 0; c < 1+rng.Intn(3); c++ {
			k := 1 + rng.Intn(3)
			procs := rng.Perm(8)[:k]
			b.AddEdge(tk, procs, 1+int64(rng.Intn(50)))
		}
	}
	h := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteHypergraph(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadHypergraph(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := FingerprintHypergraph(h)
	f2, _ := FingerprintHypergraph(h2)
	if f1 != f2 {
		t.Fatalf("hypergraph round trip changed fingerprint: %s vs %s", f1, f2)
	}

	gb := bipartite.NewBuilder(10, 5)
	for u := 0; u < 10; u++ {
		for _, v := range rng.Perm(5)[:1+rng.Intn(3)] {
			gb.AddWeightedEdge(u, v, 1+int64(rng.Intn(9)))
		}
	}
	g := gb.MustBuild()
	buf.Reset()
	if err := WriteBipartite(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBipartite(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	bf1, _ := FingerprintBipartite(g)
	bf2, _ := FingerprintBipartite(g2)
	if bf1 != bf2 {
		t.Fatalf("bipartite round trip changed fingerprint: %s vs %s", bf1, bf2)
	}
}

// TestCanonicalBipartiteUnitNormalization: a weighted encoding whose
// weights are all 1 fingerprints identically to the unit encoding of the
// same graph, and edge insertion order does not matter.
func TestCanonicalBipartiteUnitNormalization(t *testing.T) {
	b1 := bipartite.NewBuilder(2, 3)
	b1.AddEdge(0, 2)
	b1.AddEdge(0, 1)
	b1.AddEdge(1, 0)
	g1 := b1.MustBuild()

	b2 := bipartite.NewBuilder(2, 3)
	b2.AddWeightedEdge(1, 0, 1)
	b2.AddWeightedEdge(0, 1, 1)
	b2.AddWeightedEdge(0, 2, 1)
	g2 := b2.MustBuild()
	// Force the weighted representation even though all weights are 1.
	if g2.W == nil {
		g2 = g2.Clone()
		g2.W = make([]int64, g2.NumEdges())
		for i := range g2.W {
			g2.W[i] = 1
		}
	}

	f1, err := FingerprintBipartite(g1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FingerprintBipartite(g2)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatalf("all-ones weighted graph fingerprints differently from unit graph: %s vs %s", f1, f2)
	}

	canon, err := CanonicalBipartite(g2)
	if err != nil {
		t.Fatal(err)
	}
	if !canon.Unit() {
		t.Fatal("canonical form of an all-ones graph should be unit")
	}
}

// TestCanonicalPreservesSemantics: makespans of an assignment are
// unchanged when translated through the canonical permutation.
func TestCanonicalPreservesSemantics(t *testing.T) {
	h := buildHyper(t, 3, 4, []hedge{
		{0, 3, []int{1}},
		{0, 5, []int{0, 2}},
		{1, 2, []int{0, 1, 3}},
		{2, 7, []int{3}},
	})
	canon, perm, err := CanonicalHypergraph(h)
	if err != nil {
		t.Fatal(err)
	}
	// Pick each task's first original configuration; translate to canon.
	orig := make(core.HyperAssignment, h.NTasks)
	trans := make(core.HyperAssignment, h.NTasks)
	for tk := 0; tk < h.NTasks; tk++ {
		e := h.TaskEdges(tk)[0]
		orig[tk] = e
		trans[tk] = perm[e]
	}
	if err := core.ValidateHyperAssignment(canon, trans); err != nil {
		t.Fatalf("translated assignment invalid: %v", err)
	}
	if m1, m2 := core.HyperMakespan(h, orig), core.HyperMakespan(canon, trans); m1 != m2 {
		t.Fatalf("makespan changed under canonicalization: %d vs %d", m1, m2)
	}
}
