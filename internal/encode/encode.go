// Package encode reads and writes semimatch instances in a simple,
// line-oriented text format, so instances can be generated once, exchanged
// and replayed (cmd/semigen writes them, cmd/semisolve reads them).
//
// Bipartite (SINGLEPROC) format:
//
//	bipartite <nTasks> <nProcs> <unit|weighted>
//	<task> <proc> [<weight>]        # one line per edge
//
// Hypergraph (MULTIPROC) format:
//
//	hypergraph <nTasks> <nProcs> <nEdges>
//	<task> <weight> <k> <p1> ... <pk>   # one line per hyperedge
//
// Lines starting with '#' and blank lines are ignored. All indices are
// 0-based.
package encode

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"semimatch/internal/bipartite"
	"semimatch/internal/hypergraph"
)

// MaxDim caps declared task/processor/hyperedge counts when parsing, so a
// tiny hostile header cannot demand a multi-gigabyte allocation (the
// builders allocate O(n) from the header before seeing any edges). 2^26
// vertices is far beyond the paper's grids yet bounds the up-front
// allocation to a few hundred megabytes.
const MaxDim = 1 << 26

// WriteBipartite writes g in the bipartite text format.
func WriteBipartite(w io.Writer, g *bipartite.Graph) error {
	bw := bufio.NewWriter(w)
	kind := "unit"
	if !g.Unit() {
		kind = "weighted"
	}
	fmt.Fprintf(bw, "bipartite %d %d %s\n", g.NLeft, g.NRight, kind)
	for t := 0; t < g.NLeft; t++ {
		row := g.Neighbors(t)
		ws := g.Weights(t)
		for i, p := range row {
			if ws == nil {
				fmt.Fprintf(bw, "%d %d\n", t, p)
			} else {
				fmt.Fprintf(bw, "%d %d %d\n", t, p, ws[i])
			}
		}
	}
	return bw.Flush()
}

// ReadBipartite parses the bipartite text format.
func ReadBipartite(r io.Reader) (*bipartite.Graph, error) {
	sc := newScanner(r)
	head, err := sc.header()
	if err != nil {
		return nil, err
	}
	if len(head) != 4 || head[0] != "bipartite" {
		return nil, fmt.Errorf("encode: bad bipartite header %q", strings.Join(head, " "))
	}
	n, err1 := strconv.Atoi(head[1])
	p, err2 := strconv.Atoi(head[2])
	if err1 != nil || err2 != nil || n < 0 || p < 0 || n > MaxDim || p > MaxDim {
		return nil, fmt.Errorf("encode: bad sizes in header (limit %d)", MaxDim)
	}
	weighted := head[3] == "weighted"
	if !weighted && head[3] != "unit" {
		return nil, fmt.Errorf("encode: bad kind %q", head[3])
	}
	b := bipartite.NewBuilder(n, p)
	for {
		fields, err := sc.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		wantFields := 2
		if weighted {
			wantFields = 3
		}
		if len(fields) != wantFields {
			return nil, fmt.Errorf("encode: line %d: want %d fields, got %d", sc.lineNo, wantFields, len(fields))
		}
		t, err1 := strconv.Atoi(fields[0])
		pr, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("encode: line %d: bad edge", sc.lineNo)
		}
		w := int64(1)
		if weighted {
			w, err = strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("encode: line %d: bad weight", sc.lineNo)
			}
		}
		b.AddWeightedEdge(t, pr, w)
	}
	return b.Build()
}

// WriteHypergraph writes h in the hypergraph text format.
func WriteHypergraph(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "hypergraph %d %d %d\n", h.NTasks, h.NProcs, h.NumEdges())
	for t := 0; t < h.NTasks; t++ {
		for _, e := range h.TaskEdges(t) {
			procs := h.EdgeProcs(e)
			fmt.Fprintf(bw, "%d %d %d", t, h.Weight[e], len(procs))
			for _, u := range procs {
				fmt.Fprintf(bw, " %d", u)
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// ReadHypergraph parses the hypergraph text format.
func ReadHypergraph(r io.Reader) (*hypergraph.Hypergraph, error) {
	sc := newScanner(r)
	head, err := sc.header()
	if err != nil {
		return nil, err
	}
	if len(head) != 4 || head[0] != "hypergraph" {
		return nil, fmt.Errorf("encode: bad hypergraph header %q", strings.Join(head, " "))
	}
	n, err1 := strconv.Atoi(head[1])
	p, err2 := strconv.Atoi(head[2])
	m, err3 := strconv.Atoi(head[3])
	if err1 != nil || err2 != nil || err3 != nil || n < 0 || p < 0 || m < 0 ||
		n > MaxDim || p > MaxDim || m > MaxDim {
		return nil, fmt.Errorf("encode: bad sizes in header (limit %d)", MaxDim)
	}
	b := hypergraph.NewBuilder(n, p)
	edges := 0
	for {
		fields, err := sc.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("encode: line %d: truncated hyperedge", sc.lineNo)
		}
		t, err1 := strconv.Atoi(fields[0])
		w, err2 := strconv.ParseInt(fields[1], 10, 64)
		k, err3 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || err3 != nil || k < 0 {
			return nil, fmt.Errorf("encode: line %d: bad hyperedge header", sc.lineNo)
		}
		if len(fields) != 3+k {
			return nil, fmt.Errorf("encode: line %d: want %d processors, got %d", sc.lineNo, k, len(fields)-3)
		}
		procs := make([]int, k)
		for i := 0; i < k; i++ {
			procs[i], err = strconv.Atoi(fields[3+i])
			if err != nil {
				return nil, fmt.Errorf("encode: line %d: bad processor", sc.lineNo)
			}
		}
		b.AddEdge(t, procs, w)
		edges++
	}
	if edges != m {
		return nil, fmt.Errorf("encode: header says %d hyperedges, file has %d", m, edges)
	}
	return b.Build()
}

// DetectKind peeks the first token of the stream: "bipartite" or
// "hypergraph". The reader must be re-readable (use a buffered copy) —
// callers typically read the whole file into memory first.
func DetectKind(data []byte) (string, error) {
	fields := strings.Fields(firstContentLine(string(data)))
	if len(fields) == 0 {
		return "", fmt.Errorf("encode: empty input")
	}
	switch fields[0] {
	case "bipartite", "hypergraph":
		return fields[0], nil
	default:
		return "", fmt.Errorf("encode: unknown format %q", fields[0])
	}
}

func firstContentLine(s string) string {
	for _, line := range strings.Split(s, "\n") {
		t := strings.TrimSpace(line)
		if t != "" && !strings.HasPrefix(t, "#") {
			return t
		}
	}
	return ""
}

// scanner yields whitespace-separated fields per content line, skipping
// blanks and comments.
type scanner struct {
	sc     *bufio.Scanner
	lineNo int
}

func newScanner(r io.Reader) *scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	return &scanner{sc: sc}
}

func (s *scanner) next() ([]string, error) {
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strings.Fields(line), nil
	}
	if err := s.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

func (s *scanner) header() ([]string, error) {
	h, err := s.next()
	if err == io.EOF {
		return nil, fmt.Errorf("encode: empty input")
	}
	return h, err
}
