package encode

// Canonical forms and content fingerprints. Two instances that are
// isomorphic under reordering — hyperedges listed in a different order
// within a task, processors listed in a different order within a
// configuration, weighted encodings whose weights are all 1 — describe the
// same scheduling problem and must hash identically, so a result cache can
// answer one from the other's solve. The canonical form fixes every such
// degree of freedom:
//
//   - tasks keep their indices (task identity is meaningful: the caller
//     asked about *these* tasks);
//   - processors within a configuration are sorted ascending (the builders
//     already guarantee this);
//   - the hyperedges of each task are sorted by (weight, processor set
//     lexicographically);
//   - bipartite rows are sorted by processor, and a weight vector that is
//     all ones is dropped so the instance is recognized as unit.
//
// The fingerprint is the SHA-256 of the canonical text encoding (the
// WriteBipartite / WriteHypergraph output, which is deterministic), hex
// encoded. The textual header ("bipartite" / "hypergraph") keeps the two
// instance kinds from ever colliding.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"slices"
	"sort"

	"semimatch/internal/bipartite"
	"semimatch/internal/hypergraph"
)

// CanonicalHypergraph returns the canonical form of h plus the hyperedge
// renumbering perm, where perm[e] is the canonical id of h's hyperedge e.
// Canonicalization only reorders hyperedges within each task, so task and
// processor indices are unchanged: a HyperAssignment on the canonical form
// maps back to h as original[t] = e with perm[e] = canonical[t].
// Canonicalizing a canonical instance is the identity.
func CanonicalHypergraph(h *hypergraph.Hypergraph) (*hypergraph.Hypergraph, []int32, error) {
	m := h.NumEdges()
	order := make([]int32, 0, m) // canonical id -> original edge id
	for t := 0; t < h.NTasks; t++ {
		edges := h.TaskEdges(t)
		start := len(order)
		order = append(order, edges...)
		row := order[start:]
		sort.SliceStable(row, func(i, j int) bool {
			a, b := row[i], row[j]
			if h.Weight[a] != h.Weight[b] {
				return h.Weight[a] < h.Weight[b]
			}
			return slices.Compare(h.EdgeProcs(a), h.EdgeProcs(b)) < 0
		})
	}
	b := hypergraph.NewBuilder(h.NTasks, h.NProcs)
	for _, e := range order {
		b.AddEdge32(h.Owner[e], h.EdgeProcs(e), h.Weight[e])
	}
	canon, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("encode: canonicalize hypergraph: %w", err)
	}
	perm := make([]int32, m)
	for canonID, origID := range order {
		perm[origID] = int32(canonID)
	}
	return canon, perm, nil
}

// CanonicalBipartite returns the canonical form of g: rows sorted by
// processor and the weight vector dropped when every weight is 1. Task and
// processor indices are unchanged, so an Assignment (task → processor) is
// valid on both forms interchangeably.
func CanonicalBipartite(g *bipartite.Graph) (*bipartite.Graph, error) {
	b := bipartite.NewBuilder(g.NLeft, g.NRight)
	for t := 0; t < g.NLeft; t++ {
		ws := g.Weights(t)
		for i, p := range g.Neighbors(t) {
			w := int64(1)
			if ws != nil {
				w = ws[i]
			}
			b.AddWeightedEdge(t, int(p), w)
		}
	}
	canon, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("encode: canonicalize bipartite: %w", err)
	}
	return canon, nil
}

// FingerprintHypergraph returns the collision-resistant content hash of
// h's canonical form: isomorphic instances (reordered configurations,
// reordered processors within a configuration) share a fingerprint, and
// any structural or weight difference changes it.
func FingerprintHypergraph(h *hypergraph.Hypergraph) (string, error) {
	canon, _, err := CanonicalHypergraph(h)
	if err != nil {
		return "", err
	}
	return FingerprintCanonicalHypergraph(canon)
}

// FingerprintCanonicalHypergraph hashes an instance that is already in
// canonical form (as produced by CanonicalHypergraph), skipping the
// re-canonicalization FingerprintHypergraph would do — for callers on a
// hot path that canonicalize once and need both the form and the hash.
// Passing a non-canonical instance yields a hash that will not match its
// isomorphs.
func FingerprintCanonicalHypergraph(canon *hypergraph.Hypergraph) (string, error) {
	hash := sha256.New()
	if err := WriteHypergraph(hash, canon); err != nil {
		return "", err
	}
	return hex.EncodeToString(hash.Sum(nil)), nil
}

// FingerprintBipartite is FingerprintHypergraph for bipartite instances.
func FingerprintBipartite(g *bipartite.Graph) (string, error) {
	canon, err := CanonicalBipartite(g)
	if err != nil {
		return "", err
	}
	return FingerprintCanonicalBipartite(canon)
}

// FingerprintCanonicalBipartite is FingerprintCanonicalHypergraph for
// bipartite instances already in canonical form.
func FingerprintCanonicalBipartite(canon *bipartite.Graph) (string, error) {
	hash := sha256.New()
	if err := WriteBipartite(hash, canon); err != nil {
		return "", err
	}
	return hex.EncodeToString(hash.Sum(nil)), nil
}
