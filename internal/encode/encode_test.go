package encode

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"semimatch/internal/bipartite"
	"semimatch/internal/gen"
	"semimatch/internal/hypergraph"
)

func TestBipartiteRoundTripUnit(t *testing.T) {
	g, err := bipartite.NewFromAdjacency(3, [][]int{{0, 2}, {1}, {0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBipartite(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBipartite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Ptr, g2.Ptr) || !reflect.DeepEqual(g.Adj, g2.Adj) || !g2.Unit() {
		t.Fatal("round trip mismatch")
	}
}

func TestBipartiteRoundTripWeighted(t *testing.T) {
	b := bipartite.NewBuilder(2, 2)
	b.AddWeightedEdge(0, 0, 5)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(1, 1, 9)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteBipartite(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBipartite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.W, g2.W) {
		t.Fatalf("weights: %v vs %v", g.W, g2.W)
	}
}

func TestHypergraphRoundTrip(t *testing.T) {
	b := hypergraph.NewBuilder(3, 4)
	b.AddEdge(0, []int{0}, 2)
	b.AddEdge(0, []int{1, 2}, 1)
	b.AddEdge(1, []int{2, 3}, 5)
	b.AddEdge(2, []int{0, 1, 2, 3}, 1)
	h := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteHypergraph(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadHypergraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.Pins, h2.Pins) || !reflect.DeepEqual(h.Weight, h2.Weight) ||
		!reflect.DeepEqual(h.Owner, h2.Owner) {
		t.Fatal("round trip mismatch")
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	src := `# a comment

bipartite 2 2 unit
# edges below
0 0

1 1
`
	g, err := ReadBipartite(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, src string
		hyper     bool
	}{
		{"empty", "", false},
		{"bad header kind", "bipartite 2 2 float\n", false},
		{"wrong word", "graph 2 2 unit\n", false},
		{"bad sizes", "bipartite x 2 unit\n", false},
		{"field count", "bipartite 2 2 unit\n0 0 5\n", false},
		{"bad weight", "bipartite 2 2 weighted\n0 0 w\n", false},
		{"edge out of range", "bipartite 2 2 unit\n0 7\n", false},
		{"hyper empty", "", true},
		{"hyper bad header", "hypergraph 1 1\n", true},
		{"hyper truncated edge", "hypergraph 1 1 1\n0 1\n", true},
		{"hyper proc count", "hypergraph 1 1 1\n0 1 2 0\n", true},
		{"hyper count mismatch", "hypergraph 1 1 2\n0 1 1 0\n", true},
		{"hyper bad proc", "hypergraph 1 1 1\n0 1 1 z\n", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if tc.hyper {
				_, err = ReadHypergraph(strings.NewReader(tc.src))
			} else {
				_, err = ReadBipartite(strings.NewReader(tc.src))
			}
			if err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestHeaderAllocationBomb(t *testing.T) {
	// Regression (found by FuzzReadBipartite): a huge declared dimension
	// must be rejected before allocating, not OOM the process.
	if _, err := ReadBipartite(strings.NewReader("bipartite 99999999999 2 unit\n")); err == nil {
		t.Fatal("giant n accepted")
	}
	if _, err := ReadHypergraph(strings.NewReader("hypergraph 2 99999999999 0\n")); err == nil {
		t.Fatal("giant p accepted")
	}
	if _, err := ReadHypergraph(strings.NewReader("hypergraph 2 2 99999999999\n")); err == nil {
		t.Fatal("giant m accepted")
	}
}

func TestDetectKind(t *testing.T) {
	if k, err := DetectKind([]byte("# c\nbipartite 1 1 unit\n")); err != nil || k != "bipartite" {
		t.Fatalf("k=%q err=%v", k, err)
	}
	if k, err := DetectKind([]byte("hypergraph 1 1 0\n")); err != nil || k != "hypergraph" {
		t.Fatalf("k=%q err=%v", k, err)
	}
	if _, err := DetectKind([]byte("")); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := DetectKind([]byte("nonsense\n")); err == nil {
		t.Fatal("nonsense accepted")
	}
}

func TestPropertyRoundTripGeneratedHypergraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.HyperParams{
			Gen:     gen.Generator(rng.Intn(2)),
			N:       1 + rng.Intn(60),
			P:       4 + rng.Intn(30),
			Dv:      1 + rng.Intn(4),
			Dh:      1 + rng.Intn(5),
			G:       1 + rng.Intn(4),
			Weights: gen.WeightScheme(rng.Intn(3)),
			MaxW:    20,
		}
		h, err := gen.Hypergraph(p, seed)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if WriteHypergraph(&buf, h) != nil {
			return false
		}
		h2, err := ReadHypergraph(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(h.Pins, h2.Pins) &&
			reflect.DeepEqual(h.PinPtr, h2.PinPtr) &&
			reflect.DeepEqual(h.Weight, h2.Weight) &&
			reflect.DeepEqual(h.Owner, h2.Owner)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRoundTripGeneratedBipartite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.Bipartite(gen.FewgManyg, 1+rng.Intn(80), 4+rng.Intn(30), 1+rng.Intn(4), 1+rng.Intn(6), seed)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if WriteBipartite(&buf, g) != nil {
			return false
		}
		g2, err := ReadBipartite(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(g.Ptr, g2.Ptr) && reflect.DeepEqual(g.Adj, g2.Adj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
