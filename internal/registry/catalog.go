package registry

import (
	"context"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/exact"
	"semimatch/internal/hypergraph"
	"semimatch/internal/online"
)

// The catalog. Registration order is meaningful: it is the listing order,
// the default portfolio order (deterministic tie-break) and the benchmark
// tables' column order, so the paper's fixed orders — basic/sorted/double/
// expected and SGH/VGH/EGH/EVG — come first in their class.
func init() {
	// --- SINGLEPROC (bipartite) ---
	register(&Solver{
		Name: "basic", Class: SingleProc, Kind: Heuristic, Cost: CostNearLinear,
		Aliases: []string{"basic-greedy"},
		Summary: "greedy, tasks in index order, least-loaded eligible processor",
		SolveSingle: func(_ context.Context, g *bipartite.Graph, opts Options) (core.Assignment, error) {
			return core.BasicGreedy(g, opts.Greedy), nil
		},
	})
	register(&Solver{
		Name: "sorted", Class: SingleProc, Kind: Heuristic, Cost: CostNearLinear,
		Aliases: []string{"sorted-greedy"},
		Summary: "greedy, most-constrained tasks first (Sec. IV-B)",
		SolveSingle: func(_ context.Context, g *bipartite.Graph, opts Options) (core.Assignment, error) {
			return core.SortedGreedy(g, opts.Greedy), nil
		},
	})
	register(&Solver{
		Name: "double", Class: SingleProc, Kind: Heuristic, Cost: CostNearLinear,
		Aliases: []string{"double-sorted"},
		Summary: "greedy with processor-side tie-breaking (Sec. IV-B)",
		SolveSingle: func(_ context.Context, g *bipartite.Graph, opts Options) (core.Assignment, error) {
			return core.DoubleSorted(g, opts.Greedy), nil
		},
	})
	register(&Solver{
		Name: "expected", Class: SingleProc, Kind: Heuristic, Cost: CostNearLinear,
		Aliases: []string{"expected-greedy"},
		Summary: "greedy on expected loads (Sec. IV-B)",
		SolveSingle: func(_ context.Context, g *bipartite.Graph, opts Options) (core.Assignment, error) {
			return core.ExpectedGreedy(g, opts.Greedy), nil
		},
	})
	register(&Solver{
		Name: "LPT", Class: SingleProc, Kind: Heuristic, Cost: CostNearLinear, Aux: true,
		Aliases: []string{"lpt-greedy"},
		Summary: "longest-processing-time-first baseline for weighted instances",
		SolveSingle: func(_ context.Context, g *bipartite.Graph, _ Options) (core.Assignment, error) {
			return core.LPTGreedy(g), nil
		},
	})
	register(&Solver{
		Name: "ExactUnit", Class: SingleProc, Kind: Exact, Cost: CostPolynomial,
		Aliases: []string{"exact", "exact-unit"},
		Summary: "optimal SINGLEPROC-UNIT via deadline search over matchings (Sec. IV-A)",
		SolveSingle: func(_ context.Context, g *bipartite.Graph, opts Options) (core.Assignment, error) {
			a, _, err := core.ExactUnit(g, opts.Exact)
			return a, err
		},
	})
	register(&Solver{
		Name: "Harvey", Class: SingleProc, Kind: Exact, Cost: CostPolynomial,
		Aliases: []string{"harvey-optimal"},
		Summary: "optimal SINGLEPROC-UNIT via cost-reducing paths (Harvey et al.)",
		SolveSingle: func(_ context.Context, g *bipartite.Graph, _ Options) (core.Assignment, error) {
			return core.HarveyOptimal(g)
		},
	})
	register(&Solver{
		Name: "BnB-SP", Class: SingleProc, Kind: Exact, Cost: CostExponential,
		Aliases: []string{"bnb"}, ParallelAlt: "BnB-SP-Par",
		Summary: "branch-and-bound for weighted SINGLEPROC (budgeted; returns incumbent on timeout)",
		SolveSingle: func(ctx context.Context, g *bipartite.Graph, opts Options) (core.Assignment, error) {
			a, _, err := exact.SolveSingleProcCtx(ctx, g, opts.BnB)
			return a, err
		},
	})
	register(&Solver{
		Name: "BnB-SP-Par", Class: SingleProc, Kind: Exact, Cost: CostExponential, Parallel: true,
		Aliases: []string{"bnb-par"},
		Summary: "work-stealing parallel branch-and-bound for weighted SINGLEPROC (Workers≈GOMAXPROCS; shared incumbent, symmetry breaking)",
		SolveSingle: func(ctx context.Context, g *bipartite.Graph, opts Options) (core.Assignment, error) {
			a, _, err := exact.SolveSingleProcParCtx(ctx, g, opts.bnb())
			return a, err
		},
	})
	register(&Solver{
		Name: "OnlineGreedy", Class: SingleProc, Kind: Online, Cost: CostNearLinear,
		Aliases: []string{"online", "online-greedy"},
		Summary: "online least-loaded-eligible assignment in arrival order (Lee, Leung & Pinedo [18])",
		SolveSingle: func(_ context.Context, g *bipartite.Graph, _ Options) (core.Assignment, error) {
			a, _, err := online.Replay(g, nil)
			return a, err
		},
	})

	// --- MULTIPROC (hypergraph) ---
	register(&Solver{
		Name: "SGH", Class: MultiProc, Kind: Heuristic, Cost: CostNearLinear,
		Aliases: []string{"sorted-greedy-hyp"},
		Summary: "sorted greedy over configurations (Algorithm 4)",
		SolveHyper: func(_ context.Context, h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, error) {
			return core.SortedGreedyHyp(h, opts.Hyper), nil
		},
	})
	register(&Solver{
		Name: "VGH", Class: MultiProc, Kind: Heuristic, Cost: CostNearLinear,
		Aliases: []string{"vector-greedy-hyp"},
		Summary: "load-vector greedy (Sec. IV-D3)",
		SolveHyper: func(_ context.Context, h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, error) {
			return core.VectorGreedyHyp(h, opts.Hyper), nil
		},
	})
	register(&Solver{
		Name: "EGH", Class: MultiProc, Kind: Heuristic, Cost: CostNearLinear,
		Aliases: []string{"expected-greedy-hyp"},
		Summary: "expected-load greedy (Algorithm 5)",
		SolveHyper: func(_ context.Context, h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, error) {
			return core.ExpectedGreedyHyp(h, opts.Hyper), nil
		},
	})
	register(&Solver{
		Name: "EVG", Class: MultiProc, Kind: Heuristic, Cost: CostNearLinear,
		Aliases: []string{"expected-vector-greedy"},
		Summary: "expected-load vector greedy (Sec. IV-D4), the paper's best on weighted instances",
		SolveHyper: func(_ context.Context, h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, error) {
			return core.ExpectedVectorGreedyHyp(h, opts.Hyper), nil
		},
	})
	register(&Solver{
		Name: "EGH-X", Class: MultiProc, Kind: Heuristic, Cost: CostNearLinear, Aux: true,
		Aliases: []string{"egh-exact"},
		Summary: "EGH with scaled-integer expected loads (float tie-sensitivity ablation)",
		SolveHyper: func(_ context.Context, h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, error) {
			return core.ExpectedGreedyHypExact(h, opts.Hyper)
		},
	})
	register(&Solver{
		Name: "EVG-X", Class: MultiProc, Kind: Heuristic, Cost: CostNearLinear, Aux: true,
		Aliases: []string{"evg-exact"},
		Summary: "EVG with scaled-integer expected loads (float tie-sensitivity ablation)",
		SolveHyper: func(_ context.Context, h *hypergraph.Hypergraph, _ Options) (core.HyperAssignment, error) {
			return core.ExpectedVectorGreedyHypExact(h)
		},
	})
	register(&Solver{
		Name: "BnB-MP", Class: MultiProc, Kind: Exact, Cost: CostExponential,
		Aliases: []string{"bnb", "exact"}, ParallelAlt: "BnB-MP-Par",
		Summary: "branch-and-bound for MULTIPROC (budgeted; returns incumbent on timeout)",
		SolveHyper: func(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, error) {
			a, _, err := exact.SolveMultiProcCtx(ctx, h, opts.BnB)
			return a, err
		},
	})
	register(&Solver{
		Name: "BnB-MP-Par", Class: MultiProc, Kind: Exact, Cost: CostExponential, Parallel: true,
		Aliases: []string{"bnb-par", "exact-par"},
		Summary: "work-stealing parallel branch-and-bound for MULTIPROC (Workers≈GOMAXPROCS; shared incumbent, symmetry breaking)",
		SolveHyper: func(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, error) {
			a, _, err := exact.SolveMultiProcParCtx(ctx, h, opts.bnb())
			return a, err
		},
	})
}
