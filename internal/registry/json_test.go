package registry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func TestRecordsMatchCatalog(t *testing.T) {
	recs := Records()
	solvers := Solvers()
	if len(recs) != len(solvers) {
		t.Fatalf("%d records for %d solvers", len(recs), len(solvers))
	}
	for i, r := range recs {
		s := solvers[i]
		if r.Name != s.Name || r.Class != s.Class.String() || r.Kind != s.Kind.String() ||
			r.Cost != s.Cost.String() || r.Aux != s.Aux || r.Optimal != s.Optimal() {
			t.Errorf("record %d does not match solver %s: %+v", i, s.Name, r)
		}
		if r.Summary == "" {
			t.Errorf("record %s has no summary", r.Name)
		}
	}
}

func TestWriteCatalogNDJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCatalogNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var r SolverRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d is not a SolverRecord: %v", n+1, err)
		}
		if r.Name == "" || r.Class == "" || r.Kind == "" || r.Cost == "" {
			t.Fatalf("line %d misses required fields: %s", n+1, sc.Text())
		}
		n++
	}
	if n != len(Solvers()) {
		t.Fatalf("NDJSON has %d lines for %d solvers", n, len(Solvers()))
	}
}
