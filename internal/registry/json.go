package registry

import (
	"encoding/json"
	"io"
)

// SolverRecord is the machine-readable form of one catalog entry — the
// schema shared by `semisolve -list-algorithms -json`, `semibench
// -list-algorithms -json` and the semiserve `GET /algorithms` endpoint,
// so tooling has exactly one way to discover the catalog.
type SolverRecord struct {
	Name     string   `json:"name"`
	Aliases  []string `json:"aliases,omitempty"`
	Class    string   `json:"class"` // SINGLEPROC | MULTIPROC
	Kind     string   `json:"kind"`  // heuristic | exact | online
	Cost     string   `json:"cost"`  // near-linear | polynomial | exponential
	Aux      bool     `json:"aux,omitempty"`
	Optimal  bool     `json:"optimal"`            // a nil-error result is provably optimal
	Parallel bool     `json:"parallel,omitempty"` // scales with SolverOptions.Workers
	Summary  string   `json:"summary"`
}

// Record converts one solver to its machine-readable form.
func (s *Solver) Record() SolverRecord {
	return SolverRecord{
		Name:     s.Name,
		Aliases:  append([]string(nil), s.Aliases...),
		Class:    s.Class.String(),
		Kind:     s.Kind.String(),
		Cost:     s.Cost.String(),
		Aux:      s.Aux,
		Optimal:  s.Optimal(),
		Parallel: s.Parallel,
		Summary:  s.Summary,
	}
}

// Records returns the full catalog as machine-readable records, in the
// deterministic registration order.
func Records() []SolverRecord {
	out := make([]SolverRecord, 0, len(all))
	for _, s := range all {
		out = append(out, s.Record())
	}
	return out
}

// WriteCatalogNDJSON emits the catalog as newline-delimited JSON, one
// SolverRecord per line.
func WriteCatalogNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range Records() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
