package registry

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
)

// wantCatalog is the complete expected catalog, in registration order. A
// new algorithm must be added here too — the test is the "registered
// exactly once" ledger for every exported algorithm of the repo.
var wantCatalog = []struct {
	name  string
	class Class
	kind  Kind
}{
	{"basic", SingleProc, Heuristic},
	{"sorted", SingleProc, Heuristic},
	{"double", SingleProc, Heuristic},
	{"expected", SingleProc, Heuristic},
	{"LPT", SingleProc, Heuristic},
	{"ExactUnit", SingleProc, Exact},
	{"Harvey", SingleProc, Exact},
	{"BnB-SP", SingleProc, Exact},
	{"BnB-SP-Par", SingleProc, Exact},
	{"OnlineGreedy", SingleProc, Online},
	{"SGH", MultiProc, Heuristic},
	{"VGH", MultiProc, Heuristic},
	{"EGH", MultiProc, Heuristic},
	{"EVG", MultiProc, Heuristic},
	{"EGH-X", MultiProc, Heuristic},
	{"EVG-X", MultiProc, Heuristic},
	{"BnB-MP", MultiProc, Exact},
	{"BnB-MP-Par", MultiProc, Exact},
}

func TestCatalogCompleteAndRegisteredOnce(t *testing.T) {
	solvers := Solvers()
	if len(solvers) != len(wantCatalog) {
		t.Fatalf("catalog has %d solvers, want %d: %v", len(solvers), len(wantCatalog), Names(solvers))
	}
	seen := map[string]int{}
	for i, s := range solvers {
		w := wantCatalog[i]
		if s.Name != w.name || s.Class != w.class || s.Kind != w.kind {
			t.Errorf("catalog[%d] = %s/%v/%v, want %s/%v/%v", i, s.Name, s.Class, s.Kind, w.name, w.class, w.kind)
		}
		seen[s.Name]++
		if (s.SolveSingle != nil) == (s.SolveHyper != nil) {
			t.Errorf("%s: must have exactly one solve function", s.Name)
		}
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("%s registered %d times, want exactly once", name, n)
		}
	}
}

func TestListingOrderDeterministic(t *testing.T) {
	a, b := Names(Solvers()), Names(Solvers())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("listing order not stable: %v vs %v", a, b)
	}
	// The default heuristic lineups are the paper's fixed table orders.
	if got, want := Names(Heuristics(MultiProc)), []string{"SGH", "VGH", "EGH", "EVG"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("MULTIPROC heuristics = %v, want %v", got, want)
	}
	if got, want := Names(Heuristics(SingleProc)), []string{"basic", "sorted", "double", "expected"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("SINGLEPROC heuristics = %v, want %v", got, want)
	}
}

func TestAliasesResolve(t *testing.T) {
	cases := []struct {
		class Class
		alias string
		want  string
	}{
		{MultiProc, "sgh", "SGH"},
		{MultiProc, "expected-vector-greedy", "EVG"},
		{MultiProc, "exact", "BnB-MP"},
		{MultiProc, "bnb", "BnB-MP"},
		{SingleProc, "exact", "ExactUnit"},
		{SingleProc, "bnb", "BnB-SP"},
		{SingleProc, "BASIC", "basic"},
		{SingleProc, "online", "OnlineGreedy"},
	}
	for _, c := range cases {
		s, err := LookupClass(c.class, c.alias)
		if err != nil {
			t.Errorf("LookupClass(%v, %q): %v", c.class, c.alias, err)
			continue
		}
		if s.Name != c.want {
			t.Errorf("LookupClass(%v, %q) = %s, want %s", c.class, c.alias, s.Name, c.want)
		}
	}
	// Global lookup: unambiguous names resolve, class-ambiguous aliases
	// error out naming both candidates.
	if s, err := Lookup("evg"); err != nil || s.Name != "EVG" {
		t.Errorf("Lookup(evg) = %v, %v", s, err)
	}
	if _, err := Lookup("bnb"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("Lookup(bnb) should be an ambiguity error, got %v", err)
	}
}

func TestUnknownNameSuggests(t *testing.T) {
	_, err := LookupClass(MultiProc, "SGX")
	if err == nil {
		t.Fatal("unknown name must error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"SGX"`) {
		t.Errorf("error should quote the offender: %v", msg)
	}
	if !strings.Contains(msg, "did you mean") || !strings.Contains(msg, "SGH") {
		t.Errorf("error should suggest SGH: %v", msg)
	}
	if !strings.Contains(msg, "known:") {
		t.Errorf("error should enumerate the class catalog: %v", msg)
	}
	// No near match: still enumerates, no bogus suggestion clause.
	_, err = LookupClass(SingleProc, "zzzzzzzz")
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Errorf("far-off name should not get suggestions: %v", err)
	}
}

func TestFindOrdersByCost(t *testing.T) {
	exacts := Find(SingleProc, Exact)
	if len(exacts) != 4 {
		t.Fatalf("want 4 SINGLEPROC exact solvers, got %v", Names(exacts))
	}
	for i := 1; i < len(exacts); i++ {
		if exacts[i-1].Cost > exacts[i].Cost {
			t.Fatalf("Find not cost-ordered: %v", Names(exacts))
		}
	}
	mp := Find(MultiProc, Exact)
	if got, want := Names(mp), []string{"BnB-MP", "BnB-MP-Par"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("MULTIPROC exact = %v, want %v", got, want)
	}
}

func TestPreferredUpgradesToParallel(t *testing.T) {
	seq, err := LookupClass(MultiProc, "BnB-MP")
	if err != nil {
		t.Fatal(err)
	}
	if got := Preferred(seq); got.Name != "BnB-MP-Par" || !got.Parallel {
		t.Fatalf("Preferred(BnB-MP) = %v, want BnB-MP-Par", got.Name)
	}
	sgh, err := LookupClass(MultiProc, "SGH")
	if err != nil {
		t.Fatal(err)
	}
	if got := Preferred(sgh); got != sgh {
		t.Fatalf("Preferred(SGH) should be identity, got %v", got.Name)
	}
	if got := Preferred(nil); got != nil {
		t.Fatal("Preferred(nil) should be nil")
	}
}

// TestEverySolverSolves wires each catalog entry to a tiny instance and
// checks it produces a valid schedule.
func TestEverySolverSolves(t *testing.T) {
	gb := bipartite.NewBuilder(3, 2)
	gb.AddEdge(0, 0)
	gb.AddEdge(0, 1)
	gb.AddEdge(1, 0)
	gb.AddEdge(2, 1)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	hb := hypergraph.NewBuilder(2, 2)
	hb.AddEdge(0, []int{0}, 2)
	hb.AddEdge(0, []int{0, 1}, 1)
	hb.AddEdge(1, []int{1}, 3)
	h, err := hb.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, s := range Solvers() {
		switch s.Class {
		case SingleProc:
			a, err := s.SolveSingle(ctx, g, Options{})
			if err != nil {
				t.Errorf("%s: %v", s.Name, err)
				continue
			}
			if err := core.ValidateAssignment(g, a); err != nil {
				t.Errorf("%s: invalid assignment: %v", s.Name, err)
			}
		case MultiProc:
			a, err := s.SolveHyper(ctx, h, Options{})
			if err != nil {
				t.Errorf("%s: %v", s.Name, err)
				continue
			}
			if err := core.ValidateHyperAssignment(h, a); err != nil {
				t.Errorf("%s: invalid assignment: %v", s.Name, err)
			}
		}
	}
}
