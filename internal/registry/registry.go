// Package registry is the authoritative catalog of semi-matching solvers.
// Every algorithm the repo implements — the paper's greedy heuristics, the
// vector heuristics, the exact solvers, the online variant — is registered
// here exactly once as a self-describing Solver (name, aliases, problem
// class, kind, cost class, context-aware solve function). All dispatch
// layers (portfolio, bench, sched, batch, the CLIs) resolve algorithms
// through this package, so adding a solver is a one-line registration in
// catalog.go and it immediately becomes visible to listing flags, name
// parsing, benchmark grids and capability-based policies.
//
// Names resolve case-insensitively against both canonical names and
// aliases, scoped by problem class (the same alias — "bnb", "exact" — may
// mean different solvers for bipartite and hypergraph instances). Unknown
// names yield an error that suggests close matches and enumerates the
// class's catalog instead of panicking.
package registry

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/exact"
	"semimatch/internal/hypergraph"
)

// Class is the problem class a solver accepts.
type Class uint8

const (
	// SingleProc solvers take bipartite instances (sequential tasks).
	SingleProc Class = iota
	// MultiProc solvers take hypergraph instances (parallel tasks).
	MultiProc
)

// String returns the paper's name for the class.
func (c Class) String() string {
	switch c {
	case SingleProc:
		return "SINGLEPROC"
	case MultiProc:
		return "MULTIPROC"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Kind classifies how a solver produces its schedule.
type Kind uint8

const (
	// Heuristic solvers are fast and give no optimality guarantee.
	Heuristic Kind = iota
	// Exact solvers prove optimality when they finish without error.
	Exact
	// Online solvers commit to each task irrevocably in arrival order.
	Online
)

// String returns the kind label used in listings.
func (k Kind) String() string {
	switch k {
	case Heuristic:
		return "heuristic"
	case Exact:
		return "exact"
	case Online:
		return "online"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Cost is a coarse running-time class, the capability a policy layer uses
// to decide whether a solver is affordable for a given instance size.
type Cost uint8

const (
	// CostNearLinear solvers run in O(|E| log |E|)-ish time — always safe.
	CostNearLinear Cost = iota
	// CostPolynomial solvers are polynomial but superlinear (matching-based).
	CostPolynomial
	// CostExponential solvers need a node budget; viable for small
	// instances only.
	CostExponential
)

// String returns the cost-class label used in listings.
func (c Cost) String() string {
	switch c {
	case CostNearLinear:
		return "near-linear"
	case CostPolynomial:
		return "polynomial"
	case CostExponential:
		return "exponential"
	default:
		return fmt.Sprintf("Cost(%d)", uint8(c))
	}
}

// Options carries every per-solver tuning knob; each solver reads only the
// field that concerns it, and the zero value is the paper's behaviour
// everywhere.
type Options struct {
	// Greedy tunes the bipartite greedy heuristics.
	Greedy core.GreedyOptions
	// Hyper tunes the hypergraph heuristics (Naive, AfterLoad ablations).
	Hyper core.HyperOptions
	// Exact configures the polynomial SINGLEPROC-UNIT solver.
	Exact core.ExactOptions
	// BnB bounds the branch-and-bound searches.
	BnB exact.Options
	// Workers bounds the worker pool of parallel solvers (BnB-SP-Par,
	// BnB-MP-Par); 0 means GOMAXPROCS. Non-zero overrides BnB.Workers.
	// Solvers without internal parallelism ignore it.
	Workers int
}

// bnb resolves the branch-and-bound options with the Workers override
// applied.
func (o Options) bnb() exact.Options {
	b := o.BnB
	if o.Workers != 0 {
		b.Workers = o.Workers
	}
	return b
}

// Solver is one self-describing catalog entry. Exactly one of SolveSingle
// and SolveHyper is non-nil, matching Class.
type Solver struct {
	// Name is the canonical name (unique within the class, stable across
	// releases — it is what listings and results print).
	Name string
	// Aliases are alternative names accepted by lookup (case-insensitive,
	// unique within the class alongside every canonical name).
	Aliases []string
	// Class is the problem class the solver accepts.
	Class Class
	// Kind distinguishes heuristic, exact and online solvers.
	Kind Kind
	// Cost is the running-time class, for capability-based policies.
	Cost Cost
	// Aux marks auxiliary solvers (ablation variants, extension baselines)
	// excluded from default portfolios and benchmark tables but still
	// addressable by name.
	Aux bool
	// Parallel marks solvers that scale with Options.Workers (an internal
	// worker pool).
	Parallel bool
	// ParallelAlt names this solver's parallel counterpart in the same
	// class, when one is registered; policy layers use it via Preferred
	// to upgrade dispatch onto all available cores.
	ParallelAlt string
	// Summary is a one-line description for listings.
	Summary string

	// SolveSingle solves a bipartite instance (Class == SingleProc).
	// Exact solvers may return a valid-but-unproven incumbent alongside a
	// budget error.
	SolveSingle func(ctx context.Context, g *bipartite.Graph, opts Options) (core.Assignment, error)
	// SolveHyper solves a hypergraph instance (Class == MultiProc), with
	// the same incumbent convention.
	SolveHyper func(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, error)
}

// Optimal reports whether a nil-error result from this solver is provably
// optimal.
func (s *Solver) Optimal() bool { return s.Kind == Exact }

// SolveInstance is the class-generic dispatch: it routes a *bipartite.Graph
// to SolveSingle and a *hypergraph.Hypergraph to SolveHyper, returning the
// assignment in the instance's own encoding (task → processor for
// SINGLEPROC, task → hyperedge id for MULTIPROC). A class mismatch — a
// hypergraph handed to a SINGLEPROC solver, or vice versa — is a
// descriptive error, not a panic. This is the entry point the unified
// solve layer (internal/solve) runs every named algorithm through.
func (s *Solver) SolveInstance(ctx context.Context, instance any, opts Options) ([]int32, error) {
	switch v := instance.(type) {
	case *bipartite.Graph:
		if s.SolveSingle == nil {
			return nil, fmt.Errorf("registry: %s is a %s solver; it cannot solve a bipartite (SINGLEPROC) instance", s.Name, s.Class)
		}
		a, err := s.SolveSingle(ctx, v, opts)
		return []int32(a), err
	case *hypergraph.Hypergraph:
		if s.SolveHyper == nil {
			return nil, fmt.Errorf("registry: %s is a %s solver; it cannot solve a hypergraph (MULTIPROC) instance", s.Name, s.Class)
		}
		a, err := s.SolveHyper(ctx, v, opts)
		return []int32(a), err
	default:
		return nil, fmt.Errorf("registry: unsupported instance type %T", instance)
	}
}

// catalog state: registration order is listing order, deterministic
// because register is only called from catalog.go's init-time build.
var (
	all    []*Solver
	byName = map[Class]map[string]*Solver{}
)

// register adds a solver to the catalog; it panics on malformed entries or
// duplicate names, which makes "registered exactly once" a build-time
// invariant the tests assert.
func register(s *Solver) {
	if s.Name == "" {
		panic("registry: solver with empty name")
	}
	if (s.SolveSingle == nil) == (s.SolveHyper == nil) {
		panic("registry: solver " + s.Name + " must set exactly one of SolveSingle/SolveHyper")
	}
	if (s.Class == SingleProc) != (s.SolveSingle != nil) {
		panic("registry: solver " + s.Name + " class does not match its solve function")
	}
	m := byName[s.Class]
	if m == nil {
		m = map[string]*Solver{}
		byName[s.Class] = m
	}
	for _, key := range append([]string{s.Name}, s.Aliases...) {
		k := strings.ToLower(key)
		if _, dup := m[k]; dup {
			panic("registry: duplicate solver name " + key + " in class " + s.Class.String())
		}
		m[k] = s
	}
	all = append(all, s)
}

// Solvers returns the full catalog in registration order (a copy).
func Solvers() []*Solver { return append([]*Solver(nil), all...) }

// ByClass returns the catalog entries of one class, in registration order.
func ByClass(c Class) []*Solver {
	var out []*Solver
	for _, s := range all {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}

// Heuristics returns the class's default heuristic lineup — kind Heuristic
// and not auxiliary — in registration order. This is the single source of
// the portfolio's default membership and the benchmark tables' columns.
func Heuristics(c Class) []*Solver {
	var out []*Solver
	for _, s := range ByClass(c) {
		if s.Kind == Heuristic && !s.Aux {
			out = append(out, s)
		}
	}
	return out
}

// Find returns the class's solvers of the given kind in ascending cost
// order (registration order among equals) — the capability query behind
// policies like "cheapest exact solver for this class".
func Find(c Class, k Kind) []*Solver {
	var out []*Solver
	for _, s := range ByClass(c) {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out
}

// Names extracts the canonical names of a solver list.
func Names(solvers []*Solver) []string {
	out := make([]string, len(solvers))
	for i, s := range solvers {
		out[i] = s.Name
	}
	return out
}

// ResolveClass maps algorithm names to solvers of one class, falling back
// to defaults when names is empty, and returns the canonical name list
// alongside. The first unknown name aborts with the suggested-names error.
// Portfolio membership, benchmark columns and batch validation all
// resolve through this one loop.
func ResolveClass(c Class, names, defaults []string) ([]string, []*Solver, error) {
	if len(names) == 0 {
		names = defaults
	}
	solvers := make([]*Solver, len(names))
	for i, name := range names {
		s, err := LookupClass(c, name)
		if err != nil {
			return nil, nil, err
		}
		solvers[i] = s
	}
	return Names(solvers), solvers, nil
}

// Preferred returns the solver a throughput-oriented policy layer should
// dispatch to in s's stead: the registered parallel counterpart named by
// s.ParallelAlt when there is one, otherwise s itself. The counterpart
// solves the same problem exactly (the equivalence suite in
// internal/exact asserts matching optima), so the upgrade is safe for
// any caller that judges schedules rather than solver identity.
func Preferred(s *Solver) *Solver {
	if s == nil || s.ParallelAlt == "" {
		return s
	}
	if alt, err := LookupClass(s.Class, s.ParallelAlt); err == nil {
		return alt
	}
	return s
}

// IncumbentError reports whether err is a budget or cancellation error
// whose solver still returned a valid (just not provably optimal)
// incumbent schedule — the "degrade, don't discard" convention of the
// exact solvers.
func IncumbentError(err error) bool {
	return errors.Is(err, exact.ErrLimit) || errors.Is(err, exact.ErrCancelled)
}

// FormatCatalog renders the full catalog as a human-readable listing, one
// class block at a time — the text behind the CLIs' -list-algorithms.
func FormatCatalog() string {
	var sb strings.Builder
	for _, c := range []Class{SingleProc, MultiProc} {
		fmt.Fprintf(&sb, "%s (%s instances):\n", c, map[Class]string{SingleProc: "bipartite", MultiProc: "hypergraph"}[c])
		for _, s := range ByClass(c) {
			alias := ""
			if len(s.Aliases) > 0 {
				alias = " (aliases: " + strings.Join(s.Aliases, ", ") + ")"
			}
			fmt.Fprintf(&sb, "  %-14s %-9s %-11s %s%s\n", s.Name, s.Kind, s.Cost, s.Summary, alias)
		}
	}
	return sb.String()
}

// LookupClass resolves a name or alias within one problem class,
// case-insensitively. Unknown names yield a suggested-names error.
func LookupClass(c Class, name string) (*Solver, error) {
	if s, ok := byName[c][strings.ToLower(name)]; ok {
		return s, nil
	}
	return nil, unknownNameError(c, name)
}

// Lookup resolves a name or alias across both classes. A name meaning
// different solvers in different classes (e.g. "bnb") is an ambiguity
// error naming both candidates; prefer LookupClass when the instance kind
// is known.
func Lookup(name string) (*Solver, error) {
	sp, spOK := byName[SingleProc][strings.ToLower(name)]
	mp, mpOK := byName[MultiProc][strings.ToLower(name)]
	switch {
	case spOK && mpOK:
		return nil, fmt.Errorf("registry: algorithm %q is ambiguous: %s (%s) or %s (%s); resolve per problem class",
			name, sp.Name, sp.Class, mp.Name, mp.Class)
	case spOK:
		return sp, nil
	case mpOK:
		return mp, nil
	}
	// Suggest across the whole catalog: the caller gave no class.
	var sb strings.Builder
	fmt.Fprintf(&sb, "registry: unknown algorithm %q", name)
	if sug := suggest(name, all); len(sug) > 0 {
		fmt.Fprintf(&sb, " (did you mean %s?)", strings.Join(sug, ", "))
	}
	fmt.Fprintf(&sb, "; known algorithms: %s", strings.Join(Names(all), ", "))
	return nil, fmt.Errorf("%s", sb.String())
}

func unknownNameError(c Class, name string) error {
	solvers := ByClass(c)
	var sb strings.Builder
	fmt.Fprintf(&sb, "registry: unknown %s algorithm %q", c, name)
	if sug := suggest(name, solvers); len(sug) > 0 {
		fmt.Fprintf(&sb, " (did you mean %s?)", strings.Join(sug, ", "))
	}
	fmt.Fprintf(&sb, "; known: %s", strings.Join(Names(solvers), ", "))
	return fmt.Errorf("%s", sb.String())
}

// suggest returns canonical names whose name or alias is within edit
// distance 2 of the input (case-insensitive), nearest first.
func suggest(name string, solvers []*Solver) []string {
	lower := strings.ToLower(name)
	type scored struct {
		name string
		d    int
	}
	var cands []scored
	for _, s := range solvers {
		best := -1
		for _, key := range append([]string{s.Name}, s.Aliases...) {
			if d := editDistance(lower, strings.ToLower(key)); best < 0 || d < best {
				best = d
			}
		}
		if best >= 0 && best <= 2 {
			cands = append(cands, scored{s.Name, best})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			sub := prev[j-1]
			if a[i-1] != b[j-1] {
				sub++
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, sub)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
