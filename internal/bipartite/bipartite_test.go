package bipartite

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, nRight int, rows [][]int) *Graph {
	t.Helper()
	g, err := NewFromAdjacency(nRight, rows)
	if err != nil {
		t.Fatalf("NewFromAdjacency: %v", err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	// Fig. 1 of the paper: T1 -> {P1,P2}, T2 -> {P1}.
	g := mustGraph(t, 2, [][]int{{0, 1}, {0}})
	if g.NLeft != 2 || g.NRight != 2 || g.NumEdges() != 3 {
		t.Fatalf("unexpected sizes: %+v", g)
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(1))
	}
	if !g.Unit() {
		t.Fatal("expected unit graph")
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderUnsortedInput(t *testing.T) {
	b := NewBuilder(2, 3)
	b.AddEdge(1, 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("row 0 = %v", got)
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Fatalf("row 1 = %v", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func(b *Builder)
	}{
		{"left out of range", func(b *Builder) { b.AddEdge(5, 0) }},
		{"negative left", func(b *Builder) { b.AddEdge(-1, 0) }},
		{"right out of range", func(b *Builder) { b.AddEdge(0, 9) }},
		{"duplicate edge", func(b *Builder) { b.AddEdge(0, 0); b.AddEdge(0, 0) }},
		{"zero weight", func(b *Builder) { b.AddWeightedEdge(0, 0, 0) }},
		{"negative weight", func(b *Builder) { b.AddWeightedEdge(0, 0, -3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(2, 2)
			tc.f(b)
			if _, err := b.Build(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestWeightedBuild(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddWeightedEdge(0, 1, 7)
	b.AddWeightedEdge(0, 0, 3)
	b.AddWeightedEdge(1, 0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Unit() {
		t.Fatal("expected weighted graph")
	}
	if got := g.Weights(0); !reflect.DeepEqual(got, []int64{3, 7}) {
		t.Fatalf("Weights(0) = %v (rows must be co-sorted with Adj)", got)
	}
	if g.EdgeWeight(g.Ptr[1]) != 1 {
		t.Fatalf("EdgeWeight(row1[0]) = %d", g.EdgeWeight(g.Ptr[1]))
	}
}

func TestAllUnitWeightsStayUnit(t *testing.T) {
	b := NewBuilder(1, 1)
	b.AddWeightedEdge(0, 0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Unit() {
		t.Fatal("graph with only weight-1 edges should be unit")
	}
}

func TestReverse(t *testing.T) {
	g := mustGraph(t, 3, [][]int{{0, 2}, {0}, {1, 2}})
	r := g.Reverse()
	if r.NLeft != 3 || r.NRight != 3 {
		t.Fatalf("reverse sizes: %d %d", r.NLeft, r.NRight)
	}
	want := [][]int32{{0, 1}, {2}, {0, 2}}
	for v := 0; v < 3; v++ {
		if got := r.Neighbors(v); !reflect.DeepEqual(got, want[v]) {
			t.Fatalf("Reverse row %d = %v, want %v", v, got, want[v])
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReverseWeighted(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddWeightedEdge(0, 0, 5)
	b.AddWeightedEdge(0, 1, 6)
	b.AddWeightedEdge(1, 0, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := g.Reverse()
	if got := r.Weights(0); !reflect.DeepEqual(got, []int64{5, 7}) {
		t.Fatalf("reverse Weights(0) = %v", got)
	}
	if got := r.Weights(1); !reflect.DeepEqual(got, []int64{6}) {
		t.Fatalf("reverse Weights(1) = %v", got)
	}
}

func TestReverseInvolution(t *testing.T) {
	// Reverse(Reverse(g)) must equal g (rows are kept sorted).
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), 20, 10, 0.2)
		rr := g.Reverse().Reverse()
		return reflect.DeepEqual(g.Ptr, rr.Ptr) && reflect.DeepEqual(g.Adj, rr.Adj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicateRight(t *testing.T) {
	g := mustGraph(t, 2, [][]int{{0, 1}, {0}})
	gd := g.ReplicateRight(3)
	if gd.NRight != 6 {
		t.Fatalf("NRight = %d, want 6", gd.NRight)
	}
	if gd.NumEdges() != 9 {
		t.Fatalf("edges = %d, want 9", gd.NumEdges())
	}
	// Task 1 was adjacent to processor 0 only; now to copies 0,1,2.
	if got := gd.Neighbors(1); !reflect.DeepEqual(got, []int32{0, 1, 2}) {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	if err := gd.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicateRightD1Identity(t *testing.T) {
	g := mustGraph(t, 4, [][]int{{0, 3}, {1}, {2, 3}})
	gd := g.ReplicateRight(1)
	if !reflect.DeepEqual(gd.Adj, g.Adj) || !reflect.DeepEqual(gd.Ptr, g.Ptr) {
		t.Fatal("ReplicateRight(1) must be the identity on structure")
	}
}

func TestReplicateRightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for d=0")
		}
	}()
	g := mustGraph(t, 1, [][]int{{0}})
	g.ReplicateRight(0)
}

func TestRightDegrees(t *testing.T) {
	g := mustGraph(t, 3, [][]int{{0, 1}, {1}, {1, 2}})
	if got := g.RightDegrees(); !reflect.DeepEqual(got, []int32{1, 3, 1}) {
		t.Fatalf("RightDegrees = %v", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := mustGraph(t, 3, [][]int{{0, 1}, {2}})
	g.Adj[0] = 7 // out of range
	if err := g.Validate(); err == nil {
		t.Fatal("expected range error")
	}
	g.Adj[0] = 1 // duplicate within row 0
	if err := g.Validate(); err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestCloneIndependence(t *testing.T) {
	b := NewBuilder(1, 2)
	b.AddWeightedEdge(0, 0, 2)
	b.AddWeightedEdge(0, 1, 3)
	g := b.MustBuild()
	c := g.Clone()
	c.Adj[0] = 1
	c.W[0] = 99
	if g.Adj[0] != 0 || g.W[0] != 2 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestComputeStats(t *testing.T) {
	g := mustGraph(t, 4, [][]int{{0, 1, 2}, {}, {3}})
	s := ComputeStats(g)
	if s.MinDeg != 0 || s.MaxDeg != 3 || s.Isolated != 1 || s.NumEdges != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgDeg != 4.0/3.0 {
		t.Fatalf("AvgDeg = %v", s.AvgDeg)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	g := mustGraph(t, 0, nil)
	s := ComputeStats(g)
	if s.NLeft != 0 || s.NumEdges != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// randomGraph builds a random bipartite graph where each (u,v) edge exists
// independently with probability prob. Shared by property tests in this
// package.
func randomGraph(rng *rand.Rand, nLeft, nRight int, prob float64) *Graph {
	b := NewBuilder(nLeft, nRight)
	for u := 0; u < nLeft; u++ {
		for v := 0; v < nRight; v++ {
			if rng.Float64() < prob {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestReverseEdgeCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 1+rng.Intn(30), 1+rng.Intn(30), rng.Float64())
		r := g.Reverse()
		if r.NumEdges() != g.NumEdges() {
			return false
		}
		return r.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicateDegreesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 1+rng.Intn(15), 1+rng.Intn(15), 0.3)
		d := 1 + rng.Intn(4)
		gd := g.ReplicateRight(d)
		for u := 0; u < g.NLeft; u++ {
			if gd.Degree(u) != d*g.Degree(u) {
				return false
			}
		}
		return gd.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const nLeft, nRight, deg = 20000, 1000, 10
	type edge struct{ u, v int32 }
	edges := make([]edge, 0, nLeft*deg)
	for u := 0; u < nLeft; u++ {
		seen := map[int32]bool{}
		for len(seen) < deg {
			v := int32(rng.Intn(nRight))
			if !seen[v] {
				seen[v] = true
				edges = append(edges, edge{int32(u), v})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(nLeft, nRight)
		for _, e := range edges {
			bl.AddEdge(int(e.u), int(e.v))
		}
		if _, err := bl.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReverse(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 5000, 500, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Reverse()
	}
}
