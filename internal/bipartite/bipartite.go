// Package bipartite provides a compact CSR (compressed sparse row)
// representation of bipartite graphs G = (V1 ∪ V2, E) as used by the
// SINGLEPROC scheduling problem: V1 is the set of tasks, V2 the set of
// processors, and an edge (t, p) means task t may execute on processor p.
//
// The representation is adjacency of the left side (tasks). The transpose
// (processor → tasks) can be built on demand with Reverse. Optional integer
// edge weights model execution times for the weighted SINGLEPROC problem.
//
// Vertices are 0-based. Indices are stored as int32: instances in the paper
// reach ~10^6 edges and int32 halves the memory traffic of int64 on the hot
// CSR arrays, which matters for the matching and greedy kernels.
package bipartite

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is an immutable bipartite graph in CSR form over the left side.
// Use a Builder to construct one, or NewFromAdjacency for tests.
//
// The adjacency of left vertex u is Adj[Ptr[u]:Ptr[u+1]]. If W is non-nil it
// runs parallel to Adj and W[k] is the weight of the edge Adj[k]; a nil W
// means the graph is unit-weighted (SINGLEPROC-UNIT).
type Graph struct {
	NLeft  int     // |V1|, number of tasks
	NRight int     // |V2|, number of processors
	Ptr    []int32 // len NLeft+1, CSR row pointers
	Adj    []int32 // right endpoints, len = number of edges
	W      []int64 // optional edge weights, nil for unit weights
}

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.Adj) }

// Unit reports whether the graph carries unit edge weights.
func (g *Graph) Unit() bool { return g.W == nil }

// Degree returns the out-degree (number of eligible processors) of left
// vertex u.
func (g *Graph) Degree(u int) int { return int(g.Ptr[u+1] - g.Ptr[u]) }

// Neighbors returns the adjacency slice of left vertex u. The slice aliases
// the graph's storage and must not be modified.
func (g *Graph) Neighbors(u int) []int32 { return g.Adj[g.Ptr[u]:g.Ptr[u+1]] }

// Weights returns the weight slice of left vertex u, parallel to
// Neighbors(u), or nil for unit-weighted graphs.
func (g *Graph) Weights(u int) []int64 {
	if g.W == nil {
		return nil
	}
	return g.W[g.Ptr[u]:g.Ptr[u+1]]
}

// EdgeWeight returns the weight of the k-th edge (global edge index), which
// is 1 for unit-weighted graphs.
func (g *Graph) EdgeWeight(k int32) int64 {
	if g.W == nil {
		return 1
	}
	return g.W[k]
}

// RightDegrees returns the in-degree of every right vertex.
func (g *Graph) RightDegrees() []int32 {
	deg := make([]int32, g.NRight)
	for _, v := range g.Adj {
		deg[v]++
	}
	return deg
}

// Validate checks structural invariants: monotone Ptr, endpoints in range,
// weight slice length, and (per simple-graph contract) no duplicate edge
// within a row. It is O(|E|) plus a per-row duplicate check.
func (g *Graph) Validate() error {
	if g.NLeft < 0 || g.NRight < 0 {
		return errors.New("bipartite: negative vertex count")
	}
	if len(g.Ptr) != g.NLeft+1 {
		return fmt.Errorf("bipartite: len(Ptr)=%d, want %d", len(g.Ptr), g.NLeft+1)
	}
	if g.Ptr[0] != 0 {
		return errors.New("bipartite: Ptr[0] != 0")
	}
	for u := 0; u < g.NLeft; u++ {
		if g.Ptr[u+1] < g.Ptr[u] {
			return fmt.Errorf("bipartite: Ptr not monotone at row %d", u)
		}
	}
	if int(g.Ptr[g.NLeft]) != len(g.Adj) {
		return fmt.Errorf("bipartite: Ptr[n]=%d, want len(Adj)=%d", g.Ptr[g.NLeft], len(g.Adj))
	}
	if g.W != nil && len(g.W) != len(g.Adj) {
		return fmt.Errorf("bipartite: len(W)=%d, want %d", len(g.W), len(g.Adj))
	}
	seen := make(map[int32]struct{})
	for u := 0; u < g.NLeft; u++ {
		row := g.Neighbors(u)
		clear(seen)
		for _, v := range row {
			if v < 0 || int(v) >= g.NRight {
				return fmt.Errorf("bipartite: edge (%d,%d) out of range", u, v)
			}
			if _, dup := seen[v]; dup {
				return fmt.Errorf("bipartite: duplicate edge (%d,%d)", u, v)
			}
			seen[v] = struct{}{}
		}
	}
	if g.W != nil {
		for k, w := range g.W {
			if w <= 0 {
				return fmt.Errorf("bipartite: non-positive weight %d on edge %d", w, k)
			}
		}
	}
	return nil
}

// Reverse returns the transpose graph: right vertices become left. Edge
// weights, if any, are carried over. Counting sort, O(|E|).
func (g *Graph) Reverse() *Graph {
	ptr := make([]int32, g.NRight+1)
	for _, v := range g.Adj {
		ptr[v+1]++
	}
	for i := 0; i < g.NRight; i++ {
		ptr[i+1] += ptr[i]
	}
	adj := make([]int32, len(g.Adj))
	var w []int64
	if g.W != nil {
		w = make([]int64, len(g.W))
	}
	next := make([]int32, g.NRight)
	copy(next, ptr[:g.NRight])
	for u := 0; u < g.NLeft; u++ {
		for k := g.Ptr[u]; k < g.Ptr[u+1]; k++ {
			v := g.Adj[k]
			pos := next[v]
			next[v]++
			adj[pos] = int32(u)
			if w != nil {
				w[pos] = g.W[k]
			}
		}
	}
	return &Graph{NLeft: g.NRight, NRight: g.NLeft, Ptr: ptr, Adj: adj, W: w}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := &Graph{NLeft: g.NLeft, NRight: g.NRight}
	h.Ptr = append([]int32(nil), g.Ptr...)
	h.Adj = append([]int32(nil), g.Adj...)
	if g.W != nil {
		h.W = append([]int64(nil), g.W...)
	}
	return h
}

// ReplicateRight returns the graph G_D of the exact SINGLEPROC-UNIT
// algorithm (Sec. IV-A of the paper): each right vertex u is replaced by d
// copies u_0..u_{d-1}, each inheriting u's full neighborhood. Copy i of
// right vertex v has index v*d + i. Weights are dropped (the construction is
// only meaningful for the unit problem).
func (g *Graph) ReplicateRight(d int) *Graph {
	if d < 1 {
		panic("bipartite: ReplicateRight requires d >= 1")
	}
	ptr := make([]int32, g.NLeft+1)
	adj := make([]int32, len(g.Adj)*d)
	pos := int32(0)
	for u := 0; u < g.NLeft; u++ {
		ptr[u] = pos
		for _, v := range g.Neighbors(u) {
			base := v * int32(d)
			for i := 0; i < d; i++ {
				adj[pos] = base + int32(i)
				pos++
			}
		}
	}
	ptr[g.NLeft] = pos
	return &Graph{NLeft: g.NLeft, NRight: g.NRight * d, Ptr: ptr, Adj: adj}
}

// SortRows sorts each adjacency row (and its weights) by right endpoint.
// Deterministic algorithms in this module assume sorted rows so that
// tie-breaking by "first edge found" is reproducible.
func (g *Graph) SortRows() {
	for u := 0; u < g.NLeft; u++ {
		lo, hi := g.Ptr[u], g.Ptr[u+1]
		row := g.Adj[lo:hi]
		if g.W == nil {
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
			continue
		}
		wrow := g.W[lo:hi]
		idx := make([]int, len(row))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return row[idx[i]] < row[idx[j]] })
		ra := make([]int32, len(row))
		wa := make([]int64, len(row))
		for i, k := range idx {
			ra[i], wa[i] = row[k], wrow[k]
		}
		copy(row, ra)
		copy(wrow, wa)
	}
}

// Builder accumulates edges and produces a Graph. Edges may be added in any
// order; Build lays them out in CSR order sorted by (left, right).
type Builder struct {
	nLeft, nRight int
	us, vs        []int32
	ws            []int64
	weighted      bool
}

// NewBuilder returns a Builder for a graph with nLeft tasks and nRight
// processors.
func NewBuilder(nLeft, nRight int) *Builder {
	return &Builder{nLeft: nLeft, nRight: nRight}
}

// AddEdge records a unit-weight edge (u, v).
func (b *Builder) AddEdge(u, v int) { b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records an edge (u, v) with weight w. Mixing AddEdge and
// AddWeightedEdge is allowed; the graph is weighted as soon as any weight
// differs from 1.
func (b *Builder) AddWeightedEdge(u, v int, w int64) {
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	b.ws = append(b.ws, w)
	if w != 1 {
		b.weighted = true
	}
}

// NumEdges returns the number of edges recorded so far.
func (b *Builder) NumEdges() int { return len(b.us) }

// Build validates and assembles the graph. It rejects out-of-range
// endpoints, duplicate edges, and non-positive weights.
func (b *Builder) Build() (*Graph, error) {
	for i := range b.us {
		if b.us[i] < 0 || int(b.us[i]) >= b.nLeft {
			return nil, fmt.Errorf("bipartite: left endpoint %d out of range [0,%d)", b.us[i], b.nLeft)
		}
		if b.vs[i] < 0 || int(b.vs[i]) >= b.nRight {
			return nil, fmt.Errorf("bipartite: right endpoint %d out of range [0,%d)", b.vs[i], b.nRight)
		}
		if b.ws[i] <= 0 {
			return nil, fmt.Errorf("bipartite: non-positive weight %d on edge (%d,%d)", b.ws[i], b.us[i], b.vs[i])
		}
	}
	g := &Graph{NLeft: b.nLeft, NRight: b.nRight}
	g.Ptr = make([]int32, b.nLeft+1)
	for _, u := range b.us {
		g.Ptr[u+1]++
	}
	for i := 0; i < b.nLeft; i++ {
		g.Ptr[i+1] += g.Ptr[i]
	}
	g.Adj = make([]int32, len(b.us))
	if b.weighted {
		g.W = make([]int64, len(b.us))
	}
	next := make([]int32, b.nLeft)
	copy(next, g.Ptr[:b.nLeft])
	for i := range b.us {
		pos := next[b.us[i]]
		next[b.us[i]]++
		g.Adj[pos] = b.vs[i]
		if g.W != nil {
			g.W[pos] = b.ws[i]
		}
	}
	g.SortRows()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build that panics on error; for tests and fixed literals.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// NewFromAdjacency builds a unit-weight graph from an adjacency list; row u
// lists the right neighbors of left vertex u. Intended for tests and small
// literals.
func NewFromAdjacency(nRight int, rows [][]int) (*Graph, error) {
	b := NewBuilder(len(rows), nRight)
	for u, row := range rows {
		for _, v := range row {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Stats summarizes a graph for experiment tables.
type Stats struct {
	NLeft, NRight int
	NumEdges      int
	MinDeg        int // min left degree
	MaxDeg        int // max left degree
	AvgDeg        float64
	Isolated      int // left vertices with no eligible processor
}

// ComputeStats returns summary statistics of g.
func ComputeStats(g *Graph) Stats {
	s := Stats{NLeft: g.NLeft, NRight: g.NRight, NumEdges: g.NumEdges()}
	if g.NLeft == 0 {
		return s
	}
	s.MinDeg = g.Degree(0)
	for u := 0; u < g.NLeft; u++ {
		d := g.Degree(u)
		if d < s.MinDeg {
			s.MinDeg = d
		}
		if d > s.MaxDeg {
			s.MaxDeg = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	s.AvgDeg = float64(g.NumEdges()) / float64(g.NLeft)
	return s
}
