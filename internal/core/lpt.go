package core

import (
	"sort"

	"semimatch/internal/bipartite"
)

// Weighted SINGLEPROC is NP-complete (Low, IPL 2006 [24]), and the paper's
// greedy heuristics sort by task *degree* because its instances are unit.
// For weighted instances the classical signal is the task's processing
// time: LPT (longest processing time first) is Graham's 4/3-approximation
// on identical machines and degrades gracefully under eligibility
// constraints. LPTGreedy orders tasks by non-increasing weight (ties:
// smaller degree first, then index) and assigns each to the eligible
// processor minimizing the post-assignment load — an extension baseline
// beyond the paper, ablated in bench_test.go.

// taskWeight returns the representative weight of task t: its minimum
// edge weight (1 for unit graphs). The minimum is the intrinsic size of
// the task — any assignment costs at least this much.
func taskWeight(g *bipartite.Graph, t int) int64 {
	w := g.Weights(t)
	if w == nil {
		return 1
	}
	min := w[0]
	for _, x := range w[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// LPTGreedy assigns tasks in LPT order (largest weight first) to the
// eligible processor with the smallest load after the assignment.
// O(|E| + |V1| log |V1|).
func LPTGreedy(g *bipartite.Graph) Assignment {
	order := make([]int32, g.NLeft)
	weights := make([]int64, g.NLeft)
	for i := range order {
		order[i] = int32(i)
		weights[i] = taskWeight(g, i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		wi, wj := weights[order[i]], weights[order[j]]
		if wi != wj {
			return wi > wj
		}
		return g.Degree(int(order[i])) < g.Degree(int(order[j]))
	})
	a := make(Assignment, g.NLeft)
	for i := range a {
		a[i] = Unassigned
	}
	loads := make([]int64, g.NRight)
	for _, t := range order {
		// After-load rule: with heterogeneous weights the post-assignment
		// load is the meaningful key (LPT semantics).
		a[t] = pickMinLoad(g, int(t), loads, GreedyOptions{AfterLoad: true})
	}
	return a
}

// LowerBoundSingle is the weighted SINGLEPROC analogue of Eq. (1): the
// larger of the average-load bound ⌈Σ min-weights / p⌉ and the largest
// single task weight (some processor must run that task in full).
func LowerBoundSingle(g *bipartite.Graph) int64 {
	if g.NRight == 0 || g.NLeft == 0 {
		return 0
	}
	total := int64(0)
	maxW := int64(0)
	for t := 0; t < g.NLeft; t++ {
		w := taskWeight(g, t)
		total += w
		if w > maxW {
			maxW = w
		}
	}
	p := int64(g.NRight)
	lb := (total + p - 1) / p
	if maxW > lb {
		lb = maxW
	}
	return lb
}
