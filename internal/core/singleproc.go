package core

import (
	"fmt"
	"sort"

	"semimatch/internal/bipartite"
)

// Assignment maps each task (left vertex) to its processor, or Unassigned.
// It is the semi-matching M of the paper restricted to SINGLEPROC: each
// task is incident to exactly one matching edge.
type Assignment []int32

// Unassigned marks a task without a processor (only valid transiently or
// for infeasible tasks with empty eligibility sets).
const Unassigned = int32(-1)

// Loads returns the per-processor load l(u) = Σ_{alloc(i)=u} w_i under a.
func Loads(g *bipartite.Graph, a Assignment) []int64 {
	loads := make([]int64, g.NRight)
	for t := 0; t < g.NLeft; t++ {
		p := a[t]
		if p == Unassigned {
			continue
		}
		loads[p] += edgeWeightOf(g, t, p)
	}
	return loads
}

// Makespan returns max_u l(u) under a.
func Makespan(g *bipartite.Graph, a Assignment) int64 {
	max := int64(0)
	for _, l := range Loads(g, a) {
		if l > max {
			max = l
		}
	}
	return max
}

// ValidateAssignment checks that a assigns every task to one of its
// eligible processors.
func ValidateAssignment(g *bipartite.Graph, a Assignment) error {
	if len(a) != g.NLeft {
		return fmt.Errorf("core: assignment has %d entries for %d tasks", len(a), g.NLeft)
	}
	for t := 0; t < g.NLeft; t++ {
		p := a[t]
		if p == Unassigned {
			return fmt.Errorf("core: task %d unassigned", t)
		}
		if !hasEdge(g, t, p) {
			return fmt.Errorf("core: task %d assigned to ineligible processor %d", t, p)
		}
	}
	return nil
}

func hasEdge(g *bipartite.Graph, t int, p int32) bool {
	row := g.Neighbors(t)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= p })
	return i < len(row) && row[i] == p
}

// edgeWeightOf returns w(t,p); rows are sorted so binary search applies.
func edgeWeightOf(g *bipartite.Graph, t int, p int32) int64 {
	if g.Unit() {
		return 1
	}
	row := g.Neighbors(t)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= p })
	if i < len(row) && row[i] == p {
		return g.Weights(t)[i]
	}
	return 0
}

// GreedyOptions tunes the greedy heuristics. The zero value reproduces the
// paper's algorithms exactly.
type GreedyOptions struct {
	// AfterLoad selects edges by the load the processor would have *after*
	// the assignment (l(u)+w) instead of the paper's current-load rule
	// (l(u)). Identical on unit graphs; an ablation knob for weighted ones.
	AfterLoad bool
}

// tasksByDegree returns task indices sorted by non-decreasing out-degree,
// ties by index (a stable order, as "schedule the tasks that have less
// freedom first" requires a fixed order for reproducibility).
func tasksByDegree(g *bipartite.Graph) []int32 {
	order := make([]int32, g.NLeft)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return g.Degree(int(order[i])) < g.Degree(int(order[j]))
	})
	return order
}

// BasicGreedy is Algorithm 1: visit tasks in index order and assign each to
// the eligible processor with the smallest current load. O(|E|).
func BasicGreedy(g *bipartite.Graph, opts GreedyOptions) Assignment {
	a := make(Assignment, g.NLeft)
	loads := make([]int64, g.NRight)
	for t := 0; t < g.NLeft; t++ {
		a[t] = pickMinLoad(g, t, loads, opts)
	}
	return a
}

// SortedGreedy is Algorithm 1 with tasks visited by non-decreasing
// out-degree ("sorted-greedy", Sec. IV-B2). O(|E| + |V1| log |V1|).
func SortedGreedy(g *bipartite.Graph, opts GreedyOptions) Assignment {
	a := make(Assignment, g.NLeft)
	for i := range a {
		a[i] = Unassigned
	}
	loads := make([]int64, g.NRight)
	for _, t := range tasksByDegree(g) {
		a[t] = pickMinLoad(g, int(t), loads, opts)
	}
	return a
}

// pickMinLoad assigns task t to its minimum-load eligible processor,
// updates loads, and returns the processor (Unassigned for isolated tasks).
// Ties break toward the first edge in row order (lowest processor index).
func pickMinLoad(g *bipartite.Graph, t int, loads []int64, opts GreedyOptions) int32 {
	row := g.Neighbors(t)
	if len(row) == 0 {
		return Unassigned
	}
	w := g.Weights(t)
	weightAt := func(i int) int64 {
		if w == nil {
			return 1
		}
		return w[i]
	}
	best := -1
	var bestKey int64
	for i, p := range row {
		key := loads[p]
		if opts.AfterLoad {
			key += weightAt(i)
		}
		if best == -1 || key < bestKey {
			best, bestKey = i, key
		}
	}
	p := row[best]
	loads[p] += weightAt(best)
	return p
}

// DoubleSorted is Algorithm 2: sorted-greedy where load ties additionally
// prefer the processor with the smaller in-degree d_u. O(|E|) after the
// degree computation.
func DoubleSorted(g *bipartite.Graph, opts GreedyOptions) Assignment {
	a := make(Assignment, g.NLeft)
	for i := range a {
		a[i] = Unassigned
	}
	loads := make([]int64, g.NRight)
	rdeg := g.RightDegrees()
	for _, t := range tasksByDegree(g) {
		row := g.Neighbors(int(t))
		if len(row) == 0 {
			continue
		}
		w := g.Weights(int(t))
		weightAt := func(i int) int64 {
			if w == nil {
				return 1
			}
			return w[i]
		}
		best := -1
		var bestKey int64
		var bestDeg int32
		for i, p := range row {
			key := loads[p]
			if opts.AfterLoad {
				key += weightAt(i)
			}
			if best == -1 || key < bestKey || (key == bestKey && rdeg[p] < bestDeg) {
				best, bestKey, bestDeg = i, key, rdeg[p]
			}
		}
		p := row[best]
		loads[p] += weightAt(best)
		a[t] = p
	}
	return a
}

// ExpectedGreedy is Algorithm 3: sorted-greedy driven by expected loads
// o(u). Initially o(u) = Σ_{v ∋ u} w(v,u)/d_v — the load u would get if
// every remaining task chose uniformly at random among its options.
// Assigning v to u collapses that distribution: u gains w − w/d_v and every
// other neighbor of v loses its w'/d_v share. O(|E|).
func ExpectedGreedy(g *bipartite.Graph, opts GreedyOptions) Assignment {
	a := make(Assignment, g.NLeft)
	for i := range a {
		a[i] = Unassigned
	}
	o := make([]float64, g.NRight)
	for t := 0; t < g.NLeft; t++ {
		d := float64(g.Degree(t))
		if d == 0 {
			continue
		}
		row := g.Neighbors(t)
		w := g.Weights(t)
		for i, p := range row {
			wi := 1.0
			if w != nil {
				wi = float64(w[i])
			}
			o[p] += wi / d
		}
	}
	for _, t := range tasksByDegree(g) {
		row := g.Neighbors(int(t))
		if len(row) == 0 {
			continue
		}
		d := float64(len(row))
		w := g.Weights(int(t))
		weightAt := func(i int) float64 {
			if w == nil {
				return 1
			}
			return float64(w[i])
		}
		best := -1
		bestKey := 0.0
		for i, p := range row {
			key := o[p]
			if opts.AfterLoad {
				key += weightAt(i)
			}
			if best == -1 || key < bestKey {
				best, bestKey = i, key
			}
		}
		p := row[best]
		a[t] = p
		o[p] += weightAt(best) - weightAt(best)/d
		for i, q := range row {
			if i != best {
				o[q] -= weightAt(i) / d
			}
		}
	}
	return a
}

// HarveyOptimal computes an optimal semi-matching for SINGLEPROC-UNIT with
// the cost-reducing-path algorithm of Harvey, Ladner, Lovász & Tamir [14]:
// start from any semi-matching and flip alternating paths from overloaded
// to underloaded processors until none exists. The result minimizes the
// makespan (indeed every convex cost). Unit graphs only. O(|V1|·|E|).
func HarveyOptimal(g *bipartite.Graph) (Assignment, error) {
	if !g.Unit() {
		return nil, fmt.Errorf("core: HarveyOptimal requires a unit-weighted graph")
	}
	for t := 0; t < g.NLeft; t++ {
		if g.Degree(t) == 0 {
			return nil, fmt.Errorf("core: task %d has no eligible processor", t)
		}
	}
	// Start from sorted-greedy (any semi-matching works; a good start
	// shortens the reduction phase).
	a := SortedGreedy(g, GreedyOptions{})
	loads := make([]int64, g.NRight)
	for t := 0; t < g.NLeft; t++ {
		loads[a[t]]++
	}
	// tasksAt[u] = tasks currently assigned to u, maintained incrementally.
	tasksAt := make([][]int32, g.NRight)
	for t := 0; t < g.NLeft; t++ {
		tasksAt[a[t]] = append(tasksAt[a[t]], int32(t))
	}

	// BFS for a cost-reducing path from processor src: alternating
	// (assigned task → other eligible processor) edges reaching some
	// processor q with loads[q] <= loads[src]-2.
	parentTask := make([]int32, g.NRight) // task used to reach processor
	parentProc := make([]int32, g.NRight) // previous processor on the path
	visited := make([]int32, g.NRight)
	for i := range visited {
		visited[i] = -1
	}
	stamp := int32(0)

	findAndFlip := func(src int32) bool {
		stamp++
		queue := []int32{src}
		visited[src] = stamp
		parentProc[src] = -1
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, t := range tasksAt[u] {
				for _, v := range g.Neighbors(int(t)) {
					if visited[v] == stamp {
						continue
					}
					visited[v] = stamp
					parentTask[v] = t
					parentProc[v] = u
					if loads[v] <= loads[src]-2 {
						// Flip the path: move each parentTask one step.
						cur := v
						for parentProc[cur] != -1 {
							t := parentTask[cur]
							from := parentProc[cur]
							// reassign t: from → cur
							a[t] = cur
							removeTask(tasksAt, from, t)
							tasksAt[cur] = append(tasksAt[cur], t)
							cur = from
						}
						loads[v]++
						loads[src]--
						return true
					}
					queue = append(queue, v)
				}
			}
		}
		return false
	}

	// Repeatedly reduce from a maximum-load processor until no processor
	// admits a cost-reducing path.
	active := true
	for active {
		active = false
		// Processors sorted by decreasing load each round.
		order := make([]int32, g.NRight)
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(i, j int) bool { return loads[order[i]] > loads[order[j]] })
		for _, u := range order {
			if loads[u] <= 1 {
				break
			}
			for findAndFlip(u) {
				active = true
			}
		}
	}
	return a, nil
}

func removeTask(tasksAt [][]int32, u, t int32) {
	lst := tasksAt[u]
	for i, x := range lst {
		if x == t {
			lst[i] = lst[len(lst)-1]
			tasksAt[u] = lst[:len(lst)-1]
			return
		}
	}
}
