package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"semimatch/internal/bipartite"
)

// fig1 is the toy instance of Fig. 1: T0 → {P0,P1}, T1 → {P0}.
func fig1(t *testing.T) *bipartite.Graph {
	t.Helper()
	g, err := bipartite.NewFromAdjacency(2, [][]int{{0, 1}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFig1BasicGreedyTrap(t *testing.T) {
	g := fig1(t)
	// Basic greedy visits T0 first, ties break to P0, then T1 is forced
	// onto P0: makespan 2, twice the optimum — the paper's motivating
	// example for sorting.
	a := BasicGreedy(g, GreedyOptions{})
	if err := ValidateAssignment(g, a); err != nil {
		t.Fatal(err)
	}
	if Makespan(g, a) != 2 {
		t.Fatalf("basic-greedy makespan = %d, want 2 (the trap)", Makespan(g, a))
	}
	// Sorted greedy schedules the degree-1 task first and is optimal.
	for name, alg := range map[string]func(*bipartite.Graph, GreedyOptions) Assignment{
		"sorted":   SortedGreedy,
		"double":   DoubleSorted,
		"expected": ExpectedGreedy,
	} {
		a := alg(g, GreedyOptions{})
		if err := ValidateAssignment(g, a); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if Makespan(g, a) != 1 {
			t.Fatalf("%s makespan = %d, want 1", name, Makespan(g, a))
		}
	}
}

func TestLoadsAndMakespan(t *testing.T) {
	g := fig1(t)
	a := Assignment{1, 0}
	loads := Loads(g, a)
	if loads[0] != 1 || loads[1] != 1 {
		t.Fatalf("loads = %v", loads)
	}
	if Makespan(g, a) != 1 {
		t.Fatalf("makespan = %d", Makespan(g, a))
	}
}

func TestWeightedLoads(t *testing.T) {
	b := bipartite.NewBuilder(2, 2)
	b.AddWeightedEdge(0, 0, 5)
	b.AddWeightedEdge(0, 1, 3)
	b.AddWeightedEdge(1, 0, 2)
	g := b.MustBuild()
	a := Assignment{0, 0}
	loads := Loads(g, a)
	if loads[0] != 7 || loads[1] != 0 {
		t.Fatalf("loads = %v", loads)
	}
}

func TestValidateAssignment(t *testing.T) {
	g := fig1(t)
	if err := ValidateAssignment(g, Assignment{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateAssignment(g, Assignment{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := ValidateAssignment(g, Assignment{Unassigned, 0}); err == nil {
		t.Fatal("unassigned accepted")
	}
	if err := ValidateAssignment(g, Assignment{1, 1}); err == nil {
		t.Fatal("ineligible processor accepted")
	}
}

// randomUnitGraph builds a connected-enough random instance where every
// task has at least one eligible processor.
func randomUnitGraph(rng *rand.Rand, n, p int, maxDeg int) *bipartite.Graph {
	b := bipartite.NewBuilder(n, p)
	for t := 0; t < n; t++ {
		d := 1 + rng.Intn(maxDeg)
		if d > p {
			d = p
		}
		for _, v := range rng.Perm(p)[:d] {
			b.AddEdge(t, v)
		}
	}
	return b.MustBuild()
}

// bruteOptimal computes the exact optimal makespan by exhaustive search.
// Only for tiny instances.
func bruteOptimal(g *bipartite.Graph) int64 {
	loads := make([]int64, g.NRight)
	best := int64(1) << 62
	var rec func(t int, cur int64)
	rec = func(t int, cur int64) {
		if cur >= best {
			return
		}
		if t == g.NLeft {
			best = cur
			return
		}
		row := g.Neighbors(t)
		w := g.Weights(t)
		for i, p := range row {
			wi := int64(1)
			if w != nil {
				wi = w[i]
			}
			loads[p] += wi
			nc := cur
			if loads[p] > nc {
				nc = loads[p]
			}
			rec(t+1, nc)
			loads[p] -= wi
		}
	}
	rec(0, 0)
	return best
}

func TestExactUnitAllVariantsAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	variants := []ExactOptions{
		{SearchIncremental, TestCapacitated},
		{SearchIncremental, TestReplicate},
		{SearchIncremental, TestReplicateHK},
		{SearchBisection, TestCapacitated},
		{SearchBisection, TestReplicate},
		{SearchBisection, TestReplicateHK},
	}
	for trial := 0; trial < 60; trial++ {
		g := randomUnitGraph(rng, 1+rng.Intn(8), 1+rng.Intn(4), 3)
		want := bruteOptimal(g)
		for _, opt := range variants {
			a, d, err := ExactUnit(g, opt)
			if err != nil {
				t.Fatalf("trial %d %+v: %v", trial, opt, err)
			}
			if err := ValidateAssignment(g, a); err != nil {
				t.Fatalf("trial %d %+v: %v", trial, opt, err)
			}
			if d != want {
				t.Fatalf("trial %d %+v: D=%d, want %d", trial, opt, d, want)
			}
			if m := Makespan(g, a); m != d {
				t.Fatalf("trial %d %+v: assignment makespan %d != reported %d", trial, opt, m, d)
			}
		}
	}
}

func TestExactUnitLargerCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := randomUnitGraph(rng, 200+rng.Intn(200), 5+rng.Intn(20), 4)
		_, d1, err := ExactUnit(g, ExactOptions{SearchBisection, TestCapacitated})
		if err != nil {
			t.Fatal(err)
		}
		_, d2, err := ExactUnit(g, ExactOptions{SearchIncremental, TestReplicate})
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("trial %d: bisection/cap=%d vs incremental/replicate=%d", trial, d1, d2)
		}
	}
}

func TestExactUnitErrors(t *testing.T) {
	// Isolated task.
	g, err := bipartite.NewFromAdjacency(2, [][]int{{0}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExactUnit(g, ExactOptions{}); err == nil {
		t.Fatal("isolated task accepted")
	}
	// Weighted graph.
	b := bipartite.NewBuilder(1, 1)
	b.AddWeightedEdge(0, 0, 2)
	if _, _, err := ExactUnit(b.MustBuild(), ExactOptions{}); err == nil {
		t.Fatal("weighted graph accepted")
	}
	// Empty graph is trivially feasible with makespan 0.
	empty, err := bipartite.NewFromAdjacency(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, d, err := ExactUnit(empty, ExactOptions{}); err != nil || d != 0 {
		t.Fatalf("empty graph: d=%d err=%v", d, err)
	}
}

func TestGreedyNeverBeatsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomUnitGraph(rng, 1+rng.Intn(30), 1+rng.Intn(8), 4)
		_, opt, err := ExactUnit(g, ExactOptions{})
		if err != nil {
			return false
		}
		for _, alg := range []func(*bipartite.Graph, GreedyOptions) Assignment{
			BasicGreedy, SortedGreedy, DoubleSorted, ExpectedGreedy,
		} {
			a := alg(g, GreedyOptions{})
			if ValidateAssignment(g, a) != nil {
				return false
			}
			if Makespan(g, a) < opt {
				return false // greedy below the optimum: impossible
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestHarveyOptimalMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		g := randomUnitGraph(rng, 1+rng.Intn(40), 1+rng.Intn(10), 4)
		a, err := HarveyOptimal(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateAssignment(g, a); err != nil {
			t.Fatal(err)
		}
		_, opt, err := ExactUnit(g, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if m := Makespan(g, a); m != opt {
			t.Fatalf("trial %d: Harvey makespan %d, exact %d", trial, m, opt)
		}
	}
}

func TestHarveyRejectsWeighted(t *testing.T) {
	b := bipartite.NewBuilder(1, 1)
	b.AddWeightedEdge(0, 0, 3)
	if _, err := HarveyOptimal(b.MustBuild()); err == nil {
		t.Fatal("weighted graph accepted")
	}
}

func TestGreedyAfterLoadOnWeighted(t *testing.T) {
	// Weighted instance where the after-load rule matters: T0 can go to
	// P0 (weight 10) or P1 (weight 1); both loads 0. Paper rule picks P0
	// (current load tie → lowest index); after-load rule picks P1.
	b := bipartite.NewBuilder(1, 2)
	b.AddWeightedEdge(0, 0, 10)
	b.AddWeightedEdge(0, 1, 1)
	g := b.MustBuild()
	a1 := BasicGreedy(g, GreedyOptions{})
	if a1[0] != 0 {
		t.Fatalf("paper rule picked %d, want 0", a1[0])
	}
	a2 := BasicGreedy(g, GreedyOptions{AfterLoad: true})
	if a2[0] != 1 {
		t.Fatalf("after-load rule picked %d, want 1", a2[0])
	}
}

func TestDegreeSortStability(t *testing.T) {
	// Tasks with equal degree must be visited in index order: with all
	// loads equal the assignment must be reproducible.
	g, err := bipartite.NewFromAdjacency(3, [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	a := SortedGreedy(g, GreedyOptions{})
	b := SortedGreedy(g, GreedyOptions{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic assignment")
		}
	}
	if Makespan(g, a) != 1 {
		t.Fatalf("K_{3,3}-ish should balance perfectly: %v", Loads(g, a))
	}
}

func TestExpectedGreedyFinalLoadsInvariant(t *testing.T) {
	// "When the algorithm terminates, the values o(u) are equivalent to
	// actual loads l(u)" (Sec. IV-B4). We verify via the makespan: the
	// assignment's real loads must be consistent, i.e. validation passes
	// and the makespan is sane.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		g := randomUnitGraph(rng, 10+rng.Intn(50), 2+rng.Intn(8), 5)
		a := ExpectedGreedy(g, GreedyOptions{})
		if err := ValidateAssignment(g, a); err != nil {
			t.Fatal(err)
		}
		if m := Makespan(g, a); m < 1 || m > int64(g.NLeft) {
			t.Fatalf("absurd makespan %d", m)
		}
	}
}

func BenchmarkSortedGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomUnitGraph(rng, 20480, 1024, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SortedGreedy(g, GreedyOptions{})
	}
}

func BenchmarkExpectedGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomUnitGraph(rng, 20480, 1024, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpectedGreedy(g, GreedyOptions{})
	}
}

func BenchmarkExactUnitBisectionCap(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomUnitGraph(rng, 20480, 256, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ExactUnit(g, ExactOptions{SearchBisection, TestCapacitated}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactUnitIncrementalReplicate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomUnitGraph(rng, 5120, 256, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ExactUnit(g, ExactOptions{SearchIncremental, TestReplicate}); err != nil {
			b.Fatal(err)
		}
	}
}
