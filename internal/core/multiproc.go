package core

import (
	"fmt"
	"sort"

	"semimatch/internal/hypergraph"
	"semimatch/internal/loadvec"
)

// HyperAssignment maps each task to the hyperedge (configuration) chosen
// for it — the semi-matching M in the hypergraph.
type HyperAssignment []int32

// HyperLoads returns per-processor loads under a: processor u carries
// Σ_{h ∈ M, u ∈ h} w_h.
func HyperLoads(h *hypergraph.Hypergraph, a HyperAssignment) []int64 {
	loads := make([]int64, h.NProcs)
	for t := 0; t < h.NTasks; t++ {
		e := a[t]
		if e == Unassigned {
			continue
		}
		w := h.Weight[e]
		for _, u := range h.EdgeProcs(e) {
			loads[u] += w
		}
	}
	return loads
}

// HyperMakespan returns max_u l(u) under a.
func HyperMakespan(h *hypergraph.Hypergraph, a HyperAssignment) int64 {
	max := int64(0)
	for _, l := range HyperLoads(h, a) {
		if l > max {
			max = l
		}
	}
	return max
}

// ValidateHyperAssignment checks that a picks exactly one hyperedge per
// task and that the hyperedge belongs to the task.
func ValidateHyperAssignment(h *hypergraph.Hypergraph, a HyperAssignment) error {
	if len(a) != h.NTasks {
		return fmt.Errorf("core: assignment has %d entries for %d tasks", len(a), h.NTasks)
	}
	for t := 0; t < h.NTasks; t++ {
		e := a[t]
		if e == Unassigned {
			return fmt.Errorf("core: task %d unassigned", t)
		}
		if e < 0 || int(e) >= h.NumEdges() {
			return fmt.Errorf("core: task %d assigned out-of-range hyperedge %d", t, e)
		}
		if h.Owner[e] != int32(t) {
			return fmt.Errorf("core: hyperedge %d belongs to task %d, not %d", e, h.Owner[e], t)
		}
	}
	return nil
}

// LowerBound computes LB of Eq. (1): each task in its globally cheapest
// configuration (minimizing w_h·|h∩V2|), total work spread perfectly over
// the p processors. Because integral weights make the optimal makespan
// integral, the bound is rounded up.
func LowerBound(h *hypergraph.Hypergraph) int64 {
	if h.NProcs == 0 {
		return 0
	}
	total := int64(0)
	for t := 0; t < h.NTasks; t++ {
		best := int64(-1)
		for _, e := range h.TaskEdges(t) {
			c := h.Weight[e] * int64(h.EdgeSize(e))
			if best < 0 || c < best {
				best = c
			}
		}
		if best > 0 {
			total += best
		}
	}
	p := int64(h.NProcs)
	return (total + p - 1) / p
}

// HyperOptions tunes the MULTIPROC heuristics. The zero value reproduces
// the paper's algorithms with the fast load-vector machinery.
type HyperOptions struct {
	// AfterLoad switches the SGH/EGH selection rule from the paper's
	// min over h of max_{u∈h} l(u) to min over h of max_{u∈h} (l(u)+w_h).
	// Identical when all candidate weights are equal; an ablation knob.
	AfterLoad bool
	// Naive forces the vector heuristics to materialize and sort the full
	// load vector per candidate (the paper's implemented variant) instead
	// of the incrementally sorted list (the improvement the paper
	// describes at the end of Sec. IV-D3). Results are identical.
	Naive bool
}

// hyperTaskOrder returns task indices by non-decreasing configuration
// count, ties by index.
func hyperTaskOrder(h *hypergraph.Hypergraph) []int32 {
	order := make([]int32, h.NTasks)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return h.TaskDegree(int(order[i])) < h.TaskDegree(int(order[j]))
	})
	return order
}

// SortedGreedyHyp is Algorithm 4 (SGH): tasks by non-decreasing degree;
// each picks the hyperedge minimizing the maximum current load over its
// processors. O(Σ_h |h|) after sorting.
func SortedGreedyHyp(h *hypergraph.Hypergraph, opts HyperOptions) HyperAssignment {
	a := make(HyperAssignment, h.NTasks)
	loads := make([]int64, h.NProcs)
	for _, t := range hyperTaskOrder(h) {
		bestE := Unassigned
		var bestKey int64
		for _, e := range h.TaskEdges(int(t)) {
			key := int64(0)
			for _, u := range h.EdgeProcs(e) {
				if loads[u] > key {
					key = loads[u]
				}
			}
			if opts.AfterLoad {
				key += h.Weight[e]
			}
			if bestE == Unassigned || key < bestKey {
				bestE, bestKey = e, key
			}
		}
		a[t] = bestE
		w := h.Weight[bestE]
		for _, u := range h.EdgeProcs(bestE) {
			loads[u] += w
		}
	}
	return a
}

// ExpectedGreedyHyp is Algorithm 5 (EGH): like SGH but driven by expected
// loads o(u); every hyperedge h of a task v initially contributes w_h/d_v
// to each of its processors. Choosing h collapses the distribution.
// O(Σ_h |h|) because updates touch each hyperedge a constant number of
// times.
func ExpectedGreedyHyp(h *hypergraph.Hypergraph, opts HyperOptions) HyperAssignment {
	a := make(HyperAssignment, h.NTasks)
	o := initExpected(h)
	for _, t := range hyperTaskOrder(h) {
		bestE := Unassigned
		bestKey := 0.0
		for _, e := range h.TaskEdges(int(t)) {
			key := 0.0
			for _, u := range h.EdgeProcs(e) {
				if o[u] > key {
					key = o[u]
				}
			}
			if opts.AfterLoad {
				key += float64(h.Weight[e])
			}
			if bestE == Unassigned || key < bestKey {
				bestE, bestKey = e, key
			}
		}
		a[t] = bestE
		commitExpected(h, int(t), bestE, o)
	}
	return a
}

// initExpected computes o(u) = Σ_{h ∋ u} w_h/d_{owner(h)}.
func initExpected(h *hypergraph.Hypergraph) []float64 {
	o := make([]float64, h.NProcs)
	for t := 0; t < h.NTasks; t++ {
		d := float64(h.TaskDegree(t))
		for _, e := range h.TaskEdges(t) {
			share := float64(h.Weight[e]) / d
			for _, u := range h.EdgeProcs(e) {
				o[u] += share
			}
		}
	}
	return o
}

// commitExpected realizes hyperedge chosen for task t in the expected-load
// vector: its processors gain w−w/d, all other configurations' processors
// lose their w'/d share (Algorithm 5, lines 10–14).
//
// The arithmetic is performed in a canonical order — first remove every
// configuration's share in task-edge order, then add the full weight of the
// chosen hyperedge — so that the naive and the incremental implementations
// produce bit-identical floating-point values and therefore identical
// assignments even on ties.
func commitExpected(h *hypergraph.Hypergraph, t int, chosen int32, o []float64) {
	d := float64(h.TaskDegree(t))
	for _, e := range h.TaskEdges(t) {
		share := float64(h.Weight[e]) / d
		for _, u := range h.EdgeProcs(e) {
			o[u] -= share
		}
	}
	w := float64(h.Weight[chosen])
	for _, u := range h.EdgeProcs(chosen) {
		o[u] += w
	}
}

// VectorGreedyHyp (VGH, Sec. IV-D3) selects, for each task in degree order,
// the hyperedge whose assignment yields the lexicographically smallest
// descending load vector: smallest maximum load, ties by second-largest,
// and so on.
//
// With opts.Naive the full vector is copied and sorted per candidate
// (O(Σ_v d_v · p log p), the variant timed in the paper); otherwise the
// sorted load list is maintained incrementally and candidates are compared
// by lazy merge (O(Σ_v d_v · p) worst case, typically far less).
func VectorGreedyHyp(h *hypergraph.Hypergraph, opts HyperOptions) HyperAssignment {
	if opts.Naive {
		return vectorGreedyNaive(h)
	}
	a := make(HyperAssignment, h.NTasks)
	tr := loadvec.New[int64](h.NProcs)
	for _, t := range hyperTaskOrder(h) {
		edges := h.TaskEdges(int(t))
		bestE := Unassigned
		var bestCand loadvec.Candidate[int64]
		for _, e := range edges {
			cand := tr.AddCandidate(h.EdgeProcs(e), h.Weight[e])
			if bestE == Unassigned || tr.Compare(cand, bestCand) < 0 {
				bestE, bestCand = e, cand
			}
		}
		a[t] = bestE
		tr.Commit(bestCand)
	}
	return a
}

func vectorGreedyNaive(h *hypergraph.Hypergraph) HyperAssignment {
	a := make(HyperAssignment, h.NTasks)
	loads := make([]int64, h.NProcs)
	tmp := make([]int64, h.NProcs)
	for _, t := range hyperTaskOrder(h) {
		bestE := Unassigned
		var bestVec []int64
		for _, e := range h.TaskEdges(int(t)) {
			copy(tmp, loads)
			w := h.Weight[e]
			for _, u := range h.EdgeProcs(e) {
				tmp[u] += w
			}
			vec := loadvec.SortedDesc(tmp)
			if bestE == Unassigned || loadvec.CompareVec(vec, bestVec) < 0 {
				bestE, bestVec = e, vec
			}
		}
		a[t] = bestE
		w := h.Weight[bestE]
		for _, u := range h.EdgeProcs(bestE) {
			loads[u] += w
		}
	}
	return a
}

// ExpectedVectorGreedyHyp (EVG, Sec. IV-D4) combines the expected and
// vector strategies: for each candidate hyperedge the task's whole
// probability mass is tentatively collapsed onto it, and the resulting
// expected-load vectors are compared lexicographically.
func ExpectedVectorGreedyHyp(h *hypergraph.Hypergraph, opts HyperOptions) HyperAssignment {
	if opts.Naive {
		return expectedVectorNaive(h)
	}
	a := make(HyperAssignment, h.NTasks)
	o := initExpected(h)
	tr := loadvec.New[float64](h.NProcs)
	procsAll := make([]int32, h.NProcs)
	for i := range procsAll {
		procsAll[i] = int32(i)
	}
	tr.SetAll(procsAll, o)

	// Scratch buffers reused across tasks.
	var union []int32
	mark := make(map[int32]int) // proc → index in union
	for _, t := range hyperTaskOrder(h) {
		edges := h.TaskEdges(int(t))
		d := float64(len(edges))
		// Union of processors over all configurations of t.
		union = union[:0]
		clear(mark)
		for _, e := range edges {
			for _, u := range h.EdgeProcs(e) {
				if _, ok := mark[u]; !ok {
					mark[u] = len(union)
					union = append(union, u)
				}
			}
		}
		// base = o restricted to the union, with all of t's shares removed
		// (same operation order as commitExpected, for FP determinism).
		base := make([]float64, len(union))
		for i, u := range union {
			base[i] = tr.Load(u)
		}
		for _, e := range edges {
			share := float64(h.Weight[e]) / d
			for _, u := range h.EdgeProcs(e) {
				base[mark[u]] -= share
			}
		}
		bestE := Unassigned
		var bestCand loadvec.Candidate[float64]
		vals := make([]float64, len(union))
		for _, e := range edges {
			copy(vals, base)
			w := float64(h.Weight[e])
			for _, u := range h.EdgeProcs(e) {
				vals[mark[u]] += w
			}
			cand := tr.NewCandidate(union, vals)
			if bestE == Unassigned || tr.Compare(cand, bestCand) < 0 {
				bestE, bestCand = e, cand
			}
		}
		a[t] = bestE
		tr.Commit(bestCand)
	}
	return a
}

func expectedVectorNaive(h *hypergraph.Hypergraph) HyperAssignment {
	a := make(HyperAssignment, h.NTasks)
	o := initExpected(h)
	tmp := make([]float64, h.NProcs)
	for _, t := range hyperTaskOrder(h) {
		edges := h.TaskEdges(int(t))
		d := float64(len(edges))
		bestE := Unassigned
		var bestVec []float64
		for _, e := range edges {
			// Tentatively realize e: Algorithm 5's update applied to a
			// copy, in the canonical operation order of commitExpected.
			copy(tmp, o)
			for _, e2 := range edges {
				share := float64(h.Weight[e2]) / d
				for _, u := range h.EdgeProcs(e2) {
					tmp[u] -= share
				}
			}
			w := float64(h.Weight[e])
			for _, u := range h.EdgeProcs(e) {
				tmp[u] += w
			}
			vec := loadvec.SortedDesc(tmp)
			if bestE == Unassigned || loadvec.CompareVec(vec, bestVec) < 0 {
				bestE, bestVec = e, vec
			}
		}
		a[t] = bestE
		commitExpected(h, int(t), bestE, o)
	}
	return a
}
