// Package core implements the paper's primary contribution: semi-matching
// algorithms for scheduling parallel tasks under resource constraints
// (Benoit, Langguth & Uçar, IPDPSW 2013).
//
// SINGLEPROC (bipartite graphs, Sec. IV-A/B):
//
//   - BasicGreedy, SortedGreedy, DoubleSorted, ExpectedGreedy — the four
//     greedy heuristics (Algorithms 1–3). They accept weighted graphs too;
//     on unit graphs they are exactly the paper's algorithms.
//   - ExactUnit — the exact polynomial-time algorithm for SINGLEPROC-UNIT:
//     binary-search or incremental search on the deadline D, testing
//     feasibility with a maximum-matching computation on the graph where
//     every processor has capacity D (either by materializing the paper's
//     D-fold replicated graph G_D, or directly with a capacitated matcher).
//   - HarveyOptimal — the cost-reducing-path optimal semi-matching
//     algorithm of Harvey, Ladner, Lovász & Tamir [14], as an independent
//     exact baseline.
//
// MULTIPROC (hypergraphs, Sec. IV-C/D):
//
//   - SortedGreedyHyp (SGH), ExpectedGreedyHyp (EGH), VectorGreedyHyp
//     (VGH), ExpectedVectorGreedyHyp (EVG) — Algorithms 4–5 plus the two
//     vector heuristics; each in a naive (paper-literal) and a fast
//     (incrementally sorted load list) variant.
//   - LowerBound — the load-balance lower bound LB of Eq. (1).
//
// All algorithms are deterministic: tasks are visited in a stable order and
// ties break toward the lowest index, so results are reproducible.
package core
