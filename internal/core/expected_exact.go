package core

import (
	"fmt"

	"semimatch/internal/hypergraph"
	"semimatch/internal/loadvec"
)

// The expected-load heuristics carry values o(u) that are sums of
// rationals w_h/d_v. The float64 implementations can, in principle, decide
// ties differently than exact arithmetic would (two mathematically equal
// o(u) values may compare unequal after rounding). The *Exact variants
// below run the same algorithms over scaled integers: every share is
// multiplied by D = lcm of all task degrees, making w_h·D/d_v exact. They
// exist as an ablation — to quantify whether floating-point tie noise ever
// changes schedules — and as a reference for the float versions.

// lcmDegrees returns the least common multiple of all task degrees, or an
// error if it (or the worst-case scaled load) would overflow int64.
func lcmDegrees(h *hypergraph.Hypergraph) (int64, error) {
	d := int64(1)
	for t := 0; t < h.NTasks; t++ {
		d = lcm(d, int64(h.TaskDegree(t)))
		if d > 1<<40 {
			return 0, fmt.Errorf("core: degree lcm %d too large for exact arithmetic", d)
		}
	}
	// Worst-case scaled load: Σ over all hyperedges of w_h·D must fit
	// comfortably (a single processor could in principle see every edge).
	total := int64(0)
	for _, w := range h.Weight {
		total += w
		if total > (1<<62)/d {
			return 0, fmt.Errorf("core: scaled loads would overflow int64 (lcm %d)", d)
		}
	}
	return d, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 { return a / gcd(a, b) * b }

// initExpectedScaled computes o(u)·D exactly in integers.
func initExpectedScaled(h *hypergraph.Hypergraph, d int64) []int64 {
	o := make([]int64, h.NProcs)
	for t := 0; t < h.NTasks; t++ {
		share := d / int64(h.TaskDegree(t)) // exact by construction of D
		for _, e := range h.TaskEdges(t) {
			add := h.Weight[e] * share
			for _, u := range h.EdgeProcs(e) {
				o[u] += add
			}
		}
	}
	return o
}

// commitExpectedScaled is commitExpected over scaled integers.
func commitExpectedScaled(h *hypergraph.Hypergraph, t int, chosen int32, o []int64, d int64) {
	share := d / int64(h.TaskDegree(t))
	for _, e := range h.TaskEdges(t) {
		dec := h.Weight[e] * share
		for _, u := range h.EdgeProcs(e) {
			o[u] -= dec
		}
	}
	w := h.Weight[chosen] * d
	for _, u := range h.EdgeProcs(chosen) {
		o[u] += w
	}
}

// ExpectedGreedyHypExact is ExpectedGreedyHyp with exact scaled-integer
// expected loads.
func ExpectedGreedyHypExact(h *hypergraph.Hypergraph, opts HyperOptions) (HyperAssignment, error) {
	d, err := lcmDegrees(h)
	if err != nil {
		return nil, err
	}
	a := make(HyperAssignment, h.NTasks)
	o := initExpectedScaled(h, d)
	for _, t := range hyperTaskOrder(h) {
		bestE := Unassigned
		var bestKey int64
		for _, e := range h.TaskEdges(int(t)) {
			key := int64(0)
			for _, u := range h.EdgeProcs(e) {
				if o[u] > key {
					key = o[u]
				}
			}
			if opts.AfterLoad {
				key += h.Weight[e] * d
			}
			if bestE == Unassigned || key < bestKey {
				bestE, bestKey = e, key
			}
		}
		a[t] = bestE
		commitExpectedScaled(h, int(t), bestE, o, d)
	}
	return a, nil
}

// ExpectedVectorGreedyHypExact is ExpectedVectorGreedyHyp with exact
// scaled-integer expected loads (always using the incremental tracker).
func ExpectedVectorGreedyHypExact(h *hypergraph.Hypergraph) (HyperAssignment, error) {
	d, err := lcmDegrees(h)
	if err != nil {
		return nil, err
	}
	a := make(HyperAssignment, h.NTasks)
	o := initExpectedScaled(h, d)
	tr := loadvec.New[int64](h.NProcs)
	procsAll := make([]int32, h.NProcs)
	for i := range procsAll {
		procsAll[i] = int32(i)
	}
	tr.SetAll(procsAll, o)

	var union []int32
	mark := make(map[int32]int)
	for _, t := range hyperTaskOrder(h) {
		edges := h.TaskEdges(int(t))
		share := d / int64(len(edges))
		union = union[:0]
		clear(mark)
		for _, e := range edges {
			for _, u := range h.EdgeProcs(e) {
				if _, ok := mark[u]; !ok {
					mark[u] = len(union)
					union = append(union, u)
				}
			}
		}
		base := make([]int64, len(union))
		for i, u := range union {
			base[i] = tr.Load(u)
		}
		for _, e := range edges {
			dec := h.Weight[e] * share
			for _, u := range h.EdgeProcs(e) {
				base[mark[u]] -= dec
			}
		}
		bestE := Unassigned
		var bestCand loadvec.Candidate[int64]
		vals := make([]int64, len(union))
		for _, e := range edges {
			copy(vals, base)
			w := h.Weight[e] * d
			for _, u := range h.EdgeProcs(e) {
				vals[mark[u]] += w
			}
			cand := tr.NewCandidate(union, vals)
			if bestE == Unassigned || tr.Compare(cand, bestCand) < 0 {
				bestE, bestCand = e, cand
			}
		}
		a[t] = bestE
		tr.Commit(bestCand)
	}
	return a, nil
}
