package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"semimatch/internal/hypergraph"
)

func TestExactArithmeticValidAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHyper(rng, 1+rng.Intn(25), 1+rng.Intn(8), 4, 4, 9)
		a1, err := ExpectedGreedyHypExact(h, HyperOptions{})
		if err != nil || ValidateHyperAssignment(h, a1) != nil {
			return false
		}
		a2, err := ExpectedVectorGreedyHypExact(h)
		if err != nil || ValidateHyperAssignment(h, a2) != nil {
			return false
		}
		lb := LowerBound(h)
		return HyperMakespan(h, a1) >= lb && HyperMakespan(h, a2) >= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestExactArithmeticDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randomHyper(rng, 30, 6, 4, 4, 9)
	a1, err := ExpectedVectorGreedyHypExact(h)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ExpectedVectorGreedyHypExact(h)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("not deterministic")
	}
}

func TestExactMatchesFloatOnSmallDegrees(t *testing.T) {
	// With degrees that are powers of two, all shares w/d are exact in
	// float64 too, so the float and integer algorithms must agree
	// decision for decision.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		b := hypergraph.NewBuilder(10, 5)
		for task := 0; task < 10; task++ {
			d := []int{1, 2, 4}[rng.Intn(3)]
			for j := 0; j < d; j++ {
				size := 1 + rng.Intn(3)
				b.AddEdge(task, rng.Perm(5)[:size], 1+rng.Int63n(9))
			}
		}
		h := b.MustBuild()
		af := ExpectedGreedyHyp(h, HyperOptions{})
		ax, err := ExpectedGreedyHypExact(h, HyperOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(af, ax) {
			t.Fatalf("trial %d: float %v != exact %v (power-of-two degrees must agree)", trial, af, ax)
		}
		vf := ExpectedVectorGreedyHyp(h, HyperOptions{})
		vx, err := ExpectedVectorGreedyHypExact(h)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(vf, vx) {
			t.Fatalf("trial %d: EVG float %v != exact %v", trial, vf, vx)
		}
	}
}

func TestExactQualityCloseToFloat(t *testing.T) {
	// On general instances the two arithmetics may break ties
	// differently, but the resulting makespans should be essentially the
	// same (the ablation's conclusion).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		h := randomHyper(rng, 60, 10, 4, 4, 9)
		mf := HyperMakespan(h, ExpectedGreedyHyp(h, HyperOptions{}))
		ax, err := ExpectedGreedyHypExact(h, HyperOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mx := HyperMakespan(h, ax)
		diff := mf - mx
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.2*float64(mf) {
			t.Fatalf("trial %d: float %d vs exact %d diverge by >20%%", trial, mf, mx)
		}
	}
}

func TestLcmDegreesOverflowGuard(t *testing.T) {
	// Degrees 2..47 prime-ish push the lcm over the guard.
	b := hypergraph.NewBuilder(12, 4)
	degs := []int{7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
	for task, d := range degs {
		for j := 0; j < d; j++ {
			b.AddEdge(task, []int{j % 4}, 1)
		}
	}
	h := b.MustBuild()
	if _, err := ExpectedGreedyHypExact(h, HyperOptions{}); err == nil {
		t.Fatal("expected overflow guard to trip")
	}
}

func TestGcdLcm(t *testing.T) {
	if gcd(12, 18) != 6 || gcd(7, 13) != 1 || gcd(5, 0) != 5 {
		t.Fatal("gcd wrong")
	}
	if lcm(4, 6) != 12 || lcm(1, 9) != 9 {
		t.Fatal("lcm wrong")
	}
}
