package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"semimatch/internal/hypergraph"
)

// fig2 is the hypergraph of Fig. 2 (0-based).
func fig2(t testing.TB) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(4, 3)
	b.AddEdge(0, []int{0}, 1)
	b.AddEdge(0, []int{1, 2}, 1)
	b.AddEdge(1, []int{0, 1}, 1)
	b.AddEdge(1, []int{1, 2}, 1)
	b.AddEdge(2, []int{2}, 1)
	b.AddEdge(3, []int{2}, 1)
	return b.MustBuild()
}

var hyperAlgorithms = []struct {
	name string
	f    func(*hypergraph.Hypergraph, HyperOptions) HyperAssignment
}{
	{"SGH", SortedGreedyHyp},
	{"VGH", VectorGreedyHyp},
	{"EGH", ExpectedGreedyHyp},
	{"EVG", ExpectedVectorGreedyHyp},
}

func TestFig2AllHeuristicsValid(t *testing.T) {
	h := fig2(t)
	// T2 and T3 are both forced onto P2, so OPT = 2 (T0 and T1 can avoid
	// P2 entirely: T0→{P0} or T0→{P1,P2}? best is T0→P0... then T1→{P0,P1}
	// puts 1 on P0,P1). Any valid schedule has makespan ≥ 2.
	for _, alg := range hyperAlgorithms {
		a := alg.f(h, HyperOptions{})
		if err := ValidateHyperAssignment(h, a); err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if m := HyperMakespan(h, a); m < 2 {
			t.Fatalf("%s: impossible makespan %d", alg.name, m)
		}
	}
}

func TestHyperLoadsAndMakespan(t *testing.T) {
	h := fig2(t)
	// T0→edge0 ({P0}), T1→edge3 ({P1,P2}), T2→edge4, T3→edge5.
	a := HyperAssignment{0, 3, 4, 5}
	loads := HyperLoads(h, a)
	if !reflect.DeepEqual(loads, []int64{1, 1, 3}) {
		t.Fatalf("loads = %v", loads)
	}
	if HyperMakespan(h, a) != 3 {
		t.Fatalf("makespan = %d", HyperMakespan(h, a))
	}
}

func TestValidateHyperAssignment(t *testing.T) {
	h := fig2(t)
	if err := ValidateHyperAssignment(h, HyperAssignment{0, 2, 4, 5}); err != nil {
		t.Fatal(err)
	}
	bad := []HyperAssignment{
		{0, 2, 4},             // wrong length
		{Unassigned, 2, 4, 5}, // unassigned
		{99, 2, 4, 5},         // out of range
		{2, 2, 4, 5},          // edge 2 belongs to task 1, not 0
	}
	for i, a := range bad {
		if err := ValidateHyperAssignment(h, a); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestLowerBound(t *testing.T) {
	h := fig2(t)
	// time_i: T0 min(1·1, 1·2)=1; T1 min(2,2)=2; T2 1; T3 1 → total 5,
	// p=3 → LB = ceil(5/3) = 2.
	if lb := LowerBound(h); lb != 2 {
		t.Fatalf("LB = %d, want 2", lb)
	}
}

func TestLowerBoundWeighted(t *testing.T) {
	b := hypergraph.NewBuilder(2, 2)
	b.AddEdge(0, []int{0}, 6)    // cost 6
	b.AddEdge(0, []int{0, 1}, 2) // cost 4 ← cheaper
	b.AddEdge(1, []int{1}, 3)    // cost 3
	h := b.MustBuild()
	// total = 4+3 = 7, p=2 → ceil(7/2)=4.
	if lb := LowerBound(h); lb != 4 {
		t.Fatalf("LB = %d, want 4", lb)
	}
}

// randomHyper builds a random valid MULTIPROC instance.
func randomHyper(rng *rand.Rand, nTasks, nProcs, maxDeg, maxSize int, maxW int64) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(nTasks, nProcs)
	for t := 0; t < nTasks; t++ {
		d := 1 + rng.Intn(maxDeg)
		for j := 0; j < d; j++ {
			size := 1 + rng.Intn(maxSize)
			if size > nProcs {
				size = nProcs
			}
			w := int64(1)
			if maxW > 1 {
				w = 1 + rng.Int63n(maxW)
			}
			b.AddEdge(t, rng.Perm(nProcs)[:size], w)
		}
	}
	return b.MustBuild()
}

// bruteHyperOptimal exhaustively minimizes the makespan. Tiny instances only.
func bruteHyperOptimal(h *hypergraph.Hypergraph) int64 {
	loads := make([]int64, h.NProcs)
	best := int64(1) << 62
	var rec func(t int, cur int64)
	rec = func(t int, cur int64) {
		if cur >= best {
			return
		}
		if t == h.NTasks {
			best = cur
			return
		}
		for _, e := range h.TaskEdges(t) {
			w := h.Weight[e]
			nc := cur
			for _, u := range h.EdgeProcs(e) {
				loads[u] += w
				if loads[u] > nc {
					nc = loads[u]
				}
			}
			rec(t+1, nc)
			for _, u := range h.EdgeProcs(e) {
				loads[u] -= w
			}
		}
	}
	rec(0, 0)
	return best
}

func TestHeuristicsSandwichedByBoundsUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		h := randomHyper(rng, 1+rng.Intn(7), 1+rng.Intn(4), 3, 3, 1)
		opt := bruteHyperOptimal(h)
		lb := LowerBound(h)
		if lb > opt {
			t.Fatalf("trial %d: LB %d exceeds OPT %d", trial, lb, opt)
		}
		for _, alg := range hyperAlgorithms {
			a := alg.f(h, HyperOptions{})
			if err := ValidateHyperAssignment(h, a); err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg.name, err)
			}
			if m := HyperMakespan(h, a); m < opt {
				t.Fatalf("trial %d %s: makespan %d below OPT %d", trial, alg.name, m, opt)
			}
		}
	}
}

func TestHeuristicsSandwichedByBoundsWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		h := randomHyper(rng, 1+rng.Intn(6), 1+rng.Intn(4), 3, 3, 9)
		opt := bruteHyperOptimal(h)
		lb := LowerBound(h)
		if lb > opt {
			t.Fatalf("trial %d: LB %d exceeds OPT %d", trial, lb, opt)
		}
		for _, alg := range hyperAlgorithms {
			a := alg.f(h, HyperOptions{})
			if err := ValidateHyperAssignment(h, a); err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg.name, err)
			}
			if m := HyperMakespan(h, a); m < opt {
				t.Fatalf("trial %d %s: makespan %d below OPT %d", trial, alg.name, m, opt)
			}
		}
	}
}

// The fast (incrementally sorted) and naive (copy+sort) variants must
// produce identical assignments — including on floating-point ties, thanks
// to the canonical update order.
func TestVectorFastEqualsNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHyper(rng, 1+rng.Intn(25), 1+rng.Intn(8), 4, 4, 7)
		fast := VectorGreedyHyp(h, HyperOptions{})
		naive := VectorGreedyHyp(h, HyperOptions{Naive: true})
		return reflect.DeepEqual(fast, naive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedVectorFastEqualsNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHyper(rng, 1+rng.Intn(25), 1+rng.Intn(8), 4, 4, 7)
		fast := ExpectedVectorGreedyHyp(h, HyperOptions{})
		naive := ExpectedVectorGreedyHyp(h, HyperOptions{Naive: true})
		return reflect.DeepEqual(fast, naive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestHeuristicsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	h := randomHyper(rng, 40, 8, 4, 4, 5)
	for _, alg := range hyperAlgorithms {
		a := alg.f(h, HyperOptions{})
		b := alg.f(h, HyperOptions{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s not deterministic", alg.name)
		}
	}
}

func TestSingleConfigTasksForced(t *testing.T) {
	// Tasks with one configuration must take it.
	b := hypergraph.NewBuilder(2, 2)
	b.AddEdge(0, []int{0}, 1)
	b.AddEdge(1, []int{0, 1}, 1)
	h := b.MustBuild()
	for _, alg := range hyperAlgorithms {
		a := alg.f(h, HyperOptions{})
		if a[0] != h.TaskEdges(0)[0] {
			t.Fatalf("%s: forced task not assigned its only configuration", alg.name)
		}
	}
}

func TestAfterLoadAblationDiffers(t *testing.T) {
	// An instance where the paper rule (pre-add loads) and the after-load
	// rule choose differently for SGH: task with two configurations, one
	// on an empty processor but heavy, one on an empty processor but
	// light; pre-add ties (both max current load 0) → first edge; after
	// load picks the light one.
	b := hypergraph.NewBuilder(1, 2)
	b.AddEdge(0, []int{0}, 10)
	b.AddEdge(0, []int{1}, 1)
	h := b.MustBuild()
	pre := SortedGreedyHyp(h, HyperOptions{})
	post := SortedGreedyHyp(h, HyperOptions{AfterLoad: true})
	if pre[0] == post[0] {
		t.Fatal("expected the ablation to change the choice")
	}
	if HyperMakespan(h, post) != 1 {
		t.Fatalf("after-load should pick the light configuration")
	}
}

func TestLowerBoundEmpty(t *testing.T) {
	h := &hypergraph.Hypergraph{NTasks: 0, NProcs: 0, TaskPtr: []int32{0}, PinPtr: []int32{0}}
	if LowerBound(h) != 0 {
		t.Fatal("empty LB must be 0")
	}
}

func benchHyper(b *testing.B, nTasks, nProcs int) *hypergraph.Hypergraph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return randomHyper(rng, nTasks, nProcs, 5, 10, 20)
}

func BenchmarkSGH(b *testing.B) {
	h := benchHyper(b, 5120, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SortedGreedyHyp(h, HyperOptions{})
	}
}

func BenchmarkEGH(b *testing.B) {
	h := benchHyper(b, 5120, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpectedGreedyHyp(h, HyperOptions{})
	}
}

func BenchmarkVGHFast(b *testing.B) {
	h := benchHyper(b, 5120, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VectorGreedyHyp(h, HyperOptions{})
	}
}

func BenchmarkVGHNaive(b *testing.B) {
	h := benchHyper(b, 5120, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VectorGreedyHyp(h, HyperOptions{Naive: true})
	}
}

func BenchmarkEVGFast(b *testing.B) {
	h := benchHyper(b, 5120, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpectedVectorGreedyHyp(h, HyperOptions{})
	}
}

func BenchmarkEVGNaive(b *testing.B) {
	h := benchHyper(b, 5120, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpectedVectorGreedyHyp(h, HyperOptions{Naive: true})
	}
}
