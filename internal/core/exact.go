package core

import (
	"fmt"

	"semimatch/internal/bipartite"
	"semimatch/internal/matching"
)

// SearchStrategy selects how ExactUnit explores deadlines D.
type SearchStrategy int

const (
	// SearchIncremental tries D = 1, 2, 3, … exactly as Sec. IV-A
	// describes. Best when the optimal makespan is small.
	SearchIncremental SearchStrategy = iota
	// SearchBisection binary-searches D between ⌈n/p⌉ and the makespan of
	// sorted-greedy — the improvement the paper notes would yield a better
	// worst-case bound.
	SearchBisection
)

// FeasibilityTester selects how the "can all tasks be scheduled with
// deadline D?" question is answered.
type FeasibilityTester int

const (
	// TestCapacitated runs the capacitated Hopcroft–Karp matcher with
	// right-vertex capacity D on the original graph (no replication).
	TestCapacitated FeasibilityTester = iota
	// TestReplicate materializes the paper's replicated graph G_D (D
	// copies of every processor) and runs the push-relabel matcher on it —
	// the literal algorithm of Sec. IV-A.
	TestReplicate
	// TestReplicateHK is TestReplicate with Hopcroft–Karp instead of
	// push-relabel (cross-checking the matcher choice).
	TestReplicateHK
)

// ExactOptions configures ExactUnit. The zero value is the recommended
// fast configuration (bisection + capacitated matching).
type ExactOptions struct {
	Strategy SearchStrategy
	Tester   FeasibilityTester
}

// ExactUnit solves SINGLEPROC-UNIT exactly (Sec. IV-A): it finds the
// minimum D such that a matching covering all tasks exists when every
// processor may take up to D tasks, and returns the corresponding
// assignment together with D (the optimal makespan).
//
// Returns an error if some task has an empty eligibility set (then no
// finite makespan exists) or if the graph is weighted (the construction is
// only exact for unit weights; weighted SINGLEPROC is NP-complete).
func ExactUnit(g *bipartite.Graph, opts ExactOptions) (Assignment, int64, error) {
	if !g.Unit() {
		return nil, 0, fmt.Errorf("core: ExactUnit requires a unit-weighted graph")
	}
	if g.NLeft == 0 {
		return Assignment{}, 0, nil
	}
	for t := 0; t < g.NLeft; t++ {
		if g.Degree(t) == 0 {
			return nil, 0, fmt.Errorf("core: task %d has no eligible processor", t)
		}
	}
	if g.NRight == 0 {
		return nil, 0, fmt.Errorf("core: no processors")
	}

	try := func(d int) Assignment { return tryDeadline(g, d, opts.Tester) }

	switch opts.Strategy {
	case SearchIncremental:
		for d := 1; d <= g.NLeft; d++ {
			if a := try(d); a != nil {
				return a, int64(d), nil
			}
		}
		// Unreachable: d = NLeft always succeeds when no task is isolated.
		return nil, 0, fmt.Errorf("core: internal error, no deadline up to n feasible")

	case SearchBisection:
		lo := (g.NLeft + g.NRight - 1) / g.NRight // ⌈n/p⌉ ≤ OPT
		if lo < 1 {
			lo = 1
		}
		ub := SortedGreedy(g, GreedyOptions{})
		hi := int(Makespan(g, ub))
		if hi < lo {
			hi = lo
		}
		best := Assignment(nil)
		bestD := hi
		// Invariant: hi is feasible (greedy witnesses it) — but we still
		// verify, because the witness also provides the assignment when the
		// search bottoms out.
		for lo < hi {
			mid := (lo + hi) / 2
			if a := try(mid); a != nil {
				best, bestD = a, mid
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if best == nil || bestD != lo {
			a := try(lo)
			if a == nil {
				return nil, 0, fmt.Errorf("core: internal error, bisection lost feasibility at %d", lo)
			}
			best, bestD = a, lo
		}
		return best, int64(bestD), nil

	default:
		return nil, 0, fmt.Errorf("core: unknown search strategy %d", opts.Strategy)
	}
}

// tryDeadline reports whether all tasks can be matched when each processor
// has capacity d, returning the assignment or nil.
func tryDeadline(g *bipartite.Graph, d int, tester FeasibilityTester) Assignment {
	switch tester {
	case TestCapacitated:
		m := matching.HopcroftKarpCap(wrapGraph(g), d)
		if matching.Cardinality(m) != g.NLeft {
			return nil
		}
		return Assignment(m)

	case TestReplicate, TestReplicateHK:
		gd := g.ReplicateRight(d)
		var m []int32
		if tester == TestReplicate {
			m = matching.PushRelabel(wrapGraph(gd))
		} else {
			m = matching.HopcroftKarp(wrapGraph(gd))
		}
		if matching.Cardinality(m) != g.NLeft {
			return nil
		}
		a := make(Assignment, g.NLeft)
		for t := range a {
			a[t] = m[t] / int32(d) // copy v*d+i belongs to processor v
		}
		return a

	default:
		panic(fmt.Sprintf("core: unknown feasibility tester %d", tester))
	}
}

func wrapGraph(g *bipartite.Graph) matching.Graph {
	return matching.Wrap(g.NLeft, g.NRight, g.Ptr, g.Adj)
}
