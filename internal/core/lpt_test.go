package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"semimatch/internal/bipartite"
)

func randomWeightedGraph(rng *rand.Rand, n, p, maxDeg int, maxW int64) *bipartite.Graph {
	b := bipartite.NewBuilder(n, p)
	for t := 0; t < n; t++ {
		d := 1 + rng.Intn(maxDeg)
		if d > p {
			d = p
		}
		w := 1 + rng.Int63n(maxW) // one intrinsic size per task
		for _, v := range rng.Perm(p)[:d] {
			b.AddWeightedEdge(t, v, w)
		}
	}
	return b.MustBuild()
}

func TestLPTClassicExample(t *testing.T) {
	// The canonical LPT instance: weights 3,3,2,2,2 on 2 machines. LPT
	// alternates 3/3, 2/2, then the last 2 lands on a machine of load 5:
	// makespan 7 against the optimal 6 (3+3 vs 2+2+2) — exactly the 7/6
	// behaviour Graham's analysis predicts. Pinning it documents the
	// heuristic's semantics.
	b := bipartite.NewBuilder(5, 2)
	for task, w := range []int64{3, 3, 2, 2, 2} {
		b.AddWeightedEdge(task, 0, w)
		b.AddWeightedEdge(task, 1, w)
	}
	g := b.MustBuild()
	a := LPTGreedy(g)
	if err := ValidateAssignment(g, a); err != nil {
		t.Fatal(err)
	}
	if m := Makespan(g, a); m != 7 {
		t.Fatalf("LPT makespan = %d, want 7 (optimal is 6)", m)
	}
	// And LPT solves the easy variant 4,3,3,2 on 2 machines optimally.
	b2 := bipartite.NewBuilder(4, 2)
	for task, w := range []int64{4, 3, 3, 2} {
		b2.AddWeightedEdge(task, 0, w)
		b2.AddWeightedEdge(task, 1, w)
	}
	g2 := b2.MustBuild()
	if m := Makespan(g2, LPTGreedy(g2)); m != 6 {
		t.Fatalf("LPT on 4,3,3,2 = %d, want 6", m)
	}
}

func TestLPTRespectsEligibility(t *testing.T) {
	b := bipartite.NewBuilder(2, 2)
	b.AddWeightedEdge(0, 0, 9) // heavy, restricted to P0
	b.AddWeightedEdge(1, 0, 1)
	b.AddWeightedEdge(1, 1, 1)
	g := b.MustBuild()
	a := LPTGreedy(g)
	if a[0] != 0 {
		t.Fatalf("restricted task on %d", a[0])
	}
	if a[1] != 1 {
		t.Fatalf("light task should avoid the loaded P0, got %d", a[1])
	}
}

func TestLPTOnUnitEqualsSortedishQuality(t *testing.T) {
	// On unit graphs LPT degenerates to degree order (weight ties →
	// smaller degree first) with the after-load rule; quality must be
	// within the usual greedy band.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := randomUnitGraph(rng, 10+rng.Intn(60), 2+rng.Intn(8), 4)
		a := LPTGreedy(g)
		if err := ValidateAssignment(g, a); err != nil {
			t.Fatal(err)
		}
		_, opt, err := ExactUnit(g, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if m := Makespan(g, a); m < opt || m > 3*opt {
			t.Fatalf("trial %d: LPT %d vs OPT %d out of band", trial, m, opt)
		}
	}
}

func TestLPTNeverBelowLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomWeightedGraph(rng, 1+rng.Intn(40), 1+rng.Intn(8), 4, 9)
		a := LPTGreedy(g)
		if ValidateAssignment(g, a) != nil {
			return false
		}
		return Makespan(g, a) >= LowerBoundSingle(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLPTBeatsDegreeOrderOnWeighted(t *testing.T) {
	// Aggregate comparison: over many weighted instances, LPT should be
	// at least as good as degree-sorted greedy on average (that is the
	// point of the extension).
	rng := rand.New(rand.NewSource(7))
	var lptTotal, sortedTotal int64
	for trial := 0; trial < 60; trial++ {
		g := randomWeightedGraph(rng, 60, 6, 3, 20)
		lptTotal += Makespan(g, LPTGreedy(g))
		sortedTotal += Makespan(g, SortedGreedy(g, GreedyOptions{}))
	}
	if lptTotal > sortedTotal {
		t.Fatalf("LPT total %d worse than degree-sorted %d", lptTotal, sortedTotal)
	}
}

func TestLowerBoundSingle(t *testing.T) {
	b := bipartite.NewBuilder(3, 2)
	b.AddWeightedEdge(0, 0, 7)
	b.AddWeightedEdge(1, 0, 2)
	b.AddWeightedEdge(1, 1, 2)
	b.AddWeightedEdge(2, 1, 3)
	g := b.MustBuild()
	// total = 12, p = 2 → avg bound 6; max task 7 → LB 7.
	if lb := LowerBoundSingle(g); lb != 7 {
		t.Fatalf("LB = %d, want 7", lb)
	}
	empty, _ := bipartite.NewFromAdjacency(0, nil)
	if LowerBoundSingle(empty) != 0 {
		t.Fatal("empty LB must be 0")
	}
}

func BenchmarkLPTGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomWeightedGraph(rng, 20480, 1024, 10, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LPTGreedy(g)
	}
}
