package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// HopHeader marks a request that has already been routed once. A replica
// receiving it must answer locally — never forward again — so a stale or
// disagreeing peer list degrades to one extra hop, not a forwarding loop.
const HopHeader = "X-Semimatch-Hop"

// DefaultMaxConnsPerPeer bounds concurrent connections to one peer when
// ClientOptions.MaxConnsPerPeer is zero. Peer traffic is a cache
// side-channel, not the serving path; a small bound keeps a slow peer
// from absorbing this replica's file descriptors.
const DefaultMaxConnsPerPeer = 8

// DefaultFetchTimeout caps one peer cache fetch when the caller's context
// carries no deadline of its own.
const DefaultFetchTimeout = 2 * time.Second

// ClientOptions configures a Client; the zero value uses the defaults
// above.
type ClientOptions struct {
	// MaxConnsPerPeer bounds connections (idle + active) per peer.
	MaxConnsPerPeer int
	// FetchTimeout is the per-fetch cap applied when the request context
	// has no deadline; contexts with deadlines always win (they are
	// derived from the caller's own budget — see Service.PeerTimeout).
	FetchTimeout time.Duration
}

// Client is the bounded HTTP client replicas use to reach each other:
// cache-entry fetches and single-hop request forwarding. Safe for
// concurrent use.
type Client struct {
	hc           *http.Client
	fetchTimeout time.Duration
}

// NewClient builds a peering client with its own bounded transport.
func NewClient(o ClientOptions) *Client {
	conns := o.MaxConnsPerPeer
	if conns <= 0 {
		conns = DefaultMaxConnsPerPeer
	}
	ft := o.FetchTimeout
	if ft <= 0 {
		ft = DefaultFetchTimeout
	}
	tr := &http.Transport{
		MaxConnsPerHost:     conns,
		MaxIdleConnsPerHost: conns,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Client{hc: &http.Client{Transport: tr}, fetchTimeout: ft}
}

// CacheKeyPath is the URL path of one peer-cache entry; the key is
// path-escaped so composite keys ("fp|alg|class") travel intact.
func CacheKeyPath(key string) string {
	return "/internal/cache/" + url.PathEscape(key)
}

// FetchEntry asks peer for its cached entry under key (GET
// /internal/cache/{key}) and decodes the JSON body into `into`.
// A 404 is a clean miss (false, nil); any other failure — transport,
// unexpected status, undecodable body — is an error. The context's
// deadline bounds the whole exchange; without one, FetchTimeout applies.
// The returned entry is whatever the peer claims: callers must verify it
// (certificate and all) before trusting or caching anything.
func (c *Client) FetchEntry(ctx context.Context, peer, key string, into any) (bool, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.fetchTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+CacheKeyPath(key), nil)
	if err != nil {
		return false, fmt.Errorf("cluster: fetch %s: %w", peer, err)
	}
	req.Header.Set(HopHeader, "1")
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, fmt.Errorf("cluster: fetch %s: %w", peer, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("cluster: fetch %s: unexpected status %d", peer, resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(into); err != nil {
		return false, fmt.Errorf("cluster: fetch %s: decoding entry: %w", peer, err)
	}
	return true, nil
}

// Forward relays one solve request body to the owning peer, marked with
// HopHeader so the peer answers locally. pathAndQuery carries the
// original path and query string (the deadline override travels with
// it). The caller owns the response and must close its body; a transport
// error leaves the caller free to fall back to a local solve.
func (c *Client) Forward(ctx context.Context, peer, pathAndQuery, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+pathAndQuery, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: forward %s: %w", peer, err)
	}
	req.Header.Set(HopHeader, "1")
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: forward %s: %w", peer, err)
	}
	return resp, nil
}
