// Package cluster is the shared-nothing scale-out layer: fingerprint-
// sharded request routing over a static fleet of semiserve replicas, and
// the bounded HTTP client replicas use to talk to each other.
//
// Routing is rendezvous (highest-random-weight) hashing: every replica
// independently scores each peer against an instance fingerprint
// (SHA-256 over peer‖fingerprint) and the highest score owns the key.
// Because scores are pairwise-independent, the ring needs no coordination
// — any two processes configured with the same peer list agree on every
// owner — and removing one peer remaps exactly that peer's keys (~1/N of
// the space) while every other key keeps its owner. PR 3's canonical
// fingerprinting makes the routing semantic: isomorphic instances hash
// equal, so they land on the same shard, the same single-flight group,
// and the same verified cache entry no matter which replica a client
// happened to ask.
//
// The package is deliberately service-agnostic: it knows URLs, keys and
// JSON payloads, not solve results. Verification of anything a peer
// returns is the caller's job (internal/service re-verifies certificates
// with cert.Verify before admitting a peer entry to any cache tier).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// Ring is an immutable rendezvous-hash view of a static peer list. The
// zero value is unusable; build one with NewRing. All methods are safe
// for concurrent use (the ring is read-only after construction).
type Ring struct {
	self  string
	peers []string // normalized, deduplicated, sorted
}

// NewRing builds a ring over the given peer base URLs. self is this
// process's own base URL; it is added to the peer list if absent, so
// "-peers lists everyone else" and "-peers lists the whole fleet" both
// work. Peers may be bare host:port (http:// is assumed) or full URLs;
// trailing slashes and case differences in the host are normalized away
// so the fleet agrees on peer identity byte-for-byte.
func NewRing(self string, peers []string) (*Ring, error) {
	nself, err := NormalizePeer(self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self %q: %w", self, err)
	}
	seen := map[string]bool{nself: true}
	all := []string{nself}
	for _, p := range peers {
		np, err := NormalizePeer(p)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", p, err)
		}
		if !seen[np] {
			seen[np] = true
			all = append(all, np)
		}
	}
	sort.Strings(all)
	return &Ring{self: nself, peers: all}, nil
}

// NormalizePeer canonicalizes one peer address: bare host:port gains an
// http:// scheme, the host is lowercased, and any trailing slash is
// dropped. The result is the exact string the ring hashes, so two
// processes spelling the same peer differently still agree on ownership.
func NormalizePeer(p string) (string, error) {
	p = strings.TrimSpace(p)
	if p == "" {
		return "", fmt.Errorf("empty address")
	}
	if !strings.Contains(p, "://") {
		p = "http://" + p
	}
	u, err := url.Parse(p)
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("unsupported scheme %q", u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("missing host")
	}
	u.Host = strings.ToLower(u.Host)
	u.Path = strings.TrimRight(u.Path, "/")
	u.RawQuery, u.Fragment = "", ""
	return u.String(), nil
}

// Self returns this process's own normalized base URL.
func (r *Ring) Self() string { return r.self }

// Peers returns the full normalized peer list (self included), sorted.
// The returned slice is shared; treat it as read-only.
func (r *Ring) Peers() []string { return r.peers }

// Size returns the number of replicas in the ring.
func (r *Ring) Size() int { return len(r.peers) }

// Owner returns the peer that owns key (an instance fingerprint):
// the highest rendezvous score, with the lexicographically smallest peer
// breaking exact score ties so ownership is total and deterministic.
func (r *Ring) Owner(key string) string {
	var best string
	var bestScore uint64
	for _, p := range r.peers {
		s := score(p, key)
		if best == "" || s > bestScore || (s == bestScore && p < best) {
			best, bestScore = p, s
		}
	}
	return best
}

// Owns reports whether this process owns key.
func (r *Ring) Owns(key string) bool { return r.Owner(key) == r.self }

// score is the rendezvous weight of peer for key: the first 8 bytes of
// SHA-256(peer ‖ NUL ‖ key) as a big-endian uint64. SHA-256 (rather than
// a fast non-cryptographic hash) keeps the distribution uniform even for
// adversarially chosen keys, and one hash per peer per request is noise
// next to canonicalizing the instance.
func score(peer, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}
