package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func mkPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return peers
}

func mkKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real cache keys: hex fingerprint + algorithm + class.
		keys[i] = fmt.Sprintf("%064x|auto|inf", i*2654435761)
	}
	return keys
}

// TestRingDeterministicAcrossProcesses: two rings built from the same
// fleet — in different spellings and orders, from different "self"
// replicas — agree on every owner. This is the property that lets every
// replica route independently with no coordination.
func TestRingDeterministicAcrossProcesses(t *testing.T) {
	peers := mkPeers(5)
	a, err := NewRing(peers[0], peers)
	if err != nil {
		t.Fatal(err)
	}
	// Ring b: same fleet, reversed order, self spelled with a trailing
	// slash and uppercase host, self not repeated in the peer list.
	shuffled := []string{
		peers[4] + "/", "REPLICA-3:8080", peers[1], peers[0],
	}
	b, err := NewRing(strings.ToUpper("replica-2")+":8080", shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 5 || b.Size() != 5 {
		t.Fatalf("ring sizes = %d, %d, want 5", a.Size(), b.Size())
	}
	for _, key := range mkKeys(2000) {
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("rings disagree on %q: %q vs %q", key, ao, bo)
		}
	}
}

// TestRingDistribution: for fleets of 3–16 peers, every peer owns within
// 15% of the uniform share of a large key population.
func TestRingDistribution(t *testing.T) {
	keys := mkKeys(20000)
	for n := 3; n <= 16; n++ {
		ring, err := NewRing(mkPeers(n)[0], mkPeers(n))
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int, n)
		for _, key := range keys {
			counts[ring.Owner(key)]++
		}
		want := float64(len(keys)) / float64(n)
		for peer, got := range counts {
			if dev := math.Abs(float64(got)-want) / want; dev > 0.15 {
				t.Errorf("n=%d: %s owns %d keys (uniform %.0f, deviation %.1f%%)",
					n, peer, got, want, 100*dev)
			}
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d peers own any keys", n, len(counts))
		}
	}
}

// TestRingRemovalRemapsOneShare: dropping one peer moves exactly the
// keys that peer owned (~1/N of the space) and no others — the
// rendezvous minimal-disruption property that makes rolling a replica
// out of the fleet cheap for the cache.
func TestRingRemovalRemapsOneShare(t *testing.T) {
	const n = 6
	peers := mkPeers(n)
	full, err := NewRing(peers[0], peers)
	if err != nil {
		t.Fatal(err)
	}
	dropped := peers[n-1]
	reduced, err := NewRing(peers[0], peers[:n-1])
	if err != nil {
		t.Fatal(err)
	}
	keys := mkKeys(20000)
	remapped, droppedShare := 0, 0
	for _, key := range keys {
		before := full.Owner(key)
		if before == dropped {
			droppedShare++
		}
		if after := reduced.Owner(key); after != before {
			remapped++
			if before != dropped {
				t.Fatalf("key %q moved %q → %q though %q was the peer removed",
					key, before, after, dropped)
			}
		}
	}
	if remapped != droppedShare {
		t.Fatalf("remapped %d keys, dropped peer owned %d — every orphaned key (and only those) must move",
			remapped, droppedShare)
	}
	share := float64(droppedShare) / float64(len(keys))
	if share < 1.0/n*0.85 || share > 1.0/n*1.15 {
		t.Fatalf("dropped peer owned %.1f%% of keys, want ~%.1f%%", 100*share, 100.0/n)
	}
}

// TestRingOwns: Owns matches Owner == Self.
func TestRingOwns(t *testing.T) {
	peers := mkPeers(4)
	rings := make([]*Ring, len(peers))
	for i, self := range peers {
		r, err := NewRing(self, peers)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	for _, key := range mkKeys(500) {
		owners := 0
		for _, r := range rings {
			if r.Owns(key) {
				owners++
				if r.Owner(key) != r.Self() {
					t.Fatalf("Owns(%q) true but Owner %q != Self %q", key, r.Owner(key), r.Self())
				}
			}
		}
		if owners != 1 {
			t.Fatalf("key %q has %d owners, want exactly 1", key, owners)
		}
	}
}

func TestNewRingRejectsBadPeers(t *testing.T) {
	for _, bad := range []string{"", "ftp://x:1", "http://"} {
		if _, err := NewRing("http://a:1", []string{bad}); err == nil {
			t.Errorf("NewRing accepted bad peer %q", bad)
		}
	}
	if _, err := NewRing("", []string{"http://a:1"}); err == nil {
		t.Error("NewRing accepted empty self")
	}
}

// testEntry mirrors the wire shape closely enough for client tests.
type testEntry struct {
	Key      string `json:"key"`
	Makespan int64  `json:"makespan"`
}

// TestClientFetchEntry: 200 decodes, 404 is a clean miss, other statuses
// and garbled bodies are errors; the hop header rides along; the key is
// path-escaped and arrives intact.
func TestClientFetchEntry(t *testing.T) {
	const key = "abc123|BnB-MP|le2s"
	var gotPath, gotHop string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath, gotHop = r.URL.Path, r.Header.Get(HopHeader)
		switch {
		case strings.HasSuffix(r.URL.Path, "miss"):
			http.NotFound(w, r)
		case strings.HasSuffix(r.URL.Path, "boom"):
			http.Error(w, "nope", http.StatusInternalServerError)
		case strings.HasSuffix(r.URL.Path, "garbled"):
			fmt.Fprint(w, "{not json")
		default:
			json.NewEncoder(w).Encode(testEntry{Key: key, Makespan: 42})
		}
	}))
	defer ts.Close()
	c := NewClient(ClientOptions{})

	var e testEntry
	ok, err := c.FetchEntry(context.Background(), ts.URL, key, &e)
	if err != nil || !ok {
		t.Fatalf("FetchEntry = %v, %v", ok, err)
	}
	if e.Key != key || e.Makespan != 42 {
		t.Fatalf("decoded entry %+v", e)
	}
	if gotHop != "1" {
		t.Fatalf("hop header = %q, want 1", gotHop)
	}
	// net/http hands the handler the decoded path: the escaped pipe
	// characters must round-trip back to the exact key.
	if gotPath != "/internal/cache/"+key {
		t.Fatalf("decoded path = %q, want key %q to round-trip", gotPath, key)
	}

	if ok, err := c.FetchEntry(context.Background(), ts.URL, "miss", &e); ok || err != nil {
		t.Fatalf("404 fetch = %v, %v, want clean miss", ok, err)
	}
	if _, err := c.FetchEntry(context.Background(), ts.URL, "boom", &e); err == nil {
		t.Fatal("500 fetch succeeded")
	}
	if _, err := c.FetchEntry(context.Background(), ts.URL, "garbled", &e); err == nil {
		t.Fatal("garbled fetch succeeded")
	}
}

// TestClientFetchDeadline: the caller's context deadline bounds the
// fetch — a peer that stalls longer than the budget cannot hold the
// caller past it (satellite: deadline propagation into peer fetches).
func TestClientFetchDeadline(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer ts.Close()
	c := NewClient(ClientOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	var e testEntry
	_, err := c.FetchEntry(ctx, ts.URL, "k", &e)
	once.Do(func() { close(release) })
	if err == nil {
		t.Fatal("fetch against a stalled peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fetch held the caller %v past a 50ms budget", elapsed)
	}
}

// TestClientFetchDefaultTimeout: with no caller deadline, FetchTimeout
// caps the exchange so an unbounded context cannot hang a coalesced
// group on a dead peer.
func TestClientFetchDefaultTimeout(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer ts.Close()
	c := NewClient(ClientOptions{FetchTimeout: 50 * time.Millisecond})
	start := time.Now()
	var e testEntry
	_, err := c.FetchEntry(context.Background(), ts.URL, "k", &e)
	once.Do(func() { close(release) })
	if err == nil {
		t.Fatal("fetch against a stalled peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("default timeout did not bound the fetch: %v", elapsed)
	}
}

// TestClientForward: the body, query and hop header arrive; the response
// comes back verbatim.
func TestClientForward(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(HopHeader) != "1" {
			t.Errorf("forwarded request missing hop header")
		}
		if r.URL.RawQuery != "alg=evg&deadline=1s" {
			t.Errorf("query = %q", r.URL.RawQuery)
		}
		var buf strings.Builder
		if _, err := fmt.Fprint(&buf, r.Header.Get("Content-Type")); err != nil {
			t.Error(err)
		}
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "forwarded:", buf.String())
	}))
	defer ts.Close()
	c := NewClient(ClientOptions{})
	resp, err := c.Forward(context.Background(), ts.URL, "/solve?alg=evg&deadline=1s", "text/plain", []byte("hypergraph 1 1 1\n0 2 1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
