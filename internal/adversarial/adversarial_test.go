package adversarial

import (
	"math/rand"
	"testing"

	"semimatch/internal/core"
)

func TestFig1Claims(t *testing.T) {
	g := Fig1()
	a := core.BasicGreedy(g, core.GreedyOptions{})
	if m := core.Makespan(g, a); m != 2 {
		t.Fatalf("basic-greedy = %d, want 2", m)
	}
	_, opt, err := core.ExactUnit(g, core.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 {
		t.Fatalf("optimum = %d, want 1", opt)
	}
}

func TestChainSizes(t *testing.T) {
	for k := 1; k <= 6; k++ {
		g := Chain(k)
		if g.NLeft != (1<<k)-1 || g.NRight != 1<<k {
			t.Fatalf("k=%d: %d tasks, %d procs", k, g.NLeft, g.NRight)
		}
		for u := 0; u < g.NLeft; u++ {
			if g.Degree(u) != 2 {
				t.Fatalf("k=%d: task %d degree %d, want 2", k, u, g.Degree(u))
			}
		}
	}
}

func TestChainGreedyTrap(t *testing.T) {
	// Fig. 3's claim: basic- and sorted-greedy reach makespan k; OPT = 1.
	for k := 2; k <= 6; k++ {
		g := Chain(k)
		basic := core.BasicGreedy(g, core.GreedyOptions{})
		if m := core.Makespan(g, basic); m != int64(k) {
			t.Fatalf("k=%d: basic-greedy = %d, want %d", k, m, k)
		}
		sorted := core.SortedGreedy(g, core.GreedyOptions{})
		if m := core.Makespan(g, sorted); m != int64(k) {
			t.Fatalf("k=%d: sorted-greedy = %d, want %d", k, m, k)
		}
		_, opt, err := core.ExactUnit(g, core.ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if opt != 1 {
			t.Fatalf("k=%d: optimum = %d, want 1", k, opt)
		}
	}
}

func TestChainDoubleSortedEscapes(t *testing.T) {
	// On the bare chain the in-degree tie-break rescues double-sorted
	// (that is exactly why the paper extends the example in ChainPlus).
	g := Chain(3)
	a := core.DoubleSorted(g, core.GreedyOptions{})
	if m := core.Makespan(g, a); m != 1 {
		t.Fatalf("double-sorted on Chain(3) = %d, want 1", m)
	}
}

func TestChainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	Chain(0)
}

func TestChainPlusTrapsDoubleSorted(t *testing.T) {
	g := ChainPlus()
	if g.NLeft != 12 || g.NRight != 12 {
		t.Fatalf("sizes: %d %d", g.NLeft, g.NRight)
	}
	// In-degrees of P0..P7 must all equal 3 so double-sorted ties.
	rdeg := g.RightDegrees()
	for p := 0; p < 8; p++ {
		if rdeg[p] != 3 {
			t.Fatalf("P%d in-degree %d, want 3", p, rdeg[p])
		}
	}
	a := core.DoubleSorted(g, core.GreedyOptions{})
	if m := core.Makespan(g, a); m != 3 {
		t.Fatalf("double-sorted = %d, want 3 (the trap)", m)
	}
	_, opt, err := core.ExactUnit(g, core.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 {
		t.Fatalf("optimum = %d, want 1", opt)
	}
}

func TestExpectedTrapTrapsExpectedGreedy(t *testing.T) {
	g := ExpectedTrap()
	if g.NLeft != 16 || g.NRight != 16 {
		t.Fatalf("sizes: %d %d", g.NLeft, g.NRight)
	}
	for u := 0; u < g.NLeft; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("task %d degree %d, want 2 (all tasks out-degree 2)", u, g.Degree(u))
		}
	}
	rdeg := g.RightDegrees()
	for p := 0; p < 8; p++ {
		if rdeg[p] != 3 {
			t.Fatalf("P%d in-degree %d, want 3", p, rdeg[p])
		}
	}
	a := core.ExpectedGreedy(g, core.GreedyOptions{})
	if m := core.Makespan(g, a); m != 3 {
		t.Fatalf("expected-greedy = %d, want 3 (the trap)", m)
	}
	b := core.DoubleSorted(g, core.GreedyOptions{})
	if m := core.Makespan(g, b); m != 3 {
		t.Fatalf("double-sorted = %d, want 3", m)
	}
	_, opt, err := core.ExactUnit(g, core.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 {
		t.Fatalf("optimum = %d, want 1", opt)
	}
}

func TestExpectedGreedyEscapesChainPlus(t *testing.T) {
	// Sec. IV-B4: on the ChainPlus example the o(u) values differ (the
	// degree-3 tasks shift them), so expected-greedy avoids at least the
	// full collapse: it must beat double-sorted's makespan 3 or match the
	// optimum. We assert it is strictly better than the trap.
	g := ChainPlus()
	a := core.ExpectedGreedy(g, core.GreedyOptions{})
	if m := core.Makespan(g, a); m >= 3 {
		t.Fatalf("expected-greedy = %d, want < 3", m)
	}
}

func TestX3CValidate(t *testing.T) {
	ok := X3C{Q: 1, Sets: [][3]int{{0, 1, 2}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []X3C{
		{Q: 0},
		{Q: 1, Sets: [][3]int{{0, 1, 5}}},
		{Q: 1, Sets: [][3]int{{0, 0, 1}}},
	}
	for i, x := range bad {
		if err := x.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestToMultiprocShape(t *testing.T) {
	x := X3C{Q: 2, Sets: [][3]int{{0, 1, 2}, {3, 4, 5}, {1, 2, 3}}}
	h, err := x.ToMultiproc()
	if err != nil {
		t.Fatal(err)
	}
	if h.NTasks != 2 || h.NProcs != 6 {
		t.Fatalf("sizes: %d %d", h.NTasks, h.NProcs)
	}
	if h.NumEdges() != 2*3 {
		t.Fatalf("|N| = %d, want 6 (every task gets every set)", h.NumEdges())
	}
	if !h.Unit() {
		t.Fatal("reduction must be unit-weighted")
	}
	if _, err := (X3C{Q: 1}).ToMultiproc(); err == nil {
		t.Fatal("empty collection accepted")
	}
}

func TestRandomX3CPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := RandomX3C(rng, 4, 5, true)
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(x.Sets) != 4+5 {
		t.Fatalf("%d sets", len(x.Sets))
	}
	// A planted instance must have an exact cover: the q planted triples
	// partition X. Verify by brute force over subsets here (q=4 small).
	if !hasCoverBrute(x) {
		t.Fatal("planted instance has no cover")
	}
}

// hasCoverBrute is an independent exhaustive check used only in tests.
func hasCoverBrute(x X3C) bool {
	n := len(x.Sets)
	var rec func(i, covered int, mask uint64) bool
	rec = func(i, covered int, mask uint64) bool {
		if covered == 3*x.Q {
			return true
		}
		if i == n {
			return false
		}
		s := x.Sets[i]
		bit := uint64(1)<<s[0] | uint64(1)<<s[1] | uint64(1)<<s[2]
		if mask&bit == 0 {
			if rec(i+1, covered+3, mask|bit) {
				return true
			}
		}
		return rec(i+1, covered, mask)
	}
	return rec(0, 0, 0)
}
