// Package adversarial constructs the worst-case instance families used in
// the paper's analysis:
//
//   - Fig1: the two-task toy where basic-greedy is 2× off.
//   - Chain(k): Fig. 3's family where basic- and sorted-greedy reach
//     makespan k while the optimum is 1.
//   - ChainPlus: the extension sketched in Sec. IV-B3 (TR Fig. 4) that also
//     fools double-sorted (makespan 3 vs optimum 1).
//   - ExpectedTrap: the 16×16 extension sketched in Sec. IV-B4 (TR Fig. 5)
//     where even expected-greedy ties into the same wrong decisions.
//   - X3C gadgets: the reduction of Theorem 1 from Exact Cover by 3-Sets to
//     MULTIPROC-UNIT (makespan 1 ⇔ exact cover exists).
//
// The TR figures are not in the paper text; ChainPlus and ExpectedTrap are
// reconstructions from the prose that provably exhibit the claimed traps
// (asserted by this package's tests).
package adversarial

import (
	"fmt"
	"math/rand"

	"semimatch/internal/bipartite"
	"semimatch/internal/hypergraph"
)

// Fig1 returns the instance of Fig. 1: T0 → {P0, P1}, T1 → {P0}.
// Basic-greedy (index order, ties to the lowest index) assigns both tasks
// to P0 for makespan 2; the optimum is 1.
func Fig1() *bipartite.Graph {
	b := bipartite.NewBuilder(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	return b.MustBuild()
}

// Chain returns the Fig. 3 family for parameter k ≥ 1: 2^k − 1 tasks on
// 2^k processors. Task T^(ℓ)_i (ℓ = 0..k−1, i = 1..2^{k−1−ℓ}) may run on
// P_i or P_{i+2^{k−1−ℓ}}; tasks are numbered level by level, so index
// order is the order the paper's argument requires. The optimal makespan
// is 1 (place every task on its high processor); basic- and sorted-greedy
// produce makespan k (every level collapses onto the low processors).
func Chain(k int) *bipartite.Graph {
	if k < 1 {
		panic("adversarial: Chain requires k >= 1")
	}
	n := (1 << k) - 1
	p := 1 << k
	b := bipartite.NewBuilder(n, p)
	t := 0
	for l := 0; l < k; l++ {
		span := 1 << (k - 1 - l)
		for i := 1; i <= span; i++ {
			b.AddEdge(t, i-1)      // P_i
			b.AddEdge(t, i+span-1) // P_{i+2^{k-1-l}}
			t++
		}
	}
	return b.MustBuild()
}

// ChainPlus returns the 12-task, 12-processor extension of Chain(3)
// described in Sec. IV-B3: T7 (0-based) on {P2, P3} equalizes the
// in-degrees of P0–P3 at 3, and four degree-3 tasks T8–T11 (processed last
// by degree-sorted heuristics) raise P4–P7 to in-degree 3 while each
// having a private processor P8–P11. Double-sorted then ties exactly like
// sorted-greedy and reaches makespan 3; the optimum is 1.
func ChainPlus() *bipartite.Graph {
	b := bipartite.NewBuilder(12, 12)
	addChain3(b)
	// T7: {P2, P3}.
	b.AddEdge(7, 2)
	b.AddEdge(7, 3)
	// Degree-3 tasks covering P4..P7 twice, each with a private processor.
	b.AddEdge(8, 4)
	b.AddEdge(8, 5)
	b.AddEdge(8, 8)
	b.AddEdge(9, 6)
	b.AddEdge(9, 7)
	b.AddEdge(9, 9)
	b.AddEdge(10, 4)
	b.AddEdge(10, 5)
	b.AddEdge(10, 10)
	b.AddEdge(11, 6)
	b.AddEdge(11, 7)
	b.AddEdge(11, 11)
	return b.MustBuild()
}

// addChain3 adds the 7 tasks of Chain(3) over processors P0..P7 to b.
func addChain3(b *bipartite.Builder) {
	t := 0
	for l := 0; l < 3; l++ {
		span := 1 << (2 - l)
		for i := 1; i <= span; i++ {
			b.AddEdge(t, i-1)
			b.AddEdge(t, i+span-1)
			t++
		}
	}
}

// ExpectedTrap returns the 16-task, 16-processor instance of Sec. IV-B4:
// all tasks have out-degree 2 and the expected loads o(u) of P0–P7 are all
// equal (1.5), so expected-greedy cannot distinguish the chain's low and
// high processors and falls into the same trap as sorted-greedy (makespan
// 3); the optimum is 1.
//
// Construction: Chain(3) (tasks T0–T6) + T7 on {P2,P3} (so P0–P3 have
// in-degree 3), plus eight tasks T8–T15, each on {P_{8+i}, q} where the
// q's cover P4–P7 twice (so P4–P7 reach in-degree 3 and expected load
// 3·(1/2) everywhere).
func ExpectedTrap() *bipartite.Graph {
	b := bipartite.NewBuilder(16, 16)
	addChain3(b)
	b.AddEdge(7, 2)
	b.AddEdge(7, 3)
	for i := 0; i < 8; i++ {
		t := 8 + i
		q := 4 + i/2 // P4,P4,P5,P5,P6,P6,P7,P7
		b.AddEdge(t, q)
		b.AddEdge(t, 8+i) // private processor
	}
	return b.MustBuild()
}

// X3C is an instance of Exact Cover by 3-Sets: a universe of 3q elements
// and a collection of 3-element subsets. The question is whether q
// pairwise-disjoint subsets cover the universe.
type X3C struct {
	Q    int      // |X| = 3Q
	Sets [][3]int // collection C; elements in [0, 3Q)
}

// Validate checks element ranges and set distinctness-within-set.
func (x X3C) Validate() error {
	if x.Q < 1 {
		return fmt.Errorf("adversarial: X3C needs q >= 1")
	}
	for i, s := range x.Sets {
		for _, e := range s {
			if e < 0 || e >= 3*x.Q {
				return fmt.Errorf("adversarial: set %d element %d out of range", i, e)
			}
		}
		if s[0] == s[1] || s[0] == s[2] || s[1] == s[2] {
			return fmt.Errorf("adversarial: set %d has repeated elements", i)
		}
	}
	return nil
}

// ToMultiproc builds the MULTIPROC-UNIT instance of Theorem 1's reduction:
// the 3q elements become processors, q tasks each have every set of C as a
// configuration, all weights 1. The instance has a schedule of makespan 1
// iff the X3C instance has an exact cover.
func (x X3C) ToMultiproc() (*hypergraph.Hypergraph, error) {
	if err := x.Validate(); err != nil {
		return nil, err
	}
	if len(x.Sets) == 0 {
		return nil, fmt.Errorf("adversarial: empty collection")
	}
	b := hypergraph.NewBuilder(x.Q, 3*x.Q)
	for t := 0; t < x.Q; t++ {
		for _, s := range x.Sets {
			b.AddEdge(t, []int{s[0], s[1], s[2]}, 1)
		}
	}
	return b.Build()
}

// RandomX3C generates a random X3C instance with q·3 elements and extra
// random sets. If planted is true the instance is guaranteed solvable: a
// random partition of X into q triples is included among the sets.
func RandomX3C(rng *rand.Rand, q, extraSets int, planted bool) X3C {
	x := X3C{Q: q}
	if planted {
		perm := rng.Perm(3 * q)
		for i := 0; i < q; i++ {
			s := [3]int{perm[3*i], perm[3*i+1], perm[3*i+2]}
			x.Sets = append(x.Sets, s)
		}
	}
	for i := 0; i < extraSets; i++ {
		perm := rng.Perm(3 * q)
		x.Sets = append(x.Sets, [3]int{perm[0], perm[1], perm[2]})
	}
	// Shuffle so a planted cover is not trivially the prefix.
	rng.Shuffle(len(x.Sets), func(i, j int) { x.Sets[i], x.Sets[j] = x.Sets[j], x.Sets[i] })
	return x
}
