package matching

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// adj is a tiny literal graph helper for tests.
type adj [][]int32

func (a adj) LeftCount() int    { return len(a) }
func (a adj) RightCount() int   { return rightCount(a) }
func (a adj) Row(u int) []int32 { return a[u] }

func rightCount(a adj) int {
	max := int32(-1)
	for _, row := range a {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return int(max + 1)
}

// fixedRight wraps adj with an explicit right count (for isolated right
// vertices).
type fixedRight struct {
	adj
	nRight int
}

func (f fixedRight) RightCount() int { return f.nRight }

// bruteMax computes maximum matching cardinality by exhaustive recursion.
// Exponential; only for graphs with ≤ ~20 left vertices.
func bruteMax(g Graph) int {
	usedR := make([]bool, g.RightCount())
	var rec func(u int) int
	rec = func(u int) int {
		if u == g.LeftCount() {
			return 0
		}
		best := rec(u + 1) // leave u unmatched
		for _, v := range g.Row(u) {
			if !usedR[v] {
				usedR[v] = true
				if r := 1 + rec(u+1); r > best {
					best = r
				}
				usedR[v] = false
			}
		}
		return best
	}
	return rec(0)
}

func randomAdj(rng *rand.Rand, nL, nR int, prob float64) fixedRight {
	a := make(adj, nL)
	for u := 0; u < nL; u++ {
		for v := 0; v < nR; v++ {
			if rng.Float64() < prob {
				a[u] = append(a[u], int32(v))
			}
		}
	}
	return fixedRight{a, nR}
}

var allAlgorithms = []struct {
	name string
	f    func(Graph) []int32
}{
	{"HopcroftKarp", HopcroftKarp},
	{"Kuhn", Kuhn},
	{"PushRelabel", PushRelabel},
}

func TestPerfectMatchingSquare(t *testing.T) {
	// Complete bipartite K_{4,4} has a perfect matching.
	g := randomAdj(rand.New(rand.NewSource(1)), 4, 4, 1.1)
	for _, alg := range allAlgorithms {
		m := alg.f(g)
		if err := Verify(g, m); err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if Cardinality(m) != 4 {
			t.Fatalf("%s: cardinality %d, want 4", alg.name, Cardinality(m))
		}
	}
}

func TestPathGraph(t *testing.T) {
	// L0-R0, L0-R1, L1-R1: maximum matching 2 requires augmenting.
	g := fixedRight{adj{{0, 1}, {1}}, 2}
	for _, alg := range allAlgorithms {
		m := alg.f(g)
		if Cardinality(m) != 2 {
			t.Fatalf("%s: cardinality %d, want 2 (augmentation failed)", alg.name, Cardinality(m))
		}
		if err := Verify(g, m); err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
	}
}

func TestEmptyAndIsolated(t *testing.T) {
	g := fixedRight{adj{{}, {0}, {}}, 2}
	for _, alg := range allAlgorithms {
		m := alg.f(g)
		if Cardinality(m) != 1 {
			t.Fatalf("%s: cardinality %d, want 1", alg.name, Cardinality(m))
		}
		if m[0] != Unmatched || m[2] != Unmatched {
			t.Fatalf("%s: isolated vertices must stay unmatched: %v", alg.name, m)
		}
	}
}

func TestZeroVertices(t *testing.T) {
	g := fixedRight{adj{}, 0}
	for _, alg := range allAlgorithms {
		if m := alg.f(g); len(m) != 0 {
			t.Fatalf("%s: expected empty matching", alg.name)
		}
	}
}

func TestAllAlgorithmsAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nL := 1 + rng.Intn(9)
		nR := 1 + rng.Intn(9)
		g := randomAdj(rng, nL, nR, rng.Float64())
		want := bruteMax(g)
		for _, alg := range allAlgorithms {
			m := alg.f(g)
			if err := Verify(g, m); err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg.name, err)
			}
			if got := Cardinality(m); got != want {
				t.Fatalf("trial %d %s: cardinality %d, want %d (graph %v)", trial, alg.name, got, want, g.adj)
			}
		}
	}
}

func TestAlgorithmsAgreeOnLargerGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomAdj(rng, 200+rng.Intn(200), 100+rng.Intn(100), 0.02+rng.Float64()*0.05)
		ref := Cardinality(HopcroftKarp(g))
		for _, alg := range allAlgorithms[1:] {
			if got := Cardinality(alg.f(g)); got != ref {
				t.Fatalf("trial %d: %s=%d, HopcroftKarp=%d", trial, alg.name, got, ref)
			}
		}
	}
}

func TestKarpSipserMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAdj(rng, 1+rng.Intn(40), 1+rng.Intn(40), rng.Float64()*0.3)
		m := KarpSipser(g)
		if Verify(g, m) != nil {
			return false
		}
		return VerifyMaximal(g, m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKarpSipserChain(t *testing.T) {
	// A path: KS degree-1 rule should find the perfect matching where pure
	// greedy from the middle could fail.
	g := fixedRight{adj{{0}, {0, 1}, {1, 2}, {2, 3}}, 4}
	m := KarpSipser(g)
	if Cardinality(m) != 4 {
		t.Fatalf("KarpSipser on chain: %d, want 4", Cardinality(m))
	}
}

func TestVerifyDetectsBadMatchings(t *testing.T) {
	g := fixedRight{adj{{0, 1}, {0}}, 2}
	if err := Verify(g, []int32{0}); err == nil {
		t.Fatal("length mismatch not detected")
	}
	if err := Verify(g, []int32{0, 0}); err == nil {
		t.Fatal("double-used right vertex not detected")
	}
	if err := Verify(g, []int32{5, Unmatched}); err == nil {
		t.Fatal("out-of-range not detected")
	}
	if err := Verify(g, []int32{1, 1}); err == nil {
		t.Fatal("double use not detected")
	}
	if err := Verify(g, []int32{Unmatched, 1}); err == nil {
		t.Fatal("non-edge not detected")
	}
}

// --- Capacitated matching ---

// bruteMaxCap: maximum b-matching cardinality with right capacity c.
func bruteMaxCap(g Graph, c int) int {
	load := make([]int, g.RightCount())
	var rec func(u int) int
	rec = func(u int) int {
		if u == g.LeftCount() {
			return 0
		}
		best := rec(u + 1)
		for _, v := range g.Row(u) {
			if load[v] < c {
				load[v]++
				if r := 1 + rec(u+1); r > best {
					best = r
				}
				load[v]--
			}
		}
		return best
	}
	return rec(0)
}

// VerifyCap checks a capacitated matching.
func verifyCap(t *testing.T, g Graph, m []int32, c int) {
	t.Helper()
	load := make([]int, g.RightCount())
	for u, v := range m {
		if v == Unmatched {
			continue
		}
		found := false
		for _, w := range g.Row(u) {
			if w == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("pair (%d,%d) not an edge", u, v)
		}
		load[v]++
	}
	for v, l := range load {
		if l > c {
			t.Fatalf("right vertex %d has load %d > cap %d", v, l, c)
		}
	}
}

func TestCapEqualsReplication(t *testing.T) {
	// cap=1 must agree with plain HK.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		g := randomAdj(rng, 1+rng.Intn(12), 1+rng.Intn(8), rng.Float64()*0.6)
		m1 := HopcroftKarp(g)
		mc := HopcroftKarpCap(g, 1)
		verifyCap(t, g, mc, 1)
		if Cardinality(m1) != Cardinality(mc) {
			t.Fatalf("trial %d: cap-1 %d != plain %d", trial, Cardinality(mc), Cardinality(m1))
		}
	}
}

func TestCapAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		nL := 1 + rng.Intn(8)
		nR := 1 + rng.Intn(5)
		c := 1 + rng.Intn(3)
		g := randomAdj(rng, nL, nR, rng.Float64())
		m := HopcroftKarpCap(g, c)
		verifyCap(t, g, m, c)
		want := bruteMaxCap(g, c)
		if got := Cardinality(m); got != want {
			t.Fatalf("trial %d (cap=%d): got %d, want %d; graph %v", trial, c, got, want, g.adj)
		}
	}
}

func TestCapSaturatesAllTasks(t *testing.T) {
	// n tasks all eligible on a single processor: cap n matches all, cap
	// n-1 matches n-1.
	const n = 9
	a := make(adj, n)
	for u := range a {
		a[u] = []int32{0}
	}
	g := fixedRight{a, 1}
	if got := Cardinality(HopcroftKarpCap(g, n)); got != n {
		t.Fatalf("cap=n: %d, want %d", got, n)
	}
	if got := Cardinality(HopcroftKarpCap(g, n-1)); got != n-1 {
		t.Fatalf("cap=n-1: %d, want %d", got, n-1)
	}
}

func TestCapPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HopcroftKarpCap(fixedRight{adj{{0}}, 1}, 0)
}

func TestWrap(t *testing.T) {
	// CSR for: 0-{0,1}, 1-{0}.
	g := Wrap(2, 2, []int32{0, 2, 3}, []int32{0, 1, 0})
	if g.LeftCount() != 2 || g.RightCount() != 2 {
		t.Fatal("Wrap counts wrong")
	}
	if got := g.Row(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Row(0) = %v", got)
	}
	m := HopcroftKarp(g)
	if Cardinality(m) != 2 {
		t.Fatalf("cardinality %d", Cardinality(m))
	}
}

func TestPropertyCardinalityNeverExceedsSides(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL, nR := 1+rng.Intn(25), 1+rng.Intn(25)
		g := randomAdj(rng, nL, nR, rng.Float64()*0.5)
		c := Cardinality(HopcroftKarp(g))
		return c <= nL && c <= nR
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCapMonotone(t *testing.T) {
	// Cardinality is non-decreasing in the capacity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAdj(rng, 1+rng.Intn(15), 1+rng.Intn(6), rng.Float64()*0.6)
		prev := 0
		for c := 1; c <= 4; c++ {
			card := Cardinality(HopcroftKarpCap(g, c))
			if card < prev {
				return false
			}
			prev = card
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func benchGraph(nL, nR, deg int, seed int64) Graph {
	rng := rand.New(rand.NewSource(seed))
	a := make(adj, nL)
	for u := 0; u < nL; u++ {
		seen := map[int32]bool{}
		for len(seen) < deg {
			v := int32(rng.Intn(nR))
			if !seen[v] {
				seen[v] = true
				a[u] = append(a[u], v)
			}
		}
	}
	return fixedRight{a, nR}
}

// benchSizes is the shared size grid of the matching-kernel
// micro-benchmarks. Sub-benchmark names are benchstat-friendly
// (key=value segments, fixed seed 1), so two runs diff cleanly with
//
//	go test -run '^$' -bench 'KarpSipser|HopcroftKarp|PushRelabel' \
//	    -count 10 ./internal/matching/ | benchstat old.txt new.txt
var benchSizes = []struct {
	n, deg int
}{
	{5000, 5},
	{20000, 5},
	{20000, 10},
}

func benchKernel(b *testing.B, kernel func(Graph) []int32) {
	b.Helper()
	for _, sz := range benchSizes {
		g := benchGraph(sz.n, sz.n, sz.deg, 1)
		b.Run(fmt.Sprintf("n=%d/deg=%d", sz.n, sz.deg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernel(g)
			}
		})
	}
}

func BenchmarkHopcroftKarp(b *testing.B) { benchKernel(b, HopcroftKarp) }

func BenchmarkPushRelabel(b *testing.B) { benchKernel(b, PushRelabel) }

func BenchmarkKuhn(b *testing.B) { benchKernel(b, Kuhn) }

func BenchmarkKarpSipser(b *testing.B) { benchKernel(b, KarpSipser) }

func BenchmarkHopcroftKarpCap16(b *testing.B) {
	g := benchGraph(20000, 1250, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarpCap(g, 16)
	}
}
