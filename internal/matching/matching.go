// Package matching implements maximum-cardinality bipartite matching
// algorithms. It plays the role of the MatchMaker suite (Duff, Kaya & Uçar,
// TOMS'11; Kaya, Langguth, Manne & Uçar, COR'13) that the paper uses as a
// black box inside the exact SINGLEPROC-UNIT algorithm.
//
// Provided algorithms:
//
//   - HopcroftKarp: phase-based shortest augmenting paths, O(√V·E).
//   - Kuhn: DFS augmenting paths with the standard "lookahead" speedup.
//   - PushRelabel: FIFO push-relabel specialized to unit-capacity bipartite
//     graphs, with the gap heuristic (the paper's choice [15]).
//   - KarpSipser: the degree-1-first greedy initialization heuristic used by
//     practical matching codes [16]; returns a maximal (not maximum)
//     matching.
//   - HopcroftKarpCap: capacity-c generalization (each right vertex may be
//     matched up to c times) used by the exact semi-matching algorithm in
//     place of physically replicating right vertices.
//
// All return a left-oriented matching: matchL[u] is the right vertex matched
// to left vertex u, or -1. Use Verify to check consistency and Cardinality
// to count matched vertices.
package matching

import (
	"fmt"
)

const unmatched = int32(-1)

// Unmatched is the sentinel used in matching arrays.
const Unmatched = unmatched

// Cardinality returns the number of matched left vertices.
func Cardinality(matchL []int32) int {
	n := 0
	for _, v := range matchL {
		if v != unmatched {
			n++
		}
	}
	return n
}

// graph is the minimal adjacency view the algorithms need; satisfied by
// *bipartite.Graph. Defining the interface here keeps the package free of
// upward dependencies while documenting exactly what is used.
type Graph interface {
	LeftCount() int
	RightCount() int
	Row(u int) []int32
}

// Adapter for CSR arrays without importing the bipartite package (avoids an
// import cycle decision; bipartite.Graph implements this shape via Wrap).
type csr struct {
	nLeft, nRight int
	ptr, adj      []int32
}

func (g csr) LeftCount() int    { return g.nLeft }
func (g csr) RightCount() int   { return g.nRight }
func (g csr) Row(u int) []int32 { return g.adj[g.ptr[u]:g.ptr[u+1]] }

// Wrap adapts raw CSR arrays to the Graph interface.
func Wrap(nLeft, nRight int, ptr, adj []int32) Graph {
	return csr{nLeft: nLeft, nRight: nRight, ptr: ptr, adj: adj}
}

// Verify checks that matchL is a valid matching of g: endpoints in range and
// no right vertex used twice, and every matched pair is an actual edge.
func Verify(g Graph, matchL []int32) error {
	if len(matchL) != g.LeftCount() {
		return fmt.Errorf("matching: len(matchL)=%d, want %d", len(matchL), g.LeftCount())
	}
	usedBy := make([]int32, g.RightCount())
	for i := range usedBy {
		usedBy[i] = unmatched
	}
	for u := 0; u < g.LeftCount(); u++ {
		v := matchL[u]
		if v == unmatched {
			continue
		}
		if v < 0 || int(v) >= g.RightCount() {
			return fmt.Errorf("matching: matchL[%d]=%d out of range", u, v)
		}
		if usedBy[v] != unmatched {
			return fmt.Errorf("matching: right vertex %d matched to both %d and %d", v, usedBy[v], u)
		}
		usedBy[v] = int32(u)
		found := false
		for _, w := range g.Row(u) {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("matching: pair (%d,%d) is not an edge", u, v)
		}
	}
	return nil
}

// VerifyMaximal reports an error if some unmatched left vertex has an
// unmatched neighbor (i.e. the matching is not maximal).
func VerifyMaximal(g Graph, matchL []int32) error {
	usedR := make([]bool, g.RightCount())
	for _, v := range matchL {
		if v != unmatched {
			usedR[v] = true
		}
	}
	for u := 0; u < g.LeftCount(); u++ {
		if matchL[u] != unmatched {
			continue
		}
		for _, v := range g.Row(u) {
			if !usedR[v] {
				return fmt.Errorf("matching: not maximal, edge (%d,%d) is free", u, v)
			}
		}
	}
	return nil
}

// KarpSipser computes a maximal matching with the Karp–Sipser heuristic:
// repeatedly match a degree-1 left or right vertex if one exists, otherwise
// match an arbitrary (lowest-index) remaining vertex. This is the standard
// cheap initialization for augmenting-path matchers; on many random graph
// families it is near-optimal.
func KarpSipser(g Graph) []int32 {
	nL, nR := g.LeftCount(), g.RightCount()
	matchL := make([]int32, nL)
	matchR := make([]int32, nR)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}
	// Dynamic degrees. We only track left degrees exactly; right degrees
	// are approximated by initial degree minus matched neighbors, which is
	// enough for the degree-1 rule to fire correctly on the left side and
	// heuristically on the right.
	degL := make([]int32, nL)
	for u := 0; u < nL; u++ {
		degL[u] = int32(len(g.Row(u)))
	}
	degR := make([]int32, nR)
	for u := 0; u < nL; u++ {
		for _, v := range g.Row(u) {
			degR[v]++
		}
	}
	// Queue of degree-1 left vertices.
	queue := make([]int32, 0, nL)
	for u := 0; u < nL; u++ {
		if degL[u] == 1 {
			queue = append(queue, int32(u))
		}
	}
	tryMatch := func(u int32) {
		if matchL[u] != unmatched {
			return
		}
		// Prefer the free neighbor of minimum remaining degree (classic
		// Karp–Sipser tie-break), lowest index on ties.
		best := unmatched
		var bestDeg int32
		for _, v := range g.Row(int(u)) {
			if matchR[v] != unmatched {
				continue
			}
			if best == unmatched || degR[v] < bestDeg {
				best, bestDeg = v, degR[v]
			}
		}
		if best == unmatched {
			return
		}
		matchL[u] = best
		matchR[best] = u
		// Lower neighbor degrees; enqueue fresh degree-1 left vertices.
		for _, v := range g.Row(int(u)) {
			degR[v]--
		}
		// Decrement degL of left neighbors of `best` lazily: scanning the
		// reverse adjacency would need the transpose; instead we recompute
		// degL on demand below. To keep the heuristic O(E) we accept the
		// approximation and only use the initial-degree queue plus a final
		// sweep.
		_ = bestDeg
	}
	for _, u := range queue {
		tryMatch(u)
	}
	for u := int32(0); int(u) < nL; u++ {
		tryMatch(u)
	}
	return matchL
}

// Kuhn computes a maximum matching using DFS augmenting paths with
// lookahead: before recursing, each left vertex first scans for a directly
// free right neighbor. Worst case O(V·E); fast in practice when seeded with
// Karp–Sipser.
func Kuhn(g Graph) []int32 {
	nL, nR := g.LeftCount(), g.RightCount()
	matchL := KarpSipser(g)
	matchR := make([]int32, nR)
	for i := range matchR {
		matchR[i] = unmatched
	}
	for u := 0; u < nL; u++ {
		if matchL[u] != unmatched {
			matchR[matchL[u]] = int32(u)
		}
	}
	visited := make([]int32, nR) // stamp per phase to avoid clearing
	stamp := int32(0)

	var tryAugment func(u int32) bool
	tryAugment = func(u int32) bool {
		// Lookahead pass.
		for _, v := range g.Row(int(u)) {
			if matchR[v] == unmatched {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		// Recursive pass.
		for _, v := range g.Row(int(u)) {
			if visited[v] == stamp {
				continue
			}
			visited[v] = stamp
			if tryAugment(matchR[v]) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		return false
	}
	for i := range visited {
		visited[i] = -1
	}
	for u := int32(0); int(u) < nL; u++ {
		if matchL[u] == unmatched {
			stamp++
			tryAugment(u)
		}
	}
	return matchL
}

// HopcroftKarp computes a maximum matching in O(√V · E): BFS builds layers
// from free left vertices, DFS extracts a maximal set of vertex-disjoint
// shortest augmenting paths, repeat. Seeded with Karp–Sipser.
func HopcroftKarp(g Graph) []int32 {
	return hopcroftKarp(g, 1, true)
}

// HopcroftKarpCap computes a maximum "semi-matching" where each right vertex
// may be matched to up to cap left vertices (a degree-constrained subgraph,
// equivalently max-flow with right capacities). For cap=1 this is exactly
// HopcroftKarp. The exact SINGLEPROC-UNIT algorithm asks: can all tasks be
// matched when every processor has capacity D? This routine answers it
// without materializing the D-fold replicated graph of the paper.
func HopcroftKarpCap(g Graph, cap int) []int32 {
	if cap < 1 {
		panic("matching: capacity must be >= 1")
	}
	return hopcroftKarp(g, cap, cap == 1)
}

const inf = int32(1 << 30)

func hopcroftKarp(g Graph, rcap int, seed bool) []int32 {
	nL, nR := g.LeftCount(), g.RightCount()
	matchL := make([]int32, nL)
	for i := range matchL {
		matchL[i] = unmatched
	}
	if seed && rcap == 1 {
		matchL = KarpSipser(g)
	}
	// loadR[v] = number of left vertices currently assigned to v.
	loadR := make([]int32, nR)
	// For rcap>1 a right vertex stores its matched left vertices; for
	// augmenting we only need *one* representative per BFS layer, and we
	// relocate via matchedOf lists.
	matchedOf := make([][]int32, nR)
	for u := 0; u < nL; u++ {
		if v := matchL[u]; v != unmatched {
			loadR[v]++
			matchedOf[v] = append(matchedOf[v], int32(u))
		}
	}

	distL := make([]int32, nL)
	queue := make([]int32, 0, nL)

	// BFS over alternating levels: free-left → right → (matched lefts of
	// saturated rights). Returns true if some augmenting path exists; distR
	// is implicit via distL of the matched partners.
	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < nL; u++ {
			if matchL[u] == unmatched {
				distL[u] = 0
				queue = append(queue, int32(u))
			} else {
				distL[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			cur := matchL[u]
			for _, v := range g.Row(int(u)) {
				if v == cur {
					continue // matched edge, not usable forward
				}
				if loadR[v] < int32(rcap) {
					found = true
					continue
				}
				for _, w := range matchedOf[v] {
					if distL[w] == inf {
						distL[w] = distL[u] + 1
						queue = append(queue, w)
					}
				}
			}
		}
		return found
	}

	// DFS along level-increasing edges. A matched vertex u must not revisit
	// its own matched edge (matchL[u]) as a forward edge.
	var dfs func(u int32) bool
	dfs = func(u int32) bool {
		cur := matchL[u]
		for _, v := range g.Row(int(u)) {
			if v != cur && loadR[v] < int32(rcap) {
				matchL[u] = v
				loadR[v]++
				matchedOf[v] = append(matchedOf[v], u)
				distL[u] = inf
				return true
			}
		}
		for _, v := range g.Row(int(u)) {
			if v == cur {
				continue
			}
			lst := matchedOf[v]
			for i := 0; i < len(lst); i++ {
				w := lst[i]
				if distL[w] != distL[u]+1 {
					continue
				}
				if dfs(w) {
					// w moved elsewhere; u takes its slot at v.
					// Remove w from matchedOf[v] (w relocated in its dfs).
					lst = matchedOf[v] // may have been appended to by dfs(w)
					for j := range lst {
						if lst[j] == w {
							lst[j] = lst[len(lst)-1]
							matchedOf[v] = lst[:len(lst)-1]
							break
						}
					}
					matchL[u] = v
					matchedOf[v] = append(matchedOf[v], u)
					distL[u] = inf
					return true
				}
			}
		}
		distL[u] = inf
		return false
	}

	for bfs() {
		progress := false
		for u := int32(0); int(u) < nL; u++ {
			if matchL[u] == unmatched && distL[u] == 0 {
				if dfs(u) {
					progress = true
				}
			}
		}
		if !progress {
			break
		}
	}
	return matchL
}

// PushRelabel computes a maximum matching with a FIFO push-relabel
// algorithm specialized to unit-capacity bipartite graphs, standing in for
// the code the paper's experiments used (Kaya, Langguth, Manne & Uçar [15]).
//
// The specialization takes the auction form: each right vertex carries a
// price (its push-relabel label); an unmatched left vertex pushes to its
// cheapest neighbor, evicting that neighbor's previous partner, and the
// neighbor's price rises to secondMin+1 (the relabel step). Prices above the
// cutoff 2·|V2| mean "unreachable from a free right vertex" and the left
// vertex is parked. Price wars on nearly-tight graphs can cost Θ(V·E) with
// a large constant, so the auction phase is additionally budgeted to a
// linear number of steps; whatever it leaves unmatched is finished by an
// exact augmenting-path sweep (Kuhn). The sweep certifies maximum
// cardinality no matter how the auction was cut short; on the paper's
// instance families it finds little and costs one pass.
func PushRelabel(g Graph) []int32 {
	nL, nR := g.LeftCount(), g.RightCount()
	matchL := make([]int32, nL)
	for i := range matchL {
		matchL[i] = unmatched
	}
	matchR := make([]int32, nR)
	for i := range matchR {
		matchR[i] = unmatched
	}
	price := make([]int32, nR)
	cutoff := int32(2*nR + 2)

	// Step budget: generous multiple of the input size. Beyond it the
	// auction is abandoned and the exact sweep takes over.
	edges := 0
	for u := 0; u < nL; u++ {
		edges += len(g.Row(u))
	}
	budget := 8*(nL+edges) + 64

	queue := make([]int32, 0, nL)
	for u := 0; u < nL; u++ {
		if len(g.Row(u)) > 0 {
			queue = append(queue, int32(u))
		}
	}
	var parked []int32
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		if matchL[u] != unmatched {
			continue
		}
		if budget--; budget < 0 {
			// Abandon the auction: everything still unmatched from here
			// on is parked for the exact sweep.
			for _, w := range queue[qi:] {
				if matchL[w] == unmatched {
					parked = append(parked, w)
				}
			}
			break
		}
		row := g.Row(int(u))
		best, second := unmatched, inf
		bestPrice := inf
		for _, v := range row {
			p := price[v]
			if p < bestPrice {
				second = bestPrice
				best, bestPrice = v, p
			} else if p < second {
				second = p
			}
		}
		if bestPrice >= cutoff {
			parked = append(parked, u)
			continue
		}
		prev := matchR[best]
		matchR[best] = u
		matchL[u] = best
		price[best] = second + 1 // relabel; inf+1 parks single-neighbor rows' column forever
		if second >= cutoff {
			price[best] = cutoff
		}
		if prev != unmatched {
			matchL[prev] = unmatched
			queue = append(queue, prev)
		}
	}
	// Exact cleanup pass over parked vertices.
	if len(parked) > 0 {
		augmentAll(g, matchL, matchR, parked)
	}
	return matchL
}

// augmentAll runs Kuhn augmentation from each given unmatched left vertex,
// updating matchL/matchR in place.
func augmentAll(g Graph, matchL, matchR []int32, starts []int32) {
	nR := g.RightCount()
	visited := make([]int32, nR)
	for i := range visited {
		visited[i] = -1
	}
	stamp := int32(0)
	var try func(u int32) bool
	try = func(u int32) bool {
		for _, v := range g.Row(int(u)) {
			if matchR[v] == unmatched {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		for _, v := range g.Row(int(u)) {
			if visited[v] == stamp {
				continue
			}
			visited[v] = stamp
			if try(matchR[v]) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		return false
	}
	for _, u := range starts {
		if matchL[u] == unmatched {
			stamp++
			try(u)
		}
	}
}
