// Parallel branch-and-bound engine.
//
// One engine drives all four solvers. An instance is compiled once into
// its flat search shape (internal/exact/flatcore): CSR child arrays,
// bitset pin sets, suffix bounds, and symmetry/dominance tables. The
// sequential solvers in exact.go run the same state machine on one
// goroutine with an unbounded chunk; the engine here splits the tree at a
// shallow frontier into independent subproblems (prefixes of branching
// choices), feeds them to a work-stealing worker pool — each worker owns a
// deque and a private loads/cur state, steals from a random victim when
// its deque runs dry, and re-splits stolen subproblems one level so scarce
// work keeps spreading — and shares the incumbent across workers through
// an atomic best bound, so any worker's improvement immediately tightens
// every other worker's pruning. Cancellation and the node budget fold into
// one shared atomic stopper: the budget is claimed in blocks to keep the
// hot path off the contended counter, and a watcher goroutine flips the
// stop flag when the context ends.
//
// The prune hierarchy, cheapest first:
//
//   - per node (integer arithmetic on flat arrays only, no allocation):
//     the incumbent bound, the average-load bound, the max-element bound,
//     and — on few-processor instances — the min-load refinement
//     (min current load + heaviest remaining placement);
//   - per child: symmetry dedup over interchangeable processors and the
//     dominance rule over interchangeable tasks (EqPrev: adjacent
//     positions with identical child lists branch with non-decreasing
//     child ordinals);
//   - per subproblem expansion: the completion prune — a max-flow
//     feasibility check that every remaining task can still route its
//     cheapest placement under deadline best-1 (flatcore.CompletePrune);
//   - at the root: the strong bin-packing and matching bounds
//     (internal/lb). The search closes the moment the incumbent meets the
//     strongest root bound — including before any node is expanded.
//
// Exactness is preserved: symmetry groups come from exact transposition
// checks (never hashes), and every symmetry/dominance prune discards an
// assignment only when an equal-makespan, lexicographically smaller
// equivalent survives, so the lex-min optimal assignment is always
// explored.
package exact

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/exact/flatcore"
	"semimatch/internal/hypergraph"
	"semimatch/internal/telemetry"
)

const (
	// budgetBlock caps how many node-budget units a worker claims from
	// the shared counter at once, bounding contention on the atomic; the
	// actual block is scaled down for small budgets (see newParShared).
	budgetBlock = 2048
	// splitFactor scales the shallow-frontier size: the root split aims
	// for workers*splitFactor independent subproblems.
	splitFactor = 8
	// splitSlack bounds how far below the frontier a stolen subproblem is
	// still worth re-splitting.
	splitSlack = 8
	// chunkNodes bounds how many nodes one subproblem execution may expand
	// before it must suspend (serializing its open branches back onto the
	// deque). Chunking keeps the pool fair: no worker can sink into one
	// huge subtree while a subproblem holding the optimum waits in a
	// queue, which matters whenever subproblems outnumber workers.
	chunkNodes = 32 * 1024
)

// parShared is the cross-worker state of one parallel solve.
type parShared struct {
	best      atomic.Int64 // incumbent bound, read at every node
	budget    atomic.Int64 // remaining shared node budget
	block     int64        // per-claim block size, scaled to the budget
	stop      atomic.Bool
	exhausted atomic.Bool
	cancelled atomic.Bool
	closed    atomic.Bool  // incumbent met rootLB: proven optimal, search over
	rootLB    int64        // strongest root lower bound (flatcore.Bounds.Root)
	nodes     atomic.Int64 // nodes expanded (flushed per worker)
	steals    atomic.Int64
	splits    atomic.Int64
	pending   atomic.Int64 // subproblems not yet fully processed
	frontierN atomic.Int64 // size of the initial shallow frontier
	workers   int

	mu    sync.Mutex
	bestM int64 // makespan of bestA; equals best once workers quiesce
	bestA []int32

	// Incumbent observer plumbing: obsFn is Options.Observer; obsSent is
	// the makespan of the last observation (MaxInt64 before the first),
	// loaded lock-free as the fast path of observe(); obsMu serializes
	// delivery so observations are strictly decreasing across workers.
	obsFn   func(int64, []int32)
	obsSent atomic.Int64
	obsMu   sync.Mutex

	// Progress snapshot plumbing: progFn is Options.Progress, polled at
	// the same budget-block checkpoints as the observer and rate-limited
	// to progEvery nanoseconds by a CAS on progLast, so snapshots never
	// touch the per-node hot path and never perturb node counts. progMu
	// serializes deliveries.
	progFn    telemetry.ProgressFunc
	progEvery int64
	progStart time.Time
	progLast  atomic.Int64 // unix nanos of the last claimed snapshot
	progMu    sync.Mutex

	deques []wsDeque
}

// setProgress installs the periodic progress hook before the search
// starts.
func (sh *parShared) setProgress(fn telemetry.ProgressFunc, every time.Duration) {
	if fn == nil {
		return
	}
	if every <= 0 {
		every = telemetry.DefaultProgressInterval
	}
	sh.progFn = fn
	sh.progEvery = int64(every)
	sh.progStart = time.Now()
	sh.progLast.Store(sh.progStart.UnixNano())
}

// progressTick emits a snapshot if at least progEvery has elapsed since
// the last one; the CAS lets exactly one racing worker claim each
// interval. Called at budget-block boundaries only.
func (sh *parShared) progressTick() {
	if sh.progFn == nil {
		return
	}
	now := time.Now().UnixNano()
	last := sh.progLast.Load()
	if now-last < sh.progEvery || !sh.progLast.CompareAndSwap(last, now) {
		return
	}
	sh.emitProgress()
}

// progressFinal emits one last snapshot unconditionally; the solvers
// call it after the pool quiesces so a finished solve always reports
// its terminal state.
func (sh *parShared) progressFinal() {
	if sh.progFn == nil {
		return
	}
	sh.emitProgress()
}

func (sh *parShared) emitProgress() {
	// The counters are read under progMu so deliveries are monotone:
	// two workers claiming back-to-back intervals cannot publish their
	// snapshots in the wrong order.
	sh.progMu.Lock()
	defer sh.progMu.Unlock()
	elapsed := time.Since(sh.progStart)
	nodes := sh.nodes.Load()
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(nodes) / s
	}
	inc := sh.best.Load()
	gap := -1.0
	if sh.rootLB > 0 {
		gap = float64(inc-sh.rootLB) / float64(sh.rootLB)
	} else if inc == 0 {
		gap = 0
	}
	p := telemetry.SearchProgress{
		Elapsed:     elapsed,
		Nodes:       nodes,
		NodesPerSec: rate,
		Incumbent:   inc,
		Bound:       sh.rootLB,
		Gap:         gap,
		Workers:     sh.workers,
		Steals:      sh.steals.Load(),
		Subproblems: sh.frontierN.Load() + sh.splits.Load(),
		Pending:     sh.pending.Load(),
	}
	if len(sh.deques) > 1 {
		p.DequeDepths = make([]int, len(sh.deques))
		for i := range sh.deques {
			p.DequeDepths[i] = sh.deques[i].depth()
		}
	}
	sh.progFn(p)
}

// observe delivers the current incumbent to the observer if it improves
// on the last observation. It is called at budget-block claims (every
// sh.block nodes per worker, never per node) and once before the solver
// returns, so the hot search loop stays observation-free. The double
// check under obsMu keeps deliveries strictly decreasing even when
// several workers race past the lock-free fast path.
func (sh *parShared) observe() {
	if sh.obsFn == nil || sh.best.Load() >= sh.obsSent.Load() {
		return
	}
	sh.obsMu.Lock()
	defer sh.obsMu.Unlock()
	sh.mu.Lock()
	m := sh.bestM
	var a []int32
	if m < sh.obsSent.Load() {
		a = append([]int32(nil), sh.bestA...)
	}
	sh.mu.Unlock()
	if a != nil {
		sh.obsSent.Store(m)
		sh.obsFn(m, a)
	}
}

func newParShared(incumbent []int32, m int64, maxNodes int64, workers int) *parShared {
	sh := &parShared{
		bestM:   m,
		bestA:   append([]int32(nil), incumbent...),
		deques:  make([]wsDeque, workers),
		workers: workers,
	}
	sh.best.Store(m)
	sh.budget.Store(maxNodes)
	sh.obsSent.Store(int64(^uint64(0) >> 1)) // MaxInt64: nothing observed yet
	// Scale the claim block to the budget so small user budgets are not
	// stranded inside per-worker claims: with W workers at most
	// W·block ≈ budget/8 can sit unspent when the shared counter hits
	// zero. Unspent remainders are also refunded on flush.
	sh.block = maxNodes / int64(8*workers)
	if sh.block > budgetBlock {
		sh.block = budgetBlock
	}
	if sh.block < 64 {
		sh.block = 64
	}
	return sh
}

// offer publishes an improved complete schedule. The atomic bound and the
// mutex-guarded assignment are reconciled by bestM: concurrent improvers
// may interleave their CAS and their copy, but only a strictly better
// makespan ever overwrites bestA, so bestA always matches bestM and bestM
// converges to the minimum offered. An incumbent meeting the root lower
// bound closes the whole search: nothing better can exist.
func (sh *parShared) offer(m int64, a []int32) {
	for {
		cur := sh.best.Load()
		if m >= cur {
			return
		}
		if sh.best.CompareAndSwap(cur, m) {
			break
		}
	}
	sh.mu.Lock()
	if m < sh.bestM {
		sh.bestM = m
		copy(sh.bestA, a)
	}
	sh.mu.Unlock()
	if m <= sh.rootLB {
		sh.closed.Store(true)
		sh.stop.Store(true)
	}
}

// closeIfOptimal closes the search before it starts when the initial
// (greedy) incumbent already meets the root lower bound — the strong
// packing/matching bounds make this a common exit on easy instances.
func (sh *parShared) closeIfOptimal() {
	if sh.bestM <= sh.rootLB {
		sh.closed.Store(true)
		sh.stop.Store(true)
	}
}

// claimBlock takes up to budgetBlock nodes from the shared budget,
// returning 0 (and flipping the stop flag) when the budget is exhausted.
func (sh *parShared) claimBlock() int64 {
	for {
		cur := sh.budget.Load()
		if cur <= 0 {
			sh.exhausted.Store(true)
			sh.stop.Store(true)
			return 0
		}
		n := sh.block
		if cur < n {
			n = cur
		}
		if sh.budget.CompareAndSwap(cur, cur-n) {
			return n
		}
	}
}

func (sh *parShared) err(ctx context.Context) error {
	if sh.closed.Load() {
		// The incumbent met the root lower bound: the result is proven
		// optimal no matter why the stop flag is also set.
		return nil
	}
	if sh.cancelled.Load() {
		return fmt.Errorf("%w: %w", ErrCancelled, ctx.Err())
	}
	if sh.exhausted.Load() {
		return ErrLimit
	}
	return nil
}

// ticker is a worker's private view of the shared stopper: it spends a
// locally claimed budget block per node and polls the shared stop flag (a
// single uncontended atomic load) every node.
type ticker struct {
	sh       *parShared
	local    int64
	expanded int64
}

// node accounts one search-tree node and reports whether the search must
// unwind.
func (tk *ticker) node() bool {
	if tk.sh.stop.Load() {
		return true
	}
	if tk.local == 0 {
		// Block boundary: the only periodic checkpoint a worker hits, so
		// the incumbent observer and the progress hook are polled here
		// too. With a progress hook installed the in-flight expansion
		// count is flushed first so snapshots see fresh totals; the flush
		// moves counts a worker would publish anyway, so final node
		// counts are bit-identical with and without the hook.
		tk.sh.observe()
		if tk.sh.progFn != nil {
			tk.sh.nodes.Add(tk.expanded)
			tk.expanded = 0
			tk.sh.progressTick()
		}
		if tk.local = tk.sh.claimBlock(); tk.local == 0 {
			return true
		}
	}
	tk.local--
	tk.expanded++
	return false
}

// flush publishes the node count and refunds any unspent claimed budget
// (mattering for genFrontier's short-lived ticker and for small budgets).
func (tk *ticker) flush() {
	tk.sh.nodes.Add(tk.expanded)
	tk.expanded = 0
	if tk.local > 0 {
		tk.sh.budget.Add(tk.local)
		tk.local = 0
	}
}

// wsDeque is one worker's subproblem deque: pushes append at the tail,
// and both the owner and thieves consume from the head. Head-first
// consumption makes each deque FIFO, which combines with chunked
// execution into round-robin fairness over subproblems — suspended
// continuations requeue behind older work, so nothing starves.
// Subproblems are coarse (whole subtrees or chunk continuations), so a
// mutex is plenty.
type wsDeque struct {
	mu    sync.Mutex
	head  int
	items [][]int32
}

// depth reports how many subproblems are currently queued — the live
// introspection view of a worker's backlog.
func (d *wsDeque) depth() int {
	d.mu.Lock()
	n := len(d.items) - d.head
	d.mu.Unlock()
	return n
}

func (d *wsDeque) push(p []int32) {
	d.mu.Lock()
	d.items = append(d.items, p)
	d.mu.Unlock()
}

// take removes the head subproblem; used by the owner (pop) and by
// thieves (steal).
func (d *wsDeque) take() ([]int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.items) {
		if d.head > 0 {
			d.head, d.items = 0, d.items[:0]
		}
		return nil, false
	}
	p := d.items[d.head]
	d.items[d.head] = nil
	d.head++
	if d.head == len(d.items) {
		d.head, d.items = 0, d.items[:0]
	}
	return p, true
}

// xorshift is a tiny per-worker PRNG for victim selection; stealing needs
// decorrelation, not quality.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// parSearcher abstracts the two problem shapes (SINGLEPROC bipartite,
// MULTIPROC hypergraph) for the pool skeleton. Implementations carry the
// worker-local mutable state; the pool creates one per worker. Dispatch is
// per subproblem, never per node.
type parSearcher interface {
	// run replays prefix and explores its subtree for up to the state's
	// chunk limit. A nil return means the subtree is exhausted (or the
	// search stopped); otherwise it returns continuation prefixes covering
	// exactly the unexplored remainder, for requeueing.
	run(prefix []int32, tk *ticker) [][]int32
	// expand replays prefix and returns its surviving child choices
	// (ordinals into the node's ordered child list), or nil when the node
	// is pruned or complete. Accounts one node on tk.
	expand(prefix []int32, tk *ticker) []int32
	// depth returns the tree depth (number of tasks).
	depth() int
}

// runPool drives the work-stealing pool over an initial frontier and
// blocks until the search is exhausted or stopped.
func runPool(sh *parShared, newSearcher func() parSearcher, frontier [][]int32, workers, frontierDepth int) {
	sh.pending.Store(int64(len(frontier)))
	sh.frontierN.Store(int64(len(frontier)))
	for i, p := range frontier {
		sh.deques[i%workers].push(p)
	}
	splitCap := frontierDepth + splitSlack
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := newSearcher()
			tk := &ticker{sh: sh}
			defer tk.flush()
			rng := xorshift(0x9E3779B97F4A7C15 ^ uint64(id+1)*0xBF58476D1CE4E5B9)
			idleSweeps := 0
			for {
				if sh.stop.Load() {
					return
				}
				sp, ok := sh.deques[id].take()
				stolen := false
				if !ok {
					sp, ok = stealSweep(sh, id, &rng)
					stolen = ok
					if !ok {
						if sh.pending.Load() == 0 {
							return
						}
						idleSweeps++
						if idleSweeps%64 == 0 {
							time.Sleep(100 * time.Microsecond)
						} else {
							runtime.Gosched()
						}
						continue
					}
				}
				idleSweeps = 0
				if stolen {
					sh.steals.Add(1)
					// Work was scarce enough that somebody had to steal:
					// re-split the stolen subtree one level so the spare
					// parts are themselves stealable.
					if len(sp) < splitCap && len(sp) < s.depth()-1 {
						kids := s.expand(sp, tk)
						sh.pending.Add(int64(len(kids)) - 1)
						if len(kids) == 0 {
							continue // pruned outright; pending already settled
						}
						sh.splits.Add(1)
						for _, c := range kids[1:] {
							child := make([]int32, len(sp)+1)
							copy(child, sp)
							child[len(sp)] = c
							sh.deques[id].push(child)
						}
						child := make([]int32, len(sp)+1)
						copy(child, sp)
						child[len(sp)] = kids[0]
						sp = child
					}
				}
				// pending is raised before the continuations hit the
				// deque so it never undercounts outstanding work (a
				// racing worker could otherwise observe zero and exit).
				conts := s.run(sp, tk)
				sh.pending.Add(int64(len(conts)) - 1)
				for _, c := range conts {
					sh.deques[id].push(c)
				}
			}
		}(w)
	}
	wg.Wait()
}

func stealSweep(sh *parShared, id int, rng *xorshift) ([]int32, bool) {
	n := len(sh.deques)
	off := int(rng.next() % uint64(n))
	for i := 0; i < n; i++ {
		v := (off + i) % n
		if v == id {
			continue
		}
		if p, ok := sh.deques[v].take(); ok {
			return p, true
		}
	}
	return nil, false
}

// genFrontier breadth-first-expands the tree root until at least target
// open subproblems exist (or the whole tree is exhausted — tiny instances
// finish right here). Complete prefixes are offered as incumbents by
// expand's caller (run handles them), so the returned frontier holds only
// interior nodes. Returns the frontier and its maximum depth.
func genFrontier(s parSearcher, tk *ticker, target int) ([][]int32, int) {
	queue := [][]int32{{}}
	head := 0
	n := s.depth()
	for head < len(queue) && len(queue)-head < target {
		if tk.sh.stop.Load() {
			break
		}
		node := queue[head]
		head++
		if len(node) == n {
			// A complete assignment surfaced during the shallow split
			// (tiny instance): evaluate it as a leaf.
			s.run(node, tk)
			continue
		}
		for _, c := range s.expand(node, tk) {
			child := make([]int32, len(node)+1)
			copy(child, node)
			child[len(node)] = c
			queue = append(queue, child)
		}
	}
	frontier := queue[head:]
	maxDepth := 0
	for _, p := range frontier {
		if len(p) > maxDepth {
			maxDepth = len(p)
		}
	}
	return frontier, maxDepth
}

// watchCancel flips the shared stop flag when ctx ends; the returned
// release func must be called before reading the result.
func watchCancel(ctx context.Context, sh *parShared) (release func()) {
	done := ctx.Done()
	if done == nil {
		return func() {}
	}
	quit := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-done:
			sh.cancelled.Store(true)
			sh.stop.Store(true)
		case <-quit:
		}
	}()
	return func() { once.Do(func() { close(quit) }); wg.Wait() }
}

// --- SINGLEPROC ---

// spState is one worker's mutable SINGLEPROC search state over the shared
// compiled shape. Everything the hot loop touches is a flat array sized at
// construction; node expansion allocates nothing.
type spState struct {
	pr    *flatcore.SP
	sh    *parShared
	loads []int64
	cur   []int32
	total int64
	// chosen[i] is the child ordinal applied at position i (replayed
	// prefix or live DFS); the dominance rule reads chosen[i-1].
	chosen []int32
	// ords/entry are the explicit DFS stack scratch: the child ordinal
	// applied at each depth, and the partial makespan at each node entry.
	ords  []int32
	entry []int64
	// chunkLimit bounds one run() call's node count (chunkNodes in the
	// pool; effectively unbounded for the sequential solvers).
	chunkLimit int64
}

func newSPState(pr *flatcore.SP, sh *parShared) *spState {
	// cur needs no initialization: every position is written by replay or
	// the DFS before a complete assignment is offered.
	return &spState{
		pr:         pr,
		sh:         sh,
		loads:      make([]int64, pr.P),
		cur:        make([]int32, pr.N),
		chosen:     make([]int32, pr.N),
		ords:       make([]int32, pr.N),
		entry:      make([]int64, pr.N+1),
		chunkLimit: chunkNodes,
	}
}

func (s *spState) depth() int { return s.pr.N }

// replay rebuilds loads/cur/chosen/total from a choice prefix and returns
// the partial makespan.
func (s *spState) replay(prefix []int32) int64 {
	for i := range s.loads {
		s.loads[i] = 0
	}
	s.total = 0
	var curMax int64
	pr := s.pr
	for d, ord := range prefix {
		k := int(pr.ChildPtr[d]) + int(ord)
		proc, wt := pr.ChildProc[k], pr.ChildWt[k]
		s.loads[proc] += wt
		s.total += wt
		if s.loads[proc] > curMax {
			curMax = s.loads[proc]
		}
		s.cur[pr.Order[d]] = proc
		s.chosen[d] = ord
	}
	return curMax
}

// dupSibling reports whether the child at flat index base+k is symmetric
// to an earlier sibling: same weight onto an interchangeable processor
// carrying the same load. The earlier sibling's subtree is isomorphic, so
// this one is redundant. Equality is transitive, so checking against all
// earlier siblings (explored or themselves skipped) is sound.
func (s *spState) dupSibling(base, k int) bool {
	pr := s.pr
	c := pr.ChildClass[base+k]
	if c < 0 {
		return false
	}
	lk := s.loads[pr.ChildProc[base+k]]
	for k2 := 0; k2 < k; k2++ {
		if pr.ChildClass[base+k2] == c && s.loads[pr.ChildProc[base+k2]] == lk {
			return true
		}
	}
	return false
}

// bound reports whether position i's subtree can still beat the incumbent:
// partial makespan, average-load on the remainder, max-element, and (on
// few-processor instances) the min-load refinement — the heaviest
// remaining placement must land on top of at least the lightest load.
func (s *spState) bound(i int, curMax int64) bool {
	best := s.sh.best.Load()
	if curMax >= best {
		return false
	}
	pr := s.pr
	if (s.total+pr.SuffixAvg[i]+int64(pr.P)-1)/int64(pr.P) >= best {
		return false
	}
	if pr.SuffixMax[i] >= best {
		return false
	}
	if pr.MinLoadScan {
		minLoad := s.loads[0]
		for _, l := range s.loads[1:] {
			if l < minLoad {
				minLoad = l
			}
		}
		if minLoad+pr.SuffixMax[i] >= best {
			return false
		}
	}
	return true
}

// nextChild returns the first surviving child ordinal ≥ from at position
// i (symmetry duplicates skipped, dominance floor applied), or -1.
func (s *spState) nextChild(i, from int) int {
	pr := s.pr
	if pr.EqPrev[i] {
		// Interchangeable with the previous task: only branch with a child
		// ordinal ≥ its choice (the lex-min representative of the orbit).
		if mo := int(s.chosen[i-1]); from < mo {
			from = mo
		}
	}
	base, end := int(pr.ChildPtr[i]), int(pr.ChildPtr[i+1])
	for k := from; k < end-base; k++ {
		if pr.ChildClass != nil && s.dupSibling(base, k) {
			continue
		}
		return k
	}
	return -1
}

func (s *spState) expand(prefix []int32, tk *ticker) []int32 {
	curMax := s.replay(prefix)
	i := len(prefix)
	if tk.node() {
		return nil
	}
	if i == s.pr.N {
		s.sh.offer(curMax, s.cur)
		return nil
	}
	if !s.bound(i, curMax) {
		return nil
	}
	// Expansions are rare (frontier generation and steal re-splits), so
	// the strong completion prune is worth a max-flow here: can every
	// remaining task still route its cheapest placement under best-1?
	if s.pr.UseFlow && s.pr.CompletePrune(s.loads, i, s.sh.best.Load()) {
		return nil
	}
	var out []int32
	for k := s.nextChild(i, 0); k >= 0; k = s.nextChild(i, k+1) {
		out = append(out, int32(k))
	}
	return out
}

// run explores prefix's subtree for up to chunkLimit nodes with an
// explicit-stack DFS. On chunk exhaustion it suspends: the unexplored
// remainder — the current node plus every untried sibling on the path —
// is serialized into continuation prefixes and returned for requeueing.
func (s *spState) run(prefix []int32, tk *ticker) [][]int32 {
	pr := s.pr
	base := len(prefix)
	entry := s.entry[:pr.N-base+1]
	ords := s.ords[:max(pr.N-base, 0)]
	entry[0] = s.replay(prefix)
	chunk := s.chunkLimit
	depth := 0
	descend := true
	for {
		if descend {
			if tk.node() {
				return nil // stopped; loads are rebuilt by the next replay
			}
			chunk--
			i := base + depth
			if i == pr.N {
				s.sh.offer(entry[depth], s.cur)
				descend = false
				continue
			}
			if !s.bound(i, entry[depth]) {
				descend = false
				continue
			}
			if chunk <= 0 {
				return s.suspend(prefix, ords[:depth])
			}
			k := s.nextChild(i, 0)
			if k < 0 {
				descend = false
				continue
			}
			ords[depth] = int32(k)
			entry[depth+1] = s.apply(i, k, entry[depth])
			depth++
			continue
		}
		if depth == 0 {
			return nil
		}
		depth--
		i := base + depth
		k := int(ords[depth])
		s.undo(i, k)
		if k = s.nextChild(i, k+1); k < 0 {
			continue
		}
		ords[depth] = int32(k)
		entry[depth+1] = s.apply(i, k, entry[depth])
		depth++
		descend = true
	}
}

// apply places child k of position i and returns the new partial
// makespan.
func (s *spState) apply(i, k int, curMax int64) int64 {
	pr := s.pr
	kk := int(pr.ChildPtr[i]) + k
	proc, wt := pr.ChildProc[kk], pr.ChildWt[kk]
	s.loads[proc] += wt
	s.total += wt
	s.cur[pr.Order[i]] = proc
	s.chosen[i] = int32(k)
	if s.loads[proc] > curMax {
		return s.loads[proc]
	}
	return curMax
}

func (s *spState) undo(i, k int) {
	pr := s.pr
	kk := int(pr.ChildPtr[i]) + k
	s.loads[pr.ChildProc[kk]] -= pr.ChildWt[kk]
	s.total -= pr.ChildWt[kk]
}

// suspend serializes the unexplored remainder of a chunked-out dive: the
// current node itself, plus — unwinding the applied path — every untried
// sibling at each level, symmetry-filtered under the loads of its own
// level.
func (s *spState) suspend(prefix []int32, ords []int32) [][]int32 {
	conts := [][]int32{concatPrefix(prefix, ords)}
	for d := len(ords) - 1; d >= 0; d-- {
		i := len(prefix) + d
		k := int(ords[d])
		s.undo(i, k)
		for k = s.nextChild(i, k+1); k >= 0; k = s.nextChild(i, k+1) {
			c := concatPrefix(prefix, ords[:d])
			conts = append(conts, append(c, int32(k)))
		}
	}
	return conts
}

func concatPrefix(prefix, ords []int32) []int32 {
	out := make([]int32, 0, len(prefix)+len(ords)+1)
	out = append(out, prefix...)
	return append(out, ords...)
}

// SolveSingleProcPar is SolveSingleProc on the parallel work-stealing
// branch-and-bound engine.
func SolveSingleProcPar(g *bipartite.Graph, opts Options) (core.Assignment, int64, error) {
	return SolveSingleProcParCtx(context.Background(), g, opts)
}

// SolveSingleProcParCtx computes an optimal SINGLEPROC schedule on the
// parallel engine: the search tree is split at a shallow frontier across
// Options.Workers work-stealing workers sharing one incumbent bound and
// one node budget. The error contract matches SolveSingleProcCtx: on
// budget exhaustion or cancellation the best incumbent found by any worker
// is returned alongside ErrLimit / ErrCancelled. The optimal makespan is
// deterministic; which optimal schedule is returned may vary across runs
// when several exist.
func SolveSingleProcParCtx(ctx context.Context, g *bipartite.Graph, opts Options) (core.Assignment, int64, error) {
	n, p := g.NLeft, g.NRight
	if p == 0 && n > 0 {
		return nil, 0, fmt.Errorf("exact: no processors")
	}
	for t := 0; t < n; t++ {
		if g.Degree(t) == 0 {
			return nil, 0, fmt.Errorf("exact: task %d has no eligible processor", t)
		}
	}
	if n == 0 {
		return core.Assignment{}, 0, nil
	}

	compileStart := time.Now()
	pr := flatcore.CompileSP(g)
	compileSpan(opts.Trace, compileStart, pr.BoundsWall)
	gs := opts.Trace.StartChild("greedy")
	inc := core.SortedGreedy(g, core.GreedyOptions{})
	m0 := core.Makespan(g, inc)
	gs.SetAttr("makespan", m0)
	var warm bool
	if inc, m0, warm = opts.seedSP(g, inc, m0); warm {
		gs.SetAttr("warm_start", m0)
	}
	gs.End()
	workers := opts.workers()
	sh := newParShared(inc, m0, opts.maxNodes(), workers)
	sh.rootLB = pr.Bounds.Root()
	sh.obsFn = opts.Observer
	sh.setProgress(opts.Progress, opts.ProgressInterval)
	sh.closeIfOptimal()
	sh.observe() // the initial greedy incumbent
	ss := startSearchSpan(opts.Trace, sh)
	var frontier [][]int32
	if !sh.closed.Load() {
		release := watchCancel(ctx, sh)
		defer release()
		if workers == 1 {
			// One worker gains nothing from frontier splitting; run the same
			// uninterrupted DFS as the sequential solver so node counts — and
			// the warm-start pruning guarantee — coincide with it.
			s := newSPState(pr, sh)
			s.chunkLimit = seqChunk
			tk := &ticker{sh: sh}
			s.run(nil, tk)
			tk.flush()
		} else {
			root := newSPState(pr, sh)
			tk := &ticker{sh: sh}
			var fdepth int
			frontier, fdepth = genFrontier(root, tk, workers*splitFactor)
			tk.flush()
			if len(frontier) > 0 && !sh.stop.Load() {
				runPool(sh, func() parSearcher { return newSPState(pr, sh) }, frontier, workers, fdepth)
			}
		}
		release()
	}
	sh.observe() // flush the final incumbent to the observer
	sh.progressFinal()
	finishSearch(opts, ss, sh, pr.Bounds, workers, int64(len(frontier))+sh.splits.Load())
	return append(core.Assignment(nil), sh.bestA...), sh.bestM, sh.err(ctx)
}

// --- MULTIPROC ---

// mpState is one worker's mutable MULTIPROC search state over the shared
// compiled shape.
type mpState struct {
	pr    *flatcore.MP
	sh    *parShared
	loads []int64
	cur   []int32
	total int64
	// chosen[i] is the child ordinal applied at position i; the dominance
	// rule reads chosen[i-1].
	chosen []int32
	// ords/entry are the explicit DFS stack scratch: the child ordinal
	// applied at each depth, and the partial makespan at each node entry.
	ords  []int32
	entry []int64
	// scratch pair buffers for the symmetry comparison.
	pairA, pairB []symPair
	// chunkLimit mirrors spState.chunkLimit.
	chunkLimit int64
}

type symPair struct {
	key  int32
	load int64
}

func newMPState(pr *flatcore.MP, sh *parShared) *mpState {
	return &mpState{
		pr:         pr,
		sh:         sh,
		loads:      make([]int64, pr.P),
		cur:        make([]int32, pr.N),
		chosen:     make([]int32, pr.N),
		ords:       make([]int32, pr.N),
		entry:      make([]int64, pr.N+1),
		pairA:      make([]symPair, 0, pr.MaxSize),
		pairB:      make([]symPair, 0, pr.MaxSize),
		chunkLimit: chunkNodes,
	}
}

func (s *mpState) depth() int { return s.pr.N }

func (s *mpState) replay(prefix []int32) int64 {
	for i := range s.loads {
		s.loads[i] = 0
	}
	s.total = 0
	var curMax int64
	pr := s.pr
	for d, ord := range prefix {
		k := int(pr.ChildPtr[d]) + int(ord)
		e, w := pr.ChildEdge[k], pr.ChildWt[k]
		for _, u := range pr.Pins[pr.PinPtr[e]:pr.PinPtr[e+1]] {
			s.loads[u] += w
			if s.loads[u] > curMax {
				curMax = s.loads[u]
			}
		}
		s.total += pr.ChildCost[k]
		s.cur[pr.Order[d]] = e
		s.chosen[d] = ord
	}
	return curMax
}

// fillPairs builds edge e's (group-or-identity, current-load) multiset,
// insertion-sorted. Processors without a symmetry group keep their
// identity (encoded disjointly as ^proc), so equality of two multisets
// certifies an automorphism mapping one edge to the other while fixing
// every current load.
func (s *mpState) fillPairs(dst []symPair, e int32) []symPair {
	dst = dst[:0]
	pr := s.pr
	for _, u := range pr.Pins[pr.PinPtr[e]:pr.PinPtr[e+1]] {
		k := pr.Sig[u]
		if k < 0 {
			k = ^u
		}
		pair := symPair{key: k, load: s.loads[u]}
		j := len(dst)
		dst = append(dst, pair)
		for j > 0 && (dst[j-1].key > pair.key || (dst[j-1].key == pair.key && dst[j-1].load > pair.load)) {
			dst[j] = dst[j-1]
			j--
		}
		dst[j] = pair
	}
	return dst
}

// dupSibling reports whether the child at flat index base+k is symmetric
// to an earlier sibling edge: statically interchangeable (same ChildClass)
// and an automorphism maps one pin set to the other preserving current
// loads. Identical pin bitsets short-circuit the multiset comparison:
// same class means same weight, so equal pin sets are literal duplicate
// configurations.
func (s *mpState) dupSibling(base, k int) bool {
	pr := s.pr
	c := pr.ChildClass[base+k]
	if c < 0 {
		return false
	}
	e := pr.ChildEdge[base+k]
	pins := pr.Pins[pr.PinPtr[e]:pr.PinPtr[e+1]]
	if len(pins) == 1 {
		// Singleton fast path (identical-machines shape): the dynamic
		// condition degenerates to one load compare.
		lk := s.loads[pins[0]]
		for k2 := 0; k2 < k; k2++ {
			if pr.ChildClass[base+k2] == c {
				e2 := pr.ChildEdge[base+k2]
				if s.loads[pr.Pins[pr.PinPtr[e2]]] == lk {
					return true
				}
			}
		}
		return false
	}
	words := pr.PinBits[int(e)*pr.PinWords : (int(e)+1)*pr.PinWords]
	var filledA bool
	for k2 := 0; k2 < k; k2++ {
		if pr.ChildClass[base+k2] != c {
			continue
		}
		e2 := pr.ChildEdge[base+k2]
		if flatcore.EqualWords(words, pr.PinBits[int(e2)*pr.PinWords:(int(e2)+1)*pr.PinWords]) {
			return true
		}
		if !filledA {
			s.pairA = s.fillPairs(s.pairA, e)
			filledA = true
		}
		s.pairB = s.fillPairs(s.pairB, e2)
		same := true
		for j := range s.pairA {
			if s.pairA[j] != s.pairB[j] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// bound mirrors spState.bound.
func (s *mpState) bound(i int, curMax int64) bool {
	best := s.sh.best.Load()
	if curMax >= best {
		return false
	}
	pr := s.pr
	if (s.total+pr.SuffixAvg[i]+int64(pr.P)-1)/int64(pr.P) >= best {
		return false
	}
	if pr.SuffixMax[i] >= best {
		return false
	}
	if pr.MinLoadScan {
		minLoad := s.loads[0]
		for _, l := range s.loads[1:] {
			if l < minLoad {
				minLoad = l
			}
		}
		if minLoad+pr.SuffixMax[i] >= best {
			return false
		}
	}
	return true
}

func (s *mpState) expand(prefix []int32, tk *ticker) []int32 {
	curMax := s.replay(prefix)
	i := len(prefix)
	if tk.node() {
		return nil
	}
	if i == s.pr.N {
		s.sh.offer(curMax, s.cur)
		return nil
	}
	if !s.bound(i, curMax) {
		return nil
	}
	if s.pr.UseFlow && s.pr.CompletePrune(s.loads, i, s.sh.best.Load()) {
		return nil
	}
	var out []int32
	for k := s.nextChild(i, 0); k >= 0; k = s.nextChild(i, k+1) {
		out = append(out, int32(k))
	}
	return out
}

// nextChild returns the first surviving child ordinal ≥ from at position
// i (symmetry duplicates skipped, dominance floor applied), or -1.
func (s *mpState) nextChild(i, from int) int {
	pr := s.pr
	if pr.EqPrev[i] {
		if mo := int(s.chosen[i-1]); from < mo {
			from = mo
		}
	}
	base, end := int(pr.ChildPtr[i]), int(pr.ChildPtr[i+1])
	for k := from; k < end-base; k++ {
		if pr.ChildClass != nil && s.dupSibling(base, k) {
			continue
		}
		return k
	}
	return -1
}

// run explores prefix's subtree for up to chunkLimit nodes with an
// explicit-stack DFS; see spState.run for the suspension contract.
func (s *mpState) run(prefix []int32, tk *ticker) [][]int32 {
	pr := s.pr
	base := len(prefix)
	entry := s.entry[:pr.N-base+1]
	ords := s.ords[:max(pr.N-base, 0)]
	entry[0] = s.replay(prefix)
	chunk := s.chunkLimit
	depth := 0
	descend := true
	for {
		if descend {
			if tk.node() {
				return nil // stopped; loads are rebuilt by the next replay
			}
			chunk--
			i := base + depth
			if i == pr.N {
				s.sh.offer(entry[depth], s.cur)
				descend = false
				continue
			}
			if !s.bound(i, entry[depth]) {
				descend = false
				continue
			}
			if chunk <= 0 {
				return s.suspend(prefix, ords[:depth])
			}
			k := s.nextChild(i, 0)
			if k < 0 {
				descend = false
				continue
			}
			ords[depth] = int32(k)
			entry[depth+1] = s.apply(i, k, entry[depth])
			depth++
			continue
		}
		if depth == 0 {
			return nil
		}
		depth--
		i := base + depth
		k := int(ords[depth])
		s.undo(i, k)
		if k = s.nextChild(i, k+1); k < 0 {
			continue
		}
		ords[depth] = int32(k)
		entry[depth+1] = s.apply(i, k, entry[depth])
		depth++
		descend = true
	}
}

// apply places child k of position i and returns the new partial
// makespan.
func (s *mpState) apply(i, k int, curMax int64) int64 {
	pr := s.pr
	kk := int(pr.ChildPtr[i]) + k
	e, w := pr.ChildEdge[kk], pr.ChildWt[kk]
	for _, u := range pr.Pins[pr.PinPtr[e]:pr.PinPtr[e+1]] {
		s.loads[u] += w
		if s.loads[u] > curMax {
			curMax = s.loads[u]
		}
	}
	s.total += pr.ChildCost[kk]
	s.cur[pr.Order[i]] = e
	s.chosen[i] = int32(k)
	return curMax
}

func (s *mpState) undo(i, k int) {
	pr := s.pr
	kk := int(pr.ChildPtr[i]) + k
	e, w := pr.ChildEdge[kk], pr.ChildWt[kk]
	for _, u := range pr.Pins[pr.PinPtr[e]:pr.PinPtr[e+1]] {
		s.loads[u] -= w
	}
	s.total -= pr.ChildCost[kk]
}

// suspend serializes the unexplored remainder of a chunked-out dive; see
// spState.suspend.
func (s *mpState) suspend(prefix []int32, ords []int32) [][]int32 {
	conts := [][]int32{concatPrefix(prefix, ords)}
	for d := len(ords) - 1; d >= 0; d-- {
		i := len(prefix) + d
		k := int(ords[d])
		s.undo(i, k)
		for k = s.nextChild(i, k+1); k >= 0; k = s.nextChild(i, k+1) {
			c := concatPrefix(prefix, ords[:d])
			conts = append(conts, append(c, int32(k)))
		}
	}
	return conts
}

// SolveMultiProcPar is SolveMultiProc on the parallel work-stealing
// branch-and-bound engine.
func SolveMultiProcPar(h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, int64, error) {
	return SolveMultiProcParCtx(context.Background(), h, opts)
}

// SolveMultiProcParCtx computes an optimal MULTIPROC schedule on the
// parallel engine; see SolveSingleProcParCtx for the concurrency and
// error contract.
func SolveMultiProcParCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, int64, error) {
	n, p := h.NTasks, h.NProcs
	if n == 0 {
		return core.HyperAssignment{}, 0, nil
	}
	if p == 0 {
		return nil, 0, fmt.Errorf("exact: no processors")
	}
	for t := 0; t < n; t++ {
		if h.TaskDegree(t) == 0 {
			return nil, 0, fmt.Errorf("exact: task %d has no configuration", t)
		}
	}

	compileStart := time.Now()
	pr := flatcore.CompileMP(h)
	compileSpan(opts.Trace, compileStart, pr.BoundsWall)
	gs := opts.Trace.StartChild("greedy")
	inc := core.SortedGreedyHyp(h, core.HyperOptions{})
	m0 := core.HyperMakespan(h, inc)
	gs.SetAttr("makespan", m0)
	var warm bool
	if inc, m0, warm = opts.seedMP(h, inc, m0); warm {
		gs.SetAttr("warm_start", m0)
	}
	gs.End()
	workers := opts.workers()
	sh := newParShared(inc, m0, opts.maxNodes(), workers)
	sh.rootLB = pr.Bounds.Root()
	sh.obsFn = opts.Observer
	sh.setProgress(opts.Progress, opts.ProgressInterval)
	sh.closeIfOptimal()
	sh.observe() // the initial greedy incumbent
	ss := startSearchSpan(opts.Trace, sh)
	var frontier [][]int32
	if !sh.closed.Load() {
		release := watchCancel(ctx, sh)
		defer release()
		if workers == 1 {
			// See SolveSingleProcParCtx: one worker runs the sequential DFS.
			s := newMPState(pr, sh)
			s.chunkLimit = seqChunk
			tk := &ticker{sh: sh}
			s.run(nil, tk)
			tk.flush()
		} else {
			root := newMPState(pr, sh)
			tk := &ticker{sh: sh}
			var fdepth int
			frontier, fdepth = genFrontier(root, tk, workers*splitFactor)
			tk.flush()
			if len(frontier) > 0 && !sh.stop.Load() {
				runPool(sh, func() parSearcher { return newMPState(pr, sh) }, frontier, workers, fdepth)
			}
		}
		release()
	}
	sh.observe() // flush the final incumbent to the observer
	sh.progressFinal()
	finishSearch(opts, ss, sh, pr.Bounds, workers, int64(len(frontier))+sh.splits.Load())
	return append(core.HyperAssignment(nil), sh.bestA...), sh.bestM, sh.err(ctx)
}
