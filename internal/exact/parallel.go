// Parallel branch-and-bound engine.
//
// The sequential solvers in exact.go explore one search tree on one
// goroutine. The engine here splits the same tree at a shallow frontier
// into independent subproblems (prefixes of branching choices), feeds them
// to a work-stealing worker pool — each worker owns a deque and a private
// loads/cur state, steals from a random victim when its deque runs dry,
// and re-splits stolen subproblems one level so scarce work keeps
// spreading — and shares the incumbent across workers through an atomic
// best bound, so any worker's improvement immediately tightens every other
// worker's pruning. Cancellation and the node budget fold into one shared
// atomic stopper: the budget is claimed in blocks to keep the hot path off
// the contended counter, and a watcher goroutine flips the stop flag when
// the context ends.
//
// The engine also carries stronger prunes than the sequential solvers:
//
//   - cheapest-cost child ordering: each task's configurations are tried
//     cheapest first, which finds good incumbents early;
//   - a max-element lower bound: some processor must absorb the cheapest
//     placement of the heaviest remaining task, alongside the existing
//     average-load bound;
//   - symmetry breaking over interchangeable processors: processors whose
//     transposition is a verified automorphism of the instance are
//     grouped, and among a node's children only one representative per
//     (weight, group, current-load) signature is branched on.
//
// Exactness is preserved: symmetry groups come from exact transposition
// checks (never hashes), so a skipped child's subtree is isomorphic to an
// explored sibling's.
package exact

import (
	"context"
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
)

const (
	// budgetBlock caps how many node-budget units a worker claims from
	// the shared counter at once, bounding contention on the atomic; the
	// actual block is scaled down for small budgets (see newParShared).
	budgetBlock = 2048
	// splitFactor scales the shallow-frontier size: the root split aims
	// for workers*splitFactor independent subproblems.
	splitFactor = 8
	// splitSlack bounds how far below the frontier a stolen subproblem is
	// still worth re-splitting.
	splitSlack = 8
	// chunkNodes bounds how many nodes one subproblem execution may expand
	// before it must suspend (serializing its open branches back onto the
	// deque). Chunking keeps the pool fair: no worker can sink into one
	// huge subtree while a subproblem holding the optimum waits in a
	// queue, which matters whenever subproblems outnumber workers.
	chunkNodes = 32 * 1024
	// symProcCap / symEdgeCap gate the MULTIPROC symmetry detection: the
	// pairwise transposition verification is quadratic in group size, so
	// it only runs at exact-solver instance scales.
	symProcCap = 512
	symEdgeCap = 8192
)

// parShared is the cross-worker state of one parallel solve.
type parShared struct {
	best      atomic.Int64 // incumbent bound, read at every node
	budget    atomic.Int64 // remaining shared node budget
	block     int64        // per-claim block size, scaled to the budget
	stop      atomic.Bool
	exhausted atomic.Bool
	cancelled atomic.Bool
	nodes     atomic.Int64 // nodes expanded (flushed per worker)
	steals    atomic.Int64
	splits    atomic.Int64
	pending   atomic.Int64 // subproblems not yet fully processed

	mu    sync.Mutex
	bestM int64 // makespan of bestA; equals best once workers quiesce
	bestA []int32

	// Incumbent observer plumbing: obsFn is Options.Observer; obsSent is
	// the makespan of the last observation (MaxInt64 before the first),
	// loaded lock-free as the fast path of observe(); obsMu serializes
	// delivery so observations are strictly decreasing across workers.
	obsFn   func(int64, []int32)
	obsSent atomic.Int64
	obsMu   sync.Mutex

	deques []wsDeque
}

// observe delivers the current incumbent to the observer if it improves
// on the last observation. It is called at budget-block claims (every
// sh.block nodes per worker, never per node) and once before the solver
// returns, so the hot search loop stays observation-free. The double
// check under obsMu keeps deliveries strictly decreasing even when
// several workers race past the lock-free fast path.
func (sh *parShared) observe() {
	if sh.obsFn == nil || sh.best.Load() >= sh.obsSent.Load() {
		return
	}
	sh.obsMu.Lock()
	defer sh.obsMu.Unlock()
	sh.mu.Lock()
	m := sh.bestM
	var a []int32
	if m < sh.obsSent.Load() {
		a = append([]int32(nil), sh.bestA...)
	}
	sh.mu.Unlock()
	if a != nil {
		sh.obsSent.Store(m)
		sh.obsFn(m, a)
	}
}

func newParShared(incumbent []int32, m int64, maxNodes int64, workers int) *parShared {
	sh := &parShared{
		bestM:  m,
		bestA:  append([]int32(nil), incumbent...),
		deques: make([]wsDeque, workers),
	}
	sh.best.Store(m)
	sh.budget.Store(maxNodes)
	sh.obsSent.Store(int64(^uint64(0) >> 1)) // MaxInt64: nothing observed yet
	// Scale the claim block to the budget so small user budgets are not
	// stranded inside per-worker claims: with W workers at most
	// W·block ≈ budget/8 can sit unspent when the shared counter hits
	// zero. Unspent remainders are also refunded on flush.
	sh.block = maxNodes / int64(8*workers)
	if sh.block > budgetBlock {
		sh.block = budgetBlock
	}
	if sh.block < 64 {
		sh.block = 64
	}
	return sh
}

// offer publishes an improved complete schedule. The atomic bound and the
// mutex-guarded assignment are reconciled by bestM: concurrent improvers
// may interleave their CAS and their copy, but only a strictly better
// makespan ever overwrites bestA, so bestA always matches bestM and bestM
// converges to the minimum offered.
func (sh *parShared) offer(m int64, a []int32) {
	for {
		cur := sh.best.Load()
		if m >= cur {
			return
		}
		if sh.best.CompareAndSwap(cur, m) {
			break
		}
	}
	sh.mu.Lock()
	if m < sh.bestM {
		sh.bestM = m
		copy(sh.bestA, a)
	}
	sh.mu.Unlock()
}

// claimBlock takes up to budgetBlock nodes from the shared budget,
// returning 0 (and flipping the stop flag) when the budget is exhausted.
func (sh *parShared) claimBlock() int64 {
	for {
		cur := sh.budget.Load()
		if cur <= 0 {
			sh.exhausted.Store(true)
			sh.stop.Store(true)
			return 0
		}
		n := sh.block
		if cur < n {
			n = cur
		}
		if sh.budget.CompareAndSwap(cur, cur-n) {
			return n
		}
	}
}

func (sh *parShared) err(ctx context.Context) error {
	if sh.cancelled.Load() {
		return fmt.Errorf("%w: %w", ErrCancelled, ctx.Err())
	}
	if sh.exhausted.Load() {
		return ErrLimit
	}
	return nil
}

// ticker is a worker's private view of the shared stopper: it spends a
// locally claimed budget block per node and polls the shared stop flag (a
// single uncontended atomic load) every node.
type ticker struct {
	sh       *parShared
	local    int64
	expanded int64
}

// node accounts one search-tree node and reports whether the search must
// unwind.
func (tk *ticker) node() bool {
	if tk.sh.stop.Load() {
		return true
	}
	if tk.local == 0 {
		// Block boundary: the only periodic checkpoint a worker hits, so
		// the incumbent observer is polled here too.
		tk.sh.observe()
		if tk.local = tk.sh.claimBlock(); tk.local == 0 {
			return true
		}
	}
	tk.local--
	tk.expanded++
	return false
}

// flush publishes the node count and refunds any unspent claimed budget
// (mattering for genFrontier's short-lived ticker and for small budgets).
func (tk *ticker) flush() {
	tk.sh.nodes.Add(tk.expanded)
	tk.expanded = 0
	if tk.local > 0 {
		tk.sh.budget.Add(tk.local)
		tk.local = 0
	}
}

// wsDeque is one worker's subproblem deque: pushes append at the tail,
// and both the owner and thieves consume from the head. Head-first
// consumption makes each deque FIFO, which combines with chunked
// execution into round-robin fairness over subproblems — suspended
// continuations requeue behind older work, so nothing starves.
// Subproblems are coarse (whole subtrees or chunk continuations), so a
// mutex is plenty.
type wsDeque struct {
	mu    sync.Mutex
	head  int
	items [][]int32
}

func (d *wsDeque) push(p []int32) {
	d.mu.Lock()
	d.items = append(d.items, p)
	d.mu.Unlock()
}

// take removes the head subproblem; used by the owner (pop) and by
// thieves (steal).
func (d *wsDeque) take() ([]int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.items) {
		if d.head > 0 {
			d.head, d.items = 0, d.items[:0]
		}
		return nil, false
	}
	p := d.items[d.head]
	d.items[d.head] = nil
	d.head++
	if d.head == len(d.items) {
		d.head, d.items = 0, d.items[:0]
	}
	return p, true
}

// xorshift is a tiny per-worker PRNG for victim selection; stealing needs
// decorrelation, not quality.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// parSearcher abstracts the two problem shapes (SINGLEPROC bipartite,
// MULTIPROC hypergraph) for the pool skeleton. Implementations carry the
// worker-local mutable state; the pool creates one per worker. Dispatch is
// per subproblem, never per node.
type parSearcher interface {
	// run replays prefix and explores its subtree for up to chunkNodes
	// nodes. A nil return means the subtree is exhausted (or the search
	// stopped); otherwise it returns continuation prefixes covering
	// exactly the unexplored remainder, for requeueing.
	run(prefix []int32, tk *ticker) [][]int32
	// expand replays prefix and returns its surviving child choices
	// (ordinals into the node's ordered child list), or nil when the node
	// is pruned or complete. Accounts one node on tk.
	expand(prefix []int32, tk *ticker) []int32
	// depth returns the tree depth (number of tasks).
	depth() int
}

// runPool drives the work-stealing pool over an initial frontier and
// blocks until the search is exhausted or stopped.
func runPool(sh *parShared, newSearcher func() parSearcher, frontier [][]int32, workers, frontierDepth int) {
	sh.pending.Store(int64(len(frontier)))
	for i, p := range frontier {
		sh.deques[i%workers].push(p)
	}
	splitCap := frontierDepth + splitSlack
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := newSearcher()
			tk := &ticker{sh: sh}
			defer tk.flush()
			rng := xorshift(0x9E3779B97F4A7C15 ^ uint64(id+1)*0xBF58476D1CE4E5B9)
			idleSweeps := 0
			for {
				if sh.stop.Load() {
					return
				}
				sp, ok := sh.deques[id].take()
				stolen := false
				if !ok {
					sp, ok = stealSweep(sh, id, &rng)
					stolen = ok
					if !ok {
						if sh.pending.Load() == 0 {
							return
						}
						idleSweeps++
						if idleSweeps%64 == 0 {
							time.Sleep(100 * time.Microsecond)
						} else {
							runtime.Gosched()
						}
						continue
					}
				}
				idleSweeps = 0
				if stolen {
					sh.steals.Add(1)
					// Work was scarce enough that somebody had to steal:
					// re-split the stolen subtree one level so the spare
					// parts are themselves stealable.
					if len(sp) < splitCap && len(sp) < s.depth()-1 {
						kids := s.expand(sp, tk)
						sh.pending.Add(int64(len(kids)) - 1)
						if len(kids) == 0 {
							continue // pruned outright; pending already settled
						}
						sh.splits.Add(1)
						for _, c := range kids[1:] {
							child := make([]int32, len(sp)+1)
							copy(child, sp)
							child[len(sp)] = c
							sh.deques[id].push(child)
						}
						child := make([]int32, len(sp)+1)
						copy(child, sp)
						child[len(sp)] = kids[0]
						sp = child
					}
				}
				// pending is raised before the continuations hit the
				// deque so it never undercounts outstanding work (a
				// racing worker could otherwise observe zero and exit).
				conts := s.run(sp, tk)
				sh.pending.Add(int64(len(conts)) - 1)
				for _, c := range conts {
					sh.deques[id].push(c)
				}
			}
		}(w)
	}
	wg.Wait()
}

func stealSweep(sh *parShared, id int, rng *xorshift) ([]int32, bool) {
	n := len(sh.deques)
	off := int(rng.next() % uint64(n))
	for i := 0; i < n; i++ {
		v := (off + i) % n
		if v == id {
			continue
		}
		if p, ok := sh.deques[v].take(); ok {
			return p, true
		}
	}
	return nil, false
}

// genFrontier breadth-first-expands the tree root until at least target
// open subproblems exist (or the whole tree is exhausted — tiny instances
// finish right here). Complete prefixes are offered as incumbents by
// expand's caller (run handles them), so the returned frontier holds only
// interior nodes. Returns the frontier and its maximum depth.
func genFrontier(s parSearcher, tk *ticker, target int) ([][]int32, int) {
	queue := [][]int32{{}}
	head := 0
	n := s.depth()
	for head < len(queue) && len(queue)-head < target {
		if tk.sh.stop.Load() {
			break
		}
		node := queue[head]
		head++
		if len(node) == n {
			// A complete assignment surfaced during the shallow split
			// (tiny instance): evaluate it as a leaf.
			s.run(node, tk)
			continue
		}
		for _, c := range s.expand(node, tk) {
			child := make([]int32, len(node)+1)
			copy(child, node)
			child[len(node)] = c
			queue = append(queue, child)
		}
	}
	frontier := queue[head:]
	maxDepth := 0
	for _, p := range frontier {
		if len(p) > maxDepth {
			maxDepth = len(p)
		}
	}
	return frontier, maxDepth
}

// watchCancel flips the shared stop flag when ctx ends; the returned
// release func must be called before reading the result.
func watchCancel(ctx context.Context, sh *parShared) (release func()) {
	done := ctx.Done()
	if done == nil {
		return func() {}
	}
	quit := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-done:
			sh.cancelled.Store(true)
			sh.stop.Store(true)
		case <-quit:
		}
	}()
	return func() { once.Do(func() { close(quit) }); wg.Wait() }
}

// --- SINGLEPROC ---

// spProblem is the immutable, preprocessed shape of one SINGLEPROC search,
// shared read-only by all workers.
type spProblem struct {
	g    *bipartite.Graph
	n, p int
	// order is the branch order (fewest eligible processors first);
	// childProc/childWt list position i's candidate processors cheapest
	// edge first.
	order     []int32
	childProc [][]int32
	childWt   [][]int64
	// suffixAvg[i] = Σ_{j≥i} min-cost of order[j]: the average-load bound.
	suffixAvg []int64
	// suffixMax[i] = max_{j≥i} min-cost of order[j]: the max-element
	// bound — the heaviest remaining task lands whole on some processor.
	suffixMax []int64
	// sig groups interchangeable processors (verified automorphisms); -1
	// marks processors with no symmetric partner. nil when the instance
	// has no symmetry at all.
	sig []int32
	// childClass[i][k] is the static symmetry class of child k at
	// position i: two children share a class iff they place the same
	// weight on processors of the same symmetry group, so they are
	// interchangeable whenever their current loads coincide. -1 marks
	// children with no statically symmetric sibling, which keeps the
	// per-node check to one integer compare in the common case. nil when
	// sig is nil.
	childClass [][]int16
}

func newSPProblem(g *bipartite.Graph) *spProblem {
	n, p := g.NLeft, g.NRight
	pr := &spProblem{g: g, n: n, p: p}
	pr.order = make([]int32, n)
	for i := range pr.order {
		pr.order[i] = int32(i)
	}
	sort.SliceStable(pr.order, func(i, j int) bool {
		return g.Degree(int(pr.order[i])) < g.Degree(int(pr.order[j]))
	})

	pr.childProc = make([][]int32, n)
	pr.childWt = make([][]int64, n)
	for i, t := range pr.order {
		row := g.Neighbors(int(t))
		w := g.Weights(int(t))
		procs := append([]int32(nil), row...)
		wts := make([]int64, len(row))
		for k := range wts {
			if w != nil {
				wts[k] = w[k]
			} else {
				wts[k] = 1
			}
		}
		// Cheapest edge first: early incumbents tighten the shared bound
		// for everyone. Stable on the original adjacency order.
		idx := make([]int, len(row))
		for k := range idx {
			idx[k] = k
		}
		sort.SliceStable(idx, func(a, b int) bool { return wts[idx[a]] < wts[idx[b]] })
		sp, sw := make([]int32, len(row)), make([]int64, len(row))
		for k, j := range idx {
			sp[k], sw[k] = procs[j], wts[j]
		}
		pr.childProc[i], pr.childWt[i] = sp, sw
	}

	pr.suffixAvg = make([]int64, n+1)
	pr.suffixMax = make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		minC := pr.childWt[i][0] // children sorted by weight
		pr.suffixAvg[i] = pr.suffixAvg[i+1] + minC
		pr.suffixMax[i] = pr.suffixMax[i+1]
		if minC > pr.suffixMax[i] {
			pr.suffixMax[i] = minC
		}
	}

	pr.sig = spProcGroups(g)
	if pr.sig != nil {
		pr.childClass = make([][]int16, n)
		for i := range pr.childProc {
			procs, wts := pr.childProc[i], pr.childWt[i]
			cls := make([]int16, len(procs))
			type key struct {
				sig int32
				wt  int64
			}
			seen := map[key]int16{}
			next := int16(0)
			for k, p := range procs {
				cls[k] = -1
				if pr.sig[p] < 0 {
					continue
				}
				kk := key{pr.sig[p], wts[k]}
				if id, ok := seen[kk]; ok {
					cls[k] = id
				} else {
					seen[kk] = next
					cls[k] = next
					next++
				}
			}
			// Demote classes with a single member: no sibling to
			// deduplicate against.
			count := map[int16]int{}
			for _, c := range cls {
				if c >= 0 {
					count[c]++
				}
			}
			for k, c := range cls {
				if c >= 0 && count[c] < 2 {
					cls[k] = -1
				}
			}
			pr.childClass[i] = cls
		}
	}
	return pr
}

// spProcGroups groups processors with identical (task, weight) incidence
// rows: swapping two such processors is an automorphism of the instance.
// Returns nil when no group has two members.
func spProcGroups(g *bipartite.Graph) []int32 {
	enc := make([][]byte, g.NRight)
	var buf [2 * binary.MaxVarintLen64]byte
	for t := 0; t < g.NLeft; t++ {
		row := g.Neighbors(t)
		w := g.Weights(t)
		for k, p := range row {
			wt := int64(1)
			if w != nil {
				wt = w[k]
			}
			// Tasks are visited in ascending order, so each processor's
			// encoding is already canonical.
			m := binary.PutVarint(buf[:], int64(t))
			m += binary.PutVarint(buf[m:], wt)
			enc[p] = append(enc[p], buf[:m]...)
		}
	}
	groups := map[string][]int32{}
	for p := range enc {
		k := string(enc[p])
		groups[k] = append(groups[k], int32(p))
	}
	sig := make([]int32, g.NRight)
	for i := range sig {
		sig[i] = -1
	}
	id := int32(0)
	any := false
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		any = true
		for _, p := range members {
			sig[p] = id
		}
		id++
	}
	if !any {
		return nil
	}
	return sig
}

// spState is one worker's mutable search state.
type spState struct {
	pr    *spProblem
	sh    *parShared
	loads []int64
	cur   []int32
	total int64
	// ords/entry are the explicit DFS stack scratch: the child ordinal
	// applied at each depth, and the partial makespan at each node entry.
	ords  []int32
	entry []int64
}

func newSPState(pr *spProblem, sh *parShared) *spState {
	// cur needs no initialization: every position is written by replay or
	// the DFS before a complete assignment is offered.
	return &spState{
		pr:    pr,
		sh:    sh,
		loads: make([]int64, pr.p),
		cur:   make([]int32, pr.n),
		ords:  make([]int32, pr.n),
		entry: make([]int64, pr.n+1),
	}
}

func (s *spState) depth() int { return s.pr.n }

// replay rebuilds loads/cur/total from a choice prefix and returns the
// partial makespan.
func (s *spState) replay(prefix []int32) int64 {
	for i := range s.loads {
		s.loads[i] = 0
	}
	s.total = 0
	var curMax int64
	for d, ord := range prefix {
		proc := s.pr.childProc[d][ord]
		wt := s.pr.childWt[d][ord]
		s.loads[proc] += wt
		s.total += wt
		if s.loads[proc] > curMax {
			curMax = s.loads[proc]
		}
		s.cur[s.pr.order[d]] = proc
	}
	return curMax
}

// dupSibling reports whether child k of position i is symmetric to an
// earlier sibling: same weight onto an interchangeable processor carrying
// the same load. The earlier sibling's subtree is isomorphic, so this one
// is redundant. Equality is transitive, so checking against all earlier
// siblings (explored or themselves skipped) is sound.
func (s *spState) dupSibling(i int, k int) bool {
	cls := s.pr.childClass[i]
	c := cls[k]
	if c < 0 {
		return false
	}
	procs := s.pr.childProc[i]
	lk := s.loads[procs[k]]
	for k2 := 0; k2 < k; k2++ {
		if cls[k2] == c && s.loads[procs[k2]] == lk {
			return true
		}
	}
	return false
}

func (s *spState) bound(i int, curMax int64) bool {
	best := s.sh.best.Load()
	if curMax >= best {
		return false
	}
	pr := s.pr
	lb := (s.total + pr.suffixAvg[i] + int64(pr.p) - 1) / int64(pr.p)
	return lb < best && pr.suffixMax[i] < best
}

func (s *spState) expand(prefix []int32, tk *ticker) []int32 {
	curMax := s.replay(prefix)
	i := len(prefix)
	if tk.node() {
		return nil
	}
	if i == s.pr.n {
		s.sh.offer(curMax, s.cur)
		return nil
	}
	if !s.bound(i, curMax) {
		return nil
	}
	var out []int32
	for k := range s.pr.childProc[i] {
		if s.pr.sig != nil && s.dupSibling(i, k) {
			continue
		}
		out = append(out, int32(k))
	}
	return out
}

// nextChild returns the first surviving child ordinal ≥ from at position
// i (symmetry duplicates skipped), or -1.
func (s *spState) nextChild(i, from int) int {
	procs := s.pr.childProc[i]
	for k := from; k < len(procs); k++ {
		if s.pr.sig != nil && s.dupSibling(i, k) {
			continue
		}
		return k
	}
	return -1
}

// run explores prefix's subtree for up to chunkNodes nodes with an
// explicit-stack DFS. On chunk exhaustion it suspends: the unexplored
// remainder — the current node plus every untried sibling on the path —
// is serialized into continuation prefixes and returned for requeueing.
func (s *spState) run(prefix []int32, tk *ticker) [][]int32 {
	pr := s.pr
	base := len(prefix)
	entry := s.entry[:pr.n-base+1]
	ords := s.ords[:max(pr.n-base, 0)]
	entry[0] = s.replay(prefix)
	chunk := int64(chunkNodes)
	depth := 0
	descend := true
	for {
		if descend {
			if tk.node() {
				return nil // stopped; loads are rebuilt by the next replay
			}
			chunk--
			i := base + depth
			if i == pr.n {
				s.sh.offer(entry[depth], s.cur)
				descend = false
				continue
			}
			if !s.bound(i, entry[depth]) {
				descend = false
				continue
			}
			if chunk <= 0 {
				return s.suspend(prefix, ords[:depth])
			}
			k := s.nextChild(i, 0)
			if k < 0 {
				descend = false
				continue
			}
			ords[depth] = int32(k)
			entry[depth+1] = s.apply(i, k, entry[depth])
			depth++
			continue
		}
		if depth == 0 {
			return nil
		}
		depth--
		i := base + depth
		k := int(ords[depth])
		s.undo(i, k)
		if k = s.nextChild(i, k+1); k < 0 {
			continue
		}
		ords[depth] = int32(k)
		entry[depth+1] = s.apply(i, k, entry[depth])
		depth++
		descend = true
	}
}

// apply places child k of position i and returns the new partial
// makespan.
func (s *spState) apply(i, k int, curMax int64) int64 {
	proc, wt := s.pr.childProc[i][k], s.pr.childWt[i][k]
	s.loads[proc] += wt
	s.total += wt
	s.cur[s.pr.order[i]] = proc
	if s.loads[proc] > curMax {
		return s.loads[proc]
	}
	return curMax
}

func (s *spState) undo(i, k int) {
	proc, wt := s.pr.childProc[i][k], s.pr.childWt[i][k]
	s.loads[proc] -= wt
	s.total -= wt
}

// suspend serializes the unexplored remainder of a chunked-out dive: the
// current node itself, plus — unwinding the applied path — every untried
// sibling at each level, symmetry-filtered under the loads of its own
// level.
func (s *spState) suspend(prefix []int32, ords []int32) [][]int32 {
	conts := [][]int32{concatPrefix(prefix, ords)}
	for d := len(ords) - 1; d >= 0; d-- {
		i := len(prefix) + d
		k := int(ords[d])
		s.undo(i, k)
		for k = s.nextChild(i, k+1); k >= 0; k = s.nextChild(i, k+1) {
			c := concatPrefix(prefix, ords[:d])
			conts = append(conts, append(c, int32(k)))
		}
	}
	return conts
}

func concatPrefix(prefix, ords []int32) []int32 {
	out := make([]int32, 0, len(prefix)+len(ords)+1)
	out = append(out, prefix...)
	return append(out, ords...)
}

// SolveSingleProcPar is SolveSingleProc on the parallel work-stealing
// branch-and-bound engine.
func SolveSingleProcPar(g *bipartite.Graph, opts Options) (core.Assignment, int64, error) {
	return SolveSingleProcParCtx(context.Background(), g, opts)
}

// SolveSingleProcParCtx computes an optimal SINGLEPROC schedule on the
// parallel engine: the search tree is split at a shallow frontier across
// Options.Workers work-stealing workers sharing one incumbent bound and
// one node budget. The error contract matches SolveSingleProcCtx: on
// budget exhaustion or cancellation the best incumbent found by any worker
// is returned alongside ErrLimit / ErrCancelled. The optimal makespan is
// deterministic; which optimal schedule is returned may vary across runs
// when several exist.
func SolveSingleProcParCtx(ctx context.Context, g *bipartite.Graph, opts Options) (core.Assignment, int64, error) {
	n, p := g.NLeft, g.NRight
	if p == 0 && n > 0 {
		return nil, 0, fmt.Errorf("exact: no processors")
	}
	for t := 0; t < n; t++ {
		if g.Degree(t) == 0 {
			return nil, 0, fmt.Errorf("exact: task %d has no eligible processor", t)
		}
	}
	if n == 0 {
		return core.Assignment{}, 0, nil
	}

	pr := newSPProblem(g)
	inc := core.SortedGreedy(g, core.GreedyOptions{})
	workers := opts.workers()
	sh := newParShared(inc, core.Makespan(g, inc), opts.maxNodes(), workers)
	sh.obsFn = opts.Observer
	sh.observe() // the initial greedy incumbent
	release := watchCancel(ctx, sh)
	defer release()

	root := newSPState(pr, sh)
	tk := &ticker{sh: sh}
	frontier, fdepth := genFrontier(root, tk, workers*splitFactor)
	tk.flush()
	if len(frontier) > 0 && !sh.stop.Load() {
		runPool(sh, func() parSearcher { return newSPState(pr, sh) }, frontier, workers, fdepth)
	}
	release()
	sh.observe() // flush the final incumbent to the observer
	if opts.Stats != nil {
		complete := !sh.exhausted.Load() && !sh.cancelled.Load()
		bound, wit := witnessFor(complete, (pr.suffixAvg[0]+int64(pr.p)-1)/int64(pr.p), pr.suffixMax[0], sh.bestM)
		*opts.Stats = SearchStats{
			Nodes:       sh.nodes.Load(),
			Workers:     workers,
			Subproblems: int64(len(frontier)) + sh.splits.Load(),
			Steals:      sh.steals.Load(),
			Bound:       bound,
			Witness:     wit,
		}
	}
	return append(core.Assignment(nil), sh.bestA...), sh.bestM, sh.err(ctx)
}

// --- MULTIPROC ---

// mpProblem is the immutable, preprocessed shape of one MULTIPROC search.
type mpProblem struct {
	h    *hypergraph.Hypergraph
	n, p int
	// order is the branch order; childEdge lists position i's hyperedges
	// cheapest total cost first.
	order     []int32
	childEdge [][]int32
	cost      []int64 // per edge: w_e·|h_e∩V2|
	suffixAvg []int64
	suffixMax []int64
	// sig groups interchangeable processors; -1 marks processors with no
	// verified symmetric partner. nil disables symmetry breaking.
	sig []int32
	// childClass[i][k] is the static symmetry class of child k at
	// position i: two children share a class iff they have the same
	// weight and their pin sets match as multisets of (symmetry group |
	// fixed processor) — interchangeable whenever current loads agree.
	// -1 marks children with no statically symmetric sibling. nil when
	// sig is nil.
	childClass [][]int16
	maxSize    int
}

func newMPProblem(h *hypergraph.Hypergraph) *mpProblem {
	n, p := h.NTasks, h.NProcs
	pr := &mpProblem{h: h, n: n, p: p}
	pr.order = make([]int32, n)
	for i := range pr.order {
		pr.order[i] = int32(i)
	}
	sort.SliceStable(pr.order, func(i, j int) bool {
		return h.TaskDegree(int(pr.order[i])) < h.TaskDegree(int(pr.order[j]))
	})

	pr.cost = make([]int64, h.NumEdges())
	for e := range pr.cost {
		pr.cost[e] = h.Weight[e] * int64(h.EdgeSize(int32(e)))
	}

	pr.childEdge = make([][]int32, n)
	for i, t := range pr.order {
		edges := append([]int32(nil), h.TaskEdges(int(t))...)
		sort.SliceStable(edges, func(a, b int) bool { return pr.cost[edges[a]] < pr.cost[edges[b]] })
		pr.childEdge[i] = edges
	}

	pr.suffixAvg = make([]int64, n+1)
	pr.suffixMax = make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		minC := pr.cost[pr.childEdge[i][0]] // sorted by cost
		// The max-element bound uses the edge weight: choosing any
		// configuration of this task puts at least its cheapest weight
		// whole onto some processor.
		minW := int64(-1)
		for _, e := range pr.childEdge[i] {
			if w := h.Weight[e]; minW < 0 || w < minW {
				minW = w
			}
		}
		pr.suffixAvg[i] = pr.suffixAvg[i+1] + minC
		pr.suffixMax[i] = pr.suffixMax[i+1]
		if minW > pr.suffixMax[i] {
			pr.suffixMax[i] = minW
		}
	}

	_, pr.maxSize = h.MinMaxEdgeSize()
	pr.sig = mpProcGroups(h)
	if pr.sig != nil {
		pr.childClass = make([][]int16, n)
		var enc []byte
		var buf [binary.MaxVarintLen64]byte
		keys := make([]int32, 0, pr.maxSize)
		for i := range pr.childEdge {
			edges := pr.childEdge[i]
			cls := make([]int16, len(edges))
			seen := map[string]int16{}
			next := int16(0)
			for k, e := range edges {
				cls[k] = -1
				grouped := false
				keys = keys[:0]
				for _, u := range h.EdgeProcs(e) {
					s := pr.sig[u]
					if s >= 0 {
						grouped = true
					} else {
						s = ^u
					}
					keys = append(keys, s)
				}
				if !grouped {
					// Without a grouped pin the only symmetric sibling
					// would be a literal duplicate edge; not worth a class.
					continue
				}
				sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
				enc = enc[:0]
				enc = append(enc, buf[:binary.PutVarint(buf[:], h.Weight[e])]...)
				for _, s := range keys {
					enc = append(enc, buf[:binary.PutVarint(buf[:], int64(s))]...)
				}
				if id, ok := seen[string(enc)]; ok {
					cls[k] = id
				} else {
					seen[string(enc)] = next
					cls[k] = next
					next++
				}
			}
			count := map[int16]int{}
			for _, c := range cls {
				if c >= 0 {
					count[c]++
				}
			}
			for k, c := range cls {
				if c >= 0 && count[c] < 2 {
					cls[k] = -1
				}
			}
			pr.childClass[i] = cls
		}
	}
	return pr
}

// mpProcGroups finds processors whose transposition is an automorphism of
// the hypergraph — swapping them maps the hyperedge multiset onto itself,
// preserving owners and weights. The check is exact: candidate pairs come
// from a cheap incidence invariant, then each pair is verified by mapping
// every incident hyperedge through the swap and looking the image up in
// the edge multiset. Returns nil when no group has two members or the
// instance exceeds the detection gates.
func mpProcGroups(h *hypergraph.Hypergraph) []int32 {
	if h.NProcs > symProcCap || h.NumEdges() > symEdgeCap {
		return nil
	}
	// Cheap invariant: sorted (owner, weight, size) profile per processor.
	prof := make([][]byte, h.NProcs)
	var buf [3 * binary.MaxVarintLen64]byte
	for e := 0; e < h.NumEdges(); e++ {
		m := binary.PutVarint(buf[:], int64(h.Owner[e]))
		m += binary.PutVarint(buf[m:], h.Weight[e])
		m += binary.PutVarint(buf[m:], int64(h.EdgeSize(int32(e))))
		for _, u := range h.EdgeProcs(int32(e)) {
			prof[u] = append(prof[u], buf[:m]...)
		}
	}
	// Edges are visited in ascending id order, so profiles are canonical.
	cand := map[string][]int32{}
	for u := range prof {
		k := string(prof[u])
		cand[k] = append(cand[k], int32(u))
	}

	// Edge multiset keyed by (owner, weight, pins).
	edgeKey := func(owner int32, w int64, pins []int32) string {
		b := make([]byte, 0, (len(pins)+2)*binary.MaxVarintLen64)
		var t [binary.MaxVarintLen64]byte
		b = append(b, t[:binary.PutVarint(t[:], int64(owner))]...)
		b = append(b, t[:binary.PutVarint(t[:], w)]...)
		for _, u := range pins {
			b = append(b, t[:binary.PutVarint(t[:], int64(u))]...)
		}
		return string(b)
	}
	count := map[string]int{}
	keys := make([]string, h.NumEdges())
	for e := 0; e < h.NumEdges(); e++ {
		k := edgeKey(h.Owner[e], h.Weight[e], h.EdgeProcs(int32(e)))
		keys[e] = k
		count[k]++
	}
	// incident[u] = edges containing processor u.
	incident := make([][]int32, h.NProcs)
	for e := 0; e < h.NumEdges(); e++ {
		for _, u := range h.EdgeProcs(int32(e)) {
			incident[u] = append(incident[u], int32(e))
		}
	}
	swapPins := func(pins []int32, a, b int32) []int32 {
		out := append([]int32(nil), pins...)
		for i, u := range out {
			switch u {
			case a:
				out[i] = b
			case b:
				out[i] = a
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	contains := func(pins []int32, u int32) bool {
		for _, v := range pins {
			if v == u {
				return true
			}
		}
		return false
	}
	// verify checks that the transposition (a b) maps the edge multiset
	// onto itself. Because a transposition is an involution, it suffices
	// that every edge incident to exactly one of {a,b} has an image class
	// of equal multiplicity.
	verify := func(a, b int32) bool {
		for _, side := range [][]int32{incident[a], incident[b]} {
			for _, e := range side {
				pins := h.EdgeProcs(e)
				if contains(pins, a) && contains(pins, b) {
					continue // swap fixes the pin set
				}
				img := edgeKey(h.Owner[e], h.Weight[e], swapPins(pins, a, b))
				if count[img] != count[keys[e]] {
					return false
				}
			}
		}
		return true
	}

	sig := make([]int32, h.NProcs)
	for i := range sig {
		sig[i] = -1
	}
	id := int32(0)
	any := false
	for _, members := range cand {
		if len(members) < 2 {
			continue
		}
		// Greedy class building with verified transpositions against each
		// class representative. Verified (a,r) and (b,r) compose to a
		// verified symmetry between a and b.
		var reps []int32
		var repIDs []int32
		for _, u := range members {
			placed := false
			for ri, r := range reps {
				if verify(r, u) {
					sig[u] = repIDs[ri]
					placed = true
					break
				}
			}
			if !placed {
				reps = append(reps, u)
				repIDs = append(repIDs, id)
				sig[u] = id
				id++
			}
		}
	}
	// Demote singleton classes: a processor with no verified partner gets
	// no signature (keeps the per-node sibling scan cheap).
	classSize := map[int32]int{}
	for _, s := range sig {
		if s >= 0 {
			classSize[s]++
		}
	}
	for i, s := range sig {
		if s >= 0 && classSize[s] < 2 {
			sig[i] = -1
		} else if s >= 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	return sig
}

// mpState is one worker's mutable MULTIPROC search state.
type mpState struct {
	pr    *mpProblem
	sh    *parShared
	loads []int64
	cur   []int32
	total int64
	// ords/entry are the explicit DFS stack scratch: the child ordinal
	// applied at each depth, and the partial makespan at each node entry.
	ords  []int32
	entry []int64
	// scratch pair buffers for the symmetry comparison.
	pairA, pairB []symPair
}

type symPair struct {
	key  int32
	load int64
}

func newMPState(pr *mpProblem, sh *parShared) *mpState {
	return &mpState{
		pr:    pr,
		sh:    sh,
		loads: make([]int64, pr.p),
		cur:   make([]int32, pr.n),
		ords:  make([]int32, pr.n),
		entry: make([]int64, pr.n+1),
		pairA: make([]symPair, 0, pr.maxSize),
		pairB: make([]symPair, 0, pr.maxSize),
	}
}

func (s *mpState) depth() int { return s.pr.n }

func (s *mpState) replay(prefix []int32) int64 {
	for i := range s.loads {
		s.loads[i] = 0
	}
	s.total = 0
	var curMax int64
	h := s.pr.h
	for d, ord := range prefix {
		e := s.pr.childEdge[d][ord]
		w := h.Weight[e]
		for _, u := range h.EdgeProcs(e) {
			s.loads[u] += w
			if s.loads[u] > curMax {
				curMax = s.loads[u]
			}
		}
		s.total += s.pr.cost[e]
		s.cur[s.pr.order[d]] = e
	}
	return curMax
}

// fillPairs builds edge e's (group-or-identity, current-load) multiset,
// insertion-sorted. Processors without a symmetry group keep their
// identity (encoded disjointly as ^proc), so equality of two multisets
// certifies an automorphism mapping one edge to the other while fixing
// every current load.
func (s *mpState) fillPairs(dst []symPair, e int32) []symPair {
	dst = dst[:0]
	sig := s.pr.sig
	for _, u := range s.pr.h.EdgeProcs(e) {
		k := sig[u]
		if k < 0 {
			k = ^u
		}
		pair := symPair{key: k, load: s.loads[u]}
		j := len(dst)
		dst = append(dst, pair)
		for j > 0 && (dst[j-1].key > pair.key || (dst[j-1].key == pair.key && dst[j-1].load > pair.load)) {
			dst[j] = dst[j-1]
			j--
		}
		dst[j] = pair
	}
	return dst
}

// dupSibling reports whether child k of position i is symmetric to an
// earlier sibling edge: statically interchangeable (same childClass) and
// an automorphism maps one pin set to the other preserving current loads.
func (s *mpState) dupSibling(i, k int) bool {
	pr := s.pr
	cls := pr.childClass[i]
	c := cls[k]
	if c < 0 {
		return false
	}
	h := pr.h
	edges := pr.childEdge[i]
	e := edges[k]
	pins := h.EdgeProcs(e)
	if len(pins) == 1 {
		// Singleton fast path (identical-machines shape): the dynamic
		// condition degenerates to one load compare.
		lk := s.loads[pins[0]]
		for k2 := 0; k2 < k; k2++ {
			if cls[k2] == c && s.loads[h.EdgeProcs(edges[k2])[0]] == lk {
				return true
			}
		}
		return false
	}
	var filledA bool
	for k2 := 0; k2 < k; k2++ {
		if cls[k2] != c {
			continue
		}
		if !filledA {
			s.pairA = s.fillPairs(s.pairA, e)
			filledA = true
		}
		s.pairB = s.fillPairs(s.pairB, edges[k2])
		same := true
		for j := range s.pairA {
			if s.pairA[j] != s.pairB[j] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

func (s *mpState) bound(i int, curMax int64) bool {
	best := s.sh.best.Load()
	if curMax >= best {
		return false
	}
	pr := s.pr
	lb := (s.total + pr.suffixAvg[i] + int64(pr.p) - 1) / int64(pr.p)
	return lb < best && pr.suffixMax[i] < best
}

func (s *mpState) expand(prefix []int32, tk *ticker) []int32 {
	curMax := s.replay(prefix)
	i := len(prefix)
	if tk.node() {
		return nil
	}
	if i == s.pr.n {
		s.sh.offer(curMax, s.cur)
		return nil
	}
	if !s.bound(i, curMax) {
		return nil
	}
	var out []int32
	for k := range s.pr.childEdge[i] {
		if s.pr.sig != nil && s.dupSibling(i, k) {
			continue
		}
		out = append(out, int32(k))
	}
	return out
}

// nextChild returns the first surviving child ordinal ≥ from at position
// i (symmetry duplicates skipped), or -1.
func (s *mpState) nextChild(i, from int) int {
	edges := s.pr.childEdge[i]
	for k := from; k < len(edges); k++ {
		if s.pr.sig != nil && s.dupSibling(i, k) {
			continue
		}
		return k
	}
	return -1
}

// run explores prefix's subtree for up to chunkNodes nodes with an
// explicit-stack DFS; see spState.run for the suspension contract.
func (s *mpState) run(prefix []int32, tk *ticker) [][]int32 {
	pr := s.pr
	base := len(prefix)
	entry := s.entry[:pr.n-base+1]
	ords := s.ords[:max(pr.n-base, 0)]
	entry[0] = s.replay(prefix)
	chunk := int64(chunkNodes)
	depth := 0
	descend := true
	for {
		if descend {
			if tk.node() {
				return nil // stopped; loads are rebuilt by the next replay
			}
			chunk--
			i := base + depth
			if i == pr.n {
				s.sh.offer(entry[depth], s.cur)
				descend = false
				continue
			}
			if !s.bound(i, entry[depth]) {
				descend = false
				continue
			}
			if chunk <= 0 {
				return s.suspend(prefix, ords[:depth])
			}
			k := s.nextChild(i, 0)
			if k < 0 {
				descend = false
				continue
			}
			ords[depth] = int32(k)
			entry[depth+1] = s.apply(i, k, entry[depth])
			depth++
			continue
		}
		if depth == 0 {
			return nil
		}
		depth--
		i := base + depth
		k := int(ords[depth])
		s.undo(i, k)
		if k = s.nextChild(i, k+1); k < 0 {
			continue
		}
		ords[depth] = int32(k)
		entry[depth+1] = s.apply(i, k, entry[depth])
		depth++
		descend = true
	}
}

// apply places child k of position i and returns the new partial
// makespan.
func (s *mpState) apply(i, k int, curMax int64) int64 {
	pr := s.pr
	e := pr.childEdge[i][k]
	w := pr.h.Weight[e]
	for _, u := range pr.h.EdgeProcs(e) {
		s.loads[u] += w
		if s.loads[u] > curMax {
			curMax = s.loads[u]
		}
	}
	s.total += pr.cost[e]
	s.cur[pr.order[i]] = e
	return curMax
}

func (s *mpState) undo(i, k int) {
	pr := s.pr
	e := pr.childEdge[i][k]
	w := pr.h.Weight[e]
	for _, u := range pr.h.EdgeProcs(e) {
		s.loads[u] -= w
	}
	s.total -= pr.cost[e]
}

// suspend serializes the unexplored remainder of a chunked-out dive; see
// spState.suspend.
func (s *mpState) suspend(prefix []int32, ords []int32) [][]int32 {
	conts := [][]int32{concatPrefix(prefix, ords)}
	for d := len(ords) - 1; d >= 0; d-- {
		i := len(prefix) + d
		k := int(ords[d])
		s.undo(i, k)
		for k = s.nextChild(i, k+1); k >= 0; k = s.nextChild(i, k+1) {
			c := concatPrefix(prefix, ords[:d])
			conts = append(conts, append(c, int32(k)))
		}
	}
	return conts
}

// SolveMultiProcPar is SolveMultiProc on the parallel work-stealing
// branch-and-bound engine.
func SolveMultiProcPar(h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, int64, error) {
	return SolveMultiProcParCtx(context.Background(), h, opts)
}

// SolveMultiProcParCtx computes an optimal MULTIPROC schedule on the
// parallel engine; see SolveSingleProcParCtx for the concurrency and
// error contract.
func SolveMultiProcParCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, int64, error) {
	n, p := h.NTasks, h.NProcs
	if n == 0 {
		return core.HyperAssignment{}, 0, nil
	}
	if p == 0 {
		return nil, 0, fmt.Errorf("exact: no processors")
	}
	for t := 0; t < n; t++ {
		if h.TaskDegree(t) == 0 {
			return nil, 0, fmt.Errorf("exact: task %d has no configuration", t)
		}
	}

	pr := newMPProblem(h)
	inc := core.SortedGreedyHyp(h, core.HyperOptions{})
	workers := opts.workers()
	sh := newParShared(inc, core.HyperMakespan(h, inc), opts.maxNodes(), workers)
	sh.obsFn = opts.Observer
	sh.observe() // the initial greedy incumbent
	release := watchCancel(ctx, sh)
	defer release()

	root := newMPState(pr, sh)
	tk := &ticker{sh: sh}
	frontier, fdepth := genFrontier(root, tk, workers*splitFactor)
	tk.flush()
	if len(frontier) > 0 && !sh.stop.Load() {
		runPool(sh, func() parSearcher { return newMPState(pr, sh) }, frontier, workers, fdepth)
	}
	release()
	sh.observe() // flush the final incumbent to the observer
	if opts.Stats != nil {
		complete := !sh.exhausted.Load() && !sh.cancelled.Load()
		bound, wit := witnessFor(complete, (pr.suffixAvg[0]+int64(pr.p)-1)/int64(pr.p), pr.suffixMax[0], sh.bestM)
		*opts.Stats = SearchStats{
			Nodes:       sh.nodes.Load(),
			Workers:     workers,
			Subproblems: int64(len(frontier)) + sh.splits.Load(),
			Steals:      sh.steals.Load(),
			Bound:       bound,
			Witness:     wit,
		}
	}
	return append(core.HyperAssignment(nil), sh.bestA...), sh.bestM, sh.err(ctx)
}
