package exact

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
)

// The equivalence suite: the parallel engine must return the same optimal
// makespan as the sequential solvers over a seeded random grid — SP and
// MP, unit and weighted, across worker counts — and must degrade the same
// way (ErrLimit with a valid incumbent) under tight node budgets.

func TestParSingleProcMatchesSequentialGrid(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(101))
		for trial := 0; trial < 40; trial++ {
			var g *bipartite.Graph
			if trial%2 == 0 {
				g = randomUnitGraph(rng, 1+rng.Intn(14), 1+rng.Intn(6), 4)
			} else {
				g = randomWeightedGraph(rng, 1+rng.Intn(12), 1+rng.Intn(5), 4, 9)
			}
			_, want, err := SolveSingleProc(g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			a, got, err := SolveSingleProcPar(g, Options{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d trial=%d: %v", workers, trial, err)
			}
			if err := core.ValidateAssignment(g, a); err != nil {
				t.Fatalf("workers=%d trial=%d: invalid assignment: %v", workers, trial, err)
			}
			if m := core.Makespan(g, a); m != got {
				t.Fatalf("workers=%d trial=%d: reported %d != assignment makespan %d", workers, trial, got, m)
			}
			if got != want {
				t.Fatalf("workers=%d trial=%d: parallel %d, sequential %d", workers, trial, got, want)
			}
		}
	}
}

func TestParMultiProcMatchesSequentialGrid(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(202))
		for trial := 0; trial < 40; trial++ {
			maxW := int64(1) // unit
			if trial%2 == 1 {
				maxW = 8
			}
			h := randomHyper(rng, 1+rng.Intn(11), 1+rng.Intn(5), 3, 3, maxW)
			_, want, err := SolveMultiProc(h, Options{})
			if err != nil {
				t.Fatal(err)
			}
			a, got, err := SolveMultiProcPar(h, Options{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d trial=%d: %v", workers, trial, err)
			}
			if err := core.ValidateHyperAssignment(h, a); err != nil {
				t.Fatalf("workers=%d trial=%d: invalid assignment: %v", workers, trial, err)
			}
			if m := core.HyperMakespan(h, a); m != got {
				t.Fatalf("workers=%d trial=%d: reported %d != assignment makespan %d", workers, trial, got, m)
			}
			if got != want {
				t.Fatalf("workers=%d trial=%d: parallel %d, sequential %d", workers, trial, got, want)
			}
		}
	}
}

// Instances built to be rich in interchangeable processors exercise the
// symmetry-breaking prune specifically.
func TestParSymmetricProcessors(t *testing.T) {
	// SP: complete bipartite with per-task weights — every processor has an
	// identical incidence row, so all of them form one symmetry group.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n, p := 6+rng.Intn(6), 2+rng.Intn(4)
		b := bipartite.NewBuilder(n, p)
		for t2 := 0; t2 < n; t2++ {
			w := 1 + rng.Int63n(9)
			for v := 0; v < p; v++ {
				b.AddWeightedEdge(t2, v, w)
			}
		}
		g := b.MustBuild()
		_, want, err := SolveSingleProc(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := SolveSingleProcPar(g, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: parallel %d, sequential %d", trial, got, want)
		}
	}

	// MP: each task offers one singleton configuration per processor, all
	// with the same weight — the full symmetric group over processors.
	for trial := 0; trial < 10; trial++ {
		n, p := 5+rng.Intn(5), 2+rng.Intn(4)
		hb := hypergraph.NewBuilder(n, p)
		for t2 := 0; t2 < n; t2++ {
			w := 1 + rng.Int63n(7)
			for v := 0; v < p; v++ {
				hb.AddEdge(t2, []int{v}, w)
			}
		}
		h := hb.MustBuild()
		_, want, err := SolveMultiProc(h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := SolveMultiProcPar(h, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: parallel %d, sequential %d", trial, got, want)
		}
	}
}

// Under a node budget far too small for the search, the sequential and
// parallel solvers must both report ErrLimit while still returning a
// valid complete incumbent whose makespan matches the reported value.
func TestParTightBudgetConsistentErrLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	gSP := randomWeightedGraph(rng, 26, 6, 5, 50)
	gMP := randomHyper(rng, 26, 6, 4, 3, 50)
	opts := Options{MaxNodes: 48}

	_, mSeq, errSeq := SolveSingleProc(gSP, opts)
	if !errors.Is(errSeq, ErrLimit) {
		t.Fatalf("sequential SP: want ErrLimit, got %v", errSeq)
	}
	for _, workers := range []int{1, 4} {
		a, m, err := SolveSingleProcPar(gSP, Options{MaxNodes: 48, Workers: workers})
		if !errors.Is(err, ErrLimit) {
			t.Fatalf("parallel SP workers=%d: want ErrLimit, got %v", workers, err)
		}
		if vErr := core.ValidateAssignment(gSP, a); vErr != nil {
			t.Fatalf("parallel SP workers=%d: incumbent invalid: %v", workers, vErr)
		}
		if core.Makespan(gSP, a) != m {
			t.Fatalf("parallel SP workers=%d: reported %d != incumbent makespan", workers, m)
		}
	}
	_ = mSeq

	_, _, errSeqMP := SolveMultiProc(gMP, opts)
	if !errors.Is(errSeqMP, ErrLimit) {
		t.Fatalf("sequential MP: want ErrLimit, got %v", errSeqMP)
	}
	for _, workers := range []int{1, 4} {
		a, m, err := SolveMultiProcPar(gMP, Options{MaxNodes: 48, Workers: workers})
		if !errors.Is(err, ErrLimit) {
			t.Fatalf("parallel MP workers=%d: want ErrLimit, got %v", workers, err)
		}
		if vErr := core.ValidateHyperAssignment(gMP, a); vErr != nil {
			t.Fatalf("parallel MP workers=%d: incumbent invalid: %v", workers, vErr)
		}
		if core.HyperMakespan(gMP, a) != m {
			t.Fatalf("parallel MP workers=%d: reported %d != incumbent makespan", workers, m)
		}
	}
}

// A small user budget must actually be spendable: claim blocks scale
// down with MaxNodes and unspent claims are refunded, so the parallel
// engine completes searches that fit comfortably inside the budget
// instead of stranding it inside per-worker claims.
func TestParSmallBudgetNotStranded(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	h := randomHyper(rng, 10, 4, 3, 3, 7)
	var st SearchStats
	if _, _, err := SolveMultiProcPar(h, Options{Workers: 4, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	budget := 4*st.Nodes + 256 // generous headroom over the engine's own need
	a, m, err := SolveMultiProcPar(h, Options{MaxNodes: budget, Workers: 4})
	if err != nil {
		t.Fatalf("budget %d (engine needs ~%d nodes) still tripped: %v", budget, st.Nodes, err)
	}
	if vErr := core.ValidateHyperAssignment(h, a); vErr != nil {
		t.Fatal(vErr)
	}
	_, want, err := SolveMultiProc(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m != want {
		t.Fatalf("optimum %d != sequential %d", m, want)
	}
}

func TestParCancelledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	h := randomHyper(rng, 24, 6, 4, 3, 30)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, m, err := SolveMultiProcParCtx(ctx, h, Options{Workers: 4})
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCancelled wrapping context.Canceled, got %v", err)
	}
	if vErr := core.ValidateHyperAssignment(h, a); vErr != nil {
		t.Fatalf("incumbent invalid after cancel: %v", vErr)
	}
	if core.HyperMakespan(h, a) != m {
		t.Fatalf("reported %d != incumbent makespan", m)
	}
}

func TestParTrivialInstances(t *testing.T) {
	// Zero tasks.
	g := bipartite.NewBuilder(0, 3).MustBuild()
	if a, m, err := SolveSingleProcPar(g, Options{}); err != nil || m != 0 || len(a) != 0 {
		t.Fatalf("empty SP: got (%v, %d, %v)", a, m, err)
	}
	// No processors.
	gBad := bipartite.NewBuilder(2, 0)
	if _, _, err := SolveSingleProcPar(gBad.MustBuild(), Options{}); err == nil {
		t.Fatal("no processors: want error")
	}
	// Single task.
	b := bipartite.NewBuilder(1, 2)
	b.AddWeightedEdge(0, 0, 7)
	b.AddWeightedEdge(0, 1, 3)
	_, m, err := SolveSingleProcPar(b.MustBuild(), Options{Workers: 4})
	if err != nil || m != 3 {
		t.Fatalf("single task: got (%d, %v), want (3, nil)", m, err)
	}
}

func TestParStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomHyper(rng, 14, 5, 3, 3, 9)
	var seqStats, parStats SearchStats
	if _, _, err := SolveMultiProc(h, Options{Stats: &seqStats}); err != nil {
		t.Fatal(err)
	}
	if seqStats.Nodes <= 0 || seqStats.Workers != 1 {
		t.Fatalf("sequential stats not populated: %+v", seqStats)
	}
	if _, _, err := SolveMultiProcPar(h, Options{Workers: 4, Stats: &parStats}); err != nil {
		t.Fatal(err)
	}
	if parStats.Nodes <= 0 || parStats.Workers != 4 || parStats.Subproblems <= 0 {
		t.Fatalf("parallel stats not populated: %+v", parStats)
	}
}

// TestParRaceStress drives the concurrency paths (steals, re-splits,
// concurrent incumbent offers) hard enough for the race detector to see
// them; CI runs this package under -race.
func TestParRaceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	h := randomHyper(rng, 18, 5, 3, 3, 12)
	_, want, err := SolveMultiProc(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		var st SearchStats
		_, got, err := SolveMultiProcPar(h, Options{Workers: 8, Stats: &st})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: parallel %d, sequential %d", trial, got, want)
		}
	}
}
