package exact

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"semimatch/internal/telemetry"
)

// TestTelemetryDoesNotPerturbSearch pins the BENCH invariant the
// instrumentation must preserve: sequential node counts are bit-identical
// with and without a trace span and a progress hook attached.
func TestTelemetryDoesNotPerturbSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		g := randomWeightedGraph(rng, 14, 4, 4, 30)
		var plain, traced SearchStats
		_, mPlain, err := SolveSingleProc(g, Options{Stats: &plain})
		if err != nil {
			t.Fatal(err)
		}
		tr := telemetry.StartSpan("solve")
		_, mTraced, err := SolveSingleProc(g, Options{
			Stats:            &traced,
			Trace:            tr,
			Progress:         func(telemetry.SearchProgress) {},
			ProgressInterval: time.Nanosecond, // snapshot at every block boundary
		})
		if err != nil {
			t.Fatal(err)
		}
		tr.End()
		if mPlain != mTraced {
			t.Fatalf("trial %d: makespan %d with telemetry vs %d without", trial, mTraced, mPlain)
		}
		if plain.Nodes != traced.Nodes {
			t.Fatalf("trial %d: node count %d with telemetry vs %d without — instrumentation perturbed the search",
				trial, traced.Nodes, plain.Nodes)
		}
	}

	rng = rand.New(rand.NewSource(8))
	for trial := 0; trial < 4; trial++ {
		h := randomHyper(rng, 11, 4, 3, 3, 25)
		var plain, traced SearchStats
		_, mPlain, err := SolveMultiProc(h, Options{Stats: &plain})
		if err != nil {
			t.Fatal(err)
		}
		_, mTraced, err := SolveMultiProc(h, Options{
			Stats:            &traced,
			Trace:            telemetry.StartSpan("solve"),
			Progress:         func(telemetry.SearchProgress) {},
			ProgressInterval: time.Nanosecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if mPlain != mTraced || plain.Nodes != traced.Nodes {
			t.Fatalf("trial %d: (m=%d nodes=%d) with telemetry vs (m=%d nodes=%d) without",
				trial, mTraced, traced.Nodes, mPlain, plain.Nodes)
		}
	}
}

// TestTraceSpanTaxonomy asserts the engine emits the documented phase
// spans with their attributes, and that the phases cover the bulk of
// the solve.
func TestTraceSpanTaxonomy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomWeightedGraph(rng, 16, 4, 4, 40)
	tr := telemetry.StartSpan("exact")
	var stats SearchStats
	if _, _, err := SolveSingleProc(g, Options{Stats: &stats, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	tr.End()

	kids := tr.Children()
	names := make(map[string]*telemetry.Span, len(kids))
	for _, c := range kids {
		names[c.Name] = c
	}
	for _, want := range []string{"compile", "greedy", "search"} {
		if names[want] == nil {
			t.Fatalf("missing %q span; have %d children", want, len(kids))
		}
	}
	var rb bool
	for _, c := range names["compile"].Children() {
		if c.Name == "root-bounds" {
			rb = true
		}
	}
	if !rb {
		t.Fatal("compile span has no root-bounds child")
	}
	ss := names["search"]
	nodes, ok := ss.Attr("nodes")
	if !ok || nodes.(int64) != stats.Nodes {
		t.Fatalf("search span nodes attr = %v (%v), stats say %d", nodes, ok, stats.Nodes)
	}
	if wit, ok := ss.Attr("witness"); !ok || wit.(string) != stats.Witness.String() {
		t.Fatalf("search span witness attr = %v, stats say %v", wit, stats.Witness)
	}
	if _, ok := ss.Attr("incumbent_entry"); !ok {
		t.Fatal("search span missing incumbent_entry")
	}
	if _, ok := ss.Attr("incumbent_exit"); !ok {
		t.Fatal("search span missing incumbent_exit")
	}
}

// TestProgressSnapshots asserts the parallel engine delivers monotone,
// well-formed snapshots, including the final one.
func TestProgressSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	h := randomHyper(rng, 13, 4, 3, 3, 35)
	var mu sync.Mutex
	var snaps []telemetry.SearchProgress
	var stats SearchStats
	_, m, err := SolveMultiProcPar(h, Options{
		Workers: 4,
		Stats:   &stats,
		Progress: func(p telemetry.SearchProgress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		},
		ProgressInterval: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	last := snaps[len(snaps)-1]
	if last.Nodes != stats.Nodes {
		t.Fatalf("final snapshot nodes = %d, stats = %d", last.Nodes, stats.Nodes)
	}
	if last.Incumbent != m {
		t.Fatalf("final snapshot incumbent = %d, makespan = %d", last.Incumbent, m)
	}
	if last.Workers != 4 {
		t.Fatalf("snapshot workers = %d", last.Workers)
	}
	prev := int64(-1)
	for i, s := range snaps {
		if s.Nodes < prev {
			t.Fatalf("snapshot %d nodes %d < previous %d", i, s.Nodes, prev)
		}
		prev = s.Nodes
		if s.Bound != stats.Bound {
			t.Fatalf("snapshot %d bound = %d, stats bound = %d", i, s.Bound, stats.Bound)
		}
	}
}
