package exact

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"semimatch/internal/adversarial"
	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
)

func randomUnitGraph(rng *rand.Rand, n, p, maxDeg int) *bipartite.Graph {
	b := bipartite.NewBuilder(n, p)
	for t := 0; t < n; t++ {
		d := 1 + rng.Intn(maxDeg)
		if d > p {
			d = p
		}
		for _, v := range rng.Perm(p)[:d] {
			b.AddEdge(t, v)
		}
	}
	return b.MustBuild()
}

func randomWeightedGraph(rng *rand.Rand, n, p, maxDeg int, maxW int64) *bipartite.Graph {
	b := bipartite.NewBuilder(n, p)
	for t := 0; t < n; t++ {
		d := 1 + rng.Intn(maxDeg)
		if d > p {
			d = p
		}
		for _, v := range rng.Perm(p)[:d] {
			b.AddWeightedEdge(t, v, 1+rng.Int63n(maxW))
		}
	}
	return b.MustBuild()
}

func randomHyper(rng *rand.Rand, nTasks, nProcs, maxDeg, maxSize int, maxW int64) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(nTasks, nProcs)
	for t := 0; t < nTasks; t++ {
		d := 1 + rng.Intn(maxDeg)
		for j := 0; j < d; j++ {
			size := 1 + rng.Intn(maxSize)
			if size > nProcs {
				size = nProcs
			}
			w := int64(1)
			if maxW > 1 {
				w = 1 + rng.Int63n(maxW)
			}
			b.AddEdge(t, rng.Perm(nProcs)[:size], w)
		}
	}
	return b.MustBuild()
}

func TestSolveSingleProcUnitMatchesPolynomialExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		g := randomUnitGraph(rng, 1+rng.Intn(15), 1+rng.Intn(6), 4)
		a, m, err := SolveSingleProc(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := core.ValidateAssignment(g, a); err != nil {
			t.Fatal(err)
		}
		if core.Makespan(g, a) != m {
			t.Fatalf("reported %d != assignment makespan %d", m, core.Makespan(g, a))
		}
		_, want, err := core.ExactUnit(g, core.ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if m != want {
			t.Fatalf("trial %d: B&B %d, matching-based exact %d", trial, m, want)
		}
	}
}

func TestSolveSingleProcWeighted(t *testing.T) {
	// Cross-check against exhaustive enumeration on tiny instances.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		g := randomWeightedGraph(rng, 1+rng.Intn(7), 1+rng.Intn(4), 3, 9)
		_, m, err := SolveSingleProc(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := enumSingle(g); m != want {
			t.Fatalf("trial %d: B&B %d, enumeration %d", trial, m, want)
		}
	}
}

// enumSingle exhaustively enumerates all assignments (no pruning at all) —
// an implementation-independent oracle.
func enumSingle(g *bipartite.Graph) int64 {
	loads := make([]int64, g.NRight)
	best := int64(1) << 62
	var rec func(t int)
	rec = func(t int) {
		if t == g.NLeft {
			m := int64(0)
			for _, l := range loads {
				if l > m {
					m = l
				}
			}
			if m < best {
				best = m
			}
			return
		}
		row := g.Neighbors(t)
		w := g.Weights(t)
		for i, p := range row {
			wt := int64(1)
			if w != nil {
				wt = w[i]
			}
			loads[p] += wt
			rec(t + 1)
			loads[p] -= wt
		}
	}
	rec(0)
	return best
}

func TestSolveSingleProcErrors(t *testing.T) {
	g, err := bipartite.NewFromAdjacency(2, [][]int{{0}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SolveSingleProc(g, Options{}); err == nil {
		t.Fatal("isolated task accepted")
	}
	empty, _ := bipartite.NewFromAdjacency(0, nil)
	if _, m, err := SolveSingleProc(empty, Options{}); err != nil || m != 0 {
		t.Fatalf("empty: m=%d err=%v", m, err)
	}
}

func TestSolveSingleProcNodeLimit(t *testing.T) {
	// Instances whose greedy incumbent meets the root bound are closed
	// without searching (no ErrLimit however small the budget), so scan
	// seeds for one the bounds leave open.
	for seed := int64(3); seed < 23; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomWeightedGraph(rng, 20, 4, 4, 50)
		_, m, err := SolveSingleProc(g, Options{MaxNodes: 5})
		if err == nil {
			continue // proven optimal at the root; try another instance
		}
		if !errors.Is(err, ErrLimit) {
			t.Fatalf("seed %d: expected ErrLimit, got %v", seed, err)
		}
		// Even with the limit, the incumbent (greedy) is a valid makespan.
		if m <= 0 {
			t.Fatalf("incumbent makespan %d", m)
		}
		return
	}
	t.Fatal("every probe instance closed at the root; node limit never exercised")
}

func TestSolveMultiProcAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		h := randomHyper(rng, 1+rng.Intn(6), 1+rng.Intn(4), 3, 3, 6)
		a, m, err := SolveMultiProc(h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := core.ValidateHyperAssignment(h, a); err != nil {
			t.Fatal(err)
		}
		if core.HyperMakespan(h, a) != m {
			t.Fatalf("reported %d != makespan %d", m, core.HyperMakespan(h, a))
		}
		if want := enumHyper(h); m != want {
			t.Fatalf("trial %d: B&B %d, enumeration %d", trial, m, want)
		}
	}
}

func enumHyper(h *hypergraph.Hypergraph) int64 {
	loads := make([]int64, h.NProcs)
	best := int64(1) << 62
	var rec func(t int)
	rec = func(t int) {
		if t == h.NTasks {
			m := int64(0)
			for _, l := range loads {
				if l > m {
					m = l
				}
			}
			if m < best {
				best = m
			}
			return
		}
		for _, e := range h.TaskEdges(t) {
			w := h.Weight[e]
			for _, u := range h.EdgeProcs(e) {
				loads[u] += w
			}
			rec(t + 1)
			for _, u := range h.EdgeProcs(e) {
				loads[u] -= w
			}
		}
	}
	rec(0)
	return best
}

func TestSolveMultiProcSandwich(t *testing.T) {
	// LB ≤ OPT ≤ every heuristic.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHyper(rng, 1+rng.Intn(10), 1+rng.Intn(5), 3, 3, 5)
		_, opt, err := SolveMultiProc(h, Options{})
		if err != nil {
			return false
		}
		if core.LowerBound(h) > opt {
			return false
		}
		for _, alg := range []func(*hypergraph.Hypergraph, core.HyperOptions) core.HyperAssignment{
			core.SortedGreedyHyp, core.VectorGreedyHyp, core.ExpectedGreedyHyp, core.ExpectedVectorGreedyHyp,
		} {
			if core.HyperMakespan(h, alg(h, core.HyperOptions{})) < opt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveX3CBasic(t *testing.T) {
	x := adversarial.X3C{Q: 2, Sets: [][3]int{{0, 1, 2}, {3, 4, 5}, {1, 2, 3}}}
	cover, ok := SolveX3C(x)
	if !ok {
		t.Fatal("cover exists")
	}
	if len(cover) != 2 {
		t.Fatalf("cover size %d", len(cover))
	}
	seen := map[int]bool{}
	for _, si := range cover {
		for _, e := range x.Sets[si] {
			if seen[e] {
				t.Fatal("overlapping cover")
			}
			seen[e] = true
		}
	}
	if len(seen) != 6 {
		t.Fatal("cover incomplete")
	}

	no := adversarial.X3C{Q: 2, Sets: [][3]int{{0, 1, 2}, {1, 2, 3}}}
	if _, ok := SolveX3C(no); ok {
		t.Fatal("no cover exists")
	}
}

// Theorem 1 equivalence: the reduction instance has optimal makespan 1 iff
// the X3C instance has an exact cover.
func TestTheorem1Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	covers, nonCovers := 0, 0
	for trial := 0; trial < 40; trial++ {
		q := 2 + rng.Intn(3)
		planted := rng.Intn(2) == 0
		x := adversarial.RandomX3C(rng, q, 2+rng.Intn(4), planted)
		_, hasCover := SolveX3C(x)
		h, err := x.ToMultiproc()
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := SolveMultiProc(h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if hasCover != (opt == 1) {
			t.Fatalf("trial %d: cover=%v but optimal makespan=%d", trial, hasCover, opt)
		}
		if hasCover {
			covers++
		} else {
			nonCovers++
		}
	}
	if covers == 0 || nonCovers == 0 {
		t.Fatalf("degenerate sample: %d covers, %d non-covers", covers, nonCovers)
	}
}

// hardHyper builds a number-partitioning instance (every task eligible on
// every processor, large random weights): proving optimality on these takes
// billions of search nodes, so the full search runs far beyond any test
// timeout unless cancelled.
func hardHyper() *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(7))
	const n, p = 24, 3
	b := hypergraph.NewBuilder(n, p)
	for t := 0; t < n; t++ {
		w := 100_000_000 + rng.Int63n(900_000_000)
		for u := 0; u < p; u++ {
			b.AddEdge(t, []int{u}, w)
		}
	}
	return b.MustBuild()
}

// hardGraph is the bipartite analog of hardHyper.
func hardGraph() *bipartite.Graph {
	rng := rand.New(rand.NewSource(7))
	const n, p = 24, 3
	b := bipartite.NewBuilder(n, p)
	for t := 0; t < n; t++ {
		w := 100_000_000 + rng.Int63n(900_000_000)
		for u := 0; u < p; u++ {
			b.AddWeightedEdge(t, u, w)
		}
	}
	return b.MustBuild()
}

func TestSolveMultiProcCtxCancelStopsPromptly(t *testing.T) {
	h := hardHyper()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	a, m, err := SolveMultiProcCtx(ctx, h, Options{MaxNodes: 1 << 60})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
	if elapsed > 250*time.Millisecond {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// The incumbent is still a complete, valid schedule.
	if err := core.ValidateHyperAssignment(h, a); err != nil {
		t.Fatal(err)
	}
	if core.HyperMakespan(h, a) != m {
		t.Fatalf("reported %d != makespan %d", m, core.HyperMakespan(h, a))
	}
}

func TestSolveSingleProcCtxDeadline(t *testing.T) {
	g := hardGraph()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	a, m, err := SolveSingleProcCtx(ctx, g, Options{MaxNodes: 1 << 60})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCancelled wrapping DeadlineExceeded", err)
	}
	if elapsed > 250*time.Millisecond {
		t.Fatalf("deadline overrun: %v", elapsed)
	}
	if err := core.ValidateAssignment(g, a); err != nil {
		t.Fatal(err)
	}
	if core.Makespan(g, a) != m {
		t.Fatalf("reported %d != makespan %d", m, core.Makespan(g, a))
	}
}

func TestSolveCtxBackgroundMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	h := randomHyper(rng, 8, 4, 3, 3, 6)
	_, m1, err1 := SolveMultiProc(h, Options{})
	_, m2, err2 := SolveMultiProcCtx(context.Background(), h, Options{})
	if err1 != nil || err2 != nil || m1 != m2 {
		t.Fatalf("plain (%d, %v) vs ctx (%d, %v)", m1, err1, m2, err2)
	}
}

func BenchmarkSolveMultiProc12Tasks(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	h := randomHyper(rng, 12, 6, 3, 3, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveMultiProc(h, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
