package exact

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// Micro-benchmarks for both branch-and-bound solvers, sequential and
// parallel. Names are benchstat-friendly (key=value segments) and seeds
// are fixed, so perf changes diff cleanly across runs:
//
//	go test -run '^$' -bench 'BnB' -count 10 ./internal/exact/ > new.txt
//	benchstat old.txt new.txt
//
// The instances are sized to finish in milliseconds under -benchtime 1x
// (CI's bench-smoke) while still exercising real pruning; the recorded
// hard-instance trajectory lives in BENCH.json (semibench -bench).

func BenchmarkBnBSP(b *testing.B) {
	cases := []struct {
		name string
		seed int64
		n, p int
		maxW int64
	}{
		{"shape=random/n=14/p=5", 11, 14, 5, 30},
		{"shape=random/n=18/p=5", 12, 18, 5, 30},
	}
	for _, c := range cases {
		rng := rand.New(rand.NewSource(c.seed))
		g := randomWeightedGraph(rng, c.n, c.p, 4, c.maxW)
		for _, workers := range []int{0, 4} {
			name := c.name + "/solver=seq"
			if workers > 0 {
				name = fmt.Sprintf("%s/solver=par/workers=%d", c.name, workers)
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var err error
					if workers == 0 {
						_, _, err = SolveSingleProc(g, Options{})
					} else {
						_, _, err = SolveSingleProcPar(g, Options{Workers: workers})
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkBnBMP(b *testing.B) {
	cases := []struct {
		name string
		seed int64
		n, p int
		maxW int64
	}{
		{"shape=random/n=12/p=6", 6, 12, 6, 8},
		{"shape=random/n=16/p=6", 7, 16, 6, 8},
	}
	for _, c := range cases {
		rng := rand.New(rand.NewSource(c.seed))
		h := randomHyper(rng, c.n, c.p, 3, 3, c.maxW)
		for _, workers := range []int{0, 4} {
			name := c.name + "/solver=seq"
			if workers > 0 {
				name = fmt.Sprintf("%s/solver=par/workers=%d", c.name, workers)
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var err error
					if workers == 0 {
						_, _, err = SolveMultiProc(h, Options{})
					} else {
						_, _, err = SolveMultiProcPar(h, Options{Workers: workers})
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBnBPerNodeAllocs pins the flat-core claim that the search's
// per-node hot loop performs zero heap allocations: every allocation of a
// sequential solve happens during compilation and setup, so allocations
// per expanded node go to zero as the tree grows. The benchmark reports
// allocs/node alongside the usual allocs/op (which counts the constant
// compile+setup work).
func BenchmarkBnBPerNodeAllocs(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	g := randomWeightedGraph(rng, 28, 5, 4, 60)
	b.Run("class=sp/n=28/p=5", func(b *testing.B) {
		b.ReportAllocs()
		var nodes int64
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < b.N; i++ {
			var st SearchStats
			if _, _, err := SolveSingleProc(g, Options{Stats: &st}); err != nil {
				b.Fatal(err)
			}
			nodes += st.Nodes
		}
		runtime.ReadMemStats(&after)
		if nodes > 0 {
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(nodes), "allocs/node")
		}
	})
	hrng := rand.New(rand.NewSource(21))
	h := randomHyper(hrng, 20, 6, 3, 3, 12)
	b.Run("class=mp/n=20/p=6", func(b *testing.B) {
		b.ReportAllocs()
		var nodes int64
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < b.N; i++ {
			var st SearchStats
			if _, _, err := SolveMultiProc(h, Options{Stats: &st}); err != nil {
				b.Fatal(err)
			}
			nodes += st.Nodes
		}
		runtime.ReadMemStats(&after)
		if nodes > 0 {
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(nodes), "allocs/node")
		}
	})
}
