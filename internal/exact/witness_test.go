package exact

import (
	"context"
	"math/rand"
	"testing"

	"semimatch/internal/bipartite"
	"semimatch/internal/cert"
	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
	"semimatch/internal/lb"
)

// strongBoundsOf re-derives the packing and matching bounds for an
// instance, mirroring what the engines compile into flatcore.Bounds.
func strongBoundsOf(t *testing.T, inst any) (pack, match int64) {
	t.Helper()
	switch v := inst.(type) {
	case *bipartite.Graph:
		return lb.Packing(lb.MinPlacementsGraph(v), v.NRight), lb.MatchingGraph(v)
	case *hypergraph.Hypergraph:
		return lb.Packing(lb.MinPlacementsHyper(v), v.NProcs), lb.MatchingHyper(v)
	}
	t.Fatalf("unknown instance type %T", inst)
	return 0, 0
}

// TestSearchStatsWitness: every engine (sequential and parallel, both
// classes) reports a root bound and a witness that certifies its result —
// a completed search claims optimality (a bound that closed the gap, or
// exhaustion), a truncated one claims nothing, and the reported bound
// never exceeds the returned makespan.
func TestSearchStatsWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomWeightedGraph(rng, 9, 3, 3, 9)
		h := randomHyper(rng, 7, 3, 3, 2, 6)

		type run struct {
			name  string
			solve func(st *SearchStats) (int64, error)
			inst  any
		}
		runs := []run{
			{"sp-seq", func(st *SearchStats) (int64, error) {
				_, m, err := SolveSingleProc(g, Options{Stats: st})
				return m, err
			}, g},
			{"sp-par", func(st *SearchStats) (int64, error) {
				_, m, err := SolveSingleProcPar(g, Options{Stats: st, Workers: 2})
				return m, err
			}, g},
			{"mp-seq", func(st *SearchStats) (int64, error) {
				_, m, err := SolveMultiProc(h, Options{Stats: st})
				return m, err
			}, h},
			{"mp-par", func(st *SearchStats) (int64, error) {
				_, m, err := SolveMultiProcPar(h, Options{Stats: st, Workers: 2})
				return m, err
			}, h},
		}
		for _, r := range runs {
			var st SearchStats
			m, err := r.solve(&st)
			if err != nil {
				t.Fatalf("%s: %v", r.name, err)
			}
			if st.Witness == cert.WitnessNone {
				t.Fatalf("%s: completed search reported no witness (stats %+v)", r.name, st)
			}
			if st.Bound > m {
				t.Fatalf("%s: bound %d > makespan %d", r.name, st.Bound, m)
			}
			avg, maxElem, berr := cert.Bounds(r.inst)
			if berr != nil {
				t.Fatal(berr)
			}
			pack, match := strongBoundsOf(t, r.inst)
			switch st.Witness {
			case cert.WitnessAverageLoad:
				if avg != m {
					t.Fatalf("%s: average-load witness but avg %d ≠ makespan %d", r.name, avg, m)
				}
			case cert.WitnessMaxElement:
				if maxElem != m {
					t.Fatalf("%s: max-element witness but maxElem %d ≠ makespan %d", r.name, maxElem, m)
				}
			case cert.WitnessPacking:
				if pack != m {
					t.Fatalf("%s: packing witness but pack %d ≠ makespan %d", r.name, pack, m)
				}
			case cert.WitnessMatching:
				if match != m {
					t.Fatalf("%s: matching witness but match %d ≠ makespan %d", r.name, match, m)
				}
			case cert.WitnessExhaustive:
				if avg == m || maxElem == m || pack == m || match == m {
					t.Fatalf("%s: exhaustive witness although a bound closes the gap (avg %d, maxElem %d, pack %d, match %d, m %d)",
						r.name, avg, maxElem, pack, match, m)
				}
			}
			// The reported bound is the strongest of the four root bounds:
			// at least the cheap ones, never above the optimum.
			want := max(max(avg, maxElem), max(pack, match))
			if st.Bound != want {
				t.Fatalf("%s: bound %d, want strongest root bound %d", r.name, st.Bound, want)
			}
		}
	}
}

// TestSearchStatsWitnessTruncated: a budget-truncated search reports
// WitnessNone — its incumbent carries no optimality claim — while still
// reporting the root bound.
func TestSearchStatsWitnessTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomWeightedGraph(rng, 18, 4, 4, 50)
	var st SearchStats
	a, m, err := SolveSingleProcCtx(context.Background(), g, Options{MaxNodes: 5, Stats: &st})
	if err == nil {
		t.Skip("instance solved within 5 nodes; cannot exercise truncation")
	}
	if a == nil {
		t.Fatal("truncated solve returned no incumbent")
	}
	if got := core.Makespan(g, a); got != m {
		t.Fatalf("incumbent makespan %d, reported %d", got, m)
	}
	if st.Witness != cert.WitnessNone {
		t.Fatalf("truncated search claimed witness %s", st.Witness)
	}
	if st.Bound <= 0 {
		t.Fatalf("truncated search lost the root bound: %+v", st)
	}
}
