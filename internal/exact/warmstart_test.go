package exact

import (
	"math/rand"
	"testing"

	"semimatch/internal/core"
)

// The warm-start guard: seeding a search with InitialIncumbent must never
// change the optimum it returns, and a sequential warm-started search must
// expand at most as many nodes as the cold one — a strictly tighter
// initial bound prunes a superset of the cold search's prunes. Cold runs
// are byte-identical to runs before InitialIncumbent existed, which is
// what keeps the semibench -max-nodes-regress trajectory valid.

func TestWarmStartSingleProcNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		g := randomWeightedGraph(rng, 6+rng.Intn(10), 2+rng.Intn(4), 3, 20)

		var cold SearchStats
		aCold, mCold, err := SolveSingleProc(g, Options{Stats: &cold})
		if err != nil {
			t.Fatal(err)
		}

		// Warm-start from the cold optimum itself: the tightest possible
		// incumbent. Same makespan must come back with no more nodes.
		var warm SearchStats
		aWarm, mWarm, err := SolveSingleProc(g, Options{
			Stats:            &warm,
			InitialIncumbent: aCold,
		})
		if err != nil {
			t.Fatal(err)
		}
		if mWarm != mCold {
			t.Fatalf("trial %d: warm makespan %d != cold %d", trial, mWarm, mCold)
		}
		if err := core.ValidateAssignment(g, aWarm); err != nil {
			t.Fatalf("trial %d: warm assignment invalid: %v", trial, err)
		}
		if warm.Nodes > cold.Nodes {
			t.Fatalf("trial %d: warm explored %d nodes > cold %d", trial, warm.Nodes, cold.Nodes)
		}
	}
}

func TestWarmStartMultiProcNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		h := randomHyper(rng, 5+rng.Intn(8), 2+rng.Intn(4), 3, 3, 12)

		var cold SearchStats
		aCold, mCold, err := SolveMultiProc(h, Options{Stats: &cold})
		if err != nil {
			t.Fatal(err)
		}

		var warm SearchStats
		aWarm, mWarm, err := SolveMultiProc(h, Options{
			Stats:            &warm,
			InitialIncumbent: aCold,
		})
		if err != nil {
			t.Fatal(err)
		}
		if mWarm != mCold {
			t.Fatalf("trial %d: warm makespan %d != cold %d", trial, mWarm, mCold)
		}
		if err := core.ValidateHyperAssignment(h, aWarm); err != nil {
			t.Fatalf("trial %d: warm assignment invalid: %v", trial, err)
		}
		if warm.Nodes > cold.Nodes {
			t.Fatalf("trial %d: warm explored %d nodes > cold %d", trial, warm.Nodes, cold.Nodes)
		}
	}
}

// An invalid or non-improving warm start must be ignored: the run behaves
// exactly like a cold one, node counts included.
func TestWarmStartInvalidIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomWeightedGraph(rng, 10, 3, 3, 20)

	var cold SearchStats
	_, mCold, err := SolveSingleProc(g, Options{Stats: &cold})
	if err != nil {
		t.Fatal(err)
	}

	bad := [][]int32{
		make([]int32, g.NLeft-1),             // wrong length
		append(make([]int32, g.NLeft-1), 99), // out-of-range processor
	}
	// An assignment to an ineligible processor: flip task 0 to a
	// processor outside its row if one exists.
	ineligible := make([]int32, g.NLeft)
	row := g.Neighbors(0)
	for p := int32(0); int(p) < g.NRight; p++ {
		found := false
		for _, q := range row {
			if q == p {
				found = true
			}
		}
		if !found {
			ineligible[0] = p
			bad = append(bad, ineligible)
			break
		}
	}
	for i, w := range bad {
		var st SearchStats
		_, m, err := SolveSingleProc(g, Options{Stats: &st, InitialIncumbent: w})
		if err != nil {
			t.Fatalf("bad warm start %d: %v", i, err)
		}
		if m != mCold || st.Nodes != cold.Nodes {
			t.Fatalf("bad warm start %d perturbed the search: makespan %d/%d nodes %d/%d",
				i, m, mCold, st.Nodes, cold.Nodes)
		}
	}
}

// Warm starts on the parallel engine: same optimum, valid schedule. (Node
// counts are nondeterministic across workers, so only correctness is
// asserted here; the sequential tests pin the node-count guarantee.)
func TestWarmStartParallelCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		g := randomWeightedGraph(rng, 8+rng.Intn(8), 2+rng.Intn(4), 3, 20)
		aCold, mCold, err := SolveSingleProcPar(g, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		aWarm, mWarm, err := SolveSingleProcPar(g, Options{Workers: 4, InitialIncumbent: aCold})
		if err != nil {
			t.Fatal(err)
		}
		if mWarm != mCold {
			t.Fatalf("trial %d: parallel warm makespan %d != cold %d", trial, mWarm, mCold)
		}
		if err := core.ValidateAssignment(g, aWarm); err != nil {
			t.Fatal(err)
		}

		h := randomHyper(rng, 5+rng.Intn(6), 2+rng.Intn(3), 3, 3, 12)
		hCold, hmCold, err := SolveMultiProcPar(h, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		_, hmWarm, err := SolveMultiProcPar(h, Options{Workers: 4, InitialIncumbent: hCold})
		if err != nil {
			t.Fatal(err)
		}
		if hmWarm != hmCold {
			t.Fatalf("trial %d: parallel hyper warm makespan %d != cold %d", trial, hmWarm, hmCold)
		}
	}
}
