package flatcore

import (
	"math/rand"
	"sort"
	"testing"

	"semimatch/internal/bipartite"
	"semimatch/internal/hypergraph"
)

func randGraph(rng *rand.Rand, n, p, deg int, wmax int64) *bipartite.Graph {
	b := bipartite.NewBuilder(n, p)
	for t := 0; t < n; t++ {
		perm := rng.Perm(p)
		d := 1 + rng.Intn(deg)
		if d > p {
			d = p
		}
		for _, proc := range perm[:d] {
			b.AddWeightedEdge(t, proc, 1+rng.Int63n(wmax))
		}
	}
	return b.MustBuild()
}

func randHyper(rng *rand.Rand, n, p, deg, maxSize int, wmax int64) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n, p)
	for t := 0; t < n; t++ {
		d := 1 + rng.Intn(deg)
		for e := 0; e < d; e++ {
			sz := 1 + rng.Intn(maxSize)
			if sz > p {
				sz = p
			}
			perm := rng.Perm(p)
			b.AddEdge(t, perm[:sz], 1+rng.Int63n(wmax))
		}
	}
	return b.MustBuild()
}

// bruteSP explores every assignment of the compiled shape below a given
// prefix of child ordinals and returns the best completion makespan.
func bruteSP(pr *SP, prefix []int32) int64 {
	loads := make([]int64, pr.P)
	var cur int64
	for d, ord := range prefix {
		k := int(pr.ChildPtr[d]) + int(ord)
		loads[pr.ChildProc[k]] += pr.ChildWt[k]
		if loads[pr.ChildProc[k]] > cur {
			cur = loads[pr.ChildProc[k]]
		}
	}
	best := int64(1) << 62
	var rec func(i int, curMax int64)
	rec = func(i int, curMax int64) {
		if curMax >= best {
			return
		}
		if i == pr.N {
			best = curMax
			return
		}
		for k := int(pr.ChildPtr[i]); k < int(pr.ChildPtr[i+1]); k++ {
			proc, wt := pr.ChildProc[k], pr.ChildWt[k]
			loads[proc] += wt
			nm := curMax
			if loads[proc] > nm {
				nm = loads[proc]
			}
			rec(i+1, nm)
			loads[proc] -= wt
		}
	}
	rec(len(prefix), cur)
	return best
}

// bruteMP is bruteSP for a compiled MULTIPROC shape.
func bruteMP(pr *MP, prefix []int32) int64 {
	loads := make([]int64, pr.P)
	var cur int64
	apply := func(k int, curMax int64) int64 {
		e, w := pr.ChildEdge[k], pr.ChildWt[k]
		for _, u := range pr.Pins[pr.PinPtr[e]:pr.PinPtr[e+1]] {
			loads[u] += w
			if loads[u] > curMax {
				curMax = loads[u]
			}
		}
		return curMax
	}
	undo := func(k int) {
		e, w := pr.ChildEdge[k], pr.ChildWt[k]
		for _, u := range pr.Pins[pr.PinPtr[e]:pr.PinPtr[e+1]] {
			loads[u] -= w
		}
	}
	for d, ord := range prefix {
		cur = apply(int(pr.ChildPtr[d])+int(ord), cur)
	}
	best := int64(1) << 62
	var rec func(i int, curMax int64)
	rec = func(i int, curMax int64) {
		if curMax >= best {
			return
		}
		if i == pr.N {
			best = curMax
			return
		}
		for k := int(pr.ChildPtr[i]); k < int(pr.ChildPtr[i+1]); k++ {
			nm := apply(k, curMax)
			rec(i+1, nm)
			undo(k)
		}
	}
	rec(len(prefix), cur)
	return best
}

// TestCompileSPInvariants: CSR structure, sort order, suffix bounds,
// EqPrev correctness, and the root bound sandwich on random instances.
func TestCompileSPInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		g := randGraph(rng, 3+rng.Intn(7), 2+rng.Intn(3), 3, 20)
		pr := CompileSP(g)
		if pr.N != g.NLeft || pr.P != g.NRight {
			t.Fatal("dims")
		}
		seen := make([]bool, pr.N)
		for i := 0; i < pr.N; i++ {
			tsk := int(pr.Order[i])
			seen[tsk] = true
			base, end := int(pr.ChildPtr[i]), int(pr.ChildPtr[i+1])
			if end-base != g.Degree(tsk) {
				t.Fatalf("trial %d: position %d child count %d ≠ degree %d", trial, i, end-base, g.Degree(tsk))
			}
			for k := base + 1; k < end; k++ {
				if pr.ChildWt[k] < pr.ChildWt[k-1] {
					t.Fatalf("trial %d: children not weight-sorted at position %d", trial, i)
				}
			}
			if pr.EqPrev[i] {
				pb, pe := int(pr.ChildPtr[i-1]), int(pr.ChildPtr[i])
				if pe-pb != end-base {
					t.Fatalf("trial %d: EqPrev with unequal degrees", trial)
				}
				for k := 0; k < end-base; k++ {
					if pr.ChildProc[pb+k] != pr.ChildProc[base+k] || pr.ChildWt[pb+k] != pr.ChildWt[base+k] {
						t.Fatalf("trial %d: EqPrev with differing child lists", trial)
					}
				}
			}
		}
		for _, s := range seen {
			if !s {
				t.Fatalf("trial %d: Order is not a permutation", trial)
			}
		}
		// Suffix arrays.
		var sum int64
		for i := pr.N - 1; i >= 0; i-- {
			sum += pr.ChildWt[pr.ChildPtr[i]]
			if pr.SuffixAvg[i] != sum {
				t.Fatalf("trial %d: SuffixAvg[%d] = %d, want %d", trial, i, pr.SuffixAvg[i], sum)
			}
		}
		// Bound sandwich: every root bound is ≤ the optimum, and Root()
		// is at least the classic bounds.
		opt := bruteSP(pr, nil)
		for _, b := range []int64{pr.Bounds.Avg, pr.Bounds.MaxElem, pr.Bounds.Pack, pr.Bounds.Match} {
			if b > opt {
				t.Fatalf("trial %d: root bound %d exceeds optimum %d (%+v)", trial, b, opt, pr.Bounds)
			}
		}
		if pr.Bounds.Root() < pr.Bounds.Avg || pr.Bounds.Root() < pr.Bounds.MaxElem {
			t.Fatalf("trial %d: Root() below a component", trial)
		}
	}
}

// TestCompileMPInvariants: same structural checks for the hypergraph
// shape, plus pin bitsets matching the pin lists.
func TestCompileMPInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		h := randHyper(rng, 3+rng.Intn(6), 2+rng.Intn(3), 3, 2, 20)
		pr := CompileMP(h)
		for i := 0; i < pr.N; i++ {
			tsk := int(pr.Order[i])
			base, end := int(pr.ChildPtr[i]), int(pr.ChildPtr[i+1])
			if end-base != h.TaskDegree(tsk) {
				t.Fatalf("trial %d: position %d child count mismatch", trial, i)
			}
			for k := base; k < end; k++ {
				e := pr.ChildEdge[k]
				if pr.ChildWt[k] != h.Weight[e] || pr.ChildCost[k] != h.Weight[e]*int64(h.EdgeSize(e)) {
					t.Fatalf("trial %d: child weight/cost mismatch", trial)
				}
				if k > base && pr.ChildCost[k] < pr.ChildCost[k-1] {
					t.Fatalf("trial %d: children not cost-sorted", trial)
				}
				bits := Bitset(pr.PinBits[int(e)*pr.PinWords : (int(e)+1)*pr.PinWords])
				n := 0
				for _, u := range h.EdgeProcs(e) {
					if !bits.Has(u) {
						t.Fatalf("trial %d: pin bit missing", trial)
					}
					n++
				}
				pop := 0
				for _, w := range bits {
					for ; w != 0; w &= w - 1 {
						pop++
					}
				}
				if pop != n {
					t.Fatalf("trial %d: pin bitset popcount %d ≠ %d", trial, pop, n)
				}
			}
			if pr.EqPrev[i] {
				pb := int(pr.ChildPtr[i-1])
				for k := 0; k < end-base; k++ {
					ea, eb := pr.ChildEdge[pb+k], pr.ChildEdge[base+k]
					if h.Weight[ea] != h.Weight[eb] {
						t.Fatalf("trial %d: EqPrev weight mismatch", trial)
					}
					wa := pr.PinBits[int(ea)*pr.PinWords : (int(ea)+1)*pr.PinWords]
					wb := pr.PinBits[int(eb)*pr.PinWords : (int(eb)+1)*pr.PinWords]
					if !EqualWords(wa, wb) {
						t.Fatalf("trial %d: EqPrev pin-set mismatch", trial)
					}
				}
			}
		}
		opt := bruteMP(pr, nil)
		for _, b := range []int64{pr.Bounds.Avg, pr.Bounds.MaxElem, pr.Bounds.Pack, pr.Bounds.Match} {
			if b > opt {
				t.Fatalf("trial %d: root bound %d exceeds optimum %d (%+v)", trial, b, opt, pr.Bounds)
			}
		}
	}
}

// TestSPSigRows: processors sharing a signature must have identical
// (task, weight) incidence rows — the definition of the automorphism.
func TestSPSigRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		// Low weight spread so identical rows actually occur.
		g := randGraph(rng, 4+rng.Intn(5), 2+rng.Intn(3), 3, 2)
		pr := CompileSP(g)
		if pr.Sig == nil {
			continue
		}
		for a := 0; a < pr.P; a++ {
			for b := a + 1; b < pr.P; b++ {
				if pr.Sig[a] < 0 || pr.Sig[a] != pr.Sig[b] {
					continue
				}
				for tsk := 0; tsk < g.NLeft; tsk++ {
					var wa, wb int64 = -1, -1
					row := g.Neighbors(tsk)
					w := g.Weights(tsk)
					for k, proc := range row {
						wt := int64(1)
						if w != nil {
							wt = w[k]
						}
						if int(proc) == a {
							wa = wt
						}
						if int(proc) == b {
							wb = wt
						}
					}
					if wa != wb {
						t.Fatalf("trial %d: procs %d,%d share sig but task %d weights differ (%d vs %d)", trial, a, b, tsk, wa, wb)
					}
				}
			}
		}
	}
}

// TestMPSigAutomorphism: for every pair of processors sharing a
// signature, transposing them must map the edge multiset onto itself —
// checked directly against the hypergraph.
func TestMPSigAutomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		h := randHyper(rng, 4+rng.Intn(5), 2+rng.Intn(3), 2, 2, 2)
		pr := CompileMP(h)
		if pr.Sig == nil {
			continue
		}
		type key struct {
			owner int32
			w     int64
			pins  string
		}
		multiset := func(swap func(int32) int32) map[key]int {
			m := map[key]int{}
			for e := 0; e < h.NumEdges(); e++ {
				pins := append([]int32(nil), h.EdgeProcs(int32(e))...)
				for i := range pins {
					pins[i] = swap(pins[i])
				}
				sort.Slice(pins, func(i, j int) bool { return pins[i] < pins[j] })
				s := ""
				for _, u := range pins {
					s += string(rune(u)) + ","
				}
				m[key{h.Owner[e], h.Weight[e], s}]++
			}
			return m
		}
		ident := multiset(func(u int32) int32 { return u })
		for a := int32(0); a < int32(pr.P); a++ {
			for b := a + 1; b < int32(pr.P); b++ {
				if pr.Sig[a] < 0 || pr.Sig[a] != pr.Sig[b] {
					continue
				}
				swapped := multiset(func(u int32) int32 {
					switch u {
					case a:
						return b
					case b:
						return a
					}
					return u
				})
				if len(swapped) != len(ident) {
					t.Fatalf("trial %d: swap (%d %d) changes edge multiset", trial, a, b)
				}
				for k, c := range ident {
					if swapped[k] != c {
						t.Fatalf("trial %d: swap (%d %d) changes edge multiset at %+v", trial, a, b, k)
					}
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Skip("no symmetric pairs generated")
	}
}

// TestCompletePruneSound: whenever CompletePrune fires at a random
// interior node, brute-force completion confirms the subtree really
// cannot beat the incumbent bound.
func TestCompletePruneSound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fired := 0
	for trial := 0; trial < 80; trial++ {
		g := randGraph(rng, 4+rng.Intn(5), 2+rng.Intn(3), 3, 20)
		pr := CompileSP(g)
		from := rng.Intn(pr.N)
		prefix := make([]int32, from)
		loads := make([]int64, pr.P)
		for d := 0; d < from; d++ {
			deg := int(pr.ChildPtr[d+1] - pr.ChildPtr[d])
			ord := int32(rng.Intn(deg))
			prefix[d] = ord
			k := int(pr.ChildPtr[d]) + int(ord)
			loads[pr.ChildProc[k]] += pr.ChildWt[k]
		}
		opt := bruteSP(pr, prefix)
		// A prune at best = opt must never fire (opt-1 < opt is sound to
		// rule out... the completion achieving opt must remain); a prune
		// at best = opt is claiming nothing < opt exists — true. At
		// best = opt+1 the claim "nothing < opt+1" is false.
		if pr.CompletePrune(loads, from, opt) {
			fired++
		}
		if pr.CompletePrune(loads, from, opt+1) {
			t.Fatalf("trial %d: SP CompletePrune fired although completion %d < best %d exists", trial, opt, opt+1)
		}

		h := randHyper(rng, 4+rng.Intn(4), 2+rng.Intn(3), 2, 2, 15)
		mpr := CompileMP(h)
		mfrom := rng.Intn(mpr.N)
		mprefix := make([]int32, mfrom)
		mloads := make([]int64, mpr.P)
		for d := 0; d < mfrom; d++ {
			deg := int(mpr.ChildPtr[d+1] - mpr.ChildPtr[d])
			ord := int32(rng.Intn(deg))
			mprefix[d] = ord
			k := int(mpr.ChildPtr[d]) + int(ord)
			e, w := mpr.ChildEdge[k], mpr.ChildWt[k]
			for _, u := range mpr.Pins[mpr.PinPtr[e]:mpr.PinPtr[e+1]] {
				mloads[u] += w
			}
		}
		mopt := bruteMP(mpr, mprefix)
		if mpr.CompletePrune(mloads, mfrom, mopt) {
			fired++
		}
		if mpr.CompletePrune(mloads, mfrom, mopt+1) {
			t.Fatalf("trial %d: MP CompletePrune fired although completion %d < best %d exists", trial, mopt, mopt+1)
		}
	}
	t.Logf("prune fired on %d exact-threshold probes", fired)
}

// TestBitset: basic bit operations.
func TestBitset(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int32{0, 63, 64, 127, 129} {
		if b.Has(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Has(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Has(1) || b.Has(128) {
		t.Fatal("stray bit")
	}
	c := NewBitset(130)
	if EqualWords(b, c) {
		t.Fatal("unequal bitsets compare equal")
	}
	copy(c, b)
	if !EqualWords(b, c) {
		t.Fatal("equal bitsets compare unequal")
	}
}
