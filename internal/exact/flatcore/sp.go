package flatcore

import (
	"sort"
	"time"

	"semimatch/internal/bipartite"
	"semimatch/internal/flow"
	"semimatch/internal/lb"
)

// SP is the compiled shape of one SINGLEPROC search: flat CSR child
// arrays, branch order, suffix bounds, symmetry/dominance tables, and
// the root bound set. Immutable after CompileSP; shared read-only by all
// workers. Every task must have at least one eligible processor (the
// engines validate before compiling).
type SP struct {
	N, P int
	// Order is the branch order: position → task. Tasks with fewest
	// eligible processors come first; ties are broken by child-list
	// content so interchangeable tasks sit adjacent (EqPrev needs that),
	// then by task id for determinism.
	Order []int32
	// ChildPtr/ChildProc/ChildWt are the CSR child arrays: position i's
	// candidate placements are ChildProc[ChildPtr[i]:ChildPtr[i+1]],
	// sorted cheapest weight first (ties by processor id).
	ChildPtr  []int32
	ChildProc []int32
	ChildWt   []int64
	// Sig groups interchangeable processors (verified automorphisms); -1
	// marks processors with no symmetric partner. nil when the instance
	// has no symmetry at all.
	Sig []int32
	// ChildClass, parallel to ChildProc, is the static symmetry class of
	// each child within its position: two children of one position share
	// a class iff they place the same weight on processors of the same
	// symmetry group. -1 marks children with no statically symmetric
	// sibling. nil when Sig is nil.
	ChildClass []int16
	// EqPrev[i] reports that position i's task has a child list
	// identical to position i-1's task (same processors, same weights):
	// the two tasks are interchangeable, and the engine prunes branches
	// where position i picks a smaller child ordinal than position i-1.
	EqPrev []bool
	// SuffixAvg[i] = Σ_{j≥i} cheapest weight of position j (average-load
	// numerator); SuffixMax[i] = max_{j≥i} cheapest weight (max-element).
	SuffixAvg []int64
	SuffixMax []int64
	// Bounds is the root lower-bound set; Root() is the strongest.
	// BoundsWall is how long computing it took inside CompileSP — the
	// telemetry layer reports it as the "root-bounds" trace span.
	Bounds     Bounds
	BoundsWall time.Duration
	// UseFlow enables the completion prune (CompletePrune) at subproblem
	// expansions; MinLoadScan enables the per-node min-load refinement.
	UseFlow     bool
	MinLoadScan bool
}

// CompileSP compiles g into its flat search shape.
func CompileSP(g *bipartite.Graph) *SP {
	n, p := g.NLeft, g.NRight
	pr := &SP{N: n, P: p}

	// Per-task child lists sorted by (weight, processor). Rows are built
	// sorted by processor, so a stable sort on weight gives that order.
	chProc := make([][]int32, n)
	chWt := make([][]int64, n)
	for t := 0; t < n; t++ {
		row := g.Neighbors(t)
		w := g.Weights(t)
		procs := append([]int32(nil), row...)
		wts := make([]int64, len(row))
		for k := range wts {
			if w != nil {
				wts[k] = w[k]
			} else {
				wts[k] = 1
			}
		}
		idx := make([]int, len(row))
		for k := range idx {
			idx[k] = k
		}
		sort.Slice(idx, func(a, b int) bool {
			if wts[idx[a]] != wts[idx[b]] {
				return wts[idx[a]] < wts[idx[b]]
			}
			return procs[idx[a]] < procs[idx[b]]
		})
		sp := make([]int32, len(row))
		sw := make([]int64, len(row))
		for k, j := range idx {
			sp[k], sw[k] = procs[j], wts[j]
		}
		chProc[t], chWt[t] = sp, sw
	}

	// cmpTasks orders tasks by (degree, child-list content): 0 means the
	// two tasks have identical (weight, processor) child lists and are
	// interchangeable. Within equal degree, heavier child lists come first
	// (LPT-style): constrained-then-heaviest branch order finds tight
	// incumbents early and fails high subtrees fast.
	cmpTasks := func(a, b int32) int {
		pa, pb := chProc[a], chProc[b]
		if len(pa) != len(pb) {
			return len(pa) - len(pb)
		}
		wa, wb := chWt[a], chWt[b]
		for k := range pa {
			if wa[k] != wb[k] {
				if wa[k] > wb[k] {
					return -1
				}
				return 1
			}
			if pa[k] != pb[k] {
				return int(pa[k]) - int(pb[k])
			}
		}
		return 0
	}
	pr.Order = make([]int32, n)
	for i := range pr.Order {
		pr.Order[i] = int32(i)
	}
	sort.SliceStable(pr.Order, func(i, j int) bool {
		if c := cmpTasks(pr.Order[i], pr.Order[j]); c != 0 {
			return c < 0
		}
		return pr.Order[i] < pr.Order[j]
	})

	// Flatten into CSR arrays; detect adjacent interchangeable tasks.
	pr.ChildPtr = make([]int32, n+1)
	pr.EqPrev = make([]bool, n)
	total := 0
	for i, t := range pr.Order {
		pr.ChildPtr[i] = int32(total)
		total += len(chProc[t])
		pr.EqPrev[i] = i > 0 && cmpTasks(pr.Order[i-1], t) == 0
	}
	pr.ChildPtr[n] = int32(total)
	pr.ChildProc = make([]int32, total)
	pr.ChildWt = make([]int64, total)
	for i, t := range pr.Order {
		copy(pr.ChildProc[pr.ChildPtr[i]:], chProc[t])
		copy(pr.ChildWt[pr.ChildPtr[i]:], chWt[t])
	}

	pr.SuffixAvg = make([]int64, n+1)
	pr.SuffixMax = make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		minC := pr.ChildWt[pr.ChildPtr[i]] // children sorted by weight
		pr.SuffixAvg[i] = pr.SuffixAvg[i+1] + minC
		pr.SuffixMax[i] = pr.SuffixMax[i+1]
		if minC > pr.SuffixMax[i] {
			pr.SuffixMax[i] = minC
		}
	}

	pr.Sig = spProcSig(g)
	if pr.Sig != nil {
		pr.ChildClass = spChildClasses(pr)
	}

	if n > 0 && p > 0 {
		boundsStart := time.Now()
		items := make([]int64, n)
		for i := range items {
			items[i] = pr.ChildWt[pr.ChildPtr[i]]
		}
		pr.Bounds = Bounds{
			Avg:     (pr.SuffixAvg[0] + int64(p) - 1) / int64(p),
			MaxElem: pr.SuffixMax[0],
			Pack:    lb.Packing(items, p),
		}
		if n <= MatchCap {
			pr.Bounds.Match = lb.MatchingGraph(g)
		}
		pr.BoundsWall = time.Since(boundsStart)
	}
	pr.UseFlow = n > 0 && n <= MatchCap
	pr.MinLoadScan = p > 1 && p <= MinLoadCap
	return pr
}

// spProcSig groups processors with identical (task, weight) incidence
// rows: swapping two such processors is an automorphism of the instance.
// Returns nil when no group has two members. Sort-based: processors are
// ordered by their reverse-graph rows (already canonical — tasks
// ascending) and equal runs become groups.
func spProcSig(g *bipartite.Graph) []int32 {
	p := g.NRight
	if p < 2 {
		return nil
	}
	rev := g.Reverse()
	cmp := func(a, b int32) int {
		ra, rb := rev.Neighbors(int(a)), rev.Neighbors(int(b))
		if len(ra) != len(rb) {
			return len(ra) - len(rb)
		}
		wa, wb := rev.Weights(int(a)), rev.Weights(int(b))
		for k := range ra {
			if ra[k] != rb[k] {
				return int(ra[k]) - int(rb[k])
			}
			if wa != nil && wa[k] != wb[k] {
				if wa[k] < wb[k] {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	idx := make([]int32, p)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		if c := cmp(idx[i], idx[j]); c != 0 {
			return c < 0
		}
		return idx[i] < idx[j]
	})
	sig := make([]int32, p)
	for i := range sig {
		sig[i] = -1
	}
	id := int32(0)
	any := false
	for lo := 0; lo < p; {
		hi := lo + 1
		for hi < p && cmp(idx[lo], idx[hi]) == 0 {
			hi++
		}
		if hi-lo >= 2 {
			any = true
			for _, u := range idx[lo:hi] {
				sig[u] = id
			}
			id++
		}
		lo = hi
	}
	if !any {
		return nil
	}
	return sig
}

// spChildClasses assigns, per position, symmetry classes over the
// (processor group, weight) keys of its children — sort-based grouping
// over a per-position scratch, classes with fewer than two members
// demoted to -1.
func spChildClasses(pr *SP) []int16 {
	cls := make([]int16, len(pr.ChildProc))
	var scratch []int32
	for i := 0; i < pr.N; i++ {
		base, end := int(pr.ChildPtr[i]), int(pr.ChildPtr[i+1])
		scratch = scratch[:0]
		for k := base; k < end; k++ {
			cls[k] = -1
			if pr.Sig[pr.ChildProc[k]] >= 0 {
				scratch = append(scratch, int32(k))
			}
		}
		// Children are weight-sorted already; order the grouped subset by
		// (group, weight) and cut it into equal runs.
		sort.Slice(scratch, func(a, b int) bool {
			ka, kb := scratch[a], scratch[b]
			sa, sb := pr.Sig[pr.ChildProc[ka]], pr.Sig[pr.ChildProc[kb]]
			if sa != sb {
				return sa < sb
			}
			return pr.ChildWt[ka] < pr.ChildWt[kb]
		})
		next := int16(0)
		for lo := 0; lo < len(scratch); {
			hi := lo + 1
			for hi < len(scratch) &&
				pr.Sig[pr.ChildProc[scratch[hi]]] == pr.Sig[pr.ChildProc[scratch[lo]]] &&
				pr.ChildWt[scratch[hi]] == pr.ChildWt[scratch[lo]] {
				hi++
			}
			if hi-lo >= 2 {
				for _, k := range scratch[lo:hi] {
					cls[k] = next
				}
				next++
			}
			lo = hi
		}
	}
	return cls
}

// CompletePrune reports whether no completion of positions from..N-1 on
// top of the given loads can reach makespan < best: with deadline
// T = best-1, every remaining task must route its cheapest placement
// weight through an edge that still fits (w + load ≤ T) into processors
// with residual capacity T - load. Infeasibility of that flow proves the
// subtree cannot improve the incumbent. Sound for any node; the engines
// call it at subproblem expansions only, keeping the per-node loop
// flow-free.
func (pr *SP) CompletePrune(loads []int64, from int, best int64) bool {
	T := best - 1
	if T < 0 {
		return false
	}
	n := pr.N - from
	if n <= 0 {
		return false
	}
	net := flow.NewNetwork(n + pr.P + 2)
	s, t := n+pr.P, n+pr.P+1
	var want int64
	for j := 0; j < n; j++ {
		pos := from + j
		m := pr.ChildWt[pr.ChildPtr[pos]]
		net.AddArc(s, j, m)
		want += m
		any := false
		for k := pr.ChildPtr[pos]; k < pr.ChildPtr[pos+1]; k++ {
			proc := pr.ChildProc[k]
			if pr.ChildWt[k]+loads[proc] <= T {
				net.AddArc(j, n+int(proc), m)
				any = true
			}
		}
		if !any {
			return true // no placement of this task fits under T at all
		}
	}
	for proc := 0; proc < pr.P; proc++ {
		if c := T - loads[proc]; c > 0 {
			net.AddArc(n+proc, t, c)
		}
	}
	return net.MaxFlow(s, t) != want
}
