package flatcore

import (
	"sort"
	"time"

	"semimatch/internal/flow"
	"semimatch/internal/hypergraph"
	"semimatch/internal/lb"
)

// MP is the compiled shape of one MULTIPROC search: flat CSR child
// arrays over hyperedge configurations, pin bitsets, branch order,
// suffix bounds, symmetry/dominance tables, and the root bound set.
// Immutable after CompileMP; shared read-only by all workers. Every task
// must have at least one configuration (the engines validate first).
type MP struct {
	N, P int
	// Order is the branch order: position → task (fewest configurations
	// first, ties by child-list content, then task id).
	Order []int32
	// ChildPtr/ChildEdge are the CSR child arrays: position i's candidate
	// configurations are ChildEdge[ChildPtr[i]:ChildPtr[i+1]], sorted
	// cheapest total cost (w·|pins|) first. ChildWt and ChildCost carry
	// each child's edge weight and total cost, so the node loop never
	// indexes back into the hypergraph.
	ChildPtr  []int32
	ChildEdge []int32
	ChildWt   []int64
	ChildCost []int64
	// PinPtr/Pins is the pin CSR (shared with the hypergraph — pins are
	// sorted and unique per edge). PinBits packs each edge's pin set into
	// PinWords uint64 words: edge e's words are
	// PinBits[e·PinWords : (e+1)·PinWords].
	PinPtr   []int32
	Pins     []int32
	PinWords int
	PinBits  []uint64
	// Sig groups interchangeable processors (verified transposition
	// automorphisms); -1 marks processors with no partner; nil disables
	// symmetry breaking.
	Sig []int32
	// ChildClass, parallel to ChildEdge: two children of one position
	// share a class iff they have the same weight and their pin sets
	// match as multisets of (symmetry group | fixed processor). -1 marks
	// children with no statically symmetric sibling. nil when Sig is nil.
	ChildClass []int16
	// EqPrev[i] reports that position i's task has a configuration list
	// identical (weights and pin sets, elementwise in child order) to
	// position i-1's task: the tasks are interchangeable, and the engine
	// prunes branches where position i picks a smaller ordinal than i-1.
	EqPrev []bool
	// MinW[i] is the cheapest configuration weight of position i (the
	// completion prune's demand); SuffixAvg/SuffixMax as in SP but with
	// costs (average-load) and weights (max-element).
	MinW      []int64
	SuffixAvg []int64
	SuffixMax []int64
	MaxSize   int
	// Bounds is the root lower-bound set; BoundsWall is how long it took
	// to compute inside CompileMP (the "root-bounds" trace span).
	Bounds     Bounds
	BoundsWall time.Duration
	// UseFlow enables CompletePrune at subproblem expansions;
	// MinLoadScan enables the per-node min-load refinement.
	UseFlow     bool
	MinLoadScan bool
}

// CompileMP compiles h into its flat search shape.
func CompileMP(h *hypergraph.Hypergraph) *MP {
	n, p := h.NTasks, h.NProcs
	ne := h.NumEdges()
	pr := &MP{N: n, P: p, PinPtr: h.PinPtr, Pins: h.Pins}

	pr.PinWords = BitsetWords(p)
	pr.PinBits = make([]uint64, ne*pr.PinWords)
	for e := 0; e < ne; e++ {
		b := Bitset(pr.PinBits[e*pr.PinWords : (e+1)*pr.PinWords])
		for _, u := range h.EdgeProcs(int32(e)) {
			b.Set(u)
		}
	}

	cost := make([]int64, ne)
	for e := range cost {
		cost[e] = h.Weight[e] * int64(h.EdgeSize(int32(e)))
	}

	// cmpContent orders configurations by (cost, weight, pins); 0 means
	// identical placement behavior (same weight onto the same pin set).
	cmpContent := func(a, b int32) int {
		if cost[a] != cost[b] {
			if cost[a] < cost[b] {
				return -1
			}
			return 1
		}
		if h.Weight[a] != h.Weight[b] {
			if h.Weight[a] < h.Weight[b] {
				return -1
			}
			return 1
		}
		pa, pb := h.EdgeProcs(a), h.EdgeProcs(b)
		if len(pa) != len(pb) {
			return len(pa) - len(pb)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				return int(pa[i]) - int(pb[i])
			}
		}
		return 0
	}

	// Per-task child lists sorted cheapest first (content ties by edge id
	// for determinism).
	chEdge := make([][]int32, n)
	for t := 0; t < n; t++ {
		edges := append([]int32(nil), h.TaskEdges(t)...)
		sort.Slice(edges, func(a, b int) bool {
			if c := cmpContent(edges[a], edges[b]); c != 0 {
				return c < 0
			}
			return edges[a] < edges[b]
		})
		chEdge[t] = edges
	}

	// cmpTasks: 0 means the two tasks' configuration lists are identical
	// as (weight, pin set) sequences — the tasks are interchangeable.
	// Within equal degree, heavier configuration lists come first
	// (LPT-style, mirroring CompileSP): the content comparison is negated
	// for ordering, which still leaves identical lists adjacent for
	// EqPrev detection.
	cmpTasks := func(a, b int32) int {
		ea, eb := chEdge[a], chEdge[b]
		if len(ea) != len(eb) {
			return len(ea) - len(eb)
		}
		for k := range ea {
			if c := cmpContent(ea[k], eb[k]); c != 0 {
				return -c
			}
		}
		return 0
	}
	pr.Order = make([]int32, n)
	for i := range pr.Order {
		pr.Order[i] = int32(i)
	}
	sort.SliceStable(pr.Order, func(i, j int) bool {
		if c := cmpTasks(pr.Order[i], pr.Order[j]); c != 0 {
			return c < 0
		}
		return pr.Order[i] < pr.Order[j]
	})

	pr.ChildPtr = make([]int32, n+1)
	pr.EqPrev = make([]bool, n)
	total := 0
	for i, t := range pr.Order {
		pr.ChildPtr[i] = int32(total)
		total += len(chEdge[t])
		pr.EqPrev[i] = i > 0 && cmpTasks(pr.Order[i-1], t) == 0
	}
	pr.ChildPtr[n] = int32(total)
	pr.ChildEdge = make([]int32, total)
	pr.ChildWt = make([]int64, total)
	pr.ChildCost = make([]int64, total)
	pr.MinW = make([]int64, n)
	for i, t := range pr.Order {
		base := int(pr.ChildPtr[i])
		minW := int64(-1)
		for k, e := range chEdge[t] {
			pr.ChildEdge[base+k] = e
			pr.ChildWt[base+k] = h.Weight[e]
			pr.ChildCost[base+k] = cost[e]
			if w := h.Weight[e]; minW < 0 || w < minW {
				minW = w
			}
		}
		pr.MinW[i] = minW
	}

	pr.SuffixAvg = make([]int64, n+1)
	pr.SuffixMax = make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		minC := pr.ChildCost[pr.ChildPtr[i]] // children sorted by cost
		pr.SuffixAvg[i] = pr.SuffixAvg[i+1] + minC
		pr.SuffixMax[i] = pr.SuffixMax[i+1]
		if pr.MinW[i] > pr.SuffixMax[i] {
			pr.SuffixMax[i] = pr.MinW[i]
		}
	}

	_, pr.MaxSize = h.MinMaxEdgeSize()
	pr.Sig = mpProcSig(h, pr.PinWords, pr.PinBits)
	if pr.Sig != nil {
		pr.ChildClass = mpChildClasses(pr, h)
	}

	if n > 0 && p > 0 {
		boundsStart := time.Now()
		pr.Bounds = Bounds{
			Avg:     (pr.SuffixAvg[0] + int64(p) - 1) / int64(p),
			MaxElem: pr.SuffixMax[0],
			Pack:    lb.Packing(pr.MinW, p),
		}
		if n <= MatchCap {
			pr.Bounds.Match = lb.MatchingHyper(h)
		}
		pr.BoundsWall = time.Since(boundsStart)
	}
	pr.UseFlow = n > 0 && n <= MatchCap
	pr.MinLoadScan = p > 1 && p <= MinLoadCap
	return pr
}

// mpProcSig finds processors whose transposition is an automorphism of
// the hypergraph — swapping them maps the hyperedge multiset onto
// itself, preserving owners and weights. The check is exact: candidate
// pairs come from a cheap incidence invariant, then each pair is
// verified by mapping every incident hyperedge through the swap and
// looking the image up in the edge multiset (sorted-run binary search —
// no maps). Returns nil when no group has two members or the instance
// exceeds the detection gates.
func mpProcSig(h *hypergraph.Hypergraph, pinWords int, pinBits []uint64) []int32 {
	p, ne := h.NProcs, h.NumEdges()
	if p < 2 || p > SymProcCap || ne > SymEdgeCap {
		return nil
	}

	// Candidate invariant: each processor's profile is the sequence of
	// (owner, weight, size) triples of its incident edges, in edge-id
	// order (canonical). Flattened CSR, compared lexicographically.
	profPtr := make([]int32, p+1)
	for _, u := range h.Pins {
		profPtr[u+1]++
	}
	for u := 0; u < p; u++ {
		profPtr[u+1] += profPtr[u]
	}
	prof := make([]int64, 3*len(h.Pins))
	inc := make([]int32, len(h.Pins)) // incident edge ids per processor
	fill := append([]int32(nil), profPtr[:p]...)
	for e := 0; e < ne; e++ {
		o, w, sz := int64(h.Owner[e]), h.Weight[e], int64(h.EdgeSize(int32(e)))
		for _, u := range h.EdgeProcs(int32(e)) {
			pos := fill[u]
			fill[u]++
			prof[3*pos], prof[3*pos+1], prof[3*pos+2] = o, w, sz
			inc[pos] = int32(e)
		}
	}
	cmpProf := func(a, b int32) int {
		la, lb := profPtr[a+1]-profPtr[a], profPtr[b+1]-profPtr[b]
		if la != lb {
			return int(la - lb)
		}
		pa := prof[3*profPtr[a] : 3*profPtr[a+1]]
		pb := prof[3*profPtr[b] : 3*profPtr[b+1]]
		for i := range pa {
			if pa[i] != pb[i] {
				if pa[i] < pb[i] {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	procIdx := make([]int32, p)
	for i := range procIdx {
		procIdx[i] = int32(i)
	}
	sort.Slice(procIdx, func(i, j int) bool {
		if c := cmpProf(procIdx[i], procIdx[j]); c != 0 {
			return c < 0
		}
		return procIdx[i] < procIdx[j]
	})

	// Edge multiset as sorted runs of identical (owner, weight, pins)
	// edges: run length = multiplicity, membership by binary search.
	cmpEdge := func(a, b int32) int {
		if h.Owner[a] != h.Owner[b] {
			return int(h.Owner[a]) - int(h.Owner[b])
		}
		if h.Weight[a] != h.Weight[b] {
			if h.Weight[a] < h.Weight[b] {
				return -1
			}
			return 1
		}
		pa, pb := h.EdgeProcs(a), h.EdgeProcs(b)
		if len(pa) != len(pb) {
			return len(pa) - len(pb)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				return int(pa[i]) - int(pb[i])
			}
		}
		return 0
	}
	eidx := make([]int32, ne)
	for i := range eidx {
		eidx[i] = int32(i)
	}
	sort.Slice(eidx, func(i, j int) bool {
		if c := cmpEdge(eidx[i], eidx[j]); c != 0 {
			return c < 0
		}
		return eidx[i] < eidx[j]
	})
	edgeRun := make([]int32, ne)
	var runLen []int32
	for lo := 0; lo < ne; {
		hi := lo + 1
		for hi < ne && cmpEdge(eidx[lo], eidx[hi]) == 0 {
			hi++
		}
		r := int32(len(runLen))
		runLen = append(runLen, int32(hi-lo))
		for _, e := range eidx[lo:hi] {
			edgeRun[e] = r
		}
		lo = hi
	}
	// cmpKey compares edge e against a lookup key (image of a swapped
	// edge): same ordering as cmpEdge.
	cmpKey := func(e int32, owner int32, w int64, pins []int32) int {
		if h.Owner[e] != owner {
			return int(h.Owner[e]) - int(owner)
		}
		if h.Weight[e] != w {
			if h.Weight[e] < w {
				return -1
			}
			return 1
		}
		pe := h.EdgeProcs(e)
		if len(pe) != len(pins) {
			return len(pe) - len(pins)
		}
		for i := range pe {
			if pe[i] != pins[i] {
				return int(pe[i]) - int(pins[i])
			}
		}
		return 0
	}
	findRun := func(owner int32, w int64, pins []int32) int32 {
		pos := sort.Search(ne, func(i int) bool { return cmpKey(eidx[i], owner, w, pins) >= 0 })
		if pos < ne && cmpKey(eidx[pos], owner, w, pins) == 0 {
			return edgeRun[eidx[pos]]
		}
		return -1
	}

	_, maxSize := h.MinMaxEdgeSize()
	swapped := make([]int32, maxSize)
	// verify checks that the transposition (a b) maps the edge multiset
	// onto itself. Because a transposition is an involution, it suffices
	// that every edge incident to exactly one of {a,b} has an image class
	// of equal multiplicity.
	verify := func(a, b int32) bool {
		for _, u := range [2]int32{a, b} {
			for _, e := range inc[profPtr[u]:profPtr[u+1]] {
				bits := Bitset(pinBits[int(e)*pinWords : (int(e)+1)*pinWords])
				if bits.Has(a) && bits.Has(b) {
					continue // swap fixes the pin set
				}
				pins := h.EdgeProcs(e)
				sw := swapped[:len(pins)]
				copy(sw, pins)
				for i, v := range sw {
					switch v {
					case a:
						sw[i] = b
					case b:
						sw[i] = a
					}
				}
				// Insertion sort: pin sets are tiny and nearly sorted.
				for i := 1; i < len(sw); i++ {
					v := sw[i]
					j := i
					for j > 0 && sw[j-1] > v {
						sw[j] = sw[j-1]
						j--
					}
					sw[j] = v
				}
				r := findRun(h.Owner[e], h.Weight[e], sw)
				if r < 0 || runLen[r] != runLen[edgeRun[e]] {
					return false
				}
			}
		}
		return true
	}

	sig := make([]int32, p)
	for i := range sig {
		sig[i] = -1
	}
	id := int32(0)
	// Greedy class building within candidate runs, with verified
	// transpositions against each class representative. Verified (a,r)
	// and (b,r) compose to a verified symmetry between a and b.
	var reps, repIDs []int32
	for lo := 0; lo < p; {
		hi := lo + 1
		for hi < p && cmpProf(procIdx[lo], procIdx[hi]) == 0 {
			hi++
		}
		if hi-lo >= 2 {
			reps, repIDs = reps[:0], repIDs[:0]
			for _, u := range procIdx[lo:hi] {
				placed := false
				for ri, r := range reps {
					if verify(r, u) {
						sig[u] = repIDs[ri]
						placed = true
						break
					}
				}
				if !placed {
					reps = append(reps, u)
					repIDs = append(repIDs, id)
					sig[u] = id
					id++
				}
			}
		}
		lo = hi
	}
	// Demote singleton classes: a processor with no verified partner gets
	// no signature (keeps the per-node sibling scan cheap).
	classSize := make([]int32, id)
	for _, s := range sig {
		if s >= 0 {
			classSize[s]++
		}
	}
	any := false
	for i, s := range sig {
		if s >= 0 && classSize[s] < 2 {
			sig[i] = -1
		} else if s >= 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	return sig
}

// mpChildClasses assigns, per position, symmetry classes over each
// child's (weight, group-mapped pin multiset) key — sort-based grouping
// over per-position scratch key vectors. Pins in a symmetry group map to
// the group id; ungrouped pins keep their identity (encoded disjointly
// as ^proc). Children with no grouped pin get no class: their only
// symmetric sibling would be a literal duplicate edge.
func mpChildClasses(pr *MP, h *hypergraph.Hypergraph) []int16 {
	cls := make([]int16, len(pr.ChildEdge))
	var keyBuf [][]int64
	var kidx []int32
	for i := 0; i < pr.N; i++ {
		base, end := int(pr.ChildPtr[i]), int(pr.ChildPtr[i+1])
		deg := end - base
		for len(keyBuf) < deg {
			keyBuf = append(keyBuf, nil)
		}
		kidx = kidx[:0]
		for k := 0; k < deg; k++ {
			cls[base+k] = -1
			e := pr.ChildEdge[base+k]
			grouped := false
			key := keyBuf[k][:0]
			key = append(key, pr.ChildWt[base+k])
			for _, u := range h.EdgeProcs(e) {
				s := int64(pr.Sig[u])
				if s >= 0 {
					grouped = true
				} else {
					s = int64(^u)
				}
				key = append(key, s)
			}
			sort.Slice(key[1:], func(a, b int) bool { return key[1+a] < key[1+b] })
			keyBuf[k] = key
			if grouped {
				kidx = append(kidx, int32(k))
			}
		}
		cmpKey := func(a, b int32) int {
			ka, kb := keyBuf[a], keyBuf[b]
			if len(ka) != len(kb) {
				return len(ka) - len(kb)
			}
			for j := range ka {
				if ka[j] != kb[j] {
					if ka[j] < kb[j] {
						return -1
					}
					return 1
				}
			}
			return 0
		}
		sort.Slice(kidx, func(a, b int) bool {
			if c := cmpKey(kidx[a], kidx[b]); c != 0 {
				return c < 0
			}
			return kidx[a] < kidx[b]
		})
		next := int16(0)
		for lo := 0; lo < len(kidx); {
			hi := lo + 1
			for hi < len(kidx) && cmpKey(kidx[lo], kidx[hi]) == 0 {
				hi++
			}
			if hi-lo >= 2 {
				for _, k := range kidx[lo:hi] {
					cls[base+int(k)] = next
				}
				next++
			}
			lo = hi
		}
	}
	return cls
}

// CompletePrune reports whether no completion of positions from..N-1 on
// top of the given loads can reach makespan < best. With deadline
// T = best-1, a configuration is available only if its weight still fits
// every one of its pins (w + load ≤ T for all pins); an available
// configuration lets the task route its cheapest weight through any of
// those pins, against residual capacities T - load. Flow infeasibility
// proves the subtree cannot improve the incumbent.
func (pr *MP) CompletePrune(loads []int64, from int, best int64) bool {
	T := best - 1
	if T < 0 {
		return false
	}
	n := pr.N - from
	if n <= 0 {
		return false
	}
	net := flow.NewNetwork(n + pr.P + 2)
	s, t := n+pr.P, n+pr.P+1
	var want int64
	for j := 0; j < n; j++ {
		pos := from + j
		m := pr.MinW[pos]
		net.AddArc(s, j, m)
		want += m
		avail := false
		for k := pr.ChildPtr[pos]; k < pr.ChildPtr[pos+1]; k++ {
			w := pr.ChildWt[k]
			e := pr.ChildEdge[k]
			pins := pr.Pins[pr.PinPtr[e]:pr.PinPtr[e+1]]
			ok := true
			for _, u := range pins {
				if w+loads[u] > T {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			avail = true
			for _, u := range pins {
				// Duplicate arcs across configurations are harmless: the
				// source arc caps the task's outflow at m.
				net.AddArc(j, n+int(u), m)
			}
		}
		if !avail {
			return true // no configuration of this task fits under T
		}
	}
	for proc := 0; proc < pr.P; proc++ {
		if c := T - loads[proc]; c > 0 {
			net.AddArc(n+proc, t, c)
		}
	}
	return net.MaxFlow(s, t) != want
}
