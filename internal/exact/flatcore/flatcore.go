// Package flatcore compiles problem instances into flat, allocation-free
// search shapes for the exact branch-and-bound engines.
//
// The engines' node loops used to traverse bipartite.Graph /
// hypergraph.Hypergraph through per-task slices-of-slices and map-based
// symmetry tables. This package replaces that with one compile step per
// solve producing CSR-style index/offset arrays (every per-position child
// list is a range of one flat array), uint64-word bitsets for pin sets,
// and sorted-slice grouping for the symmetry machinery — no maps anywhere.
// After compilation a search node touches only flat int32/int64 arrays,
// so the hot loop does zero heap allocations and walks memory linearly.
//
// A compiled shape also carries the instance's root bound set (Bounds):
// the classic average-load and max-element bounds plus the two strong
// bounds from internal/lb — the bin-packing bound on the
// identical-machines relaxation and the matching/max-flow bound. The
// engines use the strongest of the four to terminate the moment an
// incumbent meets it, and the bound that closed the gap names the
// certificate witness.
//
// Two structural prunes are compiled in as well:
//
//   - processor symmetry (carried over from the old engine, now
//     sort-based): Sig groups processors whose transposition is a
//     verified automorphism, and ChildClass marks statically
//     interchangeable children of each position;
//   - task dominance (new): EqPrev marks positions whose task has an
//     identical child list to the previous position's task. Two such
//     tasks are interchangeable — swapping their choices yields the same
//     load vector — so the engine only explores branches where the later
//     task's child ordinal is ≥ the earlier one's.
//
// Both prunes (and the engine's sibling dedup) are sound together by a
// lexicographic-minimality argument: each rule discards an assignment
// only when an equal-makespan assignment with a lexicographically
// smaller child-ordinal vector exists, so the lex-min optimal assignment
// survives every prune.
package flatcore

const (
	// SymProcCap / SymEdgeCap gate the MULTIPROC symmetry detection: the
	// pairwise transposition verification is quadratic in group size, so
	// it only runs at exact-solver instance scales.
	SymProcCap = 512
	SymEdgeCap = 8192
	// MatchCap gates the matching/max-flow root bound and the
	// completion-prune flow: both are polynomial, but per-compile (and
	// per-frontier-expansion) flows only pay off at exact-solver scales.
	MatchCap = 4096
	// MinLoadCap gates the per-node min-load refinement (makespan ≥
	// lightest current load + heaviest remaining placement): it scans all
	// processor loads at every node, so it is enabled only when that scan
	// is a handful of compares.
	MinLoadCap = 16
)

// Bounds is the root lower-bound set of a compiled instance. Avg and
// MaxElem are the classic cheap bounds; Pack and Match are the strong
// bounds from internal/lb (Match is 0 when gated off by MatchCap).
type Bounds struct {
	Avg, MaxElem, Pack, Match int64
}

// Root returns the strongest root lower bound.
func (b Bounds) Root() int64 {
	r := b.Avg
	if b.MaxElem > r {
		r = b.MaxElem
	}
	if b.Pack > r {
		r = b.Pack
	}
	if b.Match > r {
		r = b.Match
	}
	return r
}

// Bitset is a packed uint64-word bit vector.
type Bitset []uint64

// BitsetWords returns the word count needed for n bits.
func BitsetWords(n int) int { return (n + 63) / 64 }

// NewBitset returns a zeroed bitset holding n bits.
func NewBitset(n int) Bitset { return make(Bitset, BitsetWords(n)) }

// Set sets bit i.
func (b Bitset) Set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

// Has reports whether bit i is set.
func (b Bitset) Has(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// EqualWords reports whether two equal-length word slices are identical —
// the O(words) pin-set equality behind the MULTIPROC dedup fast path.
func EqualWords(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
