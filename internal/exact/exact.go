// Package exact provides exact (exponential-time) solvers for small
// instances of the NP-complete problems in the paper: weighted SINGLEPROC,
// MULTIPROC (weighted or unit), and Exact Cover by 3-Sets. They serve as
// ground truth for validating the heuristics and the Theorem 1 reduction,
// and as the optimum column in small-instance experiments.
//
// The solvers are branch-and-bound searches with two prunes: the incumbent
// bound (a greedy schedule initializes it) and an average-load lower bound
// on the remaining work. They are exact whenever they return without
// ErrLimit; instances beyond ~30 tasks should use the heuristics and the
// LowerBound instead.
package exact

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"

	"semimatch/internal/adversarial"
	"semimatch/internal/bipartite"
	"semimatch/internal/cert"
	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
)

// ErrLimit reports that the node budget was exhausted before the search
// completed; the result would not be provably optimal.
var ErrLimit = errors.New("exact: node limit exceeded")

// ErrCancelled reports that the context was cancelled (or its deadline
// expired) mid-search. As with ErrLimit, the solver still returns its
// incumbent — the best schedule found so far — which is valid but not
// provably optimal. Errors returned on cancellation match both
// errors.Is(err, ErrCancelled) and errors.Is(err, ctx.Err()).
var ErrCancelled = errors.New("exact: cancelled")

// ctxCheckInterval is how many search-tree nodes are expanded between
// context polls. Nodes cost tens of nanoseconds, so this bounds the
// cancellation latency to well under a millisecond while keeping the poll
// off the hot path.
const ctxCheckInterval = 4096

// stopper folds the two ways a search can stop early — node budget and
// context cancellation — into one cheap per-node check. The same
// checkpoint also drives the incumbent observer: notify (when set) runs
// every ctxCheckInterval nodes, so observation shares the existing poll
// instead of adding a branch to the hot loop.
type stopper struct {
	nodes      int64
	expanded   int64
	sinceCheck int
	done       <-chan struct{}
	notify     func()
	stopped    bool
	cancelled  bool
}

func newStopper(ctx context.Context, maxNodes int64) *stopper {
	return &stopper{nodes: maxNodes, done: ctx.Done()}
}

// stop reports whether the search must unwind. Once it returns true it
// keeps returning true, so the recursion exits quickly.
func (s *stopper) stop() bool {
	if s.stopped {
		return true
	}
	s.nodes--
	if s.nodes < 0 {
		s.stopped = true
		return true
	}
	s.expanded++
	if s.done != nil || s.notify != nil {
		s.sinceCheck++
		if s.sinceCheck >= ctxCheckInterval {
			s.sinceCheck = 0
			if s.notify != nil {
				s.notify()
			}
			if s.done != nil {
				select {
				case <-s.done:
					s.stopped, s.cancelled = true, true
					return true
				default:
				}
			}
		}
	}
	return false
}

// err translates the stop cause into the API error, or nil if the search
// ran to completion.
func (s *stopper) err(ctx context.Context) error {
	if !s.stopped {
		return nil
	}
	if s.cancelled {
		return fmt.Errorf("%w: %w", ErrCancelled, ctx.Err())
	}
	return ErrLimit
}

// Options bounds the search.
type Options struct {
	// MaxNodes caps the number of search-tree nodes. 0 means the default
	// (20 million), which solves typical 25-task instances in well under a
	// second. For the parallel solvers the budget is shared across all
	// workers.
	MaxNodes int64
	// Workers bounds the parallel solvers' worker pool; 0 means
	// GOMAXPROCS. The sequential solvers ignore it.
	Workers int
	// Stats, when non-nil, receives search statistics (nodes expanded,
	// workers used, ...) when the solve returns.
	Stats *SearchStats
	// Observer, when non-nil, receives the search's incumbent trajectory:
	// the initial greedy schedule, then every improvement, then the final
	// best — each call gets the makespan and a private copy of the
	// assignment. Observations are polled at the existing budget and
	// cancellation checkpoints (never per node), so makespans are strictly
	// decreasing after the first call and an improvement is reported at
	// most one checkpoint interval after a worker finds it. The parallel
	// solvers serialize calls across workers; the callback must not block
	// for long and must not panic (wrap it if it may).
	Observer func(makespan int64, assignment []int32)
}

// SearchStats reports how much work a branch-and-bound search did — the
// raw material of the repo's recorded perf trajectory (BENCH.json).
type SearchStats struct {
	// Nodes is the number of search-tree nodes expanded (all workers).
	Nodes int64
	// Workers is the worker-pool size the search ran with (1 for the
	// sequential solvers).
	Workers int
	// Subproblems counts independent subproblems executed by the
	// work-stealing pool: the shallow-frontier split plus any re-splits of
	// stolen work. Zero for the sequential solvers.
	Subproblems int64
	// Steals counts subproblems a worker took from another worker's deque.
	// Zero for the sequential solvers.
	Steals int64
	// Bound is the strongest instance-level lower bound the search derived
	// at the root: max(average-load, max-element). Valid whether or not
	// the search completed.
	Bound int64
	// Witness names the optimality argument for the returned schedule:
	// which root bound closed the gap, WitnessExhaustive when the tree was
	// searched to completion without a bound meeting the makespan, or
	// WitnessNone when the search was truncated (budget or cancellation).
	Witness cert.WitnessKind
}

// witnessFor grades a finished search: bound is max(avg, maxElem), and the
// witness is the cheapest argument that proves the returned makespan
// optimal — a root bound that equals it, else exhaustion (only if the tree
// was fully searched).
func witnessFor(complete bool, avg, maxElem, makespan int64) (int64, cert.WitnessKind) {
	bound := avg
	if maxElem > bound {
		bound = maxElem
	}
	switch {
	case !complete:
		return bound, cert.WitnessNone
	case makespan == avg:
		return bound, cert.WitnessAverageLoad
	case makespan == maxElem:
		return bound, cert.WitnessMaxElement
	default:
		return bound, cert.WitnessExhaustive
	}
}

func (o Options) maxNodes() int64 {
	if o.MaxNodes <= 0 {
		return 20_000_000
	}
	return o.MaxNodes
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SolveSingleProc computes an optimal SINGLEPROC schedule (weighted or
// unit) by branch and bound. Tasks with empty eligibility sets yield an
// error.
func SolveSingleProc(g *bipartite.Graph, opts Options) (core.Assignment, int64, error) {
	return SolveSingleProcCtx(context.Background(), g, opts)
}

// SolveSingleProcCtx is SolveSingleProc with cooperative cancellation: the
// search polls ctx alongside the MaxNodes budget and, when ctx is
// cancelled, returns the incumbent with an error wrapping ErrCancelled and
// ctx.Err().
func SolveSingleProcCtx(ctx context.Context, g *bipartite.Graph, opts Options) (core.Assignment, int64, error) {
	n, p := g.NLeft, g.NRight
	if p == 0 && n > 0 {
		return nil, 0, fmt.Errorf("exact: no processors")
	}
	for t := 0; t < n; t++ {
		if g.Degree(t) == 0 {
			return nil, 0, fmt.Errorf("exact: task %d has no eligible processor", t)
		}
	}
	if n == 0 {
		return core.Assignment{}, 0, nil
	}

	// Branch on tasks with fewest options first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return g.Degree(order[i]) < g.Degree(order[j]) })

	// minCost[t] = cheapest edge weight of t; suffix sums bound remaining
	// work, and the max of the minima is the max-element root bound.
	suffix := make([]int64, n+1)
	var maxElem int64
	for i := n - 1; i >= 0; i-- {
		t := order[i]
		w := g.Weights(t)
		best := int64(1)
		if w != nil {
			best = w[0]
			for _, x := range w[1:] {
				if x < best {
					best = x
				}
			}
		}
		suffix[i] = suffix[i+1] + best
		if best > maxElem {
			maxElem = best
		}
	}

	// Incumbent from sorted-greedy.
	inc := core.SortedGreedy(g, core.GreedyOptions{})
	best := core.Makespan(g, inc)
	bestA := append(core.Assignment(nil), inc...)

	loads := make([]int64, p)
	cur := append(core.Assignment(nil), inc...)
	var total int64
	st := newStopper(ctx, opts.maxNodes())
	notify := func() {}
	if obs := opts.Observer; obs != nil {
		lastObs := best + 1
		notify = func() {
			if best < lastObs {
				lastObs = best
				obs(best, append([]int32(nil), bestA...))
			}
		}
		st.notify = notify
		notify() // the initial greedy incumbent
	}

	var rec func(i int, curMax int64)
	rec = func(i int, curMax int64) {
		if st.stop() {
			return
		}
		if curMax >= best {
			return
		}
		if i == n {
			best = curMax
			copy(bestA, cur)
			return
		}
		// Remaining-work bound.
		lb := (total + suffix[i] + int64(p) - 1) / int64(p)
		if lb >= best {
			return
		}
		t := order[i]
		row := g.Neighbors(t)
		// The weighted/unit branch is hoisted out of the child loop: the
		// two loops are identical except for where the edge weight comes
		// from, and the per-child `w != nil` test was measurable on the
		// hot path.
		if w := g.Weights(t); w != nil {
			for k, proc := range row {
				wt := w[k]
				loads[proc] += wt
				total += wt
				nm := curMax
				if loads[proc] > nm {
					nm = loads[proc]
				}
				cur[t] = proc
				rec(i+1, nm)
				loads[proc] -= wt
				total -= wt
			}
		} else {
			for _, proc := range row {
				loads[proc]++
				total++
				nm := curMax
				if loads[proc] > nm {
					nm = loads[proc]
				}
				cur[t] = proc
				rec(i+1, nm)
				loads[proc]--
				total--
			}
		}
	}
	rec(0, 0)
	notify() // flush the final incumbent to the observer
	if opts.Stats != nil {
		bound, wit := witnessFor(!st.stopped, (suffix[0]+int64(p)-1)/int64(p), maxElem, best)
		*opts.Stats = SearchStats{Nodes: st.expanded, Workers: 1, Bound: bound, Witness: wit}
	}
	return bestA, best, st.err(ctx)
}

// SolveMultiProc computes an optimal MULTIPROC schedule by branch and
// bound.
func SolveMultiProc(h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, int64, error) {
	return SolveMultiProcCtx(context.Background(), h, opts)
}

// SolveMultiProcCtx is SolveMultiProc with cooperative cancellation: the
// search polls ctx alongside the MaxNodes budget and, when ctx is
// cancelled, returns the incumbent with an error wrapping ErrCancelled and
// ctx.Err().
func SolveMultiProcCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, int64, error) {
	n, p := h.NTasks, h.NProcs
	if n == 0 {
		return core.HyperAssignment{}, 0, nil
	}
	if p == 0 {
		return nil, 0, fmt.Errorf("exact: no processors")
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return h.TaskDegree(order[i]) < h.TaskDegree(order[j]) })

	// cost[e] = w_e·|h_e∩V2|, the total work hyperedge e adds across its
	// processors — precomputed once instead of recomputed per node in the
	// hot loop below.
	cost := make([]int64, h.NumEdges())
	for e := range cost {
		cost[e] = h.Weight[e] * int64(h.EdgeSize(int32(e)))
	}

	// suffix[i] = Σ over remaining tasks of their cheapest total cost
	// (w_h·|h|), the quantity behind Eq. (1). The max over tasks of the
	// cheapest edge *weight* is the max-element root bound: whichever
	// hyperedge a task picks, each of its processors absorbs w_e whole.
	suffix := make([]int64, n+1)
	var maxElem int64
	for i := n - 1; i >= 0; i-- {
		t := order[i]
		best, bestW := int64(-1), int64(-1)
		for _, e := range h.TaskEdges(t) {
			if c := cost[e]; best < 0 || c < best {
				best = c
			}
			if w := h.Weight[e]; bestW < 0 || w < bestW {
				bestW = w
			}
		}
		suffix[i] = suffix[i+1] + best
		if bestW > maxElem {
			maxElem = bestW
		}
	}

	inc := core.SortedGreedyHyp(h, core.HyperOptions{})
	best := core.HyperMakespan(h, inc)
	bestA := append(core.HyperAssignment(nil), inc...)

	loads := make([]int64, p)
	cur := append(core.HyperAssignment(nil), inc...)
	var total int64
	st := newStopper(ctx, opts.maxNodes())
	notify := func() {}
	if obs := opts.Observer; obs != nil {
		lastObs := best + 1
		notify = func() {
			if best < lastObs {
				lastObs = best
				obs(best, append([]int32(nil), bestA...))
			}
		}
		st.notify = notify
		notify() // the initial greedy incumbent
	}

	var rec func(i int, curMax int64)
	rec = func(i int, curMax int64) {
		if st.stop() {
			return
		}
		if curMax >= best {
			return
		}
		if i == n {
			best = curMax
			copy(bestA, cur)
			return
		}
		lb := (total + suffix[i] + int64(p) - 1) / int64(p)
		if lb >= best {
			return
		}
		t := order[i]
		for _, e := range h.TaskEdges(t) {
			w := h.Weight[e]
			procs := h.EdgeProcs(e)
			nm := curMax
			for _, u := range procs {
				loads[u] += w
				if loads[u] > nm {
					nm = loads[u]
				}
			}
			total += cost[e]
			cur[t] = e
			rec(i+1, nm)
			for _, u := range procs {
				loads[u] -= w
			}
			total -= cost[e]
		}
	}
	rec(0, 0)
	notify() // flush the final incumbent to the observer
	if opts.Stats != nil {
		bound, wit := witnessFor(!st.stopped, (suffix[0]+int64(p)-1)/int64(p), maxElem, best)
		*opts.Stats = SearchStats{Nodes: st.expanded, Workers: 1, Bound: bound, Witness: wit}
	}
	return bestA, best, st.err(ctx)
}

// SolveX3C decides Exact Cover by 3-Sets by depth-first search over the
// lowest-indexed uncovered element. It returns the indices of a cover and
// true, or nil and false.
func SolveX3C(x adversarial.X3C) ([]int, bool) {
	if x.Validate() != nil {
		return nil, false
	}
	nElem := 3 * x.Q
	// setsWith[e] = sets containing element e.
	setsWith := make([][]int, nElem)
	for i, s := range x.Sets {
		for _, e := range s {
			setsWith[e] = append(setsWith[e], i)
		}
	}
	covered := make([]bool, nElem)
	var chosen []int
	var rec func(covCount int) bool
	rec = func(covCount int) bool {
		if covCount == nElem {
			return true
		}
		// First uncovered element.
		e := 0
		for covered[e] {
			e++
		}
		for _, si := range setsWith[e] {
			s := x.Sets[si]
			if covered[s[0]] || covered[s[1]] || covered[s[2]] {
				continue
			}
			covered[s[0]], covered[s[1]], covered[s[2]] = true, true, true
			chosen = append(chosen, si)
			if rec(covCount + 3) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
			covered[s[0]], covered[s[1]], covered[s[2]] = false, false, false
		}
		return false
	}
	if rec(0) {
		return chosen, true
	}
	return nil, false
}
