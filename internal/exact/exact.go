// Package exact provides exact (exponential-time) solvers for small
// instances of the NP-complete problems in the paper: weighted SINGLEPROC,
// MULTIPROC (weighted or unit), and Exact Cover by 3-Sets. They serve as
// ground truth for validating the heuristics and the Theorem 1 reduction,
// and as the optimum column in small-instance experiments.
//
// All four solvers (sequential and parallel, both problem shapes) run on
// one flat-core branch-and-bound engine: the instance is compiled once
// into CSR index/offset arrays with bitset pin sets (internal/exact/
// flatcore), and the node loop walks those flat arrays with zero per-node
// heap allocation. The engine prunes with a bound hierarchy — per node the
// incumbent, average-load, max-element, and min-load bounds (integer
// arithmetic only); at the root and at subproblem expansions the strong
// bin-packing and matching/max-flow bounds from internal/lb — plus
// processor-symmetry dedup and task-dominance rules compiled into the flat
// shape. Searches are exact whenever they return without ErrLimit;
// instances beyond ~30 tasks should use the heuristics and the LowerBound
// instead.
package exact

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"semimatch/internal/adversarial"
	"semimatch/internal/bipartite"
	"semimatch/internal/cert"
	"semimatch/internal/core"
	"semimatch/internal/exact/flatcore"
	"semimatch/internal/hypergraph"
	"semimatch/internal/telemetry"
)

// ErrLimit reports that the node budget was exhausted before the search
// completed; the result would not be provably optimal.
var ErrLimit = errors.New("exact: node limit exceeded")

// ErrCancelled reports that the context was cancelled (or its deadline
// expired) mid-search. As with ErrLimit, the solver still returns its
// incumbent — the best schedule found so far — which is valid but not
// provably optimal. Errors returned on cancellation match both
// errors.Is(err, ErrCancelled) and errors.Is(err, ctx.Err()).
var ErrCancelled = errors.New("exact: cancelled")

// Options bounds the search.
type Options struct {
	// MaxNodes caps the number of search-tree nodes. 0 means the default
	// (20 million), which solves typical 25-task instances in well under a
	// second. For the parallel solvers the budget is shared across all
	// workers.
	MaxNodes int64
	// Workers bounds the parallel solvers' worker pool; 0 means
	// GOMAXPROCS. The sequential solvers ignore it.
	Workers int
	// InitialIncumbent, when non-nil, warm-starts the search with a known
	// feasible schedule in the instance's own encoding (task → processor
	// for SINGLEPROC, task → hyperedge id for MULTIPROC). The engine
	// validates it against the instance and adopts it as the starting
	// incumbent when its makespan beats the built-in greedy seed; an
	// invalid or non-improving warm start is silently ignored. A warm
	// start never changes the optimum returned — only how much of the
	// tree gets explored: a strictly tighter initial bound prunes a
	// superset of what the greedy bound prunes, so a sequential
	// warm-started search expands at most as many nodes as a cold one.
	InitialIncumbent []int32
	// Stats, when non-nil, receives search statistics (nodes expanded,
	// workers used, ...) when the solve returns.
	Stats *SearchStats
	// Observer, when non-nil, receives the search's incumbent trajectory:
	// the initial greedy schedule, then every improvement, then the final
	// best — each call gets the makespan and a private copy of the
	// assignment. Observations are polled at the existing budget and
	// cancellation checkpoints (never per node), so makespans are strictly
	// decreasing after the first call and an improvement is reported at
	// most one checkpoint interval after a worker finds it. The parallel
	// solvers serialize calls across workers; the callback must not block
	// for long and must not panic (wrap it if it may).
	Observer func(makespan int64, assignment []int32)
	// Trace, when non-nil, receives the solve's phase spans as children:
	// "compile" (with a "root-bounds" child covering the packing/matching
	// bound computation), "greedy" (the initial incumbent), and "search"
	// with attributes nodes, incumbent_entry/incumbent_exit, bound,
	// witness, workers, and — parallel — steals and subproblems. Spans
	// are created per phase, never per node.
	Trace *telemetry.Span
	// Progress, when non-nil, receives periodic SearchProgress snapshots
	// during the search, polled at the same budget-block checkpoints as
	// Observer (never per node) and rate-limited by ProgressInterval, so
	// node counts are identical with and without the hook. One final
	// snapshot is delivered when the search ends. Calls are serialized;
	// the callback must return quickly and must not panic.
	Progress telemetry.ProgressFunc
	// ProgressInterval is the minimum wall time between Progress
	// snapshots; 0 means telemetry.DefaultProgressInterval.
	ProgressInterval time.Duration
}

// SearchStats reports how much work a branch-and-bound search did — the
// raw material of the repo's recorded perf trajectory (BENCH.json).
type SearchStats struct {
	// Nodes is the number of search-tree nodes expanded (all workers).
	Nodes int64
	// Workers is the worker-pool size the search ran with (1 for the
	// sequential solvers).
	Workers int
	// Subproblems counts independent subproblems executed by the
	// work-stealing pool: the shallow-frontier split plus any re-splits of
	// stolen work. Zero for the sequential solvers, and zero for any solve
	// closed at the root by a bound before the pool spun up.
	Subproblems int64
	// Steals counts subproblems a worker took from another worker's deque.
	// Zero for the sequential solvers.
	Steals int64
	// Bound is the strongest instance-level lower bound the search derived
	// at the root: the max of the average-load, max-element, bin-packing,
	// and matching bounds. Valid whether or not the search completed.
	Bound int64
	// Witness names the optimality argument for the returned schedule: the
	// cheapest root bound that equals the makespan (average-load,
	// max-element, packing, matching), WitnessExhaustive when the tree was
	// searched to completion without a bound meeting the makespan, or
	// WitnessNone when the search was truncated (budget or cancellation).
	Witness cert.WitnessKind
}

// witnessFor grades a finished search: bound is the strongest root lower
// bound, and the witness is the cheapest argument that proves the returned
// makespan optimal — a root bound that equals it (cheapest to re-derive
// first), else exhaustion (only if the tree was fully searched).
func witnessFor(complete bool, b flatcore.Bounds, makespan int64) (int64, cert.WitnessKind) {
	bound := b.Root()
	switch {
	case !complete:
		return bound, cert.WitnessNone
	case makespan == b.Avg:
		return bound, cert.WitnessAverageLoad
	case makespan == b.MaxElem:
		return bound, cert.WitnessMaxElement
	case makespan == b.Pack:
		return bound, cert.WitnessPacking
	case b.Match > 0 && makespan == b.Match:
		return bound, cert.WitnessMatching
	default:
		return bound, cert.WitnessExhaustive
	}
}

// compileSpan wraps one compile phase for tracing (all nil-safe): a
// "compile" child of tr whose own "root-bounds" child carries the time
// spent in the packing/matching bound computation, measured inside the
// compiler (boundsWall).
func compileSpan(tr *telemetry.Span, start time.Time, boundsWall time.Duration) {
	cs := tr.AddChild("compile", start, time.Since(start))
	cs.AddChild("root-bounds", time.Now().Add(-boundsWall), boundsWall)
}

// startSearchSpan opens the "search" child span with its entry
// attributes: the incumbent the search starts from and the root bound.
func startSearchSpan(tr *telemetry.Span, sh *parShared) *telemetry.Span {
	ss := tr.StartChild("search")
	ss.SetAttr("incumbent_entry", sh.bestM)
	ss.SetAttr("bound", sh.rootLB)
	return ss
}

// finishSearch grades a finished search exactly once — filling
// Options.Stats (when requested) and closing the "search" span with its
// exit attributes. Called after all workers quiesce.
func finishSearch(opts Options, ss *telemetry.Span, sh *parShared, b flatcore.Bounds, workers int, subproblems int64) {
	complete := sh.closed.Load() || (!sh.exhausted.Load() && !sh.cancelled.Load())
	bound, wit := witnessFor(complete, b, sh.bestM)
	stats := SearchStats{
		Nodes:       sh.nodes.Load(),
		Workers:     workers,
		Subproblems: subproblems,
		Steals:      sh.steals.Load(),
		Bound:       bound,
		Witness:     wit,
	}
	if opts.Stats != nil {
		*opts.Stats = stats
	}
	ss.SetAttr("nodes", stats.Nodes)
	ss.SetAttr("incumbent_exit", sh.bestM)
	ss.SetAttr("bound", bound)
	ss.SetAttr("witness", wit.String())
	ss.SetAttr("workers", workers)
	if workers > 1 {
		ss.SetAttr("subproblems", stats.Subproblems)
		ss.SetAttr("steals", stats.Steals)
	}
	ss.End()
}

func (o Options) maxNodes() int64 {
	if o.MaxNodes <= 0 {
		return 20_000_000
	}
	return o.MaxNodes
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// seqChunk is the chunk limit handed to the flat-core state machine when it
// runs single-threaded: effectively unbounded, so a sequential solve is one
// uninterrupted DFS with no suspension or requeueing.
const seqChunk = int64(1) << 62

// seedSP picks the incumbent a SINGLEPROC search starts from: the greedy
// schedule, or Options.InitialIncumbent when it validates against the
// instance and carries a strictly better makespan. The returned bool
// reports whether the warm start was adopted.
func (o Options) seedSP(g *bipartite.Graph, inc core.Assignment, m0 int64) (core.Assignment, int64, bool) {
	w := core.Assignment(o.InitialIncumbent)
	if w == nil || core.ValidateAssignment(g, w) != nil {
		return inc, m0, false
	}
	mw := core.Makespan(g, w)
	if mw >= m0 {
		return inc, m0, false
	}
	return w, mw, true
}

// seedMP is seedSP for MULTIPROC instances (task → hyperedge encoding).
func (o Options) seedMP(h *hypergraph.Hypergraph, inc core.HyperAssignment, m0 int64) (core.HyperAssignment, int64, bool) {
	w := core.HyperAssignment(o.InitialIncumbent)
	if w == nil || core.ValidateHyperAssignment(h, w) != nil {
		return inc, m0, false
	}
	mw := core.HyperMakespan(h, w)
	if mw >= m0 {
		return inc, m0, false
	}
	return w, mw, true
}

// SolveSingleProc computes an optimal SINGLEPROC schedule (weighted or
// unit) by branch and bound. Tasks with empty eligibility sets yield an
// error.
func SolveSingleProc(g *bipartite.Graph, opts Options) (core.Assignment, int64, error) {
	return SolveSingleProcCtx(context.Background(), g, opts)
}

// SolveSingleProcCtx is SolveSingleProc with cooperative cancellation: the
// search polls ctx alongside the MaxNodes budget and, when ctx is
// cancelled, returns the incumbent with an error wrapping ErrCancelled and
// ctx.Err().
//
// The sequential solver is the parallel engine run single-threaded: same
// compiled flat shape, same bound hierarchy and prunes, one worker, no
// pool. Node counts are therefore deterministic.
func SolveSingleProcCtx(ctx context.Context, g *bipartite.Graph, opts Options) (core.Assignment, int64, error) {
	n, p := g.NLeft, g.NRight
	if p == 0 && n > 0 {
		return nil, 0, fmt.Errorf("exact: no processors")
	}
	for t := 0; t < n; t++ {
		if g.Degree(t) == 0 {
			return nil, 0, fmt.Errorf("exact: task %d has no eligible processor", t)
		}
	}
	if n == 0 {
		return core.Assignment{}, 0, nil
	}

	compileStart := time.Now()
	pr := flatcore.CompileSP(g)
	compileSpan(opts.Trace, compileStart, pr.BoundsWall)
	gs := opts.Trace.StartChild("greedy")
	inc := core.SortedGreedy(g, core.GreedyOptions{})
	m0 := core.Makespan(g, inc)
	gs.SetAttr("makespan", m0)
	var warm bool
	if inc, m0, warm = opts.seedSP(g, inc, m0); warm {
		gs.SetAttr("warm_start", m0)
	}
	gs.End()
	sh := newParShared(inc, m0, opts.maxNodes(), 1)
	sh.rootLB = pr.Bounds.Root()
	sh.obsFn = opts.Observer
	sh.setProgress(opts.Progress, opts.ProgressInterval)
	sh.closeIfOptimal()
	sh.observe() // the initial greedy incumbent
	ss := startSearchSpan(opts.Trace, sh)
	if !sh.closed.Load() {
		release := watchCancel(ctx, sh)
		s := newSPState(pr, sh)
		s.chunkLimit = seqChunk
		tk := &ticker{sh: sh}
		s.run(nil, tk)
		tk.flush()
		release()
	}
	sh.observe() // flush the final incumbent to the observer
	sh.progressFinal()
	finishSearch(opts, ss, sh, pr.Bounds, 1, 0)
	return append(core.Assignment(nil), sh.bestA...), sh.bestM, sh.err(ctx)
}

// SolveMultiProc computes an optimal MULTIPROC schedule by branch and
// bound.
func SolveMultiProc(h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, int64, error) {
	return SolveMultiProcCtx(context.Background(), h, opts)
}

// SolveMultiProcCtx is SolveMultiProc with cooperative cancellation; see
// SolveSingleProcCtx for the engine and error contract.
func SolveMultiProcCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (core.HyperAssignment, int64, error) {
	n, p := h.NTasks, h.NProcs
	if n == 0 {
		return core.HyperAssignment{}, 0, nil
	}
	if p == 0 {
		return nil, 0, fmt.Errorf("exact: no processors")
	}
	for t := 0; t < n; t++ {
		if h.TaskDegree(t) == 0 {
			return nil, 0, fmt.Errorf("exact: task %d has no configuration", t)
		}
	}

	compileStart := time.Now()
	pr := flatcore.CompileMP(h)
	compileSpan(opts.Trace, compileStart, pr.BoundsWall)
	gs := opts.Trace.StartChild("greedy")
	inc := core.SortedGreedyHyp(h, core.HyperOptions{})
	m0 := core.HyperMakespan(h, inc)
	gs.SetAttr("makespan", m0)
	var warm bool
	if inc, m0, warm = opts.seedMP(h, inc, m0); warm {
		gs.SetAttr("warm_start", m0)
	}
	gs.End()
	sh := newParShared(inc, m0, opts.maxNodes(), 1)
	sh.rootLB = pr.Bounds.Root()
	sh.obsFn = opts.Observer
	sh.setProgress(opts.Progress, opts.ProgressInterval)
	sh.closeIfOptimal()
	sh.observe() // the initial greedy incumbent
	ss := startSearchSpan(opts.Trace, sh)
	if !sh.closed.Load() {
		release := watchCancel(ctx, sh)
		s := newMPState(pr, sh)
		s.chunkLimit = seqChunk
		tk := &ticker{sh: sh}
		s.run(nil, tk)
		tk.flush()
		release()
	}
	sh.observe() // flush the final incumbent to the observer
	sh.progressFinal()
	finishSearch(opts, ss, sh, pr.Bounds, 1, 0)
	return append(core.HyperAssignment(nil), sh.bestA...), sh.bestM, sh.err(ctx)
}

// SolveX3C decides Exact Cover by 3-Sets by depth-first search over the
// lowest-indexed uncovered element. It returns the indices of a cover and
// true, or nil and false.
func SolveX3C(x adversarial.X3C) ([]int, bool) {
	if x.Validate() != nil {
		return nil, false
	}
	nElem := 3 * x.Q
	// setsWith[e] = sets containing element e.
	setsWith := make([][]int, nElem)
	for i, s := range x.Sets {
		for _, e := range s {
			setsWith[e] = append(setsWith[e], i)
		}
	}
	covered := make([]bool, nElem)
	var chosen []int
	var rec func(covCount int) bool
	rec = func(covCount int) bool {
		if covCount == nElem {
			return true
		}
		// First uncovered element.
		e := 0
		for covered[e] {
			e++
		}
		for _, si := range setsWith[e] {
			s := x.Sets[si]
			if covered[s[0]] || covered[s[1]] || covered[s[2]] {
				continue
			}
			covered[s[0]], covered[s[1]], covered[s[2]] = true, true, true
			chosen = append(chosen, si)
			if rec(covCount + 3) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
			covered[s[0]], covered[s[1]], covered[s[2]] = false, false, false
		}
		return false
	}
	if rec(0) {
		return chosen, true
	}
	return nil, false
}
