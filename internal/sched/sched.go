// Package sched is the scheduling-domain view of the graph problems: named
// tasks with execution-time configurations over named processors, the
// MULTIPROC model of Sec. II. It converts instances to the hypergraph
// representation, runs the semi-matching heuristics (or the exact solver),
// and turns the chosen semi-matching back into an executable schedule with
// a discrete-event timeline and a textual Gantt chart.
//
// The timeline also serves as an end-to-end validator: task parts are
// placed on concrete time slots, and the simulated span must equal the
// combinatorial makespan max_u l(u) — the paper's objective — because task
// parts are independent and may execute at different times (concurrent
// job-shop semantics).
package sched

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
	"semimatch/internal/registry"
)

// Config is one execution option of a task: run on all of Procs, taking
// Time units on each of them.
type Config struct {
	Procs []int // processor indices
	Time  int64 // w_h: time taken on each processor in the set
}

// Task is a named task with one or more configurations.
type Task struct {
	Name    string
	Configs []Config
}

// Instance is a MULTIPROC scheduling instance.
type Instance struct {
	ProcNames []string
	Tasks     []Task
}

// NewInstance returns an instance with the given processor names.
func NewInstance(procNames ...string) *Instance {
	return &Instance{ProcNames: procNames}
}

// AddTask appends a task; returns its index.
func (in *Instance) AddTask(name string, configs ...Config) int {
	in.Tasks = append(in.Tasks, Task{Name: name, Configs: configs})
	return len(in.Tasks) - 1
}

// Hypergraph converts the instance to its hypergraph form. Configuration
// j of task t becomes hyperedge TaskEdges(t)[j].
func (in *Instance) Hypergraph() (*hypergraph.Hypergraph, error) {
	b := hypergraph.NewBuilder(len(in.Tasks), len(in.ProcNames))
	for t, task := range in.Tasks {
		if len(task.Configs) == 0 {
			return nil, fmt.Errorf("sched: task %q has no configuration", task.Name)
		}
		for _, c := range task.Configs {
			if c.Time < 1 {
				return nil, fmt.Errorf("sched: task %q has non-positive time %d", task.Name, c.Time)
			}
			b.AddEdge(t, c.Procs, c.Time)
		}
	}
	return b.Build()
}

// Algorithm selects the scheduling algorithm.
type Algorithm int

const (
	// SortedGreedy is SGH (Algorithm 4).
	SortedGreedy Algorithm = iota
	// ExpectedGreedy is EGH (Algorithm 5).
	ExpectedGreedy
	// VectorGreedy is VGH (Sec. IV-D3).
	VectorGreedy
	// ExpectedVectorGreedy is EVG (Sec. IV-D4) — the paper's best
	// performer on weighted instances.
	ExpectedVectorGreedy
	// Exact runs the branch-and-bound solver; only viable for small
	// instances (it returns an error if the node budget is exceeded).
	Exact
)

// String returns the algorithm's conventional abbreviation.
func (a Algorithm) String() string {
	switch a {
	case SortedGreedy:
		return "SGH"
	case ExpectedGreedy:
		return "EGH"
	case VectorGreedy:
		return "VGH"
	case ExpectedVectorGreedy:
		return "EVG"
	case Exact:
		return "exact"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Schedule is a solved instance: each task's chosen configuration plus the
// derived loads.
type Schedule struct {
	Instance *Instance
	Choice   []int // Choice[t] = index into Tasks[t].Configs
	Loads    []int64
	Makespan int64
	Optimal  bool // true when produced by the exact solver
}

// Solve schedules the instance with the chosen algorithm. The enum maps
// through the solver registry via its String() name, so the set of valid
// values tracks the catalog.
func Solve(in *Instance, alg Algorithm) (*Schedule, error) {
	return SolveByName(in, alg.String())
}

// SolveByName schedules the instance with any registered MULTIPROC solver
// — canonical name or alias. Unknown names yield the registry's
// suggested-names error.
func SolveByName(in *Instance, name string) (*Schedule, error) {
	sol, err := registry.LookupClass(registry.MultiProc, name)
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	h, err := in.Hypergraph()
	if err != nil {
		return nil, err
	}
	a, err := sol.SolveHyper(context.Background(), h, registry.Options{})
	if err != nil {
		return nil, fmt.Errorf("sched: %s: %w", sol.Name, err)
	}
	optimal := sol.Optimal()
	if err := core.ValidateHyperAssignment(h, a); err != nil {
		return nil, fmt.Errorf("sched: internal error: %w", err)
	}
	s := &Schedule{Instance: in, Choice: make([]int, len(in.Tasks)), Optimal: optimal}
	for t := 0; t < len(in.Tasks); t++ {
		edges := h.TaskEdges(t)
		found := -1
		for j, e := range edges {
			if e == a[t] {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("sched: internal error: edge %d not among task %d's configurations", a[t], t)
		}
		s.Choice[t] = found
	}
	s.Loads = core.HyperLoads(h, a)
	s.Makespan = core.HyperMakespan(h, a)
	return s, nil
}

// Slot is one scheduled task part on a processor's timeline.
type Slot struct {
	Task       int
	Start, End int64
}

// Timeline is the per-processor discrete-event realization of a schedule.
type Timeline struct {
	Slots [][]Slot // by processor
	Span  int64    // completion time of the last part
}

// Simulate lays the chosen configuration parts onto concrete time slots:
// each processor executes its parts back to back (parts are independent,
// so any order is feasible; we use task order). The resulting span equals
// the makespan.
func (s *Schedule) Simulate() *Timeline {
	tl := &Timeline{Slots: make([][]Slot, len(s.Instance.ProcNames))}
	front := make([]int64, len(s.Instance.ProcNames))
	for t, task := range s.Instance.Tasks {
		c := task.Configs[s.Choice[t]]
		for _, p := range c.Procs {
			slot := Slot{Task: t, Start: front[p], End: front[p] + c.Time}
			front[p] = slot.End
			tl.Slots[p] = append(tl.Slots[p], slot)
			if slot.End > tl.Span {
				tl.Span = slot.End
			}
		}
	}
	return tl
}

// Validate checks the timeline against the schedule: slots on a processor
// must not overlap, every part of every chosen configuration appears
// exactly once, and the span equals the combinatorial makespan.
func (tl *Timeline) Validate(s *Schedule) error {
	want := map[[2]int]int{} // (task, proc) → count
	for t, task := range s.Instance.Tasks {
		c := task.Configs[s.Choice[t]]
		for _, p := range c.Procs {
			want[[2]int{t, p}]++
		}
	}
	for p, slots := range tl.Slots {
		for i, sl := range slots {
			if sl.End <= sl.Start {
				return fmt.Errorf("sched: empty slot for task %d on processor %d", sl.Task, p)
			}
			if i > 0 && sl.Start < slots[i-1].End {
				return fmt.Errorf("sched: overlap on processor %d at slot %d", p, i)
			}
			c := s.Instance.Tasks[sl.Task].Configs[s.Choice[sl.Task]]
			if sl.End-sl.Start != c.Time {
				return fmt.Errorf("sched: slot duration %d != configured time %d", sl.End-sl.Start, c.Time)
			}
			key := [2]int{sl.Task, p}
			want[key]--
			if want[key] == 0 {
				delete(want, key)
			}
		}
	}
	if len(want) != 0 {
		return fmt.Errorf("sched: %d task parts missing from the timeline", len(want))
	}
	if tl.Span != s.Makespan {
		return fmt.Errorf("sched: simulated span %d != makespan %d", tl.Span, s.Makespan)
	}
	return nil
}

// Gantt writes a textual Gantt chart of the timeline, one row per
// processor. Each character column is one time unit (scaled down for spans
// over 120 units).
func (tl *Timeline) Gantt(w io.Writer, s *Schedule) {
	scale := int64(1)
	for tl.Span/scale > 120 {
		scale *= 2
	}
	fmt.Fprintf(w, "makespan %d (1 col = %d time units)\n", tl.Span, scale)
	for p, slots := range tl.Slots {
		name := s.Instance.ProcNames[p]
		var sb strings.Builder
		pos := int64(0)
		for _, sl := range slots {
			for pos < sl.Start/scale {
				sb.WriteByte('.')
				pos++
			}
			label := taskGlyph(sl.Task)
			for pos < sl.End/scale || pos == sl.Start/scale {
				sb.WriteByte(label)
				pos++
			}
		}
		for pos < tl.Span/scale {
			sb.WriteByte('.')
			pos++
		}
		fmt.Fprintf(w, "%-10s |%s|\n", name, sb.String())
	}
}

// taskGlyph cycles task indices through visually distinct characters.
func taskGlyph(t int) byte {
	const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return glyphs[t%len(glyphs)]
}

// LoadReport returns the processors sorted by decreasing load with names —
// the "who is the bottleneck" summary.
func (s *Schedule) LoadReport() []string {
	type pl struct {
		p int
		l int64
	}
	ps := make([]pl, len(s.Loads))
	for p, l := range s.Loads {
		ps[p] = pl{p, l}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].l != ps[j].l {
			return ps[i].l > ps[j].l
		}
		return ps[i].p < ps[j].p
	})
	out := make([]string, len(ps))
	for i, x := range ps {
		out[i] = fmt.Sprintf("%s: %d", s.Instance.ProcNames[x.p], x.l)
	}
	return out
}
