package sched

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// The JSON instance parser consumes untrusted files (cmd/semisched reads
// arbitrary paths); mirroring internal/encode's fuzz tests, assert that it
// never panics and that anything it accepts survives a write/read round
// trip unchanged.

func FuzzReadInstanceJSON(f *testing.F) {
	f.Add(`{"processors":["a","b"],"tasks":[{"name":"t","configs":[{"procs":[0],"time":3}]}]}`)
	f.Add(`{"processors":["cpu0","cpu1","gpu"],"tasks":[
		{"name":"render","configs":[{"procs":[0],"time":8},{"procs":[0,2],"time":3}]},
		{"name":"encode","configs":[{"procs":[1],"time":6}]}]}`)
	f.Add(`{"processors":["p"],"tasks":[]}`)
	f.Add(`{"processors":[],"tasks":[]}`)
	f.Add(`{"processors":["p"],"tasks":[{"name":"t","configs":[]}]}`)
	f.Add(`{"processors":["p"],"tasks":[{"name":"t","configs":[{"procs":[1],"time":1}]}]}`)
	f.Add(`{"processors":["p"],"tasks":[{"name":"t","configs":[{"procs":[0],"time":0}]}]}`)
	f.Add(`{"processors":["p"],"tasks":[{"name":"t","configs":[{"procs":[0,0],"time":1}]}]}`)
	f.Add(`{"processors":["p"],"unknown":1}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, src string) {
		in, err := ReadInstanceJSON(strings.NewReader(src))
		if err != nil {
			return
		}
		// Everything the parser accepts must convert to a hypergraph (its
		// own validation promise) ...
		if _, err := in.Hypergraph(); err != nil {
			t.Fatalf("accepted instance fails hypergraph conversion: %v", err)
		}
		// ... and survive a write/read round trip unchanged.
		var buf bytes.Buffer
		if err := in.WriteJSON(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		in2, err := ReadInstanceJSON(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if !reflect.DeepEqual(in.ProcNames, in2.ProcNames) || !reflect.DeepEqual(in.Tasks, in2.Tasks) {
			t.Fatalf("round trip changed the instance:\n  %#v\nvs\n  %#v", in, in2)
		}
	})
}
