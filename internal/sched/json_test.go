package sched

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestInstanceJSONRoundTrip(t *testing.T) {
	in := cluster()
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	in2, err := ReadInstanceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(in2.Tasks) != len(in.Tasks) || len(in2.ProcNames) != len(in.ProcNames) {
		t.Fatalf("shape: %d/%d tasks, %d/%d procs", len(in2.Tasks), len(in.Tasks), len(in2.ProcNames), len(in.ProcNames))
	}
	// The two instances must solve identically.
	s1, err := Solve(in, Exact)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Solve(in2, Exact)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Makespan != s2.Makespan {
		t.Fatalf("makespans diverge after round trip: %d vs %d", s1.Makespan, s2.Makespan)
	}
}

func TestReadInstanceJSONErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"garbage", "{"},
		{"unknown field", `{"processors":["p"],"tasks":[],"bogus":1}`},
		{"no processors", `{"processors":[],"tasks":[]}`},
		{"task without config", `{"processors":["p"],"tasks":[{"name":"t","configs":[]}]}`},
		{"zero time", `{"processors":["p"],"tasks":[{"name":"t","configs":[{"procs":[0],"time":0}]}]}`},
		{"empty procs", `{"processors":["p"],"tasks":[{"name":"t","configs":[{"procs":[],"time":1}]}]}`},
		{"proc out of range", `{"processors":["p"],"tasks":[{"name":"t","configs":[{"procs":[3],"time":1}]}]}`},
		{"duplicate proc in config", `{"processors":["p","q"],"tasks":[{"name":"t","configs":[{"procs":[0,0],"time":1}]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadInstanceJSON(strings.NewReader(tc.src)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestScheduleWriteJSON(t *testing.T) {
	s, err := Solve(cluster(), Exact)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf, "exact"); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out["algorithm"] != "exact" || out["optimal"] != true {
		t.Fatalf("metadata: %v", out)
	}
	if _, ok := out["loads"].(map[string]any)["gpu"]; !ok {
		t.Fatalf("loads missing gpu: %v", out["loads"])
	}
	tasks := out["tasks"].([]any)
	if len(tasks) != 3 {
		t.Fatalf("tasks: %v", tasks)
	}
	first := tasks[0].(map[string]any)
	if first["name"] != "render" {
		t.Fatalf("first task: %v", first)
	}
}

func TestJSONExampleFromDoc(t *testing.T) {
	src := `{
	  "processors": ["cpu0", "cpu1", "gpu"],
	  "tasks": [
	    {"name": "render", "configs": [
	      {"procs": [0], "time": 8},
	      {"procs": [0, 2], "time": 3}
	    ]}
	  ]
	}`
	in, err := ReadInstanceJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Solve(in, ExpectedVectorGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 3 {
		t.Fatalf("makespan = %d, want 3 (CPU+GPU config)", s.Makespan)
	}
}
