package sched

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON shape is the natural external form of an Instance: processor
// names plus tasks with their configurations. It is the format
// cmd/semisched consumes.
//
//	{
//	  "processors": ["cpu0", "cpu1", "gpu"],
//	  "tasks": [
//	    {"name": "render", "configs": [
//	      {"procs": [0], "time": 8},
//	      {"procs": [0, 2], "time": 3}
//	    ]}
//	  ]
//	}
type jsonInstance struct {
	Processors []string   `json:"processors"`
	Tasks      []jsonTask `json:"tasks"`
}

type jsonTask struct {
	Name    string       `json:"name"`
	Configs []jsonConfig `json:"configs"`
}

type jsonConfig struct {
	Procs []int `json:"procs"`
	Time  int64 `json:"time"`
}

// WriteJSON writes the instance as indented JSON.
func (in *Instance) WriteJSON(w io.Writer) error {
	ji := jsonInstance{Processors: in.ProcNames}
	for _, t := range in.Tasks {
		jt := jsonTask{Name: t.Name}
		for _, c := range t.Configs {
			jt.Configs = append(jt.Configs, jsonConfig{Procs: c.Procs, Time: c.Time})
		}
		ji.Tasks = append(ji.Tasks, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ji)
}

// ReadInstanceJSON parses an instance from JSON and validates it (every
// task needs a configuration; processor indices in range; positive times).
func ReadInstanceJSON(r io.Reader) (*Instance, error) {
	var ji jsonInstance
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ji); err != nil {
		return nil, fmt.Errorf("sched: parsing instance JSON: %w", err)
	}
	if len(ji.Processors) == 0 {
		return nil, fmt.Errorf("sched: no processors")
	}
	in := NewInstance(ji.Processors...)
	for _, jt := range ji.Tasks {
		if len(jt.Configs) == 0 {
			return nil, fmt.Errorf("sched: task %q has no configuration", jt.Name)
		}
		cfgs := make([]Config, len(jt.Configs))
		for i, jc := range jt.Configs {
			if jc.Time < 1 {
				return nil, fmt.Errorf("sched: task %q config %d has non-positive time", jt.Name, i)
			}
			if len(jc.Procs) == 0 {
				return nil, fmt.Errorf("sched: task %q config %d has no processors", jt.Name, i)
			}
			for _, p := range jc.Procs {
				if p < 0 || p >= len(ji.Processors) {
					return nil, fmt.Errorf("sched: task %q config %d references processor %d (have %d)", jt.Name, i, p, len(ji.Processors))
				}
			}
			cfgs[i] = Config{Procs: jc.Procs, Time: jc.Time}
		}
		in.AddTask(jt.Name, cfgs...)
	}
	// Round-trip through the hypergraph builder to catch duplicate
	// processors within a configuration etc.
	if _, err := in.Hypergraph(); err != nil {
		return nil, err
	}
	return in, nil
}

// scheduleJSON is the external form of a solved schedule.
type scheduleJSON struct {
	Algorithm string           `json:"algorithm"`
	Makespan  int64            `json:"makespan"`
	Optimal   bool             `json:"optimal"`
	Tasks     []scheduleTask   `json:"tasks"`
	Loads     map[string]int64 `json:"loads"`
}

type scheduleTask struct {
	Name   string   `json:"name"`
	Config int      `json:"config"`
	Procs  []string `json:"procs"`
	Time   int64    `json:"time"`
}

// WriteJSON writes the solved schedule as indented JSON; algorithm is a
// label for provenance.
func (s *Schedule) WriteJSON(w io.Writer, algorithm string) error {
	out := scheduleJSON{
		Algorithm: algorithm,
		Makespan:  s.Makespan,
		Optimal:   s.Optimal,
		Loads:     make(map[string]int64, len(s.Loads)),
	}
	for p, l := range s.Loads {
		out.Loads[s.Instance.ProcNames[p]] = l
	}
	for t, task := range s.Instance.Tasks {
		c := task.Configs[s.Choice[t]]
		st := scheduleTask{Name: task.Name, Config: s.Choice[t], Time: c.Time}
		for _, p := range c.Procs {
			st.Procs = append(st.Procs, s.Instance.ProcNames[p])
		}
		out.Tasks = append(out.Tasks, st)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
