package sched

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// cluster builds a small heterogeneous instance: two CPUs and a GPU;
// tasks may run on one CPU slowly or on CPU+GPU together faster.
func cluster() *Instance {
	in := NewInstance("cpu0", "cpu1", "gpu")
	in.AddTask("render",
		Config{Procs: []int{0}, Time: 8},
		Config{Procs: []int{1}, Time: 8},
		Config{Procs: []int{0, 2}, Time: 3})
	in.AddTask("encode",
		Config{Procs: []int{1}, Time: 6},
		Config{Procs: []int{1, 2}, Time: 2})
	in.AddTask("archive",
		Config{Procs: []int{0}, Time: 4},
		Config{Procs: []int{1}, Time: 4})
	return in
}

func TestHypergraphConversion(t *testing.T) {
	in := cluster()
	h, err := in.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	if h.NTasks != 3 || h.NProcs != 3 || h.NumEdges() != 7 {
		t.Fatalf("conversion sizes wrong: %d %d %d", h.NTasks, h.NProcs, h.NumEdges())
	}
	if h.Unit() {
		t.Fatal("weighted instance must not be unit")
	}
}

func TestConversionErrors(t *testing.T) {
	in := NewInstance("p0")
	in.AddTask("empty")
	if _, err := in.Hypergraph(); err == nil {
		t.Fatal("task without configurations accepted")
	}
	in2 := NewInstance("p0")
	in2.AddTask("bad", Config{Procs: []int{0}, Time: 0})
	if _, err := in2.Hypergraph(); err == nil {
		t.Fatal("zero time accepted")
	}
}

func TestSolveAllAlgorithms(t *testing.T) {
	in := cluster()
	var exactM int64
	for _, alg := range []Algorithm{SortedGreedy, ExpectedGreedy, VectorGreedy, ExpectedVectorGreedy, Exact} {
		s, err := Solve(in, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(s.Choice) != 3 {
			t.Fatalf("%v: choice len %d", alg, len(s.Choice))
		}
		if s.Makespan < 1 {
			t.Fatalf("%v: makespan %d", alg, s.Makespan)
		}
		if alg == Exact {
			exactM = s.Makespan
			if !s.Optimal {
				t.Fatal("exact must mark Optimal")
			}
		}
	}
	// Exact is a lower bound for every heuristic.
	for _, alg := range []Algorithm{SortedGreedy, ExpectedGreedy, VectorGreedy, ExpectedVectorGreedy} {
		s, err := Solve(in, alg)
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan < exactM {
			t.Fatalf("%v beat the exact optimum: %d < %d", alg, s.Makespan, exactM)
		}
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	if _, err := Solve(cluster(), Algorithm(42)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		SortedGreedy: "SGH", ExpectedGreedy: "EGH", VectorGreedy: "VGH",
		ExpectedVectorGreedy: "EVG", Exact: "exact",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestSimulateAndValidate(t *testing.T) {
	s, err := Solve(cluster(), Exact)
	if err != nil {
		t.Fatal(err)
	}
	tl := s.Simulate()
	if err := tl.Validate(s); err != nil {
		t.Fatal(err)
	}
	if tl.Span != s.Makespan {
		t.Fatalf("span %d != makespan %d", tl.Span, s.Makespan)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s, err := Solve(cluster(), SortedGreedy)
	if err != nil {
		t.Fatal(err)
	}
	tl := s.Simulate()
	// Introduce an overlap.
	for p := range tl.Slots {
		if len(tl.Slots[p]) >= 2 {
			tl.Slots[p][1].Start = tl.Slots[p][0].Start
			tl.Slots[p][1].End = tl.Slots[p][1].Start + (tl.Slots[p][1].End - tl.Slots[p][1].Start)
			if err := tl.Validate(s); err == nil {
				t.Fatal("overlap not detected")
			}
			return
		}
	}
	t.Skip("no processor with two slots in this schedule")
}

func TestGanttOutput(t *testing.T) {
	s, err := Solve(cluster(), ExpectedVectorGreedy)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	s.Simulate().Gantt(&sb, s)
	out := sb.String()
	if !strings.Contains(out, "cpu0") || !strings.Contains(out, "gpu") {
		t.Fatalf("Gantt missing processor names:\n%s", out)
	}
	if !strings.Contains(out, "makespan") {
		t.Fatalf("Gantt missing header:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("want 1 header + 3 processor rows:\n%s", out)
	}
}

func TestLoadReport(t *testing.T) {
	s, err := Solve(cluster(), Exact)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.LoadReport()
	if len(rep) != 3 {
		t.Fatalf("report: %v", rep)
	}
	// First entry is the bottleneck: must contain the makespan value.
	if !strings.Contains(rep[0], ":") {
		t.Fatalf("report format: %v", rep)
	}
}

func TestPropertySimulationSpanEqualsMakespan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nProcs := 2 + rng.Intn(5)
		names := make([]string, nProcs)
		for i := range names {
			names[i] = "p"
		}
		in := NewInstance(names...)
		nTasks := 1 + rng.Intn(12)
		for t := 0; t < nTasks; t++ {
			nCfg := 1 + rng.Intn(3)
			cfgs := make([]Config, nCfg)
			for j := range cfgs {
				k := 1 + rng.Intn(nProcs)
				cfgs[j] = Config{Procs: rng.Perm(nProcs)[:k], Time: 1 + rng.Int63n(9)}
			}
			in.AddTask("t", cfgs...)
		}
		for _, alg := range []Algorithm{SortedGreedy, ExpectedGreedy, VectorGreedy, ExpectedVectorGreedy} {
			s, err := Solve(in, alg)
			if err != nil {
				return false
			}
			tl := s.Simulate()
			if tl.Validate(s) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
