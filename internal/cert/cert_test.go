package cert

import (
	"encoding/json"
	"strings"
	"testing"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
)

// testGraph is a small weighted SINGLEPROC instance: 3 tasks, 2 procs.
func testGraph(t *testing.T) *bipartite.Graph {
	t.Helper()
	b := bipartite.NewBuilder(3, 2)
	b.AddWeightedEdge(0, 0, 4)
	b.AddWeightedEdge(0, 1, 5)
	b.AddWeightedEdge(1, 0, 3)
	b.AddWeightedEdge(1, 1, 3)
	b.AddWeightedEdge(2, 1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testHyper is a small MULTIPROC instance: 2 tasks, 2 procs.
func testHyper(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(2, 2)
	b.AddEdge(0, []int{0, 1}, 3)
	b.AddEdge(0, []int{0}, 8)
	b.AddEdge(1, []int{1}, 5)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestIssueVerifyRoundTrip: a certificate issued for a correct schedule
// verifies, and an optimal schedule whose makespan meets a cheap bound
// earns TierVerified.
func TestIssueVerifyRoundTrip(t *testing.T) {
	g := testGraph(t)
	// Optimal by hand: t0→0 (4), t1→1 (3), t2→1 (2) → loads 4,5... try
	// t0→0, t1→0, t2→1: loads 7,2. Best is 5: t0→0 (4), t1→1 (3)+t2→1 (2)
	// = 5 vs 4 → makespan 5.
	a := []int32{0, 1, 1}
	m := core.Makespan(g, core.Assignment(a))
	if m != 5 {
		t.Fatalf("hand schedule makespan = %d, want 5", m)
	}
	avg, maxElem, err := Bounds(g)
	if err != nil {
		t.Fatal(err)
	}
	if avg != 5 || maxElem != 4 {
		t.Fatalf("bounds = (%d, %d), want (5, 4)", avg, maxElem)
	}

	c := Issue(g, a, m, 5, true, 123, "test")
	if c == nil {
		t.Fatal("Issue returned nil")
	}
	if c.Witness.Kind != WitnessAverageLoad {
		t.Fatalf("witness = %s, want average-load (avg bound closes the gap)", c.Witness.Kind)
	}
	if c.LowerBound != m {
		t.Fatalf("certificate lower bound = %d, want %d", c.LowerBound, m)
	}
	tier, err := Verify(g, c)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if tier != TierVerified {
		t.Fatalf("tier = %s, want verified", tier)
	}
}

// TestIssueExhaustiveAttested: when no cheap bound closes the gap, an
// optimal result gets an exhaustive witness and verifies at TierAttested.
func TestIssueExhaustiveAttested(t *testing.T) {
	h := testHyper(t)
	// Optimal: t0 picks edge 0 (w3 on both procs), t1 edge 2 (w5 on p1):
	// loads 3, 8 → makespan 8. Bounds: avg = ⌈(min(6,8)+5)/2⌉ = ⌈11/2⌉ =
	// 6; maxElem = max(min(3,8), 5) = 5. Neither equals 8.
	a := []int32{0, 2}
	m := core.HyperMakespan(h, core.HyperAssignment(a))
	if m != 8 {
		t.Fatalf("makespan = %d, want 8", m)
	}
	c := Issue(h, a, m, 6, true, 77, "bnb")
	if c.Witness.Kind != WitnessExhaustive || c.Witness.Nodes != 77 {
		t.Fatalf("witness = %+v, want exhaustive/77", c.Witness)
	}
	if c.LowerBound != 8 {
		t.Fatalf("lower bound = %d, want 8 (gap closed by attestation)", c.LowerBound)
	}
	tier, err := Verify(h, c)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if tier != TierAttested {
		t.Fatalf("tier = %s, want attested", tier)
	}
}

// TestIssueHeuristicNoClaim: a non-optimal result away from the bounds
// gets no witness and verifies at TierHeuristic.
func TestIssueHeuristicNoClaim(t *testing.T) {
	h := testHyper(t)
	// t0 edge 1 (w8 on p0), t1 edge 2 (w5 on p1): loads 8, 5 → 8. Same
	// makespan as optimal here, but issue as non-optimal with the class
	// bound 6.
	a := []int32{1, 2}
	m := core.HyperMakespan(h, core.HyperAssignment(a))
	c := Issue(h, a, m, 6, false, 0, "SGH")
	if c.Witness.Kind != WitnessNone {
		t.Fatalf("witness = %s, want none", c.Witness.Kind)
	}
	if c.LowerBound != 6 {
		t.Fatalf("lower bound = %d, want the class bound 6", c.LowerBound)
	}
	tier, err := Verify(h, c)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if tier != TierHeuristic {
		t.Fatalf("tier = %s, want heuristic", tier)
	}
}

// TestVerifyRejectsLies: tampered certificates fail with descriptive
// errors — wrong makespan, unsupported bound, witness that does not hold,
// infeasible assignment, wrong fingerprint, wrong class.
func TestVerifyRejectsLies(t *testing.T) {
	g := testGraph(t)
	a := []int32{0, 1, 1}
	m := core.Makespan(g, core.Assignment(a))
	good := Issue(g, a, m, 5, true, 0, "test")

	cases := []struct {
		name   string
		mutate func(c *Certificate)
		want   string
	}{
		{"makespan inflated", func(c *Certificate) { c.Makespan = 4 }, "makespan mismatch"},
		{"bound above makespan", func(c *Certificate) { c.LowerBound = 6 }, "exceeds makespan"},
		{"witness does not hold", func(c *Certificate) {
			c.Witness.Kind = WitnessMaxElement // maxElem is 4, makespan 5
		}, "max-element witness does not hold"},
		{"infeasible assignment", func(c *Certificate) {
			c.Assignment = []int32{0, 0, 0} // task 2 is not adjacent to proc 0
		}, "infeasible"},
		{"wrong fingerprint", func(c *Certificate) { c.Fingerprint = strings.Repeat("ab", 32) }, "fingerprint mismatch"},
		{"wrong class", func(c *Certificate) { c.Class = ClassMultiProc }, "does not match"},
		{"unsupported claim", func(c *Certificate) {
			c.Witness.Kind = WitnessNone
			c.LowerBound = 5 // OK numerically (== best bound)...
			c.Makespan = 5
			c.Assignment = []int32{0, 0, 1} // loads 7, 2 → makespan 7 ≠ 5
		}, "makespan mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := *good
			tc.mutate(&c)
			if _, err := Verify(g, &c); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Verify err = %v, want substring %q", err, tc.want)
			}
		})
	}

	// The untampered certificate still verifies (mutations copied).
	if _, err := Verify(g, good); err != nil {
		t.Fatalf("control certificate failed: %v", err)
	}
}

// TestVerifyUpgradesBeyondClaim: a heuristic certificate whose schedule
// happens to hit a re-derivable bound is upgraded to TierVerified, and an
// exhaustive certificate likewise when a bound closes the gap after all.
func TestVerifyUpgradesBeyondClaim(t *testing.T) {
	g := testGraph(t)
	a := []int32{0, 1, 1} // makespan 5 == avg bound
	c := Issue(g, a, 5, 5, false, 0, "lucky-heuristic")
	// Issue already detects the bound; force the weaker claims by hand to
	// simulate a producer that did not notice.
	c.Witness = Witness{Kind: WitnessNone}
	c.LowerBound = 4
	tier, err := Verify(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if tier != TierVerified {
		t.Fatalf("tier = %s, want verified (re-derived bound equals makespan)", tier)
	}

	c.Witness = Witness{Kind: WitnessExhaustive, Nodes: 9}
	c.LowerBound = 5
	tier, err = Verify(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if tier != TierVerified {
		t.Fatalf("tier = %s, want verified (bound beats attestation)", tier)
	}
}

// TestEnumJSON: witness kinds and tiers marshal as strings and reject
// unknown labels, so foreign or stale disk entries fail loudly.
func TestEnumJSON(t *testing.T) {
	for k, want := range map[WitnessKind]string{
		WitnessNone:        `"none"`,
		WitnessAverageLoad: `"average-load"`,
		WitnessMaxElement:  `"max-element"`,
		WitnessExhaustive:  `"exhaustive"`,
		WitnessPacking:     `"packing"`,
		WitnessMatching:    `"matching"`,
	} {
		b, err := json.Marshal(k)
		if err != nil || string(b) != want {
			t.Fatalf("Marshal(%d) = %s, %v; want %s", k, b, err, want)
		}
		var back WitnessKind
		if err := json.Unmarshal(b, &back); err != nil || back != k {
			t.Fatalf("round trip of %s: %v, %v", want, back, err)
		}
	}
	for tier, want := range map[Tier]string{
		TierHeuristic: `"heuristic"`,
		TierAttested:  `"attested"`,
		TierVerified:  `"verified"`,
	} {
		b, err := json.Marshal(tier)
		if err != nil || string(b) != want {
			t.Fatalf("Marshal(%d) = %s, %v; want %s", tier, b, err, want)
		}
		var back Tier
		if err := json.Unmarshal(b, &back); err != nil || back != tier {
			t.Fatalf("round trip of %s: %v, %v", want, back, err)
		}
	}
	var k WitnessKind
	if err := json.Unmarshal([]byte(`"telepathy"`), &k); err == nil {
		t.Fatal("unknown witness kind accepted")
	}
	var tr Tier
	if err := json.Unmarshal([]byte(`"sworn"`), &tr); err == nil {
		t.Fatal("unknown tier accepted")
	}
}

// TestCertificateJSONRoundTrip: a full certificate survives JSON — the
// disk tier's persistence path.
func TestCertificateJSONRoundTrip(t *testing.T) {
	g := testGraph(t)
	c := Issue(g, []int32{0, 1, 1}, 5, 5, true, 42, "bnb-par")
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Certificate
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint != c.Fingerprint || back.Class != c.Class ||
		back.Makespan != c.Makespan || back.LowerBound != c.LowerBound ||
		back.Witness != c.Witness || len(back.Assignment) != len(c.Assignment) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, *c)
	}
	if tier, err := Verify(g, &back); err != nil || tier != TierVerified {
		t.Fatalf("deserialized certificate: tier %s, err %v", tier, err)
	}
}

// TestClaimedTier: the display tier matches what verification would
// grant for honest certificates.
func TestClaimedTier(t *testing.T) {
	for _, tc := range []struct {
		kind WitnessKind
		want Tier
	}{
		{WitnessNone, TierHeuristic},
		{WitnessAverageLoad, TierVerified},
		{WitnessMaxElement, TierVerified},
		{WitnessPacking, TierVerified},
		{WitnessMatching, TierVerified},
		{WitnessExhaustive, TierAttested},
	} {
		c := &Certificate{Witness: Witness{Kind: tc.kind}}
		if got := c.ClaimedTier(); got != tc.want {
			t.Fatalf("ClaimedTier(%s) = %s, want %s", tc.kind, got, tc.want)
		}
	}
}

// TestIssuePackingWitness: when neither cheap bound closes the gap but
// the bin-packing bound does, Issue claims WitnessPacking and Verify
// re-derives it to TierVerified — no attestation needed.
func TestIssuePackingWitness(t *testing.T) {
	// 3 identical tasks of weight 4 on 2 fully-eligible procs: two tasks
	// must share, so OPT = 8. avg = ⌈12/2⌉ = 6 and maxElem = 4 leave the
	// gap open; the 2-tuple packing bound closes it at 8.
	b := bipartite.NewBuilder(3, 2)
	for task := 0; task < 3; task++ {
		b.AddWeightedEdge(task, 0, 4)
		b.AddWeightedEdge(task, 1, 4)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := []int32{0, 1, 0} // loads 8, 4
	m := core.Makespan(g, core.Assignment(a))
	if m != 8 {
		t.Fatalf("makespan = %d, want 8", m)
	}
	c := Issue(g, a, m, 6, true, 99, "bnb")
	if c.Witness.Kind != WitnessPacking {
		t.Fatalf("witness = %s, want packing", c.Witness.Kind)
	}
	if c.LowerBound != m {
		t.Fatalf("lower bound = %d, want %d (gap closed)", c.LowerBound, m)
	}
	tier, err := Verify(g, c)
	if err != nil || tier != TierVerified {
		t.Fatalf("Verify: tier %s, err %v; want verified", tier, err)
	}
	// A matching claim on the same certificate must fail: the flow
	// relaxation splits load fractionally and only proves 6.
	forged := *c
	forged.Witness.Kind = WitnessMatching
	if _, err := Verify(g, &forged); err == nil || !strings.Contains(err.Error(), "matching witness does not hold") {
		t.Fatalf("forged matching witness: err %v", err)
	}
}

// TestIssuePackingWitnessHyper: the packing witness path for MULTIPROC —
// cheapest configuration weights feed the identical-machines relaxation.
func TestIssuePackingWitnessHyper(t *testing.T) {
	b := hypergraph.NewBuilder(3, 2)
	for task := 0; task < 3; task++ {
		b.AddEdge(task, []int{0}, 4)
		b.AddEdge(task, []int{1}, 4)
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := []int32{0, 3, 4} // t0→p0, t1→p1, t2→p0: loads 8, 4
	m := core.HyperMakespan(h, core.HyperAssignment(a))
	if m != 8 {
		t.Fatalf("makespan = %d, want 8", m)
	}
	c := Issue(h, a, m, 6, true, 0, "bnb-mp")
	if c.Witness.Kind != WitnessPacking {
		t.Fatalf("witness = %s, want packing", c.Witness.Kind)
	}
	tier, err := Verify(h, c)
	if err != nil || tier != TierVerified {
		t.Fatalf("Verify: tier %s, err %v; want verified", tier, err)
	}
}

// TestIssueMatchingWitness: when only the matching/flow bound sees the
// eligibility bottleneck, Issue claims WitnessMatching and Verify
// re-derives it.
func TestIssueMatchingWitness(t *testing.T) {
	// Tasks 0 and 1 are eligible only on proc 0 (weight 3 each); task 2
	// only on proc 1 (weight 1). OPT = 6 (proc 0 carries both 3s).
	// avg = ⌈7/2⌉ = 4, maxElem = 3, packing([3,3,1], 2) = 4: all open.
	// The flow relaxation must push 6 units through proc 0, so the
	// matching bound is exactly 6.
	b := bipartite.NewBuilder(3, 2)
	b.AddWeightedEdge(0, 0, 3)
	b.AddWeightedEdge(1, 0, 3)
	b.AddWeightedEdge(2, 1, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := []int32{0, 0, 1}
	m := core.Makespan(g, core.Assignment(a))
	if m != 6 {
		t.Fatalf("makespan = %d, want 6", m)
	}
	c := Issue(g, a, m, 4, true, 0, "bnb")
	if c.Witness.Kind != WitnessMatching {
		t.Fatalf("witness = %s, want matching", c.Witness.Kind)
	}
	if c.LowerBound != m {
		t.Fatalf("lower bound = %d, want %d (gap closed)", c.LowerBound, m)
	}
	tier, err := Verify(g, c)
	if err != nil || tier != TierVerified {
		t.Fatalf("Verify: tier %s, err %v; want verified", tier, err)
	}
	// JSON round-trip preserves the strong-bound claim end to end.
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Certificate
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if tier, err := Verify(g, &back); err != nil || tier != TierVerified {
		t.Fatalf("deserialized matching certificate: tier %s, err %v", tier, err)
	}
	// A packing claim on this instance cannot be supported (packing only
	// proves 4).
	forged := back
	forged.Witness.Kind = WitnessPacking
	if _, err := Verify(g, &forged); err == nil || !strings.Contains(err.Error(), "packing witness does not hold") {
		t.Fatalf("forged packing witness: err %v", err)
	}
}

// TestBoundsUnsupported: unknown instance types error instead of
// guessing.
func TestBoundsUnsupported(t *testing.T) {
	if _, _, err := Bounds(42); err == nil {
		t.Fatal("Bounds(42) succeeded")
	}
	if _, err := Verify(42, &Certificate{}); err == nil {
		t.Fatal("Verify on unsupported instance succeeded")
	}
	if _, err := Verify(testGraph(t), nil); err == nil {
		t.Fatal("Verify(nil certificate) succeeded")
	}
}
