// Package cert makes solve results proof-carrying: a Certificate records
// what a solver claims about a schedule — the instance it belongs to (by
// canonical fingerprint), the schedule itself, its makespan, and an
// optimality witness naming which lower bound closed the gap — and Verify
// checks the claim against the instance without trusting the producer.
//
// Verification recomputes everything recomputable: the fingerprint, the
// schedule's feasibility, its per-processor loads and makespan, and the
// claimed lower bound, re-derived from the instance itself. The outcome
// is a trust tier:
//
//   - TierVerified: the schedule is feasible, the makespan matches, and a
//     lower bound re-derived from the instance equals it — optimality is
//     proven locally, with no trust in the producing solver.
//   - TierAttested: the claims are internally consistent and everything
//     recomputable checks out, but optimality rests on the solver's
//     attestation (an exhaustive branch-and-bound, or a polynomial exact
//     algorithm) that cannot be re-derived without redoing the work.
//   - TierHeuristic: the schedule is feasible and the makespan matches,
//     but no optimality claim is made.
//
// Any mismatch — wrong fingerprint, infeasible assignment, a makespan or
// bound that does not recompute — fails Verify with an error describing
// the lie. This is what lets replicas, restarts and caches exchange
// results: a cached entry is admitted only if its certificate verifies,
// so a corrupt or forged entry can never poison an answer.
package cert

import (
	"errors"
	"fmt"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/encode"
	"semimatch/internal/hypergraph"
	"semimatch/internal/lb"
)

// Problem-class labels recorded in certificates (matching the registry's
// class names without importing it).
const (
	ClassSingleProc = "SINGLEPROC"
	ClassMultiProc  = "MULTIPROC"
)

// Tier is the trust level Verify establishes for a certificate.
type Tier uint8

const (
	// TierHeuristic: the schedule is feasible and its makespan matches,
	// with no optimality proof.
	TierHeuristic Tier = iota
	// TierAttested: optimality is claimed by solver attestation (e.g. an
	// exhausted branch-and-bound tree); everything recomputable verifies,
	// but the attestation itself cannot be re-derived cheaply.
	TierAttested
	// TierVerified: optimality is proven locally — a lower bound
	// re-derived from the instance equals the recomputed makespan.
	TierVerified
)

// String returns the tier label used in listings and JSON.
func (t Tier) String() string {
	switch t {
	case TierHeuristic:
		return "heuristic"
	case TierAttested:
		return "attested"
	case TierVerified:
		return "verified"
	default:
		return fmt.Sprintf("Tier(%d)", uint8(t))
	}
}

// MarshalJSON encodes the tier as its string label.
func (t Tier) MarshalJSON() ([]byte, error) { return []byte(`"` + t.String() + `"`), nil }

// UnmarshalJSON decodes a tier label; unknown labels are an error, so
// stale or foreign cache entries fail loudly instead of silently
// downgrading.
func (t *Tier) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"heuristic"`:
		*t = TierHeuristic
	case `"attested"`:
		*t = TierAttested
	case `"verified"`:
		*t = TierVerified
	default:
		return fmt.Errorf("cert: unknown trust tier %s", b)
	}
	return nil
}

// WitnessKind names the argument a certificate offers for optimality.
type WitnessKind uint8

const (
	// WitnessNone makes no optimality claim (heuristic or truncated
	// results).
	WitnessNone WitnessKind = iota
	// WitnessAverageLoad: the average-load bound — ⌈Σ cheapest-placement
	// work / p⌉ (Eq. (1) for MULTIPROC, its weighted SINGLEPROC analogue)
	// — equals the makespan. Re-derivable from the instance in linear
	// time.
	WitnessAverageLoad
	// WitnessMaxElement: the max-element bound — some processor must
	// absorb the cheapest placement of the heaviest task whole — equals
	// the makespan. Re-derivable from the instance in linear time.
	WitnessMaxElement
	// WitnessExhaustive: the solver attests optimality by complete search
	// (an exhausted branch-and-bound tree; Witness.Nodes records its
	// size) or by an exact polynomial algorithm (Nodes is 0). Verifiable
	// only for consistency, not re-derivable: Verify caps such
	// certificates at TierAttested unless a re-derived bound happens to
	// close the gap anyway.
	WitnessExhaustive
	// WitnessPacking: the bin-packing bound on the identical-machines
	// relaxation (items are each task's cheapest placement weight;
	// L1 + k-tuple + Martello–Toth dual) equals the makespan.
	// Re-derivable from the instance in near-linear time.
	WitnessPacking
	// WitnessMatching: the matching/max-flow bound — the smallest
	// deadline T for which every task can route its cheapest placement
	// through an edge of weight ≤ T with processor capacity T — equals
	// the makespan. Re-derivable from the instance in polynomial time
	// (a max-flow bisection).
	WitnessMatching
)

// String returns the witness label used in listings and JSON.
func (k WitnessKind) String() string {
	switch k {
	case WitnessNone:
		return "none"
	case WitnessAverageLoad:
		return "average-load"
	case WitnessMaxElement:
		return "max-element"
	case WitnessExhaustive:
		return "exhaustive"
	case WitnessPacking:
		return "packing"
	case WitnessMatching:
		return "matching"
	default:
		return fmt.Sprintf("WitnessKind(%d)", uint8(k))
	}
}

// MarshalJSON encodes the witness kind as its string label.
func (k WitnessKind) MarshalJSON() ([]byte, error) { return []byte(`"` + k.String() + `"`), nil }

// UnmarshalJSON decodes a witness label; unknown labels are an error.
func (k *WitnessKind) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"none"`:
		*k = WitnessNone
	case `"average-load"`:
		*k = WitnessAverageLoad
	case `"max-element"`:
		*k = WitnessMaxElement
	case `"exhaustive"`:
		*k = WitnessExhaustive
	case `"packing"`:
		*k = WitnessPacking
	case `"matching"`:
		*k = WitnessMatching
	default:
		return fmt.Errorf("cert: unknown witness kind %s", b)
	}
	return nil
}

// Witness is a certificate's optimality argument.
type Witness struct {
	// Kind names which lower bound closed the gap, or WitnessExhaustive
	// for a search/algorithmic attestation, or WitnessNone for no claim.
	Kind WitnessKind `json:"kind"`
	// Nodes is the attesting branch-and-bound search's tree size
	// (WitnessExhaustive only; 0 for polynomial exact solvers).
	Nodes int64 `json:"nodes,omitempty"`
}

// Certificate is one proof-carrying result: the claims a caller can check
// with Verify instead of trusting the solver (or the cache, or the
// replica) that produced it.
type Certificate struct {
	// Fingerprint is the canonical content hash (hex SHA-256) of the
	// instance this certificate belongs to; isomorphic instances share it.
	Fingerprint string `json:"fingerprint"`
	// Class is the problem class (ClassSingleProc or ClassMultiProc).
	Class string `json:"class"`
	// Solver is the canonical registry name of the producing solver.
	Solver string `json:"solver,omitempty"`
	// Assignment is the schedule, in the certified instance's own
	// encoding: task → processor (SINGLEPROC) or task → hyperedge id
	// (MULTIPROC).
	Assignment []int32 `json:"assignment"`
	// Makespan is the claimed maximum processor load of Assignment.
	Makespan int64 `json:"makespan"`
	// LowerBound is the claimed lower bound on the optimal makespan. For
	// certificates with a non-none witness it equals Makespan (the gap is
	// closed); otherwise it must be supported by a bound re-derivable
	// from the instance.
	LowerBound int64 `json:"lower_bound"`
	// Witness is the optimality argument.
	Witness Witness `json:"witness"`
}

// ClaimedTier is the tier this certificate would earn if its claims check
// out — for display before (or without) verification. Verify is the real
// thing.
func (c *Certificate) ClaimedTier() Tier {
	switch c.Witness.Kind {
	case WitnessAverageLoad, WitnessMaxElement, WitnessPacking, WitnessMatching:
		return TierVerified
	case WitnessExhaustive:
		return TierAttested
	default:
		return TierHeuristic
	}
}

// Bounds re-derives the two cheap instance-level lower bounds on the
// optimal makespan: the average-load bound (each task in its cheapest
// placement, total work spread perfectly over the processors, rounded up)
// and the max-element bound (the heaviest task's cheapest placement must
// land whole on some processor). instance must be a *bipartite.Graph or a
// *hypergraph.Hypergraph. These are the bounds WitnessAverageLoad and
// WitnessMaxElement certificates are checked against, and the bounds the
// exact engines report in SearchStats.
func Bounds(instance any) (avg, maxElem int64, err error) {
	switch v := instance.(type) {
	case *bipartite.Graph:
		a, m := boundsSingle(v)
		return a, m, nil
	case *hypergraph.Hypergraph:
		a, m := boundsHyper(v)
		return a, m, nil
	default:
		return 0, 0, fmt.Errorf("cert: unsupported instance type %T", instance)
	}
}

func boundsSingle(g *bipartite.Graph) (avg, maxElem int64) {
	if g.NRight == 0 || g.NLeft == 0 {
		return 0, 0
	}
	var total int64
	for t := 0; t < g.NLeft; t++ {
		best := int64(1)
		if w := g.Weights(t); len(w) > 0 {
			best = w[0]
			for _, x := range w[1:] {
				if x < best {
					best = x
				}
			}
		}
		total += best
		if best > maxElem {
			maxElem = best
		}
	}
	p := int64(g.NRight)
	return (total + p - 1) / p, maxElem
}

func boundsHyper(h *hypergraph.Hypergraph) (avg, maxElem int64) {
	if h.NProcs == 0 || h.NTasks == 0 {
		return 0, 0
	}
	var total int64
	for t := 0; t < h.NTasks; t++ {
		bestCost, bestW := int64(-1), int64(-1)
		for _, e := range h.TaskEdges(t) {
			if c := h.Weight[e] * int64(h.EdgeSize(e)); bestCost < 0 || c < bestCost {
				bestCost = c
			}
			if w := h.Weight[e]; bestW < 0 || w < bestW {
				bestW = w
			}
		}
		if bestCost > 0 {
			total += bestCost
		}
		if bestW > maxElem {
			maxElem = bestW
		}
	}
	p := int64(h.NProcs)
	return (total + p - 1) / p, maxElem
}

// matchingBoundCap gates the opportunistic matching-bound re-derivation
// in Issue: the max-flow bisection is polynomial but not free, so for
// very large instances an optimal result keeps its exhaustive
// attestation instead of paying a flow per certificate. Verification of
// an explicitly claimed matching witness is never gated — correctness
// beats cost once the claim is on the table.
const matchingBoundCap = 65536

// strongBounds re-derives the packing bound, and — only if packing
// leaves the gap open and the instance is within matchingBoundCap — the
// matching bound. A zero matching value means "not computed".
func strongBounds(instance any, makespan int64) (pack, match int64) {
	switch v := instance.(type) {
	case *bipartite.Graph:
		pack = lb.Packing(lb.MinPlacementsGraph(v), v.NRight)
		if pack != makespan && v.NLeft <= matchingBoundCap {
			match = lb.MatchingGraph(v)
		}
	case *hypergraph.Hypergraph:
		pack = lb.Packing(lb.MinPlacementsHyper(v), v.NProcs)
		if pack != makespan && v.NTasks <= matchingBoundCap {
			match = lb.MatchingHyper(v)
		}
	}
	return pack, match
}

// rederive returns the verifier for a claimed strong-bound witness: it
// recomputes the named bound from the instance, ungated.
func rederive(instance any, kind WitnessKind) (int64, error) {
	switch v := instance.(type) {
	case *bipartite.Graph:
		switch kind {
		case WitnessPacking:
			return lb.Packing(lb.MinPlacementsGraph(v), v.NRight), nil
		case WitnessMatching:
			return lb.MatchingGraph(v), nil
		}
	case *hypergraph.Hypergraph:
		switch kind {
		case WitnessPacking:
			return lb.Packing(lb.MinPlacementsHyper(v), v.NProcs), nil
		case WitnessMatching:
			return lb.MatchingHyper(v), nil
		}
	}
	return 0, fmt.Errorf("cert: cannot re-derive %s bound for %T", kind, instance)
}

// Issue builds the certificate for a solved instance: the fingerprint is
// computed from the instance, and the witness is chosen by re-deriving
// bounds — a bound that closes the gap beats an attestation, because it
// makes the certificate independently verifiable. The cheap bounds
// (average-load, max-element) are always tried; when the solver proved
// optimality and the cheap bounds leave the gap open, the packing and
// matching bounds are tried before falling back to the exhaustive
// attestation. optimal says the solver proved optimality; nodes is the
// attesting search's tree size. lowerBound is the caller's class lower
// bound, used for no-claim certificates. Returns nil (no certificate)
// only when the instance cannot be fingerprinted or is of an unsupported
// type.
func Issue(instance any, assignment []int32, makespan int64, lowerBound int64, optimal bool, nodes int64, solver string) *Certificate {
	var fp, class string
	var err error
	switch v := instance.(type) {
	case *bipartite.Graph:
		fp, err = encode.FingerprintBipartite(v)
		class = ClassSingleProc
	case *hypergraph.Hypergraph:
		fp, err = encode.FingerprintHypergraph(v)
		class = ClassMultiProc
	default:
		return nil
	}
	if err != nil {
		return nil
	}
	avg, maxElem, _ := Bounds(instance)
	c := &Certificate{
		Fingerprint: fp,
		Class:       class,
		Solver:      solver,
		Assignment:  assignment,
		Makespan:    makespan,
		LowerBound:  lowerBound,
	}
	switch {
	case makespan == avg:
		c.Witness.Kind = WitnessAverageLoad
	case makespan == maxElem:
		c.Witness.Kind = WitnessMaxElement
	case optimal:
		pack, match := strongBounds(instance, makespan)
		switch makespan {
		case pack:
			c.Witness.Kind = WitnessPacking
		case match:
			c.Witness.Kind = WitnessMatching
		default:
			c.Witness.Kind = WitnessExhaustive
			c.Witness.Nodes = nodes
		}
	}
	if c.Witness.Kind != WitnessNone {
		// The gap is closed: the strongest supportable bound is the
		// makespan itself.
		c.LowerBound = makespan
	}
	return c
}

// Verify checks a certificate against the instance it claims to certify,
// trusting nothing: the fingerprint, the assignment's feasibility, the
// loads/makespan and the claimed lower bound are all recomputed from the
// instance. It returns the trust tier the certificate earns, or an error
// describing the first claim that does not hold. A certificate whose
// re-derived bound closes the gap is upgraded to TierVerified even when
// its own witness claims less — verification can prove more than the
// producer claimed, never less.
func Verify(instance any, c *Certificate) (Tier, error) {
	if c == nil {
		return TierHeuristic, errors.New("cert: no certificate")
	}
	switch v := instance.(type) {
	case *bipartite.Graph:
		if c.Class != ClassSingleProc {
			return TierHeuristic, fmt.Errorf("cert: certificate class %q does not match SINGLEPROC instance", c.Class)
		}
		fp, err := encode.FingerprintBipartite(v)
		if err != nil {
			return TierHeuristic, fmt.Errorf("cert: fingerprinting instance: %w", err)
		}
		if fp != c.Fingerprint {
			return TierHeuristic, fmt.Errorf("cert: fingerprint mismatch: certificate %.12s…, instance %.12s…", c.Fingerprint, fp)
		}
		if err := core.ValidateAssignment(v, core.Assignment(c.Assignment)); err != nil {
			return TierHeuristic, fmt.Errorf("cert: infeasible assignment: %w", err)
		}
		m := core.Makespan(v, core.Assignment(c.Assignment))
		avg, maxElem := boundsSingle(v)
		return verifyClaims(v, c, m, avg, maxElem)
	case *hypergraph.Hypergraph:
		if c.Class != ClassMultiProc {
			return TierHeuristic, fmt.Errorf("cert: certificate class %q does not match MULTIPROC instance", c.Class)
		}
		fp, err := encode.FingerprintHypergraph(v)
		if err != nil {
			return TierHeuristic, fmt.Errorf("cert: fingerprinting instance: %w", err)
		}
		if fp != c.Fingerprint {
			return TierHeuristic, fmt.Errorf("cert: fingerprint mismatch: certificate %.12s…, instance %.12s…", c.Fingerprint, fp)
		}
		if err := core.ValidateHyperAssignment(v, core.HyperAssignment(c.Assignment)); err != nil {
			return TierHeuristic, fmt.Errorf("cert: infeasible assignment: %w", err)
		}
		m := core.HyperMakespan(v, core.HyperAssignment(c.Assignment))
		avg, maxElem := boundsHyper(v)
		return verifyClaims(v, c, m, avg, maxElem)
	case nil:
		return TierHeuristic, errors.New("cert: nil instance")
	default:
		return TierHeuristic, fmt.Errorf("cert: unsupported instance type %T", instance)
	}
}

// verifyClaims checks the numeric claims against the recomputed makespan
// and re-derived bounds, and grades the witness. The cheap bounds are
// always in hand; the strong bounds (packing, matching) are re-derived
// from the instance only when the certificate's claims require them.
func verifyClaims(instance any, c *Certificate, makespan, avg, maxElem int64) (Tier, error) {
	if makespan != c.Makespan {
		return TierHeuristic, fmt.Errorf("cert: makespan mismatch: certificate claims %d, schedule yields %d", c.Makespan, makespan)
	}
	// A feasible schedule's makespan is an upper bound on the optimum, so
	// a re-derived lower bound above it contradicts the instance.
	best := avg
	if maxElem > best {
		best = maxElem
	}
	if best > makespan {
		return TierHeuristic, fmt.Errorf("cert: re-derived lower bound %d exceeds makespan %d", best, makespan)
	}
	if c.LowerBound > makespan {
		return TierHeuristic, fmt.Errorf("cert: claimed lower bound %d exceeds makespan %d", c.LowerBound, makespan)
	}
	switch c.Witness.Kind {
	case WitnessAverageLoad:
		if avg != makespan {
			return TierHeuristic, fmt.Errorf("cert: average-load witness does not hold: re-derived bound %d, makespan %d", avg, makespan)
		}
		return TierVerified, nil
	case WitnessMaxElement:
		if maxElem != makespan {
			return TierHeuristic, fmt.Errorf("cert: max-element witness does not hold: re-derived bound %d, makespan %d", maxElem, makespan)
		}
		return TierVerified, nil
	case WitnessPacking, WitnessMatching:
		got, err := rederive(instance, c.Witness.Kind)
		if err != nil {
			return TierHeuristic, err
		}
		if got != makespan {
			return TierHeuristic, fmt.Errorf("cert: %s witness does not hold: re-derived bound %d, makespan %d", c.Witness.Kind, got, makespan)
		}
		return TierVerified, nil
	case WitnessExhaustive:
		if c.LowerBound != makespan {
			return TierHeuristic, fmt.Errorf("cert: exhaustive witness with open gap: lower bound %d, makespan %d", c.LowerBound, makespan)
		}
		if best == makespan {
			// A cheap bound closes the gap after all: the certificate is
			// fully verifiable, attestation not needed.
			return TierVerified, nil
		}
		return TierAttested, nil
	case WitnessNone:
		if c.LowerBound > best {
			// The cheap bounds cannot support the claim; the strong bounds
			// might (a truncated search reports its root bound, which now
			// includes packing and matching).
			pack, match := strongBounds(instance, makespan)
			if pack > best {
				best = pack
			}
			if match > best {
				best = match
			}
			if best > makespan {
				return TierHeuristic, fmt.Errorf("cert: re-derived lower bound %d exceeds makespan %d", best, makespan)
			}
		}
		if c.LowerBound > best {
			return TierHeuristic, fmt.Errorf("cert: claimed lower bound %d not supported by re-derivable bounds (≤ %d)", c.LowerBound, best)
		}
		if best == makespan {
			// The schedule hit a re-derivable bound: provably optimal,
			// whatever the producer knew.
			return TierVerified, nil
		}
		return TierHeuristic, nil
	default:
		return TierHeuristic, fmt.Errorf("cert: unknown witness kind %d", c.Witness.Kind)
	}
}
