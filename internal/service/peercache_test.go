package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"semimatch/internal/core"
)

// fakePeers is a scriptable PeerCache: a fixed owner answer and a Fetch
// callback, with call accounting.
type fakePeers struct {
	owner   string
	self    bool
	fetch   func(ctx context.Context, peer, key string) (*PeerEntry, bool, error)
	fetches atomic.Int32
}

func (f *fakePeers) Owner(fp string) (string, bool) { return f.owner, f.self }

func (f *fakePeers) Fetch(ctx context.Context, peer, key string) (*PeerEntry, bool, error) {
	f.fetches.Add(1)
	if f.fetch == nil {
		return nil, false, nil
	}
	return f.fetch(ctx, peer, key)
}

// solveOnReplicaA runs one solve on a standalone service and returns the
// peer entry its cache would serve — the canonical way tests obtain a
// genuine, verifiable wire entry "from replica A".
func solveOnReplicaA(t *testing.T, alg string) (*PeerEntry, string, *Result) {
	t.Helper()
	a := New(Options{})
	res, err := a.Solve(context.Background(), testHyper(t), alg)
	if err != nil {
		t.Fatal(err)
	}
	key := res.Fingerprint + "|" + res.Algorithm + "|inf"
	entry, ok := a.PeerLookup(key)
	if !ok {
		t.Fatalf("replica A has no cache entry under %q", key)
	}
	if st := a.Stats(); st.PeerServed != 1 {
		t.Fatalf("PeerServed = %d, want 1", st.PeerServed)
	}
	return entry, key, res
}

// TestPeerVerifiedAdoption is the acceptance-criterion path: an entry
// solved on replica A answers an isomorphic request on replica B — but
// only after cert.Verify passes on B — and is then admitted to B's own
// memory and disk tiers.
func TestPeerVerifiedAdoption(t *testing.T) {
	entry, _, ra := solveOnReplicaA(t, "EVG")

	peers := &fakePeers{
		owner: "http://replica-a:8080",
		fetch: func(ctx context.Context, peer, key string) (*PeerEntry, bool, error) {
			return entry, true, nil
		},
	}
	b := New(Options{Peers: peers, CacheDir: t.TempDir()})
	h2 := isomorphTestHyper(t)
	rb, err := b.Solve(context.Background(), h2, "EVG")
	if err != nil {
		t.Fatal(err)
	}
	if rb.Tier != "peer" || !rb.Cached {
		t.Fatalf("Tier = %q, Cached = %v, want peer/true", rb.Tier, rb.Cached)
	}
	if rb.Makespan != ra.Makespan {
		t.Fatalf("peer-served makespan %d, replica A solved %d", rb.Makespan, ra.Makespan)
	}
	// The adopted schedule must be valid in B's requester numbering.
	if err := core.ValidateHyperAssignment(h2, core.HyperAssignment(rb.Assignment)); err != nil {
		t.Fatalf("peer-served assignment invalid on B's instance: %v", err)
	}
	st := b.Stats()
	if st.PeerHits != 1 || st.Solves != 0 {
		t.Fatalf("peer_hits=%d solves=%d, want 1/0", st.PeerHits, st.Solves)
	}
	if st.PeerVerifyFailures != 0 || st.VerifyFailures != 0 {
		t.Fatalf("verify failures on a genuine entry: %+v", st)
	}
	if st.DiskWrites != 1 {
		t.Fatalf("disk_writes = %d, want the adopted entry persisted", st.DiskWrites)
	}

	// The adopted entry now lives in B's memory tier: a repeat request is
	// a local hit, no second fetch.
	rb2, err := b.Solve(context.Background(), h2, "EVG")
	if err != nil {
		t.Fatal(err)
	}
	if rb2.Tier != "memory" {
		t.Fatalf("repeat Tier = %q, want memory", rb2.Tier)
	}
	if got := peers.fetches.Load(); got != 1 {
		t.Fatalf("fetches = %d, want 1", got)
	}
}

// TestPeerLyingCertificateRejected: a peer entry whose certificate
// claims a better makespan than its schedule achieves is rejected,
// counted in both VerifyFailures and PeerVerifyFailures, and never
// enters the memory or disk tiers — the leader falls back to a fresh
// local solve.
func TestPeerLyingCertificateRejected(t *testing.T) {
	entry, key, ra := solveOnReplicaA(t, "EVG")

	// Tamper coherently: entry and certificate agree with each other
	// (the shape checks pass) but lie about the schedule's makespan.
	lie := *entry
	c := *entry.Certificate
	c.Makespan--
	c.LowerBound = c.Makespan
	lie.Certificate = &c
	lie.Makespan--

	peers := &fakePeers{
		owner: "http://replica-a:8080",
		fetch: func(ctx context.Context, peer, key string) (*PeerEntry, bool, error) {
			return &lie, true, nil
		},
	}
	b := New(Options{Peers: peers, CacheDir: t.TempDir()})
	rb, err := b.Solve(context.Background(), isomorphTestHyper(t), "EVG")
	if err != nil {
		t.Fatal(err)
	}
	if rb.Tier != "none" || rb.Cached {
		t.Fatalf("Tier = %q, Cached = %v, want a fresh fallback solve", rb.Tier, rb.Cached)
	}
	if rb.Makespan != ra.Makespan {
		t.Fatalf("fallback makespan %d, want %d", rb.Makespan, ra.Makespan)
	}
	st := b.Stats()
	if st.PeerVerifyFailures != 1 || st.VerifyFailures != 1 {
		t.Fatalf("peer_verify_failures=%d verify_failures=%d, want 1/1",
			st.PeerVerifyFailures, st.VerifyFailures)
	}
	if st.PeerHits != 0 || st.Solves != 1 {
		t.Fatalf("peer_hits=%d solves=%d, want 0/1", st.PeerHits, st.Solves)
	}
	// What B's tiers now hold under the key is its own verified solve,
	// not the lying entry.
	got, ok := b.PeerLookup(key)
	if !ok {
		t.Fatal("B's cache has no entry after the fallback solve")
	}
	if got.Makespan != ra.Makespan || got.Certificate.Makespan != ra.Makespan {
		t.Fatalf("cached makespan %d (cert %d), the lie was admitted",
			got.Makespan, got.Certificate.Makespan)
	}
}

// TestPeerShapeRejection: an entry whose certificate disagrees with the
// schedule it ships (or that answers under the wrong key) is rejected
// before cert.Verify runs — counted as a peer verify failure only.
func TestPeerShapeRejection(t *testing.T) {
	entry, _, _ := solveOnReplicaA(t, "EVG")
	mangled := *entry
	mangled.Assignment = append([]int32{}, entry.Assignment...)
	mangled.Assignment[0]++ // no longer the certificate's schedule

	peers := &fakePeers{
		owner: "http://replica-a:8080",
		fetch: func(ctx context.Context, peer, key string) (*PeerEntry, bool, error) {
			return &mangled, true, nil
		},
	}
	b := New(Options{Peers: peers})
	if _, err := b.Solve(context.Background(), isomorphTestHyper(t), "EVG"); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.PeerVerifyFailures != 1 {
		t.Fatalf("peer_verify_failures = %d, want 1", st.PeerVerifyFailures)
	}
	if st.VerifyFailures != 0 {
		t.Fatalf("verify_failures = %d; shape rejections are not certificate lies", st.VerifyFailures)
	}
}

// TestPeerFetchDeadline: the fetch context's deadline never exceeds half
// the request's remaining budget, and is capped by PeerTimeout when the
// request is unbounded — a slow peer cannot hold a coalesced group past
// the caller's deadline.
func TestPeerFetchDeadline(t *testing.T) {
	var fetchDeadline time.Time
	peers := &fakePeers{
		owner: "http://replica-a:8080",
		fetch: func(ctx context.Context, peer, key string) (*PeerEntry, bool, error) {
			fetchDeadline, _ = ctx.Deadline()
			return nil, false, nil
		},
	}
	b := New(Options{Peers: peers, PeerTimeout: 10 * time.Second})

	reqDeadline := time.Now().Add(30 * time.Second)
	ctx, cancel := context.WithDeadline(context.Background(), reqDeadline)
	defer cancel()
	if _, err := b.Solve(ctx, testHyper(t), "EVG"); err != nil {
		t.Fatal(err)
	}
	if fetchDeadline.IsZero() {
		t.Fatal("peer fetch ran without a deadline")
	}
	if max := time.Now().Add(15 * time.Second); fetchDeadline.After(max) {
		t.Fatalf("fetch deadline %v exceeds half the request's remaining budget", fetchDeadline)
	}

	// Unbounded request: PeerTimeout alone caps the fetch.
	fetchDeadline = time.Time{}
	if _, err := b.Solve(context.Background(), isomorphTestHyper(t), "SGH"); err != nil {
		t.Fatal(err)
	}
	if fetchDeadline.IsZero() {
		t.Fatal("unbounded request ran the peer fetch without a deadline")
	}
	if max := time.Now().Add(11 * time.Second); fetchDeadline.After(max) {
		t.Fatalf("fetch deadline %v exceeds PeerTimeout", fetchDeadline)
	}
	if st := b.Stats(); st.PeerMisses != 2 {
		t.Fatalf("peer_misses = %d, want 2", st.PeerMisses)
	}
}

// TestPeerSelfOwnerSkipsFetch: when this replica owns the fingerprint
// there is no better replica to ask; the tier is skipped entirely.
func TestPeerSelfOwnerSkipsFetch(t *testing.T) {
	peers := &fakePeers{owner: "http://self:8080", self: true}
	b := New(Options{Peers: peers})
	r, err := b.Solve(context.Background(), testHyper(t), "EVG")
	if err != nil {
		t.Fatal(err)
	}
	if r.Tier != "none" {
		t.Fatalf("Tier = %q, want none", r.Tier)
	}
	if got := peers.fetches.Load(); got != 0 {
		t.Fatalf("fetches = %d, want 0 for a self-owned key", got)
	}
}

// TestPeerErrorFallsBack: a failing peer costs one counted error, never
// the request.
func TestPeerErrorFallsBack(t *testing.T) {
	peers := &fakePeers{
		owner: "http://replica-a:8080",
		fetch: func(ctx context.Context, peer, key string) (*PeerEntry, bool, error) {
			return nil, false, errors.New("connection refused")
		},
	}
	b := New(Options{Peers: peers})
	r, err := b.Solve(context.Background(), testHyper(t), "EVG")
	if err != nil {
		t.Fatal(err)
	}
	if r.Tier != "none" || r.Cached {
		t.Fatalf("Tier = %q, want a fresh fallback solve", r.Tier)
	}
	if st := b.Stats(); st.PeerErrors != 1 || st.Solves != 1 {
		t.Fatalf("peer_errors=%d solves=%d, want 1/1", st.PeerErrors, st.Solves)
	}
}

// TestPeerLookupFromDisk: a restarted replica (cold memory, warm disk)
// still serves peers — getRaw integrity-checks the file but leaves
// verification to the requesting side.
func TestPeerLookupFromDisk(t *testing.T) {
	dir := t.TempDir()
	a := New(Options{CacheDir: dir})
	res, err := a.Solve(context.Background(), testHyper(t), "EVG")
	if err != nil {
		t.Fatal(err)
	}
	key := res.Fingerprint + "|" + res.Algorithm + "|inf"

	restarted := New(Options{CacheDir: dir})
	entry, ok := restarted.PeerLookup(key)
	if !ok {
		t.Fatal("restarted replica cannot serve its disk entry to a peer")
	}
	if entry.Makespan != res.Makespan || entry.Certificate == nil {
		t.Fatalf("disk-served peer entry %+v", entry)
	}
	if _, ok := restarted.PeerLookup("no-such-key"); ok {
		t.Fatal("PeerLookup invented an entry")
	}
	if st := restarted.Stats(); st.PeerServed != 1 {
		t.Fatalf("peer_served = %d, want 1", st.PeerServed)
	}
}
