package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"semimatch/internal/cert"
)

// diskMagic is the on-disk format version header. Bumping it orphans all
// existing entries: files with any other first line are treated as
// foreign and reaped on the next lookup that maps to them.
const diskMagic = "semimatch-cache/v1"

// diskCache is the durable tier under the memory LRU: one flat directory
// of content-addressed entry files, each named by the SHA-256 of its
// cache key. There is no index to corrupt and no compaction to schedule —
// every entry stands alone, so a crash can at worst lose or garble the
// single entry being written, and a garbled entry is detected (version
// header + payload checksum + embedded key echo) and reaped on load.
//
// Writes are atomic: the entry is staged in a temp file in the same
// directory and renamed over the final name, so readers — including
// readers in a process that replaced this one — see either the old
// complete entry or the new complete entry, never a torn one. Entries are
// not fsynced; the checksum turns a torn page after power loss into a
// clean miss instead of a wrong answer.
//
// The tier stores only complete, certificate-verified results, and get
// re-verifies through the caller's callback before serving, so a stale,
// corrupt or tampered file can never poison a response.
type diskCache struct {
	dir string

	hits      atomic.Uint64
	misses    atomic.Uint64
	writes    atomic.Uint64
	writeErrs atomic.Uint64
	reaped    atomic.Uint64
}

// newDiskCache opens (creating if needed) the durable tier rooted at dir.
// A directory that cannot be created is not fatal to the service — every
// subsequent write fails and is counted, and every lookup misses.
func newDiskCache(dir string) *diskCache {
	dc := &diskCache{dir: dir}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		dc.writeErrs.Add(1)
	}
	return dc
}

// diskEntry is the persisted payload: the cache key echoed (so a file
// reached through a hash collision or copied between stores is detected)
// and the result's durable fields. Volatile fields (Cached, Elapsed) and
// anything recomputed at load time are deliberately absent; Truncated
// results never reach the disk tier at all.
type diskEntry struct {
	Key         string            `json:"key"`
	Kind        string            `json:"kind"`
	Fingerprint string            `json:"fingerprint"`
	Algorithm   string            `json:"algorithm"`
	Makespan    int64             `json:"makespan"`
	Assignment  []int32           `json:"assignment"`
	Loads       []int64           `json:"loads"`
	LowerBound  int64             `json:"lower_bound"`
	Optimal     bool              `json:"optimal"`
	Certificate *cert.Certificate `json:"certificate"`
}

// path maps a cache key to its entry file.
func (dc *diskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dc.dir, hex.EncodeToString(sum[:])+".entry")
}

// put persists one result. Failures are counted, never fatal: the disk
// tier degrades to a smaller (or empty) warm set, not to wrong answers.
func (dc *diskCache) put(key string, res *Result) {
	payload, err := json.Marshal(diskEntry{
		Key:         key,
		Kind:        res.Kind,
		Fingerprint: res.Fingerprint,
		Algorithm:   res.Algorithm,
		Makespan:    res.Makespan,
		Assignment:  res.Assignment,
		Loads:       res.Loads,
		LowerBound:  res.LowerBound,
		Optimal:     res.Optimal,
		Certificate: res.Certificate,
	})
	if err != nil {
		dc.writeErrs.Add(1)
		return
	}
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	buf.Grow(len(diskMagic) + 2*sha256.Size + len(payload) + 2)
	buf.WriteString(diskMagic)
	buf.WriteByte('\n')
	buf.WriteString(hex.EncodeToString(sum[:]))
	buf.WriteByte('\n')
	buf.Write(payload)

	tmp, err := os.CreateTemp(dc.dir, ".tmp-*")
	if err != nil {
		dc.writeErrs.Add(1)
		return
	}
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		dc.writeErrs.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), dc.path(key)); err != nil {
		os.Remove(tmp.Name())
		dc.writeErrs.Add(1)
		return
	}
	dc.writes.Add(1)
}

// get looks the key up, decodes and integrity-checks the entry, and hands
// the reconstructed Result to revalidate (the service's certificate
// check) before serving it. Any failure past "file not found" — bad
// version, bad checksum, undecodable payload, key mismatch, revalidation
// error — reaps the file and reports a miss, so the store self-heals
// under corruption instead of serving it.
func (dc *diskCache) get(key string, revalidate func(*Result) error) (*Result, bool) {
	p := dc.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		dc.misses.Add(1)
		return nil, false
	}
	res, err := decodeDiskEntry(key, data)
	if err == nil {
		err = revalidate(res)
	}
	if err != nil {
		dc.misses.Add(1)
		if os.Remove(p) == nil {
			dc.reaped.Add(1)
		}
		return nil, false
	}
	dc.hits.Add(1)
	return res, true
}

// getRaw looks the key up with integrity checks only — no certificate
// revalidation — for serving peer replicas, which re-verify entries on
// their own side before admission (a cert.Verify here would be redundant
// work on this replica's serving path). Corrupt or foreign files are
// still reaped; the hit/miss counters are left untouched so peer-serving
// traffic cannot pollute this replica's own cache stats.
func (dc *diskCache) getRaw(key string) (*Result, bool) {
	p := dc.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	res, err := decodeDiskEntry(key, data)
	if err != nil {
		if os.Remove(p) == nil {
			dc.reaped.Add(1)
		}
		return nil, false
	}
	return res, true
}

// decodeDiskEntry parses and integrity-checks one entry file.
func decodeDiskEntry(key string, data []byte) (*Result, error) {
	rest, ok := bytes.CutPrefix(data, []byte(diskMagic+"\n"))
	if !ok {
		return nil, fmt.Errorf("service: disk entry: missing or unsupported version header")
	}
	sumHex, payload, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok {
		return nil, fmt.Errorf("service: disk entry: truncated before payload")
	}
	sum := sha256.Sum256(payload)
	if string(sumHex) != hex.EncodeToString(sum[:]) {
		return nil, fmt.Errorf("service: disk entry: payload checksum mismatch")
	}
	var e diskEntry
	if err := json.Unmarshal(payload, &e); err != nil {
		return nil, fmt.Errorf("service: disk entry: %w", err)
	}
	if e.Key != key {
		return nil, fmt.Errorf("service: disk entry: key mismatch (hash collision or relocated file)")
	}
	if e.Assignment == nil {
		e.Assignment = []int32{}
	}
	return &Result{
		Kind:        e.Kind,
		Fingerprint: e.Fingerprint,
		Algorithm:   e.Algorithm,
		Makespan:    e.Makespan,
		Assignment:  e.Assignment,
		Loads:       e.Loads,
		LowerBound:  e.LowerBound,
		Optimal:     e.Optimal,
		Certificate: e.Certificate,
	}, nil
}

// counters snapshots the tier's monitoring counters.
func (dc *diskCache) counters() (hits, misses, writes, writeErrs, reaped uint64) {
	return dc.hits.Load(), dc.misses.Load(), dc.writes.Load(), dc.writeErrs.Load(), dc.reaped.Load()
}

// len reports the number of entry files currently on disk (a directory
// scan; for tests and diagnostics, not the hot path).
func (dc *diskCache) len() int {
	names, err := filepath.Glob(filepath.Join(dc.dir, "*.entry"))
	if err != nil {
		return 0
	}
	return len(names)
}
