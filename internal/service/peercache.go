package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"semimatch/internal/cert"
)

// DefaultPeerTimeout caps one peer-cache fetch when Options.PeerTimeout
// is zero. It is an upper bound, not the usual cost: the fetch context is
// further tightened to half the request's remaining deadline, so a slow
// peer can never hold a coalesced group past the caller's budget — the
// other half is reserved for the local fallback solve.
const DefaultPeerTimeout = 2 * time.Second

// PeerEntry is the wire form of one cache entry exchanged between
// replicas (GET /internal/cache/{key}). It deliberately mirrors the disk
// tier's durable fields: the key echo detects entries served under the
// wrong name, and the certificate travels with the schedule so the
// receiving replica can re-verify everything before admission — no
// replica ever trusts another's arithmetic.
type PeerEntry struct {
	Key         string            `json:"key"`
	Kind        string            `json:"kind"`
	Fingerprint string            `json:"fingerprint"`
	Algorithm   string            `json:"algorithm"`
	Makespan    int64             `json:"makespan"`
	Assignment  []int32           `json:"assignment"`
	Loads       []int64           `json:"loads"`
	LowerBound  int64             `json:"lower_bound"`
	Optimal     bool              `json:"optimal"`
	Certificate *cert.Certificate `json:"certificate"`
}

// PeerCache is the pluggable peering tier behind the memory and disk
// caches. The production implementation (cmd/semiserve) wraps an
// internal/cluster ring and HTTP client; tests substitute fakes.
// Implementations must be safe for concurrent use.
type PeerCache interface {
	// Owner maps an instance fingerprint to the replica that owns it,
	// reporting self=true when this process is the owner (in which case
	// there is no one better to ask and the tier is skipped).
	Owner(fingerprint string) (peer string, self bool)
	// Fetch asks peer for its entry under the full cache key. A clean
	// miss is (nil, false, nil); errors cover transport failures,
	// unexpected statuses and undecodable bodies. The context carries the
	// per-fetch deadline and must bound the whole exchange.
	Fetch(ctx context.Context, peer, key string) (*PeerEntry, bool, error)
}

// peerFetch is the leader's peer-tier lookup: resolve the owning replica,
// fetch its entry under a deadline derived from the request's own budget,
// and admit the entry only after full re-verification. Every failure mode
// degrades to (nil, false) — the leader falls through to a fresh local
// solve — so peering can only ever save work, never lose a request.
func (s *Service) peerFetch(ctx context.Context, req *request, key string) (*Result, bool) {
	pc := s.opts.Peers
	if pc == nil {
		return nil, false
	}
	peer, self := pc.Owner(req.fp)
	if self || peer == "" {
		return nil, false
	}
	ps := req.trace.StartChild("peer-fetch")
	defer ps.End()
	ps.SetAttr("peer", peer)
	pctx, cancel := s.peerContext(ctx)
	defer cancel()
	entry, ok, err := pc.Fetch(pctx, peer, key)
	if err != nil {
		s.peerErrors.Add(1)
		ps.SetAttr("result", "error")
		return nil, false
	}
	if !ok {
		s.peerMisses.Add(1)
		ps.SetAttr("result", "miss")
		return nil, false
	}
	res, err := s.admitPeer(req, key, entry)
	if err != nil {
		// A peer handing back an entry that does not verify is indis-
		// tinguishable from tampering; the entry is dropped on the floor
		// and never reaches any cache tier.
		s.peerVerifyFailures.Add(1)
		ps.SetAttr("result", "rejected")
		return nil, false
	}
	s.peerHits.Add(1)
	ps.SetAttr("result", "hit")
	return res, true
}

// peerContext derives the per-fetch deadline: PeerTimeout (or the
// default), tightened to half the request's remaining budget so the
// fallback solve keeps the other half. The child context can therefore
// never outlive the caller's own deadline.
func (s *Service) peerContext(ctx context.Context) (context.Context, context.CancelFunc) {
	budget := s.opts.PeerTimeout
	if budget <= 0 {
		budget = DefaultPeerTimeout
	}
	if d, ok := ctx.Deadline(); ok {
		if half := time.Until(d) / 2; half < budget {
			budget = half
		}
	}
	return context.WithTimeout(ctx, budget)
}

// admitPeer decides whether a peer's entry may answer this request. It
// mirrors the disk tier's revalidate: the entry's shape must match the
// request, its certificate must be internally consistent with the
// schedule it ships, and cert.Verify must independently re-prove the
// claims against this replica's own canonical instance. The derived
// fields are then recomputed locally rather than trusted, so a lying
// peer can at worst be rejected (and counted), never believed. A non-nil
// error also bumps Stats.VerifyFailures when the certificate itself was
// the lie.
func (s *Service) admitPeer(req *request, key string, e *PeerEntry) (*Result, error) {
	if e == nil {
		return nil, errors.New("service: peer entry: empty")
	}
	if e.Key != key {
		return nil, fmt.Errorf("service: peer entry key %q, want %q", e.Key, key)
	}
	if e.Kind != req.kind {
		return nil, fmt.Errorf("service: peer entry kind %q, want %q", e.Kind, req.kind)
	}
	c := e.Certificate
	if c == nil {
		return nil, errors.New("service: peer entry has no certificate")
	}
	if len(c.Assignment) != len(e.Assignment) {
		return nil, errors.New("service: peer entry assignment differs from its certificate")
	}
	for i, v := range c.Assignment {
		if e.Assignment[i] != v {
			return nil, errors.New("service: peer entry assignment differs from its certificate")
		}
	}
	tier, err := cert.Verify(req.instance(), c)
	if err != nil {
		s.verifyFailures.Add(1)
		return nil, err
	}
	res := &Result{
		Kind:        req.kind,
		Fingerprint: req.fp,
		Algorithm:   e.Algorithm,
		Assignment:  e.Assignment,
		LowerBound:  c.LowerBound,
		Certificate: c,
		Trust:       tier,
		Optimal:     e.Optimal,
		fromPeer:    true,
	}
	// Recompute what the certificate proves correct; trust nothing else.
	res.Makespan, res.Loads = req.problem().MakespanLoads(res.Assignment)
	return res, nil
}

// PeerLookup answers a peer's GET /internal/cache/{key}: the entry under
// key from the memory tier, falling back to a raw disk read (integrity-
// checked but not re-verified — the requesting replica verifies on its
// own side, so spending a cert.Verify here would be redundant work on
// the serving replica's hot path). Served entries are counted in
// Stats.PeerServed.
func (s *Service) PeerLookup(key string) (*PeerEntry, bool) {
	res, ok := s.cache.peek(key)
	if !ok && s.disk != nil {
		res, ok = s.disk.getRaw(key)
	}
	if !ok {
		return nil, false
	}
	s.peerServed.Add(1)
	return &PeerEntry{
		Key:         key,
		Kind:        res.Kind,
		Fingerprint: res.Fingerprint,
		Algorithm:   res.Algorithm,
		Makespan:    res.Makespan,
		Assignment:  res.Assignment,
		Loads:       res.Loads,
		LowerBound:  res.LowerBound,
		Optimal:     res.Optimal,
		Certificate: res.Certificate,
	}, true
}
