// Package service is the solving-as-a-service core: a long-running,
// cache-fronted solver that answers repeated requests for the same
// instance from memory instead of recomputing them.
//
// A request is (instance, algorithm, budget). The instance — bipartite
// SINGLEPROC or hypergraph MULTIPROC — is canonicalized and fingerprinted
// (internal/encode), so isomorphic instances (same structure under
// configuration/processor reordering) share one cache entry; the solve
// itself runs on the canonical form and the resulting schedule is
// translated back to each requester's own hyperedge numbering. Results
// are cached in a sharded LRU keyed by (fingerprint, algorithm, budget
// class), and N concurrent requests for the same key trigger exactly one
// solve (single-flight deduplication).
//
// Admission control keeps the service responsive under overload: at most
// QueueDepth solves may be in flight (queued or running, cache hits and
// coalesced duplicates excluded); beyond that Solve fails fast with
// ErrOverloaded, which the HTTP front end (cmd/semiserve) maps to 429.
// Each admitted solve runs under the request context plus an optional
// default deadline; deadline-truncated solves still return the best
// schedule found so far, flagged Truncated and kept out of the cache.
//
// Dispatch goes through the unified solve API (internal/solve): both
// encodings are wrapped as solve.Problems and answered by solve.Run —
// named algorithms resolve via the solver registry, and the empty
// algorithm name selects the "auto" policy: the batch.Runner per-instance
// pipeline (heuristic race first, exact branch-and-bound when small,
// fallback on timeout) for hypergraphs, and the cheapest suitable
// registry solver (ExactUnit for unit instances, the expected greedy
// otherwise) for bipartite graphs.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"semimatch/internal/batch"
	"semimatch/internal/bipartite"
	"semimatch/internal/cert"
	"semimatch/internal/encode"
	"semimatch/internal/hypergraph"
	"semimatch/internal/registry"
	"semimatch/internal/solve"
	"semimatch/internal/telemetry"
)

// Defaults for the zero Options value.
const (
	// DefaultCacheEntries is the result-cache capacity when
	// Options.CacheEntries is zero.
	DefaultCacheEntries = 4096
	// DefaultCacheShards is the cache shard count when Options.CacheShards
	// is zero.
	DefaultCacheShards = 16
	// DefaultQueueDepth is the admission bound when Options.QueueDepth is
	// zero: the maximum number of solves in flight before Solve starts
	// failing fast with ErrOverloaded.
	DefaultQueueDepth = 64
)

// Sentinel errors of the serving layer.
var (
	// ErrOverloaded reports that the solve queue is full; the request was
	// rejected without solving. The HTTP layer maps it to 429.
	ErrOverloaded = errors.New("service: overloaded: solve queue is full")
	// ErrBadInstance reports an unusable instance (nil, or an unsupported
	// type).
	ErrBadInstance = errors.New("service: bad instance")
	// ErrUnknownAlgorithm wraps the registry's unknown-name error.
	ErrUnknownAlgorithm = errors.New("service: unknown algorithm")
)

// Options configures a Service; the zero value serves with the defaults
// above, no default deadline, and the standard batch policy.
type Options struct {
	// CacheEntries bounds the result cache; 0 means DefaultCacheEntries,
	// negative disables caching entirely.
	CacheEntries int
	// CacheShards is the cache shard count; 0 means DefaultCacheShards.
	CacheShards int
	// QueueDepth bounds the solves in flight (queued or running); beyond
	// it Solve fails fast with ErrOverloaded. 0 means DefaultQueueDepth.
	QueueDepth int
	// Workers bounds concurrently running solves; 0 means GOMAXPROCS.
	Workers int
	// DefaultDeadline is applied to requests whose context has no
	// deadline; 0 means none.
	DefaultDeadline time.Duration
	// CacheDir enables the durable cache tier: a content-addressed,
	// checksummed on-disk store under the memory LRU, so warm state
	// survives restarts (and can be pre-warmed from a corpus). Entries
	// are admitted back into service only after their certificate
	// verifies against the canonical instance; corrupt, truncated or
	// wrong-version files are skipped and reaped. Empty disables the
	// tier. The directory is created if needed; creation or write
	// failures disable nothing else and are surfaced in Stats.
	CacheDir string
	// Batch tunes the "auto" hypergraph policy (portfolio members,
	// refinement, exact-attempt limits). Workers and InstanceTimeout are
	// ignored: the service supplies its own concurrency and deadlines.
	Batch batch.Options
	// LedgerPath appends one JSONL telemetry.SolveRecord per fresh solve
	// (cache and disk hits excluded — the ledger already has those solves)
	// to the named file; empty disables the ledger. An open failure
	// disables it too and is surfaced through
	// semimatch_ledger_errors_total.
	LedgerPath string
	// TraceWriter, when non-nil, receives one NDJSON span tree per
	// request: canonicalize, queue-wait, the adopted solve trace, verify
	// and cache-admission phases under a "request" root. Writes are
	// serialized; the writer need not be concurrency-safe.
	TraceWriter io.Writer
	// Peers enables the peer-cache tier behind the memory and disk
	// caches: on a local miss the single-flight leader asks the replica
	// that owns the instance's fingerprint for its entry, re-verifies the
	// entry's certificate locally, and adopts it on success (one peer
	// fetch per coalesced group). nil disables the tier. See PeerCache.
	Peers PeerCache
	// PeerTimeout caps one peer-cache fetch; 0 means DefaultPeerTimeout.
	// The fetch deadline is additionally tightened to half the request's
	// remaining budget, so a slow peer can never consume time the local
	// fallback solve would need.
	PeerTimeout time.Duration
}

func (o Options) cacheEntries() int {
	if o.CacheEntries == 0 {
		return DefaultCacheEntries
	}
	return o.CacheEntries
}

func (o Options) cacheShards() int {
	if o.CacheShards <= 0 {
		return DefaultCacheShards
	}
	return o.CacheShards
}

func (o Options) queueDepth() int {
	if o.QueueDepth <= 0 {
		return DefaultQueueDepth
	}
	return o.QueueDepth
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is one solved (or cache-served) request.
type Result struct {
	// Kind is "bipartite" or "hypergraph".
	Kind string
	// Fingerprint is the canonical content hash of the instance.
	Fingerprint string
	// Algorithm is the canonical solver name, or "auto:<source>" when the
	// batch policy chose the winner.
	Algorithm string
	// Makespan is the schedule's maximum processor load.
	Makespan int64
	// Assignment maps each task to its processor (bipartite) or chosen
	// hyperedge id (hypergraph), in the requester's own numbering. Shared
	// with the cache on hits — treat as immutable.
	Assignment []int32
	// Loads is the per-processor load vector. Shared with the cache on
	// hits — treat as immutable.
	Loads []int64
	// LowerBound is the strongest supportable lower bound on the optimal
	// makespan: the certificate's when one was issued, else the class
	// bound. Makespan − LowerBound is the proven optimality gap.
	LowerBound int64
	// Certificate is the proof-carrying form of this result (see
	// internal/cert); the service verifies it before caching or serving
	// from disk. Shared with the cache on hits — treat as immutable.
	Certificate *cert.Certificate
	// Trust is the tier the service's own verification established for
	// Certificate: TierVerified/TierAttested for independently checked
	// results, TierHeuristic otherwise.
	Trust cert.Tier
	// Optimal reports a provably optimal schedule.
	Optimal bool
	// Truncated reports a deadline- or budget-truncated solve: the
	// schedule is valid but not provably best. Truncated results are never
	// cached.
	Truncated bool
	// Cached reports that this result was served from a cache tier
	// (memory, disk or a peer replica) rather than a fresh solve.
	Cached bool
	// Tier names the cache tier that answered this request: "memory",
	// "disk", "peer" (adopted from the owning replica after local
	// re-verification), or "none" for a fresh solve. It is always
	// stamped, so consumers (semiload, the ledger, access logs) can
	// distinguish tiers without inference; Cached == (Tier != "none").
	Tier string
	// Elapsed is the wall-clock solve time (zero-ish for cache hits).
	Elapsed time.Duration

	// noStore marks a result that failed certificate verification: it is
	// still returned — flagged non-optimal with heuristic trust — but
	// never admitted to any cache tier.
	noStore bool
	// fromDisk marks a result loaded from the disk tier, so the teardown
	// path promotes it to the memory LRU without rewriting the file.
	fromDisk bool
	// fromPeer marks a result adopted (after local re-verification) from
	// the owning replica's cache; the teardown path admits it to both
	// local tiers like a fresh solve.
	fromPeer bool
}

// Stats is a counters snapshot for monitoring (GET /stats).
type Stats struct {
	Requests       uint64 `json:"requests"`
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	CacheEntries   int    `json:"cache_entries"`
	// Coalesced counts requests answered by another request's in-flight
	// solve (single-flight deduplication).
	Coalesced   uint64 `json:"coalesced"`
	Solves      uint64 `json:"solves"`
	SolveErrors uint64 `json:"solve_errors"`
	Truncated   uint64 `json:"truncated"`
	// Overloaded counts requests rejected by admission control.
	Overloaded uint64 `json:"overloaded"`
	// VerifyFailures counts results whose certificate failed independent
	// verification — fresh solves barred from the cache, and disk entries
	// rejected and reaped. Nonzero means a solver bug, a corrupted store,
	// or tampering.
	VerifyFailures uint64 `json:"verify_failures"`
	// DiskHits/DiskMisses/DiskWrites/DiskWriteErrors/DiskReaped are the
	// durable tier's counters (all zero when CacheDir is unset): lookups
	// served after verification, lookups that found nothing usable,
	// entries persisted, failed persists, and corrupt/stale/unverifiable
	// files deleted on load.
	DiskHits        uint64 `json:"disk_hits"`
	DiskMisses      uint64 `json:"disk_misses"`
	DiskWrites      uint64 `json:"disk_writes"`
	DiskWriteErrors uint64 `json:"disk_write_errors"`
	DiskReaped      uint64 `json:"disk_reaped"`
	// PeerHits/PeerMisses/PeerErrors are the peer tier's outbound
	// counters (all zero without Options.Peers): entries adopted from the
	// owning replica after local re-verification, owner lookups that
	// found nothing, and fetches that failed in transport.
	PeerHits   uint64 `json:"peer_hits"`
	PeerMisses uint64 `json:"peer_misses"`
	PeerErrors uint64 `json:"peer_errors"`
	// PeerVerifyFailures counts peer entries rejected before admission —
	// wrong shape, inconsistent or unverifiable certificate. Certificate
	// lies are additionally counted in VerifyFailures. Nonzero means a
	// buggy or hostile replica; the entries never reach any cache tier.
	PeerVerifyFailures uint64 `json:"peer_verify_failures"`
	// PeerServed counts entries this replica handed to peers over
	// GET /internal/cache/{key}.
	PeerServed uint64 `json:"peer_served"`
	InFlight   int64  `json:"in_flight"`
	QueueDepth int    `json:"queue_depth"`
	// QueueLen is the number of admission slots held right now — solves
	// queued or running; QueueDepth − QueueLen is the remaining headroom
	// before requests shed.
	QueueLen int `json:"queue_len"`
	Workers  int `json:"workers"`
	// UptimeS is seconds since the service was constructed.
	UptimeS float64 `json:"uptime_s"`
}

// Service is a reusable, concurrency-safe solving service.
type Service struct {
	opts    Options
	cache   *lruCache
	disk    *diskCache // durable tier under the LRU; nil without CacheDir
	runner  *batch.Runner
	queue   chan struct{} // admission slots: solves in flight
	workers chan struct{} // run slots: solves executing
	// solverWorkers is the per-solve internal worker budget for parallel
	// solvers: GOMAXPROCS split across the service's concurrent solves,
	// at least 1, so a loaded server stays near one busy goroutine per
	// core instead of one pool per request.
	solverWorkers int

	flightMu sync.Mutex
	flights  map[string]*flight

	requests       atomic.Uint64
	coalesced      atomic.Uint64
	solves         atomic.Uint64
	solveErrors    atomic.Uint64
	truncated      atomic.Uint64
	overloaded     atomic.Uint64
	verifyFailures atomic.Uint64
	inFlight       atomic.Int64

	// Session counters (see internal/service/sessions.go): the dynamic-
	// session layer reports lifecycle and per-event outcomes here so the
	// semimatch_session_* metric families live in the same registry.
	sessionsOpen      atomic.Int64
	sessionsTotal     atomic.Uint64
	sessionsEvicted   atomic.Uint64
	sessionEvents     atomic.Uint64
	sessionAdopted    atomic.Uint64
	sessionOverloaded atomic.Uint64

	// Peer-tier counters (see the Stats fields of the same names).
	peerHits           atomic.Uint64
	peerMisses         atomic.Uint64
	peerErrors         atomic.Uint64
	peerVerifyFailures atomic.Uint64
	peerServed         atomic.Uint64

	// Observability (internal/telemetry): the metrics registry and the
	// queue-wait histogram it owns, the node counter behind
	// semimatch_search_nodes_total, the live-solves table behind
	// GET /debug/solves, the solve ledger, and the request-trace sink.
	start        time.Time
	metrics      *telemetry.Registry
	queueWait    *telemetry.Histogram
	searchNodes  atomic.Uint64
	ledgerErrors atomic.Uint64
	ledger       *telemetry.Ledger
	traceW       io.Writer
	traceMu      sync.Mutex
	liveMu       sync.Mutex
	live         map[string]*liveEntry

	// solveFn is the dispatch stage, replaceable by tests.
	solveFn func(ctx context.Context, req *request) (*Result, error)
}

// flight is one in-progress solve that duplicate requests wait on.
type flight struct {
	done chan struct{}
	res  *Result
	err  error
}

// New returns a Service with the given options.
func New(opts Options) *Service {
	solverWorkers := runtime.GOMAXPROCS(0) / opts.workers()
	if solverWorkers < 1 {
		solverWorkers = 1
	}
	bopts := opts.Batch
	bopts.Workers = 1                  // the service's worker pool owns the cores
	bopts.ExactWorkers = solverWorkers // ... so each solve gets its share
	bopts.InstanceTimeout = 0
	s := &Service{
		opts:          opts,
		cache:         newLRUCache(opts.cacheEntries(), opts.cacheShards()),
		runner:        batch.New(bopts),
		queue:         make(chan struct{}, opts.queueDepth()),
		workers:       make(chan struct{}, opts.workers()),
		solverWorkers: solverWorkers,
		flights:       make(map[string]*flight),
		start:         time.Now(),
		traceW:        opts.TraceWriter,
		live:          make(map[string]*liveEntry),
	}
	if opts.CacheDir != "" {
		s.disk = newDiskCache(opts.CacheDir)
	}
	if opts.LedgerPath != "" {
		l, err := telemetry.OpenLedger(opts.LedgerPath)
		if err != nil {
			s.ledgerErrors.Add(1)
		} else {
			s.ledger = l
		}
	}
	s.newMetrics()
	s.solveFn = s.dispatch
	return s
}

// request is a normalized, canonicalized solve request.
type request struct {
	kind  string
	class registry.Class
	g     *bipartite.Graph       // canonical form (bipartite requests)
	h     *hypergraph.Hypergraph // canonical form (hypergraph requests)
	inv   []int32                // canonical edge id → requester edge id
	sol   *registry.Solver       // nil for the hypergraph auto policy
	alg   string                 // algorithm label used in keys and results
	fp    string                 // canonical fingerprint
	trace *telemetry.Span        // request span; nil without a TraceWriter
}

// problem wraps the canonical instance as a solve.Problem for dispatch.
func (req *request) problem() solve.Problem {
	if req.g != nil {
		return solve.Bipartite(req.g)
	}
	return solve.Hyper(req.h)
}

// instance returns the canonical instance for certificate verification.
func (req *request) instance() any {
	if req.g != nil {
		return req.g
	}
	return req.h
}

// Solve answers one request. instance must be a *semimatch
// hypergraph.Hypergraph or bipartite.Graph; algorithm is any name or
// alias the solver registry resolves for the instance's class, or ""
// for the auto policy. The request context's deadline bounds the solve:
// when it expires, exact stages degrade to their incumbent (Result.
// Truncated) rather than failing, as long as any schedule was found.
func (s *Service) Solve(ctx context.Context, instance any, algorithm string) (*Result, error) {
	s.requests.Add(1)
	var rs *telemetry.Span
	if s.traceW != nil {
		rs = telemetry.StartSpan("request")
	}
	canonStart := time.Now()
	req, err := s.newRequest(instance, algorithm)
	if err != nil {
		s.emitTrace(rs, "bad-request")
		return nil, err
	}
	rs.AddChild("canonicalize", canonStart, time.Since(canonStart))
	rs.SetAttr("fingerprint", req.fp)
	rs.SetAttr("algorithm", req.alg)
	req.trace = rs
	// The span's outcome attribute names how this request was answered;
	// the deferred emit covers every return path below.
	outcome := "error"
	defer func() { s.emitTrace(rs, outcome) }()

	ictx := ctx
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && s.opts.DefaultDeadline > 0 {
		var cancel context.CancelFunc
		ictx, cancel = context.WithTimeout(ctx, s.opts.DefaultDeadline)
		defer cancel()
	}
	key := req.fp + "|" + req.alg + "|" + budgetClass(ictx)

	var f *flight
	for {
		if res, ok := s.cache.get(key); ok {
			outcome = "cache-hit"
			return req.deliver(res, "memory"), nil
		}

		// Single flight: the first request for a key becomes the leader
		// and solves; duplicates arriving before it finishes wait for its
		// result without consuming queue slots.
		s.flightMu.Lock()
		leader, ok := s.flights[key]
		if !ok {
			f = &flight{done: make(chan struct{})}
			s.flights[key] = f
			s.flightMu.Unlock()
			break
		}
		s.flightMu.Unlock()
		s.coalesced.Add(1)
		select {
		case <-leader.done:
			if leader.err == nil {
				outcome = "coalesced"
				return req.deliver(leader.res, resultTier(leader.res)), nil
			}
			// The leader's failure may be its own: a leader whose request
			// context died mid-solve fails with a context error that says
			// nothing about this request. While our context is alive,
			// loop and try again (hitting the cache, a newer flight, or
			// becoming the leader ourselves); real solve errors are
			// shared as-is.
			if ictx.Err() == nil &&
				(errors.Is(leader.err, context.Canceled) || errors.Is(leader.err, context.DeadlineExceeded)) {
				continue
			}
			return nil, leader.err
		case <-ictx.Done():
			return nil, fmt.Errorf("service: abandoned waiting for in-flight duplicate solve: %w", ictx.Err())
		}
	}

	// Teardown is deferred so that even a panic unwinding through the
	// leader cannot leave a stale flight behind (followers would block on
	// it forever and the key could never be solved again).
	defer func() {
		if f.res == nil && f.err == nil {
			f.err = errors.New("service: solve aborted")
		}
		if f.err == nil && !f.res.Truncated && !f.res.noStore {
			// A truncated incumbent is only the best schedule this
			// deadline allowed; caching it would freeze a degraded answer
			// for future requests, so only complete results whose
			// certificate survived verification are stored. The store
			// happens before the flight is removed, so no request can slip
			// between flight teardown and cache visibility and re-solve.
			cs := req.trace.StartChild("cache-admission")
			s.cache.put(key, f.res)
			if s.disk != nil && !f.res.fromDisk {
				s.disk.put(key, f.res)
				cs.SetAttr("disk", true)
			}
			cs.End()
		}
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		close(f.done)
	}()
	f.res, f.err = s.leaderSolve(ictx, req, key)
	if f.err != nil {
		return nil, f.err
	}
	switch {
	case f.res.fromDisk:
		outcome = "disk-hit"
	case f.res.fromPeer:
		outcome = "peer-hit"
	default:
		outcome = "solved"
	}
	return req.deliver(f.res, resultTier(f.res)), nil
}

// resultTier is the cache-tier label of a leader's own result: "disk"
// when the durable tier answered, "peer" when the owning replica's entry
// was adopted, "none" for a fresh solve.
func resultTier(res *Result) string {
	switch {
	case res.fromDisk:
		return "disk"
	case res.fromPeer:
		return "peer"
	default:
		return "none"
	}
}

// leaderSolve is the single-flight leader's path: consult the durable
// tier first (one disk read serves every coalesced duplicate), then the
// owning replica's cache (one peer fetch per coalesced group), then fall
// back to an admitted fresh solve — verifying the result's certificate
// whichever way it was obtained.
func (s *Service) leaderSolve(ctx context.Context, req *request, key string) (*Result, error) {
	if s.disk != nil {
		if res, ok := s.disk.get(key, func(r *Result) error { return s.revalidate(req, r) }); ok {
			return res, nil
		}
	}
	if res, ok := s.peerFetch(ctx, req, key); ok {
		return res, nil
	}
	res, err := s.admitAndSolve(ctx, req)
	if err != nil {
		return nil, err
	}
	vs := req.trace.StartChild("verify")
	s.verifyFresh(req, res)
	vs.SetAttr("trust", res.Trust.String())
	vs.End()
	return res, nil
}

// verifyFresh checks a fresh solve's certificate against the canonical
// instance before the result can reach any cache tier. A result that
// fails — a solver lying about feasibility, makespan or optimality —
// is degraded in place: non-optimal, heuristic trust, barred from the
// caches, and counted in Stats.VerifyFailures.
func (s *Service) verifyFresh(req *request, res *Result) {
	tier, err := cert.Verify(req.instance(), res.Certificate)
	if err != nil {
		s.verifyFailures.Add(1)
		res.Trust = cert.TierHeuristic
		res.Optimal = false
		res.noStore = true
		return
	}
	res.Trust = tier
}

// revalidate decides whether a decoded disk entry may serve this request:
// its shape must match the request and its certificate must independently
// verify against the canonical instance — the derived fields are then
// recomputed from the instance rather than trusted, so a tampered file
// can at worst be rejected, never believed. A non-nil error reaps the
// entry.
func (s *Service) revalidate(req *request, res *Result) error {
	if res.Kind != req.kind {
		return fmt.Errorf("service: disk entry kind %q, want %q", res.Kind, req.kind)
	}
	c := res.Certificate
	if c == nil {
		return errors.New("service: disk entry has no certificate")
	}
	if len(c.Assignment) != len(res.Assignment) {
		return errors.New("service: disk entry assignment differs from its certificate")
	}
	for i, v := range c.Assignment {
		if res.Assignment[i] != v {
			return errors.New("service: disk entry assignment differs from its certificate")
		}
	}
	tier, err := cert.Verify(req.instance(), c)
	if err != nil {
		s.verifyFailures.Add(1)
		return err
	}
	// Recompute what the certificate proves correct; trust nothing else.
	res.Fingerprint = req.fp
	res.Makespan, res.Loads = req.problem().MakespanLoads(res.Assignment)
	res.LowerBound = c.LowerBound
	res.Trust = tier
	res.Truncated = false
	res.fromDisk = true
	return nil
}

// Stats returns a counters snapshot.
func (s *Service) Stats() Stats {
	hits, misses, evicted := s.cache.counters()
	st := Stats{
		Requests:       s.requests.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEvictions: evicted,
		CacheEntries:   s.cache.len(),
		Coalesced:      s.coalesced.Load(),
		Solves:         s.solves.Load(),
		SolveErrors:    s.solveErrors.Load(),
		Truncated:      s.truncated.Load(),
		Overloaded:     s.overloaded.Load(),
		VerifyFailures: s.verifyFailures.Load(),

		PeerHits:           s.peerHits.Load(),
		PeerMisses:         s.peerMisses.Load(),
		PeerErrors:         s.peerErrors.Load(),
		PeerVerifyFailures: s.peerVerifyFailures.Load(),
		PeerServed:         s.peerServed.Load(),

		InFlight:   s.inFlight.Load(),
		QueueDepth: s.opts.queueDepth(),
		QueueLen:   len(s.queue),
		Workers:    s.opts.workers(),
		UptimeS:    time.Since(s.start).Seconds(),
	}
	if s.disk != nil {
		st.DiskHits, st.DiskMisses, st.DiskWrites, st.DiskWriteErrors, st.DiskReaped = s.disk.counters()
	}
	return st
}

// newRequest validates, canonicalizes and fingerprints one request.
func (s *Service) newRequest(instance any, algorithm string) (*request, error) {
	req := &request{}
	switch v := instance.(type) {
	case *hypergraph.Hypergraph:
		if v == nil {
			return nil, fmt.Errorf("%w: nil hypergraph", ErrBadInstance)
		}
		canon, perm, err := encode.CanonicalHypergraph(v)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
		}
		fp, err := encode.FingerprintCanonicalHypergraph(canon)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
		}
		inv := make([]int32, len(perm))
		for orig, c := range perm {
			inv[c] = int32(orig)
		}
		req.kind, req.class = "hypergraph", registry.MultiProc
		req.h, req.inv, req.fp = canon, inv, fp
	case *bipartite.Graph:
		if v == nil {
			return nil, fmt.Errorf("%w: nil graph", ErrBadInstance)
		}
		canon, err := encode.CanonicalBipartite(v)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
		}
		fp, err := encode.FingerprintCanonicalBipartite(canon)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
		}
		req.kind, req.class = "bipartite", registry.SingleProc
		req.g, req.fp = canon, fp
	default:
		return nil, fmt.Errorf("%w: unsupported instance type %T", ErrBadInstance, instance)
	}

	switch {
	case algorithm != "":
		sol, err := registry.LookupClass(req.class, algorithm)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnknownAlgorithm, err)
		}
		req.sol, req.alg = sol, sol.Name
	case req.class == registry.SingleProc:
		// Bipartite auto: the polynomial exact solver when it applies,
		// otherwise the paper's best bipartite greedy. Resolving to the
		// canonical solver name here means auto requests share cache
		// entries with explicit requests for the same solver.
		name := "expected"
		if req.g.Unit() {
			name = "ExactUnit"
		}
		sol, err := registry.LookupClass(registry.SingleProc, name)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnknownAlgorithm, err)
		}
		req.sol, req.alg = sol, sol.Name
	default:
		// Hypergraph auto: the batch.Runner policy.
		req.alg = "auto"
	}
	return req, nil
}

// deliver adapts a (possibly shared, canonical-numbered) result to one
// requester: hypergraph assignments are translated to the requester's own
// hyperedge numbering, and the cache tier ("memory", "disk", "peer" or
// "none" for a fresh solve) is stamped.
func (req *request) deliver(res *Result, tier string) *Result {
	out := *res
	out.Cached = tier != "" && tier != "none"
	out.Tier = tier
	if out.Cached {
		out.Elapsed = 0 // the documented "≈0 for hits": no solve ran
	}
	if req.inv != nil && out.Assignment != nil {
		a := make([]int32, len(out.Assignment))
		for t, c := range out.Assignment {
			a[t] = req.inv[c]
		}
		out.Assignment = a
		if out.Certificate != nil {
			// The certificate travels in the requester's numbering too, so
			// cert.Verify accepts it against the requester's own instance
			// (the fingerprint is isomorphism-invariant; the schedule is
			// the same one, renamed).
			c := *out.Certificate
			c.Assignment = a
			out.Certificate = &c
		}
	}
	return &out
}

// admitAndSolve applies admission control around the dispatch stage.
func (s *Service) admitAndSolve(ctx context.Context, req *request) (*Result, error) {
	select {
	case s.queue <- struct{}{}:
	default:
		s.overloaded.Add(1)
		return nil, ErrOverloaded
	}
	defer func() { <-s.queue }()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	waitStart := time.Now()
	select {
	case s.workers <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("service: abandoned in queue: %w", ctx.Err())
	}
	defer func() { <-s.workers }()
	wait := time.Since(waitStart)
	s.queueWait.Observe(wait.Seconds())
	req.trace.AddChild("queue-wait", waitStart, wait)

	s.solves.Add(1)
	res, err := func() (res *Result, err error) {
		// A panicking solver must not take down the service or, worse,
		// strand the flight: it becomes this request's error.
		defer func() {
			if p := recover(); p != nil {
				res, err = nil, fmt.Errorf("service: panic solving instance: %v", p)
			}
		}()
		return s.solveFn(ctx, req)
	}()
	if err != nil {
		s.solveErrors.Add(1)
		return nil, err
	}
	if res.Truncated {
		s.truncated.Add(1)
	}
	return res, nil
}

// dispatch runs one solve on the canonical instance, through the unified
// solve API: the canonical form becomes a solve.Problem, and named and
// auto requests alike are answered by a solve.Report.
func (s *Service) dispatch(ctx context.Context, req *request) (*Result, error) {
	start := time.Now()
	res := &Result{Kind: req.kind, Fingerprint: req.fp, Algorithm: req.alg}
	problem := req.problem()
	liveKey, hook := s.trackLive(req)
	defer s.untrackLive(liveKey)
	switch {
	case req.sol != nil:
		rep, err := solve.RunOptions(ctx, problem, solve.Options{
			Algorithm: req.sol.Name,
			Workers:   s.solverWorkers,
			Trace:     req.trace != nil,
			Progress:  hook,
		})
		if err != nil {
			return nil, fmt.Errorf("service: %s: %w", req.alg, err)
		}
		req.trace.Adopt(rep.Trace)
		s.recordSolve(req, problem, rep)
		res.Optimal = rep.Status == solve.StatusOptimal
		res.Truncated = rep.Status == solve.StatusTruncated
		res.Assignment = rep.Assignment
		res.Loads = rep.Loads
		res.Makespan = rep.Makespan
		res.LowerBound = reportLowerBound(rep)
		res.Certificate = rep.Certificate
	default:
		// The auto policy reuses the batch pipeline on a one-problem
		// batch: heuristic race first, exact branch-and-bound when small
		// enough, best-so-far fallback when the deadline expires. The
		// options hook attaches this request's observability — the trace
		// span and the live-progress feed — without touching the policy.
		outs, runErr := s.runner.RunProblemsWith(ctx, []solve.Problem{problem},
			func(o *solve.Options) {
				o.Trace = req.trace != nil
				o.Progress = hook
			})
		if len(outs) != 1 {
			// RunProblems failed up front (e.g. Options.Batch names an
			// unknown portfolio algorithm) and produced no per-problem
			// results.
			return nil, fmt.Errorf("service: auto solve: %w", runErr)
		}
		out := outs[0]
		rep := out.Report
		if rep == nil || rep.Assignment == nil {
			if out.Err != nil {
				return nil, fmt.Errorf("service: auto solve: %w", out.Err)
			}
			return nil, errors.New("service: auto solve produced no schedule")
		}
		req.trace.Adopt(rep.Trace)
		s.recordSolve(req, problem, rep)
		res.Algorithm = "auto:" + batch.SourceLabel(rep)
		res.Assignment = rep.Assignment
		res.Loads = rep.Loads
		res.Makespan = rep.Makespan
		res.LowerBound = reportLowerBound(rep)
		res.Certificate = rep.Certificate
		res.Optimal = rep.Status == solve.StatusOptimal
		// A schedule a deadline or budget curtailed is the best that
		// budget allowed, not necessarily the policy's full answer — but
		// a schedule the exact stage already proved optimal is complete
		// no matter when the deadline fired.
		res.Truncated = out.Err != nil || rep.Status == solve.StatusTruncated
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// reportLowerBound is the strongest supportable bound a Report carries:
// the certificate's (equal to the makespan when a witness closed the
// gap) when one was issued, else the class bound.
func reportLowerBound(rep *solve.Report) int64 {
	if c := rep.Certificate; c != nil && c.LowerBound > rep.LowerBound {
		return c.LowerBound
	}
	return rep.LowerBound
}

// budgetClass buckets a context's remaining budget into a coarse class so
// cache keys distinguish "answers computed under a tight deadline" from
// unconstrained ones without fragmenting the cache per-millisecond.
func budgetClass(ctx context.Context) string {
	d, ok := ctx.Deadline()
	if !ok {
		return "inf"
	}
	switch rem := time.Until(d); {
	case rem <= 100*time.Millisecond:
		return "le100ms"
	case rem <= 500*time.Millisecond:
		return "le500ms"
	case rem <= 2*time.Second:
		return "le2s"
	case rem <= 10*time.Second:
		return "le10s"
	default:
		return "gt10s"
	}
}
