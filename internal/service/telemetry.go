package service

import (
	"sort"
	"time"

	"semimatch/internal/solve"
	"semimatch/internal/telemetry"
)

// newMetrics builds the service's Prometheus registry. Every counter is
// function-backed over the atomics the service already maintains, so the
// request path pays nothing for being scrapable; only the queue-wait
// histogram adds an observation (two atomic adds) per admitted solve.
// Families are registered at construction so a scrape of an idle server
// still shows the full schema at zero.
func (s *Service) newMetrics() {
	r := telemetry.NewRegistry()
	r.CounterFunc("semimatch_requests_total",
		"Solve requests received (all outcomes).", s.requests.Load)
	r.CounterFunc("semimatch_cache_hits_total",
		"Requests answered from the in-memory result cache.", func() uint64 {
			h, _, _ := s.cache.counters()
			return h
		})
	r.CounterFunc("semimatch_cache_misses_total",
		"Cache lookups that found nothing.", func() uint64 {
			_, m, _ := s.cache.counters()
			return m
		})
	r.CounterFunc("semimatch_cache_evictions_total",
		"Results evicted from the in-memory cache by LRU pressure.", func() uint64 {
			_, _, e := s.cache.counters()
			return e
		})
	r.GaugeFunc("semimatch_cache_entries",
		"Results currently held in the in-memory cache.", func() float64 {
			return float64(s.cache.len())
		})
	r.CounterFunc("semimatch_coalesced_total",
		"Requests answered by another request's in-flight solve.", s.coalesced.Load)
	r.CounterFunc("semimatch_solves_total",
		"Fresh solves dispatched to the solver layer.", s.solves.Load)
	r.CounterFunc("semimatch_solve_errors_total",
		"Fresh solves that failed (including panics).", s.solveErrors.Load)
	r.CounterFunc("semimatch_truncated_total",
		"Solves truncated by a deadline or node budget.", s.truncated.Load)
	r.CounterFunc("semimatch_overloaded_total",
		"Requests shed by admission control (solve queue full).", s.overloaded.Load)
	r.CounterFunc("semimatch_verify_failures_total",
		"Results whose certificate failed independent verification.", s.verifyFailures.Load)
	r.CounterFunc("semimatch_disk_hits_total",
		"Durable-tier lookups served after verification.", func() uint64 {
			h, _, _, _, _ := s.diskCounters()
			return h
		})
	r.CounterFunc("semimatch_disk_misses_total",
		"Durable-tier lookups that found nothing usable.", func() uint64 {
			_, m, _, _, _ := s.diskCounters()
			return m
		})
	r.CounterFunc("semimatch_disk_writes_total",
		"Results persisted to the durable tier.", func() uint64 {
			_, _, w, _, _ := s.diskCounters()
			return w
		})
	r.CounterFunc("semimatch_disk_write_errors_total",
		"Failed durable-tier persists.", func() uint64 {
			_, _, _, we, _ := s.diskCounters()
			return we
		})
	r.CounterFunc("semimatch_disk_reaped_total",
		"Corrupt, stale or unverifiable durable-tier files deleted.", func() uint64 {
			_, _, _, _, rp := s.diskCounters()
			return rp
		})
	r.CounterFunc("semimatch_peer_hits_total",
		"Cache entries adopted from a peer replica after local re-verification.", s.peerHits.Load)
	r.CounterFunc("semimatch_peer_misses_total",
		"Peer-cache fetches the owning replica answered with a miss.", s.peerMisses.Load)
	r.CounterFunc("semimatch_peer_errors_total",
		"Peer-cache fetches that failed (transport, status or decode).", s.peerErrors.Load)
	r.CounterFunc("semimatch_peer_verify_failures_total",
		"Peer entries rejected before admission (shape or certificate).", s.peerVerifyFailures.Load)
	r.CounterFunc("semimatch_peer_served_total",
		"Cache entries this replica served to peers over /internal/cache.", s.peerServed.Load)
	r.GaugeFunc("semimatch_in_flight",
		"Solves in flight right now (queued or running).", func() float64 {
			return float64(s.inFlight.Load())
		})
	r.CounterFunc("semimatch_search_nodes_total",
		"Branch-and-bound nodes expanded by fresh solves.", s.searchNodes.Load)
	r.GaugeFunc("semimatch_search_nodes_per_second",
		"Current aggregate node rate across live searches.", func() float64 {
			var rate float64
			for _, ls := range s.LiveSolves() {
				rate += ls.Progress.NodesPerSec
			}
			return rate
		})
	r.GaugeFunc("semimatch_sessions_open",
		"Dynamic sessions open right now.", func() float64 {
			return float64(s.sessionsOpen.Load())
		})
	r.CounterFunc("semimatch_sessions_total",
		"Dynamic sessions ever opened.", s.sessionsTotal.Load)
	r.CounterFunc("semimatch_sessions_evicted_total",
		"Dynamic sessions closed by idle eviction.", s.sessionsEvicted.Load)
	r.CounterFunc("semimatch_session_events_total",
		"Session events applied (arrive, depart, reweigh).", s.sessionEvents.Load)
	r.CounterFunc("semimatch_session_adopted_total",
		"Session events whose re-solved schedule beat the online patch.", s.sessionAdopted.Load)
	r.CounterFunc("semimatch_session_overloaded_total",
		"Session re-solves skipped by admission control (patch kept).", s.sessionOverloaded.Load)
	r.CounterFunc("semimatch_ledger_errors_total",
		"Solve-ledger appends that failed.", s.ledgerErrors.Load)
	r.GaugeFunc("semimatch_uptime_seconds",
		"Seconds since the service was constructed.", func() float64 {
			return time.Since(s.start).Seconds()
		})
	s.queueWait = r.Histogram("semimatch_queue_wait_seconds",
		"Time admitted solves spent waiting for a run slot.", nil)
	s.metrics = r
}

// Metrics returns the service's metrics registry, for the HTTP layer to
// expose on GET /metrics (and to register its own request-latency
// families into). The registry is fixed at construction; scraping it at
// any time is safe and lock-free on the observation side.
func (s *Service) Metrics() *telemetry.Registry { return s.metrics }

// diskCounters is the durable tier's counters, zero without a CacheDir.
func (s *Service) diskCounters() (hits, misses, writes, writeErrs, reaped uint64) {
	if s.disk == nil {
		return 0, 0, 0, 0, 0
	}
	return s.disk.counters()
}

// LiveSolve is one in-flight solve as seen by GET /debug/solves: which
// instance and algorithm, how long it has been running, and the latest
// search-progress snapshot its engine delivered (zero until the first
// budget-block checkpoint).
type LiveSolve struct {
	Fingerprint string `json:"fingerprint"`
	Algorithm   string `json:"algorithm"`
	// RunningS is how long this solve has been executing.
	RunningS float64 `json:"running_s"`
	// Progress is the engine's latest snapshot; Nodes stays zero for
	// solves that never enter a branch-and-bound search (pure heuristics).
	Progress telemetry.SearchProgress `json:"progress"`
}

// liveEntry is the mutable behind-the-lock form of a LiveSolve.
type liveEntry struct {
	fp, alg  string
	started  time.Time
	progress telemetry.SearchProgress
}

// trackLive registers a starting solve in the live table and returns the
// progress hook that keeps its snapshot fresh. untrackLive must be called
// with the same key when the solve finishes.
func (s *Service) trackLive(req *request) (key string, hook telemetry.ProgressFunc) {
	key = req.fp + "|" + req.alg
	s.liveMu.Lock()
	s.live[key] = &liveEntry{fp: req.fp, alg: req.alg, started: time.Now()}
	s.liveMu.Unlock()
	return key, func(p telemetry.SearchProgress) {
		s.liveMu.Lock()
		if e := s.live[key]; e != nil {
			e.progress = p
		}
		s.liveMu.Unlock()
	}
}

// untrackLive removes a finished solve from the live table.
func (s *Service) untrackLive(key string) {
	s.liveMu.Lock()
	delete(s.live, key)
	s.liveMu.Unlock()
}

// LiveSolves snapshots the solves executing right now, oldest first —
// the data behind GET /debug/solves.
func (s *Service) LiveSolves() []LiveSolve {
	now := time.Now()
	s.liveMu.Lock()
	out := make([]LiveSolve, 0, len(s.live))
	for _, e := range s.live {
		out = append(out, LiveSolve{
			Fingerprint: e.fp,
			Algorithm:   e.alg,
			RunningS:    now.Sub(e.started).Seconds(),
			Progress:    e.progress,
		})
	}
	s.liveMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].RunningS != out[j].RunningS {
			return out[i].RunningS > out[j].RunningS
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// recordSolve accounts one fresh solve's Report: the node counter behind
// semimatch_search_nodes_total, and the solve-ledger line when a ledger
// is attached. Called on the dispatch path only — cache and disk hits
// re-serve work the ledger already has.
func (s *Service) recordSolve(req *request, p solve.Problem, rep *solve.Report) {
	if rep == nil {
		return
	}
	s.searchNodes.Add(uint64(rep.Stats.Nodes))
	if s.ledger == nil {
		return
	}
	rec := solve.NewLedgerRecord("service", req.fp, p, rep)
	rec.Algorithm = req.alg // the requested name; rep.Solver is the winner
	if rep.Solver != "" && rep.Solver != req.alg {
		rec.Algorithm = req.alg + ":" + rep.Solver
	}
	if err := s.ledger.Append(rec); err != nil {
		s.ledgerErrors.Add(1)
	}
}

// emitTrace finishes one request span and writes its NDJSON tree to the
// configured TraceWriter. Writes are serialized so concurrent requests
// cannot interleave lines.
func (s *Service) emitTrace(rs *telemetry.Span, outcome string) {
	if rs == nil || s.traceW == nil {
		return
	}
	rs.SetAttr("outcome", outcome)
	rs.End()
	s.traceMu.Lock()
	rs.WriteNDJSON(s.traceW)
	s.traceMu.Unlock()
}

// Close releases the service's durable attachments (today: the solve
// ledger). The service itself holds no goroutines and needs no shutdown.
func (s *Service) Close() error {
	if s.ledger != nil {
		return s.ledger.Close()
	}
	return nil
}
