package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"semimatch/internal/telemetry"
)

// TestServiceMetricsFamilies scrapes the registry after real traffic and
// asserts every documented family is present and the traffic moved the
// right ones.
func TestServiceMetricsFamilies(t *testing.T) {
	s := New(Options{})
	h := testHyper(t)
	if _, err := s.Solve(context.Background(), h, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background(), h, ""); err != nil { // cache hit
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, fam := range []string{
		"semimatch_requests_total",
		"semimatch_cache_hits_total",
		"semimatch_cache_misses_total",
		"semimatch_cache_evictions_total",
		"semimatch_cache_entries",
		"semimatch_coalesced_total",
		"semimatch_solves_total",
		"semimatch_solve_errors_total",
		"semimatch_truncated_total",
		"semimatch_overloaded_total",
		"semimatch_verify_failures_total",
		"semimatch_disk_hits_total",
		"semimatch_disk_misses_total",
		"semimatch_disk_writes_total",
		"semimatch_disk_write_errors_total",
		"semimatch_disk_reaped_total",
		"semimatch_in_flight",
		"semimatch_search_nodes_total",
		"semimatch_search_nodes_per_second",
		"semimatch_ledger_errors_total",
		"semimatch_uptime_seconds",
		"semimatch_queue_wait_seconds",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("scrape missing family %s", fam)
		}
	}
	if !strings.Contains(text, "semimatch_requests_total 2") {
		t.Errorf("requests_total not 2 after two requests:\n%s", firstLines(text, "semimatch_requests_total"))
	}
	if !strings.Contains(text, "semimatch_solves_total 1") {
		t.Errorf("solves_total not 1 after one fresh solve")
	}
	if !strings.Contains(text, "semimatch_cache_hits_total 1") {
		t.Errorf("cache_hits_total not 1 after a repeat request")
	}
	if !strings.Contains(text, "semimatch_queue_wait_seconds_count 1") {
		t.Errorf("queue_wait histogram did not observe the admitted solve")
	}
}

func firstLines(text, prefix string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, prefix) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestServiceStatsGauges covers the /stats additions: queue length and
// uptime.
func TestServiceStatsGauges(t *testing.T) {
	s := New(Options{QueueDepth: 7})
	if _, err := s.Solve(context.Background(), testHyper(t), "SGH"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.QueueLen != 0 {
		t.Errorf("idle queue_len = %d", st.QueueLen)
	}
	if st.QueueDepth != 7 {
		t.Errorf("queue_depth = %d", st.QueueDepth)
	}
	if st.UptimeS <= 0 {
		t.Errorf("uptime_s = %v", st.UptimeS)
	}
}

// TestServiceLedger asserts fresh solves append exactly one record each
// and cache hits append none.
func TestServiceLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	s := New(Options{LedgerPath: path})
	h := testHyper(t)
	if _, err := s.Solve(context.Background(), h, "SGH"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background(), h, "SGH"); err != nil { // hit: no record
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background(), h, ""); err != nil { // fresh: auto
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadLedger(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("ledger has %d records, want 2 (fresh solves only)", len(recs))
	}
	for _, rec := range recs {
		if rec.Source != "service" {
			t.Errorf("record source = %q", rec.Source)
		}
		if rec.Fingerprint == "" || rec.Class != "MULTIPROC" || rec.Tasks == 0 {
			t.Errorf("record features incomplete: %+v", rec)
		}
		if rec.Status == "" || rec.WallS < 0 {
			t.Errorf("record outcome incomplete: %+v", rec)
		}
	}
	if recs[0].Algorithm != "SGH" {
		t.Errorf("first record algorithm = %q", recs[0].Algorithm)
	}
	if !strings.HasPrefix(recs[1].Algorithm, "auto") {
		t.Errorf("second record algorithm = %q, want auto-prefixed", recs[1].Algorithm)
	}
}

// TestServiceRequestTrace asserts the TraceWriter receives the documented
// request span tree for a fresh solve and a compact one for a cache hit.
func TestServiceRequestTrace(t *testing.T) {
	var buf bytes.Buffer
	s := New(Options{TraceWriter: &buf})
	h := testHyper(t)
	if _, err := s.Solve(context.Background(), h, ""); err != nil {
		t.Fatal(err)
	}
	fresh := buf.String()
	for _, want := range []string{
		`"request"`, `"canonicalize"`, `"queue-wait"`, `"solve"`,
		`"verify"`, `"cache-admission"`, `"outcome":"solved"`,
	} {
		if !strings.Contains(fresh, want) {
			t.Errorf("fresh-solve trace missing %s:\n%s", want, fresh)
		}
	}
	// The adopted solve trace nests under the request root.
	if !strings.Contains(fresh, `"path":"request/solve"`) {
		t.Errorf("solve trace not adopted under request root:\n%s", fresh)
	}

	buf.Reset()
	if _, err := s.Solve(context.Background(), h, ""); err != nil {
		t.Fatal(err)
	}
	hit := buf.String()
	if !strings.Contains(hit, `"outcome":"cache-hit"`) {
		t.Errorf("repeat request trace outcome not cache-hit:\n%s", hit)
	}
	if strings.Contains(hit, `"queue-wait"`) {
		t.Errorf("cache hit should never reach admission:\n%s", hit)
	}
}

// TestServiceLiveSolves asserts the live table registers solves, feeds
// progress snapshots through the hook, and empties on completion.
func TestServiceLiveSolves(t *testing.T) {
	s := New(Options{})
	req := &request{fp: "fp-live", alg: "BnB-MP"}
	key, hook := s.trackLive(req)
	hook(telemetry.SearchProgress{Nodes: 42, NodesPerSec: 1000})
	ls := s.LiveSolves()
	if len(ls) != 1 {
		t.Fatalf("live solves = %d, want 1", len(ls))
	}
	if ls[0].Fingerprint != "fp-live" || ls[0].Algorithm != "BnB-MP" {
		t.Errorf("live entry = %+v", ls[0])
	}
	if ls[0].Progress.Nodes != 42 {
		t.Errorf("live progress nodes = %d", ls[0].Progress.Nodes)
	}
	// The node-rate gauge aggregates over live searches.
	var buf bytes.Buffer
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "semimatch_search_nodes_per_second 1000") {
		t.Errorf("node-rate gauge not fed from live table:\n%s",
			firstLines(buf.String(), "semimatch_search_nodes_per_second"))
	}
	s.untrackLive(key)
	if n := len(s.LiveSolves()); n != 0 {
		t.Errorf("live solves after completion = %d, want 0", n)
	}

	// End-to-end: a real solve leaves the table empty afterwards and
	// lands its nodes in the counter.
	if _, err := s.Solve(context.Background(), testHyper(t), ""); err != nil {
		t.Fatal(err)
	}
	if n := len(s.LiveSolves()); n != 0 {
		t.Errorf("live solves after real solve = %d, want 0", n)
	}
}
