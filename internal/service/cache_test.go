package service

import (
	"fmt"
	"sync"
	"testing"
)

// TestCacheEvictionOrder pins the LRU contract on a single shard: the
// least recently *used* entry goes first, and a get refreshes recency.
func TestCacheEvictionOrder(t *testing.T) {
	c := newLRUCache(2, 1)
	ra, rb, rc, rd := &Result{Makespan: 1}, &Result{Makespan: 2}, &Result{Makespan: 3}, &Result{Makespan: 4}
	c.put("a", ra)
	c.put("b", rb)
	c.put("c", rc) // evicts a (oldest)
	if _, ok := c.get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if _, _, ev := c.counters(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if r, ok := c.get("b"); !ok || r.Makespan != 2 {
		t.Fatal("b should still be cached")
	}
	c.put("d", rd) // b was just used, so c is now the LRU entry
	if _, ok := c.get("c"); ok {
		t.Fatal("c should have been evicted after b was refreshed")
	}
	if r, ok := c.get("b"); !ok || r.Makespan != 2 {
		t.Fatal("b should survive")
	}
	if r, ok := c.get("d"); !ok || r.Makespan != 4 {
		t.Fatal("d should be cached")
	}
	if n := c.len(); n != 2 {
		t.Fatalf("len = %d, want 2", n)
	}
}

// TestCacheUpdateExisting: putting an existing key replaces the value
// without growing the shard.
func TestCacheUpdateExisting(t *testing.T) {
	c := newLRUCache(2, 1)
	c.put("a", &Result{Makespan: 1})
	c.put("a", &Result{Makespan: 9})
	if r, ok := c.get("a"); !ok || r.Makespan != 9 {
		t.Fatal("update lost")
	}
	if n := c.len(); n != 1 {
		t.Fatalf("len = %d, want 1", n)
	}
	if _, _, ev := c.counters(); ev != 0 {
		t.Fatalf("evictions = %d, want 0", ev)
	}
}

// TestCacheDisabled: non-positive capacity disables caching.
func TestCacheDisabled(t *testing.T) {
	c := newLRUCache(-1, 4)
	c.put("a", &Result{})
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache returned a value")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache has entries")
	}
}

// TestCacheShardedStress hammers the sharded cache from many goroutines;
// run under -race this is the shard-safety test the CI race job relies
// on.
func TestCacheShardedStress(t *testing.T) {
	c := newLRUCache(64, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%96) // more keys than capacity
				if r, ok := c.get(key); ok && r == nil {
					t.Error("nil result cached")
					return
				}
				c.put(key, &Result{Makespan: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	if n := c.len(); n > 64+7 { // per-shard rounding may add a few slots
		t.Fatalf("cache grew past capacity: %d", n)
	}
	hits, misses, _ := c.counters()
	if hits+misses != 8*2000 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 8*2000)
	}
}
