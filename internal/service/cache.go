package service

import (
	"container/list"
	"sync"
)

// lruCache is a sharded LRU over solve results. Sharding keeps the lock
// hold times of a hot serving path short: keys hash (FNV-1a) to one of
// nShards independent shards, each with its own mutex, map and recency
// list, so concurrent requests for different instances rarely contend.
// Counters are per shard (updated under the shard lock) and aggregated on
// read.
type lruCache struct {
	shards []*cacheShard
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	hits    uint64
	misses  uint64
	evicted uint64
}

type cacheEntry struct {
	key string
	res *Result
}

// newLRUCache builds a cache holding ~entries results across shards (each
// shard gets the ceiling share, so the true capacity is rounded up to a
// multiple of the shard count). entries < 1 or shards < 1 disable caching:
// every get misses and puts are dropped.
func newLRUCache(entries, shards int) *lruCache {
	c := &lruCache{}
	if entries < 1 || shards < 1 {
		return c
	}
	if shards > entries {
		shards = entries
	}
	per := (entries + shards - 1) / shards
	c.shards = make([]*cacheShard, shards)
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:   per,
			ll:    list.New(),
			items: make(map[string]*list.Element, per),
		}
	}
	return c
}

func (c *lruCache) shard(key string) *cacheShard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	// Inline FNV-1a over the string: the hash/fnv API would allocate a
	// hasher and a []byte copy on every lookup of the hot serving path.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// get returns the cached result for key, refreshing its recency. The
// result is shared: callers must treat it (and its slices) as immutable.
func (c *lruCache) get(key string) (*Result, bool) {
	if len(c.shards) == 0 {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// peek returns the cached result for key without touching the hit/miss
// counters — for peer-serving lookups (PeerLookup), which would otherwise
// pollute this replica's own serving stats. Recency is still refreshed:
// an entry hot across the fleet is worth keeping resident.
func (c *lruCache) peek(key string) (*Result, bool) {
	if len(c.shards) == 0 {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores res under key, evicting the least recently used entry of the
// shard when it is full.
func (c *lruCache) put(key string, res *Result) {
	if len(c.shards) == 0 {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.items, oldest.Value.(*cacheEntry).key)
			s.evicted++
		}
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, res: res})
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// counters returns the aggregated hit/miss/eviction counts.
func (c *lruCache) counters() (hits, misses, evicted uint64) {
	for _, s := range c.shards {
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		evicted += s.evicted
		s.mu.Unlock()
	}
	return
}
