package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"semimatch/internal/cert"
	"semimatch/internal/core"
)

// entryFile returns the single .entry file in dir, failing the test if
// there is not exactly one.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.entry"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("found %d entry files in %s, want 1", len(names), dir)
	}
	return names[0]
}

// TestDiskTierSurvivesRestart is the durability acceptance test: a result
// solved by one Service is served — Cached, certificate and all — by a
// brand-new Service on the same directory, even for an isomorphic (not
// byte-identical) restatement of the instance.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1 := New(Options{CacheDir: dir})
	r1, err := s1.Solve(ctx, testHyper(t), "")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || !r1.Optimal || r1.Makespan != 5 {
		t.Fatalf("seed solve: %+v", r1)
	}
	if r1.Certificate == nil || r1.Certificate.Witness.Kind == cert.WitnessNone {
		t.Fatalf("optimal result carries no optimality witness: %+v", r1.Certificate)
	}
	if r1.Trust < cert.TierAttested {
		t.Fatalf("fresh optimal result verified only at %s", r1.Trust)
	}
	if st := s1.Stats(); st.DiskWrites != 1 || st.DiskHits != 0 || st.DiskMisses != 1 {
		t.Fatalf("after seed solve: %+v", st)
	}
	entryFile(t, dir) // exactly one persisted entry

	// "Restart": a fresh Service, empty memory LRU, same directory. The
	// request is an edge-reordered isomorph, so only the canonical
	// fingerprint — not request bytes — can find the entry.
	s2 := New(Options{CacheDir: dir})
	iso := isomorphTestHyper(t)
	r2, err := s2.Solve(ctx, iso, "")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("restarted service re-solved instead of serving the disk entry")
	}
	if r2.Makespan != 5 || !r2.Optimal {
		t.Fatalf("disk-served result: %+v", r2)
	}
	if err := core.ValidateHyperAssignment(iso, core.HyperAssignment(r2.Assignment)); err != nil {
		t.Fatalf("disk-served assignment invalid on the requester's instance: %v", err)
	}
	if m := core.HyperMakespan(iso, core.HyperAssignment(r2.Assignment)); m != 5 {
		t.Fatalf("disk-served assignment yields makespan %d, want 5", m)
	}

	// The served certificate must verify independently against the
	// requester's own instance and numbering.
	if r2.Certificate == nil {
		t.Fatal("disk-served result carries no certificate")
	}
	tier, err := cert.Verify(iso, r2.Certificate)
	if err != nil {
		t.Fatalf("disk-served certificate rejected against requester's instance: %v", err)
	}
	if tier < cert.TierAttested || r2.Trust < cert.TierAttested {
		t.Fatalf("disk-served optimal result: verify tier %s, result trust %s", tier, r2.Trust)
	}

	st := s2.Stats()
	if st.DiskHits != 1 || st.DiskWrites != 0 || st.Solves != 0 {
		t.Fatalf("after restart hit: %+v", st)
	}

	// The disk hit was promoted to the memory LRU: a repeat request is a
	// memory hit and does not touch the disk again.
	r3, err := s2.Solve(ctx, iso, "")
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Cached {
		t.Fatal("repeat request missed both cache tiers")
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.CacheHits != 1 {
		t.Fatalf("repeat request went back to disk: %+v", st)
	}
}

// TestDiskTierReapsGarbledEntries: a corrupted, truncated, or
// wrong-version entry file is skipped AND removed on the next lookup, and
// the request is answered by a correct fresh solve — corruption degrades
// to a cache miss, never to a wrong answer or a poisoned store.
func TestDiskTierReapsGarbledEntries(t *testing.T) {
	garble := map[string]func([]byte) []byte{
		"checksum-mismatch": func(data []byte) []byte {
			out := append([]byte(nil), data...)
			out[len(out)-1] ^= 0xff
			return out
		},
		"truncated": func(data []byte) []byte {
			return append([]byte(nil), data[:len(data)/3]...)
		},
		"wrong-version": func(data []byte) []byte {
			return bytes.Replace(data, []byte(diskMagic), []byte("semimatch-cache/v0"), 1)
		},
	}
	for name, fn := range garble {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			ctx := context.Background()
			s1 := New(Options{CacheDir: dir})
			r1, err := s1.Solve(ctx, testHyper(t), "EVG")
			if err != nil {
				t.Fatal(err)
			}
			path := entryFile(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, fn(data), 0o644); err != nil {
				t.Fatal(err)
			}

			s2 := New(Options{CacheDir: dir})
			r2, err := s2.Solve(ctx, testHyper(t), "EVG")
			if err != nil {
				t.Fatal(err)
			}
			if r2.Cached {
				t.Fatal("garbled entry was served")
			}
			if r2.Makespan != r1.Makespan {
				t.Fatalf("fresh solve makespan %d, original %d", r2.Makespan, r1.Makespan)
			}
			st := s2.Stats()
			if st.DiskHits != 0 || st.DiskMisses != 1 || st.DiskReaped != 1 {
				t.Fatalf("garbled entry not reaped as a miss: %+v", st)
			}
			// The fresh result was re-persisted over the reaped entry.
			if st.DiskWrites != 1 {
				t.Fatalf("fresh solve not re-persisted: %+v", st)
			}
			entryFile(t, dir)
		})
	}
}

// rewriteEntry re-encodes a tampered diskEntry with a fresh, valid
// checksum — simulating an attacker (or bit-rot plus coincidence) that
// can rewrite the file wholesale. Integrity checks pass; only the
// certificate re-verification can catch it.
func rewriteEntry(t *testing.T, path string, tamper func(*diskEntry)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rest, ok := bytes.CutPrefix(data, []byte(diskMagic+"\n"))
	if !ok {
		t.Fatal("entry missing version header")
	}
	_, payload, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok {
		t.Fatal("entry truncated")
	}
	var e diskEntry
	if err := json.Unmarshal(payload, &e); err != nil {
		t.Fatal(err)
	}
	tamper(&e)
	out, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(out)
	var buf bytes.Buffer
	buf.WriteString(diskMagic + "\n" + hex.EncodeToString(sum[:]) + "\n")
	buf.Write(out)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDiskTierRejectsTamperedEntry: an entry whose bytes are internally
// consistent but whose certificate no longer proves its claims is
// rejected by re-verification, counted in VerifyFailures, and reaped.
func TestDiskTierRejectsTamperedEntry(t *testing.T) {
	t.Run("forged-certificate", func(t *testing.T) {
		dir := t.TempDir()
		ctx := context.Background()
		s1 := New(Options{CacheDir: dir})
		if _, err := s1.Solve(ctx, testHyper(t), ""); err != nil {
			t.Fatal(err)
		}
		// Claim a makespan the assignment does not achieve.
		rewriteEntry(t, entryFile(t, dir), func(e *diskEntry) {
			e.Certificate.Makespan--
			e.Certificate.LowerBound--
		})

		s2 := New(Options{CacheDir: dir})
		r, err := s2.Solve(ctx, testHyper(t), "")
		if err != nil {
			t.Fatal(err)
		}
		if r.Cached || r.Makespan != 5 || !r.Optimal {
			t.Fatalf("tampered entry affected the answer: %+v", r)
		}
		st := s2.Stats()
		if st.VerifyFailures != 1 {
			t.Fatalf("verify_failures = %d, want 1", st.VerifyFailures)
		}
		if st.DiskHits != 0 || st.DiskReaped != 1 {
			t.Fatalf("tampered entry not reaped: %+v", st)
		}
	})

	t.Run("assignment-certificate-mismatch", func(t *testing.T) {
		dir := t.TempDir()
		ctx := context.Background()
		s1 := New(Options{CacheDir: dir})
		if _, err := s1.Solve(ctx, testHyper(t), ""); err != nil {
			t.Fatal(err)
		}
		// A valid certificate stapled to a different (worse) schedule.
		rewriteEntry(t, entryFile(t, dir), func(e *diskEntry) {
			e.Assignment = append([]int32(nil), e.Assignment...)
			e.Assignment[0]++
		})

		s2 := New(Options{CacheDir: dir})
		r, err := s2.Solve(ctx, testHyper(t), "")
		if err != nil {
			t.Fatal(err)
		}
		if r.Cached || r.Makespan != 5 {
			t.Fatalf("mismatched entry affected the answer: %+v", r)
		}
		if st := s2.Stats(); st.DiskHits != 0 || st.DiskReaped != 1 {
			t.Fatalf("mismatched entry not reaped: %+v", st)
		}
	})
}

// TestFreshVerifyFailureBarredFromCaches: a solver that lies — claiming
// optimality without a certificate that withstands verification — has its
// result degraded in place and barred from both cache tiers, and the lie
// is counted.
func TestFreshVerifyFailureBarredFromCaches(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{CacheDir: dir})
	var calls atomic.Int32
	s.solveFn = func(ctx context.Context, req *request) (*Result, error) {
		calls.Add(1)
		return &Result{
			Kind:       req.kind,
			Makespan:   1, // impossibly good
			Assignment: []int32{0, 0, 0},
			Optimal:    true, // claimed, not proven: no certificate
		}, nil
	}
	h := testHyper(t)
	for i := 0; i < 2; i++ {
		r, err := s.Solve(context.Background(), h, "SGH")
		if err != nil {
			t.Fatal(err)
		}
		if r.Cached {
			t.Fatalf("solve %d: unverified result served from cache", i)
		}
		if r.Optimal || r.Trust != cert.TierHeuristic {
			t.Fatalf("solve %d: lie not degraded: optimal=%v trust=%s", i, r.Optimal, r.Trust)
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("solver called %d times, want 2 (unverified results must not be cached)", got)
	}
	st := s.Stats()
	if st.VerifyFailures != 2 {
		t.Fatalf("verify_failures = %d, want 2", st.VerifyFailures)
	}
	if st.CacheEntries != 0 || st.DiskWrites != 0 {
		t.Fatalf("unverified result reached a cache tier: %+v", st)
	}
	if names, _ := filepath.Glob(filepath.Join(dir, "*.entry")); len(names) != 0 {
		t.Fatalf("unverified result persisted: %v", names)
	}
}
