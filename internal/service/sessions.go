package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"semimatch/internal/solve"
	"semimatch/internal/telemetry"
)

// Session accounting. The dynamic-session layer (cmd/semiserve) owns the
// sessions themselves; the service only hosts their shared admission
// control, the ledger, the trace sink and the metric counters, so one
// /metrics scrape and one ledger file cover both request traffic and
// session traffic.

// AcquireSolveSlot claims one admission slot and one run slot for a solve
// the service does not dispatch itself — a dynamic session's per-event
// re-solve. It fails fast with ErrOverloaded when the queue is full and
// waits for a run slot otherwise, exactly like an admitted /solve
// request, so session re-solves share the same capacity instead of
// sidestepping it. The returned release frees both slots; calling it more
// than once is safe.
func (s *Service) AcquireSolveSlot(ctx context.Context) (func(), error) {
	select {
	case s.queue <- struct{}{}:
	default:
		s.overloaded.Add(1)
		return nil, ErrOverloaded
	}
	s.inFlight.Add(1)
	waitStart := time.Now()
	select {
	case s.workers <- struct{}{}:
	case <-ctx.Done():
		s.inFlight.Add(-1)
		<-s.queue
		return nil, fmt.Errorf("service: abandoned in queue: %w", ctx.Err())
	}
	s.queueWait.Observe(time.Since(waitStart).Seconds())
	var once sync.Once
	return func() {
		once.Do(func() {
			<-s.workers
			s.inFlight.Add(-1)
			<-s.queue
		})
	}, nil
}

// SessionOpened accounts one session creation.
func (s *Service) SessionOpened() {
	s.sessionsTotal.Add(1)
	s.sessionsOpen.Add(1)
}

// SessionClosed accounts one session teardown; evicted distinguishes
// idle eviction from an explicit close.
func (s *Service) SessionClosed(evicted bool) {
	s.sessionsOpen.Add(-1)
	if evicted {
		s.sessionsEvicted.Add(1)
	}
}

// SessionEvent accounts one applied session event: whether the re-solved
// schedule was adopted over the online patch, and whether admission
// control skipped the re-solve.
func (s *Service) SessionEvent(adopted, overloaded bool) {
	s.sessionEvents.Add(1)
	if adopted {
		s.sessionAdopted.Add(1)
	}
	if overloaded {
		s.sessionOverloaded.Add(1)
	}
}

// RecordSessionSolve accounts one session re-solve's Report: its nodes
// join semimatch_search_nodes_total, and the solve ledger (when attached)
// gains a source:"session" record keyed by the session id instead of a
// content fingerprint — session instances mutate every event, so a
// content hash would never repeat anyway.
func (s *Service) RecordSessionSolve(sessionID string, p solve.Problem, rep *solve.Report) {
	if rep == nil {
		return
	}
	s.searchNodes.Add(uint64(rep.Stats.Nodes))
	if s.ledger == nil {
		return
	}
	rec := solve.NewLedgerRecord("session", sessionID, p, rep)
	if err := s.ledger.Append(rec); err != nil {
		s.ledgerErrors.Add(1)
	}
}

// TraceSessionEvent emits one "session-event" span tree — the event's
// re-solve trace adopted underneath — to the configured TraceWriter;
// no-op without one. The outcome attribute records how the event was
// answered ("adopted", "patched", "overloaded", ...).
func (s *Service) TraceSessionEvent(sessionID, op string, seq int64, outcome string, solveTrace *telemetry.Span) {
	if s.traceW == nil {
		return
	}
	rs := telemetry.StartSpan("session-event")
	rs.SetAttr("session", sessionID)
	rs.SetAttr("op", op)
	rs.SetAttr("seq", seq)
	rs.Adopt(solveTrace)
	s.emitTrace(rs, outcome)
}
