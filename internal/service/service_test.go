package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"semimatch/internal/batch"
	"semimatch/internal/core"
	"semimatch/internal/gen"
	"semimatch/internal/hypergraph"
)

// testHyper is a small MULTIPROC instance with a known optimal makespan
// of 5: task 0 on {p0,p1} for 3, task 1 on p2 for 3, task 2 on p1 for 2.
func testHyper(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(3, 3)
	b.AddEdge(0, []int{0, 1}, 3)
	b.AddEdge(0, []int{0}, 8)
	b.AddEdge(1, []int{2}, 3)
	b.AddEdge(2, []int{1}, 2)
	b.AddEdge(2, []int{0, 2}, 5)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// isomorphTestHyper is testHyper with configurations inserted in a
// different order — same canonical form, different hyperedge numbering.
func isomorphTestHyper(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(3, 3)
	b.AddEdge(0, []int{0}, 8)
	b.AddEdge(0, []int{1, 0}, 3)
	b.AddEdge(1, []int{2}, 3)
	b.AddEdge(2, []int{2, 0}, 5)
	b.AddEdge(2, []int{1}, 2)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestServiceSolveAndCacheHit(t *testing.T) {
	s := New(Options{})
	h := testHyper(t)
	r1, err := s.Solve(context.Background(), h, "EVG")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first solve reported cached")
	}
	if r1.Kind != "hypergraph" || r1.Algorithm != "EVG" || r1.Fingerprint == "" {
		t.Fatalf("bad result metadata: %+v", r1)
	}
	if err := core.ValidateHyperAssignment(h, core.HyperAssignment(r1.Assignment)); err != nil {
		t.Fatalf("returned assignment invalid on the original instance: %v", err)
	}
	if m := core.HyperMakespan(h, core.HyperAssignment(r1.Assignment)); m != r1.Makespan {
		t.Fatalf("reported makespan %d, assignment yields %d", r1.Makespan, m)
	}

	r2, err := s.Solve(context.Background(), h, "evg") // alias, same key
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("second identical request missed the cache")
	}
	if r2.Makespan != r1.Makespan {
		t.Fatalf("cache served a different makespan: %d vs %d", r2.Makespan, r1.Makespan)
	}
	st := s.Stats()
	if st.Solves != 1 || st.CacheHits != 1 {
		t.Fatalf("solves=%d hits=%d, want 1/1", st.Solves, st.CacheHits)
	}
}

// TestServiceIsomorphHit: an isomorphic instance (different configuration
// order) hits the cache, and the served assignment is valid in the *new*
// requester's own hyperedge numbering.
func TestServiceIsomorphHit(t *testing.T) {
	s := New(Options{})
	h1, h2 := testHyper(t), isomorphTestHyper(t)
	r1, err := s.Solve(context.Background(), h1, "SGH")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Solve(context.Background(), h2, "SGH")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("isomorphic instance missed the cache")
	}
	if r1.Fingerprint != r2.Fingerprint {
		t.Fatal("isomorphic instances fingerprint differently")
	}
	a2 := core.HyperAssignment(r2.Assignment)
	if err := core.ValidateHyperAssignment(h2, a2); err != nil {
		t.Fatalf("cache-served assignment invalid for the isomorph: %v", err)
	}
	if m := core.HyperMakespan(h2, a2); m != r1.Makespan {
		t.Fatalf("isomorph makespan %d, want %d", m, r1.Makespan)
	}
}

func TestServiceAutoPolicies(t *testing.T) {
	s := New(Options{})
	h := testHyper(t)
	r, err := s.Solve(context.Background(), h, "")
	if err != nil {
		t.Fatal(err)
	}
	// The instance is tiny, so the batch policy's exact stage proves
	// optimality.
	if !r.Optimal {
		t.Fatalf("auto policy did not prove optimality on a 3-task instance: %+v", r)
	}
	if r.Makespan != 5 {
		t.Fatalf("optimal makespan %d, want 5", r.Makespan)
	}

	// Bipartite auto on a unit instance resolves to the polynomial exact
	// solver.
	g, err := gen.Bipartite(gen.FewgManyg, 30, 8, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := s.Solve(context.Background(), g, "")
	if err != nil {
		t.Fatal(err)
	}
	if rb.Kind != "bipartite" || rb.Algorithm != "ExactUnit" || !rb.Optimal {
		t.Fatalf("bipartite auto: %+v", rb)
	}
	if err := core.ValidateAssignment(g, core.Assignment(rb.Assignment)); err != nil {
		t.Fatal(err)
	}
}

// TestServiceBadBatchOptions: a misconfigured auto policy (unknown
// portfolio member) surfaces as an error, not a panic.
func TestServiceBadBatchOptions(t *testing.T) {
	s := New(Options{Batch: batch.Options{Algorithms: []string{"no-such-member"}}})
	_, err := s.Solve(context.Background(), testHyper(t), "")
	if err == nil || !strings.Contains(err.Error(), "no-such-member") {
		t.Fatalf("err = %v, want unknown-member error", err)
	}
	// Named algorithms bypass the batch policy and still work.
	if _, err := s.Solve(context.Background(), testHyper(t), "SGH"); err != nil {
		t.Fatal(err)
	}
}

func TestServiceUnknownAlgorithm(t *testing.T) {
	s := New(Options{})
	_, err := s.Solve(context.Background(), testHyper(t), "no-such-solver")
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
	_, err = s.Solve(context.Background(), 42, "")
	if !errors.Is(err, ErrBadInstance) {
		t.Fatalf("err = %v, want ErrBadInstance", err)
	}
}

// TestServiceSingleFlight: N concurrent requests for the same instance
// trigger exactly one solve; the rest coalesce onto it.
func TestServiceSingleFlight(t *testing.T) {
	s := New(Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	s.solveFn = func(ctx context.Context, req *request) (*Result, error) {
		close(started)
		<-release
		return &Result{Kind: req.kind, Fingerprint: req.fp, Algorithm: req.alg, Makespan: 42}, nil
	}
	h := testHyper(t)

	const followers = 7
	var wg sync.WaitGroup
	results := make([]*Result, followers+1)
	errs := make([]error, followers+1)
	wg.Add(1)
	go func() { defer wg.Done(); results[0], errs[0] = s.Solve(context.Background(), h, "SGH") }()
	<-started // leader is inside the solve
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); results[i], errs[i] = s.Solve(context.Background(), h, "SGH") }(i)
	}
	// Wait until every follower is parked on the flight, then release.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Coalesced < followers {
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
		if results[i].Makespan != 42 {
			t.Fatalf("request %d got makespan %d", i, results[i].Makespan)
		}
	}
	st := s.Stats()
	if st.Solves != 1 {
		t.Fatalf("solves = %d, want 1 (single flight)", st.Solves)
	}
	if st.Coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, followers)
	}
}

// TestServiceFollowerSurvivesLeaderCancel: when the single-flight leader
// dies with its own context error, a coalesced follower whose context is
// still alive retries (and becomes the new leader) instead of inheriting
// the failure.
func TestServiceFollowerSurvivesLeaderCancel(t *testing.T) {
	s := New(Options{})
	var calls atomic.Int32
	leaderIn := make(chan struct{})
	s.solveFn = func(ctx context.Context, req *request) (*Result, error) {
		if calls.Add(1) == 1 {
			close(leaderIn)
			<-ctx.Done()
			return nil, fmt.Errorf("service: leader died: %w", ctx.Err())
		}
		return &Result{Kind: req.kind, Makespan: 7}, nil
	}
	h := testHyper(t)

	lctx, lcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var leaderErr error
	wg.Add(1)
	go func() { defer wg.Done(); _, leaderErr = s.Solve(lctx, h, "SGH") }()
	<-leaderIn

	var fres *Result
	var ferr error
	wg.Add(1)
	go func() { defer wg.Done(); fres, ferr = s.Solve(context.Background(), h, "SGH") }()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Coalesced < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	lcancel()
	wg.Wait()

	if !errors.Is(leaderErr, context.Canceled) {
		t.Fatalf("leader err = %v, want its own cancellation", leaderErr)
	}
	if ferr != nil {
		t.Fatalf("follower inherited the leader's failure: %v", ferr)
	}
	if fres.Makespan != 7 {
		t.Fatalf("follower result: %+v", fres)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("solve calls = %d, want 2 (leader + follower retry)", got)
	}
}

// TestServiceOverload: with a single admission slot occupied, a request
// for a different instance is rejected with ErrOverloaded.
func TestServiceOverload(t *testing.T) {
	s := New(Options{QueueDepth: 1, Workers: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	s.solveFn = func(ctx context.Context, req *request) (*Result, error) {
		close(started)
		<-release
		return &Result{Makespan: 1}, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); s.Solve(context.Background(), testHyper(t), "SGH") }()
	<-started

	g, err := gen.Bipartite(gen.HiLo, 10, 4, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Solve(context.Background(), g, "basic")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.Overloaded != 1 || st.InFlight != 1 {
		close(release)
		wg.Wait()
		t.Fatalf("overloaded=%d inFlight=%d, want 1/1", st.Overloaded, st.InFlight)
	}
	close(release)
	wg.Wait()
}

// TestServicePanicIsolated: a panicking solver becomes that request's
// error, the flight is torn down (no stranded followers), and the same
// key solves fine afterwards.
func TestServicePanicIsolated(t *testing.T) {
	s := New(Options{})
	first := true
	s.solveFn = func(ctx context.Context, req *request) (*Result, error) {
		if first {
			first = false
			panic("solver exploded")
		}
		return &Result{Kind: req.kind, Makespan: 4}, nil
	}
	h := testHyper(t)
	_, err := s.Solve(context.Background(), h, "SGH")
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want a panic-derived error", err)
	}
	r, err := s.Solve(context.Background(), h, "SGH")
	if err != nil || r.Makespan != 4 {
		t.Fatalf("key unusable after a panic: %v, %+v", err, r)
	}
	if st := s.Stats(); st.SolveErrors != 1 || st.Solves != 2 || st.InFlight != 0 {
		t.Fatalf("stats after panic: %+v", st)
	}
}

// TestServiceTruncatedNotCached: deadline-truncated results are returned
// but never stored.
func TestServiceTruncatedNotCached(t *testing.T) {
	s := New(Options{})
	solves := 0
	s.solveFn = func(ctx context.Context, req *request) (*Result, error) {
		solves++
		return &Result{Kind: req.kind, Makespan: 9, Truncated: true}, nil
	}
	h := testHyper(t)
	for i := 0; i < 2; i++ {
		r, err := s.Solve(context.Background(), h, "SGH")
		if err != nil {
			t.Fatal(err)
		}
		if !r.Truncated || r.Cached {
			t.Fatalf("solve %d: %+v", i, r)
		}
	}
	if solves != 2 {
		t.Fatalf("solves = %d, want 2 (truncated results must not be cached)", solves)
	}
	if st := s.Stats(); st.Truncated != 2 || st.CacheEntries != 0 {
		t.Fatalf("truncated=%d entries=%d, want 2/0", st.Truncated, st.CacheEntries)
	}
}

// TestServiceDeadlineTruncation drives the real branch-and-bound under a
// deadline it cannot meet: the service must return the incumbent flagged
// Truncated instead of failing.
func TestServiceDeadlineTruncation(t *testing.T) {
	s := New(Options{})
	h, err := gen.Hypergraph(gen.HyperParams{
		Gen: gen.FewgManyg, N: 60, P: 16, Dv: 4, Dh: 3, G: 4,
		Weights: gen.Random, MaxW: 100,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	r, err := s.Solve(ctx, h, "bnb")
	if err != nil {
		t.Fatalf("deadline-bounded bnb failed instead of degrading: %v", err)
	}
	if !r.Truncated {
		t.Fatal("60-task branch and bound finished in 50ms?")
	}
	if err := core.ValidateHyperAssignment(h, core.HyperAssignment(r.Assignment)); err != nil {
		t.Fatalf("incumbent invalid: %v", err)
	}
	// The truncated incumbent must not be served to a fresh request.
	if st := s.Stats(); st.CacheEntries != 0 {
		t.Fatalf("truncated result was cached: %+v", st)
	}
}

// TestServiceConcurrentStress exercises the full path — canonicalization,
// cache, single-flight, admission — from many goroutines over a few
// instances. Run with -race in CI.
func TestServiceConcurrentStress(t *testing.T) {
	s := New(Options{CacheEntries: 8, CacheShards: 2, QueueDepth: 32})
	instances := []*hypergraph.Hypergraph{testHyper(t), isomorphTestHyper(t)}
	for seed := int64(0); seed < 3; seed++ {
		h, err := gen.Hypergraph(gen.HyperParams{
			Gen: gen.FewgManyg, N: 12, P: 4, Dv: 2, Dh: 2, G: 2,
			Weights: gen.Unit,
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, h)
	}
	algs := []string{"", "SGH", "EVG", "vgh"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				h := instances[(w+i)%len(instances)]
				alg := algs[(w*7+i)%len(algs)]
				r, err := s.Solve(context.Background(), h, alg)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if err := core.ValidateHyperAssignment(h, core.HyperAssignment(r.Assignment)); err != nil {
					t.Errorf("worker %d: invalid assignment: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Requests != 8*30 {
		t.Fatalf("requests = %d, want %d", st.Requests, 8*30)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight leak: %d", st.InFlight)
	}
}

func TestBudgetClass(t *testing.T) {
	if got := budgetClass(context.Background()); got != "inf" {
		t.Fatalf("no deadline: %q", got)
	}
	cases := []struct {
		d    time.Duration
		want string
	}{
		{50 * time.Millisecond, "le100ms"},
		{400 * time.Millisecond, "le500ms"},
		{1500 * time.Millisecond, "le2s"},
		{9 * time.Second, "le10s"},
		{time.Minute, "gt10s"},
	}
	for _, c := range cases {
		ctx, cancel := context.WithTimeout(context.Background(), c.d)
		if got := budgetClass(ctx); got != c.want {
			t.Errorf("budgetClass(%v) = %q, want %q", c.d, got, c.want)
		}
		cancel()
	}
}
