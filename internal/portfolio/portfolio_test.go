package portfolio

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
)

func randomHyper(rng *rand.Rand, nTasks, nProcs, maxDeg, maxSize int, maxW int64) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(nTasks, nProcs)
	for t := 0; t < nTasks; t++ {
		d := 1 + rng.Intn(maxDeg)
		for j := 0; j < d; j++ {
			size := 1 + rng.Intn(maxSize)
			if size > nProcs {
				size = nProcs
			}
			w := int64(1)
			if maxW > 1 {
				w = 1 + rng.Int63n(maxW)
			}
			b.AddEdge(t, rng.Perm(nProcs)[:size], w)
		}
	}
	return b.MustBuild()
}

func TestPortfolioAtLeastAsGoodAsEveryMember(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHyper(rng, 1+rng.Intn(40), 2+rng.Intn(8), 4, 4, 9)
		res := Solve(h, Options{})
		if core.ValidateHyperAssignment(h, res.Assignment) != nil {
			return false
		}
		if res.Makespan != core.HyperMakespan(h, res.Assignment) {
			return false
		}
		for _, name := range DefaultAlgorithms {
			if res.Makespan > res.Makespans[name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPortfolioDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomHyper(rng, 50, 8, 4, 4, 9)
	r1 := Solve(h, Options{Workers: 1})
	r4 := Solve(h, Options{Workers: 4})
	if r1.Winner != r4.Winner || !reflect.DeepEqual(r1.Assignment, r4.Assignment) {
		t.Fatalf("winner %q (1 worker) vs %q (4 workers)", r1.Winner, r4.Winner)
	}
}

func TestPortfolioRefineNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		h := randomHyper(rng, 40, 6, 4, 3, 9)
		plain := Solve(h, Options{})
		refined := Solve(h, Options{Refine: true})
		if refined.Makespan > plain.Makespan {
			t.Fatalf("trial %d: refined %d worse than plain %d", trial, refined.Makespan, plain.Makespan)
		}
	}
}

func TestPortfolioSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randomHyper(rng, 30, 6, 3, 3, 5)
	res := Solve(h, Options{Algorithms: []string{"SGH"}})
	if res.Winner != "SGH" {
		t.Fatalf("winner = %q", res.Winner)
	}
	want := core.HyperMakespan(h, core.SortedGreedyHyp(h, core.HyperOptions{}))
	if res.Makespan != want {
		t.Fatalf("makespan %d, want %d", res.Makespan, want)
	}
	if len(res.Makespans) != 1 {
		t.Fatalf("league table %v", res.Makespans)
	}
}

func TestPortfolioTieBreaksByOrder(t *testing.T) {
	// A forced instance: every algorithm produces the same (only)
	// schedule; the first portfolio member must win.
	b := hypergraph.NewBuilder(2, 2)
	b.AddEdge(0, []int{0}, 3)
	b.AddEdge(1, []int{1}, 3)
	h := b.MustBuild()
	res := Solve(h, Options{})
	if res.Winner != "SGH" {
		t.Fatalf("tie should go to the first member, got %q", res.Winner)
	}
}

func BenchmarkPortfolio(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := randomHyper(rng, 5120, 256, 5, 10, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(h, Options{})
	}
}
