package portfolio

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
)

func randomHyper(rng *rand.Rand, nTasks, nProcs, maxDeg, maxSize int, maxW int64) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(nTasks, nProcs)
	for t := 0; t < nTasks; t++ {
		d := 1 + rng.Intn(maxDeg)
		for j := 0; j < d; j++ {
			size := 1 + rng.Intn(maxSize)
			if size > nProcs {
				size = nProcs
			}
			w := int64(1)
			if maxW > 1 {
				w = 1 + rng.Int63n(maxW)
			}
			b.AddEdge(t, rng.Perm(nProcs)[:size], w)
		}
	}
	return b.MustBuild()
}

func TestPortfolioAtLeastAsGoodAsEveryMember(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHyper(rng, 1+rng.Intn(40), 2+rng.Intn(8), 4, 4, 9)
		res, err := Solve(h, Options{})
		if err != nil {
			return false
		}
		if core.ValidateHyperAssignment(h, res.Assignment) != nil {
			return false
		}
		if res.Makespan != core.HyperMakespan(h, res.Assignment) {
			return false
		}
		for _, name := range DefaultAlgorithms {
			if res.Makespan > res.Makespans[name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPortfolioDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomHyper(rng, 50, 8, 4, 4, 9)
	r1, err1 := Solve(h, Options{Workers: 1})
	r4, err4 := Solve(h, Options{Workers: 4})
	if err1 != nil || err4 != nil {
		t.Fatal(err1, err4)
	}
	if r1.Winner != r4.Winner || !reflect.DeepEqual(r1.Assignment, r4.Assignment) {
		t.Fatalf("winner %q (1 worker) vs %q (4 workers)", r1.Winner, r4.Winner)
	}
}

func TestPortfolioRefineNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		h := randomHyper(rng, 40, 6, 4, 3, 9)
		plain, err := Solve(h, Options{})
		if err != nil {
			t.Fatal(err)
		}
		refined, err := Solve(h, Options{Refine: true})
		if err != nil {
			t.Fatal(err)
		}
		if refined.Makespan > plain.Makespan {
			t.Fatalf("trial %d: refined %d worse than plain %d", trial, refined.Makespan, plain.Makespan)
		}
	}
}

func TestPortfolioSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randomHyper(rng, 30, 6, 3, 3, 5)
	res, err := Solve(h, Options{Algorithms: []string{"SGH"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "SGH" {
		t.Fatalf("winner = %q", res.Winner)
	}
	want := core.HyperMakespan(h, core.SortedGreedyHyp(h, core.HyperOptions{}))
	if res.Makespan != want {
		t.Fatalf("makespan %d, want %d", res.Makespan, want)
	}
	if len(res.Makespans) != 1 {
		t.Fatalf("league table %v", res.Makespans)
	}
}

func TestPortfolioTieBreaksByOrder(t *testing.T) {
	// A forced instance: every algorithm produces the same (only)
	// schedule; the first portfolio member must win.
	b := hypergraph.NewBuilder(2, 2)
	b.AddEdge(0, []int{0}, 3)
	b.AddEdge(1, []int{1}, 3)
	h := b.MustBuild()
	res, err := Solve(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "SGH" {
		t.Fatalf("tie should go to the first member, got %q", res.Winner)
	}
}

func BenchmarkPortfolio(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := randomHyper(rng, 5120, 256, 5, 10, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(h, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPortfolioUnknownAlgorithmIsError(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := randomHyper(rng, 10, 4, 3, 3, 5)
	_, err := Solve(h, Options{Algorithms: []string{"SGH", "bogus"}})
	if err == nil {
		t.Fatal("unknown algorithm must be an error, not a panic")
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error should name the offender: %v", err)
	}
}

func TestPortfolioCtxExpiredBeforeAnyMember(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	h := randomHyper(rng, 10, 4, 3, 3, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// With a pre-cancelled context the race may still collect members that
	// finish between launch and the first select; both outcomes are legal,
	// but an error must wrap ctx.Err() and a result must be valid.
	res, err := SolveCtx(ctx, h, Options{})
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
		return
	}
	if core.ValidateHyperAssignment(h, res.Assignment) != nil {
		t.Fatal("invalid assignment from truncated race")
	}
}

func TestPortfolioCtxDeadlineReturnsBestSoFar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := randomHyper(rng, 2000, 64, 5, 6, 50)
	// A deadline long enough for the fast greedies but typically too short
	// for every member to refine a 2000-task instance.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := SolveCtx(ctx, h, Options{Refine: true})
	if err != nil {
		// All members timed out before producing anything: acceptable on a
		// very slow machine, but the error must carry the deadline cause.
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v", err)
		}
		return
	}
	if err := core.ValidateHyperAssignment(h, res.Assignment); err != nil {
		t.Fatal(err)
	}
	if res.Makespan != core.HyperMakespan(h, res.Assignment) {
		t.Fatal("reported makespan mismatch")
	}
	if len(res.Makespans) < len(DefaultAlgorithms) && !res.Incomplete {
		t.Fatal("truncated league table must set Incomplete")
	}
}

func TestPortfolioCtxBackgroundComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	h := randomHyper(rng, 50, 8, 4, 4, 9)
	res, err := SolveCtx(context.Background(), h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete || len(res.Makespans) != len(DefaultAlgorithms) {
		t.Fatalf("background run must be complete: %+v", res)
	}
}

// An exact member that exhausts its node budget still contributes its
// incumbent as a candidate instead of landing in MemberErrs.
func TestExactMemberKeepsIncumbent(t *testing.T) {
	// 26 single-processor configurations per task with large distinct
	// weights: 3^26 leaves and weak pruning guarantee the budget trips.
	b := hypergraph.NewBuilder(26, 3)
	for task := 0; task < 26; task++ {
		for p := 0; p < 3; p++ {
			b.AddEdge(task, []int{p}, int64(1000+37*task+p))
		}
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(h, Options{Algorithms: []string{"SGH", "exact"}})
	if err != nil {
		t.Fatalf("portfolio must keep the exact incumbent: %v", err)
	}
	if len(res.MemberErrs) != 0 {
		t.Fatalf("budget truncation is not a member failure: %v", res.MemberErrs)
	}
	// Drafting "exact" executes the parallel engine under the hood
	// (registry.Preferred), but the league table stays keyed by the
	// drafted member's canonical name.
	if _, ok := res.Makespans["BnB-MP"]; !ok {
		t.Fatalf("exact member missing from the league table: %v", res.Makespans)
	}
	if res.Makespans["BnB-MP"] > res.Makespans["SGH"] {
		t.Fatalf("B&B seeds from sorted greedy, incumbent can't be worse: %v", res.Makespans)
	}
}
