// Package portfolio runs several MULTIPROC heuristics concurrently and
// returns the best schedule found. Since no single greedy dominates — the
// paper's evaluation shows VGH winning on unweighted FewgManyg instances
// but EVG on weighted ones, with ties on HiLo — a portfolio is the
// practical "just give me a good schedule" entry point, and the goroutine
// fan-out uses the cores a single greedy leaves idle.
//
// Optionally every candidate is post-processed with local search
// (refine.Refine) before judging, which only ever improves results.
package portfolio

import (
	"runtime"
	"sync"

	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
	"semimatch/internal/loadvec"
	"semimatch/internal/refine"
)

// Options configures a portfolio run.
type Options struct {
	// Algorithms restricts the portfolio; nil means all four heuristics.
	Algorithms []string
	// Refine post-processes every candidate with local search.
	Refine bool
	// Workers bounds concurrency; 0 means GOMAXPROCS.
	Workers int
}

// DefaultAlgorithms is the full portfolio in deterministic tie-break
// order: when two members produce equally good schedules the earlier name
// wins, so results are reproducible regardless of goroutine timing.
var DefaultAlgorithms = []string{"SGH", "VGH", "EGH", "EVG"}

// Result is the winning schedule and the league table.
type Result struct {
	Assignment core.HyperAssignment
	Winner     string
	Makespan   int64
	// Makespans per portfolio member (after refinement if enabled).
	Makespans map[string]int64
}

func run(name string, h *hypergraph.Hypergraph) core.HyperAssignment {
	switch name {
	case "SGH":
		return core.SortedGreedyHyp(h, core.HyperOptions{})
	case "VGH":
		return core.VectorGreedyHyp(h, core.HyperOptions{})
	case "EGH":
		return core.ExpectedGreedyHyp(h, core.HyperOptions{})
	case "EVG":
		return core.ExpectedVectorGreedyHyp(h, core.HyperOptions{})
	default:
		panic("portfolio: unknown algorithm " + name)
	}
}

// Solve runs the portfolio on h and returns the best schedule. Ties are
// broken lexicographically by full descending load vector first (a
// schedule with the same makespan but better-balanced tail wins), then by
// portfolio order.
func Solve(h *hypergraph.Hypergraph, opts Options) Result {
	algs := opts.Algorithms
	if len(algs) == 0 {
		algs = DefaultAlgorithms
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(algs) {
		workers = len(algs)
	}

	type cand struct {
		name string
		a    core.HyperAssignment
		vec  []int64
		m    int64
	}
	cands := make([]cand, len(algs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, name := range algs {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			a := run(name, h)
			if opts.Refine {
				a = refine.Refine(h, a, refine.Options{}).Assignment
			}
			vec := loadvec.SortedDesc(core.HyperLoads(h, a))
			m := int64(0)
			if len(vec) > 0 {
				m = vec[0]
			}
			cands[i] = cand{name: name, a: a, vec: vec, m: m}
		}(i, name)
	}
	wg.Wait()

	best := 0
	for i := 1; i < len(cands); i++ {
		if loadvec.CompareVec(cands[i].vec, cands[best].vec) < 0 {
			best = i
		}
	}
	res := Result{
		Assignment: cands[best].a,
		Winner:     cands[best].name,
		Makespan:   cands[best].m,
		Makespans:  make(map[string]int64, len(cands)),
	}
	for _, c := range cands {
		res.Makespans[c.name] = c.m
	}
	return res
}
