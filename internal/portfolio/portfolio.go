// Package portfolio runs several MULTIPROC heuristics concurrently and
// returns the best schedule found. Since no single greedy dominates — the
// paper's evaluation shows VGH winning on unweighted FewgManyg instances
// but EVG on weighted ones, with ties on HiLo — a portfolio is the
// practical "just give me a good schedule" entry point, and the goroutine
// fan-out uses the cores a single greedy leaves idle.
//
// Optionally every candidate is post-processed with local search
// (refine.Refine) before judging, which only ever improves results.
//
// SolveCtx races the members against a context: when the deadline expires
// the portfolio stops waiting and judges whichever candidates have
// finished, so callers get the best schedule computable within their time
// budget rather than an all-or-nothing answer.
//
// Member names resolve through the solver registry (internal/registry):
// any registered MULTIPROC solver — aliases included — can be drafted into
// the portfolio, and the default lineup is the registry's heuristic
// catalog.
package portfolio

import (
	"context"
	"fmt"
	"runtime"

	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
	"semimatch/internal/loadvec"
	"semimatch/internal/refine"
	"semimatch/internal/registry"
)

// Options configures a portfolio run.
type Options struct {
	// Algorithms restricts the portfolio; nil means the registry's default
	// MULTIPROC heuristic lineup. Names resolve through the solver
	// registry (aliases work); unknown names make Solve return an error.
	Algorithms []string
	// Refine post-processes every candidate with local search.
	Refine bool
	// Workers bounds concurrency; 0 means GOMAXPROCS.
	Workers int
	// Observer, when non-nil, receives each member's completed candidate
	// (after refinement) as it arrives: the member's canonical name, its
	// makespan, and its assignment. Calls come from the collector
	// goroutine, one at a time, in completion order (nondeterministic);
	// the assignment is shared with the eventual Result — treat it as
	// read-only. The callback must not panic (wrap it if it may).
	Observer func(member string, makespan int64, a core.HyperAssignment)
}

// DefaultAlgorithms is the full default portfolio — the registry's
// MULTIPROC heuristic lineup — in deterministic tie-break order: when two
// members produce equally good schedules the earlier name wins, so results
// are reproducible regardless of goroutine timing.
var DefaultAlgorithms = registry.Names(registry.Heuristics(registry.MultiProc))

// Result is the winning schedule and the league table.
type Result struct {
	Assignment core.HyperAssignment
	Winner     string
	Makespan   int64
	// Makespans per portfolio member (after refinement if enabled). On a
	// deadline-bounded run only members that finished in time appear, so
	// len(Makespans) < len(algorithms) signals a truncated race.
	Makespans map[string]int64
	// Incomplete reports that the context ended the race before every
	// member reported; the result is the best of the members that did.
	Incomplete bool
	// MemberErrs records members that crashed (recovered panics) instead
	// of producing a candidate; nil when none did. A crashed member does
	// not make the result Incomplete.
	MemberErrs map[string]error
}

func run(ctx context.Context, sol *registry.Solver, h *hypergraph.Hypergraph, doRefine bool) (core.HyperAssignment, error) {
	// Members already race on their own goroutines, so a parallel member
	// gets one internal worker: the portfolio's concurrency budget is
	// spent across members, not inside one.
	a, err := sol.SolveHyper(ctx, h, registry.Options{Workers: 1})
	if err != nil {
		// An exact member that runs out of budget still hands back its
		// incumbent — a valid schedule, just not provably optimal — and a
		// portfolio judges schedules, not proofs: keep it as a candidate.
		if a == nil || !registry.IncumbentError(err) {
			return nil, err
		}
	}
	if doRefine {
		a = refine.RefineCtx(ctx, h, a, refine.Options{}).Assignment
	}
	return a, nil
}

// resolve maps member names to registry solvers (canonical names out),
// erroring on the first unknown name. An empty list means the full
// default portfolio. Members with a registered parallel counterpart
// execute through it (registry.Preferred): a portfolio judges schedules,
// and the parallel variant finds the same optimal makespan with better
// wall-clock behaviour, so drafting "BnB-MP" runs the BnB-MP-Par engine
// under the hood. Reported names (Winner, Makespans keys) stay the
// drafted members' canonical names, so name-keyed callers are
// unaffected by the upgrade.
func resolve(algs []string) ([]string, []*registry.Solver, error) {
	names, solvers, err := registry.ResolveClass(registry.MultiProc, algs, DefaultAlgorithms)
	if err != nil {
		return nil, nil, fmt.Errorf("portfolio: %w", err)
	}
	for i, s := range solvers {
		solvers[i] = registry.Preferred(s)
	}
	return names, solvers, nil
}

// ValidateAlgorithms rejects unknown member names up front so a bad
// Options value is an error, not a crash deep inside a worker goroutine.
// An empty list is valid and means the full default portfolio.
func ValidateAlgorithms(algs []string) error {
	_, _, err := resolve(algs)
	return err
}

// Solve runs the portfolio on h and returns the best schedule. Ties are
// broken lexicographically by full descending load vector first (a
// schedule with the same makespan but better-balanced tail wins), then by
// portfolio order. Unknown algorithm names in opts yield an error.
func Solve(h *hypergraph.Hypergraph, opts Options) (Result, error) {
	return SolveCtx(context.Background(), h, opts)
}

// SolveCtx is Solve racing a context: members run concurrently and, if ctx
// is cancelled or its deadline expires before all of them finish, the best
// candidate finished so far is returned with Result.Incomplete set. Queued
// members never start after cancellation and the refinement stage observes
// ctx; a heuristic already in flight runs to completion in the background
// (the greedies themselves are not interruptible) but its result is simply
// discarded. Only when the context expires before any member has produced
// a candidate does SolveCtx give up and return ctx's error.
func SolveCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (Result, error) {
	algs, solvers, err := resolve(opts.Algorithms)
	if err != nil {
		return Result{}, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(algs) {
		workers = len(algs)
	}

	type cand struct {
		idx  int
		name string
		a    core.HyperAssignment
		vec  []int64
		m    int64
		err  error
	}
	ch := make(chan cand, len(algs))
	sem := make(chan struct{}, workers)
	for i, name := range algs {
		go func(i int, name string) {
			// Don't start work the caller has already given up on: a
			// queued member whose turn comes after cancellation bails out
			// (no send needed — the collector exits via ctx.Done).
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			// A malformed instance can blow up deep inside a heuristic;
			// contain it to this member so the others still race.
			defer func() {
				if p := recover(); p != nil {
					ch <- cand{idx: i, name: name, err: fmt.Errorf("portfolio: %s panicked: %v", name, p)}
				}
			}()
			a, err := run(ctx, solvers[i], h, opts.Refine)
			if err != nil {
				ch <- cand{idx: i, name: name, err: fmt.Errorf("portfolio: %s: %w", name, err)}
				return
			}
			vec := loadvec.SortedDesc(core.HyperLoads(h, a))
			m := int64(0)
			if len(vec) > 0 {
				m = vec[0]
			}
			ch <- cand{idx: i, name: name, a: a, vec: vec, m: m}
		}(i, name)
	}

	cands := make([]cand, 0, len(algs))
	var memberErrs map[string]error
	var firstErr error
	addErr := func(c cand) {
		if memberErrs == nil {
			memberErrs = make(map[string]error)
		}
		memberErrs[c.name] = c.err
		if firstErr == nil {
			firstErr = c.err
		}
	}
	accept := func(c cand) {
		if c.err != nil {
			addErr(c)
			return
		}
		cands = append(cands, c)
		if opts.Observer != nil {
			opts.Observer(c.name, c.m, c.a)
		}
	}
	received := 0
	done := ctx.Done()
collect:
	for received < len(algs) {
		select {
		case c := <-ch:
			received++
			accept(c)
		case <-done:
			// Deadline: drain whatever is already buffered, then judge.
			for {
				select {
				case c := <-ch:
					received++
					accept(c)
				default:
					break collect
				}
			}
		}
	}

	if len(cands) == 0 {
		if firstErr != nil {
			return Result{}, fmt.Errorf("portfolio: no member finished: %w", firstErr)
		}
		return Result{}, fmt.Errorf("portfolio: no member finished: %w", ctx.Err())
	}

	// Judge deterministically: best load vector, ties by portfolio order —
	// the arrival order of candidates must not matter.
	best := 0
	for i := 1; i < len(cands); i++ {
		c := loadvec.CompareVec(cands[i].vec, cands[best].vec)
		if c < 0 || (c == 0 && cands[i].idx < cands[best].idx) {
			best = i
		}
	}
	res := Result{
		Assignment: cands[best].a,
		Winner:     cands[best].name,
		Makespan:   cands[best].m,
		Makespans:  make(map[string]int64, len(cands)),
		// received counts crashed members too, so a crash alone (with no
		// context truncation) does not read as a timeout.
		Incomplete: received < len(algs),
		MemberErrs: memberErrs,
	}
	for _, c := range cands {
		res.Makespans[c.name] = c.m
	}
	return res, nil
}
