package session

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// checkState asserts the session's schedule is feasible: every live
// task's placement is one of its configurations, and the load vector
// matches one recomputed from the placements.
func checkState(t *testing.T, s *Session, specs map[string]*TaskSpec) {
	t.Helper()
	st := s.Snapshot()
	loads := make([]int64, len(st.Loads))
	for _, ts := range st.Tasks {
		spec, ok := specs[ts.ID]
		if !ok {
			t.Fatalf("snapshot lists unknown task %q", ts.ID)
		}
		matched := false
		for _, c := range spec.Configs {
			if sameProcs(c.Procs, ts.Procs) {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("task %q placed on %v, not one of its configurations", ts.ID, ts.Procs)
		}
		for _, p := range ts.Procs {
			loads[p] += ts.Weight
		}
	}
	var m int64
	for i := range loads {
		if loads[i] != st.Loads[i] {
			t.Fatalf("load[%d]=%d, recomputed %d", i, st.Loads[i], loads[i])
		}
		if loads[i] > m {
			m = loads[i]
		}
	}
	if m != st.Makespan {
		t.Fatalf("makespan %d, recomputed %d", st.Makespan, m)
	}
}

func sameProcs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int32]int)
	for _, p := range a {
		seen[p]++
	}
	for _, p := range b {
		seen[p]--
	}
	for _, c := range seen {
		if c != 0 {
			return false
		}
	}
	return true
}

// replay applies a script, checking feasibility after every event, and
// returns the reports. Reweighs may change a task's weight: specs are
// updated alongside so feasibility checks compare against current specs.
func replay(t *testing.T, s *Session, events []Event) []*SessionReport {
	t.Helper()
	specs := make(map[string]*TaskSpec)
	var reports []*SessionReport
	for i, ev := range events {
		switch ev.Op {
		case OpArrive:
			cp := *ev.Task
			cp.Configs = append([]Config(nil), ev.Task.Configs...)
			specs[ev.Task.ID] = &cp
		case OpReweigh:
			if spec, ok := specs[ev.ID]; ok {
				cfgs := make([]Config, len(spec.Configs))
				for j, c := range spec.Configs {
					cfgs[j] = Config{Procs: c.Procs, Weight: ev.Weight}
				}
				spec.Configs = cfgs
			}
		case OpDepart:
			delete(specs, ev.ID)
		}
		rep, err := s.Apply(context.Background(), ev)
		if err != nil {
			t.Fatalf("event %d (%s): %v", i, ev.Op, err)
		}
		if rep.Seq != int64(i+1) {
			t.Fatalf("event %d: seq %d", i, rep.Seq)
		}
		if rep.Makespan > rep.PatchedMakespan {
			t.Fatalf("event %d: adopted makespan %d worse than patch %d", i, rep.Makespan, rep.PatchedMakespan)
		}
		st := s.Snapshot()
		if st.Makespan != rep.Makespan {
			t.Fatalf("event %d: report makespan %d, snapshot %d", i, rep.Makespan, st.Makespan)
		}
		if rep.Tasks != len(st.Tasks) {
			t.Fatalf("event %d: report says %d tasks, snapshot %d", i, rep.Tasks, len(st.Tasks))
		}
		checkState(t, s, specs)
		reports = append(reports, rep)
	}
	return reports
}

func TestSingleProcChurnFeasible(t *testing.T) {
	s, err := New(Options{Procs: 4, Workers: 1, ExactWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	events := GenerateScript(ScriptOptions{Seed: 2, Events: 120, Procs: 4})
	reports := replay(t, s, events)
	optimal := 0
	for _, rep := range reports {
		if rep.Status == "optimal" {
			optimal++
			if rep.LowerBound > rep.Makespan {
				t.Fatalf("seq %d: lower bound %d above makespan %d", rep.Seq, rep.LowerBound, rep.Makespan)
			}
		}
	}
	if optimal == 0 {
		t.Fatal("no event adopted a proven-optimal re-solve; the exact stage never fired")
	}
}

func TestMultiProcChurnFeasible(t *testing.T) {
	s, err := New(Options{Procs: 4, Multi: true, Workers: 1, ExactWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	events := GenerateScript(ScriptOptions{Seed: 3, Events: 100, Procs: 4, Multi: true})
	replay(t, s, events)
}

// Warm-started re-solves must explore no more nodes than cold re-solves
// of the same instances, and across a whole script strictly fewer: the
// patched incumbent is strictly better than the greedy seed often enough
// to show up in the totals.
func TestWarmNodesNeverExceedCold(t *testing.T) {
	s, err := New(Options{Procs: 3, Workers: 1, ExactWorkers: 1, CompareCold: true})
	if err != nil {
		t.Fatal(err)
	}
	events := GenerateScript(ScriptOptions{Seed: 5, Events: 80, Procs: 3, MaxWeight: 50})
	reports := replay(t, s, events)
	var warmTotal, coldTotal int64
	for _, rep := range reports {
		if rep.SolveStatus == "skipped" {
			continue
		}
		if rep.ColdNodes > 0 && rep.Nodes > rep.ColdNodes {
			t.Fatalf("seq %d: warm %d nodes > cold %d", rep.Seq, rep.Nodes, rep.ColdNodes)
		}
		warmTotal += rep.Nodes
		coldTotal += rep.ColdNodes
	}
	if warmTotal >= coldTotal {
		t.Fatalf("warm total %d nodes, cold total %d: warm starts saved nothing", warmTotal, coldTotal)
	}
}

// λ > 0 must migrate fewer tasks than λ = 0 over the same script, at the
// price of (at most slightly) worse makespans.
func TestLambdaReducesMigrations(t *testing.T) {
	events := GenerateScript(ScriptOptions{Seed: 7, Events: 150, Procs: 3, MaxWeight: 30})
	run := func(lambda float64) (int, int64) {
		s, err := New(Options{Procs: 3, Lambda: lambda, Workers: 1, ExactWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		migs := 0
		var finalM int64
		for i, ev := range events {
			rep, err := s.Apply(context.Background(), ev)
			if err != nil {
				t.Fatalf("lambda=%v event %d: %v", lambda, i, err)
			}
			migs += rep.Migrations
			finalM = rep.Makespan
		}
		return migs, finalM
	}
	migsFree, _ := run(0)
	migsPenalized, _ := run(1000)
	if migsFree == 0 {
		t.Fatal("λ=0 run never migrated: script exercises nothing")
	}
	if migsPenalized >= migsFree {
		t.Fatalf("λ=1000 migrated %d tasks, λ=0 %d: penalty had no effect", migsPenalized, migsFree)
	}
}

func TestEventErrors(t *testing.T) {
	s, err := New(Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []Event{
		{Op: "explode"},
		{Op: OpArrive},
		{Op: OpArrive, Task: &TaskSpec{ID: "t"}},
		{Op: OpArrive, Task: &TaskSpec{ID: "t", Configs: []Config{{Procs: []int32{0}, Weight: 0}}}},
		{Op: OpArrive, Task: &TaskSpec{ID: "t", Configs: []Config{{Procs: []int32{5}, Weight: 1}}}},
		{Op: OpArrive, Task: &TaskSpec{ID: "t", Configs: []Config{{Procs: []int32{0, 1}, Weight: 1}}}}, // multi-proc config in SP session
		{Op: OpReweigh, ID: "ghost", Weight: 3},
		{Op: OpDepart, ID: "ghost"},
	}
	for i, ev := range cases {
		if _, err := s.Apply(ctx, ev); err == nil {
			t.Fatalf("case %d accepted: %+v", i, ev)
		}
	}
	if _, err := s.Apply(ctx, Event{Op: OpArrive, Task: &TaskSpec{ID: "a", Configs: []Config{{Procs: []int32{0}, Weight: 2}}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(ctx, Event{Op: OpArrive, Task: &TaskSpec{ID: "a", Configs: []Config{{Procs: []int32{1}, Weight: 2}}}}); err == nil {
		t.Fatal("duplicate arrival accepted")
	}
	if _, err := s.Apply(ctx, Event{Op: OpReweigh, ID: "a", Weight: -1}); err == nil {
		t.Fatal("non-positive reweigh accepted")
	}
	if _, err := s.Apply(ctx, Event{Op: OpDepart, ID: "ghost"}); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("departing a ghost: %v, want ErrUnknownTask", err)
	}
	if s.Events() != 1 {
		t.Fatalf("failed events must not advance the sequence: %d", s.Events())
	}
}

func TestOverloadSkipsResolve(t *testing.T) {
	overloaded := errors.New("no capacity")
	s, err := New(Options{Procs: 2, Acquire: func(context.Context) (func(), error) {
		return nil, overloaded
	}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Apply(context.Background(), Event{
		Op:   OpArrive,
		Task: &TaskSpec{ID: "a", Configs: []Config{{Procs: []int32{0}, Weight: 2}, {Procs: []int32{1}, Weight: 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SolveStatus != "overloaded" || rep.Status != "patched" || rep.Adopted {
		t.Fatalf("overloaded event: %+v", rep)
	}
	if rep.Makespan != 2 {
		t.Fatalf("patched makespan %d, want 2", rep.Makespan)
	}
}

func TestAcquireReleasePairs(t *testing.T) {
	var held, calls int
	s, err := New(Options{Procs: 2, Acquire: func(context.Context) (func(), error) {
		calls++
		held++
		return func() { held-- }, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	events := GenerateScript(ScriptOptions{Seed: 9, Events: 20, Procs: 2})
	for _, ev := range events {
		if _, err := s.Apply(context.Background(), ev); err != nil {
			t.Fatal(err)
		}
	}
	if held != 0 {
		t.Fatalf("%d admission slots leaked", held)
	}
	if calls == 0 {
		t.Fatal("Acquire never called")
	}
}

func TestSubscribeStreams(t *testing.T) {
	s, err := New(Options{Procs: 3, Workers: 1, ExactWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := s.Subscribe(1024)
	events := GenerateScript(ScriptOptions{Seed: 11, Events: 30, Procs: 3})
	for _, ev := range events {
		if _, err := s.Apply(context.Background(), ev); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	var incumbents, reports int
	var lastSeq int64
	perEventBest := make(map[int64]int64)
	for p := range ch {
		switch p.Kind {
		case "incumbent":
			incumbents++
			if best, seen := perEventBest[p.Seq]; seen && p.Incumbent.Makespan > best {
				t.Fatalf("seq %d: incumbent stream not monotone: %d after %d", p.Seq, p.Incumbent.Makespan, best)
			}
			perEventBest[p.Seq] = p.Incumbent.Makespan
		case "report":
			reports++
			if p.Report.Seq <= lastSeq {
				t.Fatalf("report seq %d after %d", p.Report.Seq, lastSeq)
			}
			lastSeq = p.Report.Seq
		default:
			t.Fatalf("unknown push kind %q", p.Kind)
		}
	}
	if reports != len(events) {
		t.Fatalf("%d report pushes for %d events (dropped=%d)", reports, len(events), s.Dropped())
	}
	if incumbents == 0 {
		t.Fatal("no incumbent pushes streamed")
	}
}

func TestCloseAndConcurrency(t *testing.T) {
	s, err := New(Options{Procs: 3, Workers: 1, ExactWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := s.Subscribe(4096)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range ch {
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				_, err := s.Apply(context.Background(), Event{
					Op:   OpArrive,
					Task: &TaskSpec{ID: id, Configs: []Config{{Procs: []int32{int32(w % 3)}, Weight: 1}}},
				})
				if err != nil {
					t.Error(err)
					return
				}
				s.Snapshot()
				if _, err := s.Apply(context.Background(), Event{Op: OpDepart, ID: id}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Events(); got != 80 {
		t.Fatalf("applied %d events, want 80", got)
	}
	s.Close()
	<-done // subscriber channel must close
	if _, err := s.Apply(context.Background(), Event{Op: OpDepart, ID: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after close: %v", err)
	}
	s.Close() // idempotent
	ch2, cancel2 := s.Subscribe(1)
	if _, open := <-ch2; open {
		t.Fatal("subscribe after close returned an open channel")
	}
	cancel2()
}

func TestScriptRoundTrip(t *testing.T) {
	hdr := ScriptHeader{Procs: 4, Multi: true, Lambda: 2.5, NodeBudget: 1000}
	events := GenerateScript(ScriptOptions{Seed: 13, Events: 25, Procs: 4, Multi: true})
	var buf bytes.Buffer
	if err := WriteScript(&buf, hdr, events); err != nil {
		t.Fatal(err)
	}
	hdr2, events2, err := ReadScript(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr2 != hdr {
		t.Fatalf("header %+v round-tripped to %+v", hdr, hdr2)
	}
	if len(events2) != len(events) {
		t.Fatalf("%d events round-tripped to %d", len(events), len(events2))
	}
	s, err := New(hdr2.Options())
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range events2 {
		if _, err := s.Apply(context.Background(), ev); err != nil {
			t.Fatalf("replaying round-tripped event %d: %v", i, err)
		}
	}
}
