package session

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
)

// ScriptHeader is the first line of a session script file (NDJSON): the
// session configuration, followed by one Event per line. semisolve
// -session replays such files offline; semiload -session generates them
// in memory against a live server.
type ScriptHeader struct {
	Procs          int     `json:"procs"`
	Multi          bool    `json:"multi,omitempty"`
	Lambda         float64 `json:"lambda,omitempty"`
	NodeBudget     int64   `json:"node_budget,omitempty"`
	ExactTaskLimit int     `json:"exact_task_limit,omitempty"`
	CompareCold    bool    `json:"compare_cold,omitempty"`
}

// Options translates the header into session Options.
func (h ScriptHeader) Options() Options {
	return Options{
		Procs:          h.Procs,
		Multi:          h.Multi,
		Lambda:         h.Lambda,
		NodeBudget:     h.NodeBudget,
		ExactTaskLimit: h.ExactTaskLimit,
		CompareCold:    h.CompareCold,
	}
}

// ReadScript parses a session script: a ScriptHeader line, then one JSON
// Event per line (blank lines skipped).
func ReadScript(r io.Reader) (ScriptHeader, []Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var hdr ScriptHeader
	gotHeader := false
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if !gotHeader {
			if err := json.Unmarshal(b, &hdr); err != nil {
				return hdr, nil, fmt.Errorf("session: script line %d (header): %w", line, err)
			}
			if hdr.Procs <= 0 {
				return hdr, nil, fmt.Errorf("session: script header needs a positive procs count")
			}
			gotHeader = true
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return hdr, nil, fmt.Errorf("session: script line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, err
	}
	if !gotHeader {
		return hdr, nil, fmt.Errorf("session: empty script")
	}
	return hdr, events, nil
}

// WriteScript emits the NDJSON script form readable by ReadScript.
func WriteScript(w io.Writer, hdr ScriptHeader, events []Event) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// ScriptOptions parameterizes GenerateScript.
type ScriptOptions struct {
	// Seed makes the script deterministic; equal options replay equal
	// scripts.
	Seed int64
	// Events is the script length.
	Events int
	// Procs is the session's processor count.
	Procs int
	// Multi generates multi-processor configurations.
	Multi bool
	// MaxWeight bounds task weights (default 9).
	MaxWeight int64
	// MaxConfigs bounds configurations per task (default 3, min 1).
	MaxConfigs int
	// DepartPct and ReweighPct are the percentage of events that depart
	// or reweigh a live task (when any are live); the rest arrive.
	// Defaults: 25 and 10.
	DepartPct, ReweighPct int
}

// GenerateScript produces a deterministic arrival/departure/reweigh
// script: departures and reweighs always name a live task, so the script
// replays cleanly into a fresh session.
func GenerateScript(o ScriptOptions) []Event {
	if o.MaxWeight <= 0 {
		o.MaxWeight = 9
	}
	if o.MaxConfigs <= 0 {
		o.MaxConfigs = 3
	}
	if o.DepartPct == 0 {
		o.DepartPct = 25
	}
	if o.ReweighPct == 0 {
		o.ReweighPct = 10
	}
	rng := rand.New(rand.NewSource(o.Seed))
	var events []Event
	var live []string
	next := 0
	for len(events) < o.Events {
		roll := rng.Intn(100)
		switch {
		case len(live) > 0 && roll < o.DepartPct:
			i := rng.Intn(len(live))
			events = append(events, Event{Op: OpDepart, ID: live[i]})
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		case len(live) > 0 && roll < o.DepartPct+o.ReweighPct:
			events = append(events, Event{
				Op:     OpReweigh,
				ID:     live[rng.Intn(len(live))],
				Weight: 1 + rng.Int63n(o.MaxWeight),
			})
		default:
			next++
			id := fmt.Sprintf("t%d", next)
			events = append(events, Event{Op: OpArrive, Task: randomTask(rng, id, o)})
			live = append(live, id)
		}
	}
	return events
}

// randomTask draws a task spec valid for the session class.
func randomTask(rng *rand.Rand, id string, o ScriptOptions) *TaskSpec {
	spec := &TaskSpec{ID: id}
	w := 1 + rng.Int63n(o.MaxWeight)
	if o.Multi {
		nCfg := 1 + rng.Intn(o.MaxConfigs)
		for c := 0; c < nCfg; c++ {
			size := 1 + rng.Intn(min(3, o.Procs))
			procs := make([]int32, 0, size)
			for _, p := range rng.Perm(o.Procs)[:size] {
				procs = append(procs, int32(p))
			}
			spec.Configs = append(spec.Configs, Config{Procs: procs, Weight: 1 + rng.Int63n(o.MaxWeight)})
		}
		return spec
	}
	// SINGLEPROC: distinct processors, one per configuration; the weight
	// may differ per processor (machine-dependent speed).
	deg := 1 + rng.Intn(min(o.MaxConfigs, o.Procs))
	for _, p := range rng.Perm(o.Procs)[:deg] {
		wp := w
		if rng.Intn(2) == 0 {
			wp = 1 + rng.Int63n(o.MaxWeight)
		}
		spec.Configs = append(spec.Configs, Config{Procs: []int32{int32(p)}, Weight: wp})
	}
	return spec
}
