// Package session implements dynamic scheduling sessions: a long-lived
// instance of either problem class whose task set evolves through an
// event stream — arrivals, departures, reweighs — with the schedule
// maintained across events instead of recomputed from nothing.
//
// Each event is handled in two steps. First an instant online patch keeps
// the schedule feasible: an arrival is placed greedily on the
// least-loaded eligible placement (the paper's online rule, via
// internal/online), a departure releases its load, a reweigh adjusts the
// load in place. Then a bounded re-solve races the full solve pipeline
// (internal/solve) warm-started from the patched schedule — the
// branch-and-bound engines start from its makespan as the upper bound, so
// an event that barely changes the instance re-explores a fraction of the
// cold tree. The re-solved schedule replaces the patched one only when it
// wins under the migration-cost objective
//
//	score = makespan + λ · Σ weight(moved tasks)
//
// so reassigning tasks that were already running is penalized and the
// schedule stays stable; λ = 0 chases pure makespan, large λ freezes
// placements. Every event yields a SessionReport, and subscribers can
// stream the re-solve's incumbent trajectory live (the semiserve SSE
// endpoint is a thin adapter over Subscribe).
package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"semimatch/internal/bipartite"
	"semimatch/internal/hypergraph"
	"semimatch/internal/online"
	"semimatch/internal/solve"
)

// Event operations.
const (
	OpArrive  = "arrive"
	OpDepart  = "depart"
	OpReweigh = "reweigh"
)

// ErrClosed reports an event posted to a closed session.
var ErrClosed = errors.New("session: closed")

// ErrUnknownTask reports a departure or reweigh naming a task that is not
// live in the session.
var ErrUnknownTask = errors.New("session: unknown task")

// ErrBadEvent reports a structurally invalid event (unknown op, missing
// or malformed task spec).
var ErrBadEvent = errors.New("session: bad event")

// Config is one way a task may run: a non-empty processor set and the
// weight each of those processors incurs. SINGLEPROC sessions restrict
// configurations to exactly one processor each.
type Config struct {
	Procs  []int32 `json:"procs"`
	Weight int64   `json:"weight"`
}

// TaskSpec describes an arriving task: a session-unique id and its
// configurations.
type TaskSpec struct {
	ID      string   `json:"id"`
	Configs []Config `json:"configs"`
}

// Event is one session event, the wire format shared by the semiserve
// endpoint, the semisolve -session replay, and the semiload generator.
type Event struct {
	// Op is "arrive", "depart" or "reweigh".
	Op string `json:"op"`
	// Task is the arriving task (arrive only).
	Task *TaskSpec `json:"task,omitempty"`
	// ID names the affected task (depart and reweigh).
	ID string `json:"id,omitempty"`
	// Weight is the task's new weight, applied to every configuration
	// (reweigh only).
	Weight int64 `json:"weight,omitempty"`
}

// Options configures a session.
type Options struct {
	// Procs is the processor count, fixed for the session's lifetime.
	Procs int
	// Multi allows multi-processor configurations (MULTIPROC sessions).
	// Without it every configuration must name exactly one processor and
	// the session re-solves as a SINGLEPROC instance.
	Multi bool
	// Lambda is the migration-cost weight λ: a re-solved schedule is
	// adopted only when makespan + λ·Σ moved-task weight beats the
	// patched schedule's score. 0 chases pure makespan.
	Lambda float64
	// NodeBudget, ExactTaskLimit, Deadline, Workers and ExactWorkers
	// bound each event's re-solve; they map directly onto the
	// solve.Options fields of the same names (zero = those defaults).
	NodeBudget     int64
	ExactTaskLimit int
	Deadline       time.Duration
	Workers        int
	ExactWorkers   int
	// Trace attaches a telemetry span tree to each re-solve's Report, for
	// the serving layer to emit as a "session-event" trace.
	Trace bool
	// CompareCold additionally runs each re-solve cold (no warm start)
	// purely for measurement, filling SessionReport.ColdNodes so
	// warm-vs-cold search effort is observable per event. It doubles the
	// solve cost; meant for benchmarks and tests.
	CompareCold bool
	// Acquire, when non-nil, gates each re-solve through the caller's
	// admission control: it is called before the solve and its release
	// func after. An error skips the re-solve — the event still answers
	// with the patched schedule and SolveStatus "overloaded".
	Acquire func(ctx context.Context) (release func(), err error)
}

// SessionReport is the per-event outcome.
type SessionReport struct {
	// Seq numbers events from 1 in application order.
	Seq int64 `json:"seq"`
	// Op and TaskID echo the event.
	Op     string `json:"op"`
	TaskID string `json:"task,omitempty"`
	// Tasks is the live task count after the event.
	Tasks int `json:"tasks"`
	// Makespan is the adopted schedule's makespan after the event.
	Makespan int64 `json:"makespan"`
	// LowerBound is the instance's load-balance lower bound (0 when the
	// re-solve was skipped: computing it needs the built instance).
	LowerBound int64 `json:"lower_bound"`
	// PatchedMakespan is the instant online patch's makespan — the answer
	// that was available before the re-solve finished.
	PatchedMakespan int64 `json:"patched_makespan"`
	// Adopted reports whether the re-solved schedule replaced the patch.
	Adopted bool `json:"adopted"`
	// Migrations counts pre-event tasks whose placement changed;
	// MigrationCost is the sum of their (new) weights. Both are 0 when
	// the patch was kept: the patch never moves a surviving task.
	Migrations    int   `json:"migrations"`
	MigrationCost int64 `json:"migration_cost"`
	// Score is the adopted schedule's migration-cost objective:
	// makespan + λ·MigrationCost.
	Score float64 `json:"score"`
	// Status is the adopted schedule's provenance: "patched", or the
	// re-solve's status ("optimal", "heuristic", "truncated").
	Status string `json:"status"`
	// Solver names the registry solver that produced the re-solve's
	// schedule (empty when no re-solve ran).
	Solver string `json:"solver,omitempty"`
	// SolveStatus is the re-solve stage's own outcome: a solve status,
	// "skipped" (empty session), "overloaded" (admission declined) or
	// "error".
	SolveStatus string `json:"solve_status"`
	// Nodes is the warm-started re-solve's branch-and-bound node count;
	// ColdNodes is the cold comparison run's (CompareCold only).
	Nodes     int64 `json:"nodes"`
	ColdNodes int64 `json:"cold_nodes,omitempty"`
	// Elapsed is the event's wall time, patch and re-solve included.
	Elapsed time.Duration `json:"elapsed_ns"`

	// Report is the re-solve's full solve report (certificate, trace,
	// search stats) when one ran; not serialized.
	Report *solve.Report `json:"-"`
	// Problem is the instance the re-solve ran on, for consumers that
	// ledger or re-verify the event (semiserve's source:"session" ledger
	// records); not serialized.
	Problem solve.Problem `json:"-"`
}

// Push is one subscriber notification: a live incumbent from an event's
// re-solve, or the event's final report.
type Push struct {
	// Kind is "incumbent" or "report".
	Kind string `json:"kind"`
	// Seq is the event the push belongs to.
	Seq       int64            `json:"seq"`
	Incumbent *solve.Incumbent `json:"incumbent,omitempty"`
	Report    *SessionReport   `json:"report,omitempty"`
}

// liveTask is one live task: its spec plus the chosen configuration.
type liveTask struct {
	id      string
	configs []Config
	cfg     int32 // index into configs
}

// Session is a dynamic scheduling session. Events are serialized: Apply
// holds the session lock for the whole patch + re-solve cycle, so
// concurrent Apply calls queue. Subscribe and Snapshot are safe from any
// goroutine.
type Session struct {
	opts Options

	mu     sync.Mutex
	closed bool
	seq    int64
	tasks  []liveTask
	byID   map[string]int
	sp     *online.Scheduler // SINGLEPROC patch engine (loads live here)
	loads  []int64           // MULTIPROC patch loads

	subMu   sync.Mutex
	subs    map[int]chan Push
	nextSub int
	dropped atomic.Int64
}

// New creates a session; Options.Procs must be positive.
func New(opts Options) (*Session, error) {
	if opts.Procs <= 0 {
		return nil, fmt.Errorf("session: need a positive processor count, got %d", opts.Procs)
	}
	if opts.Lambda < 0 {
		return nil, fmt.Errorf("session: negative lambda %v", opts.Lambda)
	}
	s := &Session{
		opts: opts,
		byID: make(map[string]int),
		subs: make(map[int]chan Push),
	}
	if opts.Multi {
		s.loads = make([]int64, opts.Procs)
	} else {
		s.sp = online.New(opts.Procs)
	}
	return s, nil
}

// Multi reports the session's problem class.
func (s *Session) Multi() bool { return s.opts.Multi }

// Apply consumes one event: instant patch, then a bounded warm-started
// re-solve whose schedule is adopted only when it wins the migration-cost
// objective. ctx bounds the re-solve; the patch always completes.
func (s *Session) Apply(ctx context.Context, ev Event) (*SessionReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	start := time.Now()

	// Placements before the event: migrations are counted against these,
	// so a task is only "moved" if it was already running somewhere.
	prev := make(map[string]int32, len(s.tasks))
	for _, lt := range s.tasks {
		prev[lt.id] = lt.cfg
	}

	var taskID string
	var err error
	switch ev.Op {
	case OpArrive:
		taskID, err = s.patchArrive(ev.Task)
	case OpDepart:
		taskID, err = s.patchDepart(ev.ID)
	case OpReweigh:
		taskID, err = s.patchReweigh(ev.ID, ev.Weight)
	default:
		err = fmt.Errorf("%w: unknown op %q", ErrBadEvent, ev.Op)
	}
	if err != nil {
		return nil, err
	}

	s.seq++
	rep := &SessionReport{
		Seq:             s.seq,
		Op:              ev.Op,
		TaskID:          taskID,
		Tasks:           len(s.tasks),
		PatchedMakespan: s.makespan(),
		Status:          "patched",
		SolveStatus:     "skipped",
	}
	rep.Makespan = rep.PatchedMakespan
	if len(s.tasks) > 0 {
		s.resolve(ctx, rep, prev)
	}
	rep.Score = float64(rep.Makespan) + s.opts.Lambda*float64(rep.MigrationCost)
	rep.Elapsed = time.Since(start)
	s.push(Push{Kind: "report", Seq: rep.Seq, Report: rep})
	return rep, nil
}

// resolve runs the event's warm-started re-solve and adopts its schedule
// when it beats the patched one under the migration-cost objective.
// Failures never lose the patched answer: they only mark SolveStatus.
func (s *Session) resolve(ctx context.Context, rep *SessionReport, prev map[string]int32) {
	if s.opts.Acquire != nil {
		release, err := s.opts.Acquire(ctx)
		if err != nil {
			rep.SolveStatus = "overloaded"
			return
		}
		defer release()
	}

	prob, warm, ptr, err := s.buildProblem()
	if err != nil {
		rep.SolveStatus = "error"
		return
	}
	rep.LowerBound = prob.LowerBound()
	rep.Problem = prob
	seq := rep.Seq
	o := solve.Options{
		Trace:            s.opts.Trace,
		Deadline:         s.opts.Deadline,
		Workers:          s.opts.Workers,
		ExactWorkers:     s.opts.ExactWorkers,
		NodeBudget:       s.opts.NodeBudget,
		ExactTaskLimit:   s.opts.ExactTaskLimit,
		InitialIncumbent: warm,
		Observer: func(inc solve.Incumbent) {
			s.push(Push{Kind: "incumbent", Seq: seq, Incumbent: &inc})
		},
	}
	res, err := solve.RunOptions(ctx, prob, o)
	if res == nil {
		rep.SolveStatus = "error"
		return
	}
	_ = err // a truncated/partial solve still carries its incumbent
	rep.Report = res
	rep.Solver = res.Solver
	rep.SolveStatus = res.Status.String()
	rep.Nodes = res.Stats.Nodes

	if s.opts.CompareCold {
		cold := o
		cold.InitialIncumbent = nil
		cold.Observer = nil
		if coldRes, _ := solve.RunOptions(ctx, prob, cold); coldRes != nil {
			rep.ColdNodes = coldRes.Stats.Nodes
		}
	}

	cfgs, err := s.placementsOf(res.Assignment, ptr)
	if err != nil {
		return // malformed solver output: keep the patched schedule
	}
	migs, migCost := s.migrations(cfgs, prev)
	scoreSolved := float64(res.Makespan) + s.opts.Lambda*float64(migCost)
	scorePatched := float64(rep.PatchedMakespan) // the patch moves no one
	if scoreSolved < scorePatched {
		s.adopt(cfgs)
		rep.Makespan = res.Makespan
		rep.Migrations = migs
		rep.MigrationCost = migCost
		rep.Status = res.Status.String()
		rep.Adopted = true
	}
}

// --- instant patch ---

// validateSpec checks an arriving task's spec against the session class.
func (s *Session) validateSpec(spec *TaskSpec) error {
	if spec == nil || spec.ID == "" {
		return fmt.Errorf("%w: arrive without a task id", ErrBadEvent)
	}
	if _, dup := s.byID[spec.ID]; dup {
		return fmt.Errorf("%w: task %q already live", ErrBadEvent, spec.ID)
	}
	if len(spec.Configs) == 0 {
		return fmt.Errorf("%w: task %q has no configurations", ErrBadEvent, spec.ID)
	}
	seenProc := make(map[int32]bool)
	for i, c := range spec.Configs {
		if c.Weight <= 0 {
			return fmt.Errorf("%w: task %q config %d has non-positive weight %d", ErrBadEvent, spec.ID, i, c.Weight)
		}
		if len(c.Procs) == 0 {
			return fmt.Errorf("%w: task %q config %d has no processors", ErrBadEvent, spec.ID, i)
		}
		if !s.opts.Multi && len(c.Procs) != 1 {
			return fmt.Errorf("%w: task %q config %d spans %d processors in a SINGLEPROC session", ErrBadEvent, spec.ID, i, len(c.Procs))
		}
		inCfg := make(map[int32]bool, len(c.Procs))
		for _, p := range c.Procs {
			if p < 0 || int(p) >= s.opts.Procs {
				return fmt.Errorf("%w: task %q config %d names processor %d of %d", ErrBadEvent, spec.ID, i, p, s.opts.Procs)
			}
			if inCfg[p] {
				return fmt.Errorf("%w: task %q config %d repeats processor %d", ErrBadEvent, spec.ID, i, p)
			}
			inCfg[p] = true
		}
		if !s.opts.Multi {
			if seenProc[c.Procs[0]] {
				return fmt.Errorf("%w: task %q has two configurations on processor %d", ErrBadEvent, spec.ID, c.Procs[0])
			}
			seenProc[c.Procs[0]] = true
		}
	}
	return nil
}

// patchArrive places the arriving task greedily: least resulting load
// over its configurations (internal/online for SINGLEPROC; the same rule
// over configuration processor sets for MULTIPROC).
func (s *Session) patchArrive(spec *TaskSpec) (string, error) {
	if err := s.validateSpec(spec); err != nil {
		return "", err
	}
	configs := make([]Config, len(spec.Configs))
	for i, c := range spec.Configs {
		configs[i] = Config{Procs: append([]int32(nil), c.Procs...), Weight: c.Weight}
	}
	var cfg int32
	if s.opts.Multi {
		cfg = chooseConfig(s.loads, configs)
		addLoad(s.loads, configs[cfg], 1)
	} else {
		eligible := make([]int32, len(configs))
		weights := make([]int64, len(configs))
		for i, c := range configs {
			eligible[i], weights[i] = c.Procs[0], c.Weight
		}
		p, err := s.sp.AssignWeighted(eligible, weights)
		if err != nil {
			return "", fmt.Errorf("session: %w", err)
		}
		for i, c := range configs {
			if c.Procs[0] == p {
				cfg = int32(i)
			}
		}
	}
	s.byID[spec.ID] = len(s.tasks)
	s.tasks = append(s.tasks, liveTask{id: spec.ID, configs: configs, cfg: cfg})
	return spec.ID, nil
}

// patchDepart releases the departing task's load and drops it.
func (s *Session) patchDepart(id string) (string, error) {
	i, ok := s.byID[id]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownTask, id)
	}
	lt := s.tasks[i]
	c := lt.configs[lt.cfg]
	if s.opts.Multi {
		addLoad(s.loads, c, -1)
	} else {
		if err := s.sp.Unassign(c.Procs[0], c.Weight); err != nil {
			return "", fmt.Errorf("session: %w", err)
		}
	}
	// Ordered removal keeps arrival order, so rebuilt instances stay
	// stable across events.
	s.tasks = append(s.tasks[:i], s.tasks[i+1:]...)
	delete(s.byID, id)
	for j := i; j < len(s.tasks); j++ {
		s.byID[s.tasks[j].id] = j
	}
	return id, nil
}

// patchReweigh sets the task's weight on every configuration and adjusts
// its current placement's load in place — the patch never migrates.
func (s *Session) patchReweigh(id string, w int64) (string, error) {
	if w <= 0 {
		return "", fmt.Errorf("%w: reweigh %q to non-positive weight %d", ErrBadEvent, id, w)
	}
	i, ok := s.byID[id]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownTask, id)
	}
	lt := &s.tasks[i]
	old := lt.configs[lt.cfg]
	if s.opts.Multi {
		addLoad(s.loads, old, -1)
	} else if err := s.sp.Unassign(old.Procs[0], old.Weight); err != nil {
		return "", fmt.Errorf("session: %w", err)
	}
	for j := range lt.configs {
		lt.configs[j].Weight = w
	}
	if s.opts.Multi {
		addLoad(s.loads, lt.configs[lt.cfg], 1)
	} else if _, err := s.sp.Assign(old.Procs[:1], w); err != nil {
		return "", fmt.Errorf("session: %w", err)
	}
	return id, nil
}

// chooseConfig picks the configuration minimizing the resulting maximum
// load over its processors (ties to the lowest index) — the online greedy
// rule lifted to processor sets.
func chooseConfig(loads []int64, configs []Config) int32 {
	best := int32(0)
	var bestPeak int64 = -1
	for i, c := range configs {
		var peak int64
		for _, p := range c.Procs {
			if after := loads[p] + c.Weight; after > peak {
				peak = after
			}
		}
		if bestPeak < 0 || peak < bestPeak {
			best, bestPeak = int32(i), peak
		}
	}
	return best
}

func addLoad(loads []int64, c Config, sign int64) {
	for _, p := range c.Procs {
		loads[p] += sign * c.Weight
	}
}

// makespan is the current patched schedule's maximum load.
func (s *Session) makespan() int64 {
	if !s.opts.Multi {
		return s.sp.Makespan()
	}
	var m int64
	for _, l := range s.loads {
		if l > m {
			m = l
		}
	}
	return m
}

// --- instance building and adoption ---

// buildProblem compiles the live tasks (arrival order) into an immutable
// instance plus the warm-start assignment of the current placements. For
// MULTIPROC, ptr[i] is task i's first hyperedge id (configs keep their
// per-task insertion order through hypergraph.Builder), so edge id
// ptr[i]+j is task i's configuration j.
func (s *Session) buildProblem() (solve.Problem, []int32, []int32, error) {
	n := len(s.tasks)
	warm := make([]int32, n)
	if s.opts.Multi {
		b := hypergraph.NewBuilder(n, s.opts.Procs)
		ptr := make([]int32, n)
		var next int32
		for i, lt := range s.tasks {
			ptr[i] = next
			for _, c := range lt.configs {
				b.AddEdge32(int32(i), c.Procs, c.Weight)
				next++
			}
			warm[i] = ptr[i] + lt.cfg
		}
		h, err := b.Build()
		if err != nil {
			return solve.Problem{}, nil, nil, err
		}
		return solve.Hyper(h), warm, ptr, nil
	}
	b := bipartite.NewBuilder(n, s.opts.Procs)
	for i, lt := range s.tasks {
		for _, c := range lt.configs {
			b.AddWeightedEdge(i, int(c.Procs[0]), c.Weight)
		}
		warm[i] = lt.configs[lt.cfg].Procs[0]
	}
	g, err := b.Build()
	if err != nil {
		return solve.Problem{}, nil, nil, err
	}
	return solve.Bipartite(g), warm, nil, nil
}

// placementsOf maps a solved assignment (instance encoding) back to
// per-task configuration indices.
func (s *Session) placementsOf(a []int32, ptr []int32) ([]int32, error) {
	if len(a) != len(s.tasks) {
		return nil, fmt.Errorf("session: assignment has %d entries for %d tasks", len(a), len(s.tasks))
	}
	cfgs := make([]int32, len(a))
	for i, lt := range s.tasks {
		if s.opts.Multi {
			j := a[i] - ptr[i]
			if j < 0 || int(j) >= len(lt.configs) {
				return nil, fmt.Errorf("session: task %q assigned foreign hyperedge %d", lt.id, a[i])
			}
			cfgs[i] = j
			continue
		}
		found := int32(-1)
		for j, c := range lt.configs {
			if c.Procs[0] == a[i] {
				found = int32(j)
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("session: task %q assigned ineligible processor %d", lt.id, a[i])
		}
		cfgs[i] = found
	}
	return cfgs, nil
}

// migrations counts pre-event tasks whose placement would change under
// cfgs, and sums their (new) weights — the migration-cost term.
func (s *Session) migrations(cfgs []int32, prev map[string]int32) (int, int64) {
	count := 0
	var cost int64
	for i, lt := range s.tasks {
		old, existed := prev[lt.id]
		if !existed || old == cfgs[i] {
			continue
		}
		count++
		cost += lt.configs[cfgs[i]].Weight
	}
	return count, cost
}

// adopt installs the re-solved placements, reconciling the patch engine's
// loads task by task.
func (s *Session) adopt(cfgs []int32) {
	for i := range s.tasks {
		lt := &s.tasks[i]
		if lt.cfg == cfgs[i] {
			continue
		}
		oldC, newC := lt.configs[lt.cfg], lt.configs[cfgs[i]]
		if s.opts.Multi {
			addLoad(s.loads, oldC, -1)
			addLoad(s.loads, newC, 1)
		} else {
			// Unassign cannot fail here (the load it releases is the load
			// this task contributed) and the forced single-processor
			// Assign cannot either; a failure would mean corrupted state.
			if err := s.sp.Unassign(oldC.Procs[0], oldC.Weight); err != nil {
				panic(fmt.Sprintf("session: adopt: %v", err))
			}
			if _, err := s.sp.Assign(newC.Procs[:1], newC.Weight); err != nil {
				panic(fmt.Sprintf("session: adopt: %v", err))
			}
		}
		lt.cfg = cfgs[i]
	}
}

// --- introspection and streaming ---

// TaskState is one live task's placement in a Snapshot.
type TaskState struct {
	ID     string  `json:"id"`
	Procs  []int32 `json:"procs"`
	Weight int64   `json:"weight"`
}

// State is a point-in-time view of the session's schedule.
type State struct {
	Tasks    []TaskState `json:"tasks"`
	Loads    []int64     `json:"loads"`
	Makespan int64       `json:"makespan"`
	Events   int64       `json:"events"`
}

// Snapshot returns the current schedule: every live task's chosen
// placement, the load vector, the makespan, and the events applied.
func (s *Session) Snapshot() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := State{Events: s.seq, Makespan: s.makespan()}
	if s.opts.Multi {
		st.Loads = append([]int64(nil), s.loads...)
	} else {
		st.Loads = s.sp.Loads()
	}
	for _, lt := range s.tasks {
		c := lt.configs[lt.cfg]
		st.Tasks = append(st.Tasks, TaskState{
			ID:     lt.id,
			Procs:  append([]int32(nil), c.Procs...),
			Weight: c.Weight,
		})
	}
	return st
}

// Subscribe registers a push stream with the given buffer. Pushes to a
// full buffer are dropped (never blocking an event); Dropped counts them.
// The returned cancel func unregisters and closes the channel.
func (s *Session) Subscribe(buf int) (<-chan Push, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Push, buf)
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.subsClosed() {
		close(ch)
		return ch, func() {}
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	return ch, func() {
		s.subMu.Lock()
		defer s.subMu.Unlock()
		if c, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(c)
		}
	}
}

// subsClosed reports closure without taking s.mu (subMu held): Close nils
// the map after draining it.
func (s *Session) subsClosed() bool { return s.subs == nil }

// Dropped returns how many pushes were discarded on full subscriber
// buffers.
func (s *Session) Dropped() int64 { return s.dropped.Load() }

func (s *Session) push(p Push) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for _, ch := range s.subs {
		select {
		case ch <- p:
		default:
			s.dropped.Add(1)
		}
	}
}

// Events returns how many events have been applied.
func (s *Session) Events() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Close shuts the session: subscriber channels are closed and further
// Apply calls return ErrClosed. Idempotent.
func (s *Session) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for _, ch := range s.subs {
		close(ch)
	}
	s.subs = nil
}
