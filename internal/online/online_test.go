package online

import (
	"math/rand"
	"testing"
	"testing/quick"

	"semimatch/internal/adversarial"
	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/gen"
)

func TestAssignBasics(t *testing.T) {
	s := New(3)
	p, err := s.Assign([]int32{0, 1, 2}, 5)
	if err != nil || p != 0 {
		t.Fatalf("p=%d err=%v", p, err)
	}
	p, err = s.Assign([]int32{0, 1}, 2)
	if err != nil || p != 1 {
		t.Fatalf("p=%d err=%v (least-loaded is P1)", p, err)
	}
	if s.Makespan() != 5 || s.Placed() != 2 {
		t.Fatalf("makespan=%d placed=%d", s.Makespan(), s.Placed())
	}
}

func TestAssignErrors(t *testing.T) {
	s := New(2)
	if _, err := s.Assign(nil, 1); err == nil {
		t.Fatal("empty eligibility accepted")
	}
	if _, err := s.Assign([]int32{5}, 1); err == nil {
		t.Fatal("out-of-range processor accepted")
	}
	if _, err := s.Assign([]int32{0}, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestReplayEqualsBasicGreedyOnUnit(t *testing.T) {
	// In index order with unit weights, online greedy IS basic-greedy.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.Bipartite(gen.FewgManyg, 1+rng.Intn(60), 4+rng.Intn(20), 1+rng.Intn(3), 1+rng.Intn(4), seed)
		if err != nil {
			return false
		}
		a1, m1, err := Replay(g, nil)
		if err != nil {
			return false
		}
		a2 := core.BasicGreedy(g, core.GreedyOptions{})
		if m1 != core.Makespan(g, a2) {
			return false
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayCustomOrder(t *testing.T) {
	// Fig. 1: arrival order decides. T1 (single-choice) first → optimal.
	g := adversarial.Fig1()
	_, m, err := Replay(g, []int32{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 {
		t.Fatalf("good order makespan = %d, want 1", m)
	}
	_, m, err = Replay(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Fatalf("adversarial order makespan = %d, want 2", m)
	}
}

func TestChainRealizesLogPLowerBound(t *testing.T) {
	// On Chain(k) the online greedy is exactly k-competitive: the
	// adversary forces makespan k while OPT = 1, and k = log2(p).
	for k := 2; k <= 7; k++ {
		g := adversarial.Chain(k)
		r, err := CompetitiveRatio(g)
		if err != nil {
			t.Fatal(err)
		}
		if r != float64(k) {
			t.Fatalf("k=%d: competitive ratio %v, want %d", k, r, k)
		}
	}
}

func TestRandomInstancesNearOne(t *testing.T) {
	// On dense random instances online greedy stays within 2x of OPT
	// (empirically much closer; the bound here is deliberately loose).
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		g, err := gen.Bipartite(gen.FewgManyg, 640, 64, 8, 5, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		r, err := CompetitiveRatio(g)
		if err != nil {
			t.Fatal(err)
		}
		if r < 1 || r > 2 {
			t.Fatalf("trial %d: ratio %v out of [1,2]", trial, r)
		}
	}
	_ = rng
}

func TestReplayWeightedUsesMinWeight(t *testing.T) {
	b := bipartite.NewBuilder(1, 2)
	b.AddWeightedEdge(0, 0, 7)
	b.AddWeightedEdge(0, 1, 3)
	g := b.MustBuild()
	_, m, err := Replay(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 {
		t.Fatalf("makespan = %d, want 3 (task size = min weight)", m)
	}
}

func TestReplayIsolatedTaskFails(t *testing.T) {
	g, err := bipartite.NewFromAdjacency(1, [][]int{{0}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Replay(g, nil); err == nil {
		t.Fatal("isolated task accepted")
	}
}

func BenchmarkReplay(b *testing.B) {
	g, err := gen.Bipartite(gen.FewgManyg, 20480, 1024, 32, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Replay(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}
