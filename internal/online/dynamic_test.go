package online

import (
	"math/rand"
	"testing"
)

func TestAssignWeightedPicksMinResultingLoad(t *testing.T) {
	s := New(3)
	// Pre-load: P0=4, P1=0, P2=0.
	if _, err := s.Assign([]int32{0}, 4); err != nil {
		t.Fatal(err)
	}
	// P0 would reach 4+1=5, P1 0+3=3, P2 0+7=7 → P1 wins even though P0
	// carries the cheapest weight.
	p, err := s.AssignWeighted([]int32{0, 1, 2}, []int64{1, 3, 7})
	if err != nil || p != 1 {
		t.Fatalf("p=%d err=%v (want P1)", p, err)
	}
	if got := s.Loads(); got[0] != 4 || got[1] != 3 || got[2] != 0 {
		t.Fatalf("loads=%v", got)
	}
	// Ties resolve to the lowest processor index: P0→4+2=6, P2→0+6=6.
	p, err = s.AssignWeighted([]int32{2, 0}, []int64{6, 2})
	if err != nil || p != 0 {
		t.Fatalf("p=%d err=%v (tie should pick P0)", p, err)
	}
}

func TestAssignWeightedErrors(t *testing.T) {
	s := New(2)
	if _, err := s.AssignWeighted(nil, nil); err == nil {
		t.Fatal("empty eligibility accepted")
	}
	if _, err := s.AssignWeighted([]int32{0, 1}, []int64{1}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	if _, err := s.AssignWeighted([]int32{0}, []int64{0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := s.AssignWeighted([]int32{5}, []int64{1}); err == nil {
		t.Fatal("out-of-range processor accepted")
	}
	if s.Placed() != 0 {
		t.Fatalf("failed assigns must not count: placed=%d", s.Placed())
	}
}

func TestUnassignInvertsAssign(t *testing.T) {
	s := New(3)
	p1, err := s.Assign([]int32{0, 1, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.AssignWeighted([]int32{0, 1, 2}, []int64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Unassign(p2, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Unassign(p1, 5); err != nil {
		t.Fatal(err)
	}
	if s.Placed() != 0 || s.Makespan() != 0 {
		t.Fatalf("placed=%d makespan=%d after full departure", s.Placed(), s.Makespan())
	}
	for i, l := range s.Loads() {
		if l != 0 {
			t.Fatalf("load[%d]=%d", i, l)
		}
	}
}

func TestUnassignErrors(t *testing.T) {
	s := New(2)
	if err := s.Unassign(0, 1); err == nil {
		t.Fatal("unassign with nothing placed accepted")
	}
	if _, err := s.Assign([]int32{0}, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Unassign(-1, 1); err == nil {
		t.Fatal("negative processor accepted")
	}
	if err := s.Unassign(0, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := s.Unassign(0, 3); err == nil {
		t.Fatal("over-release accepted (load would go negative)")
	}
	if err := s.Unassign(1, 1); err == nil {
		t.Fatal("release on an unloaded processor accepted")
	}
}

// A random churn of weighted arrivals and departures keeps the scheduler's
// load vector equal to one recomputed from the surviving placements.
func TestChurnLoadsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const procs = 5
	s := New(procs)
	type placement struct {
		p int32
		w int64
	}
	var live []placement
	for step := 0; step < 500; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			if err := s.Unassign(live[i].p, live[i].w); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		d := 1 + rng.Intn(procs)
		eligible := make([]int32, 0, d)
		weights := make([]int64, 0, d)
		for _, p := range rng.Perm(procs)[:d] {
			eligible = append(eligible, int32(p))
			weights = append(weights, 1+rng.Int63n(9))
		}
		p, err := s.AssignWeighted(eligible, weights)
		if err != nil {
			t.Fatal(err)
		}
		var w int64
		for i := range eligible {
			if eligible[i] == p {
				w = weights[i]
			}
		}
		live = append(live, placement{p, w})
	}
	want := make([]int64, procs)
	for _, pl := range live {
		want[pl.p] += pl.w
	}
	got := s.Loads()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("load[%d]=%d want %d", i, got[i], want[i])
		}
	}
	if s.Placed() != len(live) {
		t.Fatalf("placed=%d want %d", s.Placed(), len(live))
	}
}
