// Package online implements online variants of SINGLEPROC scheduling:
// tasks arrive one at a time and must be assigned to an eligible processor
// immediately and irrevocably. The paper's related work (Lee, Leung &
// Pinedo, J. Scheduling 2011 [18]) studies exactly this setting for equal
// processing times under machine eligibility constraints.
//
// For unit tasks with eligibility constraints, online greedy (assign to
// the least-loaded eligible processor) is the natural algorithm; its
// competitive ratio against the offline optimum is Θ(log p) in the worst
// case — the Chain family of Fig. 3 realizes the lower bound with
// k = log2(p) — while on random instances it stays close to 1. This
// package provides the online scheduler plus an experiment helper that
// measures empirical competitive ratios.
package online

import (
	"fmt"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
)

// Scheduler assigns arriving tasks to processors immediately. Create with
// New; feed arrivals with Assign.
type Scheduler struct {
	nProcs int
	loads  []int64
	placed int
}

// New returns an online scheduler over nProcs processors.
func New(nProcs int) *Scheduler {
	return &Scheduler{nProcs: nProcs, loads: make([]int64, nProcs)}
}

// Loads returns a copy of the current processor loads.
func (s *Scheduler) Loads() []int64 {
	return append([]int64(nil), s.loads...)
}

// Makespan returns the current maximum load.
func (s *Scheduler) Makespan() int64 {
	max := int64(0)
	for _, l := range s.loads {
		if l > max {
			max = l
		}
	}
	return max
}

// Placed returns the number of tasks assigned so far.
func (s *Scheduler) Placed() int { return s.placed }

// Assign places a task that may run on any processor in eligible, taking
// weight time units, onto the least-loaded eligible processor (ties to
// the lowest index). It returns the chosen processor.
func (s *Scheduler) Assign(eligible []int32, weight int64) (int32, error) {
	if len(eligible) == 0 {
		return -1, fmt.Errorf("online: task with empty eligibility set")
	}
	if weight <= 0 {
		return -1, fmt.Errorf("online: non-positive weight %d", weight)
	}
	best := int32(-1)
	var bestLoad int64
	for _, p := range eligible {
		if p < 0 || int(p) >= s.nProcs {
			return -1, fmt.Errorf("online: processor %d out of range", p)
		}
		if best == -1 || s.loads[p] < bestLoad {
			best, bestLoad = p, s.loads[p]
		}
	}
	s.loads[best] += weight
	s.placed++
	return best, nil
}

// AssignWeighted places a task whose processing time depends on the
// processor chosen: weights[i] is the task's duration on eligible[i]. It
// picks the placement minimizing the resulting load (load + weight, ties
// to the lowest processor index) — the natural online rule when, as in
// MULTIPROC, different configurations of one task cost different amounts.
func (s *Scheduler) AssignWeighted(eligible []int32, weights []int64) (int32, error) {
	if len(eligible) == 0 {
		return -1, fmt.Errorf("online: task with empty eligibility set")
	}
	if len(weights) != len(eligible) {
		return -1, fmt.Errorf("online: %d weights for %d eligible processors", len(weights), len(eligible))
	}
	best := int32(-1)
	var bestW, bestAfter int64
	for i, p := range eligible {
		if p < 0 || int(p) >= s.nProcs {
			return -1, fmt.Errorf("online: processor %d out of range", p)
		}
		if weights[i] <= 0 {
			return -1, fmt.Errorf("online: non-positive weight %d", weights[i])
		}
		after := s.loads[p] + weights[i]
		if best == -1 || after < bestAfter || (after == bestAfter && p < best) {
			best, bestW, bestAfter = p, weights[i], after
		}
	}
	s.loads[best] += bestW
	s.placed++
	return best, nil
}

// Unassign removes a departing task from the schedule: the weight it was
// contributing to processor p is released. It is the inverse of the
// Assign/AssignWeighted call that placed the task, so dynamic sessions
// can patch departures without rebuilding the scheduler.
func (s *Scheduler) Unassign(p int32, weight int64) error {
	if p < 0 || int(p) >= s.nProcs {
		return fmt.Errorf("online: processor %d out of range", p)
	}
	if weight <= 0 {
		return fmt.Errorf("online: non-positive weight %d", weight)
	}
	if s.loads[p] < weight {
		return fmt.Errorf("online: unassigning %d from processor %d with load %d", weight, p, s.loads[p])
	}
	if s.placed == 0 {
		return fmt.Errorf("online: no tasks placed")
	}
	s.loads[p] -= weight
	s.placed--
	return nil
}

// Replay feeds the tasks of a SINGLEPROC instance to an online scheduler
// in the given arrival order (task indices; nil means index order) and
// returns the resulting assignment and makespan.
func Replay(g *bipartite.Graph, order []int32) (core.Assignment, int64, error) {
	s := New(g.NRight)
	a := make(core.Assignment, g.NLeft)
	for i := range a {
		a[i] = core.Unassigned
	}
	n := g.NLeft
	for i := 0; i < n; i++ {
		t := int32(i)
		if order != nil {
			t = order[i]
		}
		row := g.Neighbors(int(t))
		w := int64(1)
		// For weighted graphs the online task carries one weight per
		// eligible processor; the model here uses the minimum edge weight
		// (the task's intrinsic size), keeping the unit case exact.
		if ws := g.Weights(int(t)); ws != nil {
			w = ws[0]
			for _, x := range ws[1:] {
				if x < w {
					w = x
				}
			}
		}
		p, err := s.Assign(row, w)
		if err != nil {
			return nil, 0, fmt.Errorf("online: task %d: %w", t, err)
		}
		a[t] = p
	}
	return a, s.Makespan(), nil
}

// CompetitiveRatio replays the instance online (index order) and divides
// by the offline optimal makespan (exact algorithm; unit graphs only).
func CompetitiveRatio(g *bipartite.Graph) (float64, error) {
	_, m, err := Replay(g, nil)
	if err != nil {
		return 0, err
	}
	_, opt, err := core.ExactUnit(g, core.ExactOptions{})
	if err != nil {
		return 0, err
	}
	return float64(m) / float64(opt), nil
}
