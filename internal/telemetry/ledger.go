package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// InstanceFeatures are the cheap, solver-independent features of one
// problem instance — the inputs of the adaptive auto policy the ledger
// feeds. Extracting them costs one pass over the instance arrays.
type InstanceFeatures struct {
	// Class is the problem class ("SINGLEPROC" or "MULTIPROC").
	Class string `json:"class"`
	// Tasks and Procs are the instance dimensions (n and p).
	Tasks int `json:"tasks"`
	Procs int `json:"procs"`
	// Edges is the number of assignment options: graph edges for
	// SINGLEPROC, configurations for MULTIPROC.
	Edges int `json:"edges"`
	// Density is Edges normalized by Tasks*Procs (how constrained the
	// eligibility structure is; 1 means fully dense).
	Density float64 `json:"density"`
	// WMin and WMax bound the positive weights; WSpread is WMax/WMin
	// (1 for unit or uniform weights).
	WMin    int64   `json:"w_min"`
	WMax    int64   `json:"w_max"`
	WSpread float64 `json:"w_spread"`
}

// SolveRecord is one line of the solve ledger: which instance
// (features + fingerprint), which algorithm ran, and what it cost and
// produced. Every bench and service solve appends one.
type SolveRecord struct {
	// Time is the record timestamp, RFC 3339.
	Time string `json:"time"`
	// Source identifies the producer ("bench", "service", "cli").
	Source string `json:"source"`
	// Fingerprint is the canonical instance fingerprint (may be empty
	// for producers that skip canonicalization).
	Fingerprint string `json:"fingerprint,omitempty"`

	InstanceFeatures

	// Algorithm is the registry name that produced the result ("auto"
	// when the portfolio policy chose).
	Algorithm string `json:"algorithm"`
	// WallS is the solve wall time in seconds.
	WallS float64 `json:"wall_s"`
	// Nodes is the number of branch-and-bound nodes explored (0 for
	// pure heuristics).
	Nodes int64 `json:"nodes"`
	// Makespan is the reported objective value.
	Makespan int64 `json:"makespan"`
	// Bound is the best lower bound known at the end (0 if unknown).
	Bound int64 `json:"bound,omitempty"`
	// Status is the report status ("optimal", "heuristic", "truncated").
	Status string `json:"status"`
	// Trust is the certificate trust tier ("verified", "attested",
	// "heuristic"), empty when no certificate was issued.
	Trust string `json:"trust,omitempty"`
}

// Ledger is an append-only JSONL file of SolveRecords. Append is safe
// for concurrent use; each record is written with a single buffered
// write and flushed immediately, so a crash loses at most the record
// being written and concurrent appenders never interleave lines.
type Ledger struct {
	mu  sync.Mutex
	w   *bufio.Writer
	f   *os.File
	err error
}

// OpenLedger opens (creating or appending to) the JSONL ledger at path.
func OpenLedger(path string) (*Ledger, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open ledger: %w", err)
	}
	return &Ledger{w: bufio.NewWriter(f), f: f}, nil
}

// NewLedger wraps an arbitrary writer (tests, in-memory collection).
func NewLedger(w io.Writer) *Ledger {
	return &Ledger{w: bufio.NewWriter(w)}
}

// Append writes one record as a JSON line. If the record has no
// timestamp yet, now is stamped in. Errors are sticky: after a failed
// write, subsequent Appends return the first error.
func (l *Ledger) Append(rec SolveRecord) error {
	if rec.Time == "" {
		rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("telemetry: marshal ledger record: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		l.err = err
		return err
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	return nil
}

// Close flushes and closes the underlying file (if any).
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.w.Flush()
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
	}
	if l.err != nil {
		return l.err
	}
	return err
}

// ReadLedger parses a JSONL ledger stream back into records — the
// consumer side for analysis and the future adaptive policy. Blank
// lines are skipped; a malformed line is an error (the ledger is
// machine-written).
func ReadLedger(r io.Reader) ([]SolveRecord, error) {
	var recs []SolveRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec SolveRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: ledger line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read ledger: %w", err)
	}
	return recs, nil
}
