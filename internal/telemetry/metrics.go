package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry is a small, dependency-free metrics registry that renders the
// Prometheus text exposition format (version 0.0.4). It supports
// counters, gauges (stored or function-backed) and fixed-bucket
// histograms. Registration order is preserved in the output; metric
// names must be unique across the registry (Register panics otherwise —
// metric wiring is a startup-time, programmer-controlled act).
//
// All operations are safe for concurrent use: observation paths touch
// only atomics, and a scrape reads a consistent-enough snapshot without
// blocking observers.
type Registry struct {
	mu     sync.Mutex
	fams   []metric
	byName map[string]struct{}
}

// metric is one registered family: it knows how to render itself.
type metric interface {
	write(w io.Writer) error
	name() string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name()]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.name()))
	}
	r.byName[m.name()] = struct{}{}
	r.fams = append(r.fams, m)
}

// WritePrometheus renders every registered metric in the Prometheus text
// format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]metric(nil), r.fams...)
	r.mu.Unlock()
	for _, m := range fams {
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}

// header writes the # HELP / # TYPE preamble of one family.
func header(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- counter ---

// Counter is a monotonically increasing metric.
type Counter struct {
	nm, help string
	v        atomic.Uint64
	fn       func() uint64 // function-backed counters read fn instead of v
}

// Counter registers and returns a stored counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{nm: name, help: help}
	r.register(c)
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge to counters another layer already maintains.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&Counter{nm: name, help: help, fn: fn})
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c.fn != nil {
		return c.fn()
	}
	return c.v.Load()
}

func (c *Counter) name() string { return c.nm }

func (c *Counter) write(w io.Writer) error {
	if err := header(w, c.nm, c.help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.nm, c.Value())
	return err
}

// --- gauge ---

// Gauge is a metric that can go up and down.
type Gauge struct {
	nm, help string
	bits     atomic.Uint64 // float64 bits
	fn       func() float64
}

// Gauge registers and returns a stored gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{nm: name, help: help}
	r.register(g)
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&Gauge{nm: name, help: help, fn: fn})
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) name() string { return g.nm }

func (g *Gauge) write(w io.Writer) error {
	if err := header(w, g.nm, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", g.nm, formatFloat(g.Value()))
	return err
}

// --- histogram ---

// Histogram counts observations into fixed cumulative buckets. Observe
// is lock-free (one atomic add per observation plus an atomic float sum),
// so it is safe on request paths.
type Histogram struct {
	nm, help string
	bounds   []float64 // ascending upper bounds, +Inf implicit
	counts   []atomic.Uint64
	sumBits  atomic.Uint64
	count    atomic.Uint64
}

// DefLatencyBuckets is the default request-latency bucket ladder, in
// seconds: half a millisecond to a minute, roughly 2–2.5× per step.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds (nil means DefLatencyBuckets). The +Inf bucket is
// implicit. Panics on unsorted bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
	}
	h := &Histogram{
		nm:     name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v: its bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) name() string { return h.nm }

func (h *Histogram) write(w io.Writer) error {
	if err := header(w, h.nm, h.help, "histogram"); err != nil {
		return err
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nm, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.nm, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", h.nm, h.count.Load())
	return err
}
