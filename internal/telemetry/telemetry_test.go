package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := StartSpan("solve")
	c1 := root.StartChild("compile")
	c1.SetAttr("nodes", 10)
	c1.End()
	c2 := root.StartChild("search")
	c2.SetAttr("nodes", 42)
	c2.SetAttr("nodes", 43) // overwrite
	c2.End()
	root.AddChild("verify", time.Now(), 5*time.Millisecond)
	root.End()

	kids := root.Children()
	if len(kids) != 3 {
		t.Fatalf("children = %d, want 3", len(kids))
	}
	if v, ok := c2.Attr("nodes"); !ok || v != 43 {
		t.Fatalf("attr nodes = %v %v, want 43 true", v, ok)
	}
	if _, ok := c2.Attr("missing"); ok {
		t.Fatal("unexpected attr")
	}
	if kids[2].Wall() != 5*time.Millisecond {
		t.Fatalf("pre-measured child wall = %v", kids[2].Wall())
	}
	if root.Wall() <= 0 {
		t.Fatalf("root wall = %v", root.Wall())
	}

	// End is idempotent.
	w := root.Wall()
	time.Sleep(2 * time.Millisecond)
	root.End()
	if root.Wall() != w {
		t.Fatal("End not idempotent")
	}

	// Adopt grafts an external tree; nil is ignored.
	req := StartSpan("request")
	req.Adopt(root)
	req.Adopt(nil)
	if got := req.Children(); len(got) != 1 || got[0] != root {
		t.Fatalf("adopt: children = %v", got)
	}
}

func TestWriteNDJSON(t *testing.T) {
	root := StartSpan("solve")
	c := root.StartChild("exact")
	c.StartChild("search").End()
	c.End()
	root.End()

	var buf bytes.Buffer
	if err := root.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []spanRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r spanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 3 {
		t.Fatalf("lines = %d, want 3", len(recs))
	}
	want := []struct {
		name, path string
		depth      int
	}{
		{"solve", "solve", 0},
		{"exact", "solve/exact", 1},
		{"search", "solve/exact/search", 2},
	}
	for i, w := range want {
		if recs[i].Name != w.name || recs[i].Path != w.path || recs[i].Depth != w.depth {
			t.Fatalf("line %d = %+v, want %+v", i, recs[i], w)
		}
		if recs[i].WallS < 0 {
			t.Fatalf("line %d wall_s = %v", i, recs[i].WallS)
		}
	}
	if !strings.Contains(root.Format(), "search") {
		t.Fatal("Format missing child")
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Total requests.")
	c.Add(3)
	r.CounterFunc("test_hits_total", "Hits.", func() uint64 { return 7 })
	g := r.Gauge("test_inflight", "In flight.")
	g.Set(2.5)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 12 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP test_requests_total Total requests.",
		"# TYPE test_requests_total counter",
		"test_requests_total 3",
		"test_hits_total 7",
		"# TYPE test_inflight gauge",
		"test_inflight 2.5",
		"test_uptime_seconds 12",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="10"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 100.55",
		"test_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 3 || math.Abs(h.Sum()-100.55) > 1e-9 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

// TestHistogramBucketMonotone asserts the cumulative bucket invariant
// that makes the output valid Prometheus histogram text.
func TestHistogramBucketMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mono_seconds", "m", nil)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) * 0.07)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	last := int64(-1)
	sc := bufio.NewScanner(&buf)
	buckets := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "mono_seconds_bucket") {
			continue
		}
		buckets++
		var v int64
		fields := strings.Fields(line)
		if _, err := json.Number(fields[len(fields)-1]).Int64(); err != nil {
			t.Fatalf("bad bucket value in %q", line)
		}
		n, _ := json.Number(fields[len(fields)-1]).Int64()
		v = n
		if v < last {
			t.Fatalf("bucket counts not monotone at %q (prev %d)", line, last)
		}
		last = v
	}
	if buckets != len(DefLatencyBuckets)+1 {
		t.Fatalf("buckets = %d, want %d", buckets, len(DefLatencyBuckets)+1)
	}
	if last != 1000 {
		t.Fatalf("+Inf bucket = %d, want 1000", last)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "d")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric name")
		}
	}()
	r.Gauge("dup_total", "d")
}

// TestRegistryRace hammers the registry from concurrent observers and
// scrapers — the shape of a live server with solves in flight. Run
// under -race in CI.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_requests_total", "r")
	g := r.Gauge("race_inflight", "r")
	h := r.Histogram("race_latency_seconds", "r", nil)
	var n sync.WaitGroup
	for i := 0; i < 8; i++ {
		n.Add(1)
		go func(i int) {
			defer n.Done()
			for j := 0; j < 2000; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(float64(j) * 0.001)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		n.Add(1)
		go func() {
			defer n.Done()
			for j := 0; j < 50; j++ {
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	n.Wait()
	if c.Value() != 16000 {
		t.Fatalf("counter = %d, want 16000", c.Value())
	}
	if h.Count() != 16000 {
		t.Fatalf("histogram count = %d, want 16000", h.Count())
	}
}

// TestSpanRace exercises concurrent child creation, attrs, and NDJSON
// snapshots on a live span tree.
func TestSpanRace(t *testing.T) {
	root := StartSpan("solve")
	var n sync.WaitGroup
	for i := 0; i < 4; i++ {
		n.Add(1)
		go func(i int) {
			defer n.Done()
			for j := 0; j < 200; j++ {
				c := root.StartChild("phase")
				c.SetAttr("i", i)
				c.End()
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		n.Add(1)
		go func() {
			defer n.Done()
			for j := 0; j < 20; j++ {
				var buf bytes.Buffer
				if err := root.WriteNDJSON(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	n.Wait()
	root.End()
	if got := len(root.Children()); got != 800 {
		t.Fatalf("children = %d, want 800", got)
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf)
	recs := []SolveRecord{
		{
			Source:      "bench",
			Fingerprint: "abc123",
			InstanceFeatures: InstanceFeatures{
				Class: "MULTIPROC", Tasks: 12, Procs: 4, Edges: 36,
				Density: 0.75, WMin: 1, WMax: 40, WSpread: 40,
			},
			Algorithm: "bnb-mp", WallS: 0.25, Nodes: 1234,
			Makespan: 17, Bound: 17, Status: "optimal", Trust: "verified",
		},
		{
			Source: "service",
			InstanceFeatures: InstanceFeatures{
				Class: "SINGLEPROC", Tasks: 100, Procs: 8, Edges: 800,
				Density: 1, WMin: 1, WMax: 1, WSpread: 1,
			},
			Algorithm: "auto", WallS: 0.001, Nodes: 0,
			Makespan: 13, Status: "heuristic",
		},
	}
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLedger(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d, want 2", len(got))
	}
	if got[0].Time == "" {
		t.Fatal("Append did not stamp time")
	}
	if got[0].Fingerprint != "abc123" || got[0].Nodes != 1234 || got[0].Trust != "verified" {
		t.Fatalf("record 0 = %+v", got[0])
	}
	if got[1].Class != "SINGLEPROC" || got[1].Algorithm != "auto" {
		t.Fatalf("record 1 = %+v", got[1])
	}
}

func TestLedgerFile(t *testing.T) {
	path := t.TempDir() + "/ledger.jsonl"
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	var n sync.WaitGroup
	for i := 0; i < 8; i++ {
		n.Add(1)
		go func(i int) {
			defer n.Done()
			for j := 0; j < 25; j++ {
				if err := l.Append(SolveRecord{Source: "cli", Algorithm: "greedy", Makespan: int64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	n.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-open appends rather than truncating.
	l2, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(SolveRecord{Source: "cli", Algorithm: "greedy"}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadLedger(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 201 {
		t.Fatalf("records = %d, want 201", len(recs))
	}
}

func TestReadLedgerMalformed(t *testing.T) {
	if _, err := ReadLedger(strings.NewReader("{\"source\":\"x\"}\nnot json\n")); err == nil {
		t.Fatal("expected error on malformed line")
	}
}
