package telemetry

import "time"

// SearchProgress is one periodic snapshot of a running branch-and-bound
// search. The engines emit it from their existing budget-block
// checkpoints (never per node), rate-limited by wall clock, so taking
// snapshots does not perturb the search: node counts with and without a
// progress hook are identical.
type SearchProgress struct {
	// Elapsed is the wall time since the search started.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Nodes is the number of nodes expanded so far (published counts;
	// in-flight per-worker blocks are flushed at block boundaries).
	Nodes int64 `json:"nodes"`
	// NodesPerSec is the average expansion rate since the search began.
	NodesPerSec float64 `json:"nodes_per_sec"`
	// Incumbent is the best makespan found so far (math.MaxInt64-scale
	// sentinel if none yet; Gap reports -1 then).
	Incumbent int64 `json:"incumbent"`
	// Bound is the root lower bound the search started from.
	Bound int64 `json:"bound"`
	// Gap is (Incumbent-Bound)/Bound, or -1 while no incumbent exists.
	// 0 means the incumbent has met the root bound.
	Gap float64 `json:"gap"`
	// Workers is the size of the worker pool.
	Workers int `json:"workers"`
	// Steals counts work-stealing events so far.
	Steals int64 `json:"steals"`
	// Subproblems counts frontier subproblems generated for the pool.
	Subproblems int64 `json:"subproblems"`
	// Pending is the number of unfinished subproblems.
	Pending int64 `json:"pending"`
	// DequeDepths is the current per-worker deque depth (local work
	// queued but not yet expanded), indexed by worker.
	DequeDepths []int `json:"deque_depths,omitempty"`
}

// ProgressFunc receives periodic SearchProgress snapshots. It is called
// from a search worker goroutine (at most one call at a time) and must
// return quickly; anything slow should hand off to its own goroutine.
type ProgressFunc func(SearchProgress)

// DefaultProgressInterval is the snapshot rate limit used when a
// progress hook is installed without an explicit interval.
const DefaultProgressInterval = 250 * time.Millisecond
