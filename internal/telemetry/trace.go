// Package telemetry is the observability layer of the repo: solve traces
// (lightweight spans with wall times and attributes, emitted as NDJSON),
// a dependency-free Prometheus-text metrics registry, periodic search
// progress snapshots, and the append-only solve ledger that records
// (instance features → algorithm, time, quality) for every bench and
// service solve.
//
// The package deliberately depends on the standard library only, and on
// nothing else in the repo, so every layer — the exact engines, the solve
// API, the service, the benchmarks and the CLIs — can import it without
// cycles. It defines the vocabulary (Span, SearchProgress, SolveRecord,
// Registry); the layers fill it in.
//
// Everything here is off the hot path by construction: spans are created
// per solve phase (never per search node), progress snapshots are polled
// at the engines' existing budget-block checkpoints and rate-limited by
// wall clock, metric scrapes read atomics, and ledger appends happen once
// per solve. With no trace, progress hook, or ledger attached, the cost
// is a nil check.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one timed phase of a larger operation: a name, a wall-clock
// interval, ordered attributes, and child spans. Spans form a tree; the
// root of one recorded operation is also called its Trace. A Span's
// methods are safe for concurrent use, but the usual pattern is
// single-threaded: start a child, do the work, End it.
//
// All methods are nil-receiver-safe: starting a child of a nil span
// returns nil, and End/SetAttr/Adopt on nil are no-ops. Instrumented
// code therefore threads an optional *Span through unconditionally —
// when tracing is off the whole chain degenerates to nil checks.
type Span struct {
	// Name identifies the phase ("compile", "search", "verify", ...).
	Name string
	// Start is when the span began.
	Start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Trace is the root Span of one recorded operation — an alias kept so
// call sites read Report.Trace rather than a bare Span.
type Trace = Span

// Attr is one span attribute. Values should be JSON-encodable scalars
// (numbers, strings, bools).
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// StartSpan starts a root span.
func StartSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild starts a new child span of s (nil when s is nil).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddChild attaches a pre-measured child span (a phase whose duration was
// recorded elsewhere, e.g. inside a compiled kernel) and returns it.
func (s *Span) AddChild(name string, start time.Time, wall time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: start, end: start.Add(wall)}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Adopt attaches an independently recorded span tree as a child of s —
// the service uses it to graft a solve's trace under its request span.
// nil children are ignored.
func (s *Span) Adopt(child *Span) {
	if s == nil || child == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
}

// End marks the span finished now. Ending twice keeps the first end.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Wall is the span's wall-clock duration: end−start for a finished span,
// time-since-start for a live one.
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.Start)
	}
	return end.Sub(s.Start)
}

// SetAttr records (or overwrites) one attribute.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Attr returns the value of one attribute, or (nil, false).
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// Children returns a snapshot of the child spans, in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// spanRecord is the NDJSON line of one span.
type spanRecord struct {
	Name  string         `json:"name"`
	Path  string         `json:"path"`
	Depth int            `json:"depth"`
	Start string         `json:"start"`
	WallS float64        `json:"wall_s"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// record snapshots one span into its NDJSON form.
func (s *Span) record(path string, depth int) spanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := spanRecord{
		Name:  s.Name,
		Path:  path,
		Depth: depth,
		Start: s.Start.UTC().Format(time.RFC3339Nano),
	}
	end := s.end
	if end.IsZero() {
		end = time.Now()
	}
	rec.WallS = end.Sub(s.Start).Seconds()
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	return rec
}

// WriteNDJSON writes the span tree depth-first as newline-delimited JSON,
// one object per span: {"name", "path", "depth", "start", "wall_s",
// "attrs"}. Children follow their parent, so the tree can be rebuilt
// from paths (or read flat: depth-1 spans of a solve trace partition the
// root's wall time).
func (s *Span) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	var walk func(sp *Span, path string, depth int) error
	walk = func(sp *Span, path string, depth int) error {
		if err := enc.Encode(sp.record(path, depth)); err != nil {
			return err
		}
		for _, c := range sp.Children() {
			if err := walk(c, path+"/"+c.Name, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(s, s.Name, 0)
}

// Format renders the span tree as an indented human-readable listing —
// the -trace summary view.
func (s *Span) Format() string {
	var sb []byte
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		rec := sp.record("", depth)
		for i := 0; i < depth; i++ {
			sb = append(sb, "  "...)
		}
		sb = append(sb, fmt.Sprintf("%-12s %10.6fs", rec.Name, rec.WallS)...)
		if len(rec.Attrs) > 0 {
			b, _ := json.Marshal(rec.Attrs)
			sb = append(sb, ' ')
			sb = append(sb, b...)
		}
		sb = append(sb, '\n')
		for _, c := range sp.Children() {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
	return string(sb)
}
