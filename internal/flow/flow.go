// Package flow implements Dinic's maximum-flow algorithm on unit-ish
// integer-capacity networks. Bipartite matching — the engine of the exact
// SINGLEPROC-UNIT algorithm — is the classic special case of max flow, and
// this package provides the general substrate plus a flow-based
// feasibility oracle that cross-checks the matching-based one: "can all n
// tasks be scheduled with deadline D?" is exactly "does the network
// source→tasks→processors→sink with processor capacity D carry flow n?".
//
// The implementation is a standard adjacency-array Dinic: BFS level graph,
// blocking-flow DFS with iteration pointers, O(E·√V) on unit networks.
package flow

import (
	"fmt"

	"semimatch/internal/bipartite"
)

// Network is a directed graph with integer arc capacities supporting
// residual updates. Arcs are stored in pairs: arc k and k^1 are mutual
// reverses.
type Network struct {
	n    int
	head [][]int32 // head[v] = arc indices out of v
	to   []int32
	cap  []int64
}

// NewNetwork returns an empty network with n vertices.
func NewNetwork(n int) *Network {
	return &Network{n: n, head: make([][]int32, n)}
}

// NumVertices returns the vertex count.
func (g *Network) NumVertices() int { return g.n }

// AddArc adds a directed arc u→v with the given capacity (and its zero-
// capacity reverse), returning the arc index for flow queries.
func (g *Network) AddArc(u, v int, capacity int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("flow: arc (%d,%d) out of range", u, v))
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	k := len(g.to)
	g.to = append(g.to, int32(v), int32(u))
	g.cap = append(g.cap, capacity, 0)
	g.head[u] = append(g.head[u], int32(k))
	g.head[v] = append(g.head[v], int32(k+1))
	return k
}

// Flow returns the flow currently carried by arc k (that is, the capacity
// moved onto its reverse).
func (g *Network) Flow(k int) int64 { return g.cap[k^1] }

// MaxFlow runs Dinic from s to t and returns the total flow. The network
// retains the residual state, so Flow(k) reports per-arc flows afterwards.
func (g *Network) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	level := make([]int32, g.n)
	iter := make([]int, g.n)
	queue := make([]int32, 0, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, int32(s))
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, k := range g.head[v] {
				if g.cap[k] > 0 && level[g.to[k]] < 0 {
					level[g.to[k]] = level[v] + 1
					queue = append(queue, g.to[k])
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(v int32, f int64) int64
	dfs = func(v int32, f int64) int64 {
		if v == int32(t) {
			return f
		}
		for ; iter[v] < len(g.head[v]); iter[v]++ {
			k := g.head[v][iter[v]]
			w := g.to[k]
			if g.cap[k] <= 0 || level[w] != level[v]+1 {
				continue
			}
			d := f
			if g.cap[k] < d {
				d = g.cap[k]
			}
			got := dfs(w, d)
			if got > 0 {
				g.cap[k] -= got
				g.cap[k^1] += got
				return got
			}
		}
		return 0
	}

	const inf = int64(1) << 62
	total := int64(0)
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(int32(s), inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

// MatchingNetwork builds the flow network of a SINGLEPROC-UNIT deadline
// probe: source → each task (cap 1) → eligible processors (cap 1) → sink
// (cap d). It returns the network, the source and sink ids, and the arc
// index of each task→processor edge in CSR order (parallel to g.Adj).
func MatchingNetwork(g *bipartite.Graph, d int64) (net *Network, s, t int, edgeArcs []int) {
	n, p := g.NLeft, g.NRight
	net = NewNetwork(n + p + 2)
	s = n + p
	t = n + p + 1
	for task := 0; task < n; task++ {
		net.AddArc(s, task, 1)
	}
	edgeArcs = make([]int, g.NumEdges())
	for task := 0; task < n; task++ {
		for k := g.Ptr[task]; k < g.Ptr[task+1]; k++ {
			edgeArcs[k] = net.AddArc(task, n+int(g.Adj[k]), 1)
		}
	}
	for proc := 0; proc < p; proc++ {
		net.AddArc(n+proc, t, d)
	}
	return net, s, t, edgeArcs
}

// FeasibleDeadline reports whether every task of the unit instance can be
// scheduled with makespan at most d, and if so returns the assignment
// extracted from the flow.
func FeasibleDeadline(g *bipartite.Graph, d int64) ([]int32, bool) {
	net, s, t, edgeArcs := MatchingNetwork(g, d)
	if net.MaxFlow(s, t) != int64(g.NLeft) {
		return nil, false
	}
	assign := make([]int32, g.NLeft)
	for i := range assign {
		assign[i] = -1
	}
	for task := 0; task < g.NLeft; task++ {
		for k := g.Ptr[task]; k < g.Ptr[task+1]; k++ {
			if net.Flow(edgeArcs[k]) > 0 {
				assign[task] = g.Adj[k]
				break
			}
		}
	}
	return assign, true
}

// ExactUnitViaFlow solves SINGLEPROC-UNIT by bisection over the deadline
// with the flow oracle — an independent implementation used to cross-check
// core.ExactUnit.
func ExactUnitViaFlow(g *bipartite.Graph) ([]int32, int64, error) {
	if !g.Unit() {
		return nil, 0, fmt.Errorf("flow: unit graphs only")
	}
	for task := 0; task < g.NLeft; task++ {
		if g.Degree(task) == 0 {
			return nil, 0, fmt.Errorf("flow: task %d has no eligible processor", task)
		}
	}
	if g.NLeft == 0 {
		return []int32{}, 0, nil
	}
	lo := int64((g.NLeft + g.NRight - 1) / g.NRight)
	if lo < 1 {
		lo = 1
	}
	hi := int64(g.NLeft)
	var best []int32
	bestD := hi
	for lo < hi {
		mid := (lo + hi) / 2
		if a, ok := FeasibleDeadline(g, mid); ok {
			best, bestD = a, mid
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if best == nil || bestD != lo {
		a, ok := FeasibleDeadline(g, lo)
		if !ok {
			return nil, 0, fmt.Errorf("flow: internal error, lost feasibility at %d", lo)
		}
		best, bestD = a, lo
	}
	return best, bestD, nil
}
