package flow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/gen"
	"semimatch/internal/matching"
)

func TestMaxFlowTextbook(t *testing.T) {
	// Classic 6-vertex example with max flow 23.
	g := NewNetwork(6)
	g.AddArc(0, 1, 16)
	g.AddArc(0, 2, 13)
	g.AddArc(1, 2, 10)
	g.AddArc(2, 1, 4)
	g.AddArc(1, 3, 12)
	g.AddArc(3, 2, 9)
	g.AddArc(2, 4, 14)
	g.AddArc(4, 3, 7)
	g.AddArc(3, 5, 20)
	g.AddArc(4, 5, 4)
	if f := g.MaxFlow(0, 5); f != 23 {
		t.Fatalf("max flow = %d, want 23", f)
	}
}

func TestMaxFlowTrivia(t *testing.T) {
	g := NewNetwork(2)
	if g.MaxFlow(0, 0) != 0 {
		t.Fatal("s==t must be 0")
	}
	if g.MaxFlow(0, 1) != 0 {
		t.Fatal("no arcs must be 0")
	}
	k := g.AddArc(0, 1, 5)
	if g.MaxFlow(0, 1) != 5 {
		t.Fatal("single arc")
	}
	if g.Flow(k) != 5 {
		t.Fatalf("arc flow = %d", g.Flow(k))
	}
}

func TestAddArcPanics(t *testing.T) {
	g := NewNetwork(1)
	for _, f := range []func(){
		func() { g.AddArc(0, 5, 1) },
		func() { g.AddArc(-1, 0, 1) },
		func() { g.AddArc(0, 0, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFlowMatchingEqualsHopcroftKarp(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 1+rng.Intn(30), 1+rng.Intn(15)
		b := bipartite.NewBuilder(n, p)
		for task := 0; task < n; task++ {
			d := 1 + rng.Intn(4)
			if d > p {
				d = p
			}
			for _, v := range rng.Perm(p)[:d] {
				b.AddEdge(task, v)
			}
		}
		g := b.MustBuild()
		net, s, t2, _ := MatchingNetwork(g, 1)
		flowCard := net.MaxFlow(s, t2)
		m := matching.HopcroftKarp(matching.Wrap(g.NLeft, g.NRight, g.Ptr, g.Adj))
		return int(flowCard) == matching.Cardinality(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFeasibleDeadline(t *testing.T) {
	// 4 tasks on one processor: feasible iff d >= 4.
	b := bipartite.NewBuilder(4, 1)
	for task := 0; task < 4; task++ {
		b.AddEdge(task, 0)
	}
	g := b.MustBuild()
	if _, ok := FeasibleDeadline(g, 3); ok {
		t.Fatal("d=3 must be infeasible")
	}
	a, ok := FeasibleDeadline(g, 4)
	if !ok {
		t.Fatal("d=4 must be feasible")
	}
	for task, p := range a {
		if p != 0 {
			t.Fatalf("task %d assigned %d", task, p)
		}
	}
}

func TestExactViaFlowMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n, p := 1+rng.Intn(60), 1+rng.Intn(12)
		b := bipartite.NewBuilder(n, p)
		for task := 0; task < n; task++ {
			d := 1 + rng.Intn(4)
			if d > p {
				d = p
			}
			for _, v := range rng.Perm(p)[:d] {
				b.AddEdge(task, v)
			}
		}
		g := b.MustBuild()
		a, d1, err := ExactUnitViaFlow(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.ValidateAssignment(g, core.Assignment(a)); err != nil {
			t.Fatal(err)
		}
		if m := core.Makespan(g, core.Assignment(a)); m != d1 {
			t.Fatalf("assignment makespan %d != reported %d", m, d1)
		}
		_, d2, err := core.ExactUnit(g, core.ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("trial %d: flow %d vs matching %d", trial, d1, d2)
		}
	}
}

func TestExactViaFlowErrors(t *testing.T) {
	g, err := bipartite.NewFromAdjacency(1, [][]int{{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExactUnitViaFlow(g); err == nil {
		t.Fatal("isolated task accepted")
	}
	b := bipartite.NewBuilder(1, 1)
	b.AddWeightedEdge(0, 0, 2)
	if _, _, err := ExactUnitViaFlow(b.MustBuild()); err == nil {
		t.Fatal("weighted accepted")
	}
	empty, _ := bipartite.NewFromAdjacency(0, nil)
	if _, d, err := ExactUnitViaFlow(empty); err != nil || d != 0 {
		t.Fatalf("empty: %d %v", d, err)
	}
}

func TestExactViaFlowOnGeneratedInstances(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g, err := gen.Bipartite(gen.FewgManyg, 640, 64, 8, 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		_, d1, err := ExactUnitViaFlow(g)
		if err != nil {
			t.Fatal(err)
		}
		_, d2, err := core.ExactUnit(g, core.ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("seed %d: flow %d vs matching %d", seed, d1, d2)
		}
	}
}

func BenchmarkExactViaFlow(b *testing.B) {
	g, err := gen.Bipartite(gen.FewgManyg, 5120, 256, 32, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ExactUnitViaFlow(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxFlowMatching(b *testing.B) {
	g, err := gen.Bipartite(gen.FewgManyg, 20480, 1024, 32, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, s, t, _ := MatchingNetwork(g, 20)
		net.MaxFlow(s, t)
	}
}
