package batch

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/exact"
	"semimatch/internal/hypergraph"
	"semimatch/internal/solve"
)

func randomHyper(rng *rand.Rand, nTasks, nProcs, maxDeg, maxSize int, maxW int64) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(nTasks, nProcs)
	for t := 0; t < nTasks; t++ {
		d := 1 + rng.Intn(maxDeg)
		for j := 0; j < d; j++ {
			size := 1 + rng.Intn(maxSize)
			if size > nProcs {
				size = nProcs
			}
			w := int64(1)
			if maxW > 1 {
				w = 1 + rng.Int63n(maxW)
			}
			b.AddEdge(t, rng.Perm(nProcs)[:size], w)
		}
	}
	return b.MustBuild()
}

// hardHyper is a number-partitioning instance whose branch-and-bound
// search runs effectively forever without a node or time budget.
func hardHyper(seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	const n, p = 24, 3
	b := hypergraph.NewBuilder(n, p)
	for t := 0; t < n; t++ {
		w := 100_000_000 + rng.Int63n(900_000_000)
		for u := 0; u < p; u++ {
			b.AddEdge(t, []int{u}, w)
		}
	}
	return b.MustBuild()
}

func mixedBatch(n int) []*hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(99))
	out := make([]*hypergraph.Hypergraph, n)
	for i := range out {
		// Alternate small (exact-eligible) and medium instances.
		if i%2 == 0 {
			out[i] = randomHyper(rng, 2+rng.Intn(14), 2+rng.Intn(4), 3, 3, 9)
		} else {
			out[i] = randomHyper(rng, 20+rng.Intn(40), 4+rng.Intn(8), 4, 4, 20)
		}
	}
	return out
}

func TestBatchResultsIndependentOfWorkerCount(t *testing.T) {
	instances := mixedBatch(100)
	r1, err1 := New(Options{Workers: 1, Refine: true}).Run(context.Background(), instances)
	rN, errN := New(Options{Workers: runtime.GOMAXPROCS(0), Refine: true}).Run(context.Background(), instances)
	if err1 != nil || errN != nil {
		t.Fatal(err1, errN)
	}
	if len(r1) != 100 || len(rN) != 100 {
		t.Fatalf("lengths %d, %d", len(r1), len(rN))
	}
	for i := range r1 {
		if r1[i].Err != nil || rN[i].Err != nil {
			t.Fatalf("instance %d: unexpected errors %v, %v", i, r1[i].Err, rN[i].Err)
		}
		if r1[i].Makespan != rN[i].Makespan || r1[i].Source != rN[i].Source || r1[i].Optimal != rN[i].Optimal {
			t.Fatalf("instance %d: Workers=1 %+v vs Workers=N %+v", i, r1[i], rN[i])
		}
		if !reflect.DeepEqual(r1[i].Assignment, rN[i].Assignment) {
			t.Fatalf("instance %d: assignments differ across worker counts", i)
		}
		if err := core.ValidateHyperAssignment(instances[i], r1[i].Assignment); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if core.HyperMakespan(instances[i], r1[i].Assignment) != r1[i].Makespan {
			t.Fatalf("instance %d: reported makespan mismatch", i)
		}
	}
}

func TestBatchCancelMidBatchStopsPromptly(t *testing.T) {
	// Every instance pins a worker in an effectively unbounded
	// branch-and-bound; only cancellation can end the batch early.
	// Workers is pinned below the instance count so some instances are
	// still queued at cancel time on any machine, however many cores.
	instances := make([]*hypergraph.Hypergraph, 32)
	for i := range instances {
		instances[i] = hardHyper(int64(i))
	}
	r := New(Options{Workers: 4, ExactTaskLimit: 64, ExactNodes: 1 << 60})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results, err := r.Run(ctx, instances)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if len(results) != len(instances) {
		t.Fatalf("got %d results", len(results))
	}
	valid, failed := 0, 0
	for i, res := range results {
		switch {
		case res.Err != nil:
			failed++
		default:
			// An in-flight instance keeps its best schedule so far.
			if err := core.ValidateHyperAssignment(instances[i], res.Assignment); err != nil {
				t.Fatalf("instance %d: %v", i, err)
			}
			valid++
		}
	}
	if valid == 0 {
		t.Fatal("expected at least the in-flight instances to return schedules")
	}
	if failed == 0 {
		t.Fatal("expected unstarted instances to carry errors after early cancel")
	}
}

func TestBatchErrorIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	good1 := randomHyper(rng, 12, 4, 3, 3, 9)
	good2 := randomHyper(rng, 30, 6, 4, 3, 9)
	// A structurally broken instance: NTasks claims 4 tasks but there are
	// no edges, so the heuristics panic indexing TaskPtr. The batch must
	// contain the panic to this instance.
	broken := &hypergraph.Hypergraph{NTasks: 4, NProcs: 2}
	instances := []*hypergraph.Hypergraph{good1, nil, good2, broken}
	results, err := New(Options{Workers: 2}).Run(context.Background(), instances)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Err == nil {
		t.Fatal("nil instance must error")
	}
	if results[3].Err == nil {
		t.Fatal("broken instance must error (recovered panic)")
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("sibling %d poisoned: %v", i, results[i].Err)
		}
		if err := core.ValidateHyperAssignment(instances[i], results[i].Assignment); err != nil {
			t.Fatalf("sibling %d: %v", i, err)
		}
	}
}

func TestBatchUnknownAlgorithmFailsFast(t *testing.T) {
	instances := mixedBatch(3)
	results, err := New(Options{Algorithms: []string{"nope"}}).Run(context.Background(), instances)
	if err == nil || results != nil {
		t.Fatalf("want upfront config error, got results=%v err=%v", results, err)
	}
}

func TestBatchExactStageProvesOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	instances := make([]*hypergraph.Hypergraph, 20)
	for i := range instances {
		instances[i] = randomHyper(rng, 2+rng.Intn(10), 2+rng.Intn(3), 3, 3, 6)
	}
	withExact, err := New(Options{Refine: true}).Run(context.Background(), instances)
	if err != nil {
		t.Fatal(err)
	}
	heuristicOnly, err := New(Options{Refine: true, ExactTaskLimit: -1}).Run(context.Background(), instances)
	if err != nil {
		t.Fatal(err)
	}
	optimal := 0
	for i := range withExact {
		if withExact[i].Err != nil || heuristicOnly[i].Err != nil {
			t.Fatalf("instance %d: %v / %v", i, withExact[i].Err, heuristicOnly[i].Err)
		}
		if withExact[i].Optimal {
			optimal++
			if heuristicOnly[i].Makespan < withExact[i].Makespan {
				t.Fatalf("instance %d: heuristic %d beat proven optimum %d",
					i, heuristicOnly[i].Makespan, withExact[i].Makespan)
			}
			if heuristicOnly[i].Optimal {
				t.Fatalf("instance %d: heuristic-only run must not claim optimality", i)
			}
		}
	}
	if optimal == 0 {
		t.Fatal("tiny instances should be solved to proven optimality")
	}
}

func TestBatchInstanceTimeoutFallsBackToHeuristic(t *testing.T) {
	// One hard instance with an unbounded node budget: without the
	// per-instance timeout this would never finish.
	instances := []*hypergraph.Hypergraph{hardHyper(7)}
	r := New(Options{ExactTaskLimit: 64, ExactNodes: 1 << 60, InstanceTimeout: 20 * time.Millisecond})
	start := time.Now()
	results, err := r.Run(context.Background(), instances)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout not honored: %v", elapsed)
	}
	res := results[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Optimal {
		t.Fatal("a timed-out search must not claim optimality")
	}
	if err := core.ValidateHyperAssignment(instances[0], res.Assignment); err != nil {
		t.Fatal(err)
	}
}

// randomGraph builds a seeded SINGLEPROC instance (unit or weighted).
func randomGraph(rng *rand.Rand, nTasks, nProcs, maxDeg int, maxW int64) *bipartite.Graph {
	b := bipartite.NewBuilder(nTasks, nProcs)
	for t := 0; t < nTasks; t++ {
		d := 1 + rng.Intn(maxDeg)
		perm := rng.Perm(nProcs)
		for j := 0; j < d && j < nProcs; j++ {
			w := int64(1)
			if maxW > 1 {
				w = 1 + rng.Int63n(maxW)
			}
			b.AddWeightedEdge(t, perm[j], w)
		}
	}
	return b.MustBuild()
}

// TestBatchSingleProcProblems: SINGLEPROC batching through the
// class-generic runner — the workload the hypergraph-only SolveBatch
// could never serve. Unit instances get the polynomial ExactUnit proof,
// small weighted ones the branch-and-bound attempt.
func TestBatchSingleProcProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var problems []solve.Problem
	for i := 0; i < 24; i++ {
		if i%2 == 0 {
			problems = append(problems, solve.Bipartite(randomGraph(rng, 10+rng.Intn(30), 2+rng.Intn(6), 3, 1)))
		} else {
			problems = append(problems, solve.Bipartite(randomGraph(rng, 6+rng.Intn(8), 2+rng.Intn(3), 3, 9)))
		}
	}
	outs, err := New(Options{}).RunProblems(context.Background(), problems)
	if err != nil {
		t.Fatal(err)
	}
	optimal := 0
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("problem %d: %v", i, out.Err)
		}
		rep := out.Report
		g := problems[i].Graph()
		if err := core.ValidateAssignment(g, core.Assignment(rep.Assignment)); err != nil {
			t.Fatalf("problem %d: %v", i, err)
		}
		if m := core.Makespan(g, core.Assignment(rep.Assignment)); m != rep.Makespan {
			t.Fatalf("problem %d: reported makespan mismatch", i)
		}
		if rep.Optimal() {
			optimal++
			// Cross-check a proven optimum against the sequential solver.
			if _, want, err := exact.SolveSingleProc(g, exact.Options{}); err != nil {
				t.Fatal(err)
			} else if rep.Makespan != want {
				t.Fatalf("problem %d: claimed optimum %d, true optimum %d", i, rep.Makespan, want)
			}
		}
	}
	if optimal < len(outs)/2 {
		t.Fatalf("only %d/%d SINGLEPROC problems proven optimal", optimal, len(outs))
	}
}

// TestBatchMixedClasses: both encodings in one batch, solved in one call.
func TestBatchMixedClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	problems := []solve.Problem{
		solve.Hyper(randomHyper(rng, 8, 3, 3, 2, 7)),
		solve.Bipartite(randomGraph(rng, 12, 4, 3, 1)),
		{}, // empty problem: isolated per-problem error
		solve.Bipartite(randomGraph(rng, 8, 3, 2, 9)),
		solve.Hyper(randomHyper(rng, 30, 6, 3, 3, 12)),
	}
	outs, err := New(Options{Workers: 2}).RunProblems(context.Background(), problems)
	if err != nil {
		t.Fatal(err)
	}
	if outs[2].Err == nil {
		t.Fatal("empty problem must carry an error")
	}
	for _, i := range []int{0, 1, 3, 4} {
		if outs[i].Err != nil {
			t.Fatalf("sibling %d poisoned: %v", i, outs[i].Err)
		}
		if outs[i].Report.Class != problems[i].Class() {
			t.Fatalf("problem %d: class mismatch", i)
		}
	}
}

func TestForEachVisitsAllOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 64} {
		var mu sync.Mutex
		seen := map[int]int{}
		err := ForEach(context.Background(), workers, 50, func(ctx context.Context, i int) error {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 50 {
			t.Fatalf("workers=%d: visited %d indices", workers, len(seen))
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := ForEach(context.Background(), 2, 1000, func(ctx context.Context, i int) error {
		if calls.Add(1) == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := calls.Load(); n >= 1000 {
		t.Fatalf("error did not stop dispatch (%d calls)", n)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(ctx context.Context, i int) error {
		t.Fatal("must not be called")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
