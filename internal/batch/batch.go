// Package batch solves many MULTIPROC instances at once on a worker pool —
// the sharding/batching layer that turns the per-instance solvers into a
// throughput-oriented subsystem. Instances are distributed across
// GOMAXPROCS workers; each one is solved by a fixed per-instance policy:
//
//  1. portfolio first — the concurrent heuristic race (optionally
//     refined), which always produces a schedule quickly;
//  2. exact second, when the instance is small enough — a branch-and-bound
//     run under a node budget that either proves optimality or improves
//     the incumbent;
//  3. fallback on timeout — every stage observes the context, so an
//     expiring per-instance or batch deadline degrades the answer (best
//     schedule found so far) instead of aborting it.
//
// Failures are isolated per instance: a nil instance, a panic, or a
// timeout in one work item is recorded in its Result and never poisons its
// siblings. Makespans are deterministic: for a given instance and options
// the reported quality does not depend on the worker count or on
// goroutine timing (deadlines excepted, by nature). Since the exact stage
// moved onto the parallel branch-and-bound engine, the schedule identity
// may vary across runs when several co-optimal schedules exist — the
// engine proves the same optimal makespan every time, but which optimal
// assignment wins a race is timing-dependent.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"semimatch/internal/core"
	"semimatch/internal/exact"
	"semimatch/internal/hypergraph"
	"semimatch/internal/portfolio"
	"semimatch/internal/registry"
)

// Defaults for the exact-solve stage of the per-instance policy.
const (
	// DefaultExactTaskLimit is the largest instance (in tasks) that gets a
	// branch-and-bound attempt when Options.ExactTaskLimit is zero.
	DefaultExactTaskLimit = 16
	// DefaultExactNodes is the branch-and-bound node budget when
	// Options.ExactNodes is zero — small enough to bound each attempt to
	// tens of milliseconds.
	DefaultExactNodes = 2_000_000
)

// Options configures a batch run.
type Options struct {
	// Workers bounds the pool; 0 means GOMAXPROCS.
	Workers int
	// InstanceTimeout is a per-instance deadline layered under the batch
	// context; 0 means none. When it expires the instance keeps the best
	// schedule found so far.
	InstanceTimeout time.Duration
	// Algorithms restricts the portfolio stage; nil means all members.
	Algorithms []string
	// Refine post-processes every portfolio candidate with local search.
	Refine bool
	// ExactTaskLimit is the largest instance that also gets an exact
	// branch-and-bound attempt; 0 means DefaultExactTaskLimit, negative
	// disables the exact stage entirely.
	ExactTaskLimit int
	// ExactNodes is the branch-and-bound node budget; 0 means
	// DefaultExactNodes.
	ExactNodes int64
	// ExactWorkers bounds the exact stage's internal worker pool per
	// instance. 0 means automatic: GOMAXPROCS divided by the batch pool
	// width, at least 1. Callers that run many Runner invocations
	// concurrently themselves (e.g. the service) should set it so total
	// goroutines stay near the core count.
	ExactWorkers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) exactTaskLimit() int {
	if o.ExactTaskLimit == 0 {
		return DefaultExactTaskLimit
	}
	return o.ExactTaskLimit
}

func (o Options) exactNodes() int64 {
	if o.ExactNodes <= 0 {
		return DefaultExactNodes
	}
	return o.ExactNodes
}

// Result is the outcome for one instance of the batch.
type Result struct {
	// Assignment is the best schedule found; nil only when Err is set and
	// no stage produced a schedule.
	Assignment core.HyperAssignment
	Makespan   int64
	// Source names what produced the schedule: a portfolio member
	// ("SGH", ...), the exact solver's registry name ("BnB-MP", proven
	// optimal), or that name suffixed "-incumbent" (a budget- or
	// deadline-truncated run that still beat the portfolio).
	Source string
	// Optimal reports that the exact stage proved this schedule optimal.
	Optimal bool
	// Err is this instance's failure, if any; other instances are
	// unaffected.
	Err error
	// Elapsed is the wall-clock time spent on this instance.
	Elapsed time.Duration
}

// Runner is a reusable batch solver.
type Runner struct {
	opts Options
	// exactSolver is the solver the exact-attempt stage uses, chosen from
	// the registry by capability (kind Exact for MULTIPROC, cheapest cost
	// class first, upgraded to its parallel counterpart when one is
	// registered); nil when the catalog has none, which disables the
	// stage.
	exactSolver *registry.Solver
}

// New returns a Runner with the given options.
func New(opts Options) *Runner {
	r := &Runner{opts: opts}
	if exacts := registry.Find(registry.MultiProc, registry.Exact); len(exacts) > 0 {
		r.exactSolver = registry.Preferred(exacts[0])
	}
	return r
}

// exactWorkers budgets the exact stage's internal worker pool so the
// batch as a whole stays at roughly GOMAXPROCS goroutines: the pool
// already owns workers() cores, so each in-flight exact solve gets the
// leftover share (at least 1 — which still buys the parallel engine's
// stronger pruning). Options.ExactWorkers overrides the automatic
// budget for callers whose concurrency the Runner cannot see.
func (r *Runner) exactWorkers() int {
	if r.opts.ExactWorkers > 0 {
		return r.opts.ExactWorkers
	}
	if w := runtime.GOMAXPROCS(0) / r.opts.workers(); w > 1 {
		return w
	}
	return 1
}

// Run solves every instance and returns one Result per instance, in input
// order. A configuration error (unknown portfolio algorithm) fails the
// whole batch up front with nil results; per-instance failures land in the
// matching Result.Err. When ctx is cancelled mid-batch Run returns
// promptly with the partial results alongside ctx's error: in-flight
// solvers stop at their next context poll (keeping their best schedule so
// far) and instances that never started carry a "not started" error.
func (r *Runner) Run(ctx context.Context, instances []*hypergraph.Hypergraph) ([]Result, error) {
	if err := portfolio.ValidateAlgorithms(r.opts.Algorithms); err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	results := make([]Result, len(instances))
	started := make([]bool, len(instances))
	err := ForEach(ctx, r.opts.workers(), len(instances), func(ctx context.Context, i int) error {
		started[i] = true
		results[i] = r.solveOne(ctx, instances[i])
		return nil
	})
	for i := range results {
		if !started[i] {
			results[i] = Result{Err: fmt.Errorf("batch: not started: %w", ctx.Err())}
		}
	}
	return results, err
}

// solveOne applies the per-instance policy. It never lets a failure
// escape: panics and errors end up in the Result.
func (r *Runner) solveOne(ctx context.Context, h *hypergraph.Hypergraph) (res Result) {
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			res = Result{Err: fmt.Errorf("batch: panic solving instance: %v", p)}
		}
		res.Elapsed = time.Since(start)
	}()
	if h == nil {
		return Result{Err: errors.New("batch: nil instance")}
	}
	ictx := ctx
	if r.opts.InstanceTimeout > 0 {
		var cancel context.CancelFunc
		ictx, cancel = context.WithTimeout(ctx, r.opts.InstanceTimeout)
		defer cancel()
	}

	// Stage 1: portfolio. Workers=1 — the batch pool already owns the
	// cores; nested fan-out would just add scheduling noise.
	pres, err := portfolio.SolveCtx(ictx, h, portfolio.Options{
		Algorithms: r.opts.Algorithms,
		Refine:     r.opts.Refine,
		Workers:    1,
	})
	if err != nil {
		return Result{Err: err}
	}
	res = Result{Assignment: pres.Assignment, Makespan: pres.Makespan, Source: pres.Winner}

	// Stage 2: exact, for small instances with budget left. The solver
	// comes from the registry's capability metadata, not a hardcoded
	// import: whichever exact MULTIPROC solver is registered (cheapest
	// cost class first) gets the attempt.
	if lim := r.opts.exactTaskLimit(); r.exactSolver != nil && lim > 0 && h.NTasks <= lim && ictx.Err() == nil {
		a, exErr := r.exactSolver.SolveHyper(ictx, h, registry.Options{
			BnB:     exact.Options{MaxNodes: r.opts.exactNodes()},
			Workers: r.exactWorkers(),
		})
		var m int64
		if a != nil {
			m = core.HyperMakespan(h, a)
		}
		switch {
		case exErr == nil:
			// Proven optimal. Prefer the portfolio schedule on a tie so
			// the refined load vector survives.
			if m < res.Makespan {
				res.Assignment, res.Makespan, res.Source = a, m, r.exactSolver.Name
			}
			res.Optimal = true
		case a != nil && registry.IncumbentError(exErr):
			// Stage 3, fallback: the truncated search still returns its
			// incumbent, which may beat the portfolio.
			if m < res.Makespan {
				res.Assignment, res.Makespan, res.Source = a, m, r.exactSolver.Name+"-incumbent"
			}
		default:
			// Structural errors (no processors, isolated task) would have
			// failed the portfolio already; surface anything unexpected.
			res.Err = exErr
		}
	}
	return res
}

// ForEach runs fn(ctx, i) for every index in [0, n) on a pool of workers —
// the sharding primitive under Runner, exported for other fan-out loops
// (the bench harness drives its experiment grids through it). It stops
// dispatching when ctx is cancelled or fn returns an error (in-flight
// calls get a context cancelled at that point) and returns the first
// error, or ctx's error when the context ended the run.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if cctx.Err() != nil {
					return
				}
				if err := fn(cctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-cctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
