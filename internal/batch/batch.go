// Package batch solves many instances at once on a worker pool — the
// sharding/batching layer that turns the per-instance solvers into a
// throughput-oriented subsystem. Since the unified solve API landed, the
// batch is class-generic: a work item is a solve.Problem (SINGLEPROC
// bipartite or MULTIPROC hypergraph, freely mixed in one batch), and each
// one runs the solve package's auto policy:
//
//  1. heuristic race first — the portfolio for hypergraphs, the greedy
//     lineup for bipartite graphs — which always produces a schedule
//     quickly;
//  2. exact second, when the instance allows it — ExactUnit for unit
//     bipartite instances, a budgeted branch-and-bound for small ones —
//     which either proves optimality or improves the incumbent;
//  3. fallback on timeout — every stage observes the context, so an
//     expiring per-instance or batch deadline degrades the answer (best
//     schedule found so far) instead of aborting it.
//
// Failures are isolated per instance: an empty problem, a panic, or a
// timeout in one work item is recorded in its Outcome and never poisons
// its siblings. Makespans are deterministic: for a given instance and
// options the reported quality does not depend on the worker count or on
// goroutine timing (deadlines excepted, by nature). Since the exact stage
// moved onto the parallel branch-and-bound engine, the schedule identity
// may vary across runs when several co-optimal schedules exist — the
// engine proves the same optimal makespan every time, but which optimal
// assignment wins a race is timing-dependent.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"semimatch/internal/core"
	"semimatch/internal/hypergraph"
	"semimatch/internal/registry"
	"semimatch/internal/solve"
)

// Defaults for the exact-solve stage of the per-instance policy (shared
// with the solve package, which implements the policy).
const (
	// DefaultExactTaskLimit is the largest instance (in tasks) that gets a
	// branch-and-bound attempt when Options.ExactTaskLimit is zero.
	DefaultExactTaskLimit = solve.DefaultExactTaskLimit
	// DefaultExactNodes is the branch-and-bound node budget when
	// Options.ExactNodes is zero — small enough to bound each attempt to
	// tens of milliseconds.
	DefaultExactNodes = solve.DefaultExactNodes
)

// Options configures a batch run.
type Options struct {
	// Workers bounds the pool; 0 means GOMAXPROCS.
	Workers int
	// InstanceTimeout is a per-instance deadline layered under the batch
	// context; 0 means none. When it expires the instance keeps the best
	// schedule found so far.
	InstanceTimeout time.Duration
	// Algorithms restricts the heuristic-race stage; nil means the
	// class's full default lineup. Names resolve in each problem class
	// present in the batch, so a mixed batch needs names valid in both.
	Algorithms []string
	// Refine post-processes every hypergraph candidate with local search.
	Refine bool
	// ExactTaskLimit is the largest instance that also gets an exact
	// branch-and-bound attempt; 0 means DefaultExactTaskLimit, negative
	// disables the exact stage entirely.
	ExactTaskLimit int
	// ExactNodes is the branch-and-bound node budget; 0 means
	// DefaultExactNodes.
	ExactNodes int64
	// ExactWorkers bounds the exact stage's internal worker pool per
	// instance. 0 means automatic: GOMAXPROCS divided by the batch pool
	// width, at least 1. Callers that run many Runner invocations
	// concurrently themselves (e.g. the service) should set it so total
	// goroutines stay near the core count.
	ExactWorkers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) exactNodes() int64 {
	if o.ExactNodes <= 0 {
		return DefaultExactNodes
	}
	return o.ExactNodes
}

// Outcome is the per-problem result of RunProblems: the unified solve
// Report, or this problem's failure. Exactly one of the two is nil —
// except when the auto policy's exact stage failed unexpectedly, in which
// case the heuristic-stage Report accompanies the error.
type Outcome struct {
	Report *solve.Report
	Err    error
	// Elapsed is the wall-clock time spent on this problem, set even
	// when the solve failed (Report.Elapsed covers successes only).
	Elapsed time.Duration
}

// Result is the legacy hypergraph-only outcome shape of Runner.Run,
// derived from an Outcome.
//
// Deprecated: use RunProblems and Outcome, which cover both problem
// classes and carry the full solve Report.
type Result struct {
	// Assignment is the best schedule found; nil only when Err is set and
	// no stage produced a schedule.
	Assignment core.HyperAssignment
	Makespan   int64
	// Source names what produced the schedule: a portfolio member
	// ("SGH", ...), the exact solver's registry name ("BnB-MP", proven
	// optimal), or that name suffixed "-incumbent" (a budget- or
	// deadline-truncated run that still beat the portfolio).
	Source string
	// Optimal reports that the exact stage proved this schedule optimal.
	Optimal bool
	// Err is this instance's failure, if any; other instances are
	// unaffected.
	Err error
	// Elapsed is the wall-clock time spent on this instance.
	Elapsed time.Duration
}

// SourceLabel renders a Report's provenance in the legacy Result
// vocabulary: the producing solver's canonical name, suffixed
// "-incumbent" when the schedule came from a truncated exact search.
func SourceLabel(rep *solve.Report) string {
	if rep == nil {
		return ""
	}
	if rep.Status == solve.StatusTruncated {
		if s, err := registry.LookupClass(rep.Class, rep.Solver); err == nil && s.Kind == registry.Exact {
			return rep.Solver + "-incumbent"
		}
	}
	return rep.Solver
}

// legacy converts an Outcome to the deprecated Result shape.
func (o Outcome) legacy() Result {
	res := Result{Err: o.Err, Elapsed: o.Elapsed}
	if rep := o.Report; rep != nil {
		res.Assignment = core.HyperAssignment(rep.Assignment)
		res.Makespan = rep.Makespan
		res.Source = SourceLabel(rep)
		res.Optimal = rep.Status == solve.StatusOptimal
	}
	return res
}

// Runner is a reusable batch solver.
type Runner struct {
	opts Options
}

// New returns a Runner with the given options.
func New(opts Options) *Runner { return &Runner{opts: opts} }

// exactWorkers budgets the exact stage's internal worker pool so the
// batch as a whole stays at roughly GOMAXPROCS goroutines: the pool
// already owns workers() cores, so each in-flight exact solve gets the
// leftover share (at least 1 — which still buys the parallel engine's
// stronger pruning). Options.ExactWorkers overrides the automatic
// budget for callers whose concurrency the Runner cannot see.
func (r *Runner) exactWorkers() int {
	if r.opts.ExactWorkers > 0 {
		return r.opts.ExactWorkers
	}
	if w := runtime.GOMAXPROCS(0) / r.opts.workers(); w > 1 {
		return w
	}
	return 1
}

// validate fails fast on algorithm names that do not resolve in the
// class of some problem in the batch, so a bad Options value is an
// upfront error rather than N per-instance ones.
func (r *Runner) validate(problems []solve.Problem) error {
	if len(r.opts.Algorithms) == 0 {
		return nil
	}
	var checked [2]bool
	for _, p := range problems {
		if p.Validate() != nil {
			continue
		}
		c := p.Class()
		if checked[c] {
			continue
		}
		checked[c] = true
		if _, _, err := registry.ResolveClass(c, r.opts.Algorithms, nil); err != nil {
			return fmt.Errorf("batch: %w", err)
		}
	}
	return nil
}

// RunProblems solves every problem — SINGLEPROC and MULTIPROC freely
// mixed — and returns one Outcome per problem, in input order. A
// configuration error (an algorithm name unknown in some problem's class)
// fails the whole batch up front with nil results; per-problem failures
// land in the matching Outcome.Err. When ctx is cancelled mid-batch
// RunProblems returns promptly with the partial results alongside ctx's
// error: in-flight solvers stop at their next context poll (keeping their
// best schedule so far) and problems that never started carry a "not
// started" error.
func (r *Runner) RunProblems(ctx context.Context, problems []solve.Problem) ([]Outcome, error) {
	return r.RunProblemsWith(ctx, problems, nil)
}

// RunProblemsWith is RunProblems with a per-solve options hook: mod (nil
// means none) runs on each problem's solve.Options after the Runner's
// policy fields are filled, so callers can attach observability — a trace
// span, a progress hook, a ledger — without owning the policy itself. The
// service uses it to surface live search introspection from auto solves.
// mod must be safe for concurrent calls (one per in-flight problem) and
// must not change fields the Runner owns (Workers, budgets, deadlines).
func (r *Runner) RunProblemsWith(ctx context.Context, problems []solve.Problem, mod func(*solve.Options)) ([]Outcome, error) {
	if err := r.validate(problems); err != nil {
		return nil, err
	}
	outs := make([]Outcome, len(problems))
	started := make([]bool, len(problems))
	err := ForEach(ctx, r.opts.workers(), len(problems), func(ctx context.Context, i int) error {
		started[i] = true
		outs[i] = r.solveOne(ctx, problems[i], mod)
		return nil
	})
	for i := range outs {
		if !started[i] {
			outs[i] = Outcome{Err: fmt.Errorf("batch: not started: %w", ctx.Err())}
		}
	}
	return outs, err
}

// Run solves many MULTIPROC instances; it is RunProblems restricted to
// hypergraphs, kept for callers of the pre-unification API.
//
// Deprecated: Run accepts only hypergraphs. Use RunProblems, which takes
// []solve.Problem and batches both problem classes.
func (r *Runner) Run(ctx context.Context, instances []*hypergraph.Hypergraph) ([]Result, error) {
	problems := make([]solve.Problem, len(instances))
	for i, h := range instances {
		if h != nil {
			problems[i] = solve.Hyper(h)
		}
	}
	outs, err := r.RunProblems(ctx, problems)
	if outs == nil {
		return nil, err
	}
	results := make([]Result, len(outs))
	for i, out := range outs {
		results[i] = out.legacy()
	}
	return results, err
}

// solveOne applies the per-instance policy (solve.RunOptions). It never
// lets a failure escape: panics and errors end up in the Outcome.
func (r *Runner) solveOne(ctx context.Context, p solve.Problem, mod func(*solve.Options)) (out Outcome) {
	start := time.Now()
	defer func() {
		if pv := recover(); pv != nil {
			out = Outcome{Err: fmt.Errorf("batch: panic solving instance: %v", pv)}
		}
		out.Elapsed = time.Since(start)
	}()
	opts := solve.Options{
		Portfolio: r.opts.Algorithms,
		Refine:    r.opts.Refine,
		// The batch pool already owns the cores; nested heuristic fan-out
		// would just add scheduling noise.
		Workers:        1,
		ExactWorkers:   r.exactWorkers(),
		NodeBudget:     r.opts.exactNodes(),
		ExactTaskLimit: r.opts.ExactTaskLimit,
		Deadline:       r.opts.InstanceTimeout,
	}
	if mod != nil {
		mod(&opts)
	}
	rep, err := solve.RunOptions(ctx, p, opts)
	return Outcome{Report: rep, Err: err}
}

// ForEach runs fn(ctx, i) for every index in [0, n) on a pool of workers —
// the sharding primitive under Runner, exported for other fan-out loops
// (the bench harness drives its experiment grids through it). It stops
// dispatching when ctx is cancelled or fn returns an error (in-flight
// calls get a context cancelled at that point) and returns the first
// error, or ctx's error when the context ended the run.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if cctx.Err() != nil {
					return
				}
				if err := fn(cctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-cctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
