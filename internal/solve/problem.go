// Package solve is the unified, class-generic solve surface: one Problem
// type covering both of the paper's encodings (SINGLEPROC bipartite,
// MULTIPROC hypergraph), one entry point Run with functional options, and
// one Report carrying the schedule, its bounds and its provenance.
//
// Every dispatch layer in the repo routes through this package: the batch
// runner shards []Problem across a worker pool, the service canonicalizes
// requests into Problems, and the CLIs build Problems from decoded
// instances. Algorithms resolve through the solver registry
// (internal/registry), so the catalog stays the single source of truth.
//
// Run is an anytime solver: callers can register an Observer to watch the
// incumbent schedule improve while a long branch-and-bound or portfolio
// race is still running, and a deadline or node budget degrades the
// answer to the best schedule found (Report.Status == StatusTruncated)
// instead of discarding it.
package solve

import (
	"errors"
	"fmt"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/encode"
	"semimatch/internal/hypergraph"
	"semimatch/internal/registry"
)

// ErrEmptyProblem reports a zero-value Problem (no instance attached).
var ErrEmptyProblem = errors.New("solve: empty problem (use Bipartite, Hyper or NewProblem)")

// Problem is one instance of either problem class: a sum over
// *bipartite.Graph (SINGLEPROC) and *hypergraph.Hypergraph (MULTIPROC).
// The zero value is empty and solves to an error. A Problem is an
// immutable view — it shares the underlying instance, it does not copy it.
type Problem struct {
	g *bipartite.Graph
	h *hypergraph.Hypergraph
}

// Bipartite wraps a SINGLEPROC instance.
func Bipartite(g *bipartite.Graph) Problem { return Problem{g: g} }

// Hyper wraps a MULTIPROC instance.
func Hyper(h *hypergraph.Hypergraph) Problem { return Problem{h: h} }

// NewProblem wraps any supported instance type: *bipartite.Graph,
// *hypergraph.Hypergraph, or a Problem (returned as-is).
func NewProblem(instance any) (Problem, error) {
	switch v := instance.(type) {
	case Problem:
		return v, v.Validate()
	case *bipartite.Graph:
		if v == nil {
			return Problem{}, errors.New("solve: nil *bipartite.Graph")
		}
		return Bipartite(v), nil
	case *hypergraph.Hypergraph:
		if v == nil {
			return Problem{}, errors.New("solve: nil *hypergraph.Hypergraph")
		}
		return Hyper(v), nil
	default:
		return Problem{}, fmt.Errorf("solve: unsupported instance type %T (want *bipartite.Graph or *hypergraph.Hypergraph)", instance)
	}
}

// Validate reports whether the Problem carries an instance.
func (p Problem) Validate() error {
	if p.g == nil && p.h == nil {
		return ErrEmptyProblem
	}
	return nil
}

// Class is the problem class of the wrapped instance. Empty problems
// report SingleProc; call Validate first when that matters.
func (p Problem) Class() registry.Class {
	if p.h != nil {
		return registry.MultiProc
	}
	return registry.SingleProc
}

// Graph returns the SINGLEPROC instance, or nil for MULTIPROC problems.
func (p Problem) Graph() *bipartite.Graph { return p.g }

// Hypergraph returns the MULTIPROC instance, or nil for SINGLEPROC
// problems.
func (p Problem) Hypergraph() *hypergraph.Hypergraph { return p.h }

// instance returns the wrapped instance for registry dispatch.
func (p Problem) instance() any {
	if p.h != nil {
		return p.h
	}
	return p.g
}

// NTasks is the number of tasks in the instance (0 for empty problems).
func (p Problem) NTasks() int {
	switch {
	case p.h != nil:
		return p.h.NTasks
	case p.g != nil:
		return p.g.NLeft
	}
	return 0
}

// NProcs is the number of processors in the instance.
func (p Problem) NProcs() int {
	switch {
	case p.h != nil:
		return p.h.NProcs
	case p.g != nil:
		return p.g.NRight
	}
	return 0
}

// LowerBound is the class's load-balance lower bound on the optimal
// makespan: max(⌈Σw/p⌉, max w) for SINGLEPROC, Eq. (1) for MULTIPROC.
func (p Problem) LowerBound() int64 {
	switch {
	case p.h != nil:
		return core.LowerBound(p.h)
	case p.g != nil:
		return core.LowerBoundSingle(p.g)
	}
	return 0
}

// Fingerprint is the collision-resistant content hash (hex SHA-256) of
// the instance's canonical form — the identity isomorphic instances
// share. See internal/encode.
func (p Problem) Fingerprint() (string, error) {
	switch {
	case p.h != nil:
		return encode.FingerprintHypergraph(p.h)
	case p.g != nil:
		return encode.FingerprintBipartite(p.g)
	}
	return "", ErrEmptyProblem
}

// String describes the problem for logs and errors.
func (p Problem) String() string {
	switch {
	case p.h != nil:
		return fmt.Sprintf("MULTIPROC{%d tasks, %d procs, %d edges}", p.h.NTasks, p.h.NProcs, p.h.NumEdges())
	case p.g != nil:
		return fmt.Sprintf("SINGLEPROC{%d tasks, %d procs, %d edges}", p.g.NLeft, p.g.NRight, p.g.NumEdges())
	}
	return "Problem{}"
}

// MakespanLoads evaluates an assignment in the problem's own encoding:
// the per-processor load vector and its maximum.
func (p Problem) MakespanLoads(a []int32) (int64, []int64) {
	var loads []int64
	if p.h != nil {
		loads = core.HyperLoads(p.h, core.HyperAssignment(a))
	} else {
		loads = core.Loads(p.g, core.Assignment(a))
	}
	var m int64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m, loads
}
