package solve

import (
	"semimatch/internal/registry"
	"semimatch/internal/telemetry"
)

// Features extracts the cheap instance features the solve ledger records
// and the adaptive auto policy consumes: dimensions, assignment-option
// count and density, and the weight spread. One pass over the instance
// arrays, no allocation beyond the struct.
func Features(p Problem) telemetry.InstanceFeatures {
	f := telemetry.InstanceFeatures{
		Class: p.Class().String(),
		Tasks: p.NTasks(),
		Procs: p.NProcs(),
	}
	var wmin, wmax int64
	if p.Class() == registry.MultiProc {
		h := p.Hypergraph()
		f.Edges = h.NumEdges()
		for _, w := range h.Weight {
			if wmin == 0 || w < wmin {
				wmin = w
			}
			if w > wmax {
				wmax = w
			}
		}
	} else {
		g := p.Graph()
		f.Edges = len(g.Adj)
		if g.Unit() {
			wmin, wmax = 1, 1
		} else {
			for _, w := range g.W {
				if wmin == 0 || w < wmin {
					wmin = w
				}
				if w > wmax {
					wmax = w
				}
			}
		}
	}
	if f.Tasks > 0 && f.Procs > 0 {
		f.Density = float64(f.Edges) / (float64(f.Tasks) * float64(f.Procs))
	}
	f.WMin, f.WMax = wmin, wmax
	if wmin > 0 {
		f.WSpread = float64(wmax) / float64(wmin)
	}
	return f
}

// NewLedgerRecord assembles one solve-ledger line from a finished
// Report: instance features plus what ran and what it cost. source
// names the producer ("bench", "service", "cli"); fingerprint may be
// empty when the caller has not canonicalized the instance.
func NewLedgerRecord(source, fingerprint string, p Problem, rep *Report) telemetry.SolveRecord {
	rec := telemetry.SolveRecord{
		Source:           source,
		Fingerprint:      fingerprint,
		InstanceFeatures: Features(p),
		Algorithm:        rep.Solver,
		WallS:            rep.Elapsed.Seconds(),
		Nodes:            rep.Stats.Nodes,
		Makespan:         rep.Makespan,
		Bound:            rep.LowerBound,
		Status:           rep.Status.String(),
	}
	if rep.Trust != 0 || rep.Certificate != nil {
		rec.Trust = rep.Trust.String()
	}
	return rec
}
