package solve

import (
	"context"
	"errors"
	"testing"

	"semimatch/internal/cert"
)

// TestRunIssuesCertificates: every Run that produces a schedule carries a
// certificate that cert.Verify independently accepts, and optimal runs
// carry an optimality witness.
func TestRunIssuesCertificates(t *testing.T) {
	cases := []struct {
		name string
		p    Problem
		opts []Option
	}{
		{"auto-hyper", Hyper(randomHyper(3, 8, 3, 3, 2, 9)), nil},
		{"auto-single-weighted", Bipartite(weightedGraph(4, 8, 3, 3, 9)), nil},
		{"auto-single-unit", Bipartite(unitGraph(t, 5)), nil},
		{"named-heuristic", Hyper(randomHyper(6, 10, 3, 3, 2, 9)), []Option{WithAlgorithm("SGH")}},
		{"named-exact", Bipartite(weightedGraph(7, 7, 3, 3, 9)), []Option{WithAlgorithm("bnb-par")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Run(context.Background(), tc.p, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			checkReport(t, tc.p, rep)
			c := rep.Certificate
			if c == nil {
				t.Fatal("report carries no certificate")
			}
			fp, err := tc.p.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			if c.Fingerprint != fp {
				t.Fatalf("certificate fingerprint %.12s…, problem %.12s…", c.Fingerprint, fp)
			}
			tier, err := cert.Verify(tc.p.instance(), c)
			if err != nil {
				t.Fatalf("certificate rejected: %v", err)
			}
			if rep.Status == StatusOptimal {
				if c.Witness.Kind == cert.WitnessNone {
					t.Fatal("optimal report with no optimality witness")
				}
				if tier < cert.TierAttested {
					t.Fatalf("optimal report verified only at %s", tier)
				}
			}
		})
	}
}

// TestWithVerifySetsTrust: WithVerify grades Report.Trust; without it the
// field stays at its zero value.
func TestWithVerifySetsTrust(t *testing.T) {
	p := Bipartite(unitGraph(t, 9))
	rep, err := Run(context.Background(), p, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != StatusOptimal {
		t.Fatalf("unit instance not solved optimally: %s", rep.Status)
	}
	if rep.Trust < cert.TierAttested {
		t.Fatalf("trust = %s, want at least attested for a verified optimal result", rep.Trust)
	}

	rep, err = Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trust != cert.TierHeuristic {
		t.Fatalf("without WithVerify trust = %s, want the heuristic zero value", rep.Trust)
	}
}

// TestVerifyReportDowngradesLies: a report whose certificate does not
// withstand verification loses its StatusOptimal and yields
// ErrVerifyFailed — the WithVerify safety property, exercised directly on
// a forged report.
func TestVerifyReportDowngradesLies(t *testing.T) {
	p := Bipartite(weightedGraph(12, 8, 3, 3, 9))
	rep, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Certificate == nil {
		t.Fatal("no certificate to forge")
	}

	// Forge an optimality claim the instance contradicts.
	forged := *rep
	c := *rep.Certificate
	c.Makespan--
	forged.Certificate = &c
	forged.Status = StatusOptimal
	if verr := verifyReport(p, &forged); verr == nil {
		t.Fatal("forged certificate passed verification")
	} else if !errors.Is(verr, ErrVerifyFailed) {
		t.Fatalf("err = %v, want ErrVerifyFailed", verr)
	}
	if forged.Status != StatusHeuristic {
		t.Fatalf("status after failed verification = %s, want heuristic", forged.Status)
	}
	if forged.Trust != cert.TierHeuristic {
		t.Fatalf("trust after failed verification = %s", forged.Trust)
	}

	// A missing certificate on an optimality claim is a failure too.
	forged = *rep
	forged.Certificate = nil
	forged.Status = StatusOptimal
	if verr := verifyReport(p, &forged); !errors.Is(verr, ErrVerifyFailed) {
		t.Fatalf("missing certificate: err = %v, want ErrVerifyFailed", verr)
	}
	if forged.Status != StatusHeuristic {
		t.Fatalf("status = %s, want heuristic", forged.Status)
	}
}
