package solve

import (
	"math"
	"sync"
	"time"
)

// Incumbent is one observation of a run's best-schedule-so-far. The
// assignment is a private copy in the problem's own encoding (task →
// processor for SINGLEPROC, task → hyperedge id for MULTIPROC); the
// observer owns it.
type Incumbent struct {
	// Makespan of the incumbent schedule. Across the observations of one
	// Run, makespans are monotonically non-increasing.
	Makespan int64
	// Assignment is the incumbent schedule (a copy).
	Assignment []int32
	// Solver names what produced this incumbent: a registry solver name,
	// or a portfolio member's canonical name.
	Solver string
	// Elapsed is the time since Run started.
	Elapsed time.Duration
	// Final marks the closing observation: every Run with an observer
	// ends with exactly one Final event whose makespan and assignment
	// match the returned Report.
	Final bool
}

// Observer receives incumbent observations during a Run. Calls are
// serialized (never concurrent) and polled at solver checkpoints, so a
// slow observer delays the solve only at block boundaries. A panicking
// observer is isolated: the panic is swallowed, the solve continues, and
// later observations are still delivered.
type Observer func(Incumbent)

// obsState adapts the per-solver observation sources (exact incumbent
// callbacks, portfolio member completions) to the Observer contract:
// serialized, monotonically non-increasing, panic-isolated, and closed by
// one Final event that matches the Report.
type obsState struct {
	fn    Observer
	start time.Time

	mu    sync.Mutex
	best  int64
	count int
}

func newObsState(fn Observer, start time.Time) *obsState {
	if fn == nil {
		return nil
	}
	return &obsState{fn: fn, start: start, best: math.MaxInt64}
}

// active reports whether observations are wanted; nil-safe.
func (s *obsState) active() bool { return s != nil }

// call invokes the user observer with panic isolation.
func (s *obsState) call(inc Incumbent) {
	defer func() { _ = recover() }()
	s.fn(inc)
}

// emit forwards an observation if it improves on everything seen so far.
// copied=false copies the assignment before handing it out.
func (s *obsState) emit(solver string, m int64, a []int32, copied bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m >= s.best {
		return
	}
	s.best = m
	s.count++
	if !copied {
		a = append([]int32(nil), a...)
	}
	s.call(Incumbent{Makespan: m, Assignment: a, Solver: solver, Elapsed: time.Since(s.start)})
}

// exactFn returns the raw callback threaded into exact.Options.Observer.
// The exact solvers already hand out private copies.
func (s *obsState) exactFn(solver string) func(int64, []int32) {
	if s == nil {
		return nil
	}
	return func(m int64, a []int32) { s.emit(solver, m, a, true) }
}

// final closes the stream with the report's own result. It always fires
// (even when no intermediate observation did), so "last observation
// matches the report" holds for every solver, heuristics included.
func (s *obsState) final(rep *Report) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	s.call(Incumbent{
		Makespan:   rep.Makespan,
		Assignment: append([]int32(nil), rep.Assignment...),
		Solver:     rep.Solver,
		Elapsed:    time.Since(s.start),
		Final:      true,
	})
}

// events returns how many observations were delivered.
func (s *obsState) events() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}
