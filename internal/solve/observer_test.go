package solve

import (
	"context"
	"testing"

	"semimatch/internal/core"
)

// collectIncumbents runs p with an observer appending every observation
// to a plain slice — deliberately without a lock: the Observer contract
// says calls are serialized, and the -race CI job on this package turns
// any violation (two workers delivering concurrently) into a failure.
func collectIncumbents(t *testing.T, p Problem, opts ...Option) ([]Incumbent, *Report) {
	t.Helper()
	var events []Incumbent
	opts = append(opts, WithObserver(func(inc Incumbent) {
		events = append(events, inc)
	}))
	rep, err := Run(context.Background(), p, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return events, rep
}

// checkContract asserts the full observer contract on one run's event
// stream: at least the initial incumbent plus the final event, makespans
// monotonically non-increasing, exactly one Final event in last
// position, and the final observation matching the returned Report.
func checkContract(t *testing.T, p Problem, events []Incumbent, rep *Report) {
	t.Helper()
	if len(events) < 2 {
		t.Fatalf("got %d observations, want at least initial + final", len(events))
	}
	if rep.Incumbents != len(events) {
		t.Fatalf("Report.Incumbents = %d, delivered %d", rep.Incumbents, len(events))
	}
	finals := 0
	for i, inc := range events {
		if i > 0 && inc.Makespan > events[i-1].Makespan {
			t.Fatalf("observation %d increased: %d after %d", i, inc.Makespan, events[i-1].Makespan)
		}
		if inc.Final {
			finals++
			if i != len(events)-1 {
				t.Fatalf("Final observation at position %d of %d", i, len(events))
			}
		}
		if inc.Solver == "" {
			t.Fatalf("observation %d has no solver name", i)
		}
		// Every observed incumbent must be a valid schedule with the
		// reported makespan.
		m, _ := p.MakespanLoads(inc.Assignment)
		if m != inc.Makespan {
			t.Fatalf("observation %d: reported makespan %d, assignment yields %d", i, inc.Makespan, m)
		}
		var err error
		if h := p.Hypergraph(); h != nil {
			err = core.ValidateHyperAssignment(h, core.HyperAssignment(inc.Assignment))
		} else {
			err = core.ValidateAssignment(p.Graph(), core.Assignment(inc.Assignment))
		}
		if err != nil {
			t.Fatalf("observation %d invalid: %v", i, err)
		}
	}
	if finals != 1 {
		t.Fatalf("%d Final observations, want exactly 1", finals)
	}
	last := events[len(events)-1]
	if last.Makespan != rep.Makespan {
		t.Fatalf("final observation %d, report makespan %d", last.Makespan, rep.Makespan)
	}
	lm, _ := p.MakespanLoads(last.Assignment)
	rm, _ := p.MakespanLoads(rep.Assignment)
	if lm != rm {
		t.Fatal("final observation's assignment differs from the report's in makespan")
	}
}

// TestObserverParallelBnB is the race test of the observer contract: a
// hard seeded instance under the work-stealing pool, where incumbent
// improvements arrive from many workers and must still be delivered
// serialized and monotonically. Run with -race in CI.
func TestObserverParallelBnB(t *testing.T) {
	h := hardHyper(3)
	p := Hyper(h)
	events, rep := collectIncumbents(t, p,
		WithAlgorithm("bnb-par"), WithWorkers(4), WithNodeBudget(400_000))
	checkContract(t, p, events, rep)
	if rep.Status != StatusTruncated {
		t.Fatalf("status %v, want truncated (hard instance, tiny budget)", rep.Status)
	}
	// The acceptance bar: on a hard instance the observer hears about an
	// incumbent before the run completes, i.e. at least one non-final
	// observation precedes the final one.
	if events[0].Final {
		t.Fatal("no incumbent observed before completion")
	}
}

// TestObserverSequentialBnB: same contract on the sequential engines,
// both classes.
func TestObserverSequentialBnB(t *testing.T) {
	h := hardHyper(4)
	p := Hyper(h)
	events, rep := collectIncumbents(t, p, WithAlgorithm("BnB-MP"), WithNodeBudget(300_000))
	checkContract(t, p, events, rep)

	g := weightedGraph(9, 22, 4, 4, 1_000_000)
	pg := Bipartite(g)
	eventsSP, repSP := collectIncumbents(t, pg, WithAlgorithm("BnB-SP"), WithNodeBudget(300_000))
	checkContract(t, pg, eventsSP, repSP)
}

// TestObserverAutoPolicy: the auto policy streams portfolio member
// completions and exact-stage incumbents through one monotonic stream.
func TestObserverAutoPolicy(t *testing.T) {
	h := randomHyper(21, 14, 4, 3, 3, 9)
	p := Hyper(h)
	events, rep := collectIncumbents(t, p, WithRefine())
	checkContract(t, p, events, rep)

	g := weightedGraph(22, 14, 4, 3, 9)
	pg := Bipartite(g)
	eventsSP, repSP := collectIncumbents(t, pg)
	checkContract(t, pg, eventsSP, repSP)
}

// TestObserverPanicIsolated: a panicking observer must not take down the
// solve — every delivery is isolated, later deliveries still happen, and
// the report is unaffected.
func TestObserverPanicIsolated(t *testing.T) {
	h := hardHyper(5)
	calls := 0
	rep, err := Run(context.Background(), Hyper(h),
		WithAlgorithm("bnb-par"), WithWorkers(2), WithNodeBudget(200_000),
		WithObserver(func(inc Incumbent) {
			calls++
			panic("observer exploded")
		}))
	if err != nil {
		t.Fatalf("observer panic leaked into Run: %v", err)
	}
	if calls < 2 {
		t.Fatalf("panicking observer silenced after %d call(s); want deliveries to continue", calls)
	}
	if rep.Incumbents != calls {
		t.Fatalf("Report.Incumbents = %d, calls = %d", rep.Incumbents, calls)
	}
	checkReport(t, Hyper(h), rep)
}

// TestObserverZeroOverheadWhenAbsent: no observer, no observations
// counted.
func TestObserverZeroOverheadWhenAbsent(t *testing.T) {
	h := randomHyper(31, 10, 3, 3, 2, 5)
	rep, err := Run(context.Background(), Hyper(h))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incumbents != 0 {
		t.Fatalf("Incumbents = %d without an observer", rep.Incumbents)
	}
}
