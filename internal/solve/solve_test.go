package solve

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/exact"
	"semimatch/internal/gen"
	"semimatch/internal/hypergraph"
	"semimatch/internal/registry"
)

// randomHyper builds a seeded MULTIPROC instance.
func randomHyper(seed int64, nTasks, nProcs, maxDeg, maxSize int, maxW int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder(nTasks, nProcs)
	for t := 0; t < nTasks; t++ {
		d := 1 + rng.Intn(maxDeg)
		for j := 0; j < d; j++ {
			size := 1 + rng.Intn(maxSize)
			if size > nProcs {
				size = nProcs
			}
			w := int64(1)
			if maxW > 1 {
				w = 1 + rng.Int63n(maxW)
			}
			b.AddEdge(t, rng.Perm(nProcs)[:size], w)
		}
	}
	return b.MustBuild()
}

// weightedGraph builds a seeded weighted SINGLEPROC instance.
func weightedGraph(seed int64, nTasks, nProcs, maxDeg int, maxW int64) *bipartite.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := bipartite.NewBuilder(nTasks, nProcs)
	for t := 0; t < nTasks; t++ {
		d := 1 + rng.Intn(maxDeg)
		perm := rng.Perm(nProcs)
		for j := 0; j < d && j < nProcs; j++ {
			b.AddWeightedEdge(t, perm[j], 1+rng.Int63n(maxW))
		}
	}
	return b.MustBuild()
}

// hardHyper is a number-partitioning instance whose branch-and-bound
// search runs effectively forever without a node or time budget.
func hardHyper(seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	const n, p = 24, 3
	b := hypergraph.NewBuilder(n, p)
	for t := 0; t < n; t++ {
		w := 100_000_000 + rng.Int63n(900_000_000)
		for u := 0; u < p; u++ {
			b.AddEdge(t, []int{u}, w)
		}
	}
	return b.MustBuild()
}

func unitGraph(t *testing.T, seed int64) *bipartite.Graph {
	t.Helper()
	g, err := gen.Bipartite(gen.FewgManyg, 30, 8, 4, 3, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkReport(t *testing.T, p Problem, rep *Report) {
	t.Helper()
	if rep == nil {
		t.Fatal("nil report")
	}
	if rep.Class != p.Class() {
		t.Fatalf("report class %v, problem class %v", rep.Class, p.Class())
	}
	var err error
	if h := p.Hypergraph(); h != nil {
		err = core.ValidateHyperAssignment(h, core.HyperAssignment(rep.Assignment))
	} else {
		err = core.ValidateAssignment(p.Graph(), core.Assignment(rep.Assignment))
	}
	if err != nil {
		t.Fatalf("invalid assignment: %v", err)
	}
	m, _ := p.MakespanLoads(rep.Assignment)
	if m != rep.Makespan {
		t.Fatalf("reported makespan %d, assignment yields %d", rep.Makespan, m)
	}
	if rep.LowerBound > rep.Makespan {
		t.Fatalf("lower bound %d exceeds makespan %d", rep.LowerBound, rep.Makespan)
	}
	if rep.Status == StatusOptimal && rep.Solver == "" {
		t.Fatal("optimal report without a solver name")
	}
}

// TestRunNamedEverySolver drives every registered solver — both classes,
// auxiliary and online included — through the one class-generic entry
// point and cross-checks the reported schedule.
func TestRunNamedEverySolver(t *testing.T) {
	g := unitGraph(t, 1)
	h := randomHyper(2, 30, 6, 3, 3, 9)
	// Exponential solvers get small instances so the full search stays
	// fast even at the default node budget.
	gSmall := weightedGraph(1, 12, 4, 3, 9)
	hSmall := randomHyper(2, 12, 4, 3, 3, 9)
	for _, sol := range registry.Solvers() {
		sol := sol
		t.Run(sol.Name, func(t *testing.T) {
			var p Problem
			switch {
			case sol.Class == registry.SingleProc && sol.Cost == registry.CostExponential:
				p = Bipartite(gSmall)
			case sol.Class == registry.SingleProc:
				p = Bipartite(g)
			case sol.Cost == registry.CostExponential:
				p = Hyper(hSmall)
			default:
				p = Hyper(h)
			}
			rep, err := Run(context.Background(), p, WithAlgorithm(sol.Name))
			if err != nil {
				t.Fatal(err)
			}
			checkReport(t, p, rep)
			if rep.Solver != sol.Name {
				t.Fatalf("report solver %q, want %q", rep.Solver, sol.Name)
			}
			if sol.Optimal() != (rep.Status == StatusOptimal) {
				t.Fatalf("kind %v solver finished with status %v", sol.Kind, rep.Status)
			}
			if sol.Cost == registry.CostExponential && rep.Stats.Nodes == 0 {
				t.Fatal("branch-and-bound run reported zero search nodes")
			}
		})
	}
}

// TestRunAutoProvesOptimality: the auto policy must match the exact
// solvers on small instances of both classes.
func TestRunAutoProvesOptimality(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		h := randomHyper(seed, 10, 3, 3, 2, 7)
		_, want, err := exact.SolveMultiProc(h, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), Hyper(h))
		if err != nil {
			t.Fatal(err)
		}
		checkReport(t, Hyper(h), rep)
		if rep.Status != StatusOptimal || rep.Makespan != want {
			t.Fatalf("seed %d: auto got %d (%v), optimum %d", seed, rep.Makespan, rep.Status, want)
		}

		g := weightedGraph(seed, 10, 4, 3, 9)
		_, wantSP, err := exact.SolveSingleProc(g, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		repSP, err := Run(context.Background(), Bipartite(g))
		if err != nil {
			t.Fatal(err)
		}
		checkReport(t, Bipartite(g), repSP)
		if repSP.Status != StatusOptimal || repSP.Makespan != wantSP {
			t.Fatalf("seed %d: SP auto got %d (%v), optimum %d", seed, repSP.Makespan, repSP.Status, wantSP)
		}
	}
}

// TestRunAutoUnitGraphUsesExactUnit: unit bipartite instances get the
// polynomial proof regardless of size.
func TestRunAutoUnitGraphUsesExactUnit(t *testing.T) {
	g := unitGraph(t, 3)
	rep, err := Run(context.Background(), Bipartite(g))
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, Bipartite(g), rep)
	if rep.Status != StatusOptimal {
		t.Fatalf("unit auto status %v, want optimal", rep.Status)
	}
	_, want, err := core.ExactUnit(g, core.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != want {
		t.Fatalf("auto makespan %d, ExactUnit %d", rep.Makespan, want)
	}
}

// TestRunDeadlineTruncates: an impossible deadline degrades to the best
// schedule found so far instead of failing.
func TestRunDeadlineTruncates(t *testing.T) {
	h := hardHyper(7)
	start := time.Now()
	rep, err := Run(context.Background(), Hyper(h),
		WithDeadline(30*time.Millisecond),
		WithExactLimit(64),
		WithNodeBudget(1<<60))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not honored: %v", elapsed)
	}
	checkReport(t, Hyper(h), rep)
	if rep.Status != StatusTruncated {
		t.Fatalf("status %v, want truncated", rep.Status)
	}
}

// TestRunNamedNodeBudgetTruncates: a tiny node budget on a named exact
// solver keeps the incumbent.
func TestRunNamedNodeBudgetTruncates(t *testing.T) {
	h := hardHyper(8)
	for _, alg := range []string{"BnB-MP", "BnB-MP-Par"} {
		rep, err := Run(context.Background(), Hyper(h),
			WithAlgorithm(alg), WithNodeBudget(5000), WithWorkers(2))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkReport(t, Hyper(h), rep)
		if rep.Status != StatusTruncated {
			t.Fatalf("%s: status %v, want truncated", alg, rep.Status)
		}
	}
}

// TestRunPortfolioRestriction: WithPortfolio restricts the race and the
// winner comes from the drafted set (canonical name).
func TestRunPortfolioRestriction(t *testing.T) {
	h := randomHyper(11, 20, 5, 3, 3, 9)
	rep, err := Run(context.Background(), Hyper(h),
		WithPortfolio("sgh"), WithExactLimit(-1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solver != "SGH" {
		t.Fatalf("winner %q, want SGH", rep.Solver)
	}
	if rep.Status != StatusHeuristic {
		t.Fatalf("status %v, want heuristic (exact stage disabled)", rep.Status)
	}

	// SINGLEPROC: same option, same semantics.
	g := weightedGraph(12, 20, 5, 3, 9)
	repSP, err := Run(context.Background(), Bipartite(g),
		WithPortfolio("sorted"), WithExactLimit(-1))
	if err != nil {
		t.Fatal(err)
	}
	if repSP.Solver != "sorted" {
		t.Fatalf("SP winner %q, want sorted", repSP.Solver)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(context.Background(), Problem{}); !errors.Is(err, ErrEmptyProblem) {
		t.Fatalf("empty problem: %v", err)
	}
	h := randomHyper(1, 4, 2, 2, 2, 3)
	if _, err := Run(context.Background(), Hyper(h), WithAlgorithm("no-such")); err == nil ||
		!strings.Contains(err.Error(), "no-such") {
		t.Fatalf("unknown algorithm: %v", err)
	}
	// A class mismatch through WithAlgorithm resolves in the problem's
	// class, so an SP-only name on a hypergraph is unknown.
	if _, err := Run(context.Background(), Hyper(h), WithAlgorithm("ExactUnit")); err == nil {
		t.Fatal("SP-only algorithm accepted for a hypergraph")
	}
	if _, err := Run(context.Background(), Hyper(h), WithPortfolio("nope")); err == nil {
		t.Fatal("unknown portfolio member accepted")
	}
	if _, err := NewProblem(42); err == nil {
		t.Fatal("NewProblem accepted an int")
	}
}

// TestProblemAccessors covers the carrier type's metadata surface.
func TestProblemAccessors(t *testing.T) {
	g := unitGraph(t, 5)
	h := randomHyper(5, 8, 3, 2, 2, 5)
	pg, ph := Bipartite(g), Hyper(h)
	if pg.Class() != registry.SingleProc || ph.Class() != registry.MultiProc {
		t.Fatal("class mismatch")
	}
	if pg.NTasks() != g.NLeft || pg.NProcs() != g.NRight {
		t.Fatal("bipartite dims")
	}
	if ph.NTasks() != h.NTasks || ph.NProcs() != h.NProcs {
		t.Fatal("hypergraph dims")
	}
	if pg.LowerBound() != core.LowerBoundSingle(g) || ph.LowerBound() != core.LowerBound(h) {
		t.Fatal("lower bounds")
	}
	fp1, err := ph.Fingerprint()
	if err != nil || fp1 == "" {
		t.Fatalf("fingerprint: %q, %v", fp1, err)
	}
	if !strings.Contains(pg.String(), "SINGLEPROC") || !strings.Contains(ph.String(), "MULTIPROC") {
		t.Fatalf("String(): %q / %q", pg.String(), ph.String())
	}
	if p, err := NewProblem(g); err != nil || p.Graph() != g {
		t.Fatal("NewProblem(*Graph)")
	}
	if p, err := NewProblem(h); err != nil || p.Hypergraph() != h {
		t.Fatal("NewProblem(*Hypergraph)")
	}
}

// TestRunDeterministicAcrossWorkers: for a fixed problem and options the
// reported makespan, solver and status do not depend on Workers.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		h := randomHyper(seed+50, 14, 4, 3, 3, 12)
		base, err := RunOptions(context.Background(), Hyper(h), Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		multi, err := RunOptions(context.Background(), Hyper(h), Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if base.Makespan != multi.Makespan || base.Solver != multi.Solver || base.Status != multi.Status {
			t.Fatalf("seed %d: workers=1 (%d,%s,%v) vs workers=4 (%d,%s,%v)", seed,
				base.Makespan, base.Solver, base.Status, multi.Makespan, multi.Solver, multi.Status)
		}
	}
}
