package solve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"semimatch/internal/cert"
	"semimatch/internal/core"
	"semimatch/internal/exact"
	"semimatch/internal/loadvec"
	"semimatch/internal/portfolio"
	"semimatch/internal/refine"
	"semimatch/internal/registry"
	"semimatch/internal/telemetry"
)

// ErrVerifyFailed reports that WithVerify was requested and the result's
// certificate did not withstand independent verification. The Report is
// still returned — with Status downgraded from StatusOptimal if it
// claimed a proof — so callers can keep the schedule while distrusting
// the claim.
var ErrVerifyFailed = errors.New("solve: certificate verification failed")

// Defaults of the auto policy's exact-attempt stage (shared with the
// batch runner, which routes through RunOptions).
const (
	// DefaultExactTaskLimit is the largest instance (in tasks) that gets a
	// branch-and-bound attempt when Options.ExactTaskLimit is zero.
	DefaultExactTaskLimit = 16
	// DefaultExactNodes is the auto policy's branch-and-bound node budget
	// when Options.NodeBudget is zero — small enough to bound each attempt
	// to tens of milliseconds.
	DefaultExactNodes = 2_000_000
)

// Status classifies how trustworthy a Report's schedule is.
type Status uint8

const (
	// StatusHeuristic is a valid schedule with no optimality proof; the
	// solve ran to completion.
	StatusHeuristic Status = iota
	// StatusOptimal is a provably optimal schedule.
	StatusOptimal
	// StatusTruncated is a valid schedule from a solve a deadline, node
	// budget or cancellation cut short — the best found so far, not
	// provably the best possible.
	StatusTruncated
)

// String returns the status label used in listings and JSON.
func (s Status) String() string {
	switch s {
	case StatusHeuristic:
		return "heuristic"
	case StatusOptimal:
		return "optimal"
	case StatusTruncated:
		return "truncated"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Report is the unified outcome of one Run, in the problem's own
// encoding regardless of class.
type Report struct {
	// Class is the problem class that was solved.
	Class registry.Class
	// Solver is the canonical registry name of what produced the
	// schedule: the named algorithm, the winning portfolio member, or the
	// exact stage's solver.
	Solver string
	// Assignment maps each task to its processor (SINGLEPROC) or chosen
	// hyperedge id (MULTIPROC).
	Assignment []int32
	// Loads is the per-processor load vector of Assignment.
	Loads []int64
	// Makespan is the maximum processor load.
	Makespan int64
	// LowerBound is the class's load-balance lower bound on the optimal
	// makespan; Makespan == LowerBound certifies optimality even for a
	// heuristic schedule.
	LowerBound int64
	// Status reports the schedule's optimality class.
	Status Status
	// Stats carries branch-and-bound search statistics when an exact
	// solver ran (zero otherwise).
	Stats exact.SearchStats
	// Certificate is the proof-carrying form of this result: the claims —
	// fingerprint, schedule, makespan, lower bound, optimality witness —
	// that cert.Verify can check against the instance without trusting
	// this process. Nil only when the Run produced no schedule or the
	// instance could not be fingerprinted.
	Certificate *cert.Certificate
	// Trust is the tier verification established. It is meaningful only
	// when verification ran (WithVerify, or a verifying caller such as
	// the service); otherwise it stays TierHeuristic regardless of
	// Status.
	Trust cert.Tier
	// Incumbents is the number of observations delivered to the
	// registered Observer (0 without one).
	Incumbents int
	// Elapsed is the wall-clock time of the whole Run.
	Elapsed time.Duration
	// Trace is the solve's span tree when tracing was requested
	// (WithTrace), nil otherwise. The root "solve" span's children cover
	// the Run's phases — "race"/"exact" (with nested compile,
	// root-bounds, greedy, search), "refine", "verify" — each with wall
	// time and attributes; emit with Trace.WriteNDJSON or Trace.Format.
	Trace *telemetry.Trace

	// stageMakespan tracks the best makespan during policy staging;
	// Makespan/Loads are recomputed from the final Assignment at the end
	// of RunOptions.
	stageMakespan int64
}

// Optimal reports a provably optimal schedule.
func (r *Report) Optimal() bool { return r.Status == StatusOptimal }

// Options is the resolved option set of one Run. Most callers use the
// functional With* options; policy layers that need fine-grained control
// (the batch runner) fill the struct directly and call RunOptions.
type Options struct {
	// Algorithm names one registry solver to run (any name or alias, in
	// the problem's class). Empty selects the auto policy: a heuristic
	// race first, then — when the instance is small enough — an exact
	// branch-and-bound attempt that can prove optimality.
	Algorithm string
	// Portfolio restricts the auto policy's heuristic race; nil means the
	// class's full default heuristic lineup. Ignored with Algorithm.
	Portfolio []string
	// Deadline bounds the whole Run, layered under ctx; 0 means none.
	// When it expires the best schedule found so far is returned with
	// StatusTruncated.
	Deadline time.Duration
	// Workers bounds solver-internal parallelism: the heuristic race's
	// fan-out and, unless ExactWorkers overrides it, the parallel
	// branch-and-bound pool. 0 means GOMAXPROCS.
	Workers int
	// ExactWorkers overrides Workers for the exact stage's internal pool
	// — the batch runner sets it so nested parallelism stays at one busy
	// goroutine per core. 0 defers to Workers.
	ExactWorkers int
	// NodeBudget caps branch-and-bound search nodes. 0 means the
	// default: DefaultExactNodes for the auto policy's exact attempt, the
	// engine default (20M) for a named exact algorithm.
	NodeBudget int64
	// ExactTaskLimit is the largest instance (in tasks) the auto policy
	// gives an exact attempt; 0 means DefaultExactTaskLimit, negative
	// disables the exact stage. Ignored with Algorithm.
	ExactTaskLimit int
	// InitialIncumbent warm-starts any exact stage with a known feasible
	// schedule in the problem's own encoding (task → processor for
	// SINGLEPROC, task → hyperedge id for MULTIPROC): branch and bound
	// starts from its makespan as the upper bound instead of the greedy
	// seed, so a re-solve of a slightly-changed instance explores at most
	// as much tree as a cold solve. Invalid or non-improving warm starts
	// are ignored; results are never worse for having one.
	InitialIncumbent []int32
	// Refine post-processes MULTIPROC schedules with local search (never
	// worse). SINGLEPROC problems ignore it.
	Refine bool
	// Verify re-checks the result's certificate against the instance
	// before returning: Report.Trust is set to the established tier, and
	// a StatusOptimal claim that fails verification is downgraded to
	// StatusHeuristic with ErrVerifyFailed returned alongside the Report.
	Verify bool
	// Observer receives the incumbent trajectory; see Observer.
	Observer Observer
	// Trace records the solve's phase spans into Report.Trace; see
	// Report.Trace for the span taxonomy. Spans are per phase, never per
	// node, so tracing does not perturb the search.
	Trace bool
	// Progress receives periodic search-introspection snapshots (nodes,
	// rate, incumbent/bound gap, steals, deque depths) from any exact
	// stage that runs, rate-limited by ProgressInterval. Polled at the
	// engines' existing checkpoints: node counts are identical with and
	// without it.
	Progress telemetry.ProgressFunc
	// ProgressInterval is the minimum wall time between Progress
	// snapshots; 0 means telemetry.DefaultProgressInterval.
	ProgressInterval time.Duration

	// trace is the live root span when Trace is set; RunOptions owns it.
	trace *telemetry.Span
}

// Option is one functional Run option.
type Option func(*Options)

// WithAlgorithm runs one named registry solver (name or alias) instead of
// the auto policy.
func WithAlgorithm(name string) Option { return func(o *Options) { o.Algorithm = name } }

// WithDeadline bounds the whole Run; on expiry the best schedule found so
// far is returned with StatusTruncated.
func WithDeadline(d time.Duration) Option { return func(o *Options) { o.Deadline = d } }

// WithWorkers bounds solver-internal parallelism (0 = GOMAXPROCS).
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithNodeBudget caps branch-and-bound search nodes.
func WithNodeBudget(n int64) Option { return func(o *Options) { o.NodeBudget = n } }

// WithRefine post-processes MULTIPROC schedules with local search.
func WithRefine() Option { return func(o *Options) { o.Refine = true } }

// WithPortfolio restricts the auto policy's heuristic race to the named
// members (registry names or aliases, resolved in the problem's class).
func WithPortfolio(algorithms ...string) Option {
	return func(o *Options) { o.Portfolio = algorithms }
}

// WithWarmStart seeds any exact stage with a known feasible schedule in
// the problem's own encoding; see Options.InitialIncumbent.
func WithWarmStart(assignment []int32) Option {
	return func(o *Options) { o.InitialIncumbent = assignment }
}

// WithObserver registers an incumbent observer; see Observer.
func WithObserver(fn Observer) Option { return func(o *Options) { o.Observer = fn } }

// WithVerify independently verifies the result's certificate before Run
// returns: Report.Trust carries the established tier, and an optimality
// claim that does not verify is downgraded (see Options.Verify).
func WithVerify() Option { return func(o *Options) { o.Verify = true } }

// WithExactLimit bounds the auto policy's exact-attempt stage to
// instances of at most tasks tasks (negative disables the stage).
func WithExactLimit(tasks int) Option { return func(o *Options) { o.ExactTaskLimit = tasks } }

// WithTrace records the solve's phase spans into Report.Trace.
func WithTrace() Option { return func(o *Options) { o.Trace = true } }

// WithProgress registers a periodic search-introspection hook; see
// Options.Progress.
func WithProgress(fn telemetry.ProgressFunc) Option { return func(o *Options) { o.Progress = fn } }

func (o Options) exactTaskLimit() int {
	if o.ExactTaskLimit == 0 {
		return DefaultExactTaskLimit
	}
	return o.ExactTaskLimit
}

func (o Options) exactNodes() int64 {
	if o.NodeBudget <= 0 {
		return DefaultExactNodes
	}
	return o.NodeBudget
}

func (o Options) exactWorkers() int {
	if o.ExactWorkers > 0 {
		return o.ExactWorkers
	}
	return o.Workers
}

// Run solves a Problem of either class and returns the unified Report.
// With WithAlgorithm it runs exactly that registry solver; otherwise the
// auto policy races the class's heuristic lineup and then, when the
// instance is small enough, attempts an exact branch-and-bound proof.
//
// Run is an anytime entry point: a deadline (ctx or WithDeadline) or node
// budget degrades the answer to the best schedule found so far
// (StatusTruncated) rather than failing, and WithObserver streams the
// incumbent trajectory while the solve is still running. Run returns an
// error only when no schedule at all could be produced — with one
// exception: an unexpected failure in the auto policy's exact stage
// returns the heuristic-stage Report alongside the error, so callers that
// degrade gracefully can keep the schedule.
func Run(ctx context.Context, p Problem, opts ...Option) (*Report, error) {
	var o Options
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return RunOptions(ctx, p, o)
}

// RunOptions is Run with a resolved Options struct; see Run for the
// contract.
func RunOptions(ctx context.Context, p Problem, o Options) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	if o.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Deadline)
		defer cancel()
	}
	obs := newObsState(o.Observer, start)
	if o.Trace {
		o.trace = telemetry.StartSpan("solve")
		o.trace.SetAttr("class", p.Class().String())
		if o.Algorithm != "" {
			o.trace.SetAttr("algorithm", o.Algorithm)
		}
	}

	var rep *Report
	var err error
	if o.Algorithm != "" {
		rep, err = runNamed(ctx, p, o, obs)
	} else {
		rep, err = runAuto(ctx, p, o, obs)
	}
	if rep == nil {
		return nil, err
	}
	rep.Class = p.Class()
	rep.LowerBound = p.LowerBound()
	rep.Makespan, rep.Loads = p.MakespanLoads(rep.Assignment)
	if rep.Assignment != nil {
		rep.Certificate = cert.Issue(p.instance(), rep.Assignment, rep.Makespan,
			rep.LowerBound, rep.Status == StatusOptimal, rep.Stats.Nodes, rep.Solver)
	}
	if o.Verify {
		vs := o.trace.StartChild("verify")
		verr := verifyReport(p, rep)
		vs.SetAttr("trust", rep.Trust.String())
		vs.End()
		if verr != nil {
			err = errors.Join(err, verr)
		}
	}
	if o.trace != nil {
		o.trace.SetAttr("solver", rep.Solver)
		o.trace.SetAttr("makespan", rep.Makespan)
		o.trace.SetAttr("status", rep.Status.String())
		o.trace.End()
		rep.Trace = o.trace
	}
	rep.Elapsed = time.Since(start)
	obs.final(rep)
	rep.Incumbents = obs.events()
	return rep, err
}

// verifyReport re-checks rep's certificate against the instance and
// grades rep.Trust. A StatusOptimal claim that fails verification is
// downgraded to StatusHeuristic — optimality survives only proof.
func verifyReport(p Problem, rep *Report) error {
	rep.Trust = cert.TierHeuristic
	if rep.Certificate == nil {
		if rep.Assignment == nil {
			return nil // nothing to certify, nothing claimed
		}
		if rep.Status == StatusOptimal {
			rep.Status = StatusHeuristic
		}
		return fmt.Errorf("%w: no certificate issued", ErrVerifyFailed)
	}
	tier, verr := cert.Verify(p.instance(), rep.Certificate)
	if verr != nil {
		if rep.Status == StatusOptimal {
			rep.Status = StatusHeuristic
		}
		return fmt.Errorf("%w: %w", ErrVerifyFailed, verr)
	}
	rep.Trust = tier
	return nil
}

// runNamed executes exactly one registry solver.
func runNamed(ctx context.Context, p Problem, o Options, obs *obsState) (*Report, error) {
	sol, err := registry.LookupClass(p.Class(), o.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("solve: %w", err)
	}
	rep := &Report{Solver: sol.Name}
	ropts := registry.Options{Workers: o.Workers}
	ropts.BnB.MaxNodes = o.NodeBudget
	ropts.BnB.InitialIncumbent = o.InitialIncumbent
	ropts.BnB.Stats = &rep.Stats
	// The engine's phase spans (compile, greedy, search) attach directly
	// under the solve root on the named path — there is no policy staging
	// to group them under.
	ropts.BnB.Trace = o.trace
	ropts.BnB.Progress = o.Progress
	ropts.BnB.ProgressInterval = o.ProgressInterval
	if obs.active() {
		ropts.BnB.Observer = obs.exactFn(sol.Name)
	}
	a, err := sol.SolveInstance(ctx, p.instance(), ropts)
	switch {
	case err == nil:
		if sol.Optimal() {
			rep.Status = StatusOptimal
		}
	case a != nil && registry.IncumbentError(err):
		// The search was cut short but kept its incumbent: degrade, don't
		// discard.
		rep.Status = StatusTruncated
	default:
		return nil, fmt.Errorf("solve: %s: %w", sol.Name, err)
	}
	if o.Refine && p.Class() == registry.MultiProc {
		rs := o.trace.StartChild("refine")
		refined := refine.RefineCtx(ctx, p.h, core.HyperAssignment(a), refine.Options{}).Assignment
		a = []int32(refined)
		rs.End()
	}
	rep.Assignment = a
	return rep, nil
}

// runAuto applies the class-generic per-instance policy: a heuristic race
// first (always fast), then an exact attempt when the instance is small
// enough, falling back to the best schedule found when a budget expires.
func runAuto(ctx context.Context, p Problem, o Options, obs *obsState) (*Report, error) {
	var rep *Report
	var err error
	if p.Class() == registry.MultiProc {
		rep, err = runAutoHyper(ctx, p, o, obs)
	} else {
		rep, err = runAutoSingle(ctx, p, o, obs)
	}
	// An expired context means the policy did not run to completion —
	// even when the stage it curtailed was skipped outright (e.g. the
	// deadline fired between the heuristic race and the exact attempt).
	// Without this, such results would read as complete and get cached.
	if rep != nil && rep.Status != StatusOptimal && ctx.Err() != nil {
		rep.Status = StatusTruncated
	}
	return rep, err
}

// adopt replaces the staged schedule.
func (r *Report) adopt(solver string, a []int32, m int64) {
	r.Assignment, r.Solver, r.stageMakespan = a, solver, m
}

// mergeExact folds one exact-stage outcome into the heuristic-stage
// report under the shared policy rules: a proven optimum upgrades the
// status (keeping the heuristic schedule on ties, so a refined load
// vector survives); a truncated search's incumbent is adopted only when
// it strictly improves; anything else is surfaced to the caller.
func mergeExact(rep *Report, solver string, a []int32, m int64, exErr error, ctxErr error) error {
	switch {
	case exErr == nil:
		if m < rep.stageMakespan {
			rep.adopt(solver, a, m)
		}
		rep.Status = StatusOptimal
	case a != nil && registry.IncumbentError(exErr):
		if m < rep.stageMakespan {
			rep.adopt(solver, a, m)
			rep.Status = StatusTruncated
		} else if ctxErr != nil {
			rep.Status = StatusTruncated
		}
	default:
		// Structural errors (no processors, isolated task) would have
		// failed the heuristic stage already; surface anything unexpected
		// alongside the stage-1 report.
		return exErr
	}
	return nil
}

// runAutoHyper is the MULTIPROC auto policy: portfolio race, then exact.
func runAutoHyper(ctx context.Context, p Problem, o Options, obs *obsState) (*Report, error) {
	popts := portfolio.Options{
		Algorithms: o.Portfolio,
		Refine:     o.Refine,
		Workers:    o.Workers,
	}
	if obs.active() {
		popts.Observer = func(member string, m int64, a core.HyperAssignment) {
			obs.emit(member, m, []int32(a), false)
		}
	}
	raceSpan := o.trace.StartChild("race")
	pres, err := portfolio.SolveCtx(ctx, p.h, popts)
	if err != nil {
		raceSpan.End()
		return nil, fmt.Errorf("solve: %w", err)
	}
	raceSpan.SetAttr("winner", pres.Winner)
	raceSpan.SetAttr("makespan", pres.Makespan)
	raceSpan.End()
	rep := &Report{
		Solver:        pres.Winner,
		Assignment:    []int32(pres.Assignment),
		stageMakespan: pres.Makespan,
	}
	if pres.Incomplete {
		rep.Status = StatusTruncated
	}

	lim := o.exactTaskLimit()
	var exSol *registry.Solver
	if exacts := registry.Find(registry.MultiProc, registry.Exact); len(exacts) > 0 {
		exSol = registry.Preferred(exacts[0])
	}
	if exSol == nil || lim <= 0 || p.h.NTasks > lim || ctx.Err() != nil {
		return rep, nil
	}
	exactSpan := o.trace.StartChild("exact")
	exactSpan.SetAttr("solver", exSol.Name)
	ropts := registry.Options{
		BnB: exact.Options{
			MaxNodes:         o.exactNodes(),
			InitialIncumbent: o.InitialIncumbent,
			Stats:            &rep.Stats,
			Trace:            exactSpan,
			Progress:         o.Progress,
			ProgressInterval: o.ProgressInterval,
		},
		Workers: o.exactWorkers(),
	}
	if obs.active() {
		ropts.BnB.Observer = obs.exactFn(exSol.Name)
	}
	a, exErr := exSol.SolveHyper(ctx, p.h, ropts)
	exactSpan.End()
	var m int64
	if a != nil {
		m = core.HyperMakespan(p.h, a)
	}
	if err := mergeExact(rep, exSol.Name, []int32(a), m, exErr, ctx.Err()); err != nil {
		return rep, fmt.Errorf("solve: %s: %w", exSol.Name, err)
	}
	return rep, nil
}

// runAutoSingle is the SINGLEPROC auto policy — the bipartite counterpart
// of the hypergraph pipeline, and the stage that makes SINGLEPROC
// batching a first-class workload: a sequential race over the class's
// heuristic lineup (judged by full sorted load vector, ties by lineup
// order, so results are deterministic), then the polynomial ExactUnit
// proof for unit instances or a parallel branch-and-bound attempt for
// small weighted ones.
func runAutoSingle(ctx context.Context, p Problem, o Options, obs *obsState) (*Report, error) {
	g := p.Graph()
	defaults := registry.Names(registry.Heuristics(registry.SingleProc))
	names, solvers, err := registry.ResolveClass(registry.SingleProc, o.Portfolio, defaults)
	if err != nil {
		return nil, fmt.Errorf("solve: %w", err)
	}

	rep := &Report{}
	raceSpan := o.trace.StartChild("race")
	var bestVec []int64
	found := false
	var firstErr error
	truncated := false
	for i, sol := range solvers {
		if ctx.Err() != nil {
			truncated = found
			break
		}
		a, err := sol.SolveSingle(ctx, g, registry.Options{Workers: 1})
		if err != nil && (a == nil || !registry.IncumbentError(err)) {
			if firstErr == nil {
				firstErr = fmt.Errorf("solve: %s: %w", names[i], err)
			}
			continue
		}
		vec := loadvec.SortedDesc(core.Loads(g, a))
		if !found || loadvec.CompareVec(vec, bestVec) < 0 {
			found = true
			rep.Assignment, rep.Solver, bestVec = []int32(a), names[i], vec
			rep.stageMakespan = 0
			if len(vec) > 0 {
				rep.stageMakespan = vec[0]
			}
			obs.emit(names[i], rep.stageMakespan, rep.Assignment, false)
		}
	}
	if found {
		raceSpan.SetAttr("winner", rep.Solver)
		raceSpan.SetAttr("makespan", rep.stageMakespan)
	}
	raceSpan.End()
	if !found {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("solve: no heuristic finished: %w", ctx.Err())
	}
	if truncated {
		rep.Status = StatusTruncated
		return rep, nil
	}

	// Exact stage, capability-selected: the polynomial matching-based
	// solver whenever unit weights allow it (any size), else the
	// exponential branch-and-bound (parallel counterpart preferred) for
	// small instances only.
	lim := o.exactTaskLimit()
	var exSol *registry.Solver
	exacts := registry.Find(registry.SingleProc, registry.Exact)
	switch {
	case lim <= 0 || ctx.Err() != nil:
	case g.Unit():
		if len(exacts) > 0 {
			exSol = exacts[0] // cheapest cost class first: ExactUnit
		}
	case g.NLeft <= lim:
		for _, s := range exacts {
			if s.Cost == registry.CostExponential {
				exSol = registry.Preferred(s)
				break
			}
		}
	}
	if exSol == nil {
		return rep, nil
	}
	exactSpan := o.trace.StartChild("exact")
	exactSpan.SetAttr("solver", exSol.Name)
	ropts := registry.Options{
		BnB: exact.Options{
			MaxNodes:         o.exactNodes(),
			InitialIncumbent: o.InitialIncumbent,
			Stats:            &rep.Stats,
			Trace:            exactSpan,
			Progress:         o.Progress,
			ProgressInterval: o.ProgressInterval,
		},
		Workers: o.exactWorkers(),
	}
	if obs.active() {
		ropts.BnB.Observer = obs.exactFn(exSol.Name)
	}
	a, exErr := exSol.SolveSingle(ctx, g, ropts)
	exactSpan.End()
	var m int64
	if a != nil {
		m = core.Makespan(g, a)
	}
	if err := mergeExact(rep, exSol.Name, []int32(a), m, exErr, ctx.Err()); err != nil {
		return rep, fmt.Errorf("solve: %s: %w", exSol.Name, err)
	}
	return rep, nil
}
