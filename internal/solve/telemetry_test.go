package solve

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"semimatch/internal/telemetry"
)

// TestRunWithTrace asserts Report.Trace carries the documented span tree
// and that the depth-1 spans' wall times are covered by the root's —
// the "-trace sums to ≈ report wall" acceptance check.
func TestRunWithTrace(t *testing.T) {
	h := randomHyper(3, 12, 4, 3, 3, 30)
	p := Hyper(h)
	rep, err := Run(context.Background(), p, WithTrace(), WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("WithTrace set but Report.Trace is nil")
	}
	if rep.Trace.Name != "solve" {
		t.Fatalf("root span = %q", rep.Trace.Name)
	}
	kids := rep.Trace.Children()
	names := map[string]*telemetry.Span{}
	var sum time.Duration
	for _, c := range kids {
		names[c.Name] = c
		sum += c.Wall()
	}
	if names["race"] == nil {
		t.Fatalf("missing race span; children: %v", spanNames(kids))
	}
	if names["verify"] == nil {
		t.Fatalf("missing verify span; children: %v", spanNames(kids))
	}
	if es := names["exact"]; es != nil {
		sub := spanNames(es.Children())
		for _, want := range []string{"compile", "greedy", "search"} {
			if !contains(sub, want) {
				t.Fatalf("exact span missing %q child; has %v", want, sub)
			}
		}
	}
	// Phase spans run sequentially inside the root, so their walls can
	// never exceed it.
	if root := rep.Trace.Wall(); sum > root+time.Millisecond {
		t.Fatalf("children wall %v exceeds root wall %v", sum, root)
	}

	// NDJSON emission of a real trace round-trips.
	var buf bytes.Buffer
	if err := rep.Trace.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n < 3 {
		t.Fatalf("NDJSON lines = %d, want several", n)
	}

	// Without WithTrace no tree is built.
	rep2, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Trace != nil {
		t.Fatal("Report.Trace set without WithTrace")
	}
}

func spanNames(spans []*telemetry.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestRunWithProgress asserts WithProgress snapshots flow out of the
// auto policy's exact stage.
func TestRunWithProgress(t *testing.T) {
	g := weightedGraph(4, 14, 4, 4, 40)
	p := Bipartite(g)
	var snaps int
	rep, err := Run(context.Background(), p,
		WithProgress(func(telemetry.SearchProgress) { snaps++ }),
		func(o *Options) { o.ProgressInterval = time.Nanosecond },
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Nodes > 0 && snaps == 0 {
		t.Fatal("exact stage ran but no progress snapshots were delivered")
	}
}

// TestFeaturesAndLedgerRecord checks the ledger feature extraction on
// both classes.
func TestFeaturesAndLedgerRecord(t *testing.T) {
	g := weightedGraph(5, 10, 3, 3, 20)
	p := Bipartite(g)
	f := Features(p)
	if f.Class != "SINGLEPROC" || f.Tasks != 10 || f.Procs != 3 {
		t.Fatalf("features = %+v", f)
	}
	if f.Edges != len(g.Adj) {
		t.Fatalf("edges = %d, want %d", f.Edges, len(g.Adj))
	}
	if f.Density <= 0 || f.Density > 1 {
		t.Fatalf("density = %v", f.Density)
	}
	if f.WMin < 1 || f.WMax > 20 || f.WSpread < 1 {
		t.Fatalf("weights = %+v", f)
	}

	h := randomHyper(6, 8, 4, 3, 3, 1) // unit weights
	ph := Hyper(h)
	fh := Features(ph)
	if fh.Class != "MULTIPROC" || fh.WMin != 1 || fh.WMax != 1 || fh.WSpread != 1 {
		t.Fatalf("hyper features = %+v", fh)
	}

	rep, err := Run(context.Background(), ph, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := ph.Fingerprint()
	rec := NewLedgerRecord("cli", fp, ph, rep)
	if rec.Source != "cli" || rec.Fingerprint != fp {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Algorithm != rep.Solver || rec.Makespan != rep.Makespan {
		t.Fatalf("record = %+v vs report %+v", rec, rep)
	}
	if rec.Status != rep.Status.String() || rec.WallS < 0 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Trust == "" {
		t.Fatal("verified report produced record without trust tier")
	}
}
