package solve

import (
	"context"
	"sync"
	"testing"
)

// The dynamic-session hot pattern: many Runs in quick succession over the
// same Problem, each with its own observer, often warm-started from the
// previous result. The contract must hold independently per run — streams
// never bleed into each other, every run closes with exactly one Final —
// and the warm start must never degrade the answer.

func TestObserverRapidSuccessiveRuns(t *testing.T) {
	h := randomHyper(23, 12, 4, 3, 3, 9)
	p := Hyper(h)

	var prev []int32
	var prevMakespan int64
	for i := 0; i < 20; i++ {
		var opts []Option
		if prev != nil {
			opts = append(opts, WithWarmStart(prev))
		}
		events, rep := collectIncumbents(t, p, opts...)
		checkContract(t, p, events, rep)
		if prev != nil && rep.Makespan > prevMakespan {
			t.Fatalf("run %d: warm-started makespan %d worse than previous %d", i, rep.Makespan, prevMakespan)
		}
		prev, prevMakespan = rep.Assignment, rep.Makespan
	}
}

// Concurrent Runs on one shared Problem: each run's observer sees only its
// own serialized, monotone stream with one Final. The -race CI job on this
// package turns any cross-run interference into a failure.
func TestObserverConcurrentRunsIsolated(t *testing.T) {
	h := hardHyper(9)
	p := Hyper(h)

	const runs = 8
	var wg sync.WaitGroup
	errs := make(chan error, runs)
	type outcome struct {
		events []Incumbent
		rep    *Report
	}
	outcomes := make([]outcome, runs)
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var events []Incumbent
			rep, err := Run(context.Background(), p,
				WithAlgorithm("bnb-par"), WithWorkers(2), WithNodeBudget(150_000),
				WithObserver(func(inc Incumbent) {
					// Deliberately unsynchronized per-run slice: the contract
					// serializes calls within a run, and -race enforces it.
					events = append(events, inc)
				}))
			if err != nil {
				errs <- err
				return
			}
			outcomes[r] = outcome{events, rep}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.rep == nil {
			continue // collected via errs above
		}
		checkContract(t, p, o.events, o.rep)
	}
}
