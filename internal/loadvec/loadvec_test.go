package loadvec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSortedDescAndCompareVec(t *testing.T) {
	v := SortedDesc([]int64{3, 1, 4, 1, 5})
	if !reflect.DeepEqual(v, []int64{5, 4, 3, 1, 1}) {
		t.Fatalf("SortedDesc = %v", v)
	}
	if CompareVec([]int64{5, 4}, []int64{5, 4}) != 0 {
		t.Fatal("equal vectors")
	}
	if CompareVec([]int64{5, 3}, []int64{5, 4}) != -1 {
		t.Fatal("second element decides")
	}
	if CompareVec([]int64{6, 0}, []int64{5, 9}) != 1 {
		t.Fatal("first element dominates")
	}
}

func TestTrackerBasics(t *testing.T) {
	tr := New[int64](4)
	if tr.Len() != 4 || tr.Max() != 0 {
		t.Fatalf("fresh tracker wrong: %v", tr.Sorted())
	}
	tr.AddAll([]int32{1, 3}, 5)
	if tr.Load(1) != 5 || tr.Load(3) != 5 || tr.Load(0) != 0 {
		t.Fatalf("loads = %v", tr.Loads())
	}
	if !reflect.DeepEqual(tr.Sorted(), []int64{5, 5, 0, 0}) {
		t.Fatalf("sorted = %v", tr.Sorted())
	}
	tr.AddAll([]int32{1}, 2)
	if tr.Max() != 7 {
		t.Fatalf("Max = %d", tr.Max())
	}
	if !reflect.DeepEqual(tr.Sorted(), []int64{7, 5, 0, 0}) {
		t.Fatalf("sorted = %v", tr.Sorted())
	}
}

func TestTrackerSetAll(t *testing.T) {
	tr := New[int64](3)
	tr.SetAll([]int32{0, 1, 2}, []int64{9, 4, 6})
	if !reflect.DeepEqual(tr.Sorted(), []int64{9, 6, 4}) {
		t.Fatalf("sorted = %v", tr.Sorted())
	}
	tr.SetAll([]int32{0}, []int64{1})
	if !reflect.DeepEqual(tr.Sorted(), []int64{6, 4, 1}) {
		t.Fatalf("sorted = %v", tr.Sorted())
	}
}

func TestTrackerEmptyBatch(t *testing.T) {
	tr := New[int64](2)
	tr.SetAll(nil, nil)
	if !reflect.DeepEqual(tr.Sorted(), []int64{0, 0}) {
		t.Fatalf("sorted = %v", tr.Sorted())
	}
}

func TestCandidateMaxAfterAndCommit(t *testing.T) {
	tr := New[int64](3)
	tr.SetAll([]int32{0, 1, 2}, []int64{5, 3, 1})
	c := tr.AddCandidate([]int32{2}, 10)
	if tr.MaxAfter(c) != 11 {
		t.Fatalf("MaxAfter = %d", tr.MaxAfter(c))
	}
	if tr.Max() != 5 {
		t.Fatal("candidate must not mutate tracker")
	}
	tr.Commit(c)
	if tr.Max() != 11 || tr.Load(2) != 11 {
		t.Fatalf("after commit: max=%d load2=%d", tr.Max(), tr.Load(2))
	}
}

func TestCompareCandidates(t *testing.T) {
	tr := New[int64](4)
	tr.SetAll([]int32{0, 1, 2, 3}, []int64{4, 4, 2, 0})
	// a: +1 on proc 3 → vector [4 4 2 1]
	// b: +1 on proc 2 → vector [4 4 3 0]
	a := tr.AddCandidate([]int32{3}, 1)
	b := tr.AddCandidate([]int32{2}, 1)
	if tr.Compare(a, b) != -1 {
		t.Fatalf("a should beat b: %v vs %v", tr.ResultVec(a), tr.ResultVec(b))
	}
	if tr.Compare(b, a) != 1 {
		t.Fatal("antisymmetry")
	}
	if tr.Compare(a, a) != 0 {
		t.Fatal("reflexivity")
	}
}

func TestCompareTieOnMaxBrokenLater(t *testing.T) {
	// Both candidates reach max 6; second-largest decides (the paper's
	// vector-greedy tie-breaking).
	tr := New[int64](3)
	tr.SetAll([]int32{0, 1, 2}, []int64{6, 2, 2})
	a := tr.NewCandidate([]int32{1}, []int64{5}) // [6 5 2]
	b := tr.NewCandidate([]int32{1, 2}, []int64{3, 3})
	// b → [6 3 3]: max ties at 6, then 3 < 5, so b wins.
	if tr.Compare(b, a) != -1 {
		t.Fatalf("b should win: %v vs %v", tr.ResultVec(b), tr.ResultVec(a))
	}
}

func TestFloatTracker(t *testing.T) {
	tr := New[float64](3)
	tr.AddAll([]int32{0, 1}, 0.5)
	tr.AddAll([]int32{1}, 0.25)
	if tr.Load(1) != 0.75 {
		t.Fatalf("Load(1) = %v", tr.Load(1))
	}
	if !reflect.DeepEqual(tr.Sorted(), []float64{0.75, 0.5, 0}) {
		t.Fatalf("sorted = %v", tr.Sorted())
	}
}

func TestRebuildMatchesIncremental(t *testing.T) {
	tr := New[int64](5)
	tr.SetAll([]int32{0, 2, 4}, []int64{7, 7, 1})
	inc := append([]int64(nil), tr.Sorted()...)
	tr.Rebuild()
	if !reflect.DeepEqual(inc, tr.Sorted()) {
		t.Fatalf("incremental %v != rebuilt %v", inc, tr.Sorted())
	}
}

func TestResultVecMatchesNaive(t *testing.T) {
	tr := New[int64](6)
	tr.SetAll([]int32{0, 1, 2, 3, 4, 5}, []int64{9, 7, 7, 3, 1, 0})
	c := tr.NewCandidate([]int32{1, 4}, []int64{8, 2})
	want := SortedDesc([]int64{9, 8, 7, 3, 2, 0})
	if got := tr.ResultVec(c); !reflect.DeepEqual(got, want) {
		t.Fatalf("ResultVec = %v, want %v", got, want)
	}
}

// Property: incremental tracker state always equals naive sort of loads,
// through random batched updates.
func TestPropertyIncrementalEqualsNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(20)
		tr := New[int64](p)
		ref := make([]int64, p)
		for step := 0; step < 30; step++ {
			k := 1 + rng.Intn(p)
			procs := rng.Perm(p)[:k]
			ps := make([]int32, k)
			vals := make([]int64, k)
			for i, u := range procs {
				ps[i] = int32(u)
				vals[i] = rng.Int63n(100)
				ref[u] = vals[i]
			}
			tr.SetAll(ps, vals)
			if !reflect.DeepEqual(tr.Sorted(), SortedDesc(ref)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare(a,b) agrees with naive full-vector comparison.
func TestPropertyCompareEqualsNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(15)
		tr := New[int64](p)
		initProcs := make([]int32, p)
		initVals := make([]int64, p)
		for u := 0; u < p; u++ {
			initProcs[u] = int32(u)
			initVals[u] = rng.Int63n(20)
		}
		tr.SetAll(initProcs, initVals)
		mk := func() Candidate[int64] {
			k := 1 + rng.Intn(p)
			perm := rng.Perm(p)[:k]
			ps := make([]int32, k)
			vals := make([]int64, k)
			for i, u := range perm {
				ps[i] = int32(u)
				vals[i] = rng.Int63n(30)
			}
			return tr.NewCandidate(ps, vals)
		}
		a, b := mk(), mk()
		naive := CompareVec(tr.ResultVec(a), tr.ResultVec(b))
		if tr.Compare(a, b) != naive {
			return false
		}
		// MaxAfter agrees with head of result vector.
		if va := tr.ResultVec(a); len(va) > 0 && tr.MaxAfter(a) != va[0] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: committing the better of two candidates always yields a sorted
// vector ≤ the other choice's (consistency of Compare with Commit).
func TestPropertyCommitConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(10)
		tr1 := New[int64](p)
		tr2 := New[int64](p)
		base := make([]int64, p)
		procs := make([]int32, p)
		for u := 0; u < p; u++ {
			procs[u] = int32(u)
			base[u] = rng.Int63n(10)
		}
		tr1.SetAll(procs, base)
		tr2.SetAll(procs, base)
		k := 1 + rng.Intn(p)
		ps := make([]int32, k)
		for i, u := range rng.Perm(p)[:k] {
			ps[i] = int32(u)
		}
		c1 := tr1.AddCandidate(ps, 3)
		c2 := tr2.AddCandidate(ps, 3)
		tr1.Commit(c1)
		vec := tr2.ResultVec(c2)
		return reflect.DeepEqual(tr1.Sorted(), vec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompareFast(b *testing.B) {
	const p = 4096
	rng := rand.New(rand.NewSource(1))
	tr := New[int64](p)
	procs := make([]int32, p)
	vals := make([]int64, p)
	for u := 0; u < p; u++ {
		procs[u] = int32(u)
		vals[u] = rng.Int63n(1000)
	}
	tr.SetAll(procs, vals)
	a := tr.AddCandidate([]int32{1, 5, 9}, 7)
	c := tr.AddCandidate([]int32{2, 6, 10}, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Compare(a, c)
	}
}

func BenchmarkCompareNaive(b *testing.B) {
	const p = 4096
	rng := rand.New(rand.NewSource(1))
	loads := make([]int64, p)
	for u := range loads {
		loads[u] = rng.Int63n(1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := SortedDesc(loads)
		vb := SortedDesc(loads)
		CompareVec(va, vb)
	}
}

func BenchmarkSetAllIncremental(b *testing.B) {
	const p = 4096
	tr := New[int64](p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.AddAll([]int32{int32(i % p), int32((i + 7) % p)}, 1)
	}
}
