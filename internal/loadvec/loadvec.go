// Package loadvec maintains processor load vectors sorted in descending
// order and compares hypothetical updates lexicographically. It is the
// machinery behind the vector-greedy heuristics of Sec. IV-D3/D4 of the
// paper: "among the hyperedges, choose the ones that yield the smallest
// largest load; among the alternatives choose the ones that yield the
// smallest second largest load and so on".
//
// The paper describes (but did not implement) an improved variant that
// keeps the current load vector sorted as a list and obtains a candidate's
// sorted vector by merging the few modified positions. Tracker implements
// exactly that: comparing a candidate costs O(position of first difference
// + k log k) where k is the number of modified processors, instead of
// O(p log p) for the naive copy-and-sort.
//
// The tracker is generic over int64 (actual loads, VGH) and float64
// (expected loads o(u), EVG).
package loadvec

import (
	"sort"
)

// Value is the constraint for load types: integral loads for the plain
// heuristics, floating point for expected loads.
type Value interface {
	~int64 | ~float64
}

// SortedDesc returns a copy of loads sorted in descending order — the naive
// building block (used by the reference implementations and for testing the
// incremental path).
func SortedDesc[T Value](loads []T) []T {
	s := append([]T(nil), loads...)
	sort.Slice(s, func(i, j int) bool { return s[i] > s[j] })
	return s
}

// CompareVec lexicographically compares two equal-length descending vectors:
// -1 if a < b (a is the better/smaller load profile), 0 if equal, +1 if a > b.
func CompareVec[T Value](a, b []T) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Tracker maintains per-processor loads plus the same multiset sorted
// descending, with batch updates and candidate comparison.
type Tracker[T Value] struct {
	loads   []T // by processor index
	sorted  []T // descending multiset of loads
	scratch []T
}

// New returns a tracker for p processors, all loads zero.
func New[T Value](p int) *Tracker[T] {
	return &Tracker[T]{
		loads:   make([]T, p),
		sorted:  make([]T, p),
		scratch: make([]T, p),
	}
}

// Len returns the number of processors.
func (t *Tracker[T]) Len() int { return len(t.loads) }

// Load returns the current load of processor u.
func (t *Tracker[T]) Load(u int32) T { return t.loads[u] }

// Loads returns the internal per-processor load slice (do not modify).
func (t *Tracker[T]) Loads() []T { return t.loads }

// Max returns the current maximum load (0 for p = 0).
func (t *Tracker[T]) Max() T {
	if len(t.sorted) == 0 {
		var zero T
		return zero
	}
	return t.sorted[0]
}

// Sorted returns the internal descending sorted loads (do not modify).
func (t *Tracker[T]) Sorted() []T { return t.sorted }

// AddAll adds delta[i] to processor procs[i] and resorts incrementally.
// procs must not contain duplicates.
func (t *Tracker[T]) AddAll(procs []int32, delta T) {
	newVals := make([]T, len(procs))
	for i, u := range procs {
		newVals[i] = t.loads[u] + delta
	}
	t.SetAll(procs, newVals)
}

// SetAll sets loads[procs[i]] = newVals[i] and resorts incrementally in
// O(p + k log k). procs must not contain duplicates.
func (t *Tracker[T]) SetAll(procs []int32, newVals []T) {
	k := len(procs)
	if k == 0 {
		return
	}
	skip := make([]T, k)
	add := make([]T, k)
	for i, u := range procs {
		skip[i] = t.loads[u]
		add[i] = newVals[i]
		t.loads[u] = newVals[i]
	}
	sortDesc(skip)
	sortDesc(add)
	it := mergeIter[T]{base: t.sorted, skip: skip, add: add}
	out := t.scratch[:0]
	for {
		v, ok := it.next()
		if !ok {
			break
		}
		out = append(out, v)
	}
	t.scratch = t.sorted[:0]
	t.sorted = out
}

// Rebuild recomputes the sorted vector from scratch; primarily for tests
// and for callers that mutate Loads() directly (they should not).
func (t *Tracker[T]) Rebuild() {
	if cap(t.sorted) < len(t.loads) {
		t.sorted = make([]T, len(t.loads))
	}
	t.sorted = t.sorted[:len(t.loads)]
	copy(t.sorted, t.loads)
	sortDesc(t.sorted)
}

// Candidate is a hypothetical batch update against a Tracker: processor
// procs[i] would take value newVals[i]. Build with NewCandidate so the
// internal sorted views are consistent with the tracker's current state.
type Candidate[T Value] struct {
	procs     []int32
	newVals   []T
	sortedOld []T // descending, current values of procs
	sortedNew []T // descending, hypothetical values of procs
}

// NewCandidate captures a hypothetical update. procs must not contain
// duplicates; procs and newVals are copied.
func (t *Tracker[T]) NewCandidate(procs []int32, newVals []T) Candidate[T] {
	c := Candidate[T]{
		procs:     append([]int32(nil), procs...),
		newVals:   append([]T(nil), newVals...),
		sortedOld: make([]T, len(procs)),
		sortedNew: append([]T(nil), newVals...),
	}
	for i, u := range procs {
		c.sortedOld[i] = t.loads[u]
	}
	sortDesc(c.sortedOld)
	sortDesc(c.sortedNew)
	return c
}

// AddCandidate captures the hypothetical update "add delta to every
// processor in procs".
func (t *Tracker[T]) AddCandidate(procs []int32, delta T) Candidate[T] {
	newVals := make([]T, len(procs))
	for i, u := range procs {
		newVals[i] = t.loads[u] + delta
	}
	return t.NewCandidate(procs, newVals)
}

// MaxAfter returns the maximum load the tracker would have after applying c.
func (t *Tracker[T]) MaxAfter(c Candidate[T]) T {
	it := mergeIter[T]{base: t.sorted, skip: c.sortedOld, add: c.sortedNew}
	v, ok := it.next()
	if !ok {
		var zero T
		return zero
	}
	return v
}

// Compare lexicographically compares the descending load vectors that would
// result from applying candidates a and b: -1 if a yields the smaller
// (better) vector, 0 if identical, +1 otherwise. It walks the two merged
// views in lockstep and stops at the first difference.
func (t *Tracker[T]) Compare(a, b Candidate[T]) int {
	ia := mergeIter[T]{base: t.sorted, skip: a.sortedOld, add: a.sortedNew}
	ib := mergeIter[T]{base: t.sorted, skip: b.sortedOld, add: b.sortedNew}
	for {
		va, oka := ia.next()
		vb, okb := ib.next()
		if !oka || !okb {
			switch {
			case oka == okb:
				return 0
			case okb:
				return -1 // a shorter: impossible for same tracker, defensive
			default:
				return 1
			}
		}
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		}
	}
}

// Commit applies candidate c to the tracker.
func (t *Tracker[T]) Commit(c Candidate[T]) {
	t.SetAll(c.procs, c.newVals)
}

// ResultVec materializes the full descending vector that would result from
// applying c; exported for tests and the naive reference implementations.
func (t *Tracker[T]) ResultVec(c Candidate[T]) []T {
	out := make([]T, 0, len(t.sorted))
	it := mergeIter[T]{base: t.sorted, skip: c.sortedOld, add: c.sortedNew}
	for {
		v, ok := it.next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// mergeIter yields, in descending order, the multiset
// (base \ skip) ∪ add, where base, skip and add are descending and skip is
// a sub-multiset of base. Each skip value cancels exactly one equal base
// occurrence; because equal values are interchangeable in a multiset,
// cancelling the first encountered occurrence is correct.
type mergeIter[T Value] struct {
	base, skip, add []T
	bi, si, ai      int
}

func (it *mergeIter[T]) next() (T, bool) {
	// Advance base past cancelled entries.
	for it.bi < len(it.base) && it.si < len(it.skip) && it.base[it.bi] == it.skip[it.si] {
		it.bi++
		it.si++
	}
	hasBase := it.bi < len(it.base)
	hasAdd := it.ai < len(it.add)
	switch {
	case hasBase && hasAdd:
		if it.add[it.ai] >= it.base[it.bi] {
			v := it.add[it.ai]
			it.ai++
			return v, true
		}
		v := it.base[it.bi]
		it.bi++
		return v, true
	case hasBase:
		v := it.base[it.bi]
		it.bi++
		return v, true
	case hasAdd:
		v := it.add[it.ai]
		it.ai++
		return v, true
	default:
		var zero T
		return zero, false
	}
}

func sortDesc[T Value](s []T) {
	sort.Slice(s, func(i, j int) bool { return s[i] > s[j] })
}
