// Package hypergraph provides the bipartite-hypergraph model of the
// MULTIPROC scheduling problem (Sec. II-B of Benoit, Langguth & Uçar,
// IPDPSW'13).
//
// A MULTIPROC instance is a hypergraph H = (V1 ∪ V2, N) whose vertex set is
// bipartite (V1 = tasks, V2 = processors) and whose every hyperedge h
// contains exactly one task vertex: h = {T_i} ∪ (h ∩ V2). Choosing hyperedge
// h for its task assigns weight w_h to every processor in h ∩ V2.
//
// The storage is two CSR layers:
//
//	task t   →  hyperedges   Edges[TaskPtr[t]:TaskPtr[t+1]]
//	edge  e  →  processors   Pins[PinPtr[e]:PinPtr[e+1]]
//
// plus Owner[e] (the unique task of e) and Weight[e] (= w_h, 1 if unit).
package hypergraph

import (
	"errors"
	"fmt"
	"sort"
)

// Hypergraph is an immutable MULTIPROC instance. Construct with a Builder.
type Hypergraph struct {
	NTasks int // |V1|
	NProcs int // |V2|

	// Task → hyperedge CSR. Edges holds hyperedge ids grouped by task; the
	// hyperedges of task t are Edges[TaskPtr[t]:TaskPtr[t+1]]. Because every
	// hyperedge has exactly one owner task, Edges is a permutation of
	// 0..NumEdges-1 (in fact the identity when built via Builder, which
	// numbers hyperedges in task order).
	TaskPtr []int32
	Edges   []int32

	// Hyperedge → processor CSR ("pins" in hypergraph parlance).
	PinPtr []int32
	Pins   []int32

	Owner  []int32 // Owner[e] = task of hyperedge e
	Weight []int64 // Weight[e] = w_e; all 1 for MULTIPROC-UNIT
	unit   bool
}

// NumEdges returns |N|, the number of hyperedges.
func (h *Hypergraph) NumEdges() int { return len(h.Owner) }

// NumPins returns Σ_h |h ∩ V2|, the total processor slots over all
// hyperedges (the last column of Table I in the paper).
func (h *Hypergraph) NumPins() int { return len(h.Pins) }

// Unit reports whether all hyperedge weights are 1 (MULTIPROC-UNIT).
func (h *Hypergraph) Unit() bool { return h.unit }

// TaskDegree returns d_v: the number of configurations of task t.
func (h *Hypergraph) TaskDegree(t int) int { return int(h.TaskPtr[t+1] - h.TaskPtr[t]) }

// TaskEdges returns the hyperedge ids of task t. The slice aliases internal
// storage and must not be modified.
func (h *Hypergraph) TaskEdges(t int) []int32 { return h.Edges[h.TaskPtr[t]:h.TaskPtr[t+1]] }

// EdgeProcs returns the processor set h ∩ V2 of hyperedge e (sorted). The
// slice aliases internal storage and must not be modified.
func (h *Hypergraph) EdgeProcs(e int32) []int32 { return h.Pins[h.PinPtr[e]:h.PinPtr[e+1]] }

// EdgeSize returns |h ∩ V2| of hyperedge e.
func (h *Hypergraph) EdgeSize(e int32) int { return int(h.PinPtr[e+1] - h.PinPtr[e]) }

// Validate checks all structural invariants: CSR monotonicity, ranges,
// every task owning at least one hyperedge, Owner consistency with the
// task→edge CSR, sorted duplicate-free pin lists, positive weights, and
// non-empty processor sets.
func (h *Hypergraph) Validate() error {
	if h.NTasks < 0 || h.NProcs < 0 {
		return errors.New("hypergraph: negative vertex count")
	}
	if len(h.TaskPtr) != h.NTasks+1 {
		return fmt.Errorf("hypergraph: len(TaskPtr)=%d, want %d", len(h.TaskPtr), h.NTasks+1)
	}
	m := h.NumEdges()
	if len(h.PinPtr) != m+1 {
		return fmt.Errorf("hypergraph: len(PinPtr)=%d, want %d", len(h.PinPtr), m+1)
	}
	if len(h.Weight) != m {
		return fmt.Errorf("hypergraph: len(Weight)=%d, want %d", len(h.Weight), m)
	}
	if len(h.Edges) != m {
		return fmt.Errorf("hypergraph: len(Edges)=%d, want %d (each hyperedge has one owner)", len(h.Edges), m)
	}
	if h.TaskPtr[0] != 0 || int(h.TaskPtr[h.NTasks]) != m {
		return errors.New("hypergraph: TaskPtr endpoints wrong")
	}
	seen := make([]bool, m)
	for t := 0; t < h.NTasks; t++ {
		if h.TaskPtr[t+1] < h.TaskPtr[t] {
			return fmt.Errorf("hypergraph: TaskPtr not monotone at %d", t)
		}
		if h.TaskPtr[t+1] == h.TaskPtr[t] {
			return fmt.Errorf("hypergraph: task %d has no configuration", t)
		}
		for _, e := range h.TaskEdges(t) {
			if e < 0 || int(e) >= m {
				return fmt.Errorf("hypergraph: edge id %d out of range", e)
			}
			if seen[e] {
				return fmt.Errorf("hypergraph: hyperedge %d listed for two tasks", e)
			}
			seen[e] = true
			if h.Owner[e] != int32(t) {
				return fmt.Errorf("hypergraph: Owner[%d]=%d, want %d", e, h.Owner[e], t)
			}
		}
	}
	if h.PinPtr[0] != 0 || int(h.PinPtr[m]) != len(h.Pins) {
		return errors.New("hypergraph: PinPtr endpoints wrong")
	}
	unit := true
	for e := int32(0); int(e) < m; e++ {
		if h.PinPtr[e+1] < h.PinPtr[e] {
			return fmt.Errorf("hypergraph: PinPtr not monotone at %d", e)
		}
		procs := h.EdgeProcs(e)
		if len(procs) == 0 {
			return fmt.Errorf("hypergraph: hyperedge %d has empty processor set", e)
		}
		for i, u := range procs {
			if u < 0 || int(u) >= h.NProcs {
				return fmt.Errorf("hypergraph: pin %d of hyperedge %d out of range", u, e)
			}
			if i > 0 && procs[i-1] >= u {
				return fmt.Errorf("hypergraph: pins of hyperedge %d not sorted/unique", e)
			}
		}
		if h.Weight[e] <= 0 {
			return fmt.Errorf("hypergraph: non-positive weight %d on hyperedge %d", h.Weight[e], e)
		}
		if h.Weight[e] != 1 {
			unit = false
		}
	}
	if unit != h.unit {
		return fmt.Errorf("hypergraph: unit flag %v inconsistent with weights", h.unit)
	}
	return nil
}

// Clone returns a deep copy of h.
func (h *Hypergraph) Clone() *Hypergraph {
	c := &Hypergraph{NTasks: h.NTasks, NProcs: h.NProcs, unit: h.unit}
	c.TaskPtr = append([]int32(nil), h.TaskPtr...)
	c.Edges = append([]int32(nil), h.Edges...)
	c.PinPtr = append([]int32(nil), h.PinPtr...)
	c.Pins = append([]int32(nil), h.Pins...)
	c.Owner = append([]int32(nil), h.Owner...)
	c.Weight = append([]int64(nil), h.Weight...)
	return c
}

// WithWeights returns a copy of h whose hyperedge weights are replaced by w
// (len w must equal NumEdges; all entries positive).
func (h *Hypergraph) WithWeights(w []int64) (*Hypergraph, error) {
	if len(w) != h.NumEdges() {
		return nil, fmt.Errorf("hypergraph: %d weights for %d hyperedges", len(w), h.NumEdges())
	}
	c := h.Clone()
	copy(c.Weight, w)
	c.unit = true
	for _, x := range w {
		if x <= 0 {
			return nil, fmt.Errorf("hypergraph: non-positive weight %d", x)
		}
		if x != 1 {
			c.unit = false
		}
	}
	return c, nil
}

// MinMaxEdgeSize returns the minimum and maximum |h ∩ V2| over all
// hyperedges. Used by the "related" weight scheme of Sec. V-A2:
// w_h = ceil(min_s * max_s / s_h).
func (h *Hypergraph) MinMaxEdgeSize() (minSize, maxSize int) {
	if h.NumEdges() == 0 {
		return 0, 0
	}
	minSize = h.EdgeSize(0)
	maxSize = minSize
	for e := int32(1); int(e) < h.NumEdges(); e++ {
		s := h.EdgeSize(e)
		if s < minSize {
			minSize = s
		}
		if s > maxSize {
			maxSize = s
		}
	}
	return minSize, maxSize
}

// ToBipartite projects a hypergraph in which every hyperedge has exactly one
// processor down to a plain bipartite SINGLEPROC graph. It returns an error
// if some hyperedge has more than one processor. Weight of edge (t,p) is the
// hyperedge weight.
func (h *Hypergraph) ToBipartite() (nTasks, nProcs int, edges [][3]int64, err error) {
	for e := int32(0); int(e) < h.NumEdges(); e++ {
		procs := h.EdgeProcs(e)
		if len(procs) != 1 {
			return 0, 0, nil, fmt.Errorf("hypergraph: hyperedge %d has %d processors; not a SINGLEPROC instance", e, len(procs))
		}
		edges = append(edges, [3]int64{int64(h.Owner[e]), int64(procs[0]), h.Weight[e]})
	}
	return h.NTasks, h.NProcs, edges, nil
}

// Builder accumulates hyperedges and produces a Hypergraph. Hyperedges are
// numbered in the order AddEdge is called within each task; Build groups
// them by task, renumbering so that hyperedge ids are contiguous per task
// (task order, then insertion order). Build reports the new ids implicitly:
// TaskEdges(t) lists them in insertion order.
type Builder struct {
	nTasks, nProcs int
	owners         []int32
	procSets       [][]int32
	weights        []int64
}

// NewBuilder returns a Builder for nTasks tasks and nProcs processors.
func NewBuilder(nTasks, nProcs int) *Builder {
	return &Builder{nTasks: nTasks, nProcs: nProcs}
}

// AddEdge records a configuration for task t: it may run on all processors
// in procs (each receiving weight w). The procs slice is copied.
func (b *Builder) AddEdge(t int, procs []int, w int64) {
	ps := make([]int32, len(procs))
	for i, p := range procs {
		ps[i] = int32(p)
	}
	b.owners = append(b.owners, int32(t))
	b.procSets = append(b.procSets, ps)
	b.weights = append(b.weights, w)
}

// AddEdge32 is AddEdge for an []int32 processor list (copied).
func (b *Builder) AddEdge32(t int32, procs []int32, w int64) {
	b.owners = append(b.owners, t)
	b.procSets = append(b.procSets, append([]int32(nil), procs...))
	b.weights = append(b.weights, w)
}

// NumEdges returns the number of hyperedges recorded so far.
func (b *Builder) NumEdges() int { return len(b.owners) }

// Build validates and assembles the hypergraph.
func (b *Builder) Build() (*Hypergraph, error) {
	m := len(b.owners)
	h := &Hypergraph{NTasks: b.nTasks, NProcs: b.nProcs, unit: true}
	h.TaskPtr = make([]int32, b.nTasks+1)
	for _, t := range b.owners {
		if t < 0 || int(t) >= b.nTasks {
			return nil, fmt.Errorf("hypergraph: task %d out of range [0,%d)", t, b.nTasks)
		}
		h.TaskPtr[t+1]++
	}
	for t := 0; t < b.nTasks; t++ {
		if h.TaskPtr[t+1] == 0 {
			return nil, fmt.Errorf("hypergraph: task %d has no configuration", t)
		}
		h.TaskPtr[t+1] += h.TaskPtr[t]
	}
	// Renumber hyperedges grouped by task, preserving insertion order.
	perm := make([]int32, m) // perm[old] = new id
	next := make([]int32, b.nTasks)
	copy(next, h.TaskPtr[:b.nTasks])
	for old, t := range b.owners {
		perm[old] = next[t]
		next[t]++
	}
	h.Owner = make([]int32, m)
	h.Weight = make([]int64, m)
	h.Edges = make([]int32, m)
	sizes := make([]int32, m)
	for old := 0; old < m; old++ {
		e := perm[old]
		h.Owner[e] = b.owners[old]
		h.Weight[e] = b.weights[old]
		if b.weights[old] <= 0 {
			return nil, fmt.Errorf("hypergraph: non-positive weight %d", b.weights[old])
		}
		if b.weights[old] != 1 {
			h.unit = false
		}
		sizes[e] = int32(len(b.procSets[old]))
	}
	for e := int32(0); int(e) < m; e++ {
		h.Edges[e] = e // identity: edges are grouped by task already
	}
	h.PinPtr = make([]int32, m+1)
	for e := 0; e < m; e++ {
		h.PinPtr[e+1] = h.PinPtr[e] + sizes[e]
	}
	h.Pins = make([]int32, h.PinPtr[m])
	for old := 0; old < m; old++ {
		e := perm[old]
		procs := b.procSets[old]
		if len(procs) == 0 {
			return nil, fmt.Errorf("hypergraph: empty processor set on a configuration of task %d", b.owners[old])
		}
		dst := h.Pins[h.PinPtr[e]:h.PinPtr[e+1]]
		copy(dst, procs)
		sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
		for i, u := range dst {
			if u < 0 || int(u) >= b.nProcs {
				return nil, fmt.Errorf("hypergraph: processor %d out of range [0,%d)", u, b.nProcs)
			}
			if i > 0 && dst[i-1] == u {
				return nil, fmt.Errorf("hypergraph: duplicate processor %d in a configuration of task %d", u, b.owners[old])
			}
		}
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// MustBuild is Build that panics on error; for tests and fixed literals.
func (b *Builder) MustBuild() *Hypergraph {
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	return h
}

// Stats summarizes a hypergraph for experiment tables (Table I columns plus
// degree spreads).
type Stats struct {
	NTasks, NProcs   int
	NumEdges         int // |N|
	NumPins          int // Σ_h |h ∩ V2|
	MinTaskDeg       int
	MaxTaskDeg       int
	AvgTaskDeg       float64
	MinEdgeSize      int
	MaxEdgeSize      int
	AvgEdgeSize      float64
	MinWeight        int64
	MaxWeight        int64
	SingleConfigured int // tasks with exactly one configuration
}

// ComputeStats returns summary statistics of h.
func ComputeStats(h *Hypergraph) Stats {
	s := Stats{NTasks: h.NTasks, NProcs: h.NProcs, NumEdges: h.NumEdges(), NumPins: h.NumPins()}
	if h.NTasks == 0 {
		return s
	}
	s.MinTaskDeg = h.TaskDegree(0)
	for t := 0; t < h.NTasks; t++ {
		d := h.TaskDegree(t)
		if d < s.MinTaskDeg {
			s.MinTaskDeg = d
		}
		if d > s.MaxTaskDeg {
			s.MaxTaskDeg = d
		}
		if d == 1 {
			s.SingleConfigured++
		}
	}
	s.AvgTaskDeg = float64(h.NumEdges()) / float64(h.NTasks)
	if h.NumEdges() > 0 {
		s.MinEdgeSize, s.MaxEdgeSize = h.MinMaxEdgeSize()
		s.AvgEdgeSize = float64(h.NumPins()) / float64(h.NumEdges())
		s.MinWeight, s.MaxWeight = h.Weight[0], h.Weight[0]
		for _, w := range h.Weight {
			if w < s.MinWeight {
				s.MinWeight = w
			}
			if w > s.MaxWeight {
				s.MaxWeight = w
			}
		}
	}
	return s
}
