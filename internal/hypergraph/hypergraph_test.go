package hypergraph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// fig2 builds the hypergraph of Fig. 2 in the paper:
//
//	T1: {P1} or {P2,P3};  T2: {P1,P2} or {P2,P3};  T3: {P3};  T4: {P3}.
//
// (0-based here.)
func fig2(t *testing.T) *Hypergraph {
	t.Helper()
	b := NewBuilder(4, 3)
	b.AddEdge(0, []int{0}, 1)
	b.AddEdge(0, []int{1, 2}, 1)
	b.AddEdge(1, []int{0, 1}, 1)
	b.AddEdge(1, []int{1, 2}, 1)
	b.AddEdge(2, []int{2}, 1)
	b.AddEdge(3, []int{2}, 1)
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return h
}

func TestFig2Structure(t *testing.T) {
	h := fig2(t)
	if h.NTasks != 4 || h.NProcs != 3 || h.NumEdges() != 6 || h.NumPins() != 9 {
		t.Fatalf("sizes wrong: %+v", ComputeStats(h))
	}
	if !h.Unit() {
		t.Fatal("Fig. 2 instance is unit-weighted")
	}
	if h.TaskDegree(0) != 2 || h.TaskDegree(2) != 1 {
		t.Fatalf("task degrees wrong")
	}
	e := h.TaskEdges(0)
	if len(e) != 2 {
		t.Fatalf("task 0 edges = %v", e)
	}
	if got := h.EdgeProcs(e[1]); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("EdgeProcs = %v", got)
	}
	for _, eid := range h.TaskEdges(3) {
		if h.Owner[eid] != 3 {
			t.Fatalf("Owner[%d] = %d", eid, h.Owner[eid])
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderInsertionOrderAcrossTasks(t *testing.T) {
	// Interleave tasks: builder must group per task preserving order.
	b := NewBuilder(2, 4)
	b.AddEdge(1, []int{0}, 1)
	b.AddEdge(0, []int{1}, 1)
	b.AddEdge(1, []int{2}, 1)
	b.AddEdge(0, []int{3}, 1)
	h := b.MustBuild()
	if got := h.EdgeProcs(h.TaskEdges(0)[0])[0]; got != 1 {
		t.Fatalf("task 0 first config proc = %d, want 1", got)
	}
	if got := h.EdgeProcs(h.TaskEdges(0)[1])[0]; got != 3 {
		t.Fatalf("task 0 second config proc = %d, want 3", got)
	}
	if got := h.EdgeProcs(h.TaskEdges(1)[0])[0]; got != 0 {
		t.Fatalf("task 1 first config proc = %d, want 0", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func() *Builder
	}{
		{"task out of range", func() *Builder {
			b := NewBuilder(1, 1)
			b.AddEdge(3, []int{0}, 1)
			return b
		}},
		{"proc out of range", func() *Builder {
			b := NewBuilder(1, 1)
			b.AddEdge(0, []int{5}, 1)
			return b
		}},
		{"task without config", func() *Builder {
			b := NewBuilder(2, 1)
			b.AddEdge(0, []int{0}, 1)
			return b
		}},
		{"empty processor set", func() *Builder {
			b := NewBuilder(1, 1)
			b.AddEdge(0, nil, 1)
			return b
		}},
		{"duplicate processor in config", func() *Builder {
			b := NewBuilder(1, 2)
			b.AddEdge(0, []int{1, 1}, 1)
			return b
		}},
		{"non-positive weight", func() *Builder {
			b := NewBuilder(1, 1)
			b.AddEdge(0, []int{0}, 0)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.f().Build(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestWeightsAndUnitFlag(t *testing.T) {
	b := NewBuilder(1, 2)
	b.AddEdge(0, []int{0}, 4)
	b.AddEdge(0, []int{0, 1}, 2)
	h := b.MustBuild()
	if h.Unit() {
		t.Fatal("expected weighted")
	}
	mn, mx := h.MinMaxEdgeSize()
	if mn != 1 || mx != 2 {
		t.Fatalf("MinMaxEdgeSize = %d,%d", mn, mx)
	}
}

func TestWithWeights(t *testing.T) {
	h := fig2(t)
	w := []int64{2, 1, 3, 1, 1, 5}
	h2, err := h.WithWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Unit() {
		t.Fatal("h2 should be weighted")
	}
	if h.Weight[0] != 1 {
		t.Fatal("WithWeights mutated the original")
	}
	if err := h2.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WithWeights([]int64{1}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := h.WithWeights([]int64{1, 1, 1, 1, 1, -2}); err == nil {
		t.Fatal("expected positivity error")
	}
	// All-ones restores unit flag.
	h3, err := h2.WithWeights([]int64{1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !h3.Unit() {
		t.Fatal("all-ones weights must be unit")
	}
}

func TestPinsSorted(t *testing.T) {
	b := NewBuilder(1, 5)
	b.AddEdge(0, []int{4, 0, 2}, 1)
	h := b.MustBuild()
	if got := h.EdgeProcs(0); !reflect.DeepEqual(got, []int32{0, 2, 4}) {
		t.Fatalf("pins = %v, want sorted", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	h := fig2(t)
	c := h.Clone()
	c.Weight[0] = 42
	c.Pins[0] = 2
	if h.Weight[0] != 1 || h.Pins[0] == 2 && h.Pins[0] != c.Pins[0] {
		t.Fatal("Clone shares storage")
	}
	if h.Weight[0] == 42 {
		t.Fatal("Clone shares Weight storage")
	}
}

func TestToBipartite(t *testing.T) {
	b := NewBuilder(2, 3)
	b.AddEdge(0, []int{0}, 2)
	b.AddEdge(0, []int{2}, 1)
	b.AddEdge(1, []int{1}, 3)
	h := b.MustBuild()
	nT, nP, edges, err := h.ToBipartite()
	if err != nil {
		t.Fatal(err)
	}
	if nT != 2 || nP != 3 || len(edges) != 3 {
		t.Fatalf("projection wrong: %d %d %v", nT, nP, edges)
	}
	if edges[0] != [3]int64{0, 0, 2} {
		t.Fatalf("edge 0 = %v", edges[0])
	}

	if _, _, _, err := fig2(t).ToBipartite(); err == nil {
		t.Fatal("Fig. 2 has multi-processor hyperedges; projection must fail")
	}
}

func TestComputeStats(t *testing.T) {
	h := fig2(t)
	s := ComputeStats(h)
	if s.NumEdges != 6 || s.NumPins != 9 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MinTaskDeg != 1 || s.MaxTaskDeg != 2 || s.SingleConfigured != 2 {
		t.Fatalf("degree stats = %+v", s)
	}
	if s.MinEdgeSize != 1 || s.MaxEdgeSize != 2 {
		t.Fatalf("edge size stats = %+v", s)
	}
	if s.MinWeight != 1 || s.MaxWeight != 1 {
		t.Fatalf("weight stats = %+v", s)
	}
}

// randomHypergraph builds a random valid instance; exported to sibling
// packages' tests via this helper pattern (duplicated where needed).
func randomHypergraph(rng *rand.Rand, nTasks, nProcs, maxDeg, maxSize int, maxW int64) *Hypergraph {
	b := NewBuilder(nTasks, nProcs)
	for t := 0; t < nTasks; t++ {
		d := 1 + rng.Intn(maxDeg)
		for j := 0; j < d; j++ {
			size := 1 + rng.Intn(maxSize)
			if size > nProcs {
				size = nProcs
			}
			procs := rng.Perm(nProcs)[:size]
			b.AddEdge(t, procs, 1+rng.Int63n(maxW))
		}
	}
	return b.MustBuild()
}

func TestRandomInstancesValidate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHypergraph(rng, 1+rng.Intn(20), 1+rng.Intn(10), 4, 5, 9)
		if h.Validate() != nil {
			return false
		}
		// Owner/TaskEdges bijection: every edge appears exactly once.
		seen := make([]bool, h.NumEdges())
		for task := 0; task < h.NTasks; task++ {
			for _, e := range h.TaskEdges(task) {
				if seen[e] {
					return false
				}
				seen[e] = true
			}
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxEdgeSizeEmpty(t *testing.T) {
	h := &Hypergraph{NTasks: 0, NProcs: 0, TaskPtr: []int32{0}, PinPtr: []int32{0}, unit: true}
	mn, mx := h.MinMaxEdgeSize()
	if mn != 0 || mx != 0 {
		t.Fatalf("empty MinMax = %d,%d", mn, mx)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const nTasks, nProcs = 5000, 256
	type cfg struct {
		t     int
		procs []int
	}
	var cfgs []cfg
	for t := 0; t < nTasks; t++ {
		d := 1 + rng.Intn(5)
		for j := 0; j < d; j++ {
			size := 1 + rng.Intn(10)
			cfgs = append(cfgs, cfg{t, rng.Perm(nProcs)[:size]})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(nTasks, nProcs)
		for _, c := range cfgs {
			bl.AddEdge(c.t, c.procs, 1)
		}
		if _, err := bl.Build(); err != nil {
			b.Fatal(err)
		}
	}
}
