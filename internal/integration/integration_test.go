// Package integration ties the whole system together: generate → persist
// → reload → solve with every algorithm → refine → validate → simulate.
// These tests exercise the same paths a downstream user would chain, with
// every internal package in the loop at once.
package integration

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"semimatch/internal/adversarial"
	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/encode"
	"semimatch/internal/exact"
	"semimatch/internal/flow"
	"semimatch/internal/gen"
	"semimatch/internal/matching"
	"semimatch/internal/online"
	"semimatch/internal/portfolio"
	"semimatch/internal/refine"
	"semimatch/internal/sched"
)

// TestHypergraphPipeline: generator → text format → every heuristic →
// refinement → portfolio → B&B sanity on a downsampled copy.
func TestHypergraphPipeline(t *testing.T) {
	for _, weights := range []gen.WeightScheme{gen.Unit, gen.Related, gen.Random} {
		h, err := gen.Hypergraph(gen.HyperParams{
			Gen: gen.FewgManyg, N: 320, P: 64, Dv: 4, Dh: 6, G: 8,
			Weights: weights, MaxW: 30,
		}, 42)
		if err != nil {
			t.Fatal(err)
		}

		// Persist and reload; the instance must survive bit-for-bit.
		var buf bytes.Buffer
		if err := encode.WriteHypergraph(&buf, h); err != nil {
			t.Fatal(err)
		}
		h2, err := encode.ReadHypergraph(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(h.Pins, h2.Pins) || !reflect.DeepEqual(h.Weight, h2.Weight) {
			t.Fatal("persistence changed the instance")
		}

		lb := core.LowerBound(h2)
		best := int64(1) << 62
		run := map[string]core.HyperAssignment{
			"SGH": core.SortedGreedyHyp(h2, core.HyperOptions{}),
			"VGH": core.VectorGreedyHyp(h2, core.HyperOptions{}),
			"EGH": core.ExpectedGreedyHyp(h2, core.HyperOptions{}),
			"EVG": core.ExpectedVectorGreedyHyp(h2, core.HyperOptions{}),
		}
		for name, a := range run {
			if err := core.ValidateHyperAssignment(h2, a); err != nil {
				t.Fatalf("%s/%s: %v", weights, name, err)
			}
			m := core.HyperMakespan(h2, a)
			if m < lb {
				t.Fatalf("%s/%s: %d below LB %d", weights, name, m, lb)
			}
			r := refine.Refine(h2, a, refine.Options{})
			if r.After > m {
				t.Fatalf("%s/%s: refinement worsened %d → %d", weights, name, m, r.After)
			}
			if r.After < best {
				best = r.After
			}
		}
		// The refined portfolio ties or beats the best individual run.
		res, err := portfolio.Solve(h2, portfolio.Options{Refine: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan > best {
			t.Fatalf("%s: portfolio %d worse than best refined %d", weights, res.Makespan, best)
		}
	}
}

// TestSingleProcPipeline: generator → persistence → four greedies + LPT →
// three exact solvers agreeing (matching-based, flow-based, B&B) → online
// replay sandwich.
func TestSingleProcPipeline(t *testing.T) {
	g, err := gen.Bipartite(gen.HiLo, 640, 64, 8, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encode.WriteBipartite(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := encode.ReadBipartite(&buf)
	if err != nil {
		t.Fatal(err)
	}

	_, d1, err := core.ExactUnit(g2, core.ExactOptions{Strategy: core.SearchBisection, Tester: core.TestCapacitated})
	if err != nil {
		t.Fatal(err)
	}
	_, d2, err := core.ExactUnit(g2, core.ExactOptions{Strategy: core.SearchIncremental, Tester: core.TestReplicate})
	if err != nil {
		t.Fatal(err)
	}
	_, d3, err := flow.ExactUnitViaFlow(g2)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := core.HarveyOptimal(g2)
	if err != nil {
		t.Fatal(err)
	}
	d4 := core.Makespan(g2, ha)
	if d1 != d2 || d1 != d3 || d1 != d4 {
		t.Fatalf("exact solvers disagree: %d %d %d %d", d1, d2, d3, d4)
	}

	for name, f := range map[string]func(*bipartite.Graph, core.GreedyOptions) core.Assignment{
		"basic": core.BasicGreedy, "sorted": core.SortedGreedy,
		"double": core.DoubleSorted, "expected": core.ExpectedGreedy,
	} {
		a := f(g2, core.GreedyOptions{})
		if err := core.ValidateAssignment(g2, a); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if core.Makespan(g2, a) < d1 {
			t.Fatalf("%s beat the optimum", name)
		}
	}
	if core.Makespan(g2, core.LPTGreedy(g2)) < d1 {
		t.Fatal("LPT beat the optimum")
	}

	// Online replay can never beat offline optimal.
	_, m, err := online.Replay(g2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m < d1 {
		t.Fatalf("online %d below optimal %d", m, d1)
	}
}

// TestTheorem1EndToEnd: the X3C reduction through the full stack —
// gadget → persistence → heuristics (must stay ≥ optimal) → B&B decision.
func TestTheorem1EndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		x := adversarial.RandomX3C(rng, 3, 3, trial%2 == 0)
		h, err := x.ToMultiproc()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := encode.WriteHypergraph(&buf, h); err != nil {
			t.Fatal(err)
		}
		h2, err := encode.ReadHypergraph(&buf)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := exact.SolveMultiProc(h2, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, hasCover := exact.SolveX3C(x)
		if hasCover != (opt == 1) {
			t.Fatalf("trial %d: cover=%v optimal=%d", trial, hasCover, opt)
		}
		a := core.ExpectedVectorGreedyHyp(h2, core.HyperOptions{})
		if core.HyperMakespan(h2, a) < opt {
			t.Fatal("heuristic beat the optimum")
		}
	}
}

// TestSchedulerRoundTrip: named instance → JSON → hypergraph → portfolio →
// named schedule → simulation — the cmd/semisched path as a library call.
func TestSchedulerRoundTrip(t *testing.T) {
	in := sched.NewInstance("a", "b", "c")
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 25; i++ {
		n := 1 + rng.Intn(2)
		cfgs := make([]sched.Config, n)
		for j := range cfgs {
			k := 1 + rng.Intn(3)
			cfgs[j] = sched.Config{Procs: rng.Perm(3)[:k], Time: 1 + rng.Int63n(9)}
		}
		in.AddTask("t", cfgs...)
	}
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	in2, err := sched.ReadInstanceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Solve(in2, sched.ExpectedVectorGreedy)
	if err != nil {
		t.Fatal(err)
	}
	tl := s.Simulate()
	if err := tl.Validate(s); err != nil {
		t.Fatal(err)
	}
}

// TestMatchingSubstrateAgreesAtScale: the three maximum-matching codes on
// a generated instance of paper scale.
func TestMatchingSubstrateAgreesAtScale(t *testing.T) {
	g, err := gen.Bipartite(gen.FewgManyg, 5120, 1024, 32, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := matching.Wrap(g.NLeft, g.NRight, g.Ptr, g.Adj)
	hk := matching.Cardinality(matching.HopcroftKarp(w))
	pr := matching.Cardinality(matching.PushRelabel(w))
	ku := matching.Cardinality(matching.Kuhn(w))
	if hk != pr || hk != ku {
		t.Fatalf("cardinalities disagree: HK=%d PR=%d Kuhn=%d", hk, pr, ku)
	}
	net, s, tt, _ := flow.MatchingNetwork(g, 1)
	if fl := net.MaxFlow(s, tt); int(fl) != hk {
		t.Fatalf("flow %d vs matching %d", fl, hk)
	}
}
