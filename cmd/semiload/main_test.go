package main

import (
	"testing"

	"semimatch/internal/bench"
)

func TestParseMix(t *testing.T) {
	if m, err := parseMix(""); err != nil || m != (bench.LoadMix{}) {
		t.Fatalf("empty spec: %+v, %v", m, err)
	}
	m, err := parseMix("repeat=70, iso=30")
	if err != nil {
		t.Fatal(err)
	}
	if m.RepeatPct != 70 || m.IsoPct != 30 || m.MissPct != 0 || m.LongPct != 0 {
		t.Fatalf("parsed %+v", m)
	}
	if _, err := parseMix("repeat=70,burst=30"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := parseMix("repeat"); err == nil {
		t.Fatal("missing weight accepted")
	}
	if _, err := parseMix("repeat=-1,iso=2"); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := parseMix("repeat=0,iso=0"); err == nil {
		t.Fatal("zero-total mix accepted")
	}
}
