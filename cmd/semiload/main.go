package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"semimatch/internal/bench"
)

func main() {
	targets := flag.String("targets", "", "comma-separated base URLs of the semiserve processes under load (required)")
	duration := flag.Duration("duration", 10*time.Second, "measured load window")
	concurrency := flag.Int("concurrency", 16, "closed-loop worker count")
	seed := flag.Int64("seed", 1, "workload seed; the same seed replays the same request sequence")
	mixSpec := flag.String("mix", "", "workload mix as repeat=55,iso=20,miss=20,long=5 (relative weights; empty = that default)")
	hot := flag.Int("hot", 8, "warm working-set size the repeat/iso workloads draw from")
	longDeadline := flag.Duration("long-deadline", 200*time.Millisecond, "?deadline the long workload requests (tight enough to truncate)")
	outPath := flag.String("out", "", "write the loadbench report JSON to this file (empty = summary only)")
	mergePath := flag.String("merge", "", "comma-separated BENCH json files to fold the report into as their \"loadbench\" section")
	sessionMode := flag.Bool("session", false, "drive one dynamic session instead of a request mix: replay a seeded event script one request per event, measuring per-event latency and the warm/cold node ratio")
	sessionEvents := flag.Int("session-events", 200, "with -session, script length")
	sessionProcs := flag.Int("session-procs", 4, "with -session, processor count")
	sessionMulti := flag.Bool("session-multi", false, "with -session, run a MULTIPROC session")
	sessionLambda := flag.Float64("session-lambda", 1.0, "with -session, migration-cost weight λ")
	flag.Parse()
	if flag.NArg() != 0 || *targets == "" {
		fmt.Fprintln(os.Stderr, "usage: semiload -targets http://host:port[,...] [-duration 10s] [-concurrency 16] [-seed n] [-mix repeat=55,iso=20,miss=20,long=5] [-out load.json] [-merge BENCH_6.json]")
		fmt.Fprintln(os.Stderr, "       semiload -targets http://host:port -session [-session-events 200] [-session-procs 4] [-session-multi] [-session-lambda 1] [-seed n] [-out sess.json] [-merge BENCH_7.json]")
		os.Exit(2)
	}

	// Ctrl-C ends the window early; whatever was measured still reports.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *sessionMode {
		runSessionLoad(ctx, sessionConfig{
			target:  strings.Split(*targets, ",")[0],
			events:  *sessionEvents,
			procs:   *sessionProcs,
			multi:   *sessionMulti,
			lambda:  *sessionLambda,
			seed:    *seed,
			out:     *outPath,
			mergeTo: *mergePath,
		})
		return
	}

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "semiload: -mix: %v\n", err)
		os.Exit(2)
	}

	rep, err := bench.RunLoad(ctx, bench.LoadOptions{
		Targets:      strings.Split(*targets, ","),
		Duration:     *duration,
		Concurrency:  *concurrency,
		Seed:         *seed,
		Mix:          mix,
		HotInstances: *hot,
		LongDeadline: *longDeadline,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "semiload: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatLoadSummary(rep))

	if *outPath != "" {
		if err := writeReport(*outPath, rep); err != nil {
			fmt.Fprintf(os.Stderr, "semiload: -out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("semiload: wrote %s\n", *outPath)
	}
	if *mergePath != "" {
		for _, path := range strings.Split(*mergePath, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			if err := mergeInto(path, rep); err != nil {
				fmt.Fprintf(os.Stderr, "semiload: -merge %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("semiload: merged loadbench section into %s\n", path)
		}
	}
}

type sessionConfig struct {
	target  string
	events  int
	procs   int
	multi   bool
	lambda  float64
	seed    int64
	out     string
	mergeTo string
}

// runSessionLoad is the -session mode: one scripted dynamic session,
// measured per event, reported as the "sessionload" BENCH section.
func runSessionLoad(ctx context.Context, cfg sessionConfig) {
	rep, err := bench.RunSessionLoad(ctx, bench.SessionLoadOptions{
		Target: cfg.target,
		Events: cfg.events,
		Procs:  cfg.procs,
		Multi:  cfg.multi,
		Lambda: cfg.lambda,
		Seed:   cfg.seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "semiload: -session: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatSessionLoadSummary(rep))

	if cfg.out != "" {
		if err := writeJSON(cfg.out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "semiload: -out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("semiload: wrote %s\n", cfg.out)
	}
	for _, path := range strings.Split(cfg.mergeTo, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		if err := mergeSessionInto(path, rep); err != nil {
			fmt.Fprintf(os.Stderr, "semiload: -merge %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("semiload: merged sessionload section into %s\n", path)
	}
}

// parseMix parses "repeat=55,iso=20,miss=20,long=5"; empty means the
// default mix, and omitted workloads weigh zero.
func parseMix(spec string) (bench.LoadMix, error) {
	if strings.TrimSpace(spec) == "" {
		return bench.LoadMix{}, nil // zero value → bench.DefaultLoadMix
	}
	var mix bench.LoadMix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return mix, fmt.Errorf("want name=weight, got %q", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return mix, fmt.Errorf("bad weight in %q", part)
		}
		switch strings.TrimSpace(name) {
		case "repeat":
			mix.RepeatPct = w
		case "iso":
			mix.IsoPct = w
		case "miss":
			mix.MissPct = w
		case "long":
			mix.LongPct = w
		default:
			return mix, fmt.Errorf("unknown workload %q (want repeat, iso, miss, long)", name)
		}
	}
	if mix.RepeatPct+mix.IsoPct+mix.MissPct+mix.LongPct == 0 {
		return mix, fmt.Errorf("mix %q has zero total weight", spec)
	}
	return mix, nil
}

func writeReport(path string, rep *bench.LoadReport) error {
	return writeJSON(path, rep)
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// mergeInto folds the report into an existing BENCH json snapshot as
// its "loadbench" section, preserving everything else byte-for-byte at
// the schema level (same writer the snapshot was recorded with).
func mergeInto(path string, rep *bench.LoadReport) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	perf, err := bench.ReadPerfJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	perf.Loadbench = rep
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WritePerfJSON(out, perf); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// mergeSessionInto does the same for the "sessionload" section.
func mergeSessionInto(path string, rep *bench.SessionLoadReport) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	perf, err := bench.ReadPerfJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	perf.Sessionload = rep
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WritePerfJSON(out, perf); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
