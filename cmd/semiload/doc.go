// Command semiload is the service load generator: it drives a seeded,
// reproducible mix of workloads against one or more running semiserve
// processes and records the service-perf trajectory — sustained QPS,
// latency percentiles, cache and peer hit rates, shed counts — as the
// "loadbench" section (schema semimatch-loadbench/v1) of a BENCH_<n>
// .json snapshot. Where cmd/semibench measures the solver (nodes,
// wall, speedup), semiload measures the serving layer wrapped around
// it: admission, coalescing, the memory/disk/peer cache tiers, and —
// against a fleet — cross-replica cache traffic.
//
// Usage:
//
//	semiload -targets http://127.0.0.1:8080                  # one process
//	semiload -targets http://127.0.0.1:18711,http://127.0.0.1:18712,http://127.0.0.1:18713 \
//	         -duration 10s -concurrency 16 -seed 1 \
//	         -merge BENCH_6.json                              # record a fleet run
//	semiload -targets ... -mix repeat=70,iso=30 -out load.json
//
// # Workloads (-mix, -seed, -hot)
//
// Four workloads, drawn per request by relative weight (the default mix
// is repeat=55,iso=20,miss=20,long=5):
//
//	repeat  a byte-identical repeat of one of the -hot warm instances:
//	        a memory hit on the replica that solved it, a verified peer
//	        hit on the others.
//	iso     a freshly shuffled isomorphic restatement of a warm
//	        instance — same canonical fingerprint, different bytes —
//	        so canonicalization runs on every request and still hits.
//	miss    a never-seen instance. All workers in one wave post the
//	        same new instance concurrently, so misses arrive as the
//	        coalescable bursts of a cache stampede, exercising the
//	        single-flight layer.
//	long    a hard exact-solver instance under a tight ?deadline
//	        (-long-deadline, default 200ms): a guaranteed
//	        deadline-truncated solve, which the service must answer
//	        with its incumbent and never cache.
//
// Everything is derived from -seed: the warm set, the shuffles, the
// per-request workload draws, the miss instances. The same flags replay
// the same request sequence.
//
// Before the clock starts, each warm instance is solved once. Against a
// fleet, that priming solve is posted to the replica the fleet's own
// rendezvous ring says owns the instance's fingerprint (semiload builds
// the same ring from -targets), so subsequent repeats on the other
// replicas find the entry exactly where cache peering looks for it.
// Warmup happens before the /metrics baseline scrape and is excluded
// from every reported number.
//
// # Report
//
// The run prints a human summary and (with -out) writes the report
// JSON, one object:
//
//	{
//	  "schema": "semimatch-loadbench/v1",
//	  "targets": [...], "concurrency": 16, "seed": 1,
//	  "mix": {"repeat_pct": 55, "iso_pct": 20, "miss_pct": 20, "long_pct": 5},
//	  "warmup": 8, "duration_s": 10.0,
//	  "requests": 1234, "errors": 0, "shed": 0, "truncated": 31,
//	  "qps": 123.4,
//	  "latency_p50_ms": 1.2, "latency_p95_ms": 9.8, "latency_p99_ms": 201.0,
//	  "tiers": {"memory": 600, "peer": 14, "none": 120},
//	  "workloads": {"repeat": 680, "iso": 247, "miss": 246, "long": 61},
//	  "cache_hit_rate": 0.83, "peer_hit_rate": 0.019,
//	  "target_metrics": [
//	    {"url": "http://127.0.0.1:18711",
//	     "deltas": {"semimatch_requests_total": 412,
//	                "semimatch_peer_hits_total": 5, ...}}, ...
//	  ]
//	}
//
// tiers counts 200 responses by cache_tier ("none" = fresh solve);
// shed counts 429s; target_metrics holds each process's
// semimatch_*_total counter movement over the measured window (after
// minus before, zero deltas omitted) — a fleet run is healthy when some
// replica's semimatch_peer_hits_total delta is nonzero.
//
// # Recording a snapshot (-merge)
//
// -merge folds the report into one or more existing BENCH json files
// (written by semibench -bench) as their "loadbench" section, leaving
// the solver grid untouched — so one BENCH_<n>.json version both the
// solver numbers and the serving numbers measured on top of them. The
// recorded trajectory lives in EXPERIMENTS.md.
package main
