package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"semimatch/internal/bench"
	"semimatch/internal/gen"
	"semimatch/internal/registry"
	"semimatch/internal/telemetry"
)

func main() {
	table := flag.String("table", "all", "which table to run: 1, 2, 3, 8, sp, fig3, all")
	quick := flag.Bool("quick", false, "reduced grid: 2 sizes, 3 seeds")
	seeds := flag.Int("seeds", 0, "instances per parameter set (default 10, paper's setting)")
	workers := flag.Int("workers", 0, "worker pool size (default GOMAXPROCS; 1 for timing-grade runs)")
	naive := flag.Bool("naive", false, "use the naive O(p log p) vector heuristics (ablation)")
	d := flag.Int("d", 10, "degree parameter for SINGLEPROC tables")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
	algs := flag.String("alg", "", "comma-separated algorithm columns (default: the registry's heuristic lineup)")
	jsonOut := flag.Bool("json", false, "emit newline-delimited JSON objects instead of text tables (schema in doc.go)")
	list := flag.Bool("list-algorithms", false, "print the solver catalog and exit")
	benchMode := flag.Bool("bench", false, "run the exact-solver perf micro-grid and write BENCH.json (see doc.go)")
	benchOut := flag.String("bench-out", "BENCH.json", "with -bench, where to write the machine-readable report")
	benchSeeds := flag.Int("bench-seeds", 0, "with -bench, instances per family (default 5)")
	benchNodes := flag.Int64("bench-nodes", 0, "with -bench, per-solve node budget (default 300e6)")
	benchRegress := flag.Bool("max-nodes-regress", false,
		"with -bench, fail (exit 1, no snapshot) if any sequential case explores more nodes than the latest committed BENCH_<n>.json")
	benchTrace := flag.Bool("bench-trace", false, "with -bench, attach a solve trace to every measured solve (node counts are unchanged — the overhead check)")
	ledgerPath := flag.String("ledger", "", "with -bench, append one JSONL solve-ledger record per measured solve to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "semibench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "semibench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "semibench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "semibench: -memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		if *jsonOut {
			if err := registry.WriteCatalogNDJSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "semibench: %v\n", err)
				os.Exit(1)
			}
			return
		}
		fmt.Print(registry.FormatCatalog())
		return
	}

	opts := bench.Options{Quick: *quick, Seeds: *seeds, Workers: *workers, Naive: *naive}
	if *algs != "" {
		for _, a := range strings.Split(*algs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				opts.Algorithms = append(opts.Algorithms, a)
			}
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *benchMode {
		popts := bench.PerfOptions{
			Workers:  *workers,
			Seeds:    *benchSeeds,
			MaxNodes: *benchNodes,
			Trace:    *benchTrace,
		}
		if *ledgerPath != "" {
			l, err := telemetry.OpenLedger(*ledgerPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "semibench: -ledger: %v\n", err)
				os.Exit(1)
			}
			defer l.Close()
			popts.Ledger = l
		}
		rep, err := bench.RunPerf(ctx, popts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "semibench: -bench: %v\n", err)
			os.Exit(1)
		}
		if *benchRegress {
			if prevPath, ok := latestSnapshotPath(*benchOut); !ok {
				fmt.Fprintf(os.Stderr, "semibench: -max-nodes-regress: no previous snapshot next to %s; nothing to compare\n", *benchOut)
			} else if regressions := checkRegress(prevPath, rep); len(regressions) > 0 {
				fmt.Fprintf(os.Stderr, "semibench: -max-nodes-regress: %d sequential case(s) regressed vs %s:\n", len(regressions), prevPath)
				for _, r := range regressions {
					fmt.Fprintf(os.Stderr, "  %s\n", r)
				}
				os.Exit(1)
			} else {
				fmt.Printf("max-nodes-regress: no sequential case regressed vs %s\n", prevPath)
			}
		}
		// Two copies per run: <out> is always the latest report, and a
		// numbered <out-base>_<n>.json snapshot accumulates the perf
		// trajectory across runs (and PRs) instead of overwriting it.
		snapshot, n := nextSnapshotPath(*benchOut)
		for _, path := range []string{*benchOut, snapshot} {
			if err := writeBenchReport(path, rep); err != nil {
				fmt.Fprintf(os.Stderr, "semibench: -bench: writing %s: %v\n", path, err)
				os.Exit(1)
			}
		}
		fmt.Print(bench.FormatPerfSummary(rep))
		fmt.Printf("wrote %s (latest, %d cases) and %s (snapshot %d)\n",
			*benchOut, len(rep.Cases), snapshot, n)
		return
	}

	runTables(ctx, opts, *table, *quick, *d, *jsonOut, *timeout)
}

// writeBenchReport writes one machine-readable perf report to path.
func writeBenchReport(path string, rep *bench.PerfReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := bench.WritePerfJSON(f, rep)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// checkRegress loads the previous snapshot and returns the sequential
// node-count regressions of rep against it (see bench.NodeRegressions).
func checkRegress(prevPath string, rep *bench.PerfReport) []string {
	f, err := os.Open(prevPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "semibench: -max-nodes-regress: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	prev, err := bench.ReadPerfJSON(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "semibench: -max-nodes-regress: %s: %v\n", prevPath, err)
		os.Exit(1)
	}
	return bench.NodeRegressions(prev, rep)
}

// latestSnapshotPath returns the highest-numbered existing
// "<base>_<n>.json" snapshot next to out, or ok=false when none exists.
func latestSnapshotPath(out string) (string, bool) {
	base := strings.TrimSuffix(out, ".json")
	stem := filepath.Base(base)
	best := 0
	entries, err := os.ReadDir(filepath.Dir(out))
	if err != nil {
		return "", false
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, stem+"_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		idx := strings.TrimSuffix(strings.TrimPrefix(name, stem+"_"), ".json")
		if n, err := strconv.Atoi(idx); err == nil && n > best {
			best = n
		}
	}
	if best == 0 {
		return "", false
	}
	return fmt.Sprintf("%s_%d.json", base, best), true
}

// nextSnapshotPath returns "<base>_<n>.json" next to out (out minus a
// ".json" suffix), where n is one past the highest existing snapshot
// index — BENCH.json stays the latest while BENCH_1.json, BENCH_2.json,
// ... record the trajectory. The directory is listed rather than
// globbed, so paths containing glob metacharacters cannot restart the
// numbering and overwrite an earlier snapshot.
func nextSnapshotPath(out string) (string, int) {
	base := strings.TrimSuffix(out, ".json")
	stem := filepath.Base(base)
	next := 1
	if entries, err := os.ReadDir(filepath.Dir(out)); err == nil {
		for _, e := range entries {
			name := e.Name()
			if !strings.HasPrefix(name, stem+"_") || !strings.HasSuffix(name, ".json") {
				continue
			}
			idx := strings.TrimSuffix(strings.TrimPrefix(name, stem+"_"), ".json")
			if n, err := strconv.Atoi(idx); err == nil && n >= next {
				next = n + 1
			}
		}
	}
	return fmt.Sprintf("%s_%d.json", base, next), next
}

func runTables(ctx context.Context, opts bench.Options, table string, quick bool, d int, jsonOut bool, timeout time.Duration) {
	run := func(name string, f func() error) {
		err := f()
		if err == nil {
			return
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "semibench: %s: timed out after %v\n", name, timeout)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "semibench: %s: %v\n", name, err)
		os.Exit(1)
	}

	want := func(t string) bool { return table == t || table == "all" }

	// hyperTable runs one MULTIPROC table and renders it as text or JSON.
	// Results are memoized per weight scheme: with -table all, Tables I
	// and II are two views of the same Unit-weights experiment grid, which
	// only needs computing once.
	hyperCache := map[gen.WeightScheme]*bench.HyperResult{}
	hyperTable := func(label string, weights gen.WeightScheme, heading string, statsView bool) {
		run("table "+label, func() error {
			res, ok := hyperCache[weights]
			if !ok {
				var err error
				res, err = bench.RunHyperTable(ctx, weights, opts)
				if err != nil {
					return err
				}
				hyperCache[weights] = res
			}
			if jsonOut {
				return bench.WriteJSON(os.Stdout, res.JSON(label))
			}
			fmt.Println(heading)
			if statsView {
				fmt.Print(bench.FormatHyperStats(res))
			} else {
				fmt.Print(bench.FormatHyperTable(res))
			}
			fmt.Println()
			return nil
		})
	}

	if want("1") {
		hyperTable("1", gen.Unit, "== Table I: random hypergraph instances ==", true)
	}
	if want("2") {
		hyperTable("2", gen.Unit, "== Table II: MULTIPROC-UNIT quality vs LB ==", false)
	}
	if want("3") {
		hyperTable("3", gen.Related, "== Table III: MULTIPROC related-weights quality vs LB ==", false)
	}
	if want("8") {
		hyperTable("8", gen.Random, "== TR Table 8: MULTIPROC random-weights quality vs LB ==", false)
	}
	if want("fig3") {
		run("fig3", func() error {
			maxK := 12
			if quick {
				maxK = 8
			}
			rows := bench.RunAdversarial(maxK)
			if jsonOut {
				return bench.WriteJSON(os.Stdout, bench.AdversarialJSON(rows))
			}
			fmt.Println("== Fig. 3: Chain(k) worst-case scaling ==")
			fmt.Print(bench.FormatAdversarial(rows))
			fmt.Println()
			return nil
		})
	}
	if want("sp") {
		for _, generator := range []gen.Generator{gen.FewgManyg, gen.HiLo} {
			for _, g := range []int{32, 128} {
				generator, g := generator, g
				run("sp", func() error {
					res, err := bench.RunSingleProc(ctx, generator, d, g, opts)
					if err != nil {
						return err
					}
					if jsonOut {
						return bench.WriteJSON(os.Stdout, res.JSON())
					}
					fmt.Printf("== SINGLEPROC-UNIT: %s, d=%d, g=%d ==\n", generator, d, g)
					fmt.Print(bench.FormatSPTable(res))
					fmt.Println()
					return nil
				})
			}
		}
	}
	switch table {
	case "1", "2", "3", "8", "sp", "fig3", "all":
	default:
		fmt.Fprintf(os.Stderr, "semibench: unknown -table %q (want 1, 2, 3, 8, sp, fig3 or all)\n", table)
		os.Exit(2)
	}
}
