// Command semibench regenerates the paper's evaluation tables. Experiment
// jobs — one generated instance each — are sharded across all cores by the
// batch worker pool, so wall-clock time drops roughly linearly with the
// core count.
//
// Usage:
//
//	semibench -table 1            # Table I: instance statistics
//	semibench -table 2            # Table II: MULTIPROC-UNIT quality
//	semibench -table 3            # Table III: related weights
//	semibench -table 8            # TR Table 8: random weights
//	semibench -table sp           # SINGLEPROC tables (Sec. V-B), d=10
//	semibench -table sp -d 2      # ... other degree parameters
//	semibench -table all          # everything
//	semibench -quick              # reduced grid (3 seeds, 2 sizes)
//	semibench -seeds 5 -workers 1 # methodology knobs
//	semibench -timeout 30s        # abort cleanly when the budget expires
//	semibench -naive              # naive vector heuristics (ablation)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"semimatch/internal/bench"
	"semimatch/internal/gen"
)

func main() {
	table := flag.String("table", "all", "which table to run: 1, 2, 3, 8, sp, all")
	quick := flag.Bool("quick", false, "reduced grid: 2 sizes, 3 seeds")
	seeds := flag.Int("seeds", 0, "instances per parameter set (default 10, paper's setting)")
	workers := flag.Int("workers", 0, "worker pool size (default GOMAXPROCS; 1 for timing-grade runs)")
	naive := flag.Bool("naive", false, "use the naive O(p log p) vector heuristics (ablation)")
	d := flag.Int("d", 10, "degree parameter for SINGLEPROC tables")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
	flag.Parse()

	opts := bench.Options{Quick: *quick, Seeds: *seeds, Workers: *workers, Naive: *naive}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	run := func(name string, f func() error) {
		err := f()
		if err == nil {
			return
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "semibench: %s: timed out after %v\n", name, *timeout)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "semibench: %s: %v\n", name, err)
		os.Exit(1)
	}

	want := func(t string) bool { return *table == t || *table == "all" }

	if want("1") {
		run("table 1", func() error {
			res, err := bench.RunHyperTable(ctx, gen.Unit, opts)
			if err != nil {
				return err
			}
			fmt.Println("== Table I: random hypergraph instances ==")
			fmt.Print(bench.FormatHyperStats(res))
			fmt.Println()
			return nil
		})
	}
	if want("2") {
		run("table 2", func() error {
			res, err := bench.RunHyperTable(ctx, gen.Unit, opts)
			if err != nil {
				return err
			}
			fmt.Println("== Table II: MULTIPROC-UNIT quality vs LB ==")
			fmt.Print(bench.FormatHyperTable(res))
			fmt.Println()
			return nil
		})
	}
	if want("3") {
		run("table 3", func() error {
			res, err := bench.RunHyperTable(ctx, gen.Related, opts)
			if err != nil {
				return err
			}
			fmt.Println("== Table III: MULTIPROC related-weights quality vs LB ==")
			fmt.Print(bench.FormatHyperTable(res))
			fmt.Println()
			return nil
		})
	}
	if want("8") {
		run("table 8", func() error {
			res, err := bench.RunHyperTable(ctx, gen.Random, opts)
			if err != nil {
				return err
			}
			fmt.Println("== TR Table 8: MULTIPROC random-weights quality vs LB ==")
			fmt.Print(bench.FormatHyperTable(res))
			fmt.Println()
			return nil
		})
	}
	if want("fig3") {
		run("fig3", func() error {
			maxK := 12
			if *quick {
				maxK = 8
			}
			fmt.Println("== Fig. 3: Chain(k) worst-case scaling ==")
			fmt.Print(bench.FormatAdversarial(bench.RunAdversarial(maxK)))
			fmt.Println()
			return nil
		})
	}
	if want("sp") {
		for _, generator := range []gen.Generator{gen.FewgManyg, gen.HiLo} {
			for _, g := range []int{32, 128} {
				generator, g := generator, g
				run("sp", func() error {
					res, err := bench.RunSingleProc(ctx, generator, *d, g, opts)
					if err != nil {
						return err
					}
					fmt.Printf("== SINGLEPROC-UNIT: %s, d=%d, g=%d ==\n", generator, *d, g)
					fmt.Print(bench.FormatSPTable(res))
					fmt.Println()
					return nil
				})
			}
		}
	}
	switch *table {
	case "1", "2", "3", "8", "sp", "fig3", "all":
	default:
		fmt.Fprintf(os.Stderr, "semibench: unknown -table %q (want 1, 2, 3, 8, sp, fig3 or all)\n", *table)
		os.Exit(2)
	}
}
