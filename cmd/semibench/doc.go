// Command semibench regenerates the paper's evaluation tables. Experiment
// jobs — one generated instance each — are sharded across all cores by the
// batch worker pool, so wall-clock time drops roughly linearly with the
// core count. Algorithm columns resolve through the solver registry; use
// -list-algorithms to see the catalog and -alg to restrict columns.
//
// Usage:
//
//	semibench -table 1            # Table I: instance statistics
//	semibench -table 2            # Table II: MULTIPROC-UNIT quality
//	semibench -table 3            # Table III: related weights
//	semibench -table 8            # TR Table 8: random weights
//	semibench -table sp           # SINGLEPROC tables (Sec. V-B), d=10
//	semibench -table sp -d 2      # ... other degree parameters
//	semibench -table all          # everything
//	semibench -quick              # reduced grid (3 seeds, 2 sizes)
//	semibench -seeds 5 -workers 1 # methodology knobs
//	semibench -timeout 30s        # abort cleanly when the budget expires
//	semibench -naive              # naive vector heuristics (ablation)
//	semibench -alg SGH,EVG        # restrict algorithm columns
//	semibench -list-algorithms    # print the solver catalog and exit
//	semibench -list-algorithms -json  # catalog as NDJSON (one SolverRecord per line,
//	                                  # the same records semiserve's GET /algorithms serves)
//	semibench -table 2 -json      # machine-readable output
//	semibench -bench              # exact-solver perf micro-grid → BENCH.json
//	semibench -bench -workers 8 -bench-seeds 10 -bench-out BENCH-8w.json
//	semibench -bench -max-nodes-regress   # fail if any sequential case explores
//	                                      # more nodes than the latest BENCH_<n>.json
//	semibench -bench -bench-trace         # attach solve spans (node counts unchanged)
//	semibench -bench -ledger solves.jsonl # append one SolveRecord per measured solve
//	semibench -cpuprofile cpu.pb.gz -bench   # profile any run mode
//	semibench -memprofile heap.pb.gz -table 2
//
// # JSON output
//
// With -json, semibench emits one newline-delimited JSON object per table
// instead of the text rendering — the format consumed by the BENCH_*.json
// quality/time trajectories. MULTIPROC tables (1, 2, 3, 8) have this
// schema:
//
//	{
//	  "table": "2",                    // which table produced the object
//	  "kind": "multiproc",
//	  "weights": "unit",               // unit | related | random
//	  "algorithms": ["SGH", "VGH", "EGH", "EVG"],   // column order
//	  "rows": [
//	    {
//	      "instance": "FG-5-1-MP",     // family-size name, Table I style
//	      "v1": 1280, "v2": 256,       // tasks, processors
//	      "edges": 6400, "pins": 32000,// median |N|, median Σ|h∩V2|
//	      "lb": 125,                   // median Eq. (1) lower bound
//	      "quality": {"SGH": 1.02},    // median makespan/LB per algorithm
//	      "time_s": {"SGH": 0.004}     // mean wall-clock seconds
//	    }
//	  ],
//	  "avg_quality": {"SGH": 1.03},    // table-wide means
//	  "avg_time_s": {"SGH": 0.006}
//	}
//
// SINGLEPROC tables ("sp") replace weights with the generator parameters
// and measure quality against the exact optimum:
//
//	{
//	  "table": "sp",
//	  "kind": "singleproc",
//	  "generator": "FewgManyg",        // FewgManyg | HiLo
//	  "d": 10, "g": 32,                // degree and group parameters
//	  "algorithms": ["basic", "sorted", "double", "expected"],
//	  "rows": [
//	    {
//	      "instance": "FG-5-1-d10-g32",
//	      "v1": 1280, "v2": 256, "edges": 12800,
//	      "opt": 5,                    // median optimal makespan
//	      "exact_time_s": 0.01,        // mean exact-solver runtime
//	      "quality": {"basic": 1.2},   // median makespan/OPT per algorithm
//	      "time_s": {"basic": 0.001}
//	    }
//	  ],
//	  "avg_quality": {"basic": 1.18},
//	  "avg_time_s": {"basic": 0.001}
//	}
//
// The fig3 worst-case scaling view is emitted as:
//
//	{"table": "fig3", "kind": "adversarial", "rows": [
//	  {"k": 3, "tasks": 15, "procs": 8, "basic": 3, "sorted": 3,
//	   "double": 2, "expected": 2, "optimal": 1, "online_ratio": 3.0,
//	   "exact_time_s": 0.001}
//	]}
//
// # Perf mode (-bench): the BENCH.json trajectory
//
// -bench runs the seeded exact-solver micro-grid of internal/bench's
// RunPerf — hard 25-task instances, sequential (BnB-SP/BnB-MP) vs
// parallel (BnB-SP-Par/BnB-MP-Par) — and writes one indented JSON object
// (schema "semimatch-bench/v1"):
//
//	{
//	  "schema": "semimatch-bench/v1",
//	  "created": "2026-07-30T12:00:00Z",
//	  "go": "go1.24.0", "goos": "linux", "goarch": "amd64",
//	  "gomaxprocs": 8, "workers": 8, "seeds": 5, "max_nodes": 300000000,
//	  "cases": [
//	    {
//	      "family": "mp-partition-hard",
//	      "case": "mp-partition-hard/seed=1",
//	      "class": "MULTIPROC",
//	      "solver": "BnB-MP-Par", "workers": 8,
//	      "wall_seconds": 0.031,
//	      "nodes": 1204511,             // search-tree nodes expanded
//	      "nodes_per_sec": 3.9e7,
//	      "subproblems": 210,           // work-stealing pool only
//	      "steals": 17,                 // work-stealing pool only
//	      "makespan": 321, "optimal": true,
//	      "limit": false,               // true = node budget exhausted
//	      "speedup_vs_seq": 21.8        // parallel rows only (wall ratio)
//	    }
//	  ],
//	  "summary": [                      // per family
//	    {"family": "mp-partition-hard", "seq_solver": "BnB-MP",
//	     "par_solver": "BnB-MP-Par", "cases": 5, "seq_solved": 4,
//	     "par_solved": 5, "seq_seconds": 9.74, "par_seconds": 0.15,
//	     "wall_speedup": 66.7, "geomean_speedup": 44.4}
//	  ]
//	}
//
// When both solvers prove optimality their makespans must agree; the run
// fails otherwise, so every recorded BENCH.json doubles as an equivalence
// witness. Each -bench run writes two copies: -bench-out (default
// BENCH.json) always holds the latest report, and a numbered
// BENCH_<n>.json snapshot is added alongside it (n = one past the
// highest existing index), so the perf trajectory accumulates across
// runs and PRs instead of being overwritten. EXPERIMENTS.md records the
// repo's committed runs.
//
// Two observability knobs ride along: -bench-trace attaches a telemetry
// span tree to every measured solve (spans are recorded at phase
// boundaries, so node counts are unchanged by construction — the
// BENCH_5.json run is the committed proof), and -ledger FILE appends one
// solve-ledger record (instance features, algorithm, wall, nodes,
// status; source "bench") per measured solve, the same JSONL schema
// semiserve's -ledger writes.
package main
