// Command semigen generates random instances in the semimatch text format.
//
// Usage:
//
//	semigen -kind hyper -gen fewgmanyg -n 1280 -p 256 -dv 5 -dh 10 -g 32 \
//	        -weights related -seed 1 > instance.txt
//	semigen -kind bipartite -gen hilo -n 5120 -p 256 -d 10 -g 32 > sp.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"semimatch/internal/encode"
	"semimatch/internal/gen"
)

func main() {
	kind := flag.String("kind", "hyper", "instance kind: hyper or bipartite")
	genName := flag.String("gen", "fewgmanyg", "generator: hilo or fewgmanyg")
	n := flag.Int("n", 1280, "number of tasks")
	p := flag.Int("p", 256, "number of processors")
	dv := flag.Int("dv", 5, "mean configurations per task (hyper)")
	dh := flag.Int("dh", 10, "processors-per-configuration parameter (hyper)")
	d := flag.Int("d", 10, "degree parameter (bipartite)")
	g := flag.Int("g", 32, "number of groups")
	weights := flag.String("weights", "unit", "weight scheme: unit, related or random")
	maxw := flag.Int64("maxw", 100, "maximum weight for -weights random")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "semigen: %v\n", err)
		os.Exit(1)
	}

	var generator gen.Generator
	switch strings.ToLower(*genName) {
	case "hilo":
		generator = gen.HiLo
	case "fewgmanyg":
		generator = gen.FewgManyg
	default:
		fail(fmt.Errorf("unknown generator %q", *genName))
	}

	switch *kind {
	case "bipartite":
		gr, err := gen.Bipartite(generator, *n, *p, *g, *d, *seed)
		if err != nil {
			fail(err)
		}
		if err := encode.WriteBipartite(os.Stdout, gr); err != nil {
			fail(err)
		}
	case "hyper":
		var scheme gen.WeightScheme
		switch strings.ToLower(*weights) {
		case "unit":
			scheme = gen.Unit
		case "related":
			scheme = gen.Related
		case "random":
			scheme = gen.Random
		default:
			fail(fmt.Errorf("unknown weight scheme %q", *weights))
		}
		h, err := gen.Hypergraph(gen.HyperParams{
			Gen: generator, N: *n, P: *p, Dv: *dv, Dh: *dh, G: *g,
			Weights: scheme, MaxW: *maxw,
		}, *seed)
		if err != nil {
			fail(err)
		}
		if err := encode.WriteHypergraph(os.Stdout, h); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown kind %q (want hyper or bipartite)", *kind))
	}
}
