// Command semisched schedules a JSON instance file (named tasks and
// processors — the sched package's external format) and prints the chosen
// schedule as JSON, optionally with a Gantt chart.
//
// Usage:
//
//	semisched -alg evg instance.json
//	semisched -alg portfolio -refine -gantt instance.json
//	semisched -alg exact instance.json       # branch and bound, small inputs
//
// Algorithms: any registered MULTIPROC solver name or alias (sgh, egh,
// vgh, evg, exact, ...; see `semisolve -list-algorithms`), plus the
// special name "portfolio" which races the registry's heuristic lineup.
package main

import (
	"flag"
	"fmt"
	"os"

	"semimatch/internal/core"
	"semimatch/internal/portfolio"
	"semimatch/internal/refine"
	"semimatch/internal/sched"
)

func main() {
	alg := flag.String("alg", "portfolio", "algorithm name or alias, or \"portfolio\"")
	doRefine := flag.Bool("refine", false, "post-process with local search")
	gantt := flag.Bool("gantt", false, "print a Gantt chart to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: semisched [-alg name] [-refine] [-gantt] <instance.json>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	in, err := sched.ReadInstanceJSON(f)
	if err != nil {
		fail(err)
	}

	var s *sched.Schedule
	label := *alg
	if *alg == "portfolio" {
		s, err = solvePortfolio(in, *doRefine)
		if err == nil {
			label = fmt.Sprintf("portfolio(refine=%v)", *doRefine)
		}
	} else {
		// Any registered MULTIPROC solver works; unknown names get the
		// registry's suggested-names error.
		s, err = sched.SolveByName(in, *alg)
	}
	if err != nil {
		fail(err)
	}
	if *doRefine && *alg != "portfolio" {
		if err := refineSchedule(in, s); err != nil {
			fail(err)
		}
		label += "+refine"
	}
	if err := s.WriteJSON(os.Stdout, label); err != nil {
		fail(err)
	}
	if *gantt {
		tl := s.Simulate()
		if err := tl.Validate(s); err != nil {
			fail(err)
		}
		tl.Gantt(os.Stderr, s)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "semisched: %v\n", err)
	os.Exit(1)
}

// solvePortfolio runs the concurrent portfolio and lifts the winner back
// into a sched.Schedule.
func solvePortfolio(in *sched.Instance, doRefine bool) (*sched.Schedule, error) {
	h, err := in.Hypergraph()
	if err != nil {
		return nil, err
	}
	res, err := portfolio.Solve(h, portfolio.Options{Refine: doRefine})
	if err != nil {
		return nil, err
	}
	return scheduleFromAssignment(in, res.Assignment)
}

// refineSchedule applies local search to an existing schedule in place.
func refineSchedule(in *sched.Instance, s *sched.Schedule) error {
	h, err := in.Hypergraph()
	if err != nil {
		return err
	}
	a := make(core.HyperAssignment, len(in.Tasks))
	for t := range in.Tasks {
		a[t] = h.TaskEdges(t)[s.Choice[t]]
	}
	res := refine.Refine(h, a, refine.Options{})
	refined, err := scheduleFromAssignment(in, res.Assignment)
	if err != nil {
		return err
	}
	*s = *refined
	return nil
}

// scheduleFromAssignment converts a hypergraph assignment back into the
// named-schedule form.
func scheduleFromAssignment(in *sched.Instance, a core.HyperAssignment) (*sched.Schedule, error) {
	h, err := in.Hypergraph()
	if err != nil {
		return nil, err
	}
	if err := core.ValidateHyperAssignment(h, a); err != nil {
		return nil, err
	}
	s := &sched.Schedule{Instance: in, Choice: make([]int, len(in.Tasks))}
	for t := range in.Tasks {
		found := -1
		for j, e := range h.TaskEdges(t) {
			if e == a[t] {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("semisched: internal error mapping assignment")
		}
		s.Choice[t] = found
	}
	s.Loads = core.HyperLoads(h, a)
	s.Makespan = core.HyperMakespan(h, a)
	return s, nil
}
